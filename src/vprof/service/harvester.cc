#include "src/vprof/service/harvester.h"

#include <chrono>
#include <utility>

#include "src/vprof/runtime.h"

namespace vprof {

EpochHarvester::EpochHarvester(HarvesterOptions options)
    : options_(std::move(options)) {
  epoch_ns_.store(options_.epoch_ns, std::memory_order_relaxed);
}

EpochHarvester::~EpochHarvester() { Stop(); }

void EpochHarvester::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (thread_.joinable()) return;
  stop_requested_ = false;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread(&EpochHarvester::Loop, this);
}

void EpochHarvester::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!thread_.joinable()) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    thread_ = std::thread();
  }
  running_.store(false, std::memory_order_release);
}

namespace {

// Gap timing must not use the tracing fastclock: StartTracing re-anchors it
// to zero, so differences spanning a rotation would be meaningless.
TimeNs WallNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void EpochHarvester::Loop() {
  bool stopping = false;
  while (!stopping) {
    // Both knobs are sampled once per rotation, so the epoch is recorded
    // under one consistent setting even if the supervisor flips them
    // mid-epoch from the sink of the previous one.
    const auto epoch = std::chrono::nanoseconds(
        epoch_ns_.load(std::memory_order_relaxed));
    const bool trace_on = tracing_enabled_.load(std::memory_order_relaxed);
    const TimeNs rotation_begin = WallNs();
    if (trace_on) StartTracing();
    // The gap spans from the previous StopTracing to this StartTracing
    // returning: the sink's latency plus both quiesce handshakes.
    if (epochs_.load(std::memory_order_relaxed) > 0) {
      const TimeNs gap = WallNs() - rotation_begin + last_stop_cost_;
      last_gap_ns_.store(gap, std::memory_order_relaxed);
      total_gap_ns_.fetch_add(gap, std::memory_order_relaxed);
      if (gap > max_gap_ns_.load(std::memory_order_relaxed)) {
        max_gap_ns_.store(gap, std::memory_order_relaxed);
      }
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      stopping = cv_.wait_for(lock, epoch, [this] { return stop_requested_; });
    }
    const TimeNs stop_begin = WallNs();
    Trace trace;
    if (trace_on) trace = StopTracing();
    if (options_.sink) options_.sink(std::move(trace));
    last_stop_cost_ = WallNs() - stop_begin;
    epochs_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace vprof
