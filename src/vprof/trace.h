// In-memory representation of one tracing run, mirroring the four record
// kinds of paper Section 3.3.1:
//   1. segments            <tid, sid, ts, te, state>
//   2. function invocations <tid, sid, f, fs, fe>   (+ dynamic parent link)
//   3. wake-up edges        <tid, tid', t>           (attached to the blocked
//                                                     segment they terminate)
//   4. created-by edges     <tid, ts, tid', ts'>     (attached to the segment
//                                                     that starts processing
//                                                     the dequeued task)
#ifndef SRC_VPROF_TRACE_H_
#define SRC_VPROF_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/vprof/types.h"

namespace vprof {

// One recorded invocation of an instrumented function.
struct Invocation {
  TimeNs start = 0;
  TimeNs end = -1;             // -1 while open; clamped at StopTracing
  FuncId func = kInvalidFunc;
  int32_t parent = -1;         // index of enclosing recorded invocation on the
                               // same thread, -1 if none
  IntervalId sid = kNoInterval;
};

// A contiguous stretch of time on one thread with a fixed (interval, state)
// label. Wake-up and created-by edges are stored inline on the segment they
// pertain to.
struct Segment {
  TimeNs start = 0;
  TimeNs end = -1;
  IntervalId sid = kNoInterval;
  SegmentState state = SegmentState::kExecuting;

  // For kBlocked/kQueueWait segments: who unblocked this thread, and when.
  ThreadId waker_tid = kNoThread;
  TimeNs waker_time = -1;

  // For the first executing segment of a dequeued task: who enqueued the task
  // (the "created-by" producer) and when.
  ThreadId generator_tid = kNoThread;
  TimeNs generator_time = -1;
};

// Start or end annotation of a semantic interval. The begin event carries
// the application-defined label (request type).
struct IntervalEvent {
  IntervalId sid = kNoInterval;
  TimeNs time = 0;
  IntervalEventKind kind = IntervalEventKind::kBegin;
  IntervalLabel label = kNoLabel;
};

// Everything recorded by one thread during a run.
struct ThreadTrace {
  ThreadId tid = kNoThread;
  std::vector<Invocation> invocations;    // ordered by start time
  std::vector<Segment> segments;          // ordered, non-overlapping
  std::vector<IntervalEvent> interval_events;
  // Records lost to the optional arena cap (see SetArenaRecordCap): the
  // trace for this thread is truncated, not complete.
  uint64_t dropped_records = 0;
};

// A complete tracing run.
struct Trace {
  TimeNs duration = 0;  // run length in ns (records use run-relative times)
  std::vector<ThreadTrace> threads;
  // Names of all registered functions, indexed by FuncId, snapshotted at
  // StopTracing so a Trace is self-describing.
  std::vector<std::string> function_names;

  // Diagnostics (in-memory only; not serialized by SaveTrace): threads whose
  // records were quarantined because they failed to quiesce at StopTracing.
  // Their data is absent from `threads`.
  std::vector<ThreadId> stuck_threads;

  const std::string& FunctionName(FuncId f) const { return function_names[f]; }

  // Total record counts, for tests and reporting.
  uint64_t invocation_count() const;
  uint64_t segment_count() const;
  uint64_t interval_count() const;  // number of kEnd events
  uint64_t dropped_record_count() const;  // lost to arena caps, all threads
};

// Binary (de)serialization for storing traces on disk. Returns false on I/O
// or format errors.
bool SaveTrace(const Trace& trace, const std::string& path);
bool LoadTrace(const std::string& path, Trace* trace);

// Why loading a trace file failed. Downstream analysis indexes straight
// into the loaded vectors (parent links, FuncIds, enum states), so the
// loader must reject anything structurally invalid rather than let a
// corrupt file turn into out-of-bounds reads.
enum class TraceLoadStatus {
  kOk = 0,
  kOpenFailed,   // file missing or unreadable
  kBadMagic,     // not a VPRF trace file
  kBadVersion,   // VPRF file from an incompatible format version
  kTruncated,    // file ends mid-record (or a length field overruns the file)
  kCorrupt,      // a field holds a value the format forbids
};

// Stable name for logs/tests, e.g. "truncated".
const char* TraceLoadStatusName(TraceLoadStatus status);

// As LoadTrace, but reports what went wrong. On any non-kOk status `*trace`
// is left cleared, never partially filled. LoadTrace() is equivalent to
// LoadTraceChecked() == kOk.
TraceLoadStatus LoadTraceChecked(const std::string& path, Trace* trace);

}  // namespace vprof

#endif  // SRC_VPROF_TRACE_H_
