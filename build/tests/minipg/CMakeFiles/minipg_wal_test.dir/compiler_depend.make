# Empty compiler generated dependencies file for minipg_wal_test.
# This may be replaced when dependencies are built.
