# Empty dependencies file for record_and_inspect.
# This may be replaced when dependencies are built.
