file(REMOVE_RECURSE
  "CMakeFiles/minidb_deadlock_test.dir/deadlock_test.cc.o"
  "CMakeFiles/minidb_deadlock_test.dir/deadlock_test.cc.o.d"
  "minidb_deadlock_test"
  "minidb_deadlock_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minidb_deadlock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
