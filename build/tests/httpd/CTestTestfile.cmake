# CMake generated Testfile for 
# Source directory: /root/repo/tests/httpd
# Build directory: /root/repo/build/tests/httpd
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(httpd_bucket_alloc_test "/root/repo/build/tests/httpd/httpd_bucket_alloc_test")
set_tests_properties(httpd_bucket_alloc_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/httpd/CMakeLists.txt;1;vp_add_test;/root/repo/tests/httpd/CMakeLists.txt;0;")
add_test(httpd_server_test "/root/repo/build/tests/httpd/httpd_server_test")
set_tests_properties(httpd_server_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/httpd/CMakeLists.txt;2;vp_add_test;/root/repo/tests/httpd/CMakeLists.txt;0;")
add_test(httpd_filters_test "/root/repo/build/tests/httpd/httpd_filters_test")
set_tests_properties(httpd_filters_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/httpd/CMakeLists.txt;3;vp_add_test;/root/repo/tests/httpd/CMakeLists.txt;0;")
