file(REMOVE_RECURSE
  "CMakeFiles/statkit_decomposition_property_test.dir/decomposition_property_test.cc.o"
  "CMakeFiles/statkit_decomposition_property_test.dir/decomposition_property_test.cc.o.d"
  "statkit_decomposition_property_test"
  "statkit_decomposition_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statkit_decomposition_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
