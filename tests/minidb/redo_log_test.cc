#include "src/minidb/redo_log.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace minidb {
namespace {

simio::DiskConfig FastLogDisk() {
  simio::DiskConfig config;
  config.write_mu = 0.5;
  config.write_sigma = 0.05;
  config.fsync_mu = 1.5;
  config.fsync_sigma = 0.05;
  config.fsync_spike_prob = 0.0;
  config.serialize_access = false;
  return config;
}

TEST(RedoLogTest, LsnsMonotonic) {
  simio::Disk disk(FastLogDisk());
  RedoLog log(FlushPolicy::kEager, &disk, 1000.0);
  const uint64_t a = log.Append(100);
  const uint64_t b = log.Append(100);
  EXPECT_LT(a, b);
}

TEST(RedoLogTest, EagerCommitMakesDurable) {
  simio::Disk disk(FastLogDisk());
  RedoLog log(FlushPolicy::kEager, &disk, 1000.0);
  const uint64_t lsn = log.Append(256);
  EXPECT_LT(log.flushed_lsn(), lsn);
  log.CommitUpTo(lsn);
  EXPECT_GE(log.flushed_lsn(), lsn);
  EXPECT_GE(disk.fsyncs(), 1u);
  EXPECT_GE(log.stats().leader_flushes, 1u);
}

TEST(RedoLogTest, LazyFlushWritesButDoesNotSync) {
  simio::Disk disk(FastLogDisk());
  RedoLog log(FlushPolicy::kLazyFlush, &disk, 1e7 /* effectively never */);
  const uint64_t lsn = log.Append(256);
  const uint64_t syncs_before = disk.fsyncs();
  log.CommitUpTo(lsn);
  EXPECT_GE(log.written_lsn(), lsn);      // data written...
  EXPECT_EQ(disk.fsyncs(), syncs_before);  // ...but not synced on this path
}

TEST(RedoLogTest, LazyWriteDefersEverything) {
  simio::Disk disk(FastLogDisk());
  RedoLog log(FlushPolicy::kLazyWrite, &disk, 1e7);
  const uint64_t lsn = log.Append(256);
  log.CommitUpTo(lsn);
  EXPECT_LT(log.written_lsn(), lsn);
  EXPECT_LT(log.flushed_lsn(), lsn);
}

TEST(RedoLogTest, BackgroundFlusherCatchesUp) {
  simio::Disk disk(FastLogDisk());
  RedoLog log(FlushPolicy::kLazyWrite, &disk, 500.0 /* 0.5ms period */);
  const uint64_t lsn = log.Append(256);
  log.CommitUpTo(lsn);
  // Wait for the flusher to run.
  for (int i = 0; i < 200 && log.flushed_lsn() < lsn; ++i) {
    simio::SleepUs(1000);
  }
  EXPECT_GE(log.flushed_lsn(), lsn);
  EXPECT_GE(log.stats().background_flushes, 1u);
}

TEST(RedoLogTest, GroupCommitManyThreads) {
  simio::Disk disk(FastLogDisk());
  RedoLog log(FlushPolicy::kEager, &disk, 1000.0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        const uint64_t lsn = log.Append(128);
        log.CommitUpTo(lsn);
        ASSERT_GE(log.flushed_lsn(), lsn);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  // Group commit must batch: strictly fewer fsyncs than commits.
  EXPECT_LE(disk.fsyncs(), 200u);
  EXPECT_GE(disk.fsyncs(), 1u);
  const auto stats = log.stats();
  EXPECT_EQ(stats.appends, 200u);
}

TEST(RedoLogTest, CommitUpToIdempotentWhenAlreadyDurable) {
  simio::Disk disk(FastLogDisk());
  RedoLog log(FlushPolicy::kEager, &disk, 1000.0);
  const uint64_t lsn = log.Append(64);
  log.CommitUpTo(lsn);
  const uint64_t syncs = disk.fsyncs();
  log.CommitUpTo(lsn);  // already durable: no new I/O
  EXPECT_EQ(disk.fsyncs(), syncs);
}

}  // namespace
}  // namespace minidb
