file(REMOVE_RECURSE
  "../bench/fig4_flush"
  "../bench/fig4_flush.pdb"
  "CMakeFiles/fig4_flush.dir/fig4_flush.cc.o"
  "CMakeFiles/fig4_flush.dir/fig4_flush.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_flush.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
