// Minimal Prometheus text-exposition writer used by the service's metrics
// endpoints (OnlineTreeSnapshot::ToPromText, Vprofd::MetricsText).
//
// Scrape-clean output, by construction:
//   - families are emitted in sorted name order, each exactly once, with
//     its `# HELP` and `# TYPE` lines immediately before its samples;
//   - samples within a family are sorted by label string, so the text is
//     byte-stable across runs with the same values;
//   - label values are escaped per the exposition format (backslash, quote,
//     newline) — node paths contain arbitrary function-name bytes.
// Integer samples are formatted as integers so large counters never round
// through a double.
#ifndef SRC_VPROF_SERVICE_PROM_H_
#define SRC_VPROF_SERVICE_PROM_H_

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace vprof {

class PromWriter {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  // Declares a family (`type` is "gauge" or "counter"). Safe to call in any
  // order relative to Sample; the last declaration wins.
  void Family(const std::string& name, const std::string& type,
              const std::string& help) {
    FamilyData& family = families_[name];
    family.type = type;
    family.help = help;
  }

  void Sample(const std::string& family, double value) {
    Sample(family, Labels{}, value);
  }
  void Sample(const std::string& family, uint64_t value) {
    Sample(family, Labels{}, value);
  }
  void Sample(const std::string& family, const Labels& labels, double value) {
    std::ostringstream v;
    v << value;
    Add(family, labels, v.str());
  }
  void Sample(const std::string& family, const Labels& labels,
              uint64_t value) {
    Add(family, labels, std::to_string(value));
  }

  // Escapes a label value (backslash, double quote, newline).
  static std::string EscapeLabel(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      switch (c) {
        case '\\':
          out += "\\\\";
          break;
        case '"':
          out += "\\\"";
          break;
        case '\n':
          out += "\\n";
          break;
        default:
          out += c;
      }
    }
    return out;
  }

  std::string Text() const {
    std::string out;
    for (const auto& [name, family] : families_) {
      out += "# HELP " + name + " " + family.help + "\n";
      out += "# TYPE " + name + " " + family.type + "\n";
      for (const auto& [labels, value] : family.samples) {
        out += name + labels + " " + value + "\n";
      }
    }
    return out;
  }

 private:
  struct FamilyData {
    std::string type;
    std::string help;
    std::map<std::string, std::string> samples;  // label string -> value
  };

  void Add(const std::string& family, const Labels& labels,
           std::string value) {
    std::string key;
    if (!labels.empty()) {
      key += '{';
      bool first = true;
      for (const auto& [k, v] : labels) {
        if (!first) key += ',';
        first = false;
        key += k + "=\"" + EscapeLabel(v) + "\"";
      }
      key += '}';
    }
    families_[family].samples[key] = std::move(value);
  }

  std::map<std::string, FamilyData> families_;
};

}  // namespace vprof

#endif  // SRC_VPROF_SERVICE_PROM_H_
