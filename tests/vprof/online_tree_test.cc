#include "src/vprof/service/online_tree.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/vprof/analysis/variance_tree.h"
#include "tests/vprof/trace_builder.h"

namespace vprof {
namespace {

using vprof_test::TraceBuilder;

// Same layout as variance_tree_test: per interval, txn spans the whole
// interval with children a (constant 100ns) and b (supplied), plus a 50ns
// txn body tail.
Trace BuildTwoChildTrace(const std::vector<TimeNs>& b_durations,
                         IntervalId first_sid = 1) {
  TraceBuilder tb;
  for (size_t i = 0; i < b_durations.size(); ++i) {
    const TimeNs base = static_cast<TimeNs>(i) * 10000;
    const TimeNs b_end = base + 100 + b_durations[i];
    const TimeNs end = b_end + 50;
    const IntervalId sid = first_sid + static_cast<IntervalId>(i);
    tb.Begin(0, sid, base).End(0, sid, end);
    tb.Exec(0, sid, base, end);
    const int txn = tb.Invoke(0, "txn", base, end, -1, sid);
    tb.Invoke(0, "a", base, base + 100, txn, sid);
    tb.Invoke(0, "b", base + 100, b_end, txn, sid);
  }
  return tb.Build();
}

// A leaf-only variant: txn instrumented, children not (the pre-expansion
// instrumentation the controller starts from).
Trace BuildLeafTrace(const std::vector<TimeNs>& txn_durations) {
  TraceBuilder tb;
  for (size_t i = 0; i < txn_durations.size(); ++i) {
    const TimeNs base = static_cast<TimeNs>(i) * 10000;
    const TimeNs end = base + txn_durations[i];
    const IntervalId sid = static_cast<IntervalId>(i + 1);
    tb.Begin(0, sid, base).End(0, sid, end);
    tb.Exec(0, sid, base, end);
    tb.Invoke(0, "txn", base, end, -1, sid);
  }
  return tb.Build();
}

NodeId FindNode(const OnlineTreeSnapshot& snap, const std::string& label) {
  for (size_t i = 0; i < snap.nodes.size(); ++i) {
    if (snap.NodeLabel(static_cast<NodeId>(i)) == label) {
      return static_cast<NodeId>(i);
    }
  }
  return -1;
}

TEST(OnlineVarianceTreeTest, SingleFoldMatchesBatchAnalysis) {
  const std::vector<TimeNs> b = {500, 1000, 1500, 2000};
  const Trace trace = BuildTwoChildTrace(b);
  VarianceAnalysis batch(trace);

  OnlineVarianceTree tree;
  tree.Fold(trace);
  const OnlineTreeSnapshot snap = tree.Snapshot();

  EXPECT_EQ(snap.epochs, 1u);
  EXPECT_EQ(snap.intervals, 4u);
  EXPECT_DOUBLE_EQ(snap.weight, 4.0);
  EXPECT_NEAR(snap.overall_mean(), batch.overall_mean(), 1e-9);
  EXPECT_NEAR(snap.overall_variance(), batch.overall_variance(), 1e-6);

  const NodeId b_node = FindNode(snap, "b");
  ASSERT_GE(b_node, 0);
  EXPECT_NEAR(snap.node_variance[static_cast<size_t>(b_node)], 312500.0, 1e-6);
  const NodeId a_node = FindNode(snap, "a");
  ASSERT_GE(a_node, 0);
  EXPECT_NEAR(snap.node_mean[static_cast<size_t>(a_node)], 100.0, 1e-9);
  EXPECT_NEAR(snap.node_variance[static_cast<size_t>(a_node)], 0.0, 1e-9);
}

TEST(OnlineVarianceTreeTest, TwoEpochFoldMatchesBatchConcat) {
  // Folding two epochs without decay must equal one batch analysis over all
  // intervals: Welford streaming is order-insensitive.
  const std::vector<TimeNs> all = {100, 900, 400, 1600, 250, 700};
  const Trace batch_trace = BuildTwoChildTrace(all);
  VarianceAnalysis batch(batch_trace);

  OnlineVarianceTree tree;
  tree.Fold(BuildTwoChildTrace({100, 900, 400}, 1));
  tree.Fold(BuildTwoChildTrace({1600, 250, 700}, 10));
  const OnlineTreeSnapshot snap = tree.Snapshot();

  EXPECT_EQ(snap.epochs, 2u);
  EXPECT_EQ(snap.intervals, 6u);
  EXPECT_NEAR(snap.overall_mean(), batch.overall_mean(), 1e-6);
  EXPECT_NEAR(snap.overall_variance(), batch.overall_variance(), 1e-4);

  const NodeId b_node = FindNode(snap, "b");
  ASSERT_GE(b_node, 0);
  NodeId batch_b = -1;
  for (size_t i = 0; i < batch.node_count(); ++i) {
    if (batch.NodeLabel(static_cast<NodeId>(i)) == "b") {
      batch_b = static_cast<NodeId>(i);
    }
  }
  ASSERT_GE(batch_b, 0);
  EXPECT_NEAR(snap.node_variance[static_cast<size_t>(b_node)],
              batch.NodeVariance(batch_b), 1e-4);
}

TEST(OnlineVarianceTreeTest, DecompositionIdentityAfterMidStreamExpansion) {
  // Epoch 1 records txn as a leaf; epoch 2 arrives with children a/b (the
  // controller enabled their probes between epochs). Var(txn) over the whole
  // window must still equal the sum of child variances plus twice the
  // pairwise covariances — the body child inherits txn's pre-expansion
  // history and the function children seed as zeros.
  OnlineVarianceTree tree;
  tree.Fold(BuildLeafTrace({650, 1150, 1650}));
  tree.Fold(BuildTwoChildTrace({500, 1000, 1500, 2000}));
  const OnlineTreeSnapshot snap = tree.Snapshot();

  const NodeId txn = FindNode(snap, "txn");
  ASSERT_GE(txn, 0);
  const std::vector<NodeId>& children =
      snap.nodes[static_cast<size_t>(txn)].children;
  ASSERT_EQ(children.size(), 3u);  // a, b, txn(body)
  double sum = 0.0;
  for (NodeId c : children) {
    sum += snap.node_variance[static_cast<size_t>(c)];
  }
  for (const SiblingCovariance& cov : snap.covariances) {
    if (cov.parent == txn) {
      sum += 2.0 * cov.covariance;
    }
  }
  const double txn_var = snap.node_variance[static_cast<size_t>(txn)];
  EXPECT_NEAR(txn_var, sum, 1e-6 * (1.0 + txn_var));

  // All accumulators carry the full window's weight.
  EXPECT_DOUBLE_EQ(snap.weight, 7.0);
}

TEST(OnlineVarianceTreeTest, DecayForgetsOldRegime) {
  OnlineTreeOptions options;
  options.decay_half_life_epochs = 1.0;  // aggressive: halve every epoch
  OnlineVarianceTree tree(options);
  // One epoch of wildly varying b, then many epochs of constant b.
  tree.Fold(BuildTwoChildTrace({100, 4000, 200, 3600}));
  for (int i = 0; i < 12; ++i) {
    tree.Fold(BuildTwoChildTrace({800, 800, 800, 800}));
  }
  const OnlineTreeSnapshot snap = tree.Snapshot();
  const NodeId b_node = FindNode(snap, "b");
  ASSERT_GE(b_node, 0);
  // The noisy epoch is 12 half-lives old: b's variance must be near zero.
  EXPECT_LT(snap.node_variance[static_cast<size_t>(b_node)], 2000.0);

  // Without decay the old regime would dominate forever.
  OnlineVarianceTree cumulative;
  cumulative.Fold(BuildTwoChildTrace({100, 4000, 200, 3600}));
  for (int i = 0; i < 12; ++i) {
    cumulative.Fold(BuildTwoChildTrace({800, 800, 800, 800}));
  }
  const OnlineTreeSnapshot cum = cumulative.Snapshot();
  EXPECT_GT(cum.node_variance[static_cast<size_t>(FindNode(cum, "b"))],
            100000.0);
}

TEST(OnlineVarianceTreeTest, IdleEpochAgesWindowOnly) {
  OnlineTreeOptions options;
  options.decay_half_life_epochs = 1.0;
  OnlineVarianceTree tree(options);
  tree.Fold(BuildTwoChildTrace({500, 900}));
  const double weight_before = tree.Snapshot().weight;
  Trace idle;
  idle.duration = 1000;
  tree.Fold(idle);
  const OnlineTreeSnapshot snap = tree.Snapshot();
  EXPECT_EQ(snap.epochs, 2u);
  EXPECT_EQ(snap.intervals, 2u);
  EXPECT_NEAR(snap.weight, weight_before * 0.5, 1e-9);
}

TEST(OnlineVarianceTreeTest, NodePathAndLabels) {
  OnlineVarianceTree tree;
  tree.Fold(BuildTwoChildTrace({500, 900}));
  const OnlineTreeSnapshot snap = tree.Snapshot();
  const NodeId b_node = FindNode(snap, "b");
  ASSERT_GE(b_node, 0);
  EXPECT_EQ(snap.NodePath(b_node), "txn/b");
  EXPECT_EQ(snap.NodePath(kRootNode), "(interval)");
  const NodeId body = FindNode(snap, "txn(body)");
  ASSERT_GE(body, 0);
  EXPECT_EQ(snap.NodePath(body), "txn/txn(body)");
}

TEST(OnlineVarianceTreeTest, PromTextExposesCountersAndNodeGauges) {
  OnlineVarianceTree tree;
  tree.Fold(BuildTwoChildTrace({500, 1000, 1500}));
  const OnlineTreeSnapshot snap = tree.Snapshot();
  const std::string prom = snap.ToPromText();
  EXPECT_NE(prom.find("vprof_epochs_total 1"), std::string::npos);
  EXPECT_NE(prom.find("vprof_intervals_total 3"), std::string::npos);
  EXPECT_NE(prom.find("vprof_node_variance_ns2{path=\"txn/b\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("vprof_node_variance_share{path=\"txn\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE vprof_node_mean_ns gauge"), std::string::npos);
}

TEST(OnlineVarianceTreeTest, JsonSnapshotNestsTree) {
  OnlineVarianceTree tree;
  tree.Fold(BuildTwoChildTrace({500, 1000}));
  const std::string json = tree.Snapshot().ToJson();
  EXPECT_NE(json.find("\"epochs\":1"), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"txn\""), std::string::npos);
  EXPECT_NE(json.find("\"children\":["), std::string::npos);
}

TEST(OnlineVarianceTreeTest, SurfacesStuckAndDroppedCounts) {
  Trace trace = BuildTwoChildTrace({500, 900});
  trace.stuck_threads.push_back(42);
  trace.threads[0].dropped_records = 7;
  OnlineVarianceTree tree;
  tree.Fold(trace);
  const OnlineTreeSnapshot snap = tree.Snapshot();
  EXPECT_EQ(snap.stuck_thread_epochs, 1u);
  EXPECT_EQ(snap.dropped_records, 7u);
  const std::string prom = snap.ToPromText();
  EXPECT_NE(prom.find("vprof_dropped_records_total 7"), std::string::npos);
  EXPECT_NE(prom.find("vprof_stuck_thread_epochs_total 1"), std::string::npos);
}

TEST(OnlineTreeSnapshotTest, ViewFeedsFactorSelection) {
  OnlineVarianceTree tree;
  tree.Fold(BuildTwoChildTrace({500, 1000, 1500, 2000}));
  const OnlineTreeSnapshot snap = tree.Snapshot();
  const VarianceTreeView view = snap.View();
  EXPECT_EQ(view.nodes.size(), snap.nodes.size());
  EXPECT_DOUBLE_EQ(view.overall_variance, snap.overall_variance());
}

}  // namespace
}  // namespace vprof
