// minidb: a thread-per-connection transactional storage engine, the
// MySQL/InnoDB stand-in for the paper's Section 4.5 case study.
//
// Each transaction is a semantic interval: Execute() wraps the work in
// BeginInterval/EndInterval, and `run_transaction` is the variance-tree root
// the profiler starts from. The instrumented function hierarchy mirrors the
// InnoDB functions the paper names:
//
//   run_transaction
//    |- row_sel ------------------ lock_rec_lock -- os_event_wait
//    |                          |- btr_cur_search_to_nth_level
//    |                          `- buf_page_get --- buf_pool_mutex_enter
//    |- row_upd ---------------- (same children)
//    |- row_ins_clust_index_entry_low
//    |                          |- btr_cur_search_to_nth_level
//    |                          `- buf_page_get --- buf_pool_mutex_enter
//    `- trx_commit ------------- log_write_up_to -- fil_flush
//                             `- lock_release
#ifndef SRC_MINIDB_ENGINE_H_
#define SRC_MINIDB_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/minidb/buffer_pool.h"
#include "src/minidb/config.h"
#include "src/minidb/lock_manager.h"
#include "src/minidb/redo_log.h"
#include "src/minidb/table.h"
#include "src/minidb/transaction.h"
#include "src/vprof/analysis/call_graph.h"
#include "src/vprof/service/vprofd.h"

namespace minidb {

enum class TxnType {
  kNewOrder,
  kPayment,
  kOrderStatus,
  kDelivery,
  kStockLevel,
};

struct TxnRequest {
  TxnType type = TxnType::kNewOrder;
  int warehouse = 0;
  int district = 0;
  int64_t customer = 0;
  std::vector<int64_t> items;  // item ids for NewOrder / StockLevel
};

struct TxnOutcome {
  bool committed = false;
  uint64_t trx_id = 0;
  // Why the transaction aborted (kNone when committed). Lock timeouts,
  // deadlocks and log I/O errors are retryable; a crashed log is not until
  // someone calls redo_log().Recover().
  TxnError error = TxnError::kNone;

  bool retryable() const { return !committed && IsRetryable(error); }
};

class Engine {
 public:
  explicit Engine(const EngineConfig& config);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Executes one transaction as a semantic interval. Thread-safe; intended
  // to be called from many connection threads.
  TxnOutcome Execute(const TxnRequest& request);

  // Graceful shutdown: refuses new transactions (kShutdown), then drains the
  // redo log — group-commit followers already inside Commit collect their
  // acks, and one final write+fsync lands the pending batch. No acked commit
  // is lost and no thread is left waiting on a flush-round event. Idempotent.
  void Stop();

  bool stopped() const { return stopped_.load(std::memory_order_acquire); }

  // Declares the engine's static call graph (instrumentable functions and
  // caller/callee edges) for the profiler's refinement and specificity.
  static void RegisterCallGraph(vprof::CallGraph* graph);

  // Starts the always-on profiling service (vprofd) rooted at this engine's
  // semantic interval. Unset options default to "run_transaction" and the
  // engine's registered call graph; the returned daemon is already running
  // and stops when destroyed.
  static std::unique_ptr<vprof::Vprofd> StartOnlineProfiler(
      vprof::VprofdOptions options = {});

  // Scale-out gauges for vprofd (VprofdOptions.app_gauges): per-shard
  // buffer-pool lock waits and redo-log group-commit batch sizes.
  std::vector<vprof::AppGauge> ScaleGauges() const;

  // Robustness gauges for vprofd: lock-wait timeouts, deadlock aborts,
  // redo-log I/O errors / wedges / crashes, and the commit/abort counters —
  // the counters a chaos storm moves.
  std::vector<vprof::AppGauge> RobustnessGauges() const;

  // Sum of every row balance across all tables. Committed transactions move
  // balance in zero-sum transfers, so this is 0 at all quiesced points — the
  // chaos invariant library's conservation check.
  int64_t BalanceTotal() const;

  // Order-independent digest over all table contents (keys, versions,
  // balances); the chaos determinism sweep compares post-recovery digests.
  uint64_t StateDigest() const;

  const EngineConfig& config() const { return config_; }
  simio::Disk& data_disk() { return data_disk_; }
  simio::Disk& log_disk() { return log_disk_; }
  BufferPool& buffer_pool() { return *pool_; }
  LockManager& lock_manager() { return locks_; }
  RedoLog& redo_log() { return *log_; }
  Table& warehouse() { return *warehouse_; }
  Table& district() { return *district_; }
  Table& customer() { return *customer_; }
  Table& stock() { return *stock_; }
  Table& orders() { return *orders_; }
  Table& order_lines() { return *order_lines_; }
  Table& history() { return *history_; }

  uint64_t committed_count() const {
    return committed_.load(std::memory_order_relaxed);
  }
  uint64_t aborted_count() const {
    return aborted_.load(std::memory_order_relaxed);
  }

  // Key helpers (also used by the workload generator).
  int64_t DistrictKey(int warehouse, int district) const {
    return warehouse * 10 + district;
  }
  int64_t CustomerKey(int warehouse, int district, int64_t customer) const {
    return (static_cast<int64_t>(warehouse) * 10 + district) * 3000 + customer;
  }
  int64_t StockKey(int warehouse, int64_t item) const {
    return static_cast<int64_t>(warehouse) * 100000 + item;
  }

  static constexpr int kDistrictsPerWarehouse = 10;
  static constexpr int64_t kCustomersPerDistrict = 300;
  static constexpr int64_t kItemsPerWarehouse = 2000;

 private:
  void LoadInitialData();

  // Instrumented row operations (InnoDB naming). On failure the cause is
  // recorded on the transaction (trx->error()).
  bool RowSelect(Transaction* trx, Table& table, int64_t key, LockMode mode);
  bool RowUpdate(Transaction* trx, Table& table, int64_t key);
  bool RowInsert(Transaction* trx, Table& table, int64_t key);

  // Takes a lock, converting a typed failure into trx->error().
  bool AcquireLock(Transaction* trx, uint64_t object_id, LockMode mode);
  // Appends redo, converting a crashed log into trx->error().
  bool AppendRedo(Transaction* trx, uint64_t bytes);

  // Commit forces the redo log per the flush policy; returns false (with
  // trx->error() set) when the log fails, in which case the caller aborts.
  bool Commit(Transaction* trx, bool needs_log_flush);
  void Abort(Transaction* trx);

  bool RunNewOrder(Transaction* trx, const TxnRequest& request);
  bool RunPayment(Transaction* trx, const TxnRequest& request);
  bool RunOrderStatus(Transaction* trx, const TxnRequest& request);
  bool RunDelivery(Transaction* trx, const TxnRequest& request);
  bool RunStockLevel(Transaction* trx, const TxnRequest& request);

  EngineConfig config_;
  simio::Disk data_disk_;
  simio::Disk log_disk_;
  std::unique_ptr<BufferPool> pool_;
  LockManager locks_;
  std::unique_ptr<RedoLog> log_;

  std::unique_ptr<Table> warehouse_;
  std::unique_ptr<Table> district_;
  std::unique_ptr<Table> customer_;
  std::unique_ptr<Table> stock_;
  std::unique_ptr<Table> orders_;
  std::unique_ptr<Table> order_lines_;
  std::unique_ptr<Table> history_;

  std::atomic<uint64_t> next_trx_id_{1};
  std::atomic<int64_t> next_order_key_{1};
  std::atomic<int64_t> next_history_key_{1};
  std::atomic<uint64_t> committed_{0};
  std::atomic<uint64_t> aborted_{0};
  std::atomic<bool> stopped_{false};
  // Per-transaction redo volume accumulates here before commit (thread-local
  // tracking would be overkill: Append is called per row mutation).
};

}  // namespace minidb

#endif  // SRC_MINIDB_ENGINE_H_
