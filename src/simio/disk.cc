#include "src/simio/disk.h"

#include <chrono>
#include <thread>

#include "src/statkit/distributions.h"

namespace simio {

void SleepUs(double us) {
  if (us <= 0.0) {
    return;
  }
  std::this_thread::sleep_for(
      std::chrono::nanoseconds(static_cast<int64_t>(us * 1000.0)));
}

Disk::Disk(const DiskConfig& config) : config_(config), rng_(config.seed) {}

double Disk::SampleServiceUs(double mu, double sigma, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(rng_mu_);
  const double base = statkit::SampleLognormal(rng_, mu, sigma);
  const double transfer = static_cast<double>(bytes) / config_.bytes_per_us;
  return base + transfer;
}

void Disk::Service(double service_us) {
  if (config_.serialize_access) {
    std::lock_guard<std::mutex> lock(device_mu_);
    SleepUs(service_us);
  } else {
    SleepUs(service_us);
  }
}

void Disk::Read(uint64_t bytes) {
  reads_.fetch_add(1, std::memory_order_relaxed);
  Service(SampleServiceUs(config_.read_mu, config_.read_sigma, bytes));
}

void Disk::Write(uint64_t bytes) {
  writes_.fetch_add(1, std::memory_order_relaxed);
  Service(SampleServiceUs(config_.write_mu, config_.write_sigma, bytes));
}

void Disk::Fsync() {
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  double service = SampleServiceUs(config_.fsync_mu, config_.fsync_sigma, 0);
  {
    std::lock_guard<std::mutex> lock(rng_mu_);
    if (rng_.NextBool(config_.fsync_spike_prob)) {
      service *= config_.fsync_spike_scale;
    }
  }
  Service(service);
}

}  // namespace simio
