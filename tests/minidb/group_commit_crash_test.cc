// Crash-recovery property tests for leader-based group commit (ISSUE:
// multi-core scale-out). The group-commit leader writes a whole batch of
// records with one device write; a crash can therefore tear mid-batch. The
// invariant under test, swept over EVERY byte offset of a multi-record
// batch and over both commit modes:
//
//   Recovery exposes a prefix of whole records — never a torn batch
//   interior — and never drops an LSN that was acknowledged durable.
//
// The tear offset is injected byte-exactly via the disk's torn_write
// failpoint value payload (fault::Trigger::AlwaysWithValue), paired with a
// crash before the fsync — the realistic power-loss-mid-write scenario.
// When the crash seed is chosen so the device cache loses nothing beyond
// the tear (see PickKeepAllSeed), the recovered boundary is predicted
// exactly; a second sweep with arbitrary seeds layers seeded cache loss on
// top of the tear and checks the invariant still holds.
#include <algorithm>
#include <cstdint>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/fault/failpoint.h"
#include "src/minidb/config.h"
#include "src/minidb/redo_log.h"
#include "src/simio/disk.h"
#include "src/statkit/rng.h"

namespace minidb {
namespace {

simio::DiskConfig FastDisk(const std::string& scope) {
  simio::DiskConfig config;
  config.read_mu = 0.1;
  config.write_mu = 0.1;
  config.fsync_mu = 0.1;
  config.fsync_spike_prob = 0.0;
  config.error_latency_us = 1.0;
  config.fault_scope = scope;
  config.seed = 11;
  return config;
}

// Record sizes of the doomed batch: deliberately irregular so byte offsets
// land at many distinct positions within records.
const uint64_t kBatchSizes[] = {64, 100, 7, 300, 29};

uint64_t BatchBytes() {
  uint64_t total = 0;
  for (uint64_t b : kBatchSizes) {
    total += b;
  }
  return total;
}

// Number of batch records wholly intact below a tear at `offset`, and the
// end of that intact prefix in bytes.
struct IntactPrefix {
  size_t records = 0;
  uint64_t bytes = 0;
};

IntactPrefix IntactBelow(uint64_t offset) {
  IntactPrefix prefix;
  for (uint64_t b : kBatchSizes) {
    if (prefix.bytes + b > offset) {
      break;
    }
    prefix.bytes += b;
    ++prefix.records;
  }
  return prefix;
}

// A crash seed under which CrashLocked's device-cache loss keeps every
// at-risk record — so the injected tear offset alone decides the recovered
// boundary. Replicates the log's own draw: statkit::Rng(seed)
// .NextBelow(at_risk + 1) == at_risk.
uint64_t PickKeepAllSeed(uint64_t at_risk) {
  for (uint64_t seed = 0; seed < 100000; ++seed) {
    statkit::Rng rng(seed);
    if (rng.NextBelow(at_risk + 1) == at_risk) {
      return seed;
    }
  }
  ADD_FAILURE() << "no keep-all seed found for at_risk=" << at_risk;
  return 0;
}

class GroupCommitCrashTest : public ::testing::TestWithParam<CommitMode> {
 protected:
  void SetUp() override {
    fault::DeactivateAll();
    fault::ResetCounters();
  }
  void TearDown() override {
    fault::DeactivateAll();
    fault::ResetCounters();
  }
};

// Byte-exact sweep: with a keep-all crash seed the recovered LSN is fully
// determined by the tear offset — the whole-record prefix below the tear.
TEST_P(GroupCommitCrashTest, TornBatchSweepRecoversExactWholeRecordPrefix) {
  const uint64_t total = BatchBytes();
  for (uint64_t offset = 0; offset <= total; ++offset) {
    SCOPED_TRACE("tear offset " + std::to_string(offset));
    simio::Disk disk(FastDisk("redo_gc_sweep"));
    RedoLog log(FlushPolicy::kEager, &disk, /*flusher_period_us=*/1e6,
                GetParam());

    // A durable prefix the crash must never touch.
    uint64_t acked = 0;
    for (int i = 0; i < 3; ++i) {
      const uint64_t lsn = log.Append(50);
      ASSERT_NE(lsn, 0u);
      ASSERT_EQ(log.CommitUpTo(lsn), LogStatus::kOk);
      acked = lsn;
    }
    const size_t durable = log.durable_record_count();

    // The doomed batch: appended but not yet committed, so the next commit
    // drains all of it in one leader write.
    uint64_t last = 0;
    for (uint64_t bytes : kBatchSizes) {
      last = log.Append(bytes);
      ASSERT_NE(last, 0u);
    }

    const IntactPrefix intact = IntactBelow(offset);
    const bool crosses =
        intact.records < std::size(kBatchSizes) && offset > intact.bytes;
    const uint64_t at_risk =
        static_cast<uint64_t>(intact.records) + (crosses ? 1 : 0);
    log.set_crash_seed(PickKeepAllSeed(at_risk));

    // Tear the batch write at exactly `offset`, then lose power before the
    // fsync.
    fault::Activate("redo_gc_sweep/torn_write",
                    fault::Trigger::AlwaysWithValue(offset));
    fault::Activate("redo/crash_after_write", fault::Trigger::OneShot());
    EXPECT_EQ(log.CommitUpTo(last), LogStatus::kCrashed);
    EXPECT_TRUE(log.crashed());
    fault::DeactivateAll();

    const RecoveryResult recovered = log.Recover();
    // Exactly the whole records below the tear survive; the record crossing
    // the tear is detected by checksum and truncated.
    EXPECT_EQ(recovered.records_recovered, durable + intact.records);
    EXPECT_EQ(recovered.torn_truncated, crosses ? 1u : 0u);
    EXPECT_EQ(recovered.recovered_lsn,
              intact.records > 0 ? acked + intact.bytes : acked);
    EXPECT_GE(recovered.recovered_lsn, acked);

    // The log reopens and commits again.
    const uint64_t fresh = log.Append(32);
    ASSERT_NE(fresh, 0u);
    EXPECT_EQ(log.CommitUpTo(fresh), LogStatus::kOk);
  }
}

// Same sweep with arbitrary crash seeds: seeded device-cache loss stacks on
// the tear, so the boundary is no longer predictable — but recovery must
// still expose a whole-record prefix between the durable watermark and the
// tear, never a torn interior.
TEST_P(GroupCommitCrashTest, TornBatchSweepWithCacheLossStaysWholeRecords) {
  const uint64_t total = BatchBytes();
  // Record boundaries relative to the batch start (0 = nothing survived).
  std::vector<uint64_t> boundaries{0};
  {
    uint64_t cum = 0;
    for (uint64_t b : kBatchSizes) {
      boundaries.push_back(cum += b);
    }
  }
  for (uint64_t offset = 0; offset <= total; ++offset) {
    SCOPED_TRACE("tear offset " + std::to_string(offset));
    simio::Disk disk(FastDisk("redo_gc_sweep2"));
    RedoLog log(FlushPolicy::kEager, &disk, /*flusher_period_us=*/1e6,
                GetParam());

    uint64_t acked = 0;
    for (int i = 0; i < 3; ++i) {
      const uint64_t lsn = log.Append(50);
      ASSERT_NE(lsn, 0u);
      ASSERT_EQ(log.CommitUpTo(lsn), LogStatus::kOk);
      acked = lsn;
    }
    uint64_t last = 0;
    for (uint64_t bytes : kBatchSizes) {
      last = log.Append(bytes);
      ASSERT_NE(last, 0u);
    }
    log.set_crash_seed(offset * 2654435761ull + 17);  // arbitrary, per-offset

    fault::Activate("redo_gc_sweep2/torn_write",
                    fault::Trigger::AlwaysWithValue(offset));
    fault::Activate("redo/crash_after_write", fault::Trigger::OneShot());
    EXPECT_EQ(log.CommitUpTo(last), LogStatus::kCrashed);
    fault::DeactivateAll();

    const RecoveryResult recovered = log.Recover();
    EXPECT_GE(recovered.recovered_lsn, acked) << "acked LSN lost";
    const uint64_t into_batch = recovered.recovered_lsn - acked;
    // Whole-record prefix: the boundary lands exactly on a record end...
    EXPECT_TRUE(std::find(boundaries.begin(), boundaries.end(), into_batch) !=
                boundaries.end())
        << "recovered mid-record, " << into_batch << " bytes into the batch";
    // ...and never beyond the tear (nothing past it reached the device).
    EXPECT_LE(into_batch, IntactBelow(offset).bytes + 0u);
  }
}

// Concurrent committers racing a mid-batch crash: every commit acknowledged
// kOk before the crash must survive recovery, in both modes.
TEST_P(GroupCommitCrashTest, ConcurrentAckedCommitsSurviveMidBatchCrash) {
  simio::Disk disk(FastDisk("redo_gc_race"));
  RedoLog log(FlushPolicy::kEager, &disk, /*flusher_period_us=*/1e6,
              GetParam());
  log.set_crash_seed(1234);

  // Crash the 8th flush, tearing its batch write at a seeded-random point.
  fault::Activate("redo_gc_race/torn_write", fault::Trigger::OneShot(7));
  fault::Activate("redo/crash_after_write", fault::Trigger::OneShot(7));

  constexpr int kThreads = 4;
  constexpr int kCommitsPerThread = 30;
  std::vector<std::vector<uint64_t>> acked(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kCommitsPerThread; ++i) {
        const uint64_t lsn = log.Append(40 + 13 * static_cast<uint64_t>(t));
        if (lsn == 0) {
          return;  // crashed
        }
        if (log.CommitUpTo(lsn) == LogStatus::kOk) {
          acked[static_cast<size_t>(t)].push_back(lsn);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  fault::DeactivateAll();
  ASSERT_TRUE(log.crashed());

  const RecoveryResult recovered = log.Recover();
  for (int t = 0; t < kThreads; ++t) {
    for (uint64_t lsn : acked[static_cast<size_t>(t)]) {
      EXPECT_LE(lsn, recovered.recovered_lsn)
          << "thread " << t << " lost an acked LSN";
    }
  }

  const RedoLogStats stats = log.stats();
  EXPECT_GE(stats.crashes, 1u);
  if (GetParam() == CommitMode::kGroupCommit) {
    // Group commit actually grouped: more records hit the device per flush
    // than flushes ran (4 threads pile up behind each leader).
    EXPECT_GE(stats.leader_flushes, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(CommitModes, GroupCommitCrashTest,
                         ::testing::Values(CommitMode::kGroupCommit,
                                           CommitMode::kExclusive),
                         [](const ::testing::TestParamInfo<CommitMode>& info) {
                           return info.param == CommitMode::kGroupCommit
                                      ? "GroupCommit"
                                      : "Exclusive";
                         });

}  // namespace
}  // namespace minidb
