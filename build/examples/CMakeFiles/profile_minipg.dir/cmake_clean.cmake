file(REMOVE_RECURSE
  "CMakeFiles/profile_minipg.dir/profile_minipg.cpp.o"
  "CMakeFiles/profile_minipg.dir/profile_minipg.cpp.o.d"
  "profile_minipg"
  "profile_minipg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_minipg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
