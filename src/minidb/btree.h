// In-memory B-tree used as minidb's clustered index.
//
// The traversal function is instrumented as `btr_cur_search_to_nth_level`:
// the paper identifies it as an *inherent* variance source in MySQL (runtime
// varies with the depth the traversal must reach, Table 4).
#ifndef SRC_MINIDB_BTREE_H_
#define SRC_MINIDB_BTREE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

namespace minidb {

// Single-threaded B-tree; minidb serializes index access at a higher level
// (index latch), matching InnoDB's index-level S/X latching at a coarse
// grain.
class BTree {
 public:
  explicit BTree(int fanout = 64);
  ~BTree();

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  // Inserts or updates; returns true if a new key was inserted.
  bool Insert(int64_t key, uint64_t value);

  // Instrumented traversal (btr_cur_search_to_nth_level).
  std::optional<uint64_t> Search(int64_t key) const;

  // Removes a key; returns true if it was present. (Rebalancing is lazy:
  // underflowed nodes are tolerated, as in many production trees.)
  bool Erase(int64_t key);

  // Number of keys.
  size_t Size() const { return size_; }

  // Height of the tree (leaf = 1); the source of inherent search variance.
  int Height() const;

  // All keys in [lo, hi], ordered. Used by range queries (stock level).
  std::vector<std::pair<int64_t, uint64_t>> Range(int64_t lo, int64_t hi) const;

  // Validates B-tree invariants (ordering, key counts, uniform leaf depth);
  // returns false if violated. For tests.
  bool CheckInvariants() const;

 private:
  struct Node;

  Node* FindLeaf(int64_t key) const;
  void SplitChild(Node* parent, int index);
  bool InsertNonFull(Node* node, int64_t key, uint64_t value);
  bool CheckNode(const Node* node, int64_t lo, int64_t hi, int depth,
                 int* leaf_depth) const;

  int fanout_;
  size_t size_ = 0;
  std::unique_ptr<Node> root_;
};

}  // namespace minidb

#endif  // SRC_MINIDB_BTREE_H_
