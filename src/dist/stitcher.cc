#include "src/dist/stitcher.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace dist {

namespace {

// -1 sentinels (open end, no waker/generator) are not timestamps.
vprof::TimeNs Rebase(vprof::TimeNs t, int64_t offset) {
  return t < 0 ? t : t + offset;
}

void CollectSids(const vprof::Trace& trace,
                 std::unordered_set<vprof::IntervalId>* sids) {
  for (const vprof::ThreadTrace& thread : trace.threads) {
    for (const vprof::IntervalEvent& e : thread.interval_events) {
      sids->insert(e.sid);
    }
    for (const vprof::Segment& s : thread.segments) {
      if (s.sid != vprof::kNoInterval) {
        sids->insert(s.sid);
      }
    }
    for (const vprof::Invocation& inv : thread.invocations) {
      if (inv.sid != vprof::kNoInterval) {
        sids->insert(inv.sid);
      }
    }
  }
}

// Index of the last segment with start <= t, or -1.
int SegmentIndexAt(const vprof::ThreadTrace& thread, vprof::TimeNs t) {
  const auto& segs = thread.segments;
  const auto it = std::upper_bound(
      segs.begin(), segs.end(), t,
      [](vprof::TimeNs value, const vprof::Segment& s) {
        return value < s.start;
      });
  return static_cast<int>(it - segs.begin()) - 1;
}

struct MatchedSpan {
  net::ClientSpanRecord client;  // front clock
  net::ServerSpanRecord server;  // backend clock
};

}  // namespace

StitchResult StitchTraces(const TierTrace& front,
                          const std::vector<TierTrace>& backends) {
  StitchResult out;
  out.trace = front.trace;
  StitchStats& stats = out.stats;

  // Universe bookkeeping so fresh ids never collide with anything, including
  // tiers not yet processed.
  std::unordered_set<vprof::IntervalId> used_sids;
  CollectSids(front.trace, &used_sids);
  vprof::IntervalId next_sid = 1;
  {
    std::unordered_set<vprof::IntervalId> all = used_sids;
    for (const TierTrace& bt : backends) {
      CollectSids(bt.trace, &all);
    }
    for (const vprof::IntervalId sid : all) {
      next_sid = std::max(next_sid, sid + 1);
    }
  }
  std::unordered_set<vprof::ThreadId> used_tids;
  vprof::ThreadId max_tid = -1;
  for (const vprof::ThreadTrace& thread : out.trace.threads) {
    used_tids.insert(thread.tid);
    max_tid = std::max(max_tid, thread.tid);
  }
  for (const TierTrace& bt : backends) {
    for (const vprof::ThreadTrace& thread : bt.trace.threads) {
      max_tid = std::max(max_tid, thread.tid);
    }
  }

  // Function-name interning across tiers (separate processes register in
  // different orders; shared-process splits remap to identity).
  std::unordered_map<std::string, vprof::FuncId> name_to_func;
  for (size_t f = 0; f < out.trace.function_names.size(); ++f) {
    name_to_func.emplace(out.trace.function_names[f],
                         static_cast<vprof::FuncId>(f));
  }

  for (const TierTrace& bt : backends) {
    const int64_t off = bt.clock_offset_ns;

    std::vector<vprof::FuncId> func_map(bt.trace.function_names.size());
    for (size_t f = 0; f < bt.trace.function_names.size(); ++f) {
      const std::string& name = bt.trace.function_names[f];
      const auto it = name_to_func.find(name);
      if (it != name_to_func.end()) {
        func_map[f] = it->second;
      } else {
        const auto id =
            static_cast<vprof::FuncId>(out.trace.function_names.size());
        out.trace.function_names.push_back(name);
        name_to_func.emplace(name, id);
        func_map[f] = id;
      }
    }

    std::unordered_map<vprof::ThreadId, vprof::ThreadId> tid_map;
    for (const vprof::ThreadTrace& thread : bt.trace.threads) {
      vprof::ThreadId mapped = thread.tid;
      if (used_tids.count(mapped) != 0) {
        mapped = ++max_tid;
        ++stats.remapped_threads;
      }
      used_tids.insert(mapped);
      tid_map.emplace(thread.tid, mapped);
    }
    const auto map_tid = [&tid_map](vprof::ThreadId tid) {
      const auto it = tid_map.find(tid);
      return it == tid_map.end() ? tid : it->second;
    };

    // Join this tier's server spans with the front's client spans for this
    // service. A span id consumed once cannot match again: after a backend
    // restart the new process may reuse ids, and a double match would splice
    // one backend interval into two front intervals.
    std::unordered_map<uint64_t, net::ClientSpanRecord> client_by_span;
    for (const net::ClientSpanRecord& cs : front.client_spans) {
      if (cs.service == bt.service && cs.interval_id != 0) {
        client_by_span.emplace(cs.span_id, cs);
      }
    }
    std::vector<MatchedSpan> matched;
    std::unordered_map<vprof::IntervalId, vprof::IntervalId> sid_rewrite;
    std::unordered_set<vprof::IntervalId> matched_local_sids;
    for (const net::ServerSpanRecord& ss : bt.server_spans) {
      const auto it = client_by_span.find(ss.span_id);
      if (it == client_by_span.end() ||
          matched_local_sids.count(ss.local_sid) != 0) {
        ++stats.unmatched_server_spans;
        continue;
      }
      matched.push_back(MatchedSpan{it->second, ss});
      sid_rewrite[ss.local_sid] = it->second.interval_id;
      matched_local_sids.insert(ss.local_sid);
      client_by_span.erase(it);
      ++stats.matched_spans;
    }
    stats.unmatched_client_spans += client_by_span.size();

    // Unmatched backend interval ids that collide with ids already in the
    // merged trace get fresh ones (sorted iteration keeps replay bit-exact).
    std::unordered_set<vprof::IntervalId> bt_sids;
    CollectSids(bt.trace, &bt_sids);
    std::vector<vprof::IntervalId> bt_sid_list(bt_sids.begin(), bt_sids.end());
    std::sort(bt_sid_list.begin(), bt_sid_list.end());
    for (const vprof::IntervalId sid : bt_sid_list) {
      if (sid_rewrite.count(sid) != 0) {
        continue;  // matched: rewritten to the origin id
      }
      if (used_sids.count(sid) != 0) {
        sid_rewrite[sid] = next_sid;
        used_sids.insert(next_sid);
        ++next_sid;
        ++stats.remapped_intervals;
      } else {
        used_sids.insert(sid);
      }
    }
    const auto map_sid = [&sid_rewrite](vprof::IntervalId sid) {
      if (sid == vprof::kNoInterval) {
        return sid;
      }
      const auto it = sid_rewrite.find(sid);
      return it == sid_rewrite.end() ? sid : it->second;
    };

    // Copy the tier's threads onto the front's axis.
    for (const vprof::ThreadTrace& thread : bt.trace.threads) {
      vprof::ThreadTrace copy;
      copy.tid = map_tid(thread.tid);
      copy.dropped_records = thread.dropped_records;
      copy.invocations.reserve(thread.invocations.size());
      for (const vprof::Invocation& inv : thread.invocations) {
        vprof::Invocation v = inv;
        v.start = Rebase(v.start, off);
        v.end = Rebase(v.end, off);
        if (v.func < func_map.size()) {
          v.func = func_map[v.func];
        }
        v.sid = map_sid(v.sid);
        copy.invocations.push_back(v);
      }
      copy.segments.reserve(thread.segments.size());
      for (const vprof::Segment& seg : thread.segments) {
        vprof::Segment s = seg;
        s.start = Rebase(s.start, off);
        s.end = Rebase(s.end, off);
        s.sid = map_sid(s.sid);
        s.waker_tid = map_tid(s.waker_tid);
        s.waker_time = Rebase(s.waker_time, off);
        s.generator_tid = map_tid(s.generator_tid);
        s.generator_time = Rebase(s.generator_time, off);
        copy.segments.push_back(s);
      }
      copy.interval_events.reserve(thread.interval_events.size());
      for (const vprof::IntervalEvent& e : thread.interval_events) {
        if (matched_local_sids.count(e.sid) != 0) {
          // The front's begin/end define the distributed interval's extent;
          // the backend's local events would make TraceIndex clip it to the
          // backend's slice.
          ++stats.dropped_interval_events;
          continue;
        }
        vprof::IntervalEvent ev = e;
        ev.time = Rebase(ev.time, off);
        ev.sid = map_sid(ev.sid);
        copy.interval_events.push_back(ev);
      }
      out.trace.threads.push_back(std::move(copy));
    }
    for (const vprof::ThreadId tid : bt.trace.stuck_threads) {
      out.trace.stuck_threads.push_back(map_tid(tid));
    }
    out.trace.duration =
        std::max(out.trace.duration,
                 bt.trace.duration + std::max<int64_t>(0, off));

    // Inject the cross-tier created-by edges for every matched span. The
    // merged thread vector can reallocate on later tiers, so look indices up
    // fresh against the current state.
    std::unordered_map<vprof::ThreadId, size_t> thread_index;
    for (size_t i = 0; i < out.trace.threads.size(); ++i) {
      thread_index.emplace(out.trace.threads[i].tid, i);
    }
    const auto find_thread = [&](vprof::ThreadId tid) -> vprof::ThreadTrace* {
      const auto it = thread_index.find(tid);
      return it == thread_index.end() ? nullptr
                                      : &out.trace.threads[it->second];
    };

    for (const MatchedSpan& m : matched) {
      const vprof::IntervalId origin = m.client.interval_id;

      // Backend loop thread: its net:readable segment (now carrying the
      // origin id) was "created by" the front caller at send time. The
      // walker charges send -> readable as queue wait (request wire transit
      // + epoll latency) and continues on the front caller as target.
      if (vprof::ThreadTrace* loop = find_thread(map_tid(m.server.loop_tid))) {
        const vprof::TimeNs recv = Rebase(m.server.recv_time_ns, off);
        int idx = SegmentIndexAt(*loop, recv);
        // The stamp is taken inside the readable scope; tolerate boundary
        // jitter by scanning a couple of neighbors.
        for (int probe = idx; probe >= 0 && probe >= idx - 2; --probe) {
          vprof::Segment& seg = loop->segments[static_cast<size_t>(probe)];
          if (seg.sid == origin &&
              seg.state == vprof::SegmentState::kExecuting &&
              seg.generator_tid == vprof::kNoThread) {
            seg.generator_tid = m.client.caller_tid;
            seg.generator_time =
                std::min(m.client.send_time_ns, seg.start - 1);
            ++stats.injected_edges;
            break;
          }
          if (seg.end >= 0 && seg.end < recv - 1) {
            break;
          }
        }
      }

      // Front caller thread: the segment that resumes after the RPC wait was
      // "created by" the backend worker at reply time. The walker charges
      // reply -> resume as queue wait (reply transit + wake latency) and —
      // because the jump restores target-thread mode — walks the backend
      // worker with coverage attribution, which is what puts lock/WAL/
      // fil_flush waits into the merged tree.
      if (vprof::ThreadTrace* caller = find_thread(m.client.caller_tid)) {
        const vprof::TimeNs send = m.client.send_time_ns;
        const vprof::TimeNs recv = m.client.recv_time_ns;
        int blocked = -1;
        for (int i = SegmentIndexAt(*caller, recv); i >= 0; --i) {
          const vprof::Segment& seg =
              caller->segments[static_cast<size_t>(i)];
          if (seg.end >= 0 && seg.end < send) {
            break;
          }
          if (seg.sid == origin &&
              seg.state == vprof::SegmentState::kBlocked) {
            blocked = i;
            break;  // last blocked segment of the wait (the wake that stuck)
          }
        }
        if (blocked >= 0 &&
            static_cast<size_t>(blocked + 1) < caller->segments.size()) {
          vprof::Segment& resumed =
              caller->segments[static_cast<size_t>(blocked + 1)];
          if (resumed.sid == origin &&
              resumed.state == vprof::SegmentState::kExecuting &&
              resumed.generator_tid == vprof::kNoThread) {
            const vprof::TimeNs reply = Rebase(m.server.reply_time_ns, off);
            resumed.generator_tid = map_tid(m.server.worker_tid);
            resumed.generator_time = std::min(reply, resumed.start - 1);
            ++stats.injected_edges;
          }
        }
      }
    }
  }
  return out;
}

}  // namespace dist
