#include "src/simio/disk.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "src/fault/failpoint.h"
#include "src/statkit/distributions.h"

namespace simio {

void SleepUs(double us) {
  if (us <= 0.0) {
    return;
  }
  std::this_thread::sleep_for(
      std::chrono::nanoseconds(static_cast<int64_t>(us * 1000.0)));
}

Disk::Disk(const DiskConfig& config)
    : config_(config),
      fp_read_error_(config.fault_scope + "/read_error"),
      fp_write_error_(config.fault_scope + "/write_error"),
      fp_fsync_error_(config.fault_scope + "/fsync_error"),
      fp_torn_write_(config.fault_scope + "/torn_write"),
      fp_stall_(config.fault_scope + "/stall"),
      rng_(config.seed) {}

double Disk::SampleServiceUs(double mu, double sigma, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(rng_mu_);
  const double base = statkit::SampleLognormal(rng_, mu, sigma);
  const double transfer = static_cast<double>(bytes) / config_.bytes_per_us;
  return base + transfer;
}

void Disk::Service(double service_us) {
  if (config_.serialize_access) {
    std::lock_guard<std::mutex> lock(device_mu_);
    SleepUs(service_us);
  } else {
    SleepUs(service_us);
  }
}

double Disk::StallUs() {
  if (fault::Triggered(fp_stall_)) [[unlikely]] {
    stalls_.fetch_add(1, std::memory_order_relaxed);
    return config_.stall_us;
  }
  return 0.0;
}

IoResult Disk::Read(uint64_t bytes) {
  reads_.fetch_add(1, std::memory_order_relaxed);
  const double stall = StallUs();
  if (fault::Triggered(fp_read_error_)) [[unlikely]] {
    read_errors_.fetch_add(1, std::memory_order_relaxed);
    Service(config_.error_latency_us + stall);
    return IoResult{IoStatus::kError, 0};
  }
  Service(SampleServiceUs(config_.read_mu, config_.read_sigma, bytes) + stall);
  return IoResult{IoStatus::kOk, bytes};
}

IoResult Disk::Write(uint64_t bytes) {
  writes_.fetch_add(1, std::memory_order_relaxed);
  const double stall = StallUs();
  if (fault::Triggered(fp_write_error_)) [[unlikely]] {
    write_errors_.fetch_add(1, std::memory_order_relaxed);
    Service(config_.error_latency_us + stall);
    return IoResult{IoStatus::kError, 0};
  }
  uint64_t transferred = bytes;
  uint64_t torn_at = fault::Trigger::kNoValue;
  if (bytes > 0 && fault::TriggeredValue(fp_torn_write_, &torn_at)) [[unlikely]] {
    if (torn_at != fault::Trigger::kNoValue) {
      // The arming test chose the exact tear offset (byte-offset sweeps).
      transferred = std::min(torn_at, bytes);
    } else {
      // The device accepted only a prefix; which prefix is seed-deterministic.
      std::lock_guard<std::mutex> lock(rng_mu_);
      transferred = rng_.NextBelow(bytes);
    }
    torn_writes_.fetch_add(1, std::memory_order_relaxed);
  }
  buffered_bytes_.fetch_add(transferred, std::memory_order_relaxed);
  Service(SampleServiceUs(config_.write_mu, config_.write_sigma, transferred) +
          stall);
  return IoResult{IoStatus::kOk, transferred};
}

IoResult Disk::Fsync() {
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  const double stall = StallUs();
  if (fault::Triggered(fp_fsync_error_)) [[unlikely]] {
    // fsyncgate semantics: the failed flush drops the dirty buffer. Nothing
    // reached stable storage and nothing ever will — a later fsync covers
    // only writes issued after this point.
    buffered_bytes_.store(0, std::memory_order_relaxed);
    fsync_errors_.fetch_add(1, std::memory_order_relaxed);
    Service(config_.error_latency_us + stall);
    return IoResult{IoStatus::kError, 0};
  }
  double service = SampleServiceUs(config_.fsync_mu, config_.fsync_sigma, 0);
  {
    std::lock_guard<std::mutex> lock(rng_mu_);
    if (rng_.NextBool(config_.fsync_spike_prob)) {
      service *= config_.fsync_spike_scale;
    }
  }
  const uint64_t flushed = buffered_bytes_.exchange(0, std::memory_order_relaxed);
  Service(service + stall);
  return IoResult{IoStatus::kOk, flushed};
}

DiskFaultStats Disk::fault_stats() const {
  DiskFaultStats stats;
  stats.read_errors = read_errors_.load(std::memory_order_relaxed);
  stats.write_errors = write_errors_.load(std::memory_order_relaxed);
  stats.fsync_errors = fsync_errors_.load(std::memory_order_relaxed);
  stats.torn_writes = torn_writes_.load(std::memory_order_relaxed);
  stats.stalls = stalls_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace simio
