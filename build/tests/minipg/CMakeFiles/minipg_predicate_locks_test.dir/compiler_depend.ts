# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for minipg_predicate_locks_test.
