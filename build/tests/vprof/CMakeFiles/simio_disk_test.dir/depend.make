# Empty dependencies file for simio_disk_test.
# This may be replaced when dependencies are built.
