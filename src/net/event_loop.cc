#include "src/net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <utility>

namespace net {

EventLoop::EventLoop() {
  epoll_fd_.reset(::epoll_create1(0));
  wake_fd_.reset(::eventfd(0, EFD_NONBLOCK));
  if (!epoll_fd_.valid() || !wake_fd_.valid()) {
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_.get();
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wake_fd_.get(), &ev) != 0) {
    epoll_fd_.reset();
  }
}

EventLoop::~EventLoop() = default;

bool EventLoop::Add(int fd, uint32_t events, FdCallback callback) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
    return false;
  }
  callbacks_[fd] = std::make_shared<FdCallback>(std::move(callback));
  return true;
}

bool EventLoop::Mod(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  return ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &ev) == 0;
}

void EventLoop::Del(int fd) {
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(fd);
}

void EventLoop::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(posted_mu_);
    posted_.push_back(std::move(task));
  }
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(wake_fd_.get(), &one, sizeof(one));
}

void EventLoop::DrainWakeups() {
  uint64_t value = 0;
  while (::read(wake_fd_.get(), &value, sizeof(value)) > 0) {
  }
}

void EventLoop::RunPosted() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(posted_mu_);
    batch.swap(posted_);
  }
  for (auto& task : batch) {
    task();
  }
}

void EventLoop::Run(int tick_ms, const std::function<void()>& on_tick) {
  constexpr int kMaxEvents = 256;
  epoll_event events[kMaxEvents];
  while (!stop_.load(std::memory_order_acquire)) {
    const int n =
        ::epoll_wait(epoll_fd_.get(), events, kMaxEvents, tick_ms);
    if (stop_.load(std::memory_order_acquire)) {
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_.get()) {
        DrainWakeups();
        continue;
      }
      // Fresh lookup per event: a callback earlier in this batch may have
      // closed this fd (slow-peer eviction, protocol error on a sibling).
      const auto it = callbacks_.find(fd);
      if (it == callbacks_.end()) {
        continue;
      }
      const std::shared_ptr<FdCallback> callback = it->second;
      (*callback)(events[i].events);
    }
    RunPosted();
    if (on_tick) {
      on_tick();
    }
  }
  // One final drain so replies posted just before Stop are not dropped
  // silently (the server flushes best-effort during shutdown).
  RunPosted();
}

void EventLoop::Stop() {
  stop_.store(true, std::memory_order_release);
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(wake_fd_.get(), &one, sizeof(one));
}

}  // namespace net
