// TraceStitcher: merges per-tier traces into one trace whose semantic
// intervals span processes (ROADMAP item 5, the cross-service tentpole).
//
// Inputs are the front tier (owner of every distributed interval) and any
// number of backend tiers, each carrying its trace, its span records, and
// its clock offset. The stitcher:
//
//   1. Rebases every backend timestamp by the tier's calibrated fastclock
//      offset, so all records share the front's clock axis.
//   2. Remaps colliding thread ids and colliding *unmatched* interval ids
//      (separate processes allocate both independently — and a backend that
//      restarted mid-run reuses ids, the "reconnect collision" case).
//   3. For every matched span (front client span joined with a backend
//      server span on (service, span_id)): rewrites the backend's local
//      interval id to the originating front interval id on segments and
//      invocations, and *drops* the backend's local begin/end events — the
//      front owns the interval's extent.
//   4. Injects the two cross-tier created-by edges the critical-path walker
//      needs:
//        - the backend loop's net:readable segment is "created by" the front
//          caller at send time (request wire transit becomes queue wait);
//        - the front caller's post-reply segment is "created by" the backend
//          worker at reply time (reply transit becomes queue wait, and the
//          walk continues on the backend worker as a target thread, where
//          lock/WAL/fil_flush blocked segments get coverage attribution).
//
// Invariants (asserted by tests):
//   - Deterministic: identical inputs produce byte-identical outputs
//     (bit-exact replay via SaveTrace).
//   - Never invents time: only existing segments gain edges; no segment is
//     moved, split, or resized beyond the uniform clock rebase.
//   - An injected edge never violates the walker's precondition
//     generator_time < segment.start (clamped when clocks disagree).
//   - Unmatched spans and collisions are counted, never silently dropped.
#ifndef SRC_DIST_STITCHER_H_
#define SRC_DIST_STITCHER_H_

#include <cstdint>
#include <vector>

#include "src/dist/tier.h"

namespace dist {

struct StitchStats {
  uint64_t matched_spans = 0;
  uint64_t unmatched_client_spans = 0;  // no backend half (loss, restart)
  uint64_t unmatched_server_spans = 0;  // no front half (foreign caller)
  uint64_t remapped_threads = 0;    // backend tids renamed to avoid collision
  uint64_t remapped_intervals = 0;  // unmatched backend sids renamed
  uint64_t injected_edges = 0;      // cross-tier created-by edges added
  uint64_t dropped_interval_events = 0;  // backend-local begin/end removed
};

struct StitchResult {
  vprof::Trace trace;
  StitchStats stats;
};

// Merges `front` and `backends` into one trace on the front's clock axis.
// The front tier's records pass through unchanged (same tids, sids, times);
// backend records are rebased, remapped, and spliced as described above.
StitchResult StitchTraces(const TierTrace& front,
                          const std::vector<TierTrace>& backends);

}  // namespace dist

#endif  // SRC_DIST_STITCHER_H_
