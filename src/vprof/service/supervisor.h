// Self-healing supervision for the always-on profiling service.
//
// vprofd must never make a sick system sicker. The Supervisor watches the
// service's own health gauges — rotation gaps, tracer arena drops, stuck
// threads, history append errors — one observation per epoch, and walks an
// escalation ladder when they stay bad:
//
//   Normal      full profiling: every knob at its configured value.
//   Degraded    profiling keeps running but sheds load: epochs lengthen
//               (fewer rotations per second), app-gauge sampling is shed
//               from the persisted history, and the refinement controller
//               is frozen so the probe set stops growing.
//   Quarantined tracing is turned off entirely. The served workload runs
//               untouched; the harvester keeps rotating (empty epochs) so
//               health keeps being observed and the service can come back.
//
// Transitions use hysteresis in both directions: `escalate_after`
// consecutive unhealthy epochs move one level down the ladder,
// `restore_after` consecutive healthy epochs move one level back up. A
// quarantined service produces healthy (empty) epochs by construction, so
// restoration is automatic once the underlying pressure clears — the ladder
// then re-enters Degraded, and only re-reaches Normal if health holds.
//
// The Supervisor itself is engine-agnostic state machinery; Vprofd feeds it
// per-epoch deltas and applies its knobs to the harvester and controller
// (see vprofd.cc). State transitions are persisted to the history store as
// the "health:supervisor_state" series and exported as the
// vprofd_supervisor_state Prometheus gauge.
#ifndef SRC_VPROF_SERVICE_SUPERVISOR_H_
#define SRC_VPROF_SERVICE_SUPERVISOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>

namespace vprof {

enum class SupervisorState : uint8_t {
  kNormal = 0,
  kDegraded = 1,
  kQuarantined = 2,
};

const char* SupervisorStateName(SupervisorState state);

// Per-epoch health deltas (not cumulative counters): how much each gauge
// moved during the epoch being observed.
struct EpochHealth {
  uint64_t rotation_gap_ns = 0;        // tracing-off gap of this rotation
  uint64_t dropped_records = 0;        // tracer arena-cap drops this epoch
  uint64_t stuck_threads = 0;          // threads quarantined this epoch
  uint64_t history_append_errors = 0;  // failed history appends this epoch
};

struct SupervisorOptions {
  // An epoch is unhealthy when any delta exceeds its threshold.
  uint64_t max_rotation_gap_ns = 50'000'000;  // half the default epoch
  uint64_t max_dropped_records = 0;
  uint64_t max_stuck_threads = 0;
  uint64_t max_history_append_errors = 0;

  // Hysteresis: consecutive unhealthy epochs before stepping one level down
  // the ladder, and consecutive healthy epochs before stepping one back up.
  int escalate_after = 2;
  int restore_after = 4;

  // Degraded-state knobs. The epoch multiplier also applies in Quarantined
  // (rotations are cheap there, but there is no reason to hurry them).
  double degraded_epoch_multiplier = 4.0;
  bool degraded_shed_app_gauges = true;
  bool degraded_freeze_controller = true;
};

struct SupervisorStatus {
  SupervisorState state = SupervisorState::kNormal;
  uint64_t epochs_observed = 0;
  uint64_t unhealthy_epochs = 0;
  uint64_t escalations = 0;    // downward transitions
  uint64_t restorations = 0;   // upward transitions
  int unhealthy_streak = 0;
  int healthy_streak = 0;
};

class Supervisor {
 public:
  explicit Supervisor(SupervisorOptions options = {});

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  // Feeds one epoch's health deltas; returns true when the state changed.
  // Called once per epoch from the harvester sink.
  bool Observe(const EpochHealth& health);

  SupervisorState state() const {
    return state_.load(std::memory_order_acquire);
  }

  // Knobs under the current state, read by Vprofd after each Observe.
  bool tracing_enabled() const {
    return state() != SupervisorState::kQuarantined;
  }
  double epoch_multiplier() const {
    return state() == SupervisorState::kNormal
               ? 1.0
               : options_.degraded_epoch_multiplier;
  }
  bool shed_app_gauges() const {
    return state() != SupervisorState::kNormal &&
           options_.degraded_shed_app_gauges;
  }
  bool controller_enabled() const {
    return state() == SupervisorState::kNormal ||
           !options_.degraded_freeze_controller;
  }

  SupervisorStatus status() const;
  const SupervisorOptions& options() const { return options_; }

 private:
  bool Unhealthy(const EpochHealth& health) const;

  const SupervisorOptions options_;
  std::atomic<SupervisorState> state_{SupervisorState::kNormal};

  mutable std::mutex mu_;
  SupervisorStatus status_;  // guarded by mu_ (state mirrored in state_)
};

}  // namespace vprof

#endif  // SRC_VPROF_SERVICE_SUPERVISOR_H_
