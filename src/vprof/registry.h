// Global function registry and per-function instrumentation flags.
//
// The paper's tool rewrites source to instrument only the currently selected
// functions, recompiling between refinement iterations (Section 3.3.4). We
// get the same selectivity without recompiling: every instrumentable function
// carries a compiled-in probe that checks one relaxed atomic flag; the
// refinement driver flips flags between runs.
#ifndef SRC_VPROF_REGISTRY_H_
#define SRC_VPROF_REGISTRY_H_

#include <atomic>
#include <string>
#include <string_view>
#include <vector>

#include "src/vprof/types.h"

namespace vprof {

inline constexpr size_t kMaxFunctions = 4096;

// Per-function enable flags, indexed by FuncId. Exposed for the inline probe
// fast path only; use SetFunctionEnabled to mutate.
extern std::atomic<uint8_t> g_func_enabled[kMaxFunctions];

// Registers (or finds) a function by name and returns its dense id.
// Thread-safe; idempotent per name. Aborts if kMaxFunctions is exceeded.
FuncId RegisterFunction(std::string_view name);

// Returns the id for `name`, or kInvalidFunc if it was never registered.
FuncId LookupFunction(std::string_view name);

// Returns the registered name for `id` (empty string if out of range).
std::string FunctionName(FuncId id);

// Number of registered functions.
size_t RegisteredFunctionCount();

// Snapshot of all registered names, indexed by FuncId.
std::vector<std::string> AllFunctionNames();

// Enables or disables recording for one function.
void SetFunctionEnabled(FuncId id, bool enabled);

// Disables recording for every function.
void DisableAllFunctions();

// Currently enabled function ids.
std::vector<FuncId> EnabledFunctions();

inline bool IsFunctionEnabled(FuncId id) {
  return g_func_enabled[id].load(std::memory_order_relaxed) != 0;
}

}  // namespace vprof

#endif  // SRC_VPROF_REGISTRY_H_
