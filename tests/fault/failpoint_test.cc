#include "src/fault/failpoint.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace fault {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DeactivateAll();
    ResetCounters();
  }
  void TearDown() override { DeactivateAll(); }
};

TEST_F(FailpointTest, InactiveNeverFires) {
  EXPECT_FALSE(AnyActive());
  EXPECT_FALSE(Triggered("test/nothing"));
  EXPECT_EQ(HitCount("test/nothing"), 0u);
}

TEST_F(FailpointTest, AlwaysFiresWhileArmed) {
  Activate("test/always", Trigger::Always());
  EXPECT_TRUE(AnyActive());
  EXPECT_TRUE(Triggered("test/always"));
  EXPECT_TRUE(Triggered("test/always"));
  Deactivate("test/always");
  EXPECT_FALSE(Triggered("test/always"));
  EXPECT_EQ(HitCount("test/always"), 2u);
  EXPECT_EQ(TriggerCount("test/always"), 2u);
}

TEST_F(FailpointTest, OneShotFiresExactlyOnceAfterSkip) {
  Activate("test/oneshot", Trigger::OneShot(/*skip_hits=*/2));
  EXPECT_FALSE(Triggered("test/oneshot"));
  EXPECT_FALSE(Triggered("test/oneshot"));
  EXPECT_TRUE(Triggered("test/oneshot"));
  EXPECT_FALSE(Triggered("test/oneshot"));
  EXPECT_EQ(TriggerCount("test/oneshot"), 1u);
}

TEST_F(FailpointTest, EveryNthFiresPeriodically) {
  Activate("test/nth", Trigger::EveryNth(3));
  std::vector<bool> fires;
  for (int i = 0; i < 9; ++i) {
    fires.push_back(Triggered("test/nth"));
  }
  const std::vector<bool> expected = {false, false, true, false, false,
                                      true,  false, false, true};
  EXPECT_EQ(fires, expected);
}

TEST_F(FailpointTest, ProbabilityIsSeedDeterministic) {
  Activate("test/prob", Trigger::Probability(0.5, /*seed=*/1234));
  std::vector<bool> first;
  for (int i = 0; i < 64; ++i) {
    first.push_back(Triggered("test/prob"));
  }
  // Re-arming with the same seed replays the identical firing sequence.
  Activate("test/prob", Trigger::Probability(0.5, /*seed=*/1234));
  std::vector<bool> second;
  for (int i = 0; i < 64; ++i) {
    second.push_back(Triggered("test/prob"));
  }
  EXPECT_EQ(first, second);
  // And the rate is in the right ballpark.
  const auto fired = static_cast<int>(
      std::count(first.begin(), first.end(), true));
  EXPECT_GT(fired, 16);
  EXPECT_LT(fired, 48);
}

TEST_F(FailpointTest, ReArmingResetsActivationStateButKeepsCounters) {
  Activate("test/rearm", Trigger::OneShot());
  EXPECT_TRUE(Triggered("test/rearm"));
  Activate("test/rearm", Trigger::OneShot());
  EXPECT_TRUE(Triggered("test/rearm"));  // one-shot latch was reset
  EXPECT_EQ(TriggerCount("test/rearm"), 2u);
}

TEST_F(FailpointTest, ScopedFailpointDisarmsOnExit) {
  {
    ScopedFailpoint scoped("test/scoped", Trigger::Always());
    EXPECT_TRUE(Triggered("test/scoped"));
    EXPECT_TRUE(IsActive("test/scoped"));
  }
  EXPECT_FALSE(IsActive("test/scoped"));
  EXPECT_FALSE(Triggered("test/scoped"));
}

TEST_F(FailpointTest, DistinctNamesAreIndependent) {
  Activate("test/a", Trigger::Always());
  EXPECT_TRUE(Triggered("test/a"));
  EXPECT_FALSE(Triggered("test/b"));
  EXPECT_EQ(HitCount("test/b"), 0u);
}

TEST_F(FailpointTest, ValuePayloadReachesTheFiringSite) {
  Activate("test/value", Trigger::AlwaysWithValue(4242));
  uint64_t value = 0;
  EXPECT_TRUE(TriggeredValue("test/value", &value));
  EXPECT_EQ(value, 4242u);
  // The payload is stable across hits while armed.
  value = 0;
  EXPECT_TRUE(TriggeredValue("test/value", &value));
  EXPECT_EQ(value, 4242u);
}

TEST_F(FailpointTest, ValueDefaultsToNoValueSentinel) {
  // A trigger armed without a payload reports kNoValue, so firing sites can
  // fall back to their own behavior (e.g. seeded-random torn-write prefix).
  Activate("test/novalue", Trigger::Always());
  uint64_t value = 0;
  EXPECT_TRUE(TriggeredValue("test/novalue", &value));
  EXPECT_EQ(value, Trigger::kNoValue);
}

TEST_F(FailpointTest, OneShotWithValueFiresOnceWithPayload) {
  Activate("test/oneshot_value",
           Trigger::OneShotWithValue(/*value=*/7, /*skip_hits=*/1));
  uint64_t value = 0;
  EXPECT_FALSE(TriggeredValue("test/oneshot_value", &value));
  EXPECT_EQ(value, 0u);  // untouched until the trigger fires
  EXPECT_TRUE(TriggeredValue("test/oneshot_value", &value));
  EXPECT_EQ(value, 7u);
  EXPECT_FALSE(TriggeredValue("test/oneshot_value", &value));
  // Plain Triggered() at a value-armed site still works (payload dropped).
  Activate("test/oneshot_value", Trigger::OneShotWithValue(9));
  EXPECT_TRUE(Triggered("test/oneshot_value"));
}

TEST_F(FailpointTest, ConcurrentEvaluationCountsEveryHit) {
  Activate("test/mt", Trigger::EveryNth(2));
  constexpr int kThreads = 4;
  constexpr int kHitsPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kHitsPerThread; ++i) {
        Triggered("test/mt");
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(HitCount("test/mt"), kThreads * kHitsPerThread);
  EXPECT_EQ(TriggerCount("test/mt"), kThreads * kHitsPerThread / 2);
}

}  // namespace
}  // namespace fault
