# Empty compiler generated dependencies file for minidb_deadlock_test.
# This may be replaced when dependencies are built.
