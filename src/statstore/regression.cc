#include "src/statstore/regression.h"

#include <algorithm>
#include <cmath>

namespace statstore {

RegressionDetector::RegressionDetector(const RegressionOptions& options)
    : options_(options),
      gamma_(statkit::DecayFactorForHalfLife(options.half_life_epochs)) {}

bool RegressionDetector::Observe(const std::string& series, uint64_t epoch,
                                 double value) {
  if (!std::isfinite(value)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  SeriesState& state = series_[series];
  bool flagged = false;
  if (state.observations >= options_.warmup_epochs &&
      epoch >= state.cooldown_until) {
    const double mean = state.baseline.mean();
    const double sigma =
        std::max(state.baseline.stddev(), options_.sigma_floor);
    const double band =
        std::max(options_.k_sigma * sigma, options_.min_abs_shift);
    const double shift = value - mean;
    if (std::abs(shift) > band) {
      RegressionFlag flag;
      flag.series = series;
      flag.epoch = epoch;
      flag.value = value;
      flag.baseline_mean = mean;
      flag.baseline_sigma = sigma;
      flag.sigmas = sigma > 0.0 ? shift / sigma
                                : (shift > 0.0 ? HUGE_VAL : -HUGE_VAL);
      flags_.push_back(std::move(flag));
      while (flags_.size() > options_.max_flags) {
        flags_.pop_front();
      }
      ++flag_count_;
      state.cooldown_until = epoch + options_.cooldown_epochs;
      flagged = true;
    }
  }
  // The observation always joins the baseline — a persistent shift becomes
  // the new normal at the decay rate instead of flagging forever.
  state.baseline.Scale(gamma_);
  state.baseline.Add(value);
  ++state.observations;
  return flagged;
}

std::vector<RegressionFlag> RegressionDetector::flags() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<RegressionFlag>(flags_.begin(), flags_.end());
}

uint64_t RegressionDetector::flag_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flag_count_;
}

size_t RegressionDetector::series_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

bool RegressionDetector::Baseline(const std::string& series, double* mean,
                                  double* sigma) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = series_.find(series);
  if (it == series_.end() || it->second.observations == 0) {
    *mean = 0.0;
    *sigma = 0.0;
    return false;
  }
  *mean = it->second.baseline.mean();
  *sigma = it->second.baseline.stddev();
  return true;
}

}  // namespace statstore
