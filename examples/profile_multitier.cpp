// Multi-tier profiling (the paper's Section 5 future-work direction): one
// semantic interval spans an application-server request *and* the database
// transaction it issues. The variance tree crosses both tiers, so the
// profiler can tell whether end-to-end request variance comes from the app
// tier (rendering, queueing) or from inside the database (lock waits,
// log flushes).
//
// Architecture: client threads enqueue requests on a task queue; app workers
// dequeue (created-by edge), parse, run a minidb transaction (which *joins*
// the enclosing interval instead of opening its own), render, and signal the
// client.
//
// Build & run:  ./build/examples/profile_multitier
#include <cstdio>
#include <thread>
#include <vector>

#include "src/minidb/engine.h"
#include "src/vprof/analysis/profiler.h"
#include "src/vprof/probe.h"
#include "src/vprof/task_queue.h"
#include "src/workload/tpcc.h"

namespace {

struct AppRequest {
  vprof::IntervalId sid = vprof::kNoInterval;
  minidb::TxnRequest txn;
  vprof::Event* done = nullptr;
};

void ParseRequest() {
  VPROF_FUNC("app_parse");
  volatile uint64_t h = 1469598103934665603ull;
  for (int i = 0; i < 2000; ++i) {
    h = (h ^ static_cast<uint64_t>(i)) * 1099511628211ull;
  }
}

void RenderResponse() {
  VPROF_FUNC("app_render");
  volatile uint64_t h = 1469598103934665603ull;
  for (int i = 0; i < 6000; ++i) {
    h = (h ^ static_cast<uint64_t>(i)) * 1099511628211ull;
  }
}

class AppServer {
 public:
  AppServer(minidb::Engine* db, int workers) : db_(db) {
    for (int i = 0; i < workers; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~AppServer() {
    queue_.Close();
    for (auto& worker : workers_) {
      worker.join();
    }
  }

  void HandleBlocking(const minidb::TxnRequest& txn) {
    const vprof::IntervalId sid = vprof::BeginInterval();
    vprof::Event done;
    queue_.Push(AppRequest{sid, txn, &done});
    done.Wait();
    vprof::EndInterval(sid);
  }

 private:
  void WorkerLoop() {
    while (auto request = queue_.Pop()) {
      vprof::WorkOnBehalf(request->sid);
      {
        VPROF_FUNC("app_handle_request");
        ParseRequest();
        db_->Execute(request->txn);  // joins the enclosing interval
        RenderResponse();
      }
      request->done->Set();
      vprof::WorkOnBehalf(vprof::kNoInterval);
    }
  }

  minidb::Engine* db_;
  vprof::TaskQueue<AppRequest> queue_;
  std::vector<std::thread> workers_;
};

}  // namespace

int main() {
  minidb::EngineConfig config = minidb::EngineConfig::MemoryResident();
  config.warehouses = 2;
  minidb::Engine db(config);
  AppServer app(&db, /*workers=*/4);

  // Combined call graph: app tier on top of the database's graph.
  vprof::CallGraph graph;
  graph.AddEdge("app_handle_request", "app_parse");
  graph.AddEdge("app_handle_request", "run_transaction");
  graph.AddEdge("app_handle_request", "app_render");
  minidb::Engine::RegisterCallGraph(&graph);

  workload::TpccOptions options;
  options.threads = 8;
  options.transactions_per_thread = 200;
  const workload::TpccGenerator generator(options, config.warehouses);

  const auto run_workload = [&] {
    std::vector<std::thread> clients;
    for (int c = 0; c < options.threads; ++c) {
      clients.emplace_back([&, c] {
        statkit::Rng rng(77 + static_cast<uint64_t>(c));
        for (int i = 0; i < options.transactions_per_thread; ++i) {
          app.HandleBlocking(generator.Next(rng));
        }
      });
    }
    for (auto& client : clients) {
      client.join();
    }
  };
  run_workload();  // warm-up

  vprof::Profiler profiler("app_handle_request", &graph, run_workload);
  vprof::ProfileOptions profile_options;
  profile_options.top_k = 5;
  const vprof::ProfileResult result = profiler.Run(profile_options);
  std::printf("%s\n", result.Report().c_str());
  std::printf("The top factors come from *inside the database tier* (commit-\n"
              "path flushing and lock waits) — not from app_parse/app_render —\n"
              "even though the profiled interval is an application-server\n"
              "request crossing a queue hop and two software tiers.\n");
  return 0;
}
