# Empty compiler generated dependencies file for httpd_server_test.
# This may be replaced when dependencies are built.
