# Empty compiler generated dependencies file for profile_minidb.
# This may be replaced when dependencies are built.
