# Empty dependencies file for vprof_report_test.
# This may be replaced when dependencies are built.
