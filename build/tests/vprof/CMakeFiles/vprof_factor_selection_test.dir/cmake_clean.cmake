file(REMOVE_RECURSE
  "CMakeFiles/vprof_factor_selection_test.dir/factor_selection_test.cc.o"
  "CMakeFiles/vprof_factor_selection_test.dir/factor_selection_test.cc.o.d"
  "vprof_factor_selection_test"
  "vprof_factor_selection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vprof_factor_selection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
