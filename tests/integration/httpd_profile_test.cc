// End-to-end: VProfiler on httpd must reproduce the paper's Table 7 shape —
// allocation-related variance, including *covariance* factors between
// functions that share the allocator's memory-pressure root cause, and the
// critical path must cross the listener->worker queue hop.
#include <gtest/gtest.h>

#include "src/httpd/server.h"
#include "src/vprof/analysis/profiler.h"
#include "src/workload/ab.h"

namespace {

vprof::ProfileResult ProfileHttpd() {
  httpd::HttpdConfig config;
  config.workers = 4;
  config.global_free_blocks = 8;
  httpd::HttpServer server(config);
  vprof::CallGraph graph;
  httpd::HttpServer::RegisterCallGraph(&graph);
  workload::AbOptions options;
  options.clients = 4;
  options.requests_per_client = 1500;  // long enough to average over several
                                       // memory-pressure windows
  workload::AbDriver driver(&server, options);
  driver.Run();  // warm-up
  vprof::Profiler profiler("process_request", &graph, [&] { driver.Run(); });
  vprof::ProfileOptions profile_options;
  profile_options.top_k = 6;
  const auto result = profiler.Run(profile_options);
  server.Shutdown();
  return result;
}

TEST(HttpdProfileIntegration, AllocationVarianceSurfaces) {
  const auto result = ProfileHttpd();
  double alloc_contribution = 0.0;
  for (const auto& factor : result.all_factors) {
    const std::string label = factor.Label(result.function_names);
    if (label == "apr_bucket_alloc" || label == "apr_allocator_alloc") {
      alloc_contribution = std::max(alloc_contribution, factor.contribution);
    }
  }
  EXPECT_GT(alloc_contribution, 0.05);
}

TEST(HttpdProfileIntegration, CovarianceFactorsAppear) {
  const auto result = ProfileHttpd();
  // At least one positive covariance factor among the allocation-coupled
  // functions must rank with a non-trivial contribution (paper Table 7's
  // distinguishing feature).
  bool found_positive_pair = false;
  for (const auto& factor : result.all_factors) {
    if (factor.is_covariance() && factor.contribution > 0.01) {
      found_positive_pair = true;
      break;
    }
  }
  EXPECT_TRUE(found_positive_pair);
}

TEST(HttpdProfileIntegration, CriticalPathCrossesQueueHop) {
  // The intervals begin on client threads and end on workers; the analysis
  // must attribute most of the interval to the worker-side functions, which
  // requires following the created-by edge.
  const auto result = ProfileHttpd();
  ASSERT_NE(result.analysis, nullptr);
  const auto& analysis = *result.analysis;
  double process_request_mean = 0.0;
  for (size_t i = 1; i < analysis.node_count(); ++i) {
    const auto id = static_cast<vprof::NodeId>(i);
    if (analysis.NodeLabel(id) == "process_request") {
      process_request_mean += analysis.NodeMean(id);
    }
  }
  // The worker-side root function carries a meaningful share of the
  // interval: the created-by edge was followed. (On this single-core test
  // machine queueing still dominates the interval, so the share is well
  // under the multi-core case.)
  EXPECT_GT(process_request_mean, analysis.overall_mean() * 0.05);
}

}  // namespace
