#include "src/httpd/server.h"

#include <thread>

#include <gtest/gtest.h>

#include "src/fault/failpoint.h"
#include "src/httpd/brigade.h"
#include "src/workload/ab.h"

namespace httpd {
namespace {

// Pin the allocator's pressure phase: server tests assert on system-alloc
// counts, which must not depend on wall-clock pressure windows.
class CalmEnvironment : public ::testing::Environment {
 public:
  void SetUp() override { GlobalFreeList::SetPressureOverrideForTesting(0); }
  void TearDown() override {
    GlobalFreeList::SetPressureOverrideForTesting(-1);
  }
};
const auto* const kCalm =
    ::testing::AddGlobalTestEnvironment(new CalmEnvironment());

HttpdConfig FastConfig() {
  HttpdConfig config;
  config.workers = 2;
  config.file_disk.read_mu = 0.5;
  config.file_disk.serialize_access = false;
  return config;
}

TEST(BrigadeTest, AppendAndClearBalanceAllocator) {
  GlobalFreeList list(32, false);
  BucketAllocator alloc(&list, false);
  {
    Brigade brigade(&alloc);
    brigade.Append(BucketType::kHeap, 100);
    brigade.Append(BucketType::kFile, 169);
    EXPECT_EQ(brigade.buckets().size(), 2u);
    EXPECT_EQ(brigade.TotalBytes(), 269u);
  }
  // Brigade destructor freed both buckets.
  EXPECT_GE(alloc.local_free(), 0);
}

TEST(PageCacheTest, MissThenHit) {
  simio::DiskConfig disk_config;
  disk_config.read_mu = 0.5;
  disk_config.serialize_access = false;
  simio::Disk disk(disk_config);
  PageCache cache(16, &disk);
  EXPECT_FALSE(cache.ReadFile(1, 169));  // miss: disk read
  EXPECT_TRUE(cache.ReadFile(1, 169));   // hit
  EXPECT_EQ(disk.reads(), 1u);
}

TEST(FiltersTest, PassBrigadeRunsWholeChain) {
  GlobalFreeList list(32, false);
  BucketAllocator alloc(&list, false);
  Brigade brigade(&alloc);
  brigade.Append(BucketType::kHeap, 169);
  Filter core{Filter::Kind::kCoreOutput, nullptr};
  Filter header{Filter::Kind::kHeader, &core};
  Filter content_length{Filter::Kind::kContentLength, &header};
  ApPassBrigade(&content_length, &brigade);
  // content-length added one bucket, header two.
  EXPECT_EQ(brigade.buckets().size(), 4u);
}

TEST(HttpServerTest, ServesSingleRequest) {
  HttpServer server(FastConfig());
  server.HandleRequestBlocking(0);
  EXPECT_EQ(server.stats().requests_served, 1u);
  server.Shutdown();
}

TEST(HttpServerTest, ServesManyConcurrentClients) {
  HttpServer server(FastConfig());
  workload::AbOptions options;
  options.clients = 4;
  options.requests_per_client = 50;
  workload::AbDriver driver(&server, options);
  const workload::AbResult result = driver.Run();
  EXPECT_EQ(result.completed, 200u);
  EXPECT_EQ(result.latencies_ns.size(), 200u);
  EXPECT_EQ(server.stats().requests_served, 200u);
  // The default queue is unbounded: nothing is ever shed.
  EXPECT_EQ(result.rejected, 0u);
  EXPECT_EQ(server.stats().requests_rejected, 0u);
  EXPECT_GT(result.requests_per_s, 0.0);
  server.Shutdown();
}

TEST(HttpServerTest, ShedsLoadWhenQueueSaturates) {
  fault::DeactivateAll();
  HttpdConfig config = FastConfig();
  config.workers = 1;
  config.max_queue_depth = 1;
  // No page cache: every request pays the stalled disk read. With caching,
  // the saturation window ends as soon as the hot files are cached and the
  // shed assertion races thread startup.
  config.page_cache_files = 0;
  config.file_disk.fault_scope = "httpd_shed";
  config.file_disk.stall_us = 30000.0;  // every read stalls ~30 ms
  HttpServer server(config);
  fault::ScopedFailpoint stall("httpd_shed/stall", fault::Trigger::Always());
  // Two background clients retry until actually served, keeping the single
  // worker and the single queue slot occupied.
  auto persistent_client = [&](uint64_t file_id) {
    while (server.HandleRequestBlocking(file_id) != RequestStatus::kOk) {
    }
  };
  std::thread busy1(persistent_client, 0);
  std::thread busy2(persistent_client, 1);
  // With 1 worker + 1 queue slot there is capacity for 2 in-flight
  // requests; a third concurrent submission must eventually be shed.
  RequestStatus status = RequestStatus::kOk;
  for (int i = 0; i < 200 && status == RequestStatus::kOk; ++i) {
    status = server.HandleRequestBlocking(2);
  }
  EXPECT_EQ(status, RequestStatus::kServiceUnavailable);
  busy1.join();
  busy2.join();
  EXPECT_GE(server.stats().requests_rejected, 1u);
  server.Shutdown();
}

TEST(HttpServerTest, SaturatedServerAccountsEveryRequest) {
  fault::DeactivateAll();
  HttpdConfig config = FastConfig();
  config.workers = 1;
  config.max_queue_depth = 2;
  config.file_disk.fault_scope = "httpd_account";
  config.file_disk.stall_us = 20000.0;
  HttpServer server(config);
  workload::AbResult result;
  {
    fault::ScopedFailpoint stall("httpd_account/stall",
                                 fault::Trigger::Always());
    workload::AbOptions options;
    options.clients = 6;
    options.requests_per_client = 25;
    workload::AbDriver driver(&server, options);
    result = driver.Run();
  }
  // Every submission is either served or shed — none silently vanish.
  EXPECT_EQ(result.completed + result.rejected, 150u);
  EXPECT_GT(result.rejected, 0u);  // 6 clients vs. capacity for 3
  EXPECT_EQ(result.latencies_ns.size(), result.completed);
  const HttpdStats stats = server.stats();
  EXPECT_EQ(stats.requests_served, result.completed);
  EXPECT_EQ(stats.requests_rejected, result.rejected);
  server.Shutdown();
}

TEST(HttpServerTest, ShutdownIsIdempotent) {
  HttpServer server(FastConfig());
  server.HandleRequestBlocking(1);
  server.Shutdown();
  server.Shutdown();
}

TEST(HttpServerTest, MemoryPressureProducesSystemAllocs) {
  HttpdConfig config = FastConfig();
  config.global_free_blocks = 4;  // tiny pool: pressure guaranteed
  HttpServer server(config);
  workload::AbOptions options;
  options.clients = 4;
  options.requests_per_client = 50;
  workload::AbDriver driver(&server, options);
  driver.Run();
  EXPECT_GT(server.stats().system_allocs, 0u);
  server.Shutdown();
}

TEST(HttpServerTest, BulkAllocationReducesGlobalTrips) {
  auto run = [](bool bulk) {
    HttpdConfig config;
    config.workers = 2;
    config.bulk_allocation = bulk;
    config.global_free_blocks = 4;  // pressure regime
    config.file_disk.read_mu = 0.5;
    config.file_disk.serialize_access = false;
    HttpServer server(config);
    workload::AbOptions options;
    options.clients = 4;
    options.requests_per_client = 100;
    workload::AbDriver driver(&server, options);
    driver.Run();
    const uint64_t sys = server.stats().system_allocs;
    server.Shutdown();
    return sys;
  };
  const uint64_t lean_allocs = run(false);
  const uint64_t bulk_allocs = run(true);
  EXPECT_LT(bulk_allocs, lean_allocs);
}

TEST(HttpServerTest, CallGraphShape) {
  vprof::CallGraph graph;
  HttpServer::RegisterCallGraph(&graph);
  const auto root = vprof::RegisterFunction("process_request");
  EXPECT_EQ(graph.Children(root).size(), 2u);
  EXPECT_GE(graph.Height(root), 3);
}

}  // namespace
}  // namespace httpd
