#include "src/vprof/runtime.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/vprof/full_tracer.h"

#if defined(__linux__) && !defined(__SANITIZE_THREAD__)
#include <sys/syscall.h>
#include <unistd.h>
#define VPROF_HAVE_MEMBARRIER 1
#endif

namespace vprof {

std::atomic<bool> g_tracing{false};
std::atomic<bool> g_full_trace{false};

namespace detail {
std::atomic<bool> g_asymmetric_quiesce{false};

void MaybeWedgeProbe() {
  if (fault::Triggered("vprof/probe_wedge")) {
    // Hold the op window (busy_ stays set) until the test disarms the
    // failpoint, simulating a probe stuck mid-record.
    while (fault::IsActive("vprof/probe_wedge")) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
}
}  // namespace detail

namespace {

#ifdef VPROF_HAVE_MEMBARRIER
// Raw values from linux/membarrier.h, inlined so the build does not depend
// on kernel headers being installed.
constexpr long kMembarrierRegisterPrivateExpedited = 1 << 4;
constexpr long kMembarrierPrivateExpedited = 1 << 3;

bool RegisterQuiesceBarrier() {
  return syscall(__NR_membarrier, kMembarrierRegisterPrivateExpedited, 0, 0) ==
         0;
}

// Runs before main(), before any worker thread can exist, so every thread
// agrees on the handshake mode for the whole process lifetime.
struct EnableAsymmetricQuiesce {
  EnableAsymmetricQuiesce() {
    if (RegisterQuiesceBarrier()) {
      detail::g_asymmetric_quiesce.store(true, std::memory_order_relaxed);
    }
  }
};
EnableAsymmetricQuiesce g_enable_asymmetric_quiesce;
#endif

// Control-side StoreLoad fence for the asymmetric handshake: forces a full
// barrier on every core running a thread of this process. No-op (and not
// needed — both sides are seq_cst) when asymmetric mode is off.
void QuiesceBarrier() {
#ifdef VPROF_HAVE_MEMBARRIER
  if (detail::g_asymmetric_quiesce.load(std::memory_order_relaxed)) {
    syscall(__NR_membarrier, kMembarrierPrivateExpedited, 0, 0);
  }
#endif
}

struct RuntimeState {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadState>> threads;
  std::atomic<uint64_t> next_interval{1};
  uint64_t run_epoch = 0;  // guarded by mu
};

constexpr TimeNs kDefaultQuiesceTimeoutNs = 250'000'000;  // 250 ms
std::atomic<TimeNs> g_quiesce_timeout_ns{kDefaultQuiesceTimeoutNs};
std::atomic<size_t> g_arena_record_cap{0};

RuntimeState& State() {
  static RuntimeState* state = new RuntimeState();
  return *state;
}

thread_local ThreadState* tls_thread = nullptr;

// Stops recording and drains every in-flight op, waiting at most the
// configured bound per thread. A thread still mid-op after the bound is
// quarantined — its buffers may be written behind our back, so the control
// thread must neither read nor reset them. Returns the still-busy threads.
// Callers hold state.mu, so no new ThreadState can appear during the drain.
std::vector<ThreadState*> QuiesceLocked(RuntimeState& state) {
  g_tracing.store(false, std::memory_order_seq_cst);
  QuiesceBarrier();
  const TimeNs bound = g_quiesce_timeout_ns.load(std::memory_order_relaxed);
  std::vector<ThreadState*> wedged;
  for (auto& thread : state.threads) {
    if (thread->WaitQuiescentFor(bound)) {
      continue;
    }
    if (!thread->quarantined()) {
      thread->set_quarantined(true);
      std::fprintf(stderr,
                   "vprof: thread %d failed to quiesce within %lld ms; "
                   "quarantining its records\n",
                   static_cast<int>(thread->tid()),
                   static_cast<long long>(bound / 1'000'000));
    }
    wedged.push_back(thread.get());
  }
  return wedged;
}

}  // namespace

ThreadState* CurrentThread() {
  if (tls_thread == nullptr) {
    RuntimeState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    auto owned =
        std::make_unique<ThreadState>(static_cast<ThreadId>(state.threads.size()));
    owned->ResetForRun(state.run_epoch);
    tls_thread = owned.get();
    state.threads.push_back(std::move(owned));
  }
  return tls_thread;
}

// --- ThreadState ------------------------------------------------------------

void ThreadState::ResetForRun(uint64_t run_epoch) {
  run_epoch_ = run_epoch;
  current_sid_ = kNoInterval;
  const size_t cap = g_arena_record_cap.load(std::memory_order_relaxed);
  invocations_.set_max_records(cap);
  segments_.set_max_records(cap);
  interval_events_.set_max_records(cap);
  invocations_.clear();
  segments_.clear();
  interval_events_.clear();
  depth_ = 0;
  block_depth_ = 0;
  seg_start_ = -1;
  seg_sid_ = kNoInterval;
  seg_state_ = SegmentState::kExecuting;
  pending_gen_tid_ = kNoThread;
  pending_gen_time_ = -1;
  pending_waker_tid_ = kNoThread;
  pending_waker_time_ = -1;
}

void ThreadState::WaitQuiescent() const {
  int spins = 0;
  while (busy_.load(std::memory_order_seq_cst) != 0) {
    // Ops never block, so this resolves within one append — unless the owner
    // was preempted mid-op, in which case yield the core to it.
    if (++spins > 256) {
      std::this_thread::yield();
    }
  }
}

bool ThreadState::WaitQuiescentFor(TimeNs timeout_ns) const {
  if (busy_.load(std::memory_order_seq_cst) == 0) {
    return true;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::nanoseconds(timeout_ns);
  int spins = 0;
  while (busy_.load(std::memory_order_seq_cst) != 0) {
    if (++spins > 256) {
      std::this_thread::yield();
      if ((spins & 63) == 0 && std::chrono::steady_clock::now() >= deadline) {
        return false;
      }
    }
  }
  return true;
}

void ThreadState::EnsureSegmentOpen(TimeNs now) {
  if (seg_start_ >= 0) {
    return;
  }
  seg_start_ = now;
  seg_sid_ = current_sid_;
  seg_state_ = SegmentState::kExecuting;
}

void ThreadState::CloseSegment(TimeNs now) {
  if (seg_start_ < 0) {
    return;
  }
  Segment* seg = segments_.AppendSlot();
  seg->start = seg_start_;
  seg->end = now;
  seg->sid = seg_sid_;
  seg->state = seg_state_;
  // A pending created-by edge belongs to the dequeued task's execution, which
  // is the first *interval-labeled* segment after the dequeue. The consumer
  // relabels via WorkOnBehalf after Pop, so the unlabeled sliver between the
  // two must not consume the edge.
  if (seg_sid_ != kNoInterval) {
    seg->generator_tid = pending_gen_tid_;
    seg->generator_time = pending_gen_time_;
    pending_gen_tid_ = kNoThread;
    pending_gen_time_ = -1;
  } else {
    seg->generator_tid = kNoThread;
    seg->generator_time = -1;
  }
  seg_start_ = -1;
}

void ThreadState::SwitchInterval(IntervalId sid, TimeNs now) {
  if (!BeginOp()) {
    return;
  }
  if (sid != current_sid_ || seg_start_ < 0) {
    CloseSegment(now);
    current_sid_ = sid;
    EnsureSegmentOpen(now);
  }
  EndOp();
}

void ThreadState::BeginBlocked(SegmentState state, TimeNs now) {
  if (!BeginOp()) {
    return;
  }
  if (block_depth_++ == 0) {
    CloseSegment(now);
    seg_start_ = now;
    seg_sid_ = current_sid_;
    seg_state_ = state;
  }
  EndOp();
}

void ThreadState::EndBlocked(TimeNs now, ThreadId waker_tid, TimeNs waker_time) {
  if (!BeginOp()) {
    return;
  }
  if (block_depth_ > 0 && --block_depth_ > 0) {
    // Inner waits keep the outermost blocked segment open, but remember the
    // most recent waker: it is the event that actually freed the thread.
    pending_waker_tid_ = waker_tid;
    pending_waker_time_ = waker_time;
    EndOp();
    return;
  }
  if (waker_tid == kNoThread && pending_waker_tid_ != kNoThread) {
    waker_tid = pending_waker_tid_;
    waker_time = pending_waker_time_;
  }
  pending_waker_tid_ = kNoThread;
  pending_waker_time_ = -1;
  if (seg_start_ >= 0) {
    Segment* seg = segments_.AppendSlot();
    seg->start = seg_start_;
    seg->end = now;
    seg->sid = seg_sid_;
    seg->state = seg_state_;
    seg->waker_tid = waker_tid;
    seg->waker_time = waker_time;
    seg_start_ = -1;
  }
  EnsureSegmentOpen(now);
  EndOp();
}

void ThreadState::AttachGeneratorEdge(ThreadId producer_tid, TimeNs enqueue_time,
                                      TimeNs now) {
  if (!BeginOp()) {
    return;
  }
  CloseSegment(now);
  pending_gen_tid_ = producer_tid;
  pending_gen_time_ = enqueue_time;
  EnsureSegmentOpen(now);
  EndOp();
}

void ThreadState::RecordIntervalEvent(IntervalId sid, IntervalEventKind kind,
                                      TimeNs now, IntervalLabel label) {
  if (!BeginOp()) {
    return;
  }
  *interval_events_.AppendSlot() = IntervalEvent{sid, now, kind, label};
  EndOp();
}

ThreadTrace ThreadState::Collect(TimeNs end_time) {
  CloseSegment(end_time);
  ThreadTrace out;
  out.tid = tid_;
  invocations_.CopyTo(&out.invocations);
  segments_.CopyTo(&out.segments);
  interval_events_.CopyTo(&out.interval_events);
  out.dropped_records = invocations_.dropped() + segments_.dropped() +
                        interval_events_.dropped();
  // Clamp invocations still open at stop time.
  for (Invocation& inv : out.invocations) {
    if (inv.end < 0) {
      inv.end = end_time;
    }
  }
  return out;
}

// --- run control ------------------------------------------------------------

void StartTracing() {
  RuntimeState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  const std::vector<ThreadState*> wedged = QuiesceLocked(state);
  ++state.run_epoch;
  for (auto& thread : state.threads) {
    if (std::find(wedged.begin(), wedged.end(), thread.get()) !=
        wedged.end()) {
      // Still mid-op: leave its buffers alone; it stays quarantined and its
      // records are ignored until a later StartTracing finds it quiescent.
      continue;
    }
    thread->set_quarantined(false);
    thread->ResetForRun(state.run_epoch);
  }
  state.next_interval.store(1, std::memory_order_relaxed);
  fastclock::ResetEpoch();
  ResetFullTracer();
  g_tracing.store(true, std::memory_order_seq_cst);
}

Trace StopTracing() {
  RuntimeState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  QuiesceLocked(state);
  const TimeNs end_time = Now();
  Trace trace;
  trace.duration = end_time;
  trace.function_names = AllFunctionNames();
  for (auto& thread : state.threads) {
    if (thread->quarantined()) {
      trace.stuck_threads.push_back(thread->tid());
      continue;
    }
    ThreadTrace tt = thread->Collect(end_time);
    if (!tt.invocations.empty() || !tt.segments.empty() ||
        !tt.interval_events.empty()) {
      trace.threads.push_back(std::move(tt));
    }
  }
  return trace;
}

void SetQuiesceTimeoutNs(int64_t ns) {
  g_quiesce_timeout_ns.store(ns <= 0 ? kDefaultQuiesceTimeoutNs : ns,
                             std::memory_order_relaxed);
}

void SetArenaRecordCap(size_t cap) {
  g_arena_record_cap.store(cap, std::memory_order_relaxed);
}

void EnableFullTrace(bool enabled) {
  g_full_trace.store(enabled, std::memory_order_seq_cst);
}

// --- interval annotations ----------------------------------------------------

IntervalId BeginInterval(IntervalLabel label) {
  if (!IsTracing()) {
    return kNoInterval;
  }
  RuntimeState& state = State();
  const IntervalId sid = state.next_interval.fetch_add(1, std::memory_order_relaxed);
  ThreadState* thread = CurrentThread();
  const TimeNs now = Now();
  thread->RecordIntervalEvent(sid, IntervalEventKind::kBegin, now, label);
  thread->SwitchInterval(sid, now);
  return sid;
}

void EndInterval(IntervalId sid) {
  if (!IsTracing() || sid == kNoInterval) {
    return;
  }
  ThreadState* thread = CurrentThread();
  const TimeNs now = Now();
  thread->RecordIntervalEvent(sid, IntervalEventKind::kEnd, now);
  thread->SwitchInterval(kNoInterval, now);
}

void WorkOnBehalf(IntervalId sid) {
  if (!IsTracing()) {
    return;
  }
  CurrentThread()->SwitchInterval(sid, Now());
}

IntervalId CurrentIntervalId() {
  if (!IsTracing()) {
    return kNoInterval;
  }
  return CurrentThread()->current_sid();
}

}  // namespace vprof
