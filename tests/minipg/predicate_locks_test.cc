#include "src/minipg/predicate_locks.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace minipg {
namespace {

TEST(PredicateLocksTest, AcquireAndRelease) {
  PredicateLockManager pl;
  pl.Acquire(1, 100);
  pl.Acquire(1, 200);
  EXPECT_EQ(pl.ActiveLocks(), 2u);
  EXPECT_EQ(pl.ReleaseAll(1, {100, 200}), 2);
  EXPECT_EQ(pl.ActiveLocks(), 0u);
}

TEST(PredicateLocksTest, AcquireIdempotentPerTxn) {
  PredicateLockManager pl;
  pl.Acquire(1, 100);
  pl.Acquire(1, 100);
  EXPECT_EQ(pl.ActiveLocks(), 1u);
  EXPECT_EQ(pl.stats().acquired, 1u);
}

TEST(PredicateLocksTest, WriteConflictCountsOtherHolders) {
  PredicateLockManager pl;
  pl.Acquire(1, 100);
  pl.Acquire(2, 100);
  pl.Acquire(3, 100);
  // Writer txn 2: conflicts with 1 and 3, not itself.
  EXPECT_EQ(pl.CheckWriteConflicts(2, 100), 2);
  // No SIREAD holders elsewhere.
  EXPECT_EQ(pl.CheckWriteConflicts(2, 999), 0);
  EXPECT_EQ(pl.stats().conflicts_detected, 2u);
}

TEST(PredicateLocksTest, ReleaseOnlyOwnLocks) {
  PredicateLockManager pl;
  pl.Acquire(1, 100);
  pl.Acquire(2, 100);
  EXPECT_EQ(pl.ReleaseAll(1, {100}), 1);
  EXPECT_EQ(pl.ActiveLocks(), 1u);
  EXPECT_EQ(pl.CheckWriteConflicts(3, 100), 1);  // txn 2 still holds
}

TEST(PredicateLocksTest, ReleaseMissingIsZero) {
  PredicateLockManager pl;
  EXPECT_EQ(pl.ReleaseAll(1, {5, 6, 7}), 0);
}

TEST(PredicateLocksTest, ConcurrentAcquireRelease) {
  PredicateLockManager pl;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&pl, t] {
      for (int i = 0; i < 500; ++i) {
        const uint64_t txn = static_cast<uint64_t>(t + 1);
        std::vector<uint64_t> objects;
        for (int k = 0; k < 5; ++k) {
          const uint64_t object = static_cast<uint64_t>((i * 5 + k) % 64);
          pl.Acquire(txn, object);
          objects.push_back(object);
        }
        pl.ReleaseAll(txn, objects);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(pl.ActiveLocks(), 0u);
}

}  // namespace
}  // namespace minipg
