file(REMOVE_RECURSE
  "CMakeFiles/profile_minidb.dir/profile_minidb.cpp.o"
  "CMakeFiles/profile_minidb.dir/profile_minidb.cpp.o.d"
  "profile_minidb"
  "profile_minidb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_minidb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
