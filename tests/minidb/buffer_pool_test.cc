#include "src/minidb/buffer_pool.h"

#include <thread>

#include <gtest/gtest.h>

namespace minidb {
namespace {

simio::DiskConfig FastDisk() {
  simio::DiskConfig config;
  config.read_mu = 0.5;
  config.read_sigma = 0.05;
  config.write_mu = 0.5;
  config.write_sigma = 0.05;
  config.serialize_access = false;
  return config;
}

TEST(BufferPoolTest, MissThenHit) {
  simio::Disk disk(FastDisk());
  BufferPool pool(8, BufferPolicy::kBlockingMutex, 64, &disk);
  pool.GetPage(1, false);
  pool.GetPage(1, false);
  const auto stats = pool.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(pool.resident_pages(), 1u);
}

TEST(BufferPoolTest, CapacityEnforcedByEviction) {
  simio::Disk disk(FastDisk());
  BufferPool pool(4, BufferPolicy::kBlockingMutex, 64, &disk);
  for (PageId p = 0; p < 10; ++p) {
    pool.GetPage(p, false);
  }
  EXPECT_LE(pool.resident_pages(), 4u);
  const auto stats = pool.stats();
  EXPECT_EQ(stats.misses, 10u);
  EXPECT_EQ(stats.clean_evictions + stats.dirty_evictions, 6u);
  EXPECT_TRUE(pool.CheckInvariants());
}

TEST(BufferPoolTest, DirtyVictimsWrittenBack) {
  simio::Disk disk(FastDisk());
  BufferPool pool(2, BufferPolicy::kBlockingMutex, 64, &disk);
  pool.GetPage(1, true);  // dirty
  pool.GetPage(2, true);  // dirty
  pool.GetPage(3, false);  // evicts LRU (page 1, dirty)
  const auto stats = pool.stats();
  EXPECT_EQ(stats.dirty_evictions, 1u);
  EXPECT_GE(disk.writes(), 1u);
}

TEST(BufferPoolTest, LruKeepsHotPages) {
  simio::Disk disk(FastDisk());
  BufferPool pool(3, BufferPolicy::kBlockingMutex, 64, &disk);
  pool.GetPage(1, false);
  pool.GetPage(2, false);
  pool.GetPage(3, false);
  pool.GetPage(1, false);  // 1 now MRU
  pool.GetPage(4, false);  // evicts 2 (LRU)
  pool.GetPage(1, false);  // still resident: hit
  const auto stats = pool.stats();
  EXPECT_EQ(stats.misses, 4u);  // 1,2,3,4
  EXPECT_EQ(stats.hits, 2u);    // both re-touches of 1
}

TEST(BufferPoolTest, LazyLruSkipsMoveWhenMutexBusy) {
  // Slow dirty write-backs: an evicting thread holds the pool mutex for
  // ~1ms at a time (the single-page-flush path), so the hot-path bounded
  // try-lock must observe it busy and skip.
  simio::DiskConfig slow = FastDisk();
  slow.write_mu = 7.0;  // ~1.1ms median write-back, held under the pool mutex
  slow.write_sigma = 0.05;
  simio::Disk disk(slow);
  BufferPool pool(8, BufferPolicy::kLazyLruUpdate, 2, &disk);
  pool.GetPage(1, false);  // resident

  std::atomic<bool> stop{false};
  std::thread churn([&] {
    PageId p = 100;
    while (!stop.load()) {
      pool.GetPage(p++, true);  // dirty misses: evictions write back under
                                // the pool mutex
    }
  });
  // Wait until the churn thread is actually missing (single-core scheduling).
  const uint64_t reads_at_start = disk.reads();
  for (int i = 0; i < 1000 && disk.reads() < reads_at_start + 3; ++i) {
    simio::SleepUs(1000);
  }
  uint64_t skipped = 0;
  for (int i = 0; i < 2000 && skipped == 0; ++i) {
    pool.GetPage(1, false);
    skipped = pool.stats().lru_moves_skipped;
    simio::SleepUs(200);  // let the churn thread reacquire the mutex
  }
  stop.store(true);
  churn.join();
  EXPECT_GT(skipped, 0u);
}

TEST(BufferPoolTest, SpinLockPolicyStillCorrect) {
  simio::Disk disk(FastDisk());
  BufferPool pool(16, BufferPolicy::kSpinLock, 64, &disk);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&pool, t] {
      for (int i = 0; i < 500; ++i) {
        pool.GetPage(static_cast<PageId>((t * 500 + i) % 32), i % 2 == 0);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_TRUE(pool.CheckInvariants());
  EXPECT_LE(pool.resident_pages(), 16u);
}

TEST(BufferPoolTest, ShardAssignmentIsStableAndExhaustive) {
  simio::Disk disk(FastDisk());
  BufferPool pool(64, BufferPolicy::kBlockingMutex, 64, &disk,
                  /*instances=*/4);
  EXPECT_EQ(pool.instances(), 4);
  std::vector<int> touched(4, 0);
  for (PageId p = 0; p < 256; ++p) {
    const int shard = pool.ShardOf(p);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 4);
    EXPECT_EQ(shard, pool.ShardOf(p));  // stable across calls
    ++touched[static_cast<size_t>(shard)];
  }
  // The page-id hash spreads 256 sequential ids over every shard.
  for (int s = 0; s < 4; ++s) {
    EXPECT_GT(touched[static_cast<size_t>(s)], 0) << "shard " << s << " empty";
  }
}

TEST(BufferPoolTest, ShardedStatsAggregateAcrossInstances) {
  simio::Disk disk(FastDisk());
  BufferPool pool(64, BufferPolicy::kBlockingMutex, 64, &disk,
                  /*instances=*/4);
  for (PageId p = 0; p < 32; ++p) {
    pool.GetPage(p, false);
    pool.GetPage(p, false);
  }
  const BufferPoolStats total = pool.stats();
  EXPECT_EQ(total.misses, 32u);
  EXPECT_EQ(total.hits, 32u);
  uint64_t hits = 0;
  uint64_t misses = 0;
  for (int s = 0; s < pool.instances(); ++s) {
    hits += pool.shard_stats(s).hits;
    misses += pool.shard_stats(s).misses;
  }
  EXPECT_EQ(hits, total.hits);
  EXPECT_EQ(misses, total.misses);
  EXPECT_TRUE(pool.CheckInvariants());
}

TEST(BufferPoolTest, ShardedCapacityEnforcedUnderSkew) {
  simio::Disk disk(FastDisk());
  // All traffic lands where the hash sends it; no shard may ever exceed its
  // slice of the budget, so the pool total stays bounded.
  BufferPool pool(16, BufferPolicy::kBlockingMutex, 64, &disk,
                  /*instances=*/4);
  for (PageId p = 0; p < 200; ++p) {
    pool.GetPage(p, p % 2 == 0);
  }
  EXPECT_LE(pool.resident_pages(), 16u);
  EXPECT_TRUE(pool.CheckInvariants());
}

TEST(BufferPoolTest, ResizeShrinkEvictsAndGrowReadmits) {
  simio::Disk disk(FastDisk());
  BufferPool pool(32, BufferPolicy::kBlockingMutex, 64, &disk,
                  /*instances=*/4);
  for (PageId p = 0; p < 32; ++p) {
    pool.GetPage(p, false);
  }
  pool.Resize(8);
  EXPECT_LE(pool.resident_pages(), 8u);
  EXPECT_TRUE(pool.CheckInvariants());
  pool.Resize(32);
  for (PageId p = 0; p < 32; ++p) {
    pool.GetPage(p, false);
  }
  EXPECT_LE(pool.resident_pages(), 32u);
  EXPECT_GT(pool.resident_pages(), 8u);
  EXPECT_TRUE(pool.CheckInvariants());
}

TEST(BufferPoolTest, ContendedShardMutexCountsWaits) {
  simio::Disk disk(FastDisk());
  BufferPool pool(64, BufferPolicy::kBlockingMutex, 64, &disk,
                  /*instances=*/2);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&pool, t] {
      for (int i = 0; i < 500; ++i) {
        pool.GetPage(static_cast<PageId>((i + t) % 16), i % 4 == 0);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  const BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.hits + stats.misses, 2000u);
  // Contended acquisitions both count and accumulate wait time consistently:
  // a zero-wait total with recorded waits (or vice versa) would mean the two
  // counters tore apart.
  if (stats.mutex_waits > 0) {
    EXPECT_GT(stats.mutex_wait_ns, 0u);
  }
  EXPECT_TRUE(pool.CheckInvariants());
}

TEST(BufferPoolTest, ConcurrentMixedWorkloadKeepsInvariants) {
  simio::Disk disk(FastDisk());
  BufferPool pool(32, BufferPolicy::kBlockingMutex, 64, &disk);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&pool, t] {
      for (int i = 0; i < 1000; ++i) {
        pool.GetPage(static_cast<PageId>((i * 7 + t * 13) % 100), i % 3 == 0);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_TRUE(pool.CheckInvariants());
  const auto stats = pool.stats();
  EXPECT_EQ(stats.hits + stats.misses, 4000u);
}

}  // namespace
}  // namespace minidb
