// Open-loop network load benchmark (ISSUE: network front-end). Emits
// BENCH_net.json.
//
// A minidb engine sits behind the epoll NetServer; the open-loop generator
// offers Poisson and bursty (MMPP) arrivals over >= 1000 concurrent loopback
// connections at three utilization points bracketing the measured capacity.
// At each point the harness reports acked-vs-offered throughput, the shed
// (503) count, p50/p99/p999 latency measured from the SCHEDULED arrival
// (coordinated-omission free), and the variance-tree top-3 from a traced
// run whose intervals are anchored at socket readability.
//
// Expected shape: below saturation the top factors are the engine's own
// (locks, log I/O); past saturation the dispatch queue dominates and the
// "net:queue_wait" factor — the enqueue-to-dequeue gap recovered by the
// critical-path walker's created-by edges — enters the top-3. Bursty
// arrivals at the same mean rate push the tail (and the queue factor's
// contribution) up well before mean utilization reaches 1: variance in the
// arrival process becomes variance in the latency distribution.
//
// Acceptance (driver-checked): a net-side factor ranks in the top-3 at the
// overload point.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/net/frontend.h"
#include "src/net/server.h"
#include "src/statkit/rng.h"
#include "src/vprof/analysis/factor_selection.h"
#include "src/workload/openloop.h"

namespace {

constexpr size_t kConnections = 1024;
constexpr size_t kDispatchDepth = 64;
constexpr int kWorkers = 2;
constexpr int kWarehouses = 4;
constexpr double kCalibrationRate = 6000.0;  // well past any plausible capacity
constexpr double kCalibrationSeconds = 0.8;
constexpr double kMeasureSeconds = 1.5;
constexpr double kTraceSeconds = 1.0;
// Offered-load points as multiples of measured capacity: light, near-knee,
// overload.
const double kUtilizations[] = {0.5, 0.9, 1.4};

struct FactorShare {
  std::string name;
  double contribution = 0.0;
};

struct LoadPoint {
  double utilization = 0.0;
  double offered_per_s = 0.0;
  workload::OpenLoopResult run;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  std::vector<FactorShare> top_factors;
};

struct Harness {
  minidb::Engine engine;
  net::NetServer server;

  explicit Harness(size_t dispatch_depth)
      : engine(EngineConfig()),
        server(ServerOptions(dispatch_depth), net::MakeMinidbHandler(&engine)) {
  }

  static minidb::EngineConfig EngineConfig() {
    minidb::EngineConfig config = bench::MysqlMemoryResidentConfig();
    config.warehouses = kWarehouses;
    return config;
  }

  static net::NetServerOptions ServerOptions(size_t dispatch_depth) {
    net::NetServerOptions options;
    options.workers = kWorkers;
    options.max_dispatch_depth = dispatch_depth;
    options.max_connections = 2 * kConnections;
    return options;
  }
};

workload::OpenLoopOptions LoadOptions(uint16_t port, double rate_per_s,
                                      workload::ArrivalProcess process,
                                      double seconds, uint64_t seed) {
  workload::OpenLoopOptions options;
  options.port = port;
  options.connections = kConnections;
  options.duration_s = seconds;
  options.arrivals.process = process;
  options.arrivals.rate_per_sec = rate_per_s;
  options.seed = seed;

  // Deterministic TPC-C-shaped request stream. The generator is stateful;
  // the driver calls make_request in schedule order on one thread, so one
  // Rng per options object is exact.
  auto rng = std::make_shared<statkit::Rng>(seed ^ 0xabcdef);
  auto gen = std::make_shared<workload::TpccGenerator>(workload::TpccOptions{},
                                                       kWarehouses);
  options.make_request = [rng, gen](uint64_t) {
    net::Frame frame;
    frame.type = net::MsgType::kTxn;
    frame.txn = gen->Next(*rng);
    return frame;
  };
  return options;
}

void FillPercentiles(LoadPoint* point) {
  point->p50_ms =
      workload::PercentileNs(point->run.latencies_ns, 50.0) / 1e6;
  point->p99_ms =
      workload::PercentileNs(point->run.latencies_ns, 99.0) / 1e6;
  point->p999_ms =
      workload::PercentileNs(point->run.latencies_ns, 99.9) / 1e6;
}

// One fully-instrumented traced run; the variance tree materializes the
// queue-wait factor so net-side time competes with the engine's functions.
std::vector<FactorShare> TraceTopFactors(Harness* harness,
                                         const workload::OpenLoopOptions&
                                             options) {
  vprof::CallGraph graph;
  minidb::Engine::RegisterCallGraph(&graph);
  net::NetServer::RegisterNetCallGraph(&graph, "run_transaction");

  const size_t registered = vprof::RegisteredFunctionCount();
  for (vprof::FuncId id = 0; id < registered; ++id) {
    vprof::SetFunctionEnabled(id, true);
  }
  vprof::StartTracing();
  workload::RunOpenLoop(options);
  const vprof::Trace trace = vprof::StopTracing();
  vprof::DisableAllFunctions();

  vprof::CriticalPathOptions path_options;
  path_options.queue_wait_factor = net::kQueueWaitFactor;
  const vprof::VarianceAnalysis analysis(trace, path_options);
  const std::vector<vprof::Factor> factors = vprof::AggregateFactors(
      analysis, graph, vprof::RegisterFunction(net::kNetRootFunc),
      vprof::SpecificityKind::kQuadratic);

  std::vector<FactorShare> top;
  for (const vprof::Factor& factor : factors) {
    if (factor.func_b != vprof::kInvalidFunc) {
      continue;  // single-function factors; covariances echo them
    }
    top.push_back(
        {factor.Label(trace.function_names), factor.contribution});
    if (top.size() == 3) {
      break;
    }
  }
  (void)harness;
  return top;
}

LoadPoint MeasurePoint(Harness* harness, double capacity, double utilization,
                       workload::ArrivalProcess process, uint64_t seed) {
  LoadPoint point;
  point.utilization = utilization;
  point.offered_per_s = capacity * utilization;

  point.run = workload::RunOpenLoop(LoadOptions(
      harness->server.port(), point.offered_per_s, process, kMeasureSeconds,
      seed));
  FillPercentiles(&point);
  point.top_factors = TraceTopFactors(
      harness, LoadOptions(harness->server.port(), point.offered_per_s,
                           process, kTraceSeconds, seed + 1));
  return point;
}

const char* ShapeName(workload::ArrivalProcess process) {
  return process == workload::ArrivalProcess::kPoisson ? "poisson" : "bursty";
}

bool HasNetFactor(const std::vector<FactorShare>& top) {
  for (const FactorShare& f : top) {
    if (f.name.rfind("net:", 0) == 0) {
      return true;
    }
  }
  return false;
}

void PrintShape(workload::ArrivalProcess process,
                const std::vector<LoadPoint>& points) {
  std::printf("\n  %s arrivals\n", ShapeName(process));
  std::printf("  %5s %10s %10s %8s %8s %8s %9s %9s %9s  %s\n", "util",
              "offered/s", "acked/s", "acked", "rejected", "failed",
              "p50 (ms)", "p99 (ms)", "p999(ms)", "top variance factors");
  for (const LoadPoint& p : points) {
    std::string factors;
    for (const FactorShare& f : p.top_factors) {
      char buf[128];
      std::snprintf(buf, sizeof(buf), "%s%s %.1f%%",
                    factors.empty() ? "" : ", ", f.name.c_str(),
                    f.contribution * 100.0);
      factors += buf;
    }
    std::printf("  %5.2f %10.0f %10.0f %8llu %8llu %8llu %9.3f %9.3f %9.3f  %s\n",
                p.utilization, p.offered_per_s, p.run.achieved_per_s,
                static_cast<unsigned long long>(p.run.acked),
                static_cast<unsigned long long>(p.run.rejected),
                static_cast<unsigned long long>(p.run.failed), p.p50_ms,
                p.p99_ms, p.p999_ms, factors.c_str());
  }
}

void EmitPoints(FILE* json, const std::vector<LoadPoint>& points) {
  std::fprintf(json, "      \"points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const LoadPoint& p = points[i];
    std::fprintf(
        json,
        "        {\"utilization\": %.2f, \"offered_per_s\": %.1f, "
        "\"achieved_per_s\": %.1f, \"sent\": %llu, \"acked\": %llu, "
        "\"rejected\": %llu, \"failed\": %llu, \"in_flight\": %llu, "
        "\"p50_ms\": %.4f, \"p99_ms\": %.4f, \"p999_ms\": %.4f, "
        "\"top_factors\": [",
        p.utilization, p.offered_per_s, p.run.achieved_per_s,
        static_cast<unsigned long long>(p.run.sent),
        static_cast<unsigned long long>(p.run.acked),
        static_cast<unsigned long long>(p.run.rejected),
        static_cast<unsigned long long>(p.run.failed),
        static_cast<unsigned long long>(p.run.in_flight), p.p50_ms, p.p99_ms,
        p.p999_ms);
    for (size_t f = 0; f < p.top_factors.size(); ++f) {
      std::fprintf(json, "%s{\"name\": \"%s\", \"contribution\": %.4f}",
                   f == 0 ? "" : ", ", p.top_factors[f].name.c_str(),
                   p.top_factors[f].contribution);
    }
    std::fprintf(json, "]}%s\n", i + 1 < points.size() ? "," : "");
  }
  std::fprintf(json, "      ]\n");
}

}  // namespace

int main() {
  bench::PrintHeader(
      "netload — open-loop latency vs offered load through the epoll "
      "front-end");
  std::printf("Expected shape: past saturation the dispatch queue dominates\n"
              "and net:queue_wait enters the top-3; bursty arrivals at the\n"
              "same mean rate fatten the tail before mean utilization hits 1.\n");

  Harness harness(kDispatchDepth);
  if (!harness.server.Start()) {
    std::fprintf(stderr, "netload: server failed to start\n");
    return 1;
  }

  // Capacity calibration: saturate the server (unbounded offered load far
  // beyond service rate); the acked rate is the service capacity.
  const workload::OpenLoopResult calibration = workload::RunOpenLoop(
      LoadOptions(harness.server.port(), kCalibrationRate,
                  workload::ArrivalProcess::kPoisson, kCalibrationSeconds,
                  /*seed=*/7));
  if (calibration.connect_failed || calibration.acked == 0) {
    std::fprintf(stderr, "netload: calibration run failed\n");
    return 1;
  }
  const double capacity = calibration.achieved_per_s;
  std::printf("\n  calibration: %llu acked over %d connections -> capacity "
              "~%.0f req/s\n",
              static_cast<unsigned long long>(calibration.acked),
              static_cast<int>(kConnections), capacity);

  const workload::ArrivalProcess shapes[] = {
      workload::ArrivalProcess::kPoisson, workload::ArrivalProcess::kBursty};
  std::vector<std::vector<LoadPoint>> results;
  uint64_t seed = 1000;
  for (const workload::ArrivalProcess process : shapes) {
    std::vector<LoadPoint> points;
    for (const double utilization : kUtilizations) {
      points.push_back(
          MeasurePoint(&harness, capacity, utilization, process, seed));
      seed += 10;
    }
    PrintShape(process, points);
    results.push_back(std::move(points));
  }

  harness.server.Shutdown();

  // Acceptance: a net-side factor in the top-3 at the overload point of at
  // least one shape (both normally qualify).
  const bool net_at_overload = HasNetFactor(results[0].back().top_factors) ||
                               HasNetFactor(results[1].back().top_factors);
  std::printf("\n  acceptance: net-side factor in top-3 at overload: %s\n",
              net_at_overload ? "yes" : "NO");

  FILE* json = std::fopen("BENCH_net.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "netload: cannot write BENCH_net.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"benchmark\": \"netload\",\n");
  std::fprintf(json, "  \"connections\": %d,\n",
               static_cast<int>(kConnections));
  std::fprintf(json, "  \"workers\": %d,\n", kWorkers);
  std::fprintf(json, "  \"dispatch_depth\": %d,\n",
               static_cast<int>(kDispatchDepth));
  std::fprintf(json, "  \"capacity_per_s\": %.1f,\n", capacity);
  std::fprintf(json, "  \"shapes\": {\n");
  for (size_t s = 0; s < results.size(); ++s) {
    std::fprintf(json, "    \"%s\": {\n", ShapeName(shapes[s]));
    EmitPoints(json, results[s]);
    std::fprintf(json, "    }%s\n", s + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  },\n  \"acceptance\": {\n");
  std::fprintf(json, "    \"net_factor_in_top3_at_overload\": %s\n",
               net_at_overload ? "true" : "false");
  std::fprintf(json, "  }\n}\n");
  std::fclose(json);
  std::printf("  wrote BENCH_net.json\n");
  return net_at_overload ? 0 : 1;
}
