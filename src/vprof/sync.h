// Instrumented synchronization primitives (paper Section 3.3.2).
//
// The paper wraps an application's blocking primitives so the runtime can log
// (a) blocked segments and (b) wake-up dependence edges <tid, tid', t>. Lock
// ownership is tracked through a global hash map of [object -> last releasing
// thread], exactly as described in the paper. Applications built in this
// repository use vprof::Mutex / CondVar / Event wherever a blocking wait can
// put a semantic interval's critical path onto another thread.
#ifndef SRC_VPROF_SYNC_H_
#define SRC_VPROF_SYNC_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>

#include "src/vprof/runtime.h"
#include "src/vprof/types.h"

namespace vprof {

// Last thread to release/signal a synchronization object, and when.
struct OwnerStamp {
  ThreadId tid = kNoThread;
  TimeNs time = -1;
};

// Global sharded map: synchronization object address -> last releasing
// thread. Matches the [oid -> tid] hash map of paper Section 3.3.2.
class OwnerMap {
 public:
  static OwnerMap& Get();

  void Record(const void* object, ThreadId tid, TimeNs time);
  std::optional<OwnerStamp> Lookup(const void* object) const;
  void Clear();

  struct Shard;

 private:
  OwnerMap() = default;
  static constexpr int kShardCount = 64;
  Shard* ShardFor(const void* object) const;
};

// Mutex whose contended acquisitions are recorded as blocked segments with a
// wake-up edge to the previous holder. Satisfies BasicLockable.
class Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock();
  bool try_lock();
  void unlock();

 private:
  std::mutex mu_;
};

// Condition variable usable with vprof::Mutex; notifiers are recorded so a
// woken waiter's blocked segment carries the correct wake-up edge.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Caller must hold `mu`. Predicate-free wait; spurious wakeups possible,
  // callers loop as with std::condition_variable.
  void Wait(Mutex& mu);

  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) {
    while (!pred()) {
      Wait(mu);
    }
  }

  // Waits up to `timeout_ns`; returns false on timeout (predicate-free,
  // spurious wakeups possible).
  bool WaitFor(Mutex& mu, int64_t timeout_ns);

  void NotifyOne();
  void NotifyAll();

 private:
  std::condition_variable_any cv_;
  // Packed (tid << 48 | time_ns) stamp of the last notifier; racy reads are
  // acceptable for diagnostic edges.
  std::atomic<uint64_t> last_notify_{0};

  friend class Event;
};

// Binary event in the style of InnoDB's os_event: Set wakes all current and
// future waiters until Reset.
class Event {
 public:
  Event() = default;

  // Blocks until the event is set. The wait is recorded as a blocked segment
  // whose wake-up edge points at the setter.
  void Wait();

  // Blocks until set or timeout; returns false on timeout.
  bool WaitFor(int64_t timeout_ns);

  void Set();
  void Reset();
  bool IsSet() const;

 private:
  mutable Mutex mu_;
  CondVar cv_;
  bool set_ = false;
};

// Packs/unpacks notifier stamps (exposed for tests).
uint64_t PackOwnerStamp(ThreadId tid, TimeNs time);
OwnerStamp UnpackOwnerStamp(uint64_t packed);

}  // namespace vprof

#endif  // SRC_VPROF_SYNC_H_
