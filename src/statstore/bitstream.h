// Bit-granular append/read streams for the Gorilla-style codecs.
//
// The compressed epoch records in segment.h are sequences of variable-width
// fields (control bits, zig-zag deltas, XOR windows) that do not align to
// byte boundaries. BitWriter appends most-significant-bit-first into a byte
// vector; BitReader consumes the same layout and reports exhaustion instead
// of reading past the end, so a truncated payload decodes to a clean error
// rather than garbage.
#ifndef SRC_STATSTORE_BITSTREAM_H_
#define SRC_STATSTORE_BITSTREAM_H_

#include <cstdint>
#include <cstddef>
#include <vector>

namespace statstore {

class BitWriter {
 public:
  // Appends the low `bits` bits of `value`, most significant first.
  void Write(uint64_t value, int bits) {
    for (int i = bits - 1; i >= 0; --i) {
      if (bit_ == 0) {
        bytes_.push_back(0);
        bit_ = 8;
      }
      --bit_;
      if ((value >> i) & 1u) {
        bytes_.back() |= static_cast<uint8_t>(1u << bit_);
      }
    }
  }

  void WriteBit(bool b) { Write(b ? 1 : 0, 1); }

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> Take() {
    bit_ = 0;
    return std::move(bytes_);
  }

  size_t bit_count() const { return bytes_.size() * 8 - bit_; }

 private:
  std::vector<uint8_t> bytes_;
  unsigned bit_ = 0;  // unused low bits remaining in bytes_.back()
};

class BitReader {
 public:
  BitReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  // Reads `bits` bits into *value (most significant first). Returns false —
  // and poisons the reader — once the stream is exhausted.
  bool Read(uint64_t* value, int bits) {
    uint64_t out = 0;
    for (int i = 0; i < bits; ++i) {
      const size_t byte = pos_ >> 3;
      if (byte >= size_) {
        failed_ = true;
        return false;
      }
      const unsigned shift = 7u - (pos_ & 7u);
      out = (out << 1) | ((data_[byte] >> shift) & 1u);
      ++pos_;
    }
    *value = out;
    return true;
  }

  bool ReadBit(bool* b) {
    uint64_t v = 0;
    if (!Read(&v, 1)) return false;
    *b = v != 0;
    return true;
  }

  bool failed() const { return failed_; }
  size_t bits_consumed() const { return pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace statstore

#endif  // SRC_STATSTORE_BITSTREAM_H_
