// statstore IO harness. Emits BENCH_statstore.json measuring, over a
// vprofd-shaped metric stream (per-node mean/variance/share plus stats and
// tracer-health series):
//   - compression vs the raw JSON an operator would otherwise retain
//     (acceptance: >= 5x over >= 1000 epochs),
//   - bounded write-path latency (per-epoch Append wall time percentiles),
//   - range-query decode throughput, verified bit-exact against the
//     appended values.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/statstore/gorilla.h"
#include "src/statstore/store.h"

namespace {

constexpr uint64_t kEpochs = 2000;
constexpr int kNodes = 12;  // tree nodes -> 3 series each

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One epoch of the stream vprofd persists (see src/vprof/service/history.h):
// slowly drifting node means, noisy variances, near-constant shares, and
// monotone health counters — the temporal redundancy the XOR codec exploits.
struct StreamState {
  std::mt19937_64 rng{20'17};
  std::vector<double> node_mean;
  std::vector<double> node_share;
  double dropped = 0.0;

  StreamState() {
    for (int n = 0; n < kNodes; ++n) {
      node_mean.push_back(50'000.0 + 10'000.0 * n);
      node_share.push_back(1.0 / kNodes);
    }
  }

  statstore::EpochSample Next(uint64_t epoch) {
    std::normal_distribution<double> drift(0.0, 200.0);
    std::normal_distribution<double> var_noise(1.0, 0.05);
    std::normal_distribution<double> share_noise(0.0, 0.002);
    statstore::EpochSample s;
    s.epoch = epoch;
    for (int n = 0; n < kNodes; ++n) {
      node_mean[n] += drift(rng);
      const std::string prefix = "node:run_transaction/factor_" +
                                 std::to_string(n) + ":";
      const double variance =
          node_mean[n] * node_mean[n] * 0.01 * var_noise(rng);
      s.values.push_back({prefix + "mean_ns", node_mean[n]});
      s.values.push_back({prefix + "variance_ns2", variance});
      s.values.push_back(
          {prefix + "share", node_share[n] + share_noise(rng)});
    }
    s.values.push_back({"stats:intervals", 1000.0 + double(epoch % 50)});
    s.values.push_back({"stats:weight", 950.0 + double(epoch % 50)});
    s.values.push_back({"stats:latency_mean_ns", node_mean[0] * kNodes});
    s.values.push_back({"stats:latency_variance_ns2", node_mean[0] * 1e3});
    if (epoch % 97 == 0) dropped += 1.0;
    s.values.push_back({"health:dropped_records", dropped});
    s.values.push_back({"health:stuck_threads", 0.0});
    s.values.push_back({"health:rotation_gap_last_ns", 150'000.0});
    s.values.push_back(
        {"health:rotation_gap_total_ns", 150'000.0 * double(epoch)});
    return s;
  }
};

// The baseline an operator would retain without statstore: one JSON object
// per epoch with full-precision values (%.17g round-trips doubles).
size_t RawJsonBytes(const statstore::EpochSample& s) {
  size_t bytes = 0;
  char buf[64];
  bytes += std::snprintf(buf, sizeof(buf), "{\"epoch\":%llu,\"series\":{",
                         static_cast<unsigned long long>(s.epoch));
  for (size_t i = 0; i < s.values.size(); ++i) {
    bytes += s.values[i].series.size() + 4;  // quotes, colon, comma
    bytes += std::snprintf(buf, sizeof(buf), "%.17g", s.values[i].value);
  }
  bytes += 3;  // }}\n
  return bytes;
}

double Percentile(std::vector<int64_t>* v, double p) {
  if (v->empty()) return 0.0;
  std::sort(v->begin(), v->end());
  const size_t idx = static_cast<size_t>(p * double(v->size() - 1));
  return static_cast<double>((*v)[idx]);
}

}  // namespace

int main() {
  bench::PrintHeader("statstore_io — compressed history persistence");

  const std::string dir =
      std::filesystem::temp_directory_path().string() + "/bench_statstore";
  std::filesystem::remove_all(dir);

  statstore::StoreOptions options;
  options.dir = dir;
  options.max_segment_bytes = 256 * 1024;
  statstore::StatStore store(options);
  if (!store.Open()) {
    std::fprintf(stderr, "statstore_io: cannot open %s\n", dir.c_str());
    return 1;
  }

  // Append the full stream, keeping the appended values for verification
  // and timing every append individually.
  StreamState stream;
  std::vector<statstore::EpochSample> appended;
  appended.reserve(kEpochs);
  std::vector<int64_t> append_ns;
  append_ns.reserve(kEpochs);
  size_t raw_json_bytes = 0;
  for (uint64_t epoch = 1; epoch <= kEpochs; ++epoch) {
    appended.push_back(stream.Next(epoch));
    raw_json_bytes += RawJsonBytes(appended.back());
    const int64_t t0 = NowNs();
    if (store.Append(appended.back()) != statstore::AppendStatus::kOk) {
      std::fprintf(stderr, "statstore_io: append failed at epoch %llu\n",
                   static_cast<unsigned long long>(epoch));
      return 1;
    }
    append_ns.push_back(NowNs() - t0);
  }
  store.Seal();

  const uint64_t store_bytes = store.disk_bytes();
  const double ratio =
      store_bytes > 0 ? double(raw_json_bytes) / double(store_bytes) : 0.0;
  const size_t values_per_epoch = appended.front().values.size();
  const double bytes_per_value =
      double(store_bytes) / double(kEpochs * values_per_epoch);

  // Verify every series decodes bit-exact, timing the full-range queries.
  uint64_t mismatches = 0;
  uint64_t points_read = 0;
  const int64_t q0 = NowNs();
  for (size_t si = 0; si < values_per_epoch; ++si) {
    const std::string& series = appended.front().values[si].series;
    const std::vector<statstore::SeriesPoint> points =
        store.Query(series, 0, UINT64_MAX);
    points_read += points.size();
    if (points.size() != kEpochs) {
      ++mismatches;
      continue;
    }
    for (size_t i = 0; i < points.size(); ++i) {
      if (statstore::DoubleBits(points[i].value) !=
          statstore::DoubleBits(appended[i].values[si].value)) {
        ++mismatches;
      }
    }
  }
  const double query_ms = double(NowNs() - q0) / 1e6;
  const double mpoints_per_s =
      query_ms > 0.0 ? double(points_read) / 1e3 / query_ms : 0.0;

  const double append_mean_ns =
      double(std::accumulate(append_ns.begin(), append_ns.end(), int64_t{0})) /
      double(append_ns.size());
  const double append_p99_ns = Percentile(&append_ns, 0.99);
  const double append_max_ns = double(append_ns.back());  // sorted by now

  std::printf("  epochs                 %10llu\n",
              static_cast<unsigned long long>(kEpochs));
  std::printf("  series per epoch       %10zu\n", values_per_epoch);
  std::printf("  raw JSON               %10.1f KiB\n",
              double(raw_json_bytes) / 1024.0);
  std::printf("  statstore segments     %10.1f KiB (%zu segments)\n",
              double(store_bytes) / 1024.0,
              static_cast<size_t>(store.segment_count()));
  std::printf("  compression ratio      %10.1fx  (acceptance: >= 5x)\n",
              ratio);
  std::printf("  bytes per value        %10.2f\n", bytes_per_value);
  std::printf("  append mean / p99 / max  %6.1f / %6.1f / %6.1f us\n",
              append_mean_ns / 1e3, append_p99_ns / 1e3, append_max_ns / 1e3);
  std::printf("  full-range decode      %10.1f ms (%.1f Mpoints/s)\n",
              query_ms, mpoints_per_s);
  std::printf("  bit-exact mismatches   %10llu\n",
              static_cast<unsigned long long>(mismatches));

  FILE* json = std::fopen("BENCH_statstore.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr,
                 "statstore_io: cannot write BENCH_statstore.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"epochs\": %llu,\n"
               "  \"series_per_epoch\": %zu,\n"
               "  \"raw_json_bytes\": %zu,\n"
               "  \"store_bytes\": %llu,\n"
               "  \"compression_ratio\": %.2f,\n"
               "  \"bytes_per_value\": %.3f,\n"
               "  \"append_mean_us\": %.2f,\n"
               "  \"append_p99_us\": %.2f,\n"
               "  \"append_max_us\": %.2f,\n"
               "  \"query_full_ms\": %.2f,\n"
               "  \"query_mpoints_per_s\": %.2f,\n"
               "  \"bit_exact_mismatches\": %llu\n"
               "}\n",
               static_cast<unsigned long long>(kEpochs), values_per_epoch,
               raw_json_bytes, static_cast<unsigned long long>(store_bytes),
               ratio, bytes_per_value, append_mean_ns / 1e3,
               append_p99_ns / 1e3, append_max_ns / 1e3, query_ms,
               mpoints_per_s, static_cast<unsigned long long>(mismatches));
  std::fclose(json);
  std::filesystem::remove_all(dir);
  std::printf(
      "\n  wrote BENCH_statstore.json (acceptance: ratio >= 5, exact "
      "decode)\n");
  return ratio >= 5.0 && mismatches == 0 ? 0 : 1;
}
