// Transaction context: identity, age (for VATS), and the lock set released
// at commit/abort (strict two-phase locking).
#ifndef SRC_MINIDB_TRANSACTION_H_
#define SRC_MINIDB_TRANSACTION_H_

#include <cstdint>
#include <vector>

namespace minidb {

class Table;

// Why a transaction failed. Lock timeouts, deadlocks and I/O errors are
// transient — the client may retry the transaction; a crashed or wedged log
// needs recovery first, and a shut-down engine never comes back.
enum class TxnError : uint8_t {
  kNone,
  kLockTimeout,
  kDeadlock,
  kIoError,      // log device failed the write; nothing landed — retryable
  kLogWedged,    // failed fsync wedged the redo log until Recover()
  kLogCrashed,   // redo log is down until Recover()
  kShutdown,     // engine is stopping; no retry will succeed
};

inline bool IsRetryable(TxnError error) {
  return error == TxnError::kLockTimeout || error == TxnError::kDeadlock ||
         error == TxnError::kIoError;
}

// A money movement the transaction will apply atomically at commit, after
// the redo log acked — never on abort. The row must already be X-locked by
// this transaction so the commit-time application races with nobody.
struct PendingDelta {
  Table* table = nullptr;
  int64_t key = 0;
  int64_t delta = 0;
};

class Transaction {
 public:
  Transaction(uint64_t id, int64_t start_ts) : id_(id), start_ts_(start_ts) {}

  uint64_t id() const { return id_; }

  // Monotonic start timestamp; VATS grants contended locks to the
  // transaction with the smallest value (the oldest).
  int64_t start_ts() const { return start_ts_; }

  void AddLock(uint64_t object_id) { lock_set_.push_back(object_id); }
  const std::vector<uint64_t>& lock_set() const { return lock_set_; }
  void ClearLocks() { lock_set_.clear(); }

  void MarkAborted() { aborted_ = true; }
  bool aborted() const { return aborted_; }

  void set_error(TxnError error) { error_ = error; }
  TxnError error() const { return error_; }

  // Balance movements applied only if the transaction commits. Each
  // transaction's deltas sum to zero (a transfer), which makes the global
  // balance total a conservation invariant under any crash/abort schedule.
  void AddDelta(Table* table, int64_t key, int64_t delta) {
    pending_deltas_.push_back(PendingDelta{table, key, delta});
  }
  const std::vector<PendingDelta>& pending_deltas() const {
    return pending_deltas_;
  }

 private:
  uint64_t id_;
  int64_t start_ts_;
  std::vector<uint64_t> lock_set_;
  std::vector<PendingDelta> pending_deltas_;
  bool aborted_ = false;
  TxnError error_ = TxnError::kNone;
};

}  // namespace minidb

#endif  // SRC_MINIDB_TRANSACTION_H_
