#include "src/statkit/decay.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/statkit/covariance.h"
#include "src/statkit/rng.h"
#include "src/statkit/welford.h"

namespace statkit {
namespace {

TEST(DecayedMomentsTest, EmptyIsZero) {
  DecayedMoments m;
  EXPECT_DOUBLE_EQ(m.weight(), 0.0);
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);
}

TEST(DecayedMomentsTest, UndcayedMatchesStreamingMoments) {
  Rng rng(21);
  DecayedMoments decayed;
  StreamingMoments plain;
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.NextDouble() * 50.0 - 10.0;
    decayed.Add(x);
    plain.Add(x);
  }
  EXPECT_DOUBLE_EQ(decayed.weight(), 2000.0);
  EXPECT_NEAR(decayed.mean(), plain.mean(), 1e-9);
  EXPECT_NEAR(decayed.variance(), plain.variance(), 1e-7);
}

TEST(DecayedMomentsTest, ScalePreservesMeanAndVariance) {
  Rng rng(22);
  DecayedMoments m;
  for (int i = 0; i < 100; ++i) {
    m.Add(rng.NextDouble() * 10.0);
  }
  const double mean = m.mean();
  const double variance = m.variance();
  m.Scale(0.5);
  EXPECT_DOUBLE_EQ(m.weight(), 50.0);
  EXPECT_DOUBLE_EQ(m.mean(), mean);
  EXPECT_NEAR(m.variance(), variance, 1e-9);
}

TEST(DecayedMomentsTest, DecayForgetsOldRegime) {
  // 500 samples around 100, then decay aggressively while observing samples
  // around 0: the mean must track the new regime, not the average of both.
  Rng rng(23);
  DecayedMoments m;
  for (int i = 0; i < 500; ++i) {
    m.Add(100.0 + rng.NextDouble());
  }
  for (int i = 0; i < 200; ++i) {
    m.Scale(0.5);  // half-life of one step
    m.Add(rng.NextDouble());
  }
  EXPECT_LT(m.mean(), 2.0);
  EXPECT_LT(m.variance(), 10.0);
}

TEST(DecayedMomentsTest, SeededEqualsExplicitZeros) {
  Rng rng(24);
  DecayedMoments seeded = DecayedMoments::Seeded(300.0);
  DecayedMoments zeros;
  for (int i = 0; i < 300; ++i) {
    zeros.Add(0.0);
  }
  for (int i = 0; i < 100; ++i) {
    const double x = rng.NextDouble() * 7.0;
    seeded.Add(x);
    zeros.Add(x);
  }
  EXPECT_DOUBLE_EQ(seeded.weight(), zeros.weight());
  EXPECT_NEAR(seeded.mean(), zeros.mean(), 1e-9);
  EXPECT_NEAR(seeded.variance(), zeros.variance(), 1e-9);
}

TEST(DecayedMomentsTest, FractionalWeightsMatchRepeatedSamples) {
  // Adding x with weight 3 equals adding x three times.
  DecayedMoments weighted;
  DecayedMoments repeated;
  const std::vector<double> xs = {1.0, 4.0, 2.5};
  for (double x : xs) {
    weighted.Add(x, 3.0);
    for (int i = 0; i < 3; ++i) {
      repeated.Add(x);
    }
  }
  EXPECT_NEAR(weighted.mean(), repeated.mean(), 1e-9);
  EXPECT_NEAR(weighted.variance(), repeated.variance(), 1e-9);
}

TEST(DecayedCovarianceTest, UndcayedMatchesStreamingCovariance) {
  Rng rng(25);
  DecayedCovariance decayed;
  StreamingCovariance plain;
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.NextDouble() * 3.0;
    const double y = 0.5 * x + rng.NextDouble();
    decayed.Add(x, y);
    plain.Add(x, y);
  }
  EXPECT_NEAR(decayed.covariance(), plain.covariance(), 1e-7);
}

TEST(DecayedCovarianceTest, SeededEqualsConstantHistory) {
  // Seeded(w, mx, my) must behave exactly like an accumulator that saw w
  // observations of (mx, my) — the constant-history equivalence the online
  // tree relies on when a sibling pair is born mid-stream.
  Rng rng(26);
  DecayedCovariance seeded = DecayedCovariance::Seeded(250.0, 4.0, 0.0);
  DecayedCovariance constant;
  for (int i = 0; i < 250; ++i) {
    constant.Add(4.0, 0.0);
  }
  for (int i = 0; i < 120; ++i) {
    const double x = rng.NextDouble() * 2.0;
    const double y = rng.NextDouble() * 5.0;
    seeded.Add(x, y);
    constant.Add(x, y);
  }
  EXPECT_NEAR(seeded.covariance(), constant.covariance(), 1e-9);
  EXPECT_NEAR(seeded.mean_x(), constant.mean_x(), 1e-9);
  EXPECT_NEAR(seeded.mean_y(), constant.mean_y(), 1e-9);
}

TEST(DecayedCovarianceTest, DecayedDecompositionIdentityHolds) {
  // Var(X+Y) = Var(X) + Var(Y) + 2 Cov(X,Y) must survive uniform decay,
  // since all accumulators scale by the same gamma each epoch.
  Rng rng(27);
  DecayedMoments vx;
  DecayedMoments vy;
  DecayedMoments vsum;
  DecayedCovariance cov;
  const double gamma = DecayFactorForHalfLife(8.0);
  for (int epoch = 0; epoch < 50; ++epoch) {
    vx.Scale(gamma);
    vy.Scale(gamma);
    vsum.Scale(gamma);
    cov.Scale(gamma);
    for (int i = 0; i < 40; ++i) {
      const double x = rng.NextDouble() * 3.0 + epoch * 0.1;
      const double y = x * 0.7 + rng.NextDouble();
      vx.Add(x);
      vy.Add(y);
      vsum.Add(x + y);
      cov.Add(x, y);
    }
  }
  EXPECT_NEAR(vsum.variance(),
              vx.variance() + vy.variance() + 2.0 * cov.covariance(), 1e-7);
}

TEST(DecayFactorTest, HalfLifeSemantics) {
  EXPECT_DOUBLE_EQ(DecayFactorForHalfLife(0.0), 1.0);
  EXPECT_DOUBLE_EQ(DecayFactorForHalfLife(1.0), 0.5);
  // After `h` applications of the factor, weight halves.
  const double gamma = DecayFactorForHalfLife(5.0);
  EXPECT_NEAR(std::pow(gamma, 5.0), 0.5, 1e-12);
}

}  // namespace
}  // namespace statkit
