# CMake generated Testfile for 
# Source directory: /root/repo/tests/minidb
# Build directory: /root/repo/build/tests/minidb
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(minidb_btree_test "/root/repo/build/tests/minidb/minidb_btree_test")
set_tests_properties(minidb_btree_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/minidb/CMakeLists.txt;1;vp_add_test;/root/repo/tests/minidb/CMakeLists.txt;0;")
add_test(minidb_buffer_pool_test "/root/repo/build/tests/minidb/minidb_buffer_pool_test")
set_tests_properties(minidb_buffer_pool_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/minidb/CMakeLists.txt;2;vp_add_test;/root/repo/tests/minidb/CMakeLists.txt;0;")
add_test(minidb_lock_manager_test "/root/repo/build/tests/minidb/minidb_lock_manager_test")
set_tests_properties(minidb_lock_manager_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/minidb/CMakeLists.txt;3;vp_add_test;/root/repo/tests/minidb/CMakeLists.txt;0;")
add_test(minidb_redo_log_test "/root/repo/build/tests/minidb/minidb_redo_log_test")
set_tests_properties(minidb_redo_log_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/minidb/CMakeLists.txt;4;vp_add_test;/root/repo/tests/minidb/CMakeLists.txt;0;")
add_test(minidb_table_test "/root/repo/build/tests/minidb/minidb_table_test")
set_tests_properties(minidb_table_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/minidb/CMakeLists.txt;5;vp_add_test;/root/repo/tests/minidb/CMakeLists.txt;0;")
add_test(minidb_engine_test "/root/repo/build/tests/minidb/minidb_engine_test")
set_tests_properties(minidb_engine_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/minidb/CMakeLists.txt;6;vp_add_test;/root/repo/tests/minidb/CMakeLists.txt;0;")
add_test(workload_tpcc_test "/root/repo/build/tests/minidb/workload_tpcc_test")
set_tests_properties(workload_tpcc_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/minidb/CMakeLists.txt;7;vp_add_test;/root/repo/tests/minidb/CMakeLists.txt;0;")
add_test(minidb_redo_property_test "/root/repo/build/tests/minidb/minidb_redo_property_test")
set_tests_properties(minidb_redo_property_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/minidb/CMakeLists.txt;8;vp_add_test;/root/repo/tests/minidb/CMakeLists.txt;0;")
add_test(minidb_lock_property_test "/root/repo/build/tests/minidb/minidb_lock_property_test")
set_tests_properties(minidb_lock_property_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/minidb/CMakeLists.txt;9;vp_add_test;/root/repo/tests/minidb/CMakeLists.txt;0;")
add_test(minidb_deadlock_test "/root/repo/build/tests/minidb/minidb_deadlock_test")
set_tests_properties(minidb_deadlock_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/minidb/CMakeLists.txt;10;vp_add_test;/root/repo/tests/minidb/CMakeLists.txt;0;")
