file(REMOVE_RECURSE
  "libstatkit.a"
)
