// P² (piecewise-parabolic) streaming quantile estimator (Jain & Chlamtac 1985).
//
// Constant-memory estimate of a single quantile; used where storing every
// latency sample would perturb the system under test.
#ifndef SRC_STATKIT_P2_QUANTILE_H_
#define SRC_STATKIT_P2_QUANTILE_H_

#include <cstdint>

namespace statkit {

class P2Quantile {
 public:
  // quantile in (0, 1), e.g. 0.99 for the 99th percentile.
  explicit P2Quantile(double quantile);

  void Add(double x);

  // Current estimate; exact while fewer than 5 observations have been added.
  double Value() const;

  uint64_t count() const { return count_; }

 private:
  double Parabolic(int i, double d) const;
  double Linear(int i, int d) const;

  double quantile_;
  uint64_t count_ = 0;
  double heights_[5];
  double positions_[5];
  double desired_[5];
  double increments_[5];
};

}  // namespace statkit

#endif  // SRC_STATKIT_P2_QUANTILE_H_
