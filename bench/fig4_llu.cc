// Reproduces paper Figure 4 (left): effect of the Lazy LRU Update (LLU)
// buffer-pool fix on minidb under the memory-constrained ("2-WH") TPC-C
// regime, plus the spin-lock variant from Table 1.
//
// Paper: LLU removes 10.7% of mean latency, 35.5% of variance, 26.5% of p99.
#include "bench/common.h"

int main() {
  bench::PrintHeader(
      "Figure 4 (left) — LLU vs blocking buffer-pool mutex (minidb, 2-WH)");

  const workload::TpccOptions options = bench::TpccQuick(4, 700);

  minidb::EngineConfig base_config = bench::MysqlMemoryConstrainedConfig();
  base_config.buffer_policy = minidb::BufferPolicy::kBlockingMutex;
  const bench::LatencyStats base = bench::RunMinidb(base_config, options);

  minidb::EngineConfig llu_config = base_config;
  llu_config.buffer_policy = minidb::BufferPolicy::kLazyLruUpdate;
  const bench::LatencyStats llu = bench::RunMinidb(llu_config, options);

  minidb::EngineConfig spin_config = base_config;
  spin_config.buffer_policy = minidb::BufferPolicy::kSpinLock;
  const bench::LatencyStats spin = bench::RunMinidb(spin_config, options);

  bench::PrintStatsRow("blocking mutex (baseline)", base);
  bench::PrintStatsRow("LLU", llu);
  bench::PrintStatsRow("spin lock", spin);
  std::printf("\n  LLU improvement:\n");
  bench::PrintReductionRow("mean latency", base.mean_ms, llu.mean_ms, 10.7);
  bench::PrintReductionRow("latency variance", base.variance_ms2,
                           llu.variance_ms2, 35.5);
  bench::PrintReductionRow("99th percentile", base.p99_ms, llu.p99_ms, 26.5);
  std::printf("\n  spin-lock variant (Table 1 row 2) improvement:\n");
  bench::PrintReductionRow("mean latency", base.mean_ms, spin.mean_ms, 10.7);
  bench::PrintReductionRow("latency variance", base.variance_ms2,
                           spin.variance_ms2, 35.5);
  bench::PrintReductionRow("99th percentile", base.p99_ms, spin.p99_ms, 26.5);
  return 0;
}
