#include "src/minidb/table.h"

#include <gtest/gtest.h>

namespace minidb {
namespace {

simio::DiskConfig FastDisk() {
  simio::DiskConfig config;
  config.read_mu = 0.5;
  config.write_mu = 0.5;
  config.serialize_access = false;
  return config;
}

class TableTest : public ::testing::Test {
 protected:
  TableTest() : disk_(FastDisk()), pool_(64, BufferPolicy::kBlockingMutex, 8, &disk_),
                table_("t", 3, 16, &pool_) {}
  simio::Disk disk_;
  BufferPool pool_;
  Table table_;
};

TEST_F(TableTest, LoadAndRead) {
  table_.LoadRow(42);
  Row row;
  EXPECT_TRUE(table_.ReadRow(42, &row));
  EXPECT_EQ(row.key, 42);
  EXPECT_FALSE(table_.ReadRow(43, &row));
  EXPECT_EQ(table_.row_count(), 1u);
}

TEST_F(TableTest, UpdateBumpsVersion) {
  table_.LoadRow(1);
  Row before;
  table_.ReadRow(1, &before);
  EXPECT_TRUE(table_.UpdateRow(1));
  Row after;
  table_.ReadRow(1, &after);
  EXPECT_GT(after.version, before.version);
}

TEST_F(TableTest, UpdateMissingRowFails) {
  EXPECT_FALSE(table_.UpdateRow(999));
}

TEST_F(TableTest, InsertRejectsDuplicates) {
  EXPECT_TRUE(table_.InsertRow(5));
  EXPECT_FALSE(table_.InsertRow(5));
  EXPECT_EQ(table_.row_count(), 1u);
  EXPECT_EQ(table_.index().Size(), 1u);
}

TEST_F(TableTest, LockObjectIdsUniquePerTableAndKey) {
  Table other("o", 4, 16, &pool_);
  EXPECT_NE(table_.LockObjectId(1), other.LockObjectId(1));
  EXPECT_NE(table_.LockObjectId(1), table_.LockObjectId(2));
}

TEST_F(TableTest, RowsShareConfiguredPages) {
  // rows_per_page = 16: keys 0..15 on one page, 16 on the next.
  EXPECT_EQ(table_.PageOf(0), table_.PageOf(15));
  EXPECT_NE(table_.PageOf(15), table_.PageOf(16));
}

TEST_F(TableTest, AccessGoesThroughBufferPool) {
  table_.LoadRow(7);
  const auto before = pool_.stats();
  table_.ReadRow(7, nullptr);
  const auto after = pool_.stats();
  EXPECT_EQ(after.hits + after.misses, before.hits + before.misses + 1);
}

TEST_F(TableTest, IndexTracksLoadedRows) {
  for (int64_t k = 0; k < 100; ++k) {
    table_.LoadRow(k);
  }
  EXPECT_EQ(table_.index().Size(), 100u);
  EXPECT_TRUE(table_.index().Search(50).has_value());
  EXPECT_TRUE(table_.index().CheckInvariants());
}

}  // namespace
}  // namespace minidb
