// Tentpole acceptance: end-to-end p99 variance decomposed ACROSS the tier
// boundary. httpd (front tier, behind its own NetServer) calls minidb (the
// backend tier, behind another NetServer) through dist::BackendPool for
// every request; all tiers share this process, so SplitByTids carves the one
// trace into the same per-tier shape separate processes would produce, and
// dist::StitchTraces merges them back into a single trace whose critical
// paths cross the wire twice per request.
//
// At overload the merged Eq. 2 decomposition must rank BOTH sides: a backend
// engine factor (lock/WAL) and a front-side factor (net:queue_wait or the
// allocator) in the top-3 — the cross-service claim of ROADMAP item 5. The
// online path (per-tier OnlineVarianceTree folds merged by DistMonitor) must
// expose the same tiers as tier:* statstore series. Cold-start mode must
// make the on-demand backend spawn rankable as dist:cold_start.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/dist/backend_pool.h"
#include "src/dist/monitor.h"
#include "src/dist/stitcher.h"
#include "src/dist/tier.h"
#include "src/httpd/server.h"
#include "src/minidb/engine.h"
#include "src/net/frontend.h"
#include "src/net/server.h"
#include "src/statkit/rng.h"
#include "src/vprof/analysis/factor_selection.h"
#include "src/vprof/service/history.h"
#include "src/workload/openloop.h"
#include "src/workload/tpcc.h"

namespace {

#if defined(__SANITIZE_THREAD__)
constexpr int kFrontNetWorkers = 1;
constexpr int kHttpdWorkers = 2;
constexpr int kBackendWorkers = 1;
constexpr size_t kConnections = 32;
constexpr double kCalibrationRate = 400.0;
constexpr int kOnlineEpochs = 4;
constexpr int kEpochMs = 120;
#else
constexpr int kFrontNetWorkers = 2;
constexpr int kHttpdWorkers = 3;
constexpr int kBackendWorkers = 2;
constexpr size_t kConnections = 96;
constexpr double kCalibrationRate = 2500.0;
constexpr int kOnlineEpochs = 5;
constexpr int kEpochMs = 100;
#endif
constexpr size_t kDispatchDepth = 16;
constexpr int kWarehouses = 1;  // one warehouse -> Payment serializes on it
constexpr double kOverloadFactor = 1.5;

// The whole two-tier stack in one process. `spawn_backend` defers the
// backend (engine + server + pool connect) to the first request —
// BackendPool cold-start mode.
struct DistStack {
  explicit DistStack(bool cold_start) : cold_(cold_start) {
    graph = std::make_shared<vprof::CallGraph>();
    minidb::Engine::RegisterCallGraph(graph.get());
    httpd::HttpServer::RegisterCallGraph(graph.get());
    net::NetServer::RegisterNetCallGraph(graph.get(), "process_request");
    net::NetServer::RegisterNetCallGraph(graph.get(), "run_transaction");
    dist::RegisterDistCallGraph(graph.get(), "run_transaction");
    net_root = vprof::RegisterFunction(net::kNetRootFunc);

    dist::BackendPoolOptions popt;
    popt.service = net::ServiceId::kMinidb;
    popt.connections = 2;
    popt.calibrate_rounds = 8;
    popt.span_sink = spans.ClientSink();
    if (cold_start) {
      popt.cold_start = true;
      popt.spawn = [this]() { return SpawnBackend(); };
    }
    pool = std::make_unique<dist::BackendPool>(popt);
    if (!cold_start) {
      const uint16_t port = SpawnBackend();
      // Rebuild the pool with the live port (options are ctor-only).
      popt.cold_start = false;
      popt.port = port;
      pool = std::make_unique<dist::BackendPool>(popt);
      EXPECT_TRUE(pool->Warm());
    }

    httpd::HttpdConfig hconf;
    hconf.workers = kHttpdWorkers;
    hconf.backend_call = [this](uint64_t file_id) {
      net::Frame req;
      req.type = net::MsgType::kTxn;
      {
        std::lock_guard<std::mutex> lock(gen_mu);
        req.txn = gen.Next(rng);
      }
      (void)file_id;
      net::Frame reply;
      (void)pool->Call(std::move(req), &reply);
    };
    http = std::make_unique<httpd::HttpServer>(hconf);

    net::NetServerOptions fopt;
    fopt.workers = kFrontNetWorkers;
    fopt.max_dispatch_depth = kDispatchDepth;
    front = std::make_unique<net::NetServer>(fopt,
                                             net::MakeHttpdHandler(http.get()));
    EXPECT_TRUE(front->Start());
  }

  ~DistStack() {
    front->Shutdown();
    http->Shutdown();
    pool->Shutdown();
    if (backend != nullptr) {
      backend->Shutdown();
    }
  }

  uint16_t SpawnBackend() {
    if (cold_) {
      // Stand-in for the real process startup (exec, allocator warmup,
      // listening socket) a lazily-spawned backend pays; the engine below
      // is only a fraction of it in-process.
      std::this_thread::sleep_for(std::chrono::milliseconds(60));
    }
    minidb::EngineConfig config = minidb::EngineConfig::MemoryResident();
    config.warehouses = kWarehouses;
    engine = std::make_unique<minidb::Engine>(config);
    net::NetServerOptions bopt;
    bopt.workers = kBackendWorkers;
    bopt.span_sink = spans.ServerSink();
    backend = std::make_unique<net::NetServer>(
        bopt, net::MakeMinidbHandler(engine.get()));
    if (!backend->Start()) {
      return 0;
    }
    return backend->port();
  }

  // Harvests one trace into the two stitched-tier shapes. Everything not on
  // the backend server's threads (httpd workers, the AsyncClient loop, load
  // generators, the front NetServer) is front-tier.
  dist::StitchResult Stitch(const vprof::Trace& trace) {
    const std::vector<vprof::Trace> tiers = dist::SplitByTids(
        trace, {{}, backend->ProfiledTids()}, /*default_index=*/0);
    dist::TierTrace front_tier;
    front_tier.name = "front";
    front_tier.service = net::ServiceId::kFront;
    front_tier.trace = tiers[0];
    front_tier.client_spans = spans.ClientSpans();
    dist::TierTrace backend_tier;
    backend_tier.name = "minidb";
    backend_tier.service = net::ServiceId::kMinidb;
    backend_tier.trace = tiers[1];
    backend_tier.server_spans = spans.ServerSpans();
    backend_tier.clock_offset_ns = pool->calibration().offset_ns;
    spans.Clear();
    return dist::StitchTraces(front_tier, {backend_tier});
  }

  bool cold_ = false;
  std::shared_ptr<vprof::CallGraph> graph;
  vprof::FuncId net_root = vprof::kInvalidFunc;
  dist::SpanLog spans;
  std::unique_ptr<minidb::Engine> engine;
  std::unique_ptr<net::NetServer> backend;
  std::unique_ptr<dist::BackendPool> pool;
  std::unique_ptr<httpd::HttpServer> http;
  std::unique_ptr<net::NetServer> front;

  std::mutex gen_mu;
  statkit::Rng rng{0x7ea5};
  workload::TpccGenerator gen{workload::TpccOptions{}, kWarehouses};
};

workload::OpenLoopOptions LoadOptions(uint16_t port, double rate_per_s,
                                      double seconds, uint64_t seed) {
  workload::OpenLoopOptions options;
  options.port = port;
  options.connections = kConnections;
  options.duration_s = seconds;
  options.arrivals.process = workload::ArrivalProcess::kPoisson;
  options.arrivals.rate_per_sec = rate_per_s;
  options.seed = seed;
  options.make_request = [](uint64_t i) {
    net::Frame frame;
    frame.type = net::MsgType::kHttpGet;
    frame.file_id = i % 4;
    return frame;
  };
  return options;
}

std::vector<std::string> TopLabels(const std::vector<vprof::Factor>& factors,
                                   const std::vector<std::string>& names,
                                   size_t k) {
  std::vector<std::string> top;
  for (const vprof::Factor& factor : factors) {
    if (factor.func_b != vprof::kInvalidFunc) {
      continue;  // covariance factors echo their single-function parts
    }
    top.push_back(factor.Label(names));
    if (top.size() == k) {
      break;
    }
  }
  return top;
}

// Backend engine factors: lock waits and the WAL path.
bool IsBackendFactor(const std::string& label) {
  static const std::set<std::string> kBackend = {
      "lock_rec_lock", "os_event_wait", "log_write_up_to",
      "fil_flush",     "trx_commit",    "run_transaction"};
  return kBackend.count(label) != 0;
}

// Front-side factors: the net layer (queues, readable) and httpd's
// allocator chain.
bool IsFrontFactor(const std::string& label) {
  return label.rfind("net:", 0) == 0 || label.rfind("apr_", 0) == 0 ||
         label.rfind("ap_", 0) == 0 || label.rfind("rpc:", 0) == 0 ||
         label == "process_request";
}

void EnableAllProbes() {
  const size_t registered = vprof::RegisteredFunctionCount();
  for (vprof::FuncId id = 0; id < registered; ++id) {
    vprof::SetFunctionEnabled(id, true);
  }
}

TEST(DistVarianceIntegration, CrossTierFactorsAtOverloadAndOnlineTiers) {
  DistStack stack(/*cold_start=*/false);

  // Find the two-tier capacity untraced, then overload it.
  const workload::OpenLoopResult calibration = workload::RunOpenLoop(
      LoadOptions(stack.front->port(), kCalibrationRate, 0.6, /*seed=*/7));
  ASSERT_FALSE(calibration.connect_failed);
  ASSERT_GT(calibration.acked, 0u);
  const double overload = calibration.achieved_per_s * kOverloadFactor;

  // ---- Offline: one traced overload run, stitched and decomposed. --------
  EnableAllProbes();
  vprof::StartTracing();
  const workload::OpenLoopResult offline_run = workload::RunOpenLoop(
      LoadOptions(stack.front->port(), overload, 0.9, /*seed=*/21));
  const vprof::Trace raw = vprof::StopTracing();
  ASSERT_GT(offline_run.acked, 0u);

  const dist::StitchResult stitched = stack.Stitch(raw);
  ASSERT_GT(stitched.stats.matched_spans, 0u)
      << "no RPC spans joined across the tier boundary";
  // Two edges per span, minus spans clipped at the trace boundary (a caller
  // that resumed after StopTracing has no post-wait segment to anchor).
  EXPECT_GE(stitched.stats.injected_edges,
            2 * stitched.stats.matched_spans * 95 / 100);

  vprof::CriticalPathOptions path_options;
  path_options.queue_wait_factor = net::kQueueWaitFactor;
  const vprof::VarianceAnalysis analysis(stitched.trace, path_options);
  ASSERT_GT(analysis.interval_count(), 0u);
  ASSERT_GT(analysis.overall_variance(), 0.0);

  // Eq. 2 must hold exactly at the merged root: children (including the
  // synthetic body) partition each interval's latency by construction.
  {
    double sum = 0.0;
    for (const vprof::NodeId child : analysis.node(vprof::kRootNode).children) {
      sum += analysis.NodeVariance(child);
    }
    for (const vprof::SiblingCovariance& cov : analysis.covariances()) {
      if (cov.parent == vprof::kRootNode) {
        sum += 2.0 * cov.covariance;
      }
    }
    const double overall = analysis.overall_variance();
    EXPECT_NEAR(sum, overall, 1e-6 * overall + 1.0)
        << "merged decomposition does not sum to end-to-end variance";
  }

  const std::vector<vprof::Factor> factors = vprof::AggregateFactors(
      analysis, *stack.graph, stack.net_root, vprof::SpecificityKind::kQuadratic);
  const std::vector<std::string> top =
      TopLabels(factors, stitched.trace.function_names, 3);
  ASSERT_FALSE(top.empty());
  bool has_backend = false;
  bool has_front = false;
  for (const std::string& label : top) {
    has_backend = has_backend || IsBackendFactor(label);
    has_front = has_front || IsFrontFactor(label);
  }
  std::string joined;
  for (const std::string& label : top) {
    joined += label + " ";
  }
  EXPECT_TRUE(has_backend) << "no backend (lock/WAL) factor in top-3: "
                           << joined;
  EXPECT_TRUE(has_front) << "no front (net/allocator) factor in top-3: "
                         << joined;

  // ---- Online: per-tier trees folded per epoch, merged by DistMonitor. ---
  vprof::OnlineTreeOptions tree_options;
  tree_options.path_options.queue_wait_factor = net::kQueueWaitFactor;
  vprof::OnlineVarianceTree front_tree(tree_options);
  vprof::OnlineVarianceTree backend_tree(tree_options);

  dist::DistMonitor monitor;
  {
    dist::TierConfig front_cfg;
    front_cfg.name = "front";
    front_cfg.is_front = true;
    front_cfg.root = stack.net_root;
    monitor.RegisterTier(front_cfg);
    dist::TierConfig backend_cfg;
    backend_cfg.name = "minidb";
    backend_cfg.root = vprof::RegisterFunction("run_transaction");
    monitor.RegisterTier(backend_cfg);
  }

  vprof::StartTracing();
  std::thread load([&stack, overload]() {
    (void)workload::RunOpenLoop(LoadOptions(
        stack.front->port(), overload,
        (kOnlineEpochs + 1) * kEpochMs / 1000.0, /*seed=*/35));
  });
  std::vector<statstore::EpochSample> samples;
  for (int e = 0; e < kOnlineEpochs; ++e) {
    std::this_thread::sleep_for(std::chrono::milliseconds(kEpochMs));
    vprof::Trace epoch_trace = vprof::StopTracing();
    vprof::StartTracing();
    const std::vector<vprof::Trace> tiers = dist::SplitByTids(
        epoch_trace, {{}, stack.backend->ProfiledTids()}, 0);
    front_tree.Fold(tiers[0]);
    backend_tree.Fold(tiers[1]);
    monitor.UpdateTier("front", front_tree.Snapshot());
    monitor.UpdateTier("minidb", backend_tree.Snapshot());
    samples.push_back(monitor.Sample(static_cast<uint64_t>(e)));
  }
  load.join();
  (void)vprof::StopTracing();
  vprof::DisableAllFunctions();

  const dist::DistSnapshot dist_snap = monitor.Snapshot();
  ASSERT_EQ(dist_snap.tiers.size(), 2u);
  EXPECT_TRUE(dist_snap.tiers[0].is_front);
  EXPECT_GT(dist_snap.end_to_end_variance_ns2, 0.0);
  EXPECT_GT(dist_snap.tiers[0].intervals, 0u);
  EXPECT_GT(dist_snap.tiers[1].intervals, 0u);
  EXPECT_GT(dist_snap.tiers[1].share, 0.0);
  EXPECT_DOUBLE_EQ(dist_snap.tiers[0].share, 1.0);

  // The merged factor list must rank entries from both tiers.
  const std::vector<dist::DistFactor> merged =
      monitor.TopFactors(*stack.graph, 8);
  ASSERT_FALSE(merged.empty());
  std::set<std::string> tiers_seen;
  for (const dist::DistFactor& f : merged) {
    tiers_seen.insert(f.tier);
  }
  EXPECT_EQ(tiers_seen.size(), 2u) << "merged ranking is single-tier";

  // Every epoch persisted the full tier:* series set.
  ASSERT_EQ(samples.size(), static_cast<size_t>(kOnlineEpochs));
  std::set<std::string> series;
  for (const statstore::SeriesValue& value : samples.back().values) {
    series.insert(value.series);
  }
  for (const char* tier : {"front", "minidb"}) {
    for (const char* field :
         {"latency_mean_ns", "latency_variance_ns2", "share", "intervals"}) {
      EXPECT_EQ(series.count(vprof::TierSeriesName(tier, field)), 1u)
          << tier << ":" << field;
    }
  }
}

TEST(DistVarianceIntegration, ColdStartIsRankable) {
  DistStack stack(/*cold_start=*/true);
  EXPECT_FALSE(stack.pool->ready());

  // Trace from before the first request: the spawn happens inside the run
  // and its cost lands on the requests that waited for it.
  EnableAllProbes();
  vprof::StartTracing();
  const workload::OpenLoopResult run = workload::RunOpenLoop(
      LoadOptions(stack.front->port(), kCalibrationRate / 2, 0.5, /*seed=*/11));
  const vprof::Trace raw = vprof::StopTracing();
  vprof::DisableAllFunctions();
  ASSERT_GT(run.acked, 0u);
  EXPECT_EQ(stack.pool->cold_starts(), 1u);
  ASSERT_TRUE(stack.pool->ready());

  const dist::StitchResult stitched = stack.Stitch(raw);
  vprof::CriticalPathOptions path_options;
  path_options.queue_wait_factor = net::kQueueWaitFactor;
  const vprof::VarianceAnalysis analysis(stitched.trace, path_options);
  ASSERT_GT(analysis.overall_variance(), 0.0);

  const std::vector<vprof::Factor> factors = vprof::AggregateFactors(
      analysis, *stack.graph, stack.net_root, vprof::SpecificityKind::kQuadratic);
  const std::vector<std::string> top =
      TopLabels(factors, stitched.trace.function_names, 3);
  ASSERT_FALSE(top.empty());
  bool has_cold_start = false;
  std::string joined;
  for (const std::string& label : top) {
    has_cold_start = has_cold_start || label == dist::kColdStartFunc;
    joined += label + " ";
  }
  EXPECT_TRUE(has_cold_start)
      << "dist:cold_start not in the first-epoch top-3: " << joined;
}

}  // namespace
