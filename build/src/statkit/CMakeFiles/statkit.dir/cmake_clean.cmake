file(REMOVE_RECURSE
  "CMakeFiles/statkit.dir/histogram.cc.o"
  "CMakeFiles/statkit.dir/histogram.cc.o.d"
  "CMakeFiles/statkit.dir/p2_quantile.cc.o"
  "CMakeFiles/statkit.dir/p2_quantile.cc.o.d"
  "CMakeFiles/statkit.dir/summary.cc.o"
  "CMakeFiles/statkit.dir/summary.cc.o.d"
  "libstatkit.a"
  "libstatkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
