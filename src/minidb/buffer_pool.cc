#include "src/minidb/buffer_pool.h"

#include <chrono>
#include <thread>

#include "src/fault/failpoint.h"
#include "src/vprof/probe.h"

namespace minidb {

namespace {
constexpr uint64_t kPageBytes = 8192;

// Fibonacci hashing spreads sequential page ids (the common allocation
// pattern) uniformly over shards; a plain modulo would put every table's
// hot pages in the same few instances.
inline uint64_t MixPageId(PageId page_id) {
  return (page_id * 11400714819323198485ull) >> 32;
}
}  // namespace

BufferPool::BufferPool(int capacity_pages, BufferPolicy policy,
                       int llu_try_iterations, simio::Disk* disk,
                       int instances)
    : policy_(policy),
      llu_try_iterations_(llu_try_iterations),
      disk_(disk),
      capacity_(capacity_pages) {
  if (instances < 1) {
    instances = 1;
  }
  shards_.reserve(static_cast<size_t>(instances));
  for (int i = 0; i < instances; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  const int base = capacity_pages / instances;
  const int extra = capacity_pages % instances;
  for (int i = 0; i < instances; ++i) {
    shards_[static_cast<size_t>(i)]->capacity.store(
        base + (i < extra ? 1 : 0), std::memory_order_relaxed);
  }
}

int BufferPool::ShardOf(PageId page_id) const {
  return static_cast<int>(MixPageId(page_id) % shards_.size());
}

void BufferPool::PoolMutexEnter(Shard& shard) {
  VPROF_FUNC("buf_pool_mutex_enter");
  // Uncontended acquisitions take the try_lock fast path and cost one CAS;
  // only contended entries pay for (and record) a timed wait, so the
  // per-shard lock-wait gauge reflects contention, not traffic.
  if (shard.pool_mu.try_lock()) {
    return;
  }
  const auto start = std::chrono::steady_clock::now();
  shard.pool_mu.lock();
  const auto waited = std::chrono::steady_clock::now() - start;
  shard.mutex_waits.fetch_add(1, std::memory_order_relaxed);
  shard.mutex_wait_ns.fetch_add(
      static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(waited)
              .count()),
      std::memory_order_relaxed);
}

void BufferPool::PoolMutexSpinEnter(Shard& shard) {
  VPROF_FUNC("buf_pool_mutex_enter");
  if (shard.pool_mu.try_lock()) {
    return;
  }
  const auto start = std::chrono::steady_clock::now();
  while (!shard.pool_mu.try_lock()) {
    // Spin with a yield so the single-core holder can make progress; the
    // elapsed time lands in this function's profile rather than a blocked
    // segment, exactly as a userspace spin lock behaves.
    std::this_thread::yield();
  }
  const auto waited = std::chrono::steady_clock::now() - start;
  shard.mutex_waits.fetch_add(1, std::memory_order_relaxed);
  shard.mutex_wait_ns.fetch_add(
      static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(waited)
              .count()),
      std::memory_order_relaxed);
}

bool BufferPool::PoolMutexTryEnterBounded(Shard& shard) {
  VPROF_FUNC("buf_pool_mutex_enter");
  for (int i = 0; i < llu_try_iterations_; ++i) {
    if (shard.pool_mu.try_lock()) {
      if (i > 0) {
        shard.mutex_waits.fetch_add(1, std::memory_order_relaxed);
      }
      return true;
    }
    std::this_thread::yield();
  }
  return false;
}

void BufferPool::TouchLru(Shard& shard, Frame& frame) {
  shard.lru.splice(shard.lru.begin(), shard.lru, frame.lru_pos);
  frame.deferred_move = false;
  // Young/old sublist bookkeeping performed under the pool mutex (InnoDB
  // maintains midpoint-insertion state on every move): ~1.5us of work that
  // makes the hit-path mutex hold non-trivial — the contention the LLU fix
  // targets. Sharding divides the threads contending for it, not the work.
  volatile uint64_t h = 1469598103934665603ull;
  for (int i = 0; i < 220; ++i) {
    h = (h ^ static_cast<uint64_t>(i)) * 1099511628211ull;
  }
  shard.lru_moves.fetch_add(1, std::memory_order_relaxed);
}

void BufferPool::GetPage(PageId page_id, bool for_write) {
  VPROF_FUNC("buf_page_get");
  Shard& shard = *shards_[static_cast<size_t>(ShardOf(page_id))];
  // Page-hash probe (InnoDB's page hash latch, per instance).
  bool present;
  {
    std::lock_guard<std::mutex> hash_lock(shard.hash_mu);
    auto it = shard.frames.find(page_id);
    present = it != shard.frames.end();
    if (present && for_write) {
      it->second.dirty = true;
    }
  }

  if (present) {
    shard.hits.fetch_add(1, std::memory_order_relaxed);
    // LRU maintenance under this instance's pool mutex — the call site the
    // paper blames for buf_pool_mutex_enter variance.
    bool acquired;
    switch (policy_) {
      case BufferPolicy::kBlockingMutex:
        PoolMutexEnter(shard);
        acquired = true;
        break;
      case BufferPolicy::kSpinLock:
        PoolMutexSpinEnter(shard);
        acquired = true;
        break;
      case BufferPolicy::kLazyLruUpdate:
        acquired = PoolMutexTryEnterBounded(shard);
        break;
    }
    if (!acquired) {
      // LLU: skip the move, mark it deferred; the next access that does get
      // the mutex performs it.
      std::lock_guard<std::mutex> hash_lock(shard.hash_mu);
      auto it = shard.frames.find(page_id);
      if (it != shard.frames.end()) {
        it->second.deferred_move = true;
      }
      shard.lru_moves_skipped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    {
      std::lock_guard<std::mutex> hash_lock(shard.hash_mu);
      auto it = shard.frames.find(page_id);
      if (it != shard.frames.end()) {
        TouchLru(shard, it->second);
        shard.pool_mu.unlock();
        return;
      }
    }
    // Evicted between the probe and the move: fall through to the miss path
    // while already holding the pool mutex.
    HandleMiss(shard, page_id, for_write);
    shard.pool_mu.unlock();
    return;
  }

  shard.misses.fetch_add(1, std::memory_order_relaxed);
  PoolMutexEnter(shard);
  HandleMiss(shard, page_id, for_write);
  shard.pool_mu.unlock();
}

// Precondition: shard.pool_mu held throughout.
void BufferPool::HandleMiss(Shard& shard, PageId page_id, bool for_write) {
  {
    // Another thread may have loaded the page while we waited for the mutex.
    std::lock_guard<std::mutex> hash_lock(shard.hash_mu);
    auto it = shard.frames.find(page_id);
    if (it != shard.frames.end()) {
      if (for_write) {
        it->second.dirty = true;
      }
      TouchLru(shard, it->second);
      return;
    }
  }

  // Make room for the incoming page.
  EvictToCapacity(shard);

  // Read the page in (still under the pool mutex — together with the dirty
  // write-back in EvictToCapacity, this is what makes miss handling the
  // long-hold path the 2-WH case study observes).
  disk_->Read(kPageBytes);
  std::lock_guard<std::mutex> hash_lock(shard.hash_mu);
  shard.lru.push_front(page_id);
  Frame frame;
  frame.page_id = page_id;
  frame.dirty = for_write;
  frame.lru_pos = shard.lru.begin();
  shard.frames.emplace(page_id, frame);
}

// Precondition: shard.pool_mu held. Evicts until the shard is below its
// capacity (so the caller can insert one page), also used by Resize to
// drain a shrunken shard. Pages whose LRU move was deferred by LLU get a
// second chance (their move is "retried" now, as the LLU proposal
// specifies) instead of being evicted while still hot. The victim
// write-back happens while holding the pool mutex (InnoDB's legacy
// single-page-flush path).
void BufferPool::EvictToCapacity(Shard& shard) {
  const int shard_capacity = shard.capacity.load(std::memory_order_relaxed);
  while (!shard.lru.empty()) {
    {
      std::lock_guard<std::mutex> hash_lock(shard.hash_mu);
      if (shard.frames.size() < static_cast<size_t>(shard_capacity)) {
        return;
      }
    }
    for (int scan = 0; scan < shard_capacity && !shard.lru.empty(); ++scan) {
      const PageId tail = shard.lru.back();
      std::lock_guard<std::mutex> hash_lock(shard.hash_mu);
      auto it = shard.frames.find(tail);
      if (it == shard.frames.end() || !it->second.deferred_move) {
        break;
      }
      TouchLru(shard, it->second);  // apply the deferred move
    }
    const PageId victim = shard.lru.back();
    bool victim_dirty = false;
    {
      std::lock_guard<std::mutex> hash_lock(shard.hash_mu);
      auto it = shard.frames.find(victim);
      if (it != shard.frames.end()) {
        victim_dirty = it->second.dirty;
        shard.frames.erase(it);
      }
    }
    shard.lru.pop_back();
    if (victim_dirty) {
      disk_->Write(kPageBytes);
      shard.dirty_evictions.fetch_add(1, std::memory_order_relaxed);
    } else {
      shard.clean_evictions.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void BufferPool::Resize(int capacity_pages) {
  if (capacity_pages < 0) {
    capacity_pages = 0;
  }
  capacity_.store(capacity_pages, std::memory_order_relaxed);
  const int instances = static_cast<int>(shards_.size());
  const int base = capacity_pages / instances;
  const int extra = capacity_pages % instances;
  for (int i = 0; i < instances; ++i) {
    // Chaos crash point: the process dies mid-redistribution, leaving a
    // prefix of shards at the new capacity and the rest at the old one. The
    // pool must stay fully serviceable either way — per-shard capacities
    // are independently consistent — which the chaos invariants verify.
    if (fault::Triggered("pool/resize_abort")) [[unlikely]] {
      return;
    }
    Shard& shard = *shards_[static_cast<size_t>(i)];
    const int new_capacity = base + (i < extra ? 1 : 0);
    PoolMutexEnter(shard);
    shard.capacity.store(new_capacity, std::memory_order_relaxed);
    // A shrink evicts down right away; a grow just leaves headroom that
    // subsequent misses fill. EvictToCapacity stops one frame below
    // capacity (insertion headroom), which is exactly the shrink target.
    if (new_capacity == 0 ||
        shard.frames.size() > static_cast<size_t>(new_capacity)) {
      EvictToCapacity(shard);
    }
    shard.pool_mu.unlock();
  }
}

BufferPoolStats BufferPool::ReadCounters(const Shard& shard) {
  BufferPoolStats s;
  s.hits = shard.hits.load(std::memory_order_relaxed);
  s.misses = shard.misses.load(std::memory_order_relaxed);
  s.clean_evictions = shard.clean_evictions.load(std::memory_order_relaxed);
  s.dirty_evictions = shard.dirty_evictions.load(std::memory_order_relaxed);
  s.lru_moves = shard.lru_moves.load(std::memory_order_relaxed);
  s.lru_moves_skipped =
      shard.lru_moves_skipped.load(std::memory_order_relaxed);
  s.mutex_waits = shard.mutex_waits.load(std::memory_order_relaxed);
  s.mutex_wait_ns = shard.mutex_wait_ns.load(std::memory_order_relaxed);
  return s;
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats total;
  for (const auto& shard : shards_) {
    const BufferPoolStats s = ReadCounters(*shard);
    total.hits += s.hits;
    total.misses += s.misses;
    total.clean_evictions += s.clean_evictions;
    total.dirty_evictions += s.dirty_evictions;
    total.lru_moves += s.lru_moves;
    total.lru_moves_skipped += s.lru_moves_skipped;
    total.mutex_waits += s.mutex_waits;
    total.mutex_wait_ns += s.mutex_wait_ns;
  }
  return total;
}

BufferPoolStats BufferPool::shard_stats(int shard) const {
  if (shard < 0 || shard >= static_cast<int>(shards_.size())) {
    return BufferPoolStats{};
  }
  return ReadCounters(*shards_[static_cast<size_t>(shard)]);
}

size_t BufferPool::resident_pages() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> hash_lock(shard->hash_mu);
    total += shard->frames.size();
  }
  return total;
}

bool BufferPool::CheckInvariants() const {
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    // Take the pool mutex so the LRU list is stable, then the hash latch
    // (same order as the access paths).
    shard.pool_mu.lock();
    bool ok;
    {
      std::lock_guard<std::mutex> hash_lock(shard.hash_mu);
      ok = shard.frames.size() <=
               static_cast<size_t>(
                   shard.capacity.load(std::memory_order_relaxed)) &&
           shard.frames.size() == shard.lru.size();
      if (ok) {
        for (PageId pid : shard.lru) {
          if (shard.frames.find(pid) == shard.frames.end() ||
              ShardOf(pid) != static_cast<int>(i)) {
            ok = false;
            break;
          }
        }
      }
    }
    shard.pool_mu.unlock();
    if (!ok) {
      return false;
    }
  }
  return true;
}

}  // namespace minidb
