#include "src/vprof/analysis/profiler.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "src/vprof/analysis/report.h"
#include "src/vprof/registry.h"
#include "src/vprof/runtime.h"

namespace vprof {

Profiler::Profiler(std::string root_function, const CallGraph* graph,
                   std::function<void()> workload)
    : root_name_(std::move(root_function)),
      graph_(graph),
      workload_(std::move(workload)) {}

ProfileResult Profiler::Run(const ProfileOptions& options) {
  ProfileResult result;
  const FuncId root = RegisterFunction(root_name_);

  std::set<FuncId> instrumented = {root};
  std::set<FuncId> expanded;
  std::vector<FuncId> frontier = {root};

  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    // Expand the frontier: instrument each frontier function's children.
    for (FuncId f : frontier) {
      expanded.insert(f);
      for (FuncId child : graph_->Children(f)) {
        instrumented.insert(child);
      }
    }
    frontier.clear();

    DisableAllFunctions();
    for (FuncId f : instrumented) {
      SetFunctionEnabled(f, true);
    }

    StartTracing();
    workload_();
    Trace trace = StopTracing();
    ++result.runs;

    auto analysis =
        std::make_shared<VarianceAnalysis>(trace, options.path_options);
    FactorSelectionOptions sel;
    sel.top_k = options.top_k;
    sel.min_contribution = options.min_contribution;
    sel.specificity = options.specificity;
    std::vector<Factor> selected = SelectFactors(*analysis, *graph_, root, sel);

    // Decide which selected variance factors to break down further
    // (Algorithm 3 lines 12-17).
    for (const Factor& f : selected) {
      if (f.is_covariance() || f.body_a) {
        continue;  // covariances and bodies have no children to instrument
      }
      if (expanded.count(f.func_a) != 0 || !graph_->HasChildren(f.func_a)) {
        continue;
      }
      if (options.should_expand && !options.should_expand(f)) {
        continue;
      }
      frontier.push_back(f.func_a);
    }

    result.factors = std::move(selected);
    result.all_factors =
        AggregateFactors(*analysis, *graph_, root, options.specificity);
    result.tree_height = analysis->TreeHeight();
    result.tree_breadth = analysis->TreeBreadth();
    result.overall_mean_ns = analysis->overall_mean();
    result.overall_variance = analysis->overall_variance();
    result.latencies_ns.assign(analysis->latencies().begin(),
                               analysis->latencies().end());
    result.function_names = trace.function_names;
    result.analysis = analysis;
    result.trace = std::move(trace);

    if (frontier.empty()) {
      break;  // selection stable: nothing left to break down
    }
  }

  result.instrumented.clear();
  for (FuncId f : instrumented) {
    result.instrumented.push_back(FunctionName(f));
  }
  DisableAllFunctions();
  return result;
}

std::string ProfileResult::Report() const {
  std::ostringstream out;
  out << "overall: mean=" << overall_mean_ns / 1e6
      << " ms, variance=" << overall_variance / 1e12
      << " ms^2, intervals=" << latencies_ns.size() << ", runs=" << runs
      << ", tree height=" << tree_height << ", breadth=" << tree_breadth << "\n";
  out << "rank | factor | contribution to overall variance | score\n";
  int rank = 1;
  for (const Factor& f : factors) {
    out << rank++ << " | " << f.Label(function_names) << " | "
        << f.contribution * 100.0 << "% | " << f.score << "\n";
  }
  // Surface capture-quality caveats so a partial trace is never mistaken
  // for a clean run.
  out << FormatTraceHealth(trace);
  return out.str();
}

}  // namespace vprof
