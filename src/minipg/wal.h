// Write-ahead log modeled on Postgres: one write lock guards the flush path,
// and backends use LWLockAcquireOrWait — "acquire the lock, or sleep until
// the current holder releases it and re-check whether our LSN already became
// durable" (group commit).
//
// Paper Table 6 attributes 76.8% of Postgres transaction latency variance to
// LWLockAcquireOrWait through exactly this call site; the paper's fix
// (Figure 4 right) is distributed logging across two disks, implemented here
// as multiple WalUnits with waiter-count-based placement.
//
// Commit modes (the scale-out axis, orthogonal to unit count):
//   kGroupCommit — leader-based: the backend that finds the write lock free
//     becomes leader and performs one write+fsync for every record inserted
//     so far; followers sleep on one of two ping-pong os_event-style events
//     indexed by flush-round parity (the leader finishing round R resets the
//     round-R+1 event, then sets the round-R event, so a follower can never
//     miss its wake-up) and re-check flushed_lsn on wake.
//   kExclusive — pre-scale-out baseline: every commit acquires the write
//     lock and performs its own write+fsync, one fsync per commit, fully
//     serialized.
// Follower sleeps and lock acquisition both happen inside the
// LWLockAcquireOrWait probe, so the paper's #1 variance factor keeps its
// name and call site across modes.
//
// Fault model (mirrors minidb::RedoLog): every record carries a checksum and
// each unit can Crash() and Recover(). A crash — explicit or injected via the
// flush-path failpoints "wal/crash_before_write", "wal/crash_after_write",
// "wal/crash_after_fsync" — loses buffered records and keeps only a
// seeded-random prefix of the written-but-unsynced tail, possibly ending in a
// torn (bad checksum) record that Recover() truncates. Because XLogFlush is
// always synchronous, a Flush() that returned kOk is never lost — in either
// commit mode; batches are written in LSN order, so recovery exposes a
// prefix of whole records, never a torn batch interior. Each unit's disk
// gets failpoint scope "<base>.<unit>" so one log device can be faulted
// independently. The "wal/crash_mid_batch" failpoint kills a unit mid
// group-commit batch; its optional trigger value is the byte offset into
// the batch that reached the device cache before the kill.
//
// fsyncgate: a FAILED fsync wedges the unit (kWedged). The kernel drops
// dirty pages on fsync error, so the whole unsynced window is gone; were the
// unit to stay open, a later successful fsync would silently ack commits
// whose records never reached stable storage. A wedged unit fails every
// commit until Recover().
//
// Statistics are relaxed atomics aggregated in stats(): the flush hot path
// takes no stats lock.
#ifndef SRC_MINIPG_WAL_H_
#define SRC_MINIPG_WAL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/simio/disk.h"
#include "src/vprof/sync.h"

namespace minipg {

// Who performs the WAL I/O for a commit (see file comment).
enum class CommitMode {
  kExclusive,    // per-commit write+fsync, serialized on the write lock
  kGroupCommit,  // elected leader batches; followers wait on an event
};

struct WalStats {
  uint64_t inserts = 0;
  uint64_t flush_calls = 0;
  uint64_t flushes_performed = 0;  // times a backend actually held the lock
  uint64_t flush_waits = 0;        // times a backend slept on the write lock
  uint64_t batched_records = 0;    // records written to the device by flushes
  uint64_t io_errors = 0;          // disk errors surfaced on the flush path
  uint64_t wedges = 0;             // failed fsyncs that wedged the unit
  uint64_t crashes = 0;
};

// Outcome of a flush request.
enum class WalStatus : uint8_t {
  kOk,        // durable
  kIoError,   // the log device failed the write; nothing landed — retryable
  kWedged,    // a failed fsync dropped the unsynced window (fsyncgate);
              // every commit fails until Recover()
  kCrashed,   // this unit crashed; Recover() required
  kShutdown,  // the unit was shut down; no further commits
};

// One WAL record as recovery sees it.
struct WalRecord {
  uint64_t end_lsn = 0;
  uint64_t bytes = 0;
  uint32_t checksum = 0;
};

uint32_t WalRecordChecksum(uint64_t end_lsn, uint64_t bytes);

struct WalRecoveryResult {
  uint64_t recovered_lsn = 0;
  uint64_t records_recovered = 0;
  uint64_t torn_truncated = 0;
  uint64_t records_lost = 0;
};

// One log: an insert position, a flushed position, and the write lock.
class WalUnit {
 public:
  explicit WalUnit(const simio::DiskConfig& disk_config,
                   CommitMode mode = CommitMode::kGroupCommit);

  // Reserves log space (XLogInsert); returns the record's end LSN, or 0
  // while the unit is crashed.
  uint64_t Insert(uint64_t bytes);

  // Makes the log durable up to `lsn` (XLogFlush). kOk is the durability
  // acknowledgment the recovery invariants protect.
  WalStatus Flush(uint64_t lsn);

  // Simulates a crash: freezes the unit, drops buffered records, keeps a
  // seed-deterministic prefix of the written-but-unsynced tail (last record
  // possibly torn).
  void Crash(uint64_t seed);

  // Scans the device image, truncates at the first checksum mismatch, and
  // re-opens the unit at the recovered LSN. Clears both the crashed and the
  // wedged state.
  WalRecoveryResult Recover();

  // Graceful shutdown: refuses new Insert/Flush (kShutdown) and performs one
  // final write+fsync of the pending batch (unless crashed/wedged). Backends
  // already inside Flush drain normally — the shutdown gate is only at the
  // entry points. Idempotent.
  void Shutdown();

  bool crashed() const { return crashed_.load(std::memory_order_acquire); }
  bool wedged() const { return wedged_.load(std::memory_order_acquire); }
  bool shutdown() const { return shutdown_.load(std::memory_order_acquire); }

  // Seed for crashes injected via the wal/crash_* failpoints.
  void set_crash_seed(uint64_t seed) {
    crash_seed_.store(seed, std::memory_order_relaxed);
  }

  CommitMode commit_mode() const { return mode_; }

  uint64_t flushed_lsn() const {
    return flushed_lsn_.load(std::memory_order_acquire);
  }
  uint64_t insert_lsn() const {
    return next_lsn_.load(std::memory_order_acquire);
  }
  int waiters() const { return waiters_.load(std::memory_order_relaxed); }

  // Device-image introspection for recovery tests.
  size_t device_record_count() const;
  size_t durable_record_count() const;

  WalStats stats() const;
  const simio::Disk& disk() const { return disk_; }

 private:
  // Instrumented LWLockAcquireOrWait. Returns true if the caller now holds
  // the write lock; false if it slept (or the unit crashed, or `lsn` became
  // durable) and should re-check. The follower sleep is an event wait under
  // this probe, so blocked time keeps its paper attribution.
  bool AcquireOrWait(uint64_t lsn);
  // Unconditional acquisition for kExclusive: loops until it holds the
  // lock; false only when the unit crashed.
  bool AcquireExclusive();
  // Releases the write lock and finishes the flush round: resets the next
  // round's event, then signals this round's waiters.
  void ReleaseAndWake();
  WalStatus GroupFlush(uint64_t lsn);
  WalStatus ExclusiveFlush(uint64_t lsn);
  // The batch write + fsync, called with the write lock held (the lock is
  // what serializes flushers, so device records land in LSN order).
  WalStatus WriteAndSync();
  // Appends the batch to the device image, tearing the record that crosses
  // `intact_bytes`. Requires device_mu_ held.
  void AppendBatchToDevice(const std::vector<WalRecord>& batch,
                           uint64_t intact_bytes);
  void CrashInternal(uint64_t seed);

  const CommitMode mode_;
  simio::Disk disk_;
  std::atomic<uint64_t> next_lsn_{1};
  std::atomic<uint64_t> flushed_lsn_{0};
  std::atomic<int> waiters_{0};

  std::mutex records_mu_;  // guards the insert buffer
  uint64_t pending_bytes_ = 0;
  std::vector<WalRecord> buffer_records_;

  mutable std::mutex device_mu_;  // guards the device image
  std::vector<WalRecord> device_records_;
  size_t durable_records_ = 0;
  uint64_t crash_lost_records_ = 0;

  std::atomic<bool> crashed_{false};
  std::atomic<bool> wedged_{false};
  std::atomic<bool> shutdown_{false};
  std::atomic<uint64_t> crash_seed_{0x5EED5EEDull};

  vprof::Mutex mu_;                // guards the write lock + round counter
  bool write_lock_held_ = false;
  uint64_t flush_round_ = 0;
  // Ping-pong follower wake-up events, indexed by round parity (see file
  // comment); Crash sets both so sleepers observe crashed_ promptly.
  vprof::Event flush_events_[2];

  std::atomic<uint64_t> stat_inserts_{0};
  std::atomic<uint64_t> stat_flush_calls_{0};
  std::atomic<uint64_t> stat_flushes_performed_{0};
  std::atomic<uint64_t> stat_flush_waits_{0};
  std::atomic<uint64_t> stat_batched_records_{0};
  std::atomic<uint64_t> stat_io_errors_{0};
  std::atomic<uint64_t> stat_wedges_{0};
  std::atomic<uint64_t> stat_crashes_{0};
};

// The paper's distributed-logging fix: N independent WAL units on separate
// disks; each transaction logs to the unit with the fewest waiters.
class Wal {
 public:
  Wal(int units, const simio::DiskConfig& disk_config,
      CommitMode mode = CommitMode::kGroupCommit);

  struct Position {
    int unit = 0;
    uint64_t lsn = 0;
  };

  // Chooses a unit (fewest waiters) and inserts.
  Position Insert(uint64_t bytes);

  // Inserts into a specific unit (follow-up records of the same txn).
  Position InsertAt(int unit, uint64_t bytes);

  WalStatus Flush(const Position& position);

  // Crashes / recovers every unit (unit i crashes with seed + i).
  void CrashAll(uint64_t seed);
  std::vector<WalRecoveryResult> RecoverAll();

  // Gracefully shuts down every unit (see WalUnit::Shutdown).
  void Shutdown();

  int unit_count() const { return static_cast<int>(units_.size()); }
  WalUnit& unit(int i) { return *units_[static_cast<size_t>(i)]; }

 private:
  std::vector<std::unique_ptr<WalUnit>> units_;
};

}  // namespace minipg

#endif  // SRC_MINIPG_WAL_H_
