// Edge behavior of the refinement driver: iteration caps, covariance-driven
// workloads, instrumentation bookkeeping, and report stability.
#include <gtest/gtest.h>

#include "src/simio/disk.h"
#include "src/statkit/rng.h"
#include "src/vprof/analysis/profiler.h"
#include "src/vprof/probe.h"

namespace vprof {
namespace {

statkit::Rng g_rng(41);
bool g_slow_phase = false;

// App whose two children co-vary: a shared "system state" slows both.
void CoupledA() {
  VPROF_FUNC("pe_coupled_a");
  simio::SleepUs(g_slow_phase ? 900.0 : 100.0);
}

void CoupledB() {
  VPROF_FUNC("pe_coupled_b");
  simio::SleepUs(g_slow_phase ? 1100.0 : 120.0);
}

void CoupledRoot() {
  VPROF_FUNC("pe_root");
  const IntervalId sid = BeginInterval();
  g_slow_phase = g_rng.NextBool(0.3);
  CoupledA();
  CoupledB();
  EndInterval(sid);
}

CallGraph CoupledGraph() {
  CallGraph graph;
  graph.AddEdge("pe_root", "pe_coupled_a");
  graph.AddEdge("pe_root", "pe_coupled_b");
  return graph;
}

TEST(ProfilerEdgeTest, CovarianceFactorRanksHighForCoupledFunctions) {
  const CallGraph graph = CoupledGraph();
  Profiler profiler("pe_root", &graph, [] {
    for (int i = 0; i < 100; ++i) {
      CoupledRoot();
    }
  });
  const ProfileResult result = profiler.Run();
  const Factor* pair = nullptr;
  for (const Factor& factor : result.all_factors) {
    if (factor.is_covariance() &&
        factor.Label(result.function_names).find("pe_coupled") !=
            std::string::npos) {
      pair = &factor;
      break;
    }
  }
  ASSERT_NE(pair, nullptr);
  // 2*Cov(A,B) should carry a large share: both sleep in lockstep.
  EXPECT_GT(pair->contribution, 0.3);
}

TEST(ProfilerEdgeTest, MaxIterationsCapsRuns) {
  const CallGraph graph = CoupledGraph();
  Profiler profiler("pe_root", &graph, [] {
    for (int i = 0; i < 30; ++i) {
      CoupledRoot();
    }
  });
  ProfileOptions options;
  options.max_iterations = 1;
  const ProfileResult result = profiler.Run(options);
  EXPECT_EQ(result.runs, 1);
}

TEST(ProfilerEdgeTest, TracingDisabledAfterRun) {
  const CallGraph graph = CoupledGraph();
  Profiler profiler("pe_root", &graph, [] {
    for (int i = 0; i < 20; ++i) {
      CoupledRoot();
    }
  });
  profiler.Run();
  EXPECT_FALSE(IsTracing());
  EXPECT_TRUE(EnabledFunctions().empty());
}

TEST(ProfilerEdgeTest, UnknownRootYieldsEmptyProfileGracefully) {
  CallGraph graph;
  graph.AddFunction("pe_never_called");
  Profiler profiler("pe_never_called", &graph, [] {
    simio::SleepUs(100.0);  // workload with no intervals at all
  });
  const ProfileResult result = profiler.Run();
  EXPECT_TRUE(result.factors.empty());
  EXPECT_EQ(result.latencies_ns.size(), 0u);
  EXPECT_GE(result.runs, 1);
}

TEST(ProfilerEdgeTest, ReportIsNonEmptyEvenWithoutFactors) {
  CallGraph graph;
  graph.AddFunction("pe_never_called");
  Profiler profiler("pe_never_called", &graph, [] {});
  const ProfileResult result = profiler.Run();
  EXPECT_NE(result.Report().find("overall"), std::string::npos);
}

}  // namespace
}  // namespace vprof
