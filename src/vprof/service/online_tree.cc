#include "src/vprof/service/online_tree.h"

#include <algorithm>
#include <span>
#include <sstream>

#include "src/vprof/service/prom.h"

namespace vprof {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string LabelFor(const TreeNode& n,
                     const std::vector<std::string>& function_names) {
  if (n.func == kInvalidFunc) {
    return n.is_body ? "(other)" : "(interval)";
  }
  const std::string name = n.func < function_names.size()
                               ? function_names[n.func]
                               : std::string("?");
  return n.is_body ? name + "(body)" : name;
}

}  // namespace

OnlineVarianceTree::OnlineVarianceTree(const OnlineTreeOptions& options)
    : options_(options),
      gamma_(statkit::DecayFactorForHalfLife(options.decay_half_life_epochs)) {
  nodes_.push_back(TreeNode{});  // synthetic root, NodeId 0
  moments_.emplace_back();
}

NodeId OnlineVarianceTree::Intern(NodeId parent, FuncId func, bool is_body,
                                  double seed_weight) {
  const TreeNode& parent_node = nodes_[static_cast<size_t>(parent)];
  for (NodeId child : parent_node.children) {
    const TreeNode& n = nodes_[static_cast<size_t>(child)];
    if (n.func == func && n.is_body == is_body) {
      return child;
    }
  }
  const NodeId id = static_cast<NodeId>(nodes_.size());
  TreeNode node;
  node.parent = parent;
  node.func = func;
  node.is_body = is_body;
  node.depth = parent_node.depth + 1;
  // Nodes born mid-stream must carry the same weight as everything else so
  // Equation (2) stays exact across instrumentation changes. A function
  // child contributed exactly zero before its probe was enabled, so it
  // seeds as `seed_weight` zeros. A body child usually appears the epoch
  // its parent is first expanded — before that, ALL of the parent's time
  // was unattributed self time — so it inherits a copy of the parent's
  // history. If the parent already had children in earlier epochs (and thus
  // simply had no self time until now), the body's past was zero instead.
  bool parent_had_children = false;
  for (NodeId child : nodes_[static_cast<size_t>(parent)].children) {
    if (child < prev_node_count_) {
      parent_had_children = true;
      break;
    }
  }
  nodes_.push_back(node);
  nodes_[static_cast<size_t>(parent)].children.push_back(id);
  if (is_body && !parent_had_children) {
    moments_.push_back(moments_[static_cast<size_t>(parent)]);
  } else {
    moments_.push_back(statkit::DecayedMoments::Seeded(seed_weight));
  }
  return id;
}

void OnlineVarianceTree::Fold(const Trace& trace) {
  // The expensive part — critical-path walk and per-interval attribution —
  // runs unlocked so Snapshot() readers are never blocked behind it.
  const VarianceAnalysis epoch(trace, options_.path_options);
  const size_t n_intervals = epoch.interval_count();

  std::lock_guard<std::mutex> lock(mu_);
  ++epochs_;
  dropped_records_ += trace.dropped_record_count();
  if (!trace.stuck_threads.empty()) {
    ++stuck_thread_epochs_;
    stuck_threads_ += trace.stuck_threads.size();
  }
  if (trace.function_names.size() > function_names_.size()) {
    function_names_ = trace.function_names;
  }

  // Age the window: one decay step per epoch, applied uniformly so every
  // accumulator keeps an identical weight.
  if (gamma_ < 1.0) {
    for (statkit::DecayedMoments& m : moments_) {
      m.Scale(gamma_);
    }
    for (PairAcc& p : pairs_) {
      p.cov.Scale(gamma_);
    }
  }
  if (n_intervals == 0) {
    return;  // an idle epoch still ages the window but adds nothing
  }

  intervals_ += n_intervals;
  total_queue_wait_ns_ += epoch.total_queue_wait_ns();
  total_blocked_wait_ns_ += epoch.total_blocked_wait_ns();
  total_descheduled_ns_ += epoch.total_descheduled_ns();

  // Map epoch-tree nodes onto persistent nodes. The epoch tree stores
  // parents before children (Intern appends), so one forward pass resolves
  // every parent. New persistent nodes are seeded at the pre-epoch weight.
  const double pre_weight = moments_[kRootNode].weight();
  prev_node_count_ = static_cast<NodeId>(nodes_.size());
  std::vector<NodeId> to_online(epoch.node_count(), -1);
  to_online[kRootNode] = kRootNode;
  for (size_t id = 1; id < epoch.node_count(); ++id) {
    const TreeNode& n = epoch.node(static_cast<NodeId>(id));
    const NodeId parent = to_online[static_cast<size_t>(n.parent)];
    to_online[id] = Intern(parent, n.func, n.is_body, pre_weight);
  }

  // Per-online-node series for this epoch; empty span = all zeros.
  std::vector<std::span<const double>> series(nodes_.size());
  for (size_t id = 0; id < epoch.node_count(); ++id) {
    series[static_cast<size_t>(to_online[id])] =
        epoch.Series(static_cast<NodeId>(id));
  }

  // A node expanded in earlier epochs can be a leaf in this one (its
  // children's probes were retired): the epoch then has no body node under
  // it, but all of its time is self time. Route the parent's series to the
  // persistent body child so Var(children)+Cov still composes to Var(parent)
  // within the window.
  for (size_t id = 1; id < nodes_.size(); ++id) {
    const TreeNode& n = nodes_[id];
    if (!n.is_body || !series[id].empty()) {
      continue;
    }
    const size_t parent = static_cast<size_t>(n.parent);
    if (series[parent].empty()) {
      continue;
    }
    bool sibling_has_data = false;
    for (NodeId sibling : nodes_[parent].children) {
      if (sibling != static_cast<NodeId>(id) &&
          !series[static_cast<size_t>(sibling)].empty()) {
        sibling_has_data = true;
        break;
      }
    }
    if (!sibling_has_data) {
      series[id] = series[parent];
    }
  }

  // Track every sibling pair under every parent with >= 2 children. Pairs
  // born this epoch are seeded at the pre-epoch weight with a zero co-moment
  // (the younger sibling was constant zero before).
  for (size_t id = 0; id < nodes_.size(); ++id) {
    const std::vector<NodeId>& kids = nodes_[id].children;
    if (kids.size() < 2) {
      continue;
    }
    for (size_t a = 0; a < kids.size(); ++a) {
      for (size_t b = a + 1; b < kids.size(); ++b) {
        const uint64_t key = PairKey(kids[a], kids[b]);
        if (pair_index_.find(key) != pair_index_.end()) {
          continue;
        }
        PairAcc acc;
        acc.parent = static_cast<NodeId>(id);
        acc.a = kids[a];
        acc.b = kids[b];
        acc.cov = statkit::DecayedCovariance::Seeded(
            pre_weight, moments_[static_cast<size_t>(kids[a])].mean(),
            moments_[static_cast<size_t>(kids[b])].mean());
        pair_index_.emplace(key, pairs_.size());
        pairs_.push_back(std::move(acc));
      }
    }
  }

  // Fold the epoch's intervals. Nodes absent from this epoch observe zeros,
  // keeping all weights aligned.
  for (size_t i = 0; i < n_intervals; ++i) {
    for (size_t id = 0; id < nodes_.size(); ++id) {
      moments_[id].Add(series[id].empty() ? 0.0 : series[id][i]);
    }
    for (PairAcc& p : pairs_) {
      const auto& sa = series[static_cast<size_t>(p.a)];
      const auto& sb = series[static_cast<size_t>(p.b)];
      p.cov.Add(sa.empty() ? 0.0 : sa[i], sb.empty() ? 0.0 : sb[i]);
    }
  }
}

OnlineTreeSnapshot OnlineVarianceTree::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  OnlineTreeSnapshot snap;
  snap.nodes = nodes_;
  snap.node_mean.reserve(nodes_.size());
  snap.node_variance.reserve(nodes_.size());
  for (const statkit::DecayedMoments& m : moments_) {
    snap.node_mean.push_back(m.mean());
    snap.node_variance.push_back(m.variance());
  }
  snap.covariances.reserve(pairs_.size());
  for (const PairAcc& p : pairs_) {
    snap.covariances.push_back(
        SiblingCovariance{p.parent, p.a, p.b, p.cov.covariance()});
  }
  snap.function_names = function_names_;
  snap.epochs = epochs_;
  snap.intervals = intervals_;
  snap.weight = moments_[kRootNode].weight();
  snap.dropped_records = dropped_records_;
  snap.stuck_thread_epochs = stuck_thread_epochs_;
  snap.stuck_threads = stuck_threads_;
  snap.total_queue_wait_ns = total_queue_wait_ns_;
  snap.total_blocked_wait_ns = total_blocked_wait_ns_;
  snap.total_descheduled_ns = total_descheduled_ns_;
  return snap;
}

uint64_t OnlineVarianceTree::epochs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epochs_;
}

std::string OnlineTreeSnapshot::NodeLabel(NodeId id) const {
  return LabelFor(nodes[static_cast<size_t>(id)], function_names);
}

std::string OnlineTreeSnapshot::NodePath(NodeId id) const {
  if (id == kRootNode) {
    return "(interval)";
  }
  std::vector<std::string> parts;
  for (NodeId at = id; at != kRootNode;
       at = nodes[static_cast<size_t>(at)].parent) {
    parts.push_back(NodeLabel(at));
  }
  std::string path;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    if (!path.empty()) {
      path += '/';
    }
    path += *it;
  }
  return path;
}

std::string OnlineTreeSnapshot::ToPromText() const {
  PromWriter w;
  w.Family("vprof_epochs_total", "counter", "Epochs folded into the tree.");
  w.Sample("vprof_epochs_total", epochs);
  w.Family("vprof_intervals_total", "counter",
           "Semantic intervals folded (undecayed).");
  w.Sample("vprof_intervals_total", intervals);
  w.Family("vprof_interval_weight", "gauge",
           "Decayed effective interval count of the window.");
  w.Sample("vprof_interval_weight", weight);
  w.Family("vprof_interval_latency_mean_ns", "gauge",
           "Mean interval latency over the window.");
  w.Sample("vprof_interval_latency_mean_ns", overall_mean());
  w.Family("vprof_interval_latency_variance_ns2", "gauge",
           "Interval latency variance over the window.");
  w.Sample("vprof_interval_latency_variance_ns2", overall_variance());

  // Tracer self-health: the profiler's own degradation must be observable.
  w.Family("vprof_dropped_records_total", "counter",
           "Probe records lost to per-thread arena caps.");
  w.Sample("vprof_dropped_records_total", dropped_records);
  w.Family("vprof_stuck_thread_epochs_total", "counter",
           "Epochs whose harvest quarantined at least one stuck thread.");
  w.Sample("vprof_stuck_thread_epochs_total", stuck_thread_epochs);
  w.Family("vprof_stuck_threads_total", "counter",
           "Stuck threads quarantined by harvest quiesce, summed.");
  w.Sample("vprof_stuck_threads_total", stuck_threads);
  w.Family("vprof_queue_wait_ns_total", "counter",
           "Critical-path time attributed to queue wait.");
  w.Sample("vprof_queue_wait_ns_total", total_queue_wait_ns);
  w.Family("vprof_blocked_wait_ns_total", "counter",
           "Critical-path time attributed to uninstrumented blocking.");
  w.Sample("vprof_blocked_wait_ns_total", total_blocked_wait_ns);
  w.Family("vprof_descheduled_ns_total", "counter",
           "Critical-path time spent descheduled.");
  w.Sample("vprof_descheduled_ns_total", total_descheduled_ns);

  w.Family("vprof_node_mean_ns", "gauge",
           "Per-node mean time, keyed by root-to-node path.");
  w.Family("vprof_node_variance_ns2", "gauge",
           "Per-node variance, keyed by root-to-node path.");
  w.Family("vprof_node_variance_share", "gauge",
           "Node variance as a share of overall interval variance.");
  const double overall = overall_variance();
  for (size_t id = 1; id < nodes.size(); ++id) {
    const PromWriter::Labels labels{
        {"path", NodePath(static_cast<NodeId>(id))}};
    w.Sample("vprof_node_mean_ns", labels, node_mean[id]);
    w.Sample("vprof_node_variance_ns2", labels, node_variance[id]);
    w.Sample("vprof_node_variance_share", labels,
             overall > 0.0 ? node_variance[id] / overall : 0.0);
  }
  return w.Text();
}

namespace {

void NodeToJson(const OnlineTreeSnapshot& snap, NodeId id, double overall,
                std::ostringstream* out) {
  const size_t idx = static_cast<size_t>(id);
  *out << "{\"label\":\"" << JsonEscape(snap.NodeLabel(id)) << "\""
       << ",\"mean_ns\":" << snap.node_mean[idx]
       << ",\"variance_ns2\":" << snap.node_variance[idx] << ",\"share\":"
       << (overall > 0.0 ? snap.node_variance[idx] / overall : 0.0)
       << ",\"children\":[";
  bool first = true;
  for (NodeId child : snap.nodes[idx].children) {
    if (!first) {
      *out << ",";
    }
    first = false;
    NodeToJson(snap, child, overall, out);
  }
  *out << "]}";
}

}  // namespace

std::string OnlineTreeSnapshot::ToJson() const {
  std::ostringstream out;
  out << "{\"epochs\":" << epochs << ",\"intervals\":" << intervals
      << ",\"weight\":" << weight << ",\"dropped_records\":" << dropped_records
      << ",\"stuck_thread_epochs\":" << stuck_thread_epochs
      << ",\"latency_mean_ns\":" << overall_mean()
      << ",\"latency_variance_ns2\":" << overall_variance() << ",\"tree\":";
  if (nodes.empty()) {
    out << "null";
  } else {
    NodeToJson(*this, kRootNode, overall_variance(), &out);
  }
  out << "}";
  return out.str();
}

}  // namespace vprof
