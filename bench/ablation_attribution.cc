// Design ablation (not in the paper's evaluation, but implied by its
// Section 3.3 design): how blocked time on the critical path is attributed.
//
//   coverage-based (default): a blocked span covered by an instrumented wait
//     function (os_event_wait) is charged to that function — this is what
//     lets the paper's Table 4 report os_event_wait as a factor.
//   waker-only: every blocked span is charged to the waker thread's
//     execution instead (pure Algorithm 2 pseudocode reading).
//
// The ablation profiles the same minidb run under both policies and shows
// that without coverage attribution the lock-wait factor disappears into the
// waker's commit-path functions, which is far less actionable.
#include "bench/common.h"

namespace {

vprof::ProfileResult ProfileWith(bool coverage) {
  minidb::EngineConfig config = bench::MysqlMemoryResidentConfig();
  config.warehouses = 2;
  minidb::Engine engine(config);
  vprof::CallGraph graph;
  minidb::Engine::RegisterCallGraph(&graph);
  workload::TpccDriver driver(&engine, bench::TpccQuick(8, 200));
  driver.Run();  // warm-up

  vprof::Profiler profiler("run_transaction", &graph, [&] { driver.Run(); });
  vprof::ProfileOptions options;
  options.top_k = 5;
  if (!coverage) {
    // Force the waker-only policy: pretend no invocation ever covers a
    // blocked span.
    options.path_options.has_coverage =
        [](vprof::ThreadId, vprof::TimeNs, vprof::TimeNs) { return false; };
  }
  return profiler.Run(options);
}

double ContributionOf(const vprof::ProfileResult& result,
                      const std::string& label) {
  for (const auto& factor : result.all_factors) {
    if (factor.Label(result.function_names) == label) {
      return factor.contribution;
    }
  }
  return 0.0;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Design ablation — blocked-time attribution (coverage vs waker-only)");

  const vprof::ProfileResult with_coverage = ProfileWith(true);
  const vprof::ProfileResult waker_only = ProfileWith(false);

  std::printf("  coverage-based attribution (default):\n");
  bench::PrintTopFactors(with_coverage, 5);
  std::printf("\n  waker-only attribution:\n");
  bench::PrintTopFactors(waker_only, 5);

  std::printf("\n  os_event_wait contribution: coverage=%.1f%%, waker-only=%.1f%%\n",
              ContributionOf(with_coverage, "os_event_wait") * 100.0,
              ContributionOf(waker_only, "os_event_wait") * 100.0);
  std::printf("  Without coverage attribution the lock-wait factor vanishes and\n"
              "  the blame lands on the lock holders' commit path — true but far\n"
              "  less actionable than \"waiting in os_event_wait\".\n");
  return 0;
}
