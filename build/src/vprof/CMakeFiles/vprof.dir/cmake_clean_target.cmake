file(REMOVE_RECURSE
  "libvprof.a"
)
