file(REMOVE_RECURSE
  "CMakeFiles/minidb_lock_manager_test.dir/lock_manager_test.cc.o"
  "CMakeFiles/minidb_lock_manager_test.dir/lock_manager_test.cc.o.d"
  "minidb_lock_manager_test"
  "minidb_lock_manager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minidb_lock_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
