file(REMOVE_RECURSE
  "libsimio.a"
)
