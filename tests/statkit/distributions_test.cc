#include "src/statkit/distributions.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/statkit/welford.h"

namespace statkit {
namespace {

TEST(DistributionsTest, StandardNormalMoments) {
  Rng rng(31);
  StreamingMoments m;
  for (int i = 0; i < 100000; ++i) {
    m.Add(SampleStandardNormal(rng));
  }
  EXPECT_NEAR(m.mean(), 0.0, 0.02);
  EXPECT_NEAR(m.variance(), 1.0, 0.03);
}

TEST(DistributionsTest, LognormalMedian) {
  Rng rng(32);
  StreamingMoments log_m;
  for (int i = 0; i < 50000; ++i) {
    log_m.Add(std::log(SampleLognormal(rng, 3.0, 0.5)));
  }
  // log of a lognormal(mu, sigma) is normal(mu, sigma).
  EXPECT_NEAR(log_m.mean(), 3.0, 0.02);
  EXPECT_NEAR(log_m.stddev(), 0.5, 0.02);
}

TEST(DistributionsTest, ExponentialMean) {
  Rng rng(33);
  StreamingMoments m;
  for (int i = 0; i < 50000; ++i) {
    m.Add(SampleExponential(rng, 4.0));
  }
  EXPECT_NEAR(m.mean(), 4.0, 0.1);
  // Exponential: variance = mean^2.
  EXPECT_NEAR(m.variance(), 16.0, 1.0);
}

TEST(DistributionsTest, ParetoLowerBound) {
  Rng rng(34);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(SamplePareto(rng, 2.0, 1.5), 2.0);
  }
}

TEST(ZipfGeneratorTest, RangeAndSkew) {
  Rng rng(35);
  ZipfGenerator zipf(100, 0.99);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) {
    const uint64_t x = zipf.Sample(rng);
    ASSERT_LT(x, 100u);
    ++counts[x];
  }
  // Rank 0 must dominate rank 50 heavily under theta ~ 1.
  EXPECT_GT(counts[0], counts[50] * 10);
  EXPECT_GT(counts[0], 0);
}

TEST(ZipfGeneratorTest, ThetaZeroIsUniform) {
  Rng rng(36);
  ZipfGenerator zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), 5000.0, 350.0);
  }
}

}  // namespace
}  // namespace statkit
