file(REMOVE_RECURSE
  "CMakeFiles/profile_multitier.dir/profile_multitier.cpp.o"
  "CMakeFiles/profile_multitier.dir/profile_multitier.cpp.o.d"
  "profile_multitier"
  "profile_multitier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_multitier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
