// StatStore behavior under normal operation: bit-exact roundtrips, segment
// rollover, retention, mid-stream series births, failpoints, stats.
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/fault/failpoint.h"
#include "src/statstore/gorilla.h"
#include "src/statstore/store.h"

namespace statstore {
namespace {

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::string(::testing::TempDir()) + "/statstore_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    fault::DeactivateAll();
    std::filesystem::remove_all(dir_);
  }

  StoreOptions Options() {
    StoreOptions o;
    o.dir = dir_;
    return o;
  }

  std::string dir_;
};

EpochSample Sample(uint64_t epoch,
                   std::vector<std::pair<std::string, double>> values) {
  EpochSample s;
  s.epoch = epoch;
  for (auto& [name, v] : values) {
    s.values.push_back(SeriesValue{std::move(name), v});
  }
  return s;
}

TEST_F(StoreTest, AppendThenQueryIsBitExact) {
  StatStore store(Options());
  ASSERT_TRUE(store.Open());

  std::mt19937_64 rng(3);
  std::normal_distribution<double> noise(100.0, 15.0);
  std::vector<double> lat, share;
  for (uint64_t e = 1; e <= 500; ++e) {
    lat.push_back(noise(rng));
    share.push_back(0.25 + 1e-3 * static_cast<double>(e % 7));
    ASSERT_EQ(store.Append(Sample(e, {{"latency", lat.back()},
                                      {"share", share.back()}})),
              AppendStatus::kOk);
  }

  const std::vector<SeriesPoint> got = store.Query("latency", 0, UINT64_MAX);
  ASSERT_EQ(got.size(), 500u);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].epoch, i + 1);
    EXPECT_EQ(DoubleBits(got[i].value), DoubleBits(lat[i])) << "epoch " << i + 1;
  }

  // Range bounds are inclusive and honored.
  const std::vector<SeriesPoint> mid = store.Query("share", 100, 102);
  ASSERT_EQ(mid.size(), 3u);
  EXPECT_EQ(mid.front().epoch, 100u);
  EXPECT_EQ(mid.back().epoch, 102u);
  EXPECT_EQ(DoubleBits(mid[0].value), DoubleBits(share[99]));

  EXPECT_TRUE(store.Query("no_such_series", 0, UINT64_MAX).empty());
  EXPECT_TRUE(store.Query("latency", 600, 700).empty());
  EXPECT_EQ(store.first_epoch(), 1u);
  EXPECT_EQ(store.last_epoch(), 500u);
  EXPECT_EQ(store.record_count(), 500u);
}

TEST_F(StoreTest, RolloverSealsAndQuerySpansSegments) {
  StoreOptions opts = Options();
  opts.max_segment_bytes = 512;  // force frequent rotation
  StatStore store(opts);
  ASSERT_TRUE(store.Open());

  for (uint64_t e = 1; e <= 300; ++e) {
    ASSERT_EQ(store.Append(Sample(e, {{"v", static_cast<double>(e) * 1.5}})),
              AppendStatus::kOk);
  }
  EXPECT_GT(store.segment_count(), 3u);
  // At most the tail segment is unsealed at any point.
  EXPECT_GE(store.stats().segments_sealed + 1, store.stats().segments_created);
  EXPECT_GE(store.stats().segments_created, store.stats().segments_sealed);

  const std::vector<SeriesPoint> got = store.Query("v", 0, UINT64_MAX);
  ASSERT_EQ(got.size(), 300u);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].epoch, i + 1);
    EXPECT_EQ(got[i].value, static_cast<double>(i + 1) * 1.5);
  }
}

TEST_F(StoreTest, RetentionDropsOldestSegments) {
  StoreOptions opts = Options();
  opts.max_segment_bytes = 512;
  opts.max_segments = 3;
  StatStore store(opts);
  ASSERT_TRUE(store.Open());

  for (uint64_t e = 1; e <= 400; ++e) {
    ASSERT_EQ(store.Append(Sample(e, {{"v", static_cast<double>(e)}})),
              AppendStatus::kOk);
  }
  EXPECT_LE(store.segment_count(), 3u);
  EXPECT_GT(store.stats().segments_dropped, 0u);

  // Old epochs are gone, the recent tail is intact and still contiguous.
  const std::vector<SeriesPoint> got = store.Query("v", 0, UINT64_MAX);
  ASSERT_FALSE(got.empty());
  EXPECT_GT(got.front().epoch, 1u);
  EXPECT_EQ(got.back().epoch, 400u);
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_EQ(got[i].epoch, got[i - 1].epoch + 1);
  }
  // Files on disk match the in-memory view.
  size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    files += entry.is_regular_file() ? 1 : 0;
  }
  EXPECT_EQ(files, store.segment_count());
}

TEST_F(StoreTest, SeriesBornMidStreamQueriesCleanly) {
  StoreOptions opts = Options();
  opts.max_segment_bytes = 256;  // births cross segment boundaries too
  StatStore store(opts);
  ASSERT_TRUE(store.Open());

  for (uint64_t e = 1; e <= 100; ++e) {
    std::vector<std::pair<std::string, double>> values{
        {"always", static_cast<double>(e)}};
    if (e >= 50) values.push_back({"late", static_cast<double>(e) + 0.5});
    if (e % 2 == 0) values.push_back({"even_only", static_cast<double>(e * 2)});
    ASSERT_EQ(store.Append(Sample(e, values)), AppendStatus::kOk);
  }

  EXPECT_EQ(store.Query("always", 0, UINT64_MAX).size(), 100u);
  const std::vector<SeriesPoint> late = store.Query("late", 0, UINT64_MAX);
  ASSERT_EQ(late.size(), 51u);
  EXPECT_EQ(late.front().epoch, 50u);
  EXPECT_EQ(late.front().value, 50.5);
  const std::vector<SeriesPoint> even = store.Query("even_only", 0, UINT64_MAX);
  ASSERT_EQ(even.size(), 50u);
  for (const SeriesPoint& p : even) {
    EXPECT_EQ(p.epoch % 2, 0u);
    EXPECT_EQ(p.value, static_cast<double>(p.epoch * 2));
  }

  const std::vector<std::string> names = store.ListSeries();
  ASSERT_EQ(names.size(), 3u);  // sorted union
  EXPECT_EQ(names[0], "always");
  EXPECT_EQ(names[1], "even_only");
  EXPECT_EQ(names[2], "late");
}

TEST_F(StoreTest, NonMonotonicEpochIsRejected) {
  StatStore store(Options());
  ASSERT_TRUE(store.Open());
  ASSERT_EQ(store.Append(Sample(10, {{"v", 1.0}})), AppendStatus::kOk);
  EXPECT_EQ(store.Append(Sample(10, {{"v", 2.0}})), AppendStatus::kBadEpoch);
  EXPECT_EQ(store.Append(Sample(9, {{"v", 3.0}})), AppendStatus::kBadEpoch);
  EXPECT_EQ(store.Append(Sample(11, {{"v", 4.0}})), AppendStatus::kOk);
  EXPECT_EQ(store.record_count(), 2u);
}

TEST_F(StoreTest, WriteErrorFailpointIsTransient) {
  StatStore store(Options());
  ASSERT_TRUE(store.Open());
  ASSERT_EQ(store.Append(Sample(1, {{"v", 1.0}})), AppendStatus::kOk);

  {
    fault::ScopedFailpoint fp("statstore/write_error",
                              fault::Trigger::Always());
    EXPECT_EQ(store.Append(Sample(2, {{"v", 2.0}})), AppendStatus::kIoError);
    EXPECT_EQ(store.Append(Sample(3, {{"v", 3.0}})), AppendStatus::kIoError);
  }
  // Store is not wedged: appends resume once the fault clears.
  EXPECT_FALSE(store.wedged());
  EXPECT_EQ(store.Append(Sample(4, {{"v", 4.0}})), AppendStatus::kOk);

  const std::vector<SeriesPoint> got = store.Query("v", 0, UINT64_MAX);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].epoch, 1u);
  EXPECT_EQ(got[1].epoch, 4u);
  EXPECT_EQ(store.stats().append_errors, 2u);
}

TEST_F(StoreTest, TornWriteFailpointWedgesUntilReopen) {
  {
    StatStore store(Options());
    ASSERT_TRUE(store.Open());
    for (uint64_t e = 1; e <= 20; ++e) {
      ASSERT_EQ(store.Append(Sample(e, {{"v", static_cast<double>(e)}})),
                AppendStatus::kOk);
    }
    fault::ScopedFailpoint fp("statstore/torn_write",
                              fault::Trigger::OneShot());
    EXPECT_EQ(store.Append(Sample(21, {{"v", 21.0}})), AppendStatus::kIoError);
    EXPECT_TRUE(store.wedged());
    EXPECT_EQ(store.Append(Sample(22, {{"v", 22.0}})), AppendStatus::kWedged);
  }
  // A fresh store over the same directory recovers the intact prefix.
  StatStore reopened(Options());
  ASSERT_TRUE(reopened.Open());
  EXPECT_FALSE(reopened.wedged());
  const std::vector<SeriesPoint> got = reopened.Query("v", 0, UINT64_MAX);
  ASSERT_EQ(got.size(), 20u);
  EXPECT_EQ(got.back().epoch, 20u);
  // And it keeps accepting appends past the recovered tail.
  EXPECT_EQ(reopened.Append(Sample(21, {{"v", 21.0}})), AppendStatus::kOk);
}

TEST_F(StoreTest, StallFailpointShowsUpInAppendLatency) {
  StoreOptions opts = Options();
  opts.stall_us = 2000.0;
  StatStore store(opts);
  ASSERT_TRUE(store.Open());
  ASSERT_EQ(store.Append(Sample(1, {{"v", 1.0}})), AppendStatus::kOk);
  const uint64_t baseline_max = store.stats().max_append_ns;

  fault::ScopedFailpoint fp("statstore/stall", fault::Trigger::OneShot());
  ASSERT_EQ(store.Append(Sample(2, {{"v", 2.0}})), AppendStatus::kOk);
  EXPECT_GE(store.stats().max_append_ns, baseline_max);
  EXPECT_GE(store.stats().last_append_ns, 2'000'000u * 9 / 10);
}

TEST_F(StoreTest, ReopenExtendsExistingStore) {
  {
    StatStore store(Options());
    ASSERT_TRUE(store.Open());
    for (uint64_t e = 1; e <= 50; ++e) {
      ASSERT_EQ(store.Append(Sample(e, {{"v", static_cast<double>(e)}})),
                AppendStatus::kOk);
    }
    store.Seal();
  }
  StatStore store(Options());
  ASSERT_TRUE(store.Open());
  EXPECT_EQ(store.last_epoch(), 50u);
  for (uint64_t e = 51; e <= 100; ++e) {
    ASSERT_EQ(store.Append(Sample(e, {{"v", static_cast<double>(e)}})),
              AppendStatus::kOk);
  }
  const std::vector<SeriesPoint> got = store.Query("v", 0, UINT64_MAX);
  ASSERT_EQ(got.size(), 100u);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].epoch, i + 1);
    EXPECT_EQ(got[i].value, static_cast<double>(i + 1));
  }
}

TEST_F(StoreTest, StatsCountWritesAndDrops) {
  StatStore store(Options());
  ASSERT_TRUE(store.Open());
  const std::string overlong(kMaxSeriesNameBytes + 1, 'x');
  ASSERT_EQ(store.Append(Sample(1, {{"ok", 1.0}, {overlong, 2.0}})),
            AppendStatus::kOk);
  const StoreStats stats = store.stats();
  EXPECT_EQ(stats.appends, 1u);
  EXPECT_EQ(stats.values_dropped, 1u);
  EXPECT_GT(stats.bytes_written, 0u);
  EXPECT_EQ(stats.segments_created, 1u);
  EXPECT_EQ(store.disk_bytes(), stats.bytes_written);
}

}  // namespace
}  // namespace statstore
