#include "src/minidb/engine.h"

#include <gtest/gtest.h>

#include "src/workload/tpcc.h"

namespace minidb {
namespace {

EngineConfig FastConfig() {
  EngineConfig config = EngineConfig::MemoryResident();
  config.warehouses = 2;
  // Quick disks so unit tests stay fast.
  config.data_disk.read_mu = 0.5;
  config.data_disk.write_mu = 0.5;
  config.data_disk.serialize_access = false;
  config.log_disk.write_mu = 0.5;
  config.log_disk.fsync_mu = 1.0;
  config.log_disk.fsync_sigma = 0.05;
  config.log_disk.fsync_spike_prob = 0.0;
  config.log_disk.serialize_access = false;
  return config;
}

TxnRequest NewOrderRequest() {
  TxnRequest request;
  request.type = TxnType::kNewOrder;
  request.warehouse = 0;
  request.district = 1;
  request.items = {5, 9, 12};
  return request;
}

TEST(EngineTest, InitialDataLoaded) {
  Engine engine(FastConfig());
  EXPECT_EQ(engine.warehouse().row_count(), 2u);
  EXPECT_EQ(engine.district().row_count(), 20u);
  EXPECT_EQ(engine.customer().row_count(),
            2u * 10u * static_cast<size_t>(Engine::kCustomersPerDistrict));
  EXPECT_EQ(engine.stock().row_count(),
            2u * static_cast<size_t>(Engine::kItemsPerWarehouse));
}

TEST(EngineTest, NewOrderCommits) {
  Engine engine(FastConfig());
  const TxnOutcome outcome = engine.Execute(NewOrderRequest());
  EXPECT_TRUE(outcome.committed);
  EXPECT_EQ(engine.committed_count(), 1u);
  EXPECT_EQ(engine.orders().row_count(), 1u);
  // Redo was written and flushed (eager policy).
  EXPECT_GE(engine.redo_log().flushed_lsn(), 1u);
}

TEST(EngineTest, AllTransactionTypesCommit) {
  Engine engine(FastConfig());
  for (TxnType type : {TxnType::kNewOrder, TxnType::kPayment,
                       TxnType::kOrderStatus, TxnType::kDelivery,
                       TxnType::kStockLevel}) {
    TxnRequest request = NewOrderRequest();
    request.type = type;
    const TxnOutcome outcome = engine.Execute(request);
    EXPECT_TRUE(outcome.committed) << static_cast<int>(type);
  }
  EXPECT_EQ(engine.committed_count(), 5u);
  EXPECT_EQ(engine.aborted_count(), 0u);
}

TEST(EngineTest, LocksReleasedAfterCommit) {
  Engine engine(FastConfig());
  engine.Execute(NewOrderRequest());
  EXPECT_EQ(engine.lock_manager().ActiveObjects(), 0u);
}

TEST(EngineTest, PaymentTouchesWarehouseRow) {
  Engine engine(FastConfig());
  TxnRequest request;
  request.type = TxnType::kPayment;
  request.warehouse = 1;
  request.district = 3;
  request.customer = 42;
  EXPECT_TRUE(engine.Execute(request).committed);
  // Warehouse page was accessed through the buffer pool.
  EXPECT_GE(engine.buffer_pool().stats().misses, 1u);
}

TEST(EngineTest, DuplicateItemsDeduplicated) {
  Engine engine(FastConfig());
  TxnRequest request = NewOrderRequest();
  request.items = {5, 5, 5, 9};
  EXPECT_TRUE(engine.Execute(request).committed);
}

TEST(EngineTest, ConcurrentMixedWorkloadCommits) {
  Engine engine(FastConfig());
  workload::TpccOptions options;
  options.threads = 4;
  options.transactions_per_thread = 50;
  workload::TpccDriver driver(&engine, options);
  const workload::TpccResult result = driver.Run();
  EXPECT_EQ(result.committed + result.aborted, 200u);
  EXPECT_EQ(result.committed, engine.committed_count());
  EXPECT_GT(result.committed, 150u);  // aborts should be rare
  EXPECT_EQ(result.latencies_ns.size(), result.committed);
  EXPECT_EQ(engine.lock_manager().ActiveObjects(), 0u);
  EXPECT_TRUE(engine.buffer_pool().CheckInvariants());
}

TEST(EngineTest, MemoryConstrainedConfigEvicts) {
  EngineConfig config = FastConfig();
  config.buffer_pool_pages = 32;
  Engine engine(config);
  workload::TpccOptions options;
  options.threads = 2;
  options.transactions_per_thread = 40;
  workload::TpccDriver driver(&engine, options);
  driver.Run();
  const auto stats = engine.buffer_pool().stats();
  EXPECT_GT(stats.clean_evictions + stats.dirty_evictions, 0u);
  EXPECT_LE(engine.buffer_pool().resident_pages(), 32u);
}

TEST(EngineTest, VatsConfigRunsCorrectly) {
  EngineConfig config = FastConfig();
  config.lock_scheduling = LockScheduling::kVats;
  Engine engine(config);
  workload::TpccOptions options;
  options.threads = 4;
  options.transactions_per_thread = 30;
  workload::TpccDriver driver(&engine, options);
  const auto result = driver.Run();
  EXPECT_GT(result.committed, 100u);
  EXPECT_EQ(engine.lock_manager().ActiveObjects(), 0u);
}

TEST(EngineTest, LazyFlushPolicyCommits) {
  EngineConfig config = FastConfig();
  config.flush_policy = FlushPolicy::kLazyFlush;
  Engine engine(config);
  EXPECT_TRUE(engine.Execute(NewOrderRequest()).committed);
}

TEST(EngineTest, LockTimeoutAbortsAndReleasesEverything) {
  EngineConfig config = FastConfig();
  config.lock_wait_timeout_ns = 5LL * 1000 * 1000;  // 5ms: guaranteed timeout
  Engine engine(config);

  // Thread A holds the warehouse-0 payment path open by sleeping inside a
  // handcrafted conflicting transaction; easiest deterministic conflict:
  // run one Payment on warehouse 0 from another thread while this thread
  // already holds the warehouse lock via the lock manager directly.
  Transaction blocker(999999, 0);
  ASSERT_TRUE(engine.lock_manager().Lock(
      &blocker, engine.warehouse().LockObjectId(0), LockMode::kExclusive));

  TxnRequest request;
  request.type = TxnType::kPayment;
  request.warehouse = 0;
  request.district = 1;
  request.customer = 3;
  const TxnOutcome outcome = engine.Execute(request);
  EXPECT_FALSE(outcome.committed);
  EXPECT_EQ(engine.aborted_count(), 1u);

  engine.lock_manager().ReleaseAll(&blocker);
  // After the blocker releases, the same transaction commits.
  EXPECT_TRUE(engine.Execute(request).committed);
  EXPECT_EQ(engine.lock_manager().ActiveObjects(), 0u);
}

TEST(EngineTest, ExecuteJoinsEnclosingInterval) {
  Engine engine(FastConfig());
  vprof::StartTracing();
  const vprof::IntervalId outer = vprof::BeginInterval();
  engine.Execute(NewOrderRequest());
  EXPECT_EQ(vprof::CurrentIntervalId(), outer);  // not ended by the engine
  vprof::EndInterval(outer);
  const vprof::Trace trace = vprof::StopTracing();
  EXPECT_EQ(trace.interval_count(), 1u);  // exactly the outer interval
}

TEST(EngineTest, CallGraphCoversInstrumentedFunctions) {
  vprof::CallGraph graph;
  Engine::RegisterCallGraph(&graph);
  const vprof::FuncId root = vprof::RegisterFunction("run_transaction");
  EXPECT_EQ(graph.Children(root).size(), 4u);
  EXPECT_GE(graph.Height(root), 3);
  // os_event_wait is reachable and is a leaf.
  const vprof::FuncId wait = vprof::RegisterFunction("os_event_wait");
  EXPECT_FALSE(graph.HasChildren(wait));
}

}  // namespace
}  // namespace minidb
