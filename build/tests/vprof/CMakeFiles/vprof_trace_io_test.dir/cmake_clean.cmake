file(REMOVE_RECURSE
  "CMakeFiles/vprof_trace_io_test.dir/trace_io_test.cc.o"
  "CMakeFiles/vprof_trace_io_test.dir/trace_io_test.cc.o.d"
  "vprof_trace_io_test"
  "vprof_trace_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vprof_trace_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
