#include "src/minidb/redo_log.h"

#include "src/vprof/probe.h"

namespace minidb {

namespace {
constexpr uint64_t kLogBlockBytes = 512;
}  // namespace

RedoLog::RedoLog(FlushPolicy policy, simio::Disk* disk, double flusher_period_us)
    : policy_(policy), disk_(disk), flusher_period_us_(flusher_period_us) {
  if (policy_ != FlushPolicy::kEager) {
    flusher_ = std::thread([this] { FlusherLoop(); });
  }
}

RedoLog::~RedoLog() {
  stop_.store(true, std::memory_order_release);
  if (flusher_.joinable()) {
    flusher_.join();
  }
}

uint64_t RedoLog::Append(uint64_t bytes) {
  std::lock_guard<vprof::Mutex> lock(mu_);
  pending_bytes_ += bytes;
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.appends;
  }
  return next_lsn_.fetch_add(bytes, std::memory_order_acq_rel) + bytes - 1;
}

void RedoLog::WriteAndFlush(uint64_t target_lsn, bool background) {
  // Snapshot and write the pending bytes, then sync. fil_flush is the
  // function whose inherent I/O variance the paper's Table 4 surfaces.
  uint64_t to_write = 0;
  uint64_t batch_end = 0;
  {
    std::lock_guard<vprof::Mutex> lock(mu_);
    to_write = pending_bytes_;
    pending_bytes_ = 0;
    batch_end = next_lsn_.load(std::memory_order_acquire) - 1;
  }
  if (to_write > 0) {
    disk_->Write(((to_write + kLogBlockBytes - 1) / kLogBlockBytes) *
                 kLogBlockBytes);
  }
  written_lsn_.store(batch_end, std::memory_order_release);
  {
    VPROF_FUNC("fil_flush");
    disk_->Fsync();
  }
  flushed_lsn_.store(batch_end, std::memory_order_release);
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    if (background) {
      ++stats_.background_flushes;
    } else {
      ++stats_.leader_flushes;
    }
  }
  (void)target_lsn;
}

void RedoLog::CommitUpTo(uint64_t lsn) {
  VPROF_FUNC("log_write_up_to");
  switch (policy_) {
    case FlushPolicy::kLazyWrite:
      // Nothing on the commit path; the flusher writes and syncs.
      return;
    case FlushPolicy::kLazyFlush: {
      // Write (cheap) on the commit path, defer the fsync.
      uint64_t to_write = 0;
      uint64_t batch_end = 0;
      {
        std::lock_guard<vprof::Mutex> lock(mu_);
        to_write = pending_bytes_;
        pending_bytes_ = 0;
        batch_end = next_lsn_.load(std::memory_order_acquire) - 1;
      }
      if (to_write > 0) {
        disk_->Write(((to_write + kLogBlockBytes - 1) / kLogBlockBytes) *
                     kLogBlockBytes);
        written_lsn_.store(batch_end, std::memory_order_release);
      }
      return;
    }
    case FlushPolicy::kEager:
      break;
  }

  // Eager group commit: one leader flushes per batch; followers wait until
  // their LSN is durable.
  while (flushed_lsn_.load(std::memory_order_acquire) < lsn) {
    bool leader = false;
    {
      std::lock_guard<vprof::Mutex> lock(mu_);
      if (flushed_lsn_.load(std::memory_order_acquire) >= lsn) {
        return;
      }
      if (!flush_in_progress_) {
        flush_in_progress_ = true;
        leader = true;
      }
    }
    if (leader) {
      WriteAndFlush(lsn, /*background=*/false);
      {
        std::lock_guard<vprof::Mutex> lock(mu_);
        flush_in_progress_ = false;
      }
      flushed_cv_.NotifyAll();
    } else {
      {
        std::lock_guard<std::mutex> stats_lock(stats_mu_);
        ++stats_.commit_waits;
      }
      std::lock_guard<vprof::Mutex> lock(mu_);
      if (flush_in_progress_ &&
          flushed_lsn_.load(std::memory_order_acquire) < lsn) {
        flushed_cv_.WaitFor(mu_, 100LL * 1000 * 1000);
      }
    }
  }
}

void RedoLog::FlusherLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    // Sleep in short ticks so shutdown is prompt even with long periods.
    double slept = 0.0;
    while (slept < flusher_period_us_ && !stop_.load(std::memory_order_acquire)) {
      const double tick = std::min(1000.0, flusher_period_us_ - slept);
      simio::SleepUs(tick);
      slept += tick;
    }
    if (stop_.load(std::memory_order_acquire)) {
      return;
    }
    const uint64_t target = next_lsn_.load(std::memory_order_acquire) - 1;
    if (flushed_lsn_.load(std::memory_order_acquire) < target) {
      WriteAndFlush(target, /*background=*/true);
    }
  }
}

RedoLogStats RedoLog::stats() const {
  std::lock_guard<std::mutex> stats_lock(stats_mu_);
  return stats_;
}

}  // namespace minidb
