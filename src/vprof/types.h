// Fundamental types shared by the VProfiler runtime and analysis.
#ifndef SRC_VPROF_TYPES_H_
#define SRC_VPROF_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace vprof {

// Nanoseconds since the start of the current tracing run.
using TimeNs = int64_t;

// Identifier of a semantic interval (transaction, request). 0 means "no
// interval": background work not executed on behalf of any request.
using IntervalId = uint64_t;
inline constexpr IntervalId kNoInterval = 0;

// Application-defined class of a semantic interval (e.g. the transaction
// type), usable to compute per-request-type variance profiles. 0 = untyped.
using IntervalLabel = uint32_t;
inline constexpr IntervalLabel kNoLabel = 0;

// Dense identifier of a registered (instrumentable) function.
using FuncId = uint32_t;
inline constexpr FuncId kInvalidFunc = 0xffffffffu;

// Dense per-run thread identifier.
using ThreadId = int32_t;
inline constexpr ThreadId kNoThread = -1;

// Alignment used to keep per-thread hot state (ThreadState, full-trace
// rings) on private cache lines. 64 bytes covers x86-64 and most ARM parts;
// destructive interference is what matters, so err on the hardware constant
// rather than std::hardware_destructive_interference_size, which GCC warns
// about being ABI-unstable.
inline constexpr size_t kCacheLineSize = 64;

// State of an execution segment (paper Section 3.3.1, segment 5-tuple).
enum class SegmentState : uint8_t {
  kExecuting = 0,  // running application code
  kBlocked = 1,    // blocked on a synchronization object (lock, condvar, I/O)
  kQueueWait = 2,  // waiting to dequeue from an empty task/message queue
};

enum class IntervalEventKind : uint8_t {
  kBegin = 0,
  kEnd = 1,
};

}  // namespace vprof

#endif  // SRC_VPROF_TYPES_H_
