// Failure injection: degrade one component hard and verify the profiler's
// blame follows it. This is the end-to-end sanity property of the whole
// system — whatever we break should become the top-ranked factor.
#include <gtest/gtest.h>

#include "src/minidb/engine.h"
#include "src/minipg/engine.h"
#include "src/vprof/analysis/profiler.h"
#include "src/workload/tpcc.h"

namespace {

double ContributionOf(const vprof::ProfileResult& result,
                      const std::string& label) {
  for (const auto& factor : result.all_factors) {
    if (factor.Label(result.function_names) == label) {
      return factor.contribution;
    }
  }
  return 0.0;
}

TEST(FailureInjectionTest, PathologicalFsyncBlamesFilFlush) {
  // A log device that stalls 20x for a third of its fsyncs: fil_flush (or
  // the log path above it) must dominate the profile even in the regime
  // where lock waits normally win.
  minidb::EngineConfig config = minidb::EngineConfig::MemoryResident();
  config.warehouses = 8;  // low lock contention
  config.log_disk.fsync_spike_prob = 0.33;
  config.log_disk.fsync_spike_scale = 20.0;
  minidb::Engine engine(config);
  vprof::CallGraph graph;
  minidb::Engine::RegisterCallGraph(&graph);
  workload::TpccOptions options;
  options.threads = 2;  // little cross-transaction masking
  options.transactions_per_thread = 200;
  workload::TpccDriver driver(&engine, options);
  driver.Run();

  vprof::Profiler profiler("run_transaction", &graph, [&] { driver.Run(); });
  vprof::ProfileOptions profile_options;
  profile_options.top_k = 5;
  const auto result = profiler.Run(profile_options);

  const double flush = ContributionOf(result, "fil_flush");
  const double log_path = ContributionOf(result, "log_write_up_to");
  EXPECT_GT(std::max(flush, log_path), 0.4)
      << "injected fsync stalls must surface in the log path";
  EXPECT_GT(std::max(flush, log_path),
            ContributionOf(result, "os_event_wait"));
}

TEST(FailureInjectionTest, SlowWalDeviceBlamesTheWalPath) {
  minipg::PgConfig config;
  config.wal_disk.fsync_spike_prob = 0.4;
  config.wal_disk.fsync_spike_scale = 15.0;
  minipg::PgEngine engine(config);
  vprof::CallGraph graph;
  minipg::PgEngine::RegisterCallGraph(&graph);
  workload::TpccOptions options;
  options.threads = 2;
  options.transactions_per_thread = 250;
  workload::TpccDriver driver(nullptr, options);
  const auto run = [&] {
    driver.RunWith(
        [&engine](const minidb::TxnRequest& r) { return engine.Execute(r); },
        8);
  };
  run();
  vprof::Profiler profiler("exec_simple_query", &graph, run);
  const auto result = profiler.Run();
  // The WAL path (flush, its fsync, or the write-lock wait) dominates.
  const double wal = std::max(
      {ContributionOf(result, "XLogFlush"),
       ContributionOf(result, "issue_xlog_fsync"),
       ContributionOf(result, "LWLockAcquireOrWait")});
  EXPECT_GT(wal, 0.5);
  EXPECT_GT(wal, ContributionOf(result, "ExecProcNode"));
}

TEST(FailureInjectionTest, SlowDataDiskBlamesBufferPath) {
  // A pathological data disk in the constrained regime: the buffer path
  // (miss I/O under the pool mutex) must carry nearly all the variance.
  minidb::EngineConfig config = minidb::EngineConfig::MemoryConstrained();
  config.data_disk.read_mu = 5.7;   // ~300us reads
  config.data_disk.read_sigma = 0.8;
  minidb::Engine engine(config);
  vprof::CallGraph graph;
  minidb::Engine::RegisterCallGraph(&graph);
  workload::TpccOptions options;
  options.threads = 2;
  options.transactions_per_thread = 120;
  workload::TpccDriver driver(&engine, options);
  driver.Run();
  vprof::Profiler profiler("run_transaction", &graph, [&] { driver.Run(); });
  const auto result = profiler.Run();
  const double buffer_path =
      std::max(ContributionOf(result, "buf_page_get"),
               ContributionOf(result, "buf_pool_mutex_enter"));
  EXPECT_GT(buffer_path, 0.3);
}

}  // namespace
