// The variance tree (paper Section 3.2.1).
//
// Nodes are dynamic call-tree positions of the instrumented functions (plus
// one "body" pseudo-node per expanded parent for time spent in the parent's
// own code, mirroring bodyA in paper Figure 1). For every semantic interval,
// each node holds the total critical-path-clipped execution time of its
// function at that position; across intervals this yields the node's variance
// and, for sibling pairs, the covariances that complete Equation (2):
//
//   Var(parent) = sum_i Var(child_i) + 2 * sum_{i<j} Cov(child_i, child_j)
//
// The synthetic root (node 0) carries each interval's end-to-end latency, so
// every node's variance can be expressed as a fraction of the overall latency
// variance the developer cares about.
#ifndef SRC_VPROF_ANALYSIS_VARIANCE_TREE_H_
#define SRC_VPROF_ANALYSIS_VARIANCE_TREE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/vprof/analysis/critical_path.h"
#include "src/vprof/trace.h"
#include "src/vprof/types.h"

namespace vprof {

using NodeId = int32_t;
inline constexpr NodeId kRootNode = 0;

struct TreeNode {
  NodeId parent = -1;
  FuncId func = kInvalidFunc;  // kInvalidFunc only for the synthetic root
  bool is_body = false;
  int depth = 0;  // root is 0
  std::vector<NodeId> children;
};

// Covariance of a pair of sibling nodes under one expanded parent.
struct SiblingCovariance {
  NodeId parent = -1;
  NodeId a = -1;
  NodeId b = -1;
  double covariance = 0.0;
};

// Structure-plus-statistics view of a variance tree, decoupling the factor
// aggregation (factor_selection.h) from how the tree was computed: the batch
// VarianceAnalysis below and the service's streaming OnlineVarianceTree both
// project into this shape. Spans reference the producer's storage and are
// valid only while it is alive and unmodified.
struct VarianceTreeView {
  std::span<const TreeNode> nodes;
  std::span<const double> node_variance;  // parallel to nodes
  std::span<const SiblingCovariance> covariances;
  double overall_variance = 0.0;
};

// Builds the variance tree for one tracing run: runs the critical-path
// analysis, attributes clipped function time per interval to call-tree nodes,
// and computes per-node variances and sibling covariances.
class VarianceAnalysis {
 public:
  explicit VarianceAnalysis(const Trace& trace,
                            const CriticalPathOptions& options = {});

  // --- structure --------------------------------------------------------
  size_t node_count() const { return nodes_.size(); }
  const TreeNode& node(NodeId id) const { return nodes_[static_cast<size_t>(id)]; }
  // Human-readable node label, e.g. "fil_flush" or "trx_commit(body)".
  std::string NodeLabel(NodeId id) const;

  // --- per-node statistics ------------------------------------------------
  size_t interval_count() const { return interval_count_; }
  std::span<const double> Series(NodeId id) const;
  double NodeMean(NodeId id) const;
  double NodeVariance(NodeId id) const;
  // Fraction of the overall latency variance (can exceed 1 transiently for
  // strongly anti-correlated siblings).
  double NodeContribution(NodeId id) const;

  const std::vector<SiblingCovariance>& covariances() const { return covariances_; }

  double overall_mean() const { return NodeMean(kRootNode); }
  double overall_variance() const { return NodeVariance(kRootNode); }
  std::span<const double> latencies() const { return Series(kRootNode); }

  // Projection used by factor selection; valid while this analysis lives.
  VarianceTreeView View() const {
    return VarianceTreeView{nodes_, node_variance_, covariances_,
                            overall_variance()};
  }

  // Aggregate critical-path wait composition (ns, summed over intervals).
  double total_queue_wait_ns() const { return total_queue_wait_ns_; }
  double total_blocked_wait_ns() const { return total_blocked_wait_ns_; }
  double total_descheduled_ns() const { return total_descheduled_ns_; }

  // --- Table 3 statistics -------------------------------------------------
  // Height: deepest node depth. Breadth: square of the widest expanded
  // node's child count — the size of the largest covariance matrix the tree
  // must reason about (the quantity that dominates the paper's Table 3).
  int TreeHeight() const;
  uint64_t TreeBreadth() const;

 private:
  NodeId Intern(NodeId parent, FuncId func, bool is_body);
  void AttributeWindows(const TraceIndex& index,
                        const std::vector<IntervalBreakdown>& breakdowns);
  // Turns per-interval critical-path queue wait into a named leaf node under
  // the root (CriticalPathOptions::queue_wait_factor); no-op for the empty
  // name or an unregistered one.
  void MaterializeQueueWait(const std::string& factor_name,
                            const std::vector<IntervalBreakdown>& breakdowns);
  void AddBodiesAndStats();

  std::vector<TreeNode> nodes_;
  std::vector<std::vector<double>> node_times_;  // [node][interval]
  std::vector<SiblingCovariance> covariances_;
  std::vector<double> node_variance_;
  std::vector<double> node_mean_;
  size_t interval_count_ = 0;
  double total_queue_wait_ns_ = 0.0;
  double total_blocked_wait_ns_ = 0.0;
  double total_descheduled_ns_ = 0.0;
  std::vector<std::string> function_names_;
};

}  // namespace vprof

#endif  // SRC_VPROF_ANALYSIS_VARIANCE_TREE_H_
