// Export a vprof::Trace to the Chrome trace-event JSON format, viewable in
// chrome://tracing or Perfetto. Instrumented invocations become duration
// ("X") events per thread; segments become colored slices on a state track;
// semantic intervals become flow arrows from begin to end.
#ifndef SRC_VPROF_ANALYSIS_CHROME_TRACE_H_
#define SRC_VPROF_ANALYSIS_CHROME_TRACE_H_

#include <string>

#include "src/vprof/trace.h"

namespace vprof {

struct ChromeTraceOptions {
  bool include_segments = true;   // emit the per-thread segment state track
  bool include_intervals = true;  // emit interval begin/end instant events
};

// Renders the trace as a Chrome trace-event JSON string.
std::string ToChromeTraceJson(const Trace& trace,
                              const ChromeTraceOptions& options = {});

// Writes the JSON to a file; returns false on I/O error.
bool WriteChromeTrace(const Trace& trace, const std::string& path,
                      const ChromeTraceOptions& options = {});

}  // namespace vprof

#endif  // SRC_VPROF_ANALYSIS_CHROME_TRACE_H_
