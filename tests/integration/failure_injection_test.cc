// Failure injection: degrade one component hard and verify the profiler's
// blame follows it. This is the end-to-end sanity property of the whole
// system — whatever we break should become the top-ranked factor.
//
// All workload seeds are pinned so the suite replays the same request
// sequence on every run; the failpoint-based tests use per-test fault
// scopes so no armed failpoint can leak between tests.
#include <array>
#include <numeric>

#include <gtest/gtest.h>

#include "src/fault/failpoint.h"
#include "src/httpd/server.h"
#include "src/minidb/engine.h"
#include "src/minipg/engine.h"
#include "src/vprof/analysis/profiler.h"
#include "src/workload/ab.h"
#include "src/workload/tpcc.h"

namespace {

// Shared teardown: no failpoint survives a test, pass or fail.
class FailpointGuard : public ::testing::Test {
 protected:
  void SetUp() override { fault::DeactivateAll(); }
  void TearDown() override {
    fault::DeactivateAll();
    fault::ResetCounters();
  }
};
using FailureInjectionFaultTest = FailpointGuard;

double ContributionOf(const vprof::ProfileResult& result,
                      const std::string& label) {
  for (const auto& factor : result.all_factors) {
    if (factor.Label(result.function_names) == label) {
      return factor.contribution;
    }
  }
  return 0.0;
}

TEST(FailureInjectionTest, PathologicalFsyncBlamesFilFlush) {
  // A log device that stalls 20x for a third of its fsyncs: fil_flush (or
  // the log path above it) must dominate the profile even in the regime
  // where lock waits normally win.
  minidb::EngineConfig config = minidb::EngineConfig::MemoryResident();
  config.warehouses = 8;  // low lock contention
  config.log_disk.fsync_spike_prob = 0.33;
  config.log_disk.fsync_spike_scale = 20.0;
  minidb::Engine engine(config);
  vprof::CallGraph graph;
  minidb::Engine::RegisterCallGraph(&graph);
  workload::TpccOptions options;
  options.threads = 2;  // little cross-transaction masking
  options.transactions_per_thread = 200;
  options.seed = 101;
  workload::TpccDriver driver(&engine, options);
  driver.Run();

  vprof::Profiler profiler("run_transaction", &graph, [&] { driver.Run(); });
  vprof::ProfileOptions profile_options;
  profile_options.top_k = 5;
  const auto result = profiler.Run(profile_options);

  const double flush = ContributionOf(result, "fil_flush");
  const double log_path = ContributionOf(result, "log_write_up_to");
  EXPECT_GT(std::max(flush, log_path), 0.4)
      << "injected fsync stalls must surface in the log path";
  EXPECT_GT(std::max(flush, log_path),
            ContributionOf(result, "os_event_wait"));
}

TEST(FailureInjectionTest, SlowWalDeviceBlamesTheWalPath) {
  minipg::PgConfig config;
  config.wal_disk.fsync_spike_prob = 0.4;
  config.wal_disk.fsync_spike_scale = 15.0;
  minipg::PgEngine engine(config);
  vprof::CallGraph graph;
  minipg::PgEngine::RegisterCallGraph(&graph);
  workload::TpccOptions options;
  options.threads = 2;
  options.transactions_per_thread = 250;
  options.seed = 102;
  workload::TpccDriver driver(nullptr, options);
  const auto run = [&] {
    driver.RunWith(
        [&engine](const minidb::TxnRequest& r) { return engine.Execute(r); },
        8);
  };
  run();
  vprof::Profiler profiler("exec_simple_query", &graph, run);
  const auto result = profiler.Run();
  // The WAL path (flush, its fsync, or the write-lock wait) dominates.
  const double wal = std::max(
      {ContributionOf(result, "XLogFlush"),
       ContributionOf(result, "issue_xlog_fsync"),
       ContributionOf(result, "LWLockAcquireOrWait")});
  EXPECT_GT(wal, 0.5);
  EXPECT_GT(wal, ContributionOf(result, "ExecProcNode"));
}

TEST(FailureInjectionTest, SlowDataDiskBlamesBufferPath) {
  // A pathological data disk in the constrained regime: the buffer path
  // (miss I/O under the pool mutex) must carry nearly all the variance.
  minidb::EngineConfig config = minidb::EngineConfig::MemoryConstrained();
  config.data_disk.read_mu = 5.7;   // ~300us reads
  config.data_disk.read_sigma = 0.8;
  minidb::Engine engine(config);
  vprof::CallGraph graph;
  minidb::Engine::RegisterCallGraph(&graph);
  workload::TpccOptions options;
  options.threads = 2;
  options.transactions_per_thread = 120;
  options.seed = 103;
  workload::TpccDriver driver(&engine, options);
  driver.Run();
  vprof::Profiler profiler("run_transaction", &graph, [&] { driver.Run(); });
  const auto result = profiler.Run();
  const double buffer_path =
      std::max(ContributionOf(result, "buf_page_get"),
               ContributionOf(result, "buf_pool_mutex_enter"));
  EXPECT_GT(buffer_path, 0.3);
}

// Satellite: everything downstream of the pinned seeds — request mix, disk
// latency draws, failpoint probability draws — is deterministic, so two
// identical single-threaded runs must produce identical disk op counts.
TEST_F(FailureInjectionFaultTest, SameSeedRunsAreDeterministic) {
  const auto run_counts = [] {
    minidb::EngineConfig config = minidb::EngineConfig::MemoryResident();
    config.warehouses = 2;
    config.log_disk.fault_scope = "fi_determinism";
    config.log_disk.error_latency_us = 5.0;
    minidb::Engine engine(config);
    workload::TpccOptions options;
    options.threads = 1;  // no scheduling nondeterminism
    options.transactions_per_thread = 60;
    options.seed = 4242;
    workload::TpccDriver driver(&engine, options);
    fault::ScopedFailpoint errors("fi_determinism/write_error",
                                  fault::Trigger::Probability(0.2, 99));
    const workload::TpccResult result = driver.Run();
    return std::array<uint64_t, 7>{
        engine.data_disk().reads(),  engine.data_disk().writes(),
        engine.log_disk().writes(),  engine.log_disk().fsyncs(),
        result.committed,            result.aborted,
        result.retries};
  };
  const auto first = run_counts();
  fault::ResetCounters();
  const auto second = run_counts();
  EXPECT_EQ(first, second);
}

// Fault class 1 — disk error storm: a quarter of the log device's writes
// fail (slowly), commits abort with retryable I/O errors and are retried.
// The profiler's top-ranked factor must be the log path. (Write errors, not
// fsync errors: a failed fsync wedges the log permanently — fsyncgate.)
TEST_F(FailureInjectionFaultTest, LogErrorStormTopFactorIsLogPath) {
  minidb::EngineConfig config = minidb::EngineConfig::MemoryResident();
  config.warehouses = 8;  // low lock contention
  config.log_disk.fault_scope = "fi_error_storm";
  config.log_disk.error_latency_us = 3000.0;  // a failed write is slow
  minidb::Engine engine(config);
  vprof::CallGraph graph;
  minidb::Engine::RegisterCallGraph(&graph);
  workload::TpccOptions options;
  options.threads = 2;
  options.transactions_per_thread = 150;
  options.seed = 104;
  workload::TpccDriver driver(&engine, options);
  fault::ScopedFailpoint storm("fi_error_storm/write_error",
                               fault::Trigger::Probability(0.25, 11));
  driver.Run();  // warm-up
  vprof::Profiler profiler("run_transaction", &graph, [&] { driver.Run(); });
  const auto result = profiler.Run();
  ASSERT_FALSE(result.all_factors.empty());
  const std::string top = result.all_factors[0].Label(result.function_names);
  EXPECT_TRUE(top.find("fil_flush") != std::string::npos ||
              top.find("log_write_up_to") != std::string::npos)
      << "top factor was " << top;
  EXPECT_GT(engine.log_disk().fault_stats().write_errors, 0u);
}

// Fault class 2 — log-device stall: the WAL disk occasionally freezes for
// 12 ms (firmware hiccup). The top-ranked factor must be the WAL path.
TEST_F(FailureInjectionFaultTest, WalDeviceStallTopFactorIsWalPath) {
  minipg::PgConfig config;
  config.wal_disk.fault_scope = "fi_wal_stall";
  config.wal_disk.stall_us = 12000.0;
  minipg::PgEngine engine(config);
  vprof::CallGraph graph;
  minipg::PgEngine::RegisterCallGraph(&graph);
  workload::TpccOptions options;
  options.threads = 2;
  options.transactions_per_thread = 150;
  options.seed = 105;
  workload::TpccDriver driver(nullptr, options);
  const auto run = [&] {
    driver.RunWith(
        [&engine](const minidb::TxnRequest& r) { return engine.Execute(r); },
        8);
  };
  // Wal unit disks live in the "<scope>.<unit>" namespace.
  fault::ScopedFailpoint stall("fi_wal_stall.0/stall",
                               fault::Trigger::Probability(0.2, 17));
  run();  // warm-up
  vprof::Profiler profiler("exec_simple_query", &graph, run);
  const auto result = profiler.Run();
  ASSERT_FALSE(result.all_factors.empty());
  const std::string top = result.all_factors[0].Label(result.function_names);
  EXPECT_TRUE(top.find("XLogFlush") != std::string::npos ||
              top.find("issue_xlog_fsync") != std::string::npos ||
              top.find("LWLockAcquireOrWait") != std::string::npos)
      << "top factor was " << top;
}

// Fault class 3 — worker-pool saturation: far more clients than workers.
// The latency is queueing, not execution: the analysis must attribute the
// bulk of the interval to queue wait, and the bounded queue must shed the
// overload with 503s instead of letting the backlog grow without bound.
TEST_F(FailureInjectionFaultTest, WorkerSaturationIsQueueWaitAndSheds) {
  httpd::HttpdConfig config;
  config.workers = 1;
  // Must sit below the client count: 8 closed-loop clients can have at most
  // 8 requests outstanding, so a deeper queue would never reject.
  config.max_queue_depth = 4;
  // A one-file cache over four files keeps the miss rate high: most requests
  // pay a ~55us disk read, so the lone worker is always behind the clients.
  config.page_cache_files = 1;
  config.file_disk.read_mu = 4.0;
  config.file_disk.serialize_access = false;
  httpd::HttpServer server(config);
  vprof::CallGraph graph;
  httpd::HttpServer::RegisterCallGraph(&graph);
  workload::AbOptions options;
  options.clients = 8;
  options.requests_per_client = 400;
  options.seed = 106;
  workload::AbDriver driver(&server, options);
  driver.Run();  // warm-up
  vprof::Profiler profiler("process_request", &graph, [&] { driver.Run(); });
  const auto result = profiler.Run();
  ASSERT_NE(result.analysis, nullptr);
  const double total_latency_ns = std::accumulate(
      result.latencies_ns.begin(), result.latencies_ns.end(), 0.0);
  ASSERT_GT(total_latency_ns, 0.0);
  // Most of every interval is spent queued behind the saturated pool.
  EXPECT_GT(result.analysis->total_queue_wait_ns(), 0.5 * total_latency_ns);
  // And the server visibly shed part of the overload.
  EXPECT_GT(server.stats().requests_rejected, 0u);
  server.Shutdown();
}

}  // namespace
