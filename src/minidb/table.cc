#include "src/minidb/table.h"

namespace minidb {

Table::Table(std::string name, uint32_t table_id, int rows_per_page,
             BufferPool* pool)
    : name_(std::move(name)),
      table_id_(table_id),
      rows_per_page_(rows_per_page),
      pool_(pool) {}

uint64_t Table::ChecksumWork(const Row& row) {
  // A few passes over the payload: O(100ns..1us) of CPU per access, standing
  // in for predicate evaluation / tuple materialization.
  uint64_t h = 1469598103934665603ull;
  for (int pass = 0; pass < 8; ++pass) {
    for (uint8_t b : row.payload) {
      h = (h ^ b) * 1099511628211ull;
    }
  }
  return h;
}

void Table::LoadRow(int64_t key) {
  std::lock_guard<std::mutex> lock(rows_mu_);
  Row row;
  row.key = key;
  for (size_t i = 0; i < row.payload.size(); ++i) {
    row.payload[i] = static_cast<uint8_t>((key + static_cast<int64_t>(i)) & 0xff);
  }
  rows_.emplace(key, row);
  std::lock_guard<vprof::Mutex> latch(index_latch_);
  index_.Insert(key, static_cast<uint64_t>(key));
}

bool Table::ReadRow(int64_t key, Row* out) {
  pool_->GetPage(PageOf(key), /*for_write=*/false);
  std::lock_guard<std::mutex> lock(rows_mu_);
  auto it = rows_.find(key);
  if (it == rows_.end()) {
    return false;
  }
  // Consume the checksum so the work is not optimized away.
  it->second.version += (ChecksumWork(it->second) == 0) ? 1 : 0;
  if (out != nullptr) {
    *out = it->second;
  }
  return true;
}

bool Table::UpdateRow(int64_t key) {
  pool_->GetPage(PageOf(key), /*for_write=*/true);
  std::lock_guard<std::mutex> lock(rows_mu_);
  auto it = rows_.find(key);
  if (it == rows_.end()) {
    return false;
  }
  Row& row = it->second;
  ++row.version;
  row.payload[static_cast<size_t>(row.version % row.payload.size())] ^=
      static_cast<uint8_t>(ChecksumWork(row));
  return true;
}

bool Table::InsertRow(int64_t key) {
  pool_->GetPage(PageOf(key), /*for_write=*/true);
  {
    std::lock_guard<std::mutex> lock(rows_mu_);
    Row row;
    row.key = key;
    for (size_t i = 0; i < row.payload.size(); ++i) {
      row.payload[i] = static_cast<uint8_t>((key * 31 + static_cast<int64_t>(i)) & 0xff);
    }
    if (!rows_.emplace(key, row).second) {
      return false;
    }
  }
  std::lock_guard<vprof::Mutex> latch(index_latch_);
  return index_.Insert(key, static_cast<uint64_t>(key));
}

int64_t Table::ApplyDelta(int64_t key, int64_t delta) {
  std::lock_guard<std::mutex> lock(rows_mu_);
  auto it = rows_.find(key);
  if (it == rows_.end()) {
    return 0;
  }
  it->second.balance += delta;
  return delta;
}

int64_t Table::SumBalances() const {
  std::lock_guard<std::mutex> lock(rows_mu_);
  int64_t total = 0;
  for (const auto& [key, row] : rows_) {
    total += row.balance;
  }
  return total;
}

uint64_t Table::StateDigest() const {
  std::lock_guard<std::mutex> lock(rows_mu_);
  // XOR of per-row FNV hashes: order-independent, so the unordered map's
  // iteration order cannot perturb the digest.
  uint64_t digest = 0;
  for (const auto& [key, row] : rows_) {
    uint64_t h = 1469598103934665603ull;
    h = (h ^ static_cast<uint64_t>(key)) * 1099511628211ull;
    h = (h ^ row.version) * 1099511628211ull;
    h = (h ^ static_cast<uint64_t>(row.balance)) * 1099511628211ull;
    digest ^= h;
  }
  return digest;
}

size_t Table::row_count() const {
  std::lock_guard<std::mutex> lock(rows_mu_);
  return rows_.size();
}

}  // namespace minidb
