# Empty compiler generated dependencies file for vprof_sync_test.
# This may be replaced when dependencies are built.
