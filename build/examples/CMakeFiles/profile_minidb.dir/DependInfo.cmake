
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/profile_minidb.cpp" "examples/CMakeFiles/profile_minidb.dir/profile_minidb.cpp.o" "gcc" "examples/CMakeFiles/profile_minidb.dir/profile_minidb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vprof/CMakeFiles/vprof.dir/DependInfo.cmake"
  "/root/repo/build/src/statkit/CMakeFiles/statkit.dir/DependInfo.cmake"
  "/root/repo/build/src/simio/CMakeFiles/simio.dir/DependInfo.cmake"
  "/root/repo/build/src/minidb/CMakeFiles/minidb.dir/DependInfo.cmake"
  "/root/repo/build/src/minipg/CMakeFiles/minipg.dir/DependInfo.cmake"
  "/root/repo/build/src/httpd/CMakeFiles/httpd.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
