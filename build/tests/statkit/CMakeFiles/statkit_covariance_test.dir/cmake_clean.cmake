file(REMOVE_RECURSE
  "CMakeFiles/statkit_covariance_test.dir/covariance_test.cc.o"
  "CMakeFiles/statkit_covariance_test.dir/covariance_test.cc.o.d"
  "statkit_covariance_test"
  "statkit_covariance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statkit_covariance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
