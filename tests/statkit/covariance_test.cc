#include "src/statkit/covariance.h"

#include <array>
#include <vector>

#include <gtest/gtest.h>

#include "src/statkit/rng.h"
#include "src/statkit/welford.h"

namespace statkit {
namespace {

TEST(CovarianceMatrixTest, DiagonalMatchesVariance) {
  Rng rng(21);
  CovarianceMatrix mat(3);
  StreamingMoments m0;
  StreamingMoments m2;
  for (int i = 0; i < 2000; ++i) {
    const std::array<double, 3> x = {rng.NextDouble(), rng.NextDouble() * 2.0,
                                     rng.NextDouble() * 5.0 - 1.0};
    mat.Add(x);
    m0.Add(x[0]);
    m2.Add(x[2]);
  }
  EXPECT_NEAR(mat.Variance(0), m0.variance(), 1e-9);
  EXPECT_NEAR(mat.Variance(2), m2.variance(), 1e-9);
}

TEST(CovarianceMatrixTest, Symmetry) {
  Rng rng(22);
  CovarianceMatrix mat(4);
  for (int i = 0; i < 500; ++i) {
    std::array<double, 4> x;
    for (double& v : x) {
      v = rng.NextDouble();
    }
    mat.Add(x);
  }
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(mat.Covariance(i, j), mat.Covariance(j, i));
    }
  }
}

TEST(CovarianceMatrixTest, OffDiagonalMatchesPairwise) {
  Rng rng(23);
  CovarianceMatrix mat(2);
  StreamingCovariance pair;
  for (int i = 0; i < 3000; ++i) {
    const double x = rng.NextDouble();
    const double y = 0.7 * x + 0.3 * rng.NextDouble();
    mat.Add(std::array<double, 2>{x, y});
    pair.Add(x, y);
  }
  EXPECT_NEAR(mat.Covariance(0, 1), pair.covariance(), 1e-9);
}

// The decomposition identity of paper Equation (2): the variance of the sum
// equals the sum of variances plus twice the pairwise covariances, for any
// number of components.
class VarianceOfSumProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(VarianceOfSumProperty, EquationTwoHolds) {
  const size_t n = GetParam();
  Rng rng(100 + n);
  CovarianceMatrix mat(n);
  StreamingMoments sum_moments;
  std::vector<double> x(n);
  for (int i = 0; i < 2000; ++i) {
    double common = rng.NextDouble();  // induces cross-correlation
    double total = 0.0;
    for (size_t j = 0; j < n; ++j) {
      x[j] = rng.NextDouble() + (j % 2 == 0 ? common : -common);
      total += x[j];
    }
    mat.Add(x);
    sum_moments.Add(total);
  }
  EXPECT_NEAR(mat.VarianceOfSum(), sum_moments.variance(),
              1e-7 * (1.0 + sum_moments.variance()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, VarianceOfSumProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 16));

}  // namespace
}  // namespace statkit
