// Reproduces paper Table 7: key sources of request latency variance in
// Apache HTTPD (httpd), ApacheBench-style workload. The distinguishing
// feature of this case study is that the top factors are *covariances* of
// function pairs sharing the allocator's memory-pressure root cause.
//
// Paper rows:
//   (ap_pass_brigade, apr_file_open)      22%
//   (ap_pass_brigade, basic_http_header)  15.5%
//   apr_bucket_alloc                      11.8%
#include "bench/common.h"

int main() {
  bench::PrintHeader("Table 7 — httpd (Apache) variance sources, ApacheBench");

  httpd::HttpServer server(bench::ApacheConfig(/*bulk=*/false));
  vprof::CallGraph graph;
  httpd::HttpServer::RegisterCallGraph(&graph);

  // Clients match workers so queueing delay does not drown the processing
  // path (the paper's interval is the server-side request latency).
  workload::AbOptions options;
  options.clients = 4;
  options.requests_per_client = 2000;  // average over many pressure windows
  workload::AbDriver driver(&server, options);
  driver.Run();  // warm-up

  vprof::Profiler profiler("process_request", &graph, [&] { driver.Run(); });
  vprof::ProfileOptions profile_options;
  profile_options.top_k = 6;
  const vprof::ProfileResult result = profiler.Run(profile_options);

  bench::PrintTopFactors(result, 10);
  std::printf("\n  apr_bucket_alloc by call site:\n");
  bench::PrintFunctionCallSites(result, "apr_bucket_alloc");
  std::printf("\n  paper: cov(ap_pass_brigade, apr_file_open) 22%%, "
              "cov(ap_pass_brigade, basic_http_header) 15.5%%, "
              "apr_bucket_alloc 11.8%%\n");
  server.Shutdown();
  return 0;
}
