#include "src/vprof/analysis/variance_tree.h"

#include <algorithm>
#include <unordered_map>

#include "src/statkit/covariance.h"
#include "src/statkit/welford.h"

namespace vprof {

namespace {

// Per-thread helper that maps invocation records to tree nodes and finds
// invocations overlapping a time window.
struct ThreadView {
  const ThreadTrace* thread = nullptr;
  std::vector<NodeId> invocation_nodes;  // parallel to thread->invocations
};

// True when any invocation on the thread overlaps [lo, hi]. Walks backwards
// from the last invocation starting before `hi`; a completed top-level
// invocation entirely before the window bounds the scan.
bool AnyInvocationCovers(const ThreadTrace& thread, TimeNs lo, TimeNs hi) {
  const std::vector<Invocation>& invocations = thread.invocations;
  auto upper = std::upper_bound(
      invocations.begin(), invocations.end(), hi,
      [](TimeNs value, const Invocation& inv) { return value <= inv.start; });
  for (auto rit = std::make_reverse_iterator(upper); rit != invocations.rend();
       ++rit) {
    if (rit->end > lo) {
      return true;
    }
    if (rit->parent < 0) {
      break;
    }
  }
  return false;
}

}  // namespace

VarianceAnalysis::VarianceAnalysis(const Trace& trace,
                                   const CriticalPathOptions& options) {
  function_names_ = trace.function_names;
  nodes_.push_back(TreeNode{});  // synthetic root
  node_times_.emplace_back();

  TraceIndex index(trace);
  CriticalPathOptions path_options = options;
  if (!path_options.has_coverage) {
    path_options.has_coverage = [&index](ThreadId tid, TimeNs lo, TimeNs hi) {
      const ThreadTrace* thread = index.Thread(tid);
      return thread != nullptr && AnyInvocationCovers(*thread, lo, hi);
    };
  }
  const std::vector<IntervalBreakdown> breakdowns =
      BuildBreakdowns(index, path_options);
  interval_count_ = breakdowns.size();
  for (auto& series : node_times_) {
    series.assign(interval_count_, 0.0);
  }
  AttributeWindows(index, breakdowns);
  MaterializeQueueWait(options.queue_wait_factor, breakdowns);
  AddBodiesAndStats();
}

void VarianceAnalysis::MaterializeQueueWait(
    const std::string& factor_name,
    const std::vector<IntervalBreakdown>& breakdowns) {
  if (factor_name.empty()) {
    return;
  }
  FuncId func = kInvalidFunc;
  for (size_t i = 0; i < function_names_.size(); ++i) {
    if (function_names_[i] == factor_name) {
      func = static_cast<FuncId>(i);
      break;
    }
  }
  if (func == kInvalidFunc) {
    return;  // name never registered during this run
  }
  const NodeId node = Intern(kRootNode, func, /*is_body=*/false);
  std::vector<double>& series = node_times_[static_cast<size_t>(node)];
  for (size_t i = 0; i < breakdowns.size(); ++i) {
    // += rather than =: tolerate a (pathological) genuine invocation of the
    // pseudo-function at top level sharing the node.
    series[i] += breakdowns[i].queue_wait_ns;
  }
}

NodeId VarianceAnalysis::Intern(NodeId parent, FuncId func, bool is_body) {
  const TreeNode& parent_node = nodes_[static_cast<size_t>(parent)];
  for (NodeId child : parent_node.children) {
    const TreeNode& n = nodes_[static_cast<size_t>(child)];
    if (n.func == func && n.is_body == is_body) {
      return child;
    }
  }
  const NodeId id = static_cast<NodeId>(nodes_.size());
  TreeNode node;
  node.parent = parent;
  node.func = func;
  node.is_body = is_body;
  node.depth = nodes_[static_cast<size_t>(parent)].depth + 1;
  nodes_.push_back(node);
  nodes_[static_cast<size_t>(parent)].children.push_back(id);
  node_times_.emplace_back(interval_count_, 0.0);
  return id;
}

void VarianceAnalysis::AttributeWindows(
    const TraceIndex& index, const std::vector<IntervalBreakdown>& breakdowns) {
  const Trace& trace = index.trace();

  // Precompute, per thread, the tree node of every recorded invocation.
  // Parents precede children in the record order, so one forward pass works.
  std::vector<ThreadView> views(trace.threads.size());
  for (size_t t = 0; t < trace.threads.size(); ++t) {
    const ThreadTrace& thread = trace.threads[t];
    views[t].thread = &thread;
    views[t].invocation_nodes.resize(thread.invocations.size());
    for (size_t i = 0; i < thread.invocations.size(); ++i) {
      const Invocation& inv = thread.invocations[i];
      const NodeId parent_node =
          inv.parent >= 0 ? views[t].invocation_nodes[static_cast<size_t>(inv.parent)]
                          : kRootNode;
      views[t].invocation_nodes[i] = Intern(parent_node, inv.func, /*is_body=*/false);
    }
  }

  // Map tid -> view.
  std::unordered_map<ThreadId, ThreadView*> by_tid;
  for (ThreadView& view : views) {
    by_tid[view.thread->tid] = &view;
  }

  for (size_t interval_idx = 0; interval_idx < breakdowns.size(); ++interval_idx) {
    const IntervalBreakdown& b = breakdowns[interval_idx];
    node_times_[kRootNode][interval_idx] = b.latency_ns();
    total_queue_wait_ns_ += b.queue_wait_ns;
    total_blocked_wait_ns_ += b.blocked_wait_ns;
    total_descheduled_ns_ += b.descheduled_ns;

    for (const PathWindow& window : b.windows) {
      auto it = by_tid.find(window.tid);
      if (it == by_tid.end()) {
        continue;
      }
      const ThreadView& view = *it->second;
      const std::vector<Invocation>& invocations = view.thread->invocations;
      if (invocations.empty()) {
        continue;
      }
      // Last invocation starting before the window's end, then walk
      // backwards. Stop at a completed top-level invocation entirely before
      // the window: everything earlier also ends before it.
      auto upper = std::upper_bound(
          invocations.begin(), invocations.end(), window.hi,
          [](TimeNs value, const Invocation& inv) { return value <= inv.start; });
      for (auto rit = std::make_reverse_iterator(upper);
           rit != invocations.rend(); ++rit) {
        const Invocation& inv = *rit;
        if (inv.end <= window.lo) {
          if (inv.parent < 0) {
            break;
          }
          continue;
        }
        const TimeNs lo = std::max(inv.start, window.lo);
        const TimeNs hi = std::min(inv.end, window.hi);
        if (hi > lo) {
          const size_t record_idx =
              static_cast<size_t>(&inv - invocations.data());
          const NodeId node = view.invocation_nodes[record_idx];
          node_times_[static_cast<size_t>(node)][interval_idx] +=
              static_cast<double>(hi - lo);
        }
      }
    }
  }
}

void VarianceAnalysis::AddBodiesAndStats() {
  // Add a body pseudo-node under every node that has children (including the
  // synthetic root, whose body captures critical-path time outside any
  // instrumented function: waits, queueing, uninstrumented code).
  const size_t original_count = nodes_.size();
  for (size_t id = 0; id < original_count; ++id) {
    if (nodes_[id].children.empty()) {
      continue;
    }
    const NodeId body = Intern(static_cast<NodeId>(id),
                               nodes_[id].func, /*is_body=*/true);
    std::vector<double>& body_series = node_times_[static_cast<size_t>(body)];
    const std::vector<double>& self_series = node_times_[id];
    for (size_t i = 0; i < interval_count_; ++i) {
      double children_sum = 0.0;
      for (NodeId child : nodes_[id].children) {
        if (child != body) {
          children_sum += node_times_[static_cast<size_t>(child)][i];
        }
      }
      body_series[i] = self_series[i] - children_sum;
    }
  }

  // Per-node variance and mean.
  node_variance_.resize(nodes_.size());
  node_mean_.resize(nodes_.size());
  for (size_t id = 0; id < nodes_.size(); ++id) {
    statkit::StreamingMoments m;
    for (double x : node_times_[id]) {
      m.Add(x);
    }
    node_variance_[id] = m.variance();
    node_mean_[id] = m.mean();
  }

  // Sibling covariances per expanded parent.
  for (size_t id = 0; id < nodes_.size(); ++id) {
    const std::vector<NodeId>& kids = nodes_[id].children;
    for (size_t a = 0; a < kids.size(); ++a) {
      for (size_t b = a + 1; b < kids.size(); ++b) {
        statkit::StreamingCovariance cov;
        const auto& sa = node_times_[static_cast<size_t>(kids[a])];
        const auto& sb = node_times_[static_cast<size_t>(kids[b])];
        for (size_t i = 0; i < interval_count_; ++i) {
          cov.Add(sa[i], sb[i]);
        }
        covariances_.push_back(SiblingCovariance{
            static_cast<NodeId>(id), kids[a], kids[b], cov.covariance()});
      }
    }
  }
}

std::string VarianceAnalysis::NodeLabel(NodeId id) const {
  const TreeNode& n = nodes_[static_cast<size_t>(id)];
  if (n.func == kInvalidFunc) {
    return n.is_body ? "(other)" : "(interval)";
  }
  const std::string& name = n.func < function_names_.size()
                                ? function_names_[n.func]
                                : std::string("?");
  return n.is_body ? name + "(body)" : name;
}

std::span<const double> VarianceAnalysis::Series(NodeId id) const {
  return node_times_[static_cast<size_t>(id)];
}

double VarianceAnalysis::NodeMean(NodeId id) const {
  return node_mean_[static_cast<size_t>(id)];
}

double VarianceAnalysis::NodeVariance(NodeId id) const {
  return node_variance_[static_cast<size_t>(id)];
}

double VarianceAnalysis::NodeContribution(NodeId id) const {
  const double overall = overall_variance();
  return overall > 0.0 ? NodeVariance(id) / overall : 0.0;
}

int VarianceAnalysis::TreeHeight() const {
  int height = 0;
  for (const TreeNode& n : nodes_) {
    height = std::max(height, n.depth);
  }
  return height;
}

uint64_t VarianceAnalysis::TreeBreadth() const {
  uint64_t widest = 0;
  for (const TreeNode& n : nodes_) {
    widest = std::max(widest, static_cast<uint64_t>(n.children.size()));
  }
  return widest * widest;
}

}  // namespace vprof
