#include "src/dist/tier.h"

#include <unordered_map>

namespace dist {

void SpanLog::AddClient(const net::ClientSpanRecord& span) {
  std::lock_guard<std::mutex> lock(mu_);
  client_.push_back(span);
}

void SpanLog::AddServer(const net::ServerSpanRecord& span) {
  std::lock_guard<std::mutex> lock(mu_);
  server_.push_back(span);
}

std::vector<net::ClientSpanRecord> SpanLog::ClientSpans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return client_;
}

std::vector<net::ServerSpanRecord> SpanLog::ServerSpans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return server_;
}

void SpanLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  client_.clear();
  server_.clear();
}

std::function<void(const net::ServerSpanRecord&)> SpanLog::ServerSink() {
  return [this](const net::ServerSpanRecord& span) { AddServer(span); };
}

std::function<void(const net::ClientSpanRecord&)> SpanLog::ClientSink() {
  return [this](const net::ClientSpanRecord& span) { AddClient(span); };
}

std::vector<vprof::Trace> SplitByTids(
    const vprof::Trace& trace,
    const std::vector<std::vector<vprof::ThreadId>>& rosters,
    size_t default_index) {
  std::vector<vprof::Trace> out(rosters.size());
  for (vprof::Trace& tier : out) {
    tier.duration = trace.duration;
    tier.function_names = trace.function_names;
  }
  std::unordered_map<vprof::ThreadId, size_t> owner;
  for (size_t i = 0; i < rosters.size(); ++i) {
    for (const vprof::ThreadId tid : rosters[i]) {
      owner.emplace(tid, i);  // first roster claiming a tid wins
    }
  }
  for (const vprof::ThreadTrace& thread : trace.threads) {
    const auto it = owner.find(thread.tid);
    const size_t index = it == owner.end() ? default_index : it->second;
    if (index < out.size()) {
      out[index].threads.push_back(thread);
    }
  }
  for (const vprof::ThreadId tid : trace.stuck_threads) {
    const auto it = owner.find(tid);
    const size_t index = it == owner.end() ? default_index : it->second;
    if (index < out.size()) {
      out[index].stuck_threads.push_back(tid);
    }
  }
  return out;
}

}  // namespace dist
