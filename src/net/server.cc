#include "src/net/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>

#include <chrono>
#include <utility>

#include "src/fault/failpoint.h"
#include "src/vprof/analysis/call_graph.h"
#include "src/vprof/probe.h"
#include "src/vprof/registry.h"

namespace net {

struct NetServer::AtomicStats {
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> accept_errors{0};
  std::atomic<uint64_t> accept_overflow{0};
  std::atomic<uint64_t> closed{0};
  std::atomic<uint64_t> read_eofs{0};
  std::atomic<uint64_t> protocol_errors{0};
  std::atomic<uint64_t> recovered_frames{0};
  std::atomic<uint64_t> clock_syncs{0};
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> dispatched{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> replies_sent{0};
  std::atomic<uint64_t> replies_dropped{0};
  std::atomic<uint64_t> slow_peer_evictions{0};
  std::atomic<uint64_t> idle_evictions{0};
  std::atomic<uint64_t> bytes_in{0};
  std::atomic<uint64_t> bytes_out{0};
  std::atomic<uint64_t> current_connections{0};
  std::atomic<uint64_t> peak_connections{0};
  std::atomic<uint64_t> peak_dispatch_depth{0};
};

namespace {

void BumpPeak(std::atomic<uint64_t>* peak, uint64_t value) {
  uint64_t seen = peak->load(std::memory_order_relaxed);
  while (value > seen &&
         !peak->compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

bool IsRequestType(MsgType type) {
  return type == MsgType::kTxn || type == MsgType::kHttpGet ||
         type == MsgType::kPing || type == MsgType::kClockSync;
}

}  // namespace

NetServer::NetServer(const NetServerOptions& options, Handler handler)
    : options_(options),
      handler_(std::move(handler)),
      stats_(std::make_unique<AtomicStats>()) {
  // Make the front-end's names exist in every trace snapshot taken while a
  // NetServer is alive — MaterializeQueueWait and the probe below resolve
  // FuncIds by these names.
  vprof::RegisterFunction(kNetRootFunc);
  vprof::RegisterFunction(kReadableFunc);
  vprof::RegisterFunction(kQueueWaitFactor);
}

NetServer::~NetServer() { Shutdown(); }

void NetServer::RegisterNetCallGraph(vprof::CallGraph* graph,
                                     std::string_view engine_root) {
  // "net:request" is a virtual super-root: it never fires as an invocation
  // (the variance tree's root is synthetic), but parenting the engine root
  // and the net-side factors under it makes the Profiler/vprofd instrument
  // them in iteration 1.
  graph->AddEdge(kNetRootFunc, engine_root);
  graph->AddEdge(kNetRootFunc, kReadableFunc);
  graph->AddEdge(kNetRootFunc, kQueueWaitFactor);
}

bool NetServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return true;
  }
  if (!loop_.valid()) {
    return false;
  }
  listener_ = ListenLocal(options_.port, options_.backlog, &port_);
  if (!listener_.valid()) {
    return false;
  }
  running_.store(true, std::memory_order_release);
  shut_down_.store(false, std::memory_order_release);

  loop_thread_ = std::thread([this] {
    RegisterTid(vprof::CurrentThread()->tid());
    loop_.Add(listener_.get(), EPOLLIN | EPOLLET,
              [this](uint32_t) { OnListenerReadable(); });
    loop_.Run(options_.sweep_interval_ms, [this] { SweepConnections(); });
  });
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return true;
}

void NetServer::Shutdown() {
  if (shut_down_.exchange(true)) {
    return;
  }
  if (!running_.load(std::memory_order_acquire)) {
    return;
  }
  // 1. Stop accepting. The listener is owned by the loop thread from here.
  loop_.Post([this] {
    if (listener_.valid()) {
      loop_.Del(listener_.get());
      listener_.reset();
    }
  });
  // 2. Drain the dispatch queue: Close wakes the workers, Pop hands out the
  // remaining tasks, and each worker posts its reply before exiting.
  dispatch_.Close();
  for (auto& worker : workers_) {
    worker.join();
  }
  workers_.clear();
  // 3. Best-effort flush of everything the workers posted, then stop. The
  // loop runs one final posted batch after Stop, so the flush is ordered
  // after every reply handoff.
  loop_.Post([this] {
    std::vector<uint64_t> ids;
    ids.reserve(conns_.size());
    for (const auto& [id, conn] : conns_) {
      ids.push_back(id);
    }
    for (const uint64_t id : ids) {
      // FlushConn may erase the connection (write error, closing drain).
      const auto it = conns_.find(id);
      if (it != conns_.end()) {
        FlushConn(it->second.get());
      }
    }
  });
  loop_.Stop();
  if (loop_thread_.joinable()) {
    loop_thread_.join();
  }
  // 4. Loop thread is gone; tear down connection state on this thread.
  stats_->closed.fetch_add(conns_.size(), std::memory_order_relaxed);
  conns_.clear();
  stats_->current_connections.store(0, std::memory_order_relaxed);
  running_.store(false, std::memory_order_release);
}

NetServerStats NetServer::stats() const {
  NetServerStats out;
  const AtomicStats& s = *stats_;
  out.accepted = s.accepted.load(std::memory_order_relaxed);
  out.accept_errors = s.accept_errors.load(std::memory_order_relaxed);
  out.accept_overflow = s.accept_overflow.load(std::memory_order_relaxed);
  out.closed = s.closed.load(std::memory_order_relaxed);
  out.read_eofs = s.read_eofs.load(std::memory_order_relaxed);
  out.protocol_errors = s.protocol_errors.load(std::memory_order_relaxed);
  out.recovered_frames = s.recovered_frames.load(std::memory_order_relaxed);
  out.clock_syncs = s.clock_syncs.load(std::memory_order_relaxed);
  out.requests = s.requests.load(std::memory_order_relaxed);
  out.dispatched = s.dispatched.load(std::memory_order_relaxed);
  out.rejected = s.rejected.load(std::memory_order_relaxed);
  out.replies_sent = s.replies_sent.load(std::memory_order_relaxed);
  out.replies_dropped = s.replies_dropped.load(std::memory_order_relaxed);
  out.slow_peer_evictions =
      s.slow_peer_evictions.load(std::memory_order_relaxed);
  out.idle_evictions = s.idle_evictions.load(std::memory_order_relaxed);
  out.bytes_in = s.bytes_in.load(std::memory_order_relaxed);
  out.bytes_out = s.bytes_out.load(std::memory_order_relaxed);
  out.current_connections =
      s.current_connections.load(std::memory_order_relaxed);
  out.peak_connections = s.peak_connections.load(std::memory_order_relaxed);
  out.peak_dispatch_depth =
      s.peak_dispatch_depth.load(std::memory_order_relaxed);
  return out;
}

void NetServer::RegisterTid(vprof::ThreadId tid) {
  std::lock_guard<std::mutex> lock(tids_mu_);
  profiled_tids_.push_back(tid);
}

std::vector<vprof::ThreadId> NetServer::ProfiledTids() const {
  std::lock_guard<std::mutex> lock(tids_mu_);
  return profiled_tids_;
}

int64_t NetServer::NowMs() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void NetServer::OnListenerReadable() {
  // Edge-triggered: accept until EAGAIN.
  while (true) {
    Fd peer(::accept(listener_.get(), nullptr, nullptr));
    if (!peer.valid()) {
      break;  // EAGAIN/EMFILE/...: wait for the next edge
    }
    if (fault::Triggered("net/accept_error")) {
      stats_->accept_errors.fetch_add(1, std::memory_order_relaxed);
      continue;  // peer closes on scope exit
    }
    if (conns_.size() >= options_.max_connections) {
      stats_->accept_overflow.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (SetNonBlocking(peer.get()) != 0) {
      continue;
    }
    const int one = 1;
    ::setsockopt(peer.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_unique<Conn>();
    conn->id = next_conn_id_++;
    conn->last_activity_ms = NowMs();
    const int fd = peer.get();
    conn->fd = std::move(peer);
    const uint64_t conn_id = conn->id;
    if (!loop_.Add(fd, EPOLLIN | EPOLLET,
                   [this, conn_id](uint32_t events) {
                     OnConnEvent(conn_id, events);
                   })) {
      continue;  // conn (and fd) die here
    }
    conns_.emplace(conn_id, std::move(conn));
    stats_->accepted.fetch_add(1, std::memory_order_relaxed);
    stats_->current_connections.store(conns_.size(),
                                      std::memory_order_relaxed);
    BumpPeak(&stats_->peak_connections, conns_.size());
  }
}

void NetServer::OnConnEvent(uint64_t conn_id, uint32_t events) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) {
    return;
  }
  Conn* conn = it->second.get();
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    CloseConn(conn_id);
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    FlushConn(conn);
    if (conns_.find(conn_id) == conns_.end()) {
      return;  // flush closed it (write error / closing drain)
    }
  }
  if ((events & EPOLLIN) == 0) {
    return;
  }

  std::vector<uint8_t> chunk(options_.read_chunk_bytes);
  std::vector<Frame> frames;
  while (true) {
    bool injected_eof = false;
    const ssize_t n =
        ReadFd(conn->fd.get(), chunk.data(), chunk.size(), &injected_eof);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        return;
      }
      CloseConn(conn_id);
      return;
    }
    if (n == 0) {
      stats_->read_eofs.fetch_add(1, std::memory_order_relaxed);
      CloseConn(conn_id);
      return;
    }
    stats_->bytes_in.fetch_add(static_cast<uint64_t>(n),
                               std::memory_order_relaxed);
    conn->last_activity_ms = NowMs();

    frames.clear();
    const WireError err = conn->parser.Feed(chunk.data(),
                                            static_cast<size_t>(n), &frames);
    // Frames completed before a violation are whole and typed — dispatch
    // them; nothing at or after the violation ever reaches a worker (the
    // parser is poisoned and the connection is about to close).
    for (Frame& frame : frames) {
      HandleFrame(conn, std::move(frame));
      if (conns_.find(conn_id) == conns_.end()) {
        return;  // slow-peer eviction while queueing a reply
      }
    }
    if (err != WireError::kOk) {
      stats_->protocol_errors.fetch_add(1, std::memory_order_relaxed);
      Frame reply;
      reply.type = MsgType::kError;
      reply.request_id = 0;
      reply.error = static_cast<uint8_t>(err);
      std::string bytes;
      EncodeFrame(reply, &bytes);
      conn->closing = true;  // flush the error frame, then close
      QueueBytes(conn, bytes);
      return;
    }
    if (static_cast<size_t>(n) < chunk.size()) {
      // Short read: the socket is drained; with EPOLLET the kernel would
      // accept another read() returning EAGAIN, but this saves the syscall.
      return;
    }
  }
}

void NetServer::HandleFrame(Conn* conn, Frame frame) {
  if (frame.decode_error != WireError::kOk) {
    // The parser skipped an unintelligible frame whose framing was sound
    // (unknown type / malformed extension — version skew, not corruption).
    // Answer a typed error and keep the connection: an old client must
    // survive a newer peer's frames on the same stream.
    stats_->protocol_errors.fetch_add(1, std::memory_order_relaxed);
    stats_->recovered_frames.fetch_add(1, std::memory_order_relaxed);
    Frame reply;
    reply.type = MsgType::kError;
    reply.request_id = frame.request_id;
    reply.error = static_cast<uint8_t>(frame.decode_error);
    std::string bytes;
    EncodeFrame(reply, &bytes);
    QueueBytes(conn, bytes);
    return;
  }
  if (!IsRequestType(frame.type)) {
    // A reply type sent to the server is a protocol violation even though
    // the frame itself decodes.
    stats_->protocol_errors.fetch_add(1, std::memory_order_relaxed);
    Frame reply;
    reply.type = MsgType::kError;
    reply.request_id = frame.request_id;
    reply.error = static_cast<uint8_t>(WireError::kBadType);
    std::string bytes;
    EncodeFrame(reply, &bytes);
    conn->closing = true;
    QueueBytes(conn, bytes);
    return;
  }
  stats_->requests.fetch_add(1, std::memory_order_relaxed);

  if (frame.type == MsgType::kPing) {
    // Liveness probe: answered inline on the loop thread, no interval.
    Frame reply;
    reply.type = MsgType::kPong;
    reply.request_id = frame.request_id;
    std::string bytes;
    EncodeFrame(reply, &bytes);
    QueueBytes(conn, bytes);
    return;
  }
  if (frame.type == MsgType::kClockSync) {
    // Calibration probe: stamped and answered inline on the loop thread so
    // the exchange measures wire + epoll latency, never queueing — the
    // NTP-style offset estimate below it (AsyncClient::CalibrateClock)
    // assumes the server stamp sits mid-flight.
    stats_->clock_syncs.fetch_add(1, std::memory_order_relaxed);
    Frame reply;
    reply.type = MsgType::kClockSyncReply;
    reply.request_id = frame.request_id;
    reply.t1_ns = frame.t1_ns;
    reply.t2_ns = vprof::Now();
    std::string bytes;
    EncodeFrame(reply, &bytes);
    QueueBytes(conn, bytes);
    return;
  }

  // The semantic interval is anchored here: it begins the moment a complete
  // request frame is readable on the event-loop thread (paper Section 3.1).
  // Labels follow the minidb convention (txn type + 1; 0 = untyped).
  const vprof::IntervalLabel label =
      frame.type == MsgType::kTxn
          ? static_cast<vprof::IntervalLabel>(frame.txn.type) + 1
          : vprof::kNoLabel;
  const vprof::IntervalId sid = vprof::BeginInterval(label);
  const uint64_t request_id = frame.request_id;
  const uint64_t conn_id = conn->id;
  bool queued = false;
  {
    // "net:readable" covers parse + dispatch on the loop thread; the walker
    // lands in this invocation after the generator-edge jump from the
    // worker, so epoll-side time is attributable by name.
    VPROF_FUNC(kReadableFunc);
    Task task;
    task.sid = sid;
    task.conn_id = conn_id;
    if (frame.has_trace_context) {
      // Distributed request: remember when it became readable and on which
      // loop thread, so the worker can stamp the reply's server-timing
      // extension and emit the span record the stitcher joins on.
      task.recv_time_ns = vprof::Now();
      task.loop_tid = vprof::CurrentThread()->tid();
    }
    task.request = std::move(frame);
    if (options_.max_dispatch_depth == 0) {
      dispatch_.Push(std::move(task));
      queued = true;
    } else {
      queued = dispatch_.PushIfBelow(std::move(task),
                                     options_.max_dispatch_depth);
    }
  }
  if (queued) {
    stats_->dispatched.fetch_add(1, std::memory_order_relaxed);
    BumpPeak(&stats_->peak_dispatch_depth, dispatch_.Size());
    // The loop thread goes back to background work; the interval lives on
    // and is picked up by whichever worker dequeues the task.
    vprof::WorkOnBehalf(vprof::kNoInterval);
  } else {
    // Shed at the dispatch queue: immediate 503 from the loop thread, and
    // the interval ends here — rejected requests are real, short intervals,
    // which is exactly how overload shows up in the latency distribution.
    stats_->rejected.fetch_add(1, std::memory_order_relaxed);
    Frame reply;
    reply.type = MsgType::kRejected;
    reply.request_id = request_id;
    std::string bytes;
    EncodeFrame(reply, &bytes);
    vprof::EndInterval(sid);
    QueueBytes(conn, bytes);
  }
}

void NetServer::WorkerLoop() {
  RegisterTid(vprof::CurrentThread()->tid());
  while (auto task = dispatch_.Pop()) {
    // Pop attached the created-by edge; WorkOnBehalf relabels this thread's
    // segment to the interval so the edge lands on it.
    vprof::WorkOnBehalf(task->sid);
    Frame reply = handler_(task->request);
    reply.request_id = task->request.request_id;
    if (task->request.has_trace_context) {
      // Stamp the backend's half of the span on the reply and hand the full
      // record to the dist layer. reply_time is taken before the encode so
      // it brackets exactly the handler's work.
      const vprof::TimeNs reply_time = vprof::Now();
      const TraceContext& ctx = task->request.trace_context;
      reply.has_server_timing = true;
      reply.server_timing.span_id = ctx.span_id;
      reply.server_timing.recv_time_ns = task->recv_time_ns;
      reply.server_timing.reply_time_ns = reply_time;
      reply.server_timing.worker_tid =
          static_cast<int32_t>(vprof::CurrentThread()->tid());
      if (options_.span_sink) {
        ServerSpanRecord span;
        span.origin_service = ctx.origin_service;
        span.origin_interval_id = ctx.interval_id;
        span.span_id = ctx.span_id;
        span.local_sid = task->sid;
        span.recv_time_ns = task->recv_time_ns;
        span.reply_time_ns = reply_time;
        span.loop_tid = task->loop_tid;
        span.worker_tid = vprof::CurrentThread()->tid();
        options_.span_sink(span);
      }
    }
    std::string bytes;
    EncodeFrame(reply, &bytes);
    const uint64_t conn_id = task->conn_id;
    loop_.Post([this, conn_id, bytes = std::move(bytes)] {
      auto it = conns_.find(conn_id);
      if (it == conns_.end()) {
        stats_->replies_dropped.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      stats_->replies_sent.fetch_add(1, std::memory_order_relaxed);
      QueueBytes(it->second.get(), bytes);
    });
    // The reply buffer is handed off; the response lifecycle on this
    // request's critical path is done from the worker's point of view.
    vprof::EndInterval(task->sid);
  }
  vprof::WorkOnBehalf(vprof::kNoInterval);
}

void NetServer::QueueBytes(Conn* conn, const std::string& bytes) {
  conn->outbox.append(bytes);
  const size_t pending = conn->outbox.size() - conn->out_offset;
  if (pending > options_.write_buffer_cap) {
    // Slow peer: it stopped draining and its backlog would otherwise grow
    // without bound. Evict — drop the buffered replies and the socket.
    stats_->slow_peer_evictions.fetch_add(1, std::memory_order_relaxed);
    CloseConn(conn->id);
    return;
  }
  FlushConn(conn);
}

void NetServer::FlushConn(Conn* conn) {
  const uint64_t conn_id = conn->id;
  while (conn->out_offset < conn->outbox.size()) {
    const ssize_t n =
        WriteFd(conn->fd.get(), conn->outbox.data() + conn->out_offset,
                conn->outbox.size() - conn->out_offset);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        if (!conn->wants_write) {
          conn->wants_write = true;
          loop_.Mod(conn->fd.get(), EPOLLIN | EPOLLOUT | EPOLLET);
        }
        return;
      }
      CloseConn(conn_id);  // EPIPE/ECONNRESET/...
      return;
    }
    if (n == 0) {
      return;
    }
    conn->out_offset += static_cast<size_t>(n);
    stats_->bytes_out.fetch_add(static_cast<uint64_t>(n),
                                std::memory_order_relaxed);
  }
  // Fully drained.
  conn->outbox.clear();
  conn->out_offset = 0;
  if (conn->wants_write) {
    conn->wants_write = false;
    loop_.Mod(conn->fd.get(), EPOLLIN | EPOLLET);
  }
  if (conn->closing) {
    CloseConn(conn_id);
  }
}

void NetServer::CloseConn(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) {
    return;
  }
  loop_.Del(it->second->fd.get());
  conns_.erase(it);
  stats_->closed.fetch_add(1, std::memory_order_relaxed);
  stats_->current_connections.store(conns_.size(), std::memory_order_relaxed);
}

void NetServer::SweepConnections() {
  if (options_.idle_timeout_ms <= 0) {
    return;
  }
  const int64_t now = NowMs();
  std::vector<uint64_t> stale;
  for (const auto& [id, conn] : conns_) {
    if (now - conn->last_activity_ms > options_.idle_timeout_ms) {
      stale.push_back(id);
    }
  }
  for (const uint64_t id : stale) {
    stats_->idle_evictions.fetch_add(1, std::memory_order_relaxed);
    CloseConn(id);
  }
}

}  // namespace net
