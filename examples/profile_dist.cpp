// Profile a two-tier deployment end to end: an httpd front tier calls a
// minidb backend over real localhost sockets (framed RPCs with trace-context
// propagation), and the cross-service profiling layer decomposes the
// end-to-end latency variance across BOTH tiers in one tree.
//
// Two views are shown:
//   1. The online DistMonitor view — per-tier OnlineVarianceTree snapshots
//      merged under the synthetic dist:request root, with each backend's
//      share of the front's variance (what vprofd exports as tier:* series).
//   2. The offline stitched view — dist::StitchTraces joins the per-tier
//      traces on span ids, so the critical-path walker crosses the wire and
//      front factors (queue wait, allocator) compete with backend factors
//      (lock waits, the WAL path) in a single Eq. 2 ranking.
//
// The final step profiles the same engine single-process (the paper's
// Table 4 setting) and checks that the backend's top factor seen THROUGH
// the distributed tier matches the factors the classic profiler finds —
// the wire must not change what the decomposition blames.
//
// Build & run:  ./build/examples/profile_dist
#include <cstdio>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/dist/backend_pool.h"
#include "src/dist/monitor.h"
#include "src/dist/stitcher.h"
#include "src/dist/tier.h"
#include "src/httpd/server.h"
#include "src/minidb/engine.h"
#include "src/net/frontend.h"
#include "src/net/server.h"
#include "src/statkit/rng.h"
#include "src/vprof/analysis/factor_selection.h"
#include "src/vprof/analysis/profiler.h"
#include "src/vprof/analysis/variance_tree.h"
#include "src/workload/openloop.h"
#include "src/workload/tpcc.h"

namespace {

constexpr int kWarehouses = 1;  // Payment serializes -> lock waits dominate
// Enough concurrency that the backend contends the same way the
// single-process Table 4 run does: 4 httpd workers can keep 4 backend
// workers busy, mirroring the 4-thread TPC-C driver below.
constexpr int kWorkersPerTier = 4;
constexpr double kRatePerSec = 1100.0;
constexpr double kRunSeconds = 1.2;

minidb::EngineConfig EngineConfig() {
  minidb::EngineConfig config = minidb::EngineConfig::MemoryResident();
  config.warehouses = kWarehouses;
  return config;
}

std::set<std::string> TopLabels(const std::vector<vprof::Factor>& factors,
                                const std::vector<std::string>& names,
                                size_t k) {
  std::set<std::string> top;
  for (const vprof::Factor& factor : factors) {
    if (factor.is_covariance()) {
      continue;
    }
    top.insert(factor.Label(names));
    if (top.size() == k) {
      break;
    }
  }
  return top;
}

}  // namespace

int main() {
  std::printf("Step 1: bring up the two-tier stack (httpd -> minidb over "
              "localhost).\n\n");

  vprof::CallGraph graph;
  minidb::Engine::RegisterCallGraph(&graph);
  httpd::HttpServer::RegisterCallGraph(&graph);
  net::NetServer::RegisterNetCallGraph(&graph, "process_request");
  net::NetServer::RegisterNetCallGraph(&graph, "run_transaction");
  dist::RegisterDistCallGraph(&graph, "run_transaction");
  const vprof::FuncId net_root = vprof::RegisterFunction(net::kNetRootFunc);

  dist::SpanLog spans;

  minidb::Engine engine(EngineConfig());
  net::NetServerOptions backend_options;
  backend_options.workers = kWorkersPerTier;
  backend_options.span_sink = spans.ServerSink();
  net::NetServer backend(backend_options, net::MakeMinidbHandler(&engine));
  if (!backend.Start()) {
    std::fprintf(stderr, "backend failed to start\n");
    return 1;
  }

  dist::BackendPoolOptions pool_options;
  pool_options.service = net::ServiceId::kMinidb;
  pool_options.connections = 4;
  pool_options.port = backend.port();
  pool_options.span_sink = spans.ClientSink();
  dist::BackendPool pool(pool_options);
  if (!pool.Warm()) {
    std::fprintf(stderr, "backend pool failed to warm\n");
    return 1;
  }

  std::mutex gen_mu;
  statkit::Rng rng(0xd15e);
  workload::TpccGenerator gen{workload::TpccOptions{}, kWarehouses};
  httpd::HttpdConfig httpd_config;
  httpd_config.workers = kWorkersPerTier;
  httpd_config.backend_call = [&](uint64_t) {
    net::Frame request;
    request.type = net::MsgType::kTxn;
    {
      std::lock_guard<std::mutex> lock(gen_mu);
      request.txn = gen.Next(rng);
    }
    net::Frame reply;
    (void)pool.Call(std::move(request), &reply);
  };
  httpd::HttpServer http(httpd_config);
  net::NetServerOptions front_options;
  front_options.workers = 2;
  net::NetServer front(front_options, net::MakeHttpdHandler(&http));
  if (!front.Start()) {
    std::fprintf(stderr, "front failed to start\n");
    return 1;
  }

  std::printf("Step 2: traced open-loop run (%.0f req/s for %.1f s).\n\n",
              kRatePerSec, kRunSeconds);
  workload::OpenLoopOptions load;
  load.port = front.port();
  load.connections = 128;
  load.duration_s = kRunSeconds;
  load.arrivals.rate_per_sec = kRatePerSec;
  load.seed = 42;
  load.make_request = [](uint64_t i) {
    net::Frame frame;
    frame.type = net::MsgType::kHttpGet;
    frame.file_id = i % 4;
    return frame;
  };

  const size_t registered = vprof::RegisteredFunctionCount();
  for (vprof::FuncId id = 0; id < registered; ++id) {
    vprof::SetFunctionEnabled(id, true);
  }
  vprof::StartTracing();
  const workload::OpenLoopResult run = workload::RunOpenLoop(load);
  const vprof::Trace trace = vprof::StopTracing();
  vprof::DisableAllFunctions();
  if (run.acked == 0) {
    std::fprintf(stderr, "no requests completed\n");
    return 1;
  }
  std::printf("  %llu acked, p99 %.2f ms\n\n",
              static_cast<unsigned long long>(run.acked),
              workload::PercentileNs(run.latencies_ns, 99.0) / 1e6);

  // Per-tier split: the backend NetServer's threads are the minidb tier,
  // everything else (loadgen, front loop, httpd workers, RPC loop) is front.
  const std::vector<vprof::Trace> tiers =
      dist::SplitByTids(trace, {{}, backend.ProfiledTids()},
                        /*default_index=*/0);

  std::printf("Step 3: online view — DistMonitor's merged tree.\n\n");
  vprof::OnlineTreeOptions tree_options;
  tree_options.path_options.queue_wait_factor = net::kQueueWaitFactor;
  vprof::OnlineVarianceTree front_tree(tree_options);
  vprof::OnlineVarianceTree backend_tree(tree_options);
  front_tree.Fold(tiers[0]);
  backend_tree.Fold(tiers[1]);

  dist::DistMonitor monitor;
  dist::TierConfig front_tier;
  front_tier.name = "front";
  front_tier.is_front = true;
  front_tier.root = net_root;
  monitor.RegisterTier(front_tier);
  dist::TierConfig backend_tier;
  backend_tier.name = "minidb";
  backend_tier.root = vprof::RegisterFunction("run_transaction");
  monitor.RegisterTier(backend_tier);
  monitor.UpdateTier("front", front_tree.Snapshot());
  monitor.UpdateTier("minidb", backend_tree.Snapshot());
  std::printf("%s\n", monitor.ToText(graph, /*top_k=*/4).c_str());

  std::printf("Step 4: offline view — stitched cross-tier decomposition.\n\n");
  dist::TierTrace front_view;
  front_view.name = "front";
  front_view.service = net::ServiceId::kFront;
  front_view.trace = tiers[0];
  front_view.client_spans = spans.ClientSpans();
  dist::TierTrace backend_view;
  backend_view.name = "minidb";
  backend_view.service = net::ServiceId::kMinidb;
  backend_view.trace = tiers[1];
  backend_view.server_spans = spans.ServerSpans();
  backend_view.clock_offset_ns = pool.calibration().offset_ns;
  const dist::StitchResult stitched =
      dist::StitchTraces(front_view, {backend_view});
  std::printf("  %llu spans matched, %llu cross-tier edges injected\n",
              static_cast<unsigned long long>(stitched.stats.matched_spans),
              static_cast<unsigned long long>(stitched.stats.injected_edges));

  vprof::CriticalPathOptions path_options;
  path_options.queue_wait_factor = net::kQueueWaitFactor;
  const vprof::VarianceAnalysis merged(stitched.trace, path_options);
  const std::vector<vprof::Factor> merged_factors = vprof::AggregateFactors(
      merged, graph, net_root, vprof::SpecificityKind::kQuadratic);
  int rank = 1;
  for (const vprof::Factor& factor : merged_factors) {
    if (factor.is_covariance()) {
      continue;
    }
    std::printf("  %d | %s | %.1f%%\n", rank++,
                factor.Label(stitched.trace.function_names).c_str(),
                factor.contribution * 100.0);
    if (rank > 5) {
      break;
    }
  }

  front.Shutdown();
  http.Shutdown();
  pool.Shutdown();
  backend.Shutdown();

  // What did the distributed view blame INSIDE the backend? Rank the
  // backend tier on its own root, exactly as a per-tier vprofd would.
  const vprof::VarianceAnalysis backend_only(tiers[1], path_options);
  const std::vector<vprof::Factor> backend_factors = vprof::AggregateFactors(
      backend_only, graph, vprof::RegisterFunction("run_transaction"),
      vprof::SpecificityKind::kQuadratic);
  const std::set<std::string> dist_backend_top =
      TopLabels(backend_factors, tiers[1].function_names, 3);

  std::printf("\nStep 5: single-process profile of the same engine "
              "(Table 4 setting).\n\n");
  minidb::Engine solo(EngineConfig());
  workload::TpccOptions tpcc;
  tpcc.threads = 4;
  tpcc.transactions_per_thread = 400;
  workload::TpccDriver driver(&solo, tpcc);
  driver.Run();  // warm-up
  vprof::Profiler profiler("run_transaction", &graph, [&] { driver.Run(); });
  const vprof::ProfileResult offline = profiler.Run();
  const std::set<std::string> solo_top =
      TopLabels(offline.all_factors, offline.function_names, 5);

  std::printf("  backend top factors through the wire:");
  for (const std::string& label : dist_backend_top) {
    std::printf(" %s", label.c_str());
  }
  std::printf("\n  single-process top factors:         ");
  for (const std::string& label : solo_top) {
    std::printf(" %s", label.c_str());
  }

  // The wire must not change the blame: the distributed backend tier's #1
  // factor has to be one the single-process profiler also ranks highly.
  const std::string backend_top =
      dist_backend_top.empty() ? "" : *dist_backend_top.begin();
  size_t overlap = 0;
  for (const std::string& label : dist_backend_top) {
    overlap += solo_top.count(label);
  }
  std::printf("\n\n  agreement: %zu of %zu backend factors also in the "
              "single-process top-5\n",
              overlap, dist_backend_top.size());
  const bool pass = overlap >= 1 && !backend_top.empty();
  std::printf("  %s\n", pass ? "PASS: the distributed decomposition matches "
                               "the single-process picture."
                             : "FAIL: distributed and single-process "
                               "decompositions disagree.");
  return pass ? 0 : 1;
}
