// Overhead of the always-on service on the probe hot path. Emits
// BENCH_online.json comparing enabled-probe ns/probe under a plain batch
// tracing run (the micro_probe baseline) against the same loop with the
// vprofd epoch harvester rotating underneath it. The service is supposed to
// be embeddable in production, so the acceptance bar is ratio < 2x.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/vprof/probe.h"
#include "src/vprof/registry.h"
#include "src/vprof/runtime.h"
#include "src/vprof/service/vprofd.h"

namespace {

constexpr int kThreads = 4;
constexpr int kProbesPerInterval = 1000;

void ProbedFunc() {
  VPROF_FUNC("online_bench_fn");
}

// One semantic interval wrapping a batch of probed calls, so harvested
// epochs contain real intervals for the streaming tree to fold.
void IntervalBatch() {
  const vprof::IntervalId sid = vprof::BeginInterval();
  for (int i = 0; i < kProbesPerInterval; ++i) {
    ProbedFunc();
  }
  vprof::EndInterval(sid);
}

// Runs IntervalBatch for a fixed wall duration and reports the realized
// probe count. Duration-based (not count-based) timing matters for the
// online configuration: the loop runs ~100x faster during the tracing-off
// rotation gaps, so a fixed batch budget would be consumed inside a single
// gap instead of time-averaging over many epoch/gap cycles.
int64_t BatchesFor(int64_t duration_ns) {
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::nanoseconds(duration_ns);
  int64_t batches = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    IntervalBatch();
    ++batches;
  }
  return batches;
}

double MeasureSingle(int64_t duration_ns) {
  BatchesFor(duration_ns / 4);  // warm-up
  const auto start = std::chrono::steady_clock::now();
  const int64_t batches = BatchesFor(duration_ns);
  const auto end = std::chrono::steady_clock::now();
  const auto wall =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start).count();
  return static_cast<double>(wall) /
         static_cast<double>(batches * kProbesPerInterval);
}

double MeasureMulti(int64_t duration_ns) {
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<int64_t> total_batches{0};
  std::vector<std::thread> threads;
  const auto worker = [&] {
    BatchesFor(duration_ns / 4);  // warm-up (first-touch TLS buffers)
    ready.fetch_add(1);
    while (!go.load(std::memory_order_acquire)) {
    }
    total_batches.fetch_add(BatchesFor(duration_ns));
  };
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(worker);
  }
  while (ready.load() < kThreads) {
  }
  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& th : threads) {
    th.join();
  }
  const auto end = std::chrono::steady_clock::now();
  const auto wall =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start).count();
  return static_cast<double>(wall) /
         static_cast<double>(total_batches.load() * kProbesPerInterval);
}

struct Result {
  double st = 0.0;
  double mt = 0.0;
  uint64_t epochs = 0;      // online only
  double duty_cycle = 1.0;  // tracing-on fraction (online only)
  double max_gap_ms = 0.0;  // worst rotation gap (online only)
};

// Baseline: one long batch tracing run, probe enabled (micro_probe's
// "enabled probe" configuration, plus the interval bookkeeping).
Result MeasureBatch(int64_t duration_ns) {
  vprof::StartTracing();
  Result r;
  r.st = MeasureSingle(duration_ns);
  vprof::StopTracing();
  vprof::StartTracing();
  r.mt = MeasureMulti(duration_ns);
  vprof::StopTracing();
  return r;
}

// Same loop with vprofd harvesting epochs underneath: tracing rotates every
// epoch and each harvested trace is folded into the streaming tree on the
// harvester thread. The measurement must span many rotation cycles so the
// reported ns/probe is the true time average of tracing-on epochs and the
// cheaper tracing-off rotation gaps.
Result MeasureOnline(int64_t duration_ns) {
  constexpr vprof::TimeNs kEpochNs = 20'000'000;  // 20 ms
  vprof::VprofdOptions options;
  options.root_function = "online_bench_root";
  options.epoch_ns = kEpochNs;
  vprof::Vprofd daemon(std::move(options));
  daemon.Start();
  Result r;
  r.st = MeasureSingle(duration_ns);
  r.mt = MeasureMulti(duration_ns);
  daemon.Stop();
  r.epochs = daemon.epochs();
  const double on_ns = static_cast<double>(r.epochs) * kEpochNs;
  const double gap_ns = static_cast<double>(daemon.total_gap_ns());
  r.duty_cycle = on_ns > 0.0 ? on_ns / (on_ns + gap_ns) : 0.0;
  r.max_gap_ms = static_cast<double>(daemon.max_gap_ns()) / 1e6;
  std::printf(
      "  (online run rotated %llu epochs, duty cycle %.2f, max gap %.2f ms)\n",
      static_cast<unsigned long long>(r.epochs), r.duty_cycle, r.max_gap_ms);
  return r;
}

}  // namespace

int main() {
  bench::PrintHeader("online_overhead — probe cost with vprofd harvesting");

  const vprof::FuncId fid = vprof::RegisterFunction("online_bench_fn");
  vprof::DisableAllFunctions();
  vprof::SetFunctionEnabled(fid, true);

  // Each timed loop runs for a fixed wall duration spanning dozens of 20 ms
  // epochs plus their rotation gaps.
  const int64_t duration_ns = 2'000'000'000;  // 2 s per configuration

  // Probe cost with tracing off (the rotation-gap phase, measured alone).
  Result off;
  off.st = MeasureSingle(duration_ns / 4);
  off.mt = MeasureMulti(duration_ns / 4);

  const Result batch = MeasureBatch(duration_ns);
  const Result online = MeasureOnline(duration_ns);
  vprof::DisableAllFunctions();

  // The free-running loop's per-probe average is dominated by the cheap
  // tracing-off phase (it completes far more probes there). A fixed-work
  // workload is slowed by the TIME-weighted cost instead: the duty-cycle mix
  // of the tracing-on cost and the gap cost. Report both; accept on both.
  const double tw_st = online.duty_cycle * batch.st +
                       (1.0 - online.duty_cycle) * off.st;
  const double tw_mt = online.duty_cycle * batch.mt +
                       (1.0 - online.duty_cycle) * off.mt;

  const double ratio_st = batch.st > 0.0 ? online.st / batch.st : 0.0;
  const double ratio_mt = batch.mt > 0.0 ? online.mt / batch.mt : 0.0;
  const double tw_ratio_st = batch.st > 0.0 ? tw_st / batch.st : 0.0;
  const double tw_ratio_mt = batch.mt > 0.0 ? tw_mt / batch.mt : 0.0;

  std::printf("  %-24s %10s %10s\n", "configuration", "1 thread", "4 threads");
  std::printf("  %-24s %10.2f %10.2f\n", "tracing off", off.st, off.mt);
  std::printf("  %-24s %10.2f %10.2f\n", "batch enabled probe", batch.st,
              batch.mt);
  std::printf("  %-24s %10.2f %10.2f\n", "with harvester", online.st,
              online.mt);
  std::printf("  %-24s %10.2f %10.2f\n", "  time-weighted", tw_st, tw_mt);
  std::printf("  %-24s %10.2f %10.2f\n", "ratio", ratio_st, ratio_mt);
  std::printf("  %-24s %10.2f %10.2f\n", "  time-weighted", tw_ratio_st,
              tw_ratio_mt);

  FILE* json = std::fopen("BENCH_online.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "online_overhead: cannot write BENCH_online.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"unit\": \"ns_per_probe\",\n"
               "  \"threads_mt\": %d,\n"
               "  \"probes_per_interval\": %d,\n"
               "  \"batch_enabled_st\": %.3f,\n"
               "  \"batch_enabled_mt\": %.3f,\n"
               "  \"disabled_tracing_st\": %.3f,\n"
               "  \"disabled_tracing_mt\": %.3f,\n"
               "  \"online_enabled_st\": %.3f,\n"
               "  \"online_enabled_mt\": %.3f,\n"
               "  \"online_timeweighted_st\": %.3f,\n"
               "  \"online_timeweighted_mt\": %.3f,\n"
               "  \"ratio_st\": %.3f,\n"
               "  \"ratio_mt\": %.3f,\n"
               "  \"ratio_timeweighted_st\": %.3f,\n"
               "  \"ratio_timeweighted_mt\": %.3f,\n"
               "  \"online_epochs\": %llu,\n"
               "  \"online_duty_cycle\": %.3f,\n"
               "  \"online_max_gap_ms\": %.3f\n"
               "}\n",
               kThreads, kProbesPerInterval, batch.st, batch.mt, off.st,
               off.mt, online.st, online.mt, tw_st, tw_mt, ratio_st, ratio_mt,
               tw_ratio_st, tw_ratio_mt,
               static_cast<unsigned long long>(online.epochs),
               online.duty_cycle, online.max_gap_ms);
  std::fclose(json);
  std::printf("\n  wrote BENCH_online.json (acceptance: ratios < 2.0)\n");
  return ratio_st < 2.0 && ratio_mt < 2.0 && tw_ratio_st < 2.0 &&
                 tw_ratio_mt < 2.0
             ? 0
             : 1;
}
