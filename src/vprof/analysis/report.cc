#include "src/vprof/analysis/report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "src/statkit/summary.h"

namespace vprof {

std::string FormatFactorTable(const std::vector<Factor>& factors,
                              const std::vector<std::string>& function_names,
                              size_t max_rows, double min_contribution) {
  std::ostringstream out;
  out << "rank  contribution  score         factor\n";
  size_t rank = 1;
  for (const Factor& factor : factors) {
    if (rank > max_rows) {
      break;
    }
    if (factor.contribution < min_contribution) {
      continue;
    }
    char line[160];
    std::snprintf(line, sizeof(line), "%-5zu %10.1f%%  %-12.4g  %s\n", rank,
                  factor.contribution * 100.0, factor.score,
                  factor.Label(function_names).c_str());
    out << line;
    ++rank;
  }
  return out.str();
}

namespace {

void FormatNode(const VarianceAnalysis& analysis, NodeId id, int indent,
                double min_contribution, double min_mean_ns,
                std::ostringstream* out) {
  const double contribution = analysis.NodeContribution(id);
  const double mean = analysis.NodeMean(id);
  if (id != kRootNode &&
      (contribution < min_contribution && mean < min_mean_ns)) {
    return;
  }
  char line[192];
  const std::string label =
      id == kRootNode ? "(interval)" : analysis.NodeLabel(id);
  std::snprintf(line, sizeof(line), "%*s%-*s mean=%10.1f us  var%%=%6.1f\n",
                indent * 2, "", std::max(1, 44 - indent * 2), label.c_str(),
                mean / 1000.0, contribution * 100.0);
  *out << line;
  // Children ordered by descending contribution for readability.
  std::vector<NodeId> children = analysis.node(id).children;
  std::sort(children.begin(), children.end(), [&](NodeId a, NodeId b) {
    return analysis.NodeContribution(a) > analysis.NodeContribution(b);
  });
  for (NodeId child : children) {
    FormatNode(analysis, child, indent + 1, min_contribution, min_mean_ns, out);
  }
}

}  // namespace

std::string FormatCallTree(const VarianceAnalysis& analysis,
                           double min_contribution, double min_mean_ns) {
  std::ostringstream out;
  FormatNode(analysis, kRootNode, 0, min_contribution, min_mean_ns, &out);
  return out.str();
}

std::string FormatWaitBreakdown(const VarianceAnalysis& analysis) {
  std::ostringstream out;
  const double n = std::max<double>(1.0, static_cast<double>(analysis.interval_count()));
  char line[160];
  std::snprintf(line, sizeof(line),
                "uncovered critical-path time per interval (avg):\n"
                "  queue wait:        %10.1f us\n"
                "  blocked (no edge): %10.1f us\n"
                "  descheduled:       %10.1f us\n",
                analysis.total_queue_wait_ns() / n / 1000.0,
                analysis.total_blocked_wait_ns() / n / 1000.0,
                analysis.total_descheduled_ns() / n / 1000.0);
  out << line;
  return out.str();
}

std::string FormatLatencySummary(const VarianceAnalysis& analysis) {
  const auto latencies = analysis.latencies();
  const statkit::Summary s =
      statkit::Summarize({latencies.data(), latencies.size()});
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "intervals: %zu\n"
                "latency: mean=%.3f ms  sd=%.3f ms  cv=%.2f\n"
                "         p50=%.3f ms  p95=%.3f ms  p99=%.3f ms  max=%.3f ms\n",
                analysis.interval_count(), s.mean / 1e6, s.stddev / 1e6, s.cv,
                s.p50 / 1e6, s.p95 / 1e6, s.p99 / 1e6, s.max / 1e6);
  out << line;
  return out.str();
}

std::string FormatTraceHealth(const Trace& trace) {
  const uint64_t dropped = trace.dropped_record_count();
  if (trace.stuck_threads.empty() && dropped == 0) {
    return "";
  }
  std::ostringstream out;
  out << "trace health:\n";
  if (!trace.stuck_threads.empty()) {
    out << "  stuck threads (records quarantined): "
        << trace.stuck_threads.size() << " [tid";
    for (ThreadId tid : trace.stuck_threads) {
      out << " " << tid;
    }
    out << "]\n";
  }
  if (dropped > 0) {
    uint64_t affected = 0;
    for (const ThreadTrace& t : trace.threads) {
      if (t.dropped_records > 0) {
        ++affected;
      }
    }
    out << "  dropped records (arena cap): " << dropped << " across "
        << affected << " thread" << (affected == 1 ? "" : "s") << "\n";
  }
  return out.str();
}

}  // namespace vprof
