# Empty dependencies file for table6_pg_sources.
# This may be replaced when dependencies are built.
