// Handler adapters that put the three engines behind a NetServer.
//
// Each adapter maps a request frame to the engine's blocking entry point and
// shapes the outcome into a reply frame. The engines' entry points join the
// enclosing semantic interval (the one the NetServer anchored at socket
// readability), so the wire hop, the dispatch-queue wait and the engine's
// internal phases all land in ONE interval per request — which is what lets
// the variance tree rank "net:queue_wait" against the engine's own factors.
#ifndef SRC_NET_FRONTEND_H_
#define SRC_NET_FRONTEND_H_

#include "src/net/server.h"

namespace minidb {
class Engine;
}
namespace minipg {
class PgEngine;
}
namespace httpd {
class HttpServer;
}

namespace net {

// kTxn -> minidb::Engine::Execute. Non-txn requests get kError/kBadType.
NetServer::Handler MakeMinidbHandler(minidb::Engine* engine);

// kTxn -> minipg::Engine::Execute (commit/abort only; minipg reports no trx
// id or error detail over the wire).
NetServer::Handler MakeMinipgHandler(minipg::PgEngine* engine);

// kHttpGet -> httpd::HttpServer::HandleRequestBlocking. The httpd server's
// own queue shedding (503) surfaces as kRejected.
NetServer::Handler MakeHttpdHandler(httpd::HttpServer* server);

}  // namespace net

#endif  // SRC_NET_FRONTEND_H_
