# Empty dependencies file for minipg_engine_test.
# This may be replaced when dependencies are built.
