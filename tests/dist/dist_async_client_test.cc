// AsyncClient + BackendPool over real localhost sockets: round trips,
// span-record joining, clock calibration, call timeouts, and cold-start
// spawning with concurrent callers.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "src/dist/backend_pool.h"
#include "src/dist/tier.h"
#include "src/net/async_client.h"
#include "src/net/protocol.h"
#include "src/net/server.h"
#include "src/vprof/runtime.h"

namespace dist {
namespace {

net::Frame Ping(uint64_t id) {
  net::Frame f;
  f.type = net::MsgType::kPing;
  f.request_id = id;
  return f;
}

// kPing is answered inline on the server's loop thread; kTxn goes through
// the dispatch queue to a worker — required when the test needs worker-side
// behavior (handler execution, span records, server timing).
net::Frame Txn() {
  net::Frame f;
  f.type = net::MsgType::kTxn;
  f.txn.type = minidb::TxnType::kPayment;
  f.txn.warehouse = 1;
  return f;
}

net::NetServer::Handler PongHandler() {
  return [](const net::Frame&) {
    net::Frame reply;
    reply.type = net::MsgType::kPong;
    return reply;
  };
}

net::NetServer::Handler TxnReplyHandler() {
  return [](const net::Frame&) {
    net::Frame reply;
    reply.type = net::MsgType::kTxnReply;
    reply.status = 0;
    return reply;
  };
}

TEST(DistAsyncClientTest, CallRoundTrip) {
  net::NetServerOptions sopt;
  sopt.workers = 2;
  net::NetServer server(sopt, PongHandler());
  ASSERT_TRUE(server.Start());

  net::AsyncClientOptions copt;
  copt.port = server.port();
  copt.connections = 2;
  copt.service = net::ServiceId::kMinidb;
  net::AsyncClient client(copt);
  ASSERT_TRUE(client.Connect());
  EXPECT_NE(client.loop_tid(), vprof::kNoThread);

  for (int i = 0; i < 32; ++i) {
    net::Frame reply;
    ASSERT_TRUE(client.Call(Ping(0), &reply));
    EXPECT_EQ(reply.type, net::MsgType::kPong);
  }
  EXPECT_EQ(client.stats().calls, 32u);
  EXPECT_EQ(client.stats().failures, 0u);

  client.Shutdown();
  server.Shutdown();
}

TEST(DistAsyncClientTest, SpanRecordsJoinOnSpanId) {
  SpanLog log;
  net::NetServerOptions sopt;
  sopt.workers = 1;
  sopt.span_sink = log.ServerSink();
  net::NetServer server(sopt, TxnReplyHandler());
  ASSERT_TRUE(server.Start());

  net::AsyncClientOptions copt;
  copt.port = server.port();
  copt.service = net::ServiceId::kMinidb;
  copt.span_sink = log.ClientSink();
  net::AsyncClient client(copt);
  ASSERT_TRUE(client.Connect());

  vprof::StartTracing();
  const vprof::IntervalId sid = vprof::BeginInterval();
  net::Frame reply;
  ASSERT_TRUE(client.Call(Txn(), &reply));
  vprof::EndInterval(sid);
  vprof::Trace trace = vprof::StopTracing();
  (void)trace;

  client.Shutdown();
  server.Shutdown();

  const std::vector<net::ClientSpanRecord> client_spans = log.ClientSpans();
  const std::vector<net::ServerSpanRecord> server_spans = log.ServerSpans();
  ASSERT_EQ(client_spans.size(), 1u);
  ASSERT_EQ(server_spans.size(), 1u);

  const net::ClientSpanRecord& cs = client_spans[0];
  const net::ServerSpanRecord& ss = server_spans[0];
  EXPECT_EQ(cs.service, net::ServiceId::kMinidb);
  EXPECT_EQ(cs.interval_id, static_cast<uint64_t>(sid));
  EXPECT_NE(cs.span_id, 0u);
  EXPECT_LE(cs.send_time_ns, cs.recv_time_ns);
  EXPECT_NE(cs.caller_tid, vprof::kNoThread);

  // The stitch key (service, span_id) joins the two halves.
  EXPECT_EQ(ss.span_id, cs.span_id);
  EXPECT_EQ(ss.origin_service, net::ServiceId::kFront);
  EXPECT_EQ(ss.origin_interval_id, static_cast<uint64_t>(sid));
  EXPECT_NE(ss.local_sid, vprof::kNoInterval);
  EXPECT_LE(ss.recv_time_ns, ss.reply_time_ns);
  EXPECT_NE(ss.loop_tid, vprof::kNoThread);
  EXPECT_NE(ss.worker_tid, vprof::kNoThread);

  // And the backend half was echoed to the caller on the reply.
  ASSERT_TRUE(cs.has_server_timing);
  EXPECT_EQ(cs.server.span_id, cs.span_id);
  EXPECT_EQ(cs.server.recv_time_ns, ss.recv_time_ns);
  EXPECT_EQ(cs.server.reply_time_ns, ss.reply_time_ns);
  EXPECT_EQ(cs.server.worker_tid, ss.worker_tid);
}

TEST(DistAsyncClientTest, CalibrateClockSameProcess) {
  net::NetServerOptions sopt;
  net::NetServer server(sopt, PongHandler());
  ASSERT_TRUE(server.Start());

  net::AsyncClientOptions copt;
  copt.port = server.port();
  net::AsyncClient client(copt);
  ASSERT_TRUE(client.Connect());

  const net::ClockCalibration cal = client.CalibrateClock(16);
  ASSERT_TRUE(cal.valid);
  EXPECT_EQ(cal.rounds, 16);
  EXPECT_GT(cal.min_rtt_ns, 0);
  // Both ends read the same process's fastclock, so the derived offset is
  // bounded by the one-way latency asymmetry — generously, half the RTT
  // plus scheduler noise.
  EXPECT_LT(std::abs(cal.offset_ns), cal.min_rtt_ns + 5'000'000);

  client.Shutdown();
  server.Shutdown();
}

TEST(DistAsyncClientTest, CallTimeoutFails) {
  net::NetServerOptions sopt;
  sopt.workers = 1;
  net::NetServer server(sopt, [](const net::Frame&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    net::Frame reply;
    reply.type = net::MsgType::kTxnReply;
    return reply;
  });
  ASSERT_TRUE(server.Start());

  net::AsyncClientOptions copt;
  copt.port = server.port();
  copt.call_timeout_ns = 50'000'000;  // 50 ms
  net::AsyncClient client(copt);
  ASSERT_TRUE(client.Connect());

  net::Frame reply;
  EXPECT_FALSE(client.Call(Txn(), &reply));
  EXPECT_EQ(client.stats().failures, 1u);

  client.Shutdown();
  server.Shutdown();
}

TEST(DistAsyncClientTest, WarmPoolCallsWithoutColdStart) {
  net::NetServerOptions sopt;
  net::NetServer server(sopt, PongHandler());
  ASSERT_TRUE(server.Start());

  BackendPoolOptions popt;
  popt.port = server.port();
  popt.calibrate_rounds = 4;
  BackendPool pool(popt);
  ASSERT_TRUE(pool.Warm());
  EXPECT_TRUE(pool.ready());
  EXPECT_EQ(pool.cold_starts(), 0u);
  EXPECT_TRUE(pool.calibration().valid);
  EXPECT_NE(pool.loop_tid(), vprof::kNoThread);

  net::Frame reply;
  ASSERT_TRUE(pool.Call(Ping(0), &reply));
  EXPECT_EQ(reply.type, net::MsgType::kPong);
  // Calibration probes count toward calls too; the application call is on
  // top of the calibrate_rounds exchanges.
  EXPECT_GE(pool.client_stats().calls, 1u);

  pool.Shutdown();
  server.Shutdown();
}

TEST(DistAsyncClientTest, ColdStartSpawnsOnceUnderConcurrency) {
  std::unique_ptr<net::NetServer> backend;
  std::atomic<int> spawns{0};

  BackendPoolOptions popt;
  popt.cold_start = true;
  popt.calibrate_rounds = 4;
  popt.spawn = [&backend, &spawns]() -> uint16_t {
    spawns.fetch_add(1);
    net::NetServerOptions sopt;
    sopt.workers = 2;
    backend = std::make_unique<net::NetServer>(sopt, PongHandler());
    if (!backend->Start()) {
      return 0;
    }
    return backend->port();
  };
  BackendPool pool(popt);
  EXPECT_FALSE(pool.ready());

  constexpr int kCallers = 4;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int i = 0; i < kCallers; ++i) {
    threads.emplace_back([&pool, &ok]() {
      net::Frame reply;
      if (pool.Call(Ping(0), &reply) &&
          reply.type == net::MsgType::kPong) {
        ok.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }

  EXPECT_EQ(ok.load(), kCallers);
  EXPECT_EQ(spawns.load(), 1);
  EXPECT_EQ(pool.cold_starts(), 1u);
  EXPECT_TRUE(pool.ready());
  EXPECT_TRUE(pool.calibration().valid);

  pool.Shutdown();
  if (backend != nullptr) {
    backend->Shutdown();
  }
}

}  // namespace
}  // namespace dist
