
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/vprof/analysis_edge_test.cc" "tests/vprof/CMakeFiles/vprof_analysis_edge_test.dir/analysis_edge_test.cc.o" "gcc" "tests/vprof/CMakeFiles/vprof_analysis_edge_test.dir/analysis_edge_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vprof/CMakeFiles/vprof.dir/DependInfo.cmake"
  "/root/repo/build/src/statkit/CMakeFiles/statkit.dir/DependInfo.cmake"
  "/root/repo/build/src/simio/CMakeFiles/simio.dir/DependInfo.cmake"
  "/root/repo/build/src/minidb/CMakeFiles/minidb.dir/DependInfo.cmake"
  "/root/repo/build/src/minipg/CMakeFiles/minipg.dir/DependInfo.cmake"
  "/root/repo/build/src/httpd/CMakeFiles/httpd.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
