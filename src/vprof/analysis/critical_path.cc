#include "src/vprof/analysis/critical_path.h"

#include <algorithm>
#include <unordered_map>

namespace vprof {

TraceIndex::TraceIndex(const Trace& trace) : trace_(&trace) {
  ThreadId max_tid = -1;
  for (const ThreadTrace& t : trace.threads) {
    max_tid = std::max(max_tid, t.tid);
  }
  tid_to_index_.assign(static_cast<size_t>(max_tid + 1), -1);
  for (size_t i = 0; i < trace.threads.size(); ++i) {
    tid_to_index_[static_cast<size_t>(trace.threads[i].tid)] = static_cast<int>(i);
  }

  // Match begin/end events into completed intervals.
  std::unordered_map<IntervalId, IntervalInfo> open;
  for (const ThreadTrace& t : trace.threads) {
    for (const IntervalEvent& e : t.interval_events) {
      IntervalInfo& info = open[e.sid];
      info.sid = e.sid;
      if (e.kind == IntervalEventKind::kBegin) {
        info.begin_time = e.time;
        info.begin_tid = t.tid;
        info.label = e.label;
        info.has_begin = true;
      } else {
        info.end_time = e.time;
        info.end_tid = t.tid;
        info.has_end = true;
      }
    }
  }
  // Only fully observed intervals are analyzable. Filtering on the event
  // flags (not on end_time > 0) keeps an end-without-begin orphan — whose
  // zero-initialized begin_time would misattribute the whole run prefix —
  // out of the index when the trace is truncated.
  for (auto& [sid, info] : open) {
    if (info.has_begin && info.has_end && info.end_time >= info.begin_time) {
      intervals_.push_back(info);
    }
  }
  std::sort(intervals_.begin(), intervals_.end(),
            [](const IntervalInfo& a, const IntervalInfo& b) { return a.sid < b.sid; });
}

const ThreadTrace* TraceIndex::Thread(ThreadId tid) const {
  if (tid < 0 || static_cast<size_t>(tid) >= tid_to_index_.size()) {
    return nullptr;
  }
  const int idx = tid_to_index_[static_cast<size_t>(tid)];
  return idx < 0 ? nullptr : &trace_->threads[static_cast<size_t>(idx)];
}

int TraceIndex::LastSegmentBefore(ThreadId tid, TimeNs t) const {
  const ThreadTrace* thread = Thread(tid);
  if (thread == nullptr || thread->segments.empty()) {
    return -1;
  }
  // First segment with start >= t, then step back one.
  const auto it = std::lower_bound(
      thread->segments.begin(), thread->segments.end(), t,
      [](const Segment& seg, TimeNs value) { return seg.start < value; });
  const int idx = static_cast<int>(it - thread->segments.begin()) - 1;
  return idx;
}

namespace {

// Recursive walker implementing the Algorithm 2 traversal.
class Walker {
 public:
  Walker(const TraceIndex& index, const CriticalPathOptions& options,
         IntervalBreakdown* out)
      : index_(index), options_(options), out_(out) {}

  // Walks backwards on `tid` from time `hi` down to `lo`. When
  // `target_thread` is true, only segments labeled with the target interval
  // join the path (others count as descheduled time) and created-by edges are
  // followed; when false (waker chains), every executing segment in the
  // window joins the path.
  void Walk(ThreadId tid, TimeNs hi, TimeNs lo, bool target_thread, int depth) {
    if (hi <= lo || depth > options_.max_waker_depth) {
      return;
    }
    const ThreadTrace* thread = index_.Thread(tid);
    if (thread == nullptr) {
      return;
    }
    int idx = index_.LastSegmentBefore(tid, hi);
    TimeNs cursor = hi;
    while (idx >= 0 && cursor > lo) {
      const Segment& seg = thread->segments[static_cast<size_t>(idx)];
      if (seg.end <= lo) {
        break;
      }
      const TimeNs clip_lo = std::max(seg.start, lo);
      const TimeNs clip_hi = std::min(seg.end, cursor);
      if (clip_hi > clip_lo) {
        ProcessSegment(tid, seg, clip_lo, clip_hi, target_thread, depth);
      }
      // Jump across a created-by edge: the target's task began here; the
      // remaining path continues on the producer thread. Also taken on waker
      // chains: when the interval ends on the submitting thread, the walk
      // reaches the worker through the completion wake-up, and the span
      // between enqueue and the task's first segment is queueing delay, not
      // execution the worker did for someone else.
      if (seg.sid == out_->sid && seg.generator_tid != kNoThread &&
          seg.generator_time >= 0 && seg.generator_time < clip_lo) {
        out_->queue_wait_ns += static_cast<double>(clip_lo - std::max(seg.generator_time, lo));
        Walk(seg.generator_tid, std::max(seg.generator_time, lo), lo, true,
             depth);
        return;
      }
      cursor = clip_lo;
      --idx;
    }
  }

 private:
  void ProcessSegment(ThreadId tid, const Segment& seg, TimeNs clip_lo,
                      TimeNs clip_hi, bool target_thread, int depth) {
    const bool on_path = !target_thread || seg.sid == out_->sid;
    if (!on_path) {
      // The thread ran other work between two segments of the target.
      out_->descheduled_ns += static_cast<double>(clip_hi - clip_lo);
      return;
    }
    switch (seg.state) {
      case SegmentState::kExecuting:
        out_->windows.push_back(PathWindow{tid, clip_lo, clip_hi});
        break;
      case SegmentState::kBlocked:
        if (target_thread && options_.has_coverage &&
            options_.has_coverage(tid, clip_lo, clip_hi)) {
          // An instrumented wait function spans this blocked time: attribute
          // it there (os_event_wait-style accounting).
          out_->windows.push_back(PathWindow{tid, clip_lo, clip_hi});
          break;
        }
        if (seg.waker_tid != kNoThread && seg.waker_tid != tid &&
            seg.waker_time > clip_lo) {
          // The blocked span was spent waiting for the waker: follow it.
          Walk(seg.waker_tid, std::min(seg.waker_time, clip_hi), clip_lo,
               /*target_thread=*/false, depth + 1);
        } else {
          out_->blocked_wait_ns += static_cast<double>(clip_hi - clip_lo);
        }
        break;
      case SegmentState::kQueueWait:
        out_->queue_wait_ns += static_cast<double>(clip_hi - clip_lo);
        break;
    }
  }

  const TraceIndex& index_;
  const CriticalPathOptions& options_;
  IntervalBreakdown* out_;
};

}  // namespace

IntervalBreakdown BuildBreakdown(const TraceIndex& index,
                                 const TraceIndex::IntervalInfo& info,
                                 const CriticalPathOptions& options) {
  IntervalBreakdown out;
  out.sid = info.sid;
  out.begin_time = info.begin_time;
  out.end_time = info.end_time;
  Walker walker(index, options, &out);
  walker.Walk(info.end_tid, info.end_time, info.begin_time,
              /*target_thread=*/true, /*depth=*/0);
  return out;
}

std::vector<IntervalBreakdown> BuildBreakdowns(const TraceIndex& index,
                                               const CriticalPathOptions& options) {
  std::vector<IntervalBreakdown> out;
  out.reserve(index.Intervals().size());
  for (const auto& info : index.Intervals()) {
    if (options.filter_by_label && info.label != options.label_filter) {
      continue;
    }
    out.push_back(BuildBreakdown(index, info, options));
  }
  return out;
}

}  // namespace vprof
