// Satellite: event-loop stress, designed to run under TSan (scripts/check.sh
// --net). Three things race on purpose:
//   - connection churn: clients connect, pipeline a few requests, and close
//     (sometimes mid-reply) as fast as they can,
//   - tracing epoch flips: StartTracing/StopTracing cycles concurrently, so
//     interval begins, probe scopes, queue edges and reply handoffs straddle
//     epoch boundaries,
//   - engine stop / server shutdown racing in-flight requests.
// The handlers are stubs (plus a workers=1 minidb case — the btree is only
// TSan-clean single-writer): the subject under test is the front-end's
// synchronization, not the engines.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/minidb/engine.h"
#include "src/net/client.h"
#include "src/net/frontend.h"
#include "src/net/server.h"
#include "src/vprof/runtime.h"

namespace net {
namespace {

using namespace std::chrono_literals;

Frame StubReply(const Frame& request) {
  Frame reply;
  reply.type = MsgType::kTxnReply;
  reply.value = request.request_id;
  return reply;
}

void ChurnClients(uint16_t port, std::atomic<bool>* stop, uint64_t seed) {
  uint64_t state = seed;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  while (!stop->load(std::memory_order_acquire)) {
    BlockingClient client;
    if (!client.Connect(port)) {
      std::this_thread::sleep_for(1ms);
      continue;
    }
    const uint64_t requests = 1 + next() % 3;
    for (uint64_t id = 1; id <= requests; ++id) {
      Frame request;
      request.type = MsgType::kTxn;
      request.request_id = id;
      request.txn.type = minidb::TxnType::kOrderStatus;
      if (!client.Send(request)) {
        break;
      }
    }
    if (next() % 4 != 0) {  // 3/4 read replies, 1/4 slam the door
      Frame reply;
      for (uint64_t i = 0; i < requests; ++i) {
        if (!client.Recv(&reply, 200)) {
          break;
        }
      }
    }
    client.Close();
  }
}

TEST(NetStressTest, ChurnVsTracingEpochFlips) {
  NetServerOptions options;
  options.workers = 2;
  options.max_dispatch_depth = 32;
  NetServer server(options, StubReply);
  ASSERT_TRUE(server.Start());

  std::atomic<bool> stop{false};
  std::vector<std::thread> churners;
  for (int i = 0; i < 2; ++i) {
    churners.emplace_back(ChurnClients, server.port(), &stop,
                          0x1234 + 7777ull * i);
  }
  // Epoch flipper: every begin/end/probe/queue-edge in flight when the epoch
  // turns must either land in the old run or be dropped — never corrupt.
  std::thread flipper([&stop] {
    while (!stop.load(std::memory_order_acquire)) {
      vprof::StartTracing();
      std::this_thread::sleep_for(20ms);
      const vprof::Trace trace = vprof::StopTracing();
      (void)trace;
      std::this_thread::sleep_for(5ms);
    }
  });

  std::this_thread::sleep_for(1200ms);
  stop.store(true, std::memory_order_release);
  for (auto& churner : churners) {
    churner.join();
  }
  flipper.join();
  server.Shutdown();

  const NetServerStats stats = server.stats();
  EXPECT_GT(stats.accepted, 0u);
  EXPECT_GT(stats.replies_sent + stats.replies_dropped + stats.rejected, 0u);
}

TEST(NetStressTest, ShutdownRacesInFlightRequests) {
  for (int round = 0; round < 5; ++round) {
    NetServerOptions options;
    options.workers = 2;
    NetServer server(options, [](const Frame& request) {
      std::this_thread::sleep_for(2ms);
      return StubReply(request);
    });
    ASSERT_TRUE(server.Start());

    std::atomic<bool> stop{false};
    std::thread churner(ChurnClients, server.port(), &stop, 0x9999 + round);
    std::this_thread::sleep_for(50ms);
    server.Shutdown();  // while the churner is mid-conversation
    stop.store(true, std::memory_order_release);
    churner.join();
  }
  SUCCEED();
}

TEST(NetStressTest, EngineStopUnderLoadAnswersEveryone) {
  // workers=1 keeps minidb's btree single-writer (TSan-clean); the race
  // under test is Engine::Stop against requests mid-dispatch.
  minidb::EngineConfig config = minidb::EngineConfig::MemoryResident();
  minidb::Engine engine(config);
  NetServerOptions options;
  options.workers = 1;
  NetServer server(options, MakeMinidbHandler(&engine));
  ASSERT_TRUE(server.Start());

  std::atomic<bool> stop{false};
  std::thread churner(ChurnClients, server.port(), &stop, 0xabcd);
  std::this_thread::sleep_for(150ms);
  engine.Stop();  // refuses new transactions; in-flight ones drain
  std::this_thread::sleep_for(100ms);
  stop.store(true, std::memory_order_release);
  churner.join();
  server.Shutdown();

  // The server stayed up throughout: post-Stop requests were answered (as
  // aborts), not dropped on the floor.
  EXPECT_GT(server.stats().replies_sent, 0u);
}

}  // namespace
}  // namespace net
