// Blocking loopback client for tests and closed-loop comparisons. The
// open-loop generator (workload/openloop.h) drives its own non-blocking
// connection pool; this one is for the simple cases: connect, send a frame,
// wait for the matching reply.
#ifndef SRC_NET_CLIENT_H_
#define SRC_NET_CLIENT_H_

#include <cstdint>
#include <vector>

#include "src/net/protocol.h"
#include "src/net/socket.h"

namespace net {

class BlockingClient {
 public:
  BlockingClient() = default;

  bool Connect(uint16_t port);
  void Close() { fd_.reset(); }
  bool connected() const { return fd_.valid(); }
  int fd() const { return fd_.get(); }

  // Writes one encoded frame, handling partial writes. False on error.
  bool Send(const Frame& frame);

  // Sends raw bytes as-is — the fuzz/corruption tests speak garbage on
  // purpose.
  bool SendRaw(const void* data, size_t size);

  // Blocks (poll + read) until one complete frame arrives or `timeout_ms`
  // elapses. False on timeout, EOF, or protocol error from the server side.
  bool Recv(Frame* out, int timeout_ms = 5000);

  // Send + Recv; requires an otherwise-quiet connection (no pipelining).
  bool Call(const Frame& request, Frame* reply, int timeout_ms = 5000);

 private:
  Fd fd_;
  FrameParser parser_;
  std::vector<Frame> pending_;  // frames decoded ahead of Recv
};

}  // namespace net

#endif  // SRC_NET_CLIENT_H_
