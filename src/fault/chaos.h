// Seeded chaos orchestration over the failpoint registry.
//
// A ChaosOrchestrator composes the repository's existing failpoints (disk
// write/fsync errors, stalls, torn writes, crash triggers) into a
// time-scheduled fault storm: overlapping bursts of armed failpoints plus
// kill-and-recover cycles. The whole storm is generated up front from one
// seed — same seed, same targets, same options ⇒ bit-identical event trail
// and bit-identical arming sequence — so any failure a storm uncovers is
// replayable by re-running the seed.
//
// Time is logical: the driver calls Step() once per unit of work (e.g. every
// K transactions), and the orchestrator applies every planned event whose
// step has arrived. Load threads never call Step(); one driver thread owns
// the clock while workers merely hit the armed failpoints, which keeps the
// *schedule* deterministic even when the *hits* are not (multi-threaded
// storms assert invariants; single-threaded sweeps assert bit-exact state).
//
// Faults are armed/disarmed by failpoint name. Crash/recover cycles go
// through named callback pairs supplied by the harness (e.g. "minidb" ⇒
// {engine kill via RedoLog::Crash, RedoLog::Recover}), because recovery is
// engine-specific while scheduling is not. A crash event first disarms every
// failpoint this orchestrator armed — a dead process takes its fault
// injectors with it — and the matching recover event re-opens the system;
// bursts scheduled after the recovery re-arm naturally. Cycles are placed in
// disjoint step ranges so a storm never crashes an already-crashed system.
#ifndef SRC_FAULT_CHAOS_H_
#define SRC_FAULT_CHAOS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/fault/failpoint.h"

namespace fault {

// A named kill/recover pair for one crashable component.
struct ChaosCrashSite {
  std::string name;              // rendered into the trail, e.g. "minidb"
  std::function<void()> crash;   // kill the component now
  std::function<void()> recover; // bring it back (replay/truncate/reopen)
};

// What the orchestrator may act on.
struct ChaosTargets {
  // Armable failpoint names, e.g. "redo-disk/fsync_error", "wal0/stall",
  // "statstore/write_error", "redo/crash_mid_batch".
  std::vector<std::string> faults;
  // Kill/recover cycles; may be empty (faults-only storm).
  std::vector<ChaosCrashSite> crash_sites;
};

struct ChaosOptions {
  // Logical length of the storm; events land on steps in [0, horizon_steps).
  uint64_t horizon_steps = 1000;

  // Fault bursts: each burst arms 1..max_overlap faults near a common start
  // step, each for its own seeded duration.
  uint64_t bursts = 6;
  uint64_t max_overlap = 3;
  uint64_t min_burst_steps = 20;
  uint64_t max_burst_steps = 200;

  // Kill-and-recover cycles, one per disjoint slice of the horizon. Ignored
  // when the targets carry no crash sites.
  uint64_t crash_cycles = 2;
  uint64_t min_downtime_steps = 10;
  uint64_t max_downtime_steps = 60;

  // Probability-trigger intensity range for armed faults.
  double min_probability = 0.02;
  double max_probability = 0.35;

  // Upper bound (exclusive) for valued triggers on failpoints that consume a
  // payload (e.g. the tear offset of */crash_mid_batch). 0 disables valued
  // triggers.
  uint64_t value_bound = 4096;
};

struct ChaosEvent {
  enum class Kind : uint8_t { kArm, kDisarm, kCrash, kRecover };

  uint64_t step = 0;
  Kind kind = Kind::kArm;
  std::string target;  // failpoint name, or crash-site name
  Trigger trigger;     // kArm only
};

const char* ChaosEventKindName(ChaosEvent::Kind kind);

// Renders one event as a stable single-line string (no pointers, no
// addresses): "@42 arm redo-disk/fsync_error every_nth(3)".
std::string ChaosEventString(const ChaosEvent& event);

class ChaosOrchestrator {
 public:
  // Generates the full storm plan immediately; nothing is armed until
  // Step() reaches the first event.
  ChaosOrchestrator(uint64_t seed, ChaosTargets targets, ChaosOptions options);

  // Finish() semantics without requiring an explicit call.
  ~ChaosOrchestrator();

  ChaosOrchestrator(const ChaosOrchestrator&) = delete;
  ChaosOrchestrator& operator=(const ChaosOrchestrator&) = delete;

  // Advances the logical clock by `steps` and applies every due event, in
  // plan order. Single driver thread only.
  void Step(uint64_t steps = 1);

  // True once the clock has passed the last planned event.
  bool done() const;

  // Fast-forwards through all remaining events (so every crash is followed
  // by its recover), then disarms anything still armed. The system is left
  // recovered and failpoint-free. Idempotent.
  void Finish();

  uint64_t current_step() const { return current_step_; }

  // The generated plan, in application order — identical for equal
  // (seed, targets-names, options).
  const std::vector<ChaosEvent>& plan() const { return plan_; }

  // Events applied so far.
  uint64_t applied() const { return applied_; }

  // Newline-separated ChaosEventString of the applied prefix of the plan;
  // the determinism tests compare this across runs byte for byte.
  std::string TrailString() const;

  uint64_t crashes_injected() const { return crashes_injected_; }
  uint64_t recoveries() const { return recoveries_; }

 private:
  void GeneratePlan(uint64_t seed);
  void Apply(const ChaosEvent& event);

  const ChaosTargets targets_;
  const ChaosOptions options_;

  std::vector<ChaosEvent> plan_;
  size_t applied_ = 0;
  uint64_t current_step_ = 0;
  bool finished_ = false;

  std::vector<std::string> armed_;  // failpoints this orchestrator armed
  uint64_t crashes_injected_ = 0;
  uint64_t recoveries_ = 0;
};

}  // namespace fault

#endif  // SRC_FAULT_CHAOS_H_
