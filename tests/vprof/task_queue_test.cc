#include "src/vprof/task_queue.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/simio/disk.h"

namespace vprof {
namespace {

class TaskQueueTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (IsTracing()) {
      StopTracing();
    }
  }
};

TEST_F(TaskQueueTest, FifoOrder) {
  TaskQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_EQ(q.Pop(), 3);
}

TEST_F(TaskQueueTest, TryPopEmptyReturnsNullopt) {
  TaskQueue<int> q;
  EXPECT_FALSE(q.TryPop().has_value());
  q.Push(9);
  EXPECT_EQ(q.TryPop(), 9);
}

TEST_F(TaskQueueTest, PushIfBelowRejectsAtLimit) {
  TaskQueue<int> q;
  EXPECT_TRUE(q.PushIfBelow(1, 2));
  EXPECT_TRUE(q.PushIfBelow(2, 2));
  EXPECT_FALSE(q.PushIfBelow(3, 2));  // queue holds 2 already
  EXPECT_EQ(q.Size(), 2u);
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_TRUE(q.PushIfBelow(3, 2));  // slot freed by the Pop
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_EQ(q.Pop(), 3);
}

TEST_F(TaskQueueTest, CloseWakesBlockedConsumer) {
  TaskQueue<int> q;
  std::optional<int> result = 42;
  std::thread consumer([&] { result = q.Pop(); });
  simio::SleepUs(5000);
  q.Close();
  consumer.join();
  EXPECT_FALSE(result.has_value());
}

TEST_F(TaskQueueTest, DrainsBeforeCloseTakesEffect) {
  TaskQueue<int> q;
  q.Push(5);
  q.Close();
  EXPECT_EQ(q.Pop(), 5);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST_F(TaskQueueTest, ManyProducersManyConsumers) {
  TaskQueue<int> q;
  constexpr int kPerProducer = 2000;
  std::atomic<int64_t> sum{0};
  std::vector<std::thread> workers;
  for (int p = 0; p < 3; ++p) {
    workers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        q.Push(p * kPerProducer + i);
      }
    });
  }
  std::atomic<int> consumed{0};
  for (int c = 0; c < 3; ++c) {
    workers.emplace_back([&] {
      while (auto item = q.Pop()) {
        sum.fetch_add(*item);
        consumed.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < 3; ++p) {
    workers[static_cast<size_t>(p)].join();
  }
  q.Close();
  for (size_t c = 3; c < workers.size(); ++c) {
    workers[c].join();
  }
  EXPECT_EQ(consumed.load(), 3 * kPerProducer);
  const int64_t n = 3 * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST_F(TaskQueueTest, PopAttachesCreatedByEdge) {
  StartTracing();
  CurrentThread();
  TaskQueue<int> q;
  const ThreadId producer_tid = CurrentThread()->tid();
  std::thread consumer([&] {
    const auto item = q.Pop();
    ASSERT_TRUE(item.has_value());
    // The dequeue protocol: the edge attaches to the task's interval-labeled
    // execution, so the consumer relabels before doing the work.
    WorkOnBehalf(7);
    simio::SleepUs(1000);
    WorkOnBehalf(kNoInterval);
  });
  simio::SleepUs(5000);  // let the consumer block on the empty queue
  q.Push(1);
  consumer.join();
  const Trace trace = StopTracing();
  bool found_queue_wait = false;
  bool found_edge = false;
  for (const ThreadTrace& t : trace.threads) {
    for (const Segment& seg : t.segments) {
      if (seg.state == SegmentState::kQueueWait) {
        found_queue_wait = true;
      }
      if (seg.generator_tid == producer_tid && seg.generator_time >= 0) {
        found_edge = true;
        EXPECT_LE(seg.generator_time, seg.start);
      }
    }
  }
  EXPECT_TRUE(found_queue_wait);
  EXPECT_TRUE(found_edge);
}

TEST_F(TaskQueueTest, SizeReflectsContents) {
  TaskQueue<int> q;
  EXPECT_EQ(q.Size(), 0u);
  q.Push(1);
  q.Push(2);
  EXPECT_EQ(q.Size(), 2u);
  q.Pop();
  EXPECT_EQ(q.Size(), 1u);
}

}  // namespace
}  // namespace vprof
