// Focused tests for the httpd request path pieces: page-cache eviction,
// filter-chain composition, and allocation accounting along the path.
#include <gtest/gtest.h>

#include "src/httpd/filters.h"

namespace httpd {
namespace {

simio::DiskConfig FastDisk() {
  simio::DiskConfig config;
  config.read_mu = 0.5;
  config.serialize_access = false;
  return config;
}

class CalmEnvironment : public ::testing::Environment {
 public:
  void SetUp() override { GlobalFreeList::SetPressureOverrideForTesting(0); }
  void TearDown() override {
    GlobalFreeList::SetPressureOverrideForTesting(-1);
  }
};
const auto* const kCalm =
    ::testing::AddGlobalTestEnvironment(new CalmEnvironment());

TEST(PageCacheTest, EvictionOnCapacity) {
  simio::Disk disk(FastDisk());
  PageCache cache(2, &disk);
  cache.ReadFile(1, 100);
  cache.ReadFile(2, 100);
  cache.ReadFile(3, 100);  // evicts one of {1,2}
  EXPECT_EQ(disk.reads(), 3u);
  // File 3 is definitely resident.
  EXPECT_TRUE(cache.ReadFile(3, 100));
  // At least one of the earlier files was evicted: re-reading both must
  // produce at least one new disk read.
  const uint64_t before = disk.reads();
  cache.ReadFile(1, 100);
  cache.ReadFile(2, 100);
  EXPECT_GT(disk.reads(), before);
}

TEST(FiltersTest, ContentLengthAddsOneBucket) {
  GlobalFreeList list(32, false);
  BucketAllocator alloc(&list, false);
  Brigade brigade(&alloc);
  brigade.Append(BucketType::kHeap, 169);
  Filter core{Filter::Kind::kCoreOutput, nullptr};
  Filter content_length{Filter::Kind::kContentLength, &core};
  ApPassBrigade(&content_length, &brigade);
  EXPECT_EQ(brigade.buckets().size(), 2u);
  EXPECT_EQ(brigade.buckets().back().bytes, 16u);
}

TEST(FiltersTest, HeaderFilterUsesBasicHttpHeader) {
  GlobalFreeList list(32, false);
  BucketAllocator alloc(&list, false);
  Brigade brigade(&alloc);
  Filter core{Filter::Kind::kCoreOutput, nullptr};
  Filter header{Filter::Kind::kHeader, &core};
  ApPassBrigade(&header, &brigade);
  // basic_http_header appends status line + headers buckets.
  ASSERT_EQ(brigade.buckets().size(), 2u);
  EXPECT_EQ(brigade.buckets()[0].bytes, 128u);
  EXPECT_EQ(brigade.buckets()[1].bytes, 64u);
}

TEST(FiltersTest, NullChainIsSafe) {
  GlobalFreeList list(8, false);
  BucketAllocator alloc(&list, false);
  Brigade brigade(&alloc);
  ApPassBrigade(nullptr, &brigade);  // must not crash
  EXPECT_TRUE(brigade.buckets().empty());
}

TEST(FiltersTest, FileOpenAppendsFileBucketAndReads) {
  simio::Disk disk(FastDisk());
  PageCache cache(8, &disk);
  GlobalFreeList list(32, false);
  BucketAllocator alloc(&list, false);
  Brigade brigade(&alloc);
  AprFileOpen(42, 169, &brigade, &cache);
  ASSERT_EQ(brigade.buckets().size(), 1u);
  EXPECT_EQ(brigade.buckets()[0].type, BucketType::kFile);
  EXPECT_EQ(brigade.buckets()[0].bytes, 169u);
  EXPECT_EQ(disk.reads(), 1u);  // cold cache
  AprFileOpen(42, 169, &brigade, &cache);
  EXPECT_EQ(disk.reads(), 1u);  // warm cache
}

TEST(BrigadeTest, TotalBytesSumsBuckets) {
  GlobalFreeList list(16, false);
  BucketAllocator alloc(&list, false);
  Brigade brigade(&alloc);
  brigade.Append(BucketType::kHeap, 10);
  brigade.Append(BucketType::kFile, 20);
  brigade.Append(BucketType::kEos, 0);
  EXPECT_EQ(brigade.TotalBytes(), 30u);
  brigade.Clear();
  EXPECT_EQ(brigade.TotalBytes(), 0u);
}

}  // namespace
}  // namespace httpd
