// Regression detection over per-epoch metric streams.
//
// Each series gets a decayed Welford accumulator (statkit/decay.h) as its
// baseline. An observation that lands outside mean +/- k*sigma of that
// baseline — with a sigma floor so a near-constant series doesn't flag on
// noise, and an absolute-shift floor so tiny wobbles of a tiny factor are
// ignored — raises a RegressionFlag. The paper's factor-contribution
// streams are the intended input: a factor whose variance share migrates
// (lock wait -> log flush after a config change, fil_flush spiking under a
// degrading device) shifts by tens of percentage points within an epoch or
// two, while a steady workload's shares wobble well inside the band.
//
// After flagging, the outlier is still folded into the baseline: if the
// shift is the new normal the baseline re-centers at the decay rate and the
// flag clears; a cooldown suppresses duplicate flags for the same series
// while it re-centers.
#ifndef SRC_STATSTORE_REGRESSION_H_
#define SRC_STATSTORE_REGRESSION_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/statkit/decay.h"

namespace statstore {

struct RegressionOptions {
  // Flag when |value - mean| > max(k_sigma * max(sigma, sigma_floor),
  // min_abs_shift).
  double k_sigma = 6.0;
  double sigma_floor = 0.0;
  double min_abs_shift = 0.0;

  // Baseline half-life in epochs (0 = cumulative, never forgets).
  double half_life_epochs = 64.0;

  // Observations a series must accumulate before it can flag; a fresh
  // series' first values ARE its baseline, not regressions from it.
  uint64_t warmup_epochs = 8;

  // Epochs after a flag during which the same series stays silent while the
  // baseline re-centers.
  uint64_t cooldown_epochs = 8;

  // Flags retained for flags(); older ones are dropped FIFO.
  size_t max_flags = 256;
};

struct RegressionFlag {
  std::string series;
  uint64_t epoch = 0;
  double value = 0.0;
  double baseline_mean = 0.0;
  double baseline_sigma = 0.0;

  // Signed shift in sigma units (positive = above baseline).
  double sigmas = 0.0;
};

class RegressionDetector {
 public:
  explicit RegressionDetector(const RegressionOptions& options = {});

  // Feeds one epoch's value of `series`; returns true if a flag was raised.
  bool Observe(const std::string& series, uint64_t epoch, double value);

  // Most recent flags, oldest first (bounded by options.max_flags).
  std::vector<RegressionFlag> flags() const;

  uint64_t flag_count() const;     // flags ever raised
  size_t series_count() const;     // series with a baseline

  // Baseline mean/sigma of one series (0/0 if unknown), for introspection.
  bool Baseline(const std::string& series, double* mean, double* sigma) const;

 private:
  struct SeriesState {
    statkit::DecayedMoments baseline;
    uint64_t observations = 0;
    uint64_t cooldown_until = 0;  // epoch before which flags are suppressed
  };

  const RegressionOptions options_;
  const double gamma_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, SeriesState> series_;
  std::deque<RegressionFlag> flags_;
  uint64_t flag_count_ = 0;
};

}  // namespace statstore

#endif  // SRC_STATSTORE_REGRESSION_H_
