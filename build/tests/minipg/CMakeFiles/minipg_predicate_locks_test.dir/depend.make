# Empty dependencies file for minipg_predicate_locks_test.
# This may be replaced when dependencies are built.
