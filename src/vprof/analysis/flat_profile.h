// Flat per-function profile computed directly from a trace: call counts and
// duration moments per function, gprof-style but with variance — the
// "conventional profiler" view that the paper contrasts VProfiler against.
// Useful as a first look before running the semantic-interval analysis.
#ifndef SRC_VPROF_ANALYSIS_FLAT_PROFILE_H_
#define SRC_VPROF_ANALYSIS_FLAT_PROFILE_H_

#include <string>
#include <vector>

#include "src/vprof/trace.h"

namespace vprof {

struct FunctionStats {
  FuncId func = kInvalidFunc;
  std::string name;
  uint64_t calls = 0;
  double total_ns = 0.0;
  double mean_ns = 0.0;
  double stddev_ns = 0.0;
  double min_ns = 0.0;
  double max_ns = 0.0;
  // Self time: total minus time spent in recorded child invocations.
  double self_ns = 0.0;
};

// Per-function stats over all invocations in the trace, sorted by descending
// total time.
std::vector<FunctionStats> ComputeFlatProfile(const Trace& trace);

// Text table of the flat profile.
std::string FormatFlatProfile(const std::vector<FunctionStats>& profile,
                              size_t max_rows = 20);

}  // namespace vprof

#endif  // SRC_VPROF_ANALYSIS_FLAT_PROFILE_H_
