#include "src/fault/chaos.h"

#include <algorithm>
#include <cstdio>

#include "src/statkit/rng.h"

namespace fault {

namespace {

// Whether a failpoint consumes a Trigger payload (byte offsets for torn /
// mid-batch sites); those get one-shot valued triggers so the value is spent
// on a single deterministic firing.
bool WantsValue(const std::string& name) {
  return name.find("mid_batch") != std::string::npos ||
         name.find("torn_write") != std::string::npos;
}

Trigger PickTrigger(statkit::Rng& rng, const ChaosOptions& options,
                    const std::string& failpoint) {
  if (options.value_bound > 0 && WantsValue(failpoint)) {
    return Trigger::OneShotWithValue(rng.NextBelow(options.value_bound),
                                     rng.NextBelow(4));
  }
  const uint64_t roll = rng.NextBelow(10);
  if (roll < 4) {
    return Trigger::EveryNth(2 + rng.NextBelow(7));
  }
  if (roll < 8) {
    const double span = options.max_probability - options.min_probability;
    const double p = options.min_probability + span * rng.NextDouble();
    return Trigger::Probability(p, rng.Next());
  }
  if (roll < 9) {
    return Trigger::OneShot(rng.NextBelow(4));
  }
  return Trigger::Always();
}

std::string TriggerString(const Trigger& trigger) {
  char buf[96];
  switch (trigger.kind) {
    case Trigger::Kind::kAlways:
      if (trigger.value != Trigger::kNoValue) {
        std::snprintf(buf, sizeof(buf), "always(value=%llu)",
                      static_cast<unsigned long long>(trigger.value));
      } else {
        std::snprintf(buf, sizeof(buf), "always");
      }
      break;
    case Trigger::Kind::kOneShot:
      if (trigger.value != Trigger::kNoValue) {
        std::snprintf(buf, sizeof(buf), "one_shot(skip=%llu, value=%llu)",
                      static_cast<unsigned long long>(trigger.skip),
                      static_cast<unsigned long long>(trigger.value));
      } else {
        std::snprintf(buf, sizeof(buf), "one_shot(skip=%llu)",
                      static_cast<unsigned long long>(trigger.skip));
      }
      break;
    case Trigger::Kind::kEveryNth:
      std::snprintf(buf, sizeof(buf), "every_nth(%llu)",
                    static_cast<unsigned long long>(trigger.n));
      break;
    case Trigger::Kind::kProbability:
      std::snprintf(buf, sizeof(buf), "prob(%.4f, seed=%llu)", trigger.p,
                    static_cast<unsigned long long>(trigger.seed));
      break;
  }
  return buf;
}

}  // namespace

const char* ChaosEventKindName(ChaosEvent::Kind kind) {
  switch (kind) {
    case ChaosEvent::Kind::kArm:
      return "arm";
    case ChaosEvent::Kind::kDisarm:
      return "disarm";
    case ChaosEvent::Kind::kCrash:
      return "crash";
    case ChaosEvent::Kind::kRecover:
      return "recover";
  }
  return "?";
}

std::string ChaosEventString(const ChaosEvent& event) {
  std::string out = "@" + std::to_string(event.step) + " " +
                    ChaosEventKindName(event.kind) + " " + event.target;
  if (event.kind == ChaosEvent::Kind::kArm) {
    out += " " + TriggerString(event.trigger);
  }
  return out;
}

ChaosOrchestrator::ChaosOrchestrator(uint64_t seed, ChaosTargets targets,
                                     ChaosOptions options)
    : targets_(std::move(targets)), options_(options) {
  GeneratePlan(seed);
}

ChaosOrchestrator::~ChaosOrchestrator() { Finish(); }

void ChaosOrchestrator::GeneratePlan(uint64_t seed) {
  statkit::Rng rng(seed);
  const uint64_t horizon = std::max<uint64_t>(1, options_.horizon_steps);

  if (!targets_.faults.empty()) {
    const uint64_t overlap_bound = std::max<uint64_t>(1, options_.max_overlap);
    const uint64_t min_len = std::max<uint64_t>(1, options_.min_burst_steps);
    const uint64_t max_len = std::max(min_len, options_.max_burst_steps);
    for (uint64_t b = 0; b < options_.bursts; ++b) {
      const uint64_t start = rng.NextBelow(horizon);
      const uint64_t overlap = 1 + rng.NextBelow(overlap_bound);
      for (uint64_t i = 0; i < overlap; ++i) {
        const std::string& failpoint =
            targets_.faults[rng.NextBelow(targets_.faults.size())];
        // Faults of one burst start within a few steps of each other so
        // their active windows genuinely overlap.
        const uint64_t arm_step =
            std::min(horizon - 1, start + rng.NextBelow(8));
        const uint64_t length = static_cast<uint64_t>(rng.NextInRange(
            static_cast<int64_t>(min_len), static_cast<int64_t>(max_len)));
        const uint64_t disarm_step = std::min(horizon - 1, arm_step + length);
        ChaosEvent arm;
        arm.step = arm_step;
        arm.kind = ChaosEvent::Kind::kArm;
        arm.target = failpoint;
        arm.trigger = PickTrigger(rng, options_, failpoint);
        plan_.push_back(arm);
        ChaosEvent disarm;
        disarm.step = disarm_step;
        disarm.kind = ChaosEvent::Kind::kDisarm;
        disarm.target = failpoint;
        plan_.push_back(disarm);
      }
    }
  }

  // One kill/recover cycle per disjoint slice of the horizon, so a cycle
  // never crashes a system another cycle has not yet recovered.
  if (!targets_.crash_sites.empty() && options_.crash_cycles > 0) {
    const uint64_t slice = horizon / options_.crash_cycles;
    const uint64_t min_down = std::max<uint64_t>(1, options_.min_downtime_steps);
    for (uint64_t c = 0; c < options_.crash_cycles; ++c) {
      uint64_t down = static_cast<uint64_t>(
          rng.NextInRange(static_cast<int64_t>(min_down),
                          static_cast<int64_t>(
                              std::max(min_down, options_.max_downtime_steps))));
      if (down + 2 > slice) {
        // Slice too narrow for this cycle; a shorter storm simply gets
        // fewer crashes.
        continue;
      }
      const ChaosCrashSite& site =
          targets_.crash_sites[rng.NextBelow(targets_.crash_sites.size())];
      const uint64_t lo = c * slice;
      const uint64_t at = lo + rng.NextBelow(slice - down - 1);
      ChaosEvent crash;
      crash.step = at;
      crash.kind = ChaosEvent::Kind::kCrash;
      crash.target = site.name;
      plan_.push_back(crash);
      ChaosEvent recover;
      recover.step = at + down;
      recover.kind = ChaosEvent::Kind::kRecover;
      recover.target = site.name;
      plan_.push_back(recover);
    }
  }

  // Stable sort keeps generation order among same-step events, so the
  // applied sequence — not just the set — is seed-deterministic.
  std::stable_sort(plan_.begin(), plan_.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) {
                     return a.step < b.step;
                   });
}

void ChaosOrchestrator::Apply(const ChaosEvent& event) {
  switch (event.kind) {
    case ChaosEvent::Kind::kArm:
      Activate(event.target, event.trigger);
      armed_.push_back(event.target);
      break;
    case ChaosEvent::Kind::kDisarm: {
      Deactivate(event.target);
      auto it = std::find(armed_.begin(), armed_.end(), event.target);
      if (it != armed_.end()) {
        armed_.erase(it);
      }
      break;
    }
    case ChaosEvent::Kind::kCrash: {
      // A dead process takes its injectors with it.
      for (const std::string& name : armed_) {
        Deactivate(name);
      }
      armed_.clear();
      for (const ChaosCrashSite& site : targets_.crash_sites) {
        if (site.name == event.target) {
          if (site.crash) {
            site.crash();
          }
          break;
        }
      }
      ++crashes_injected_;
      break;
    }
    case ChaosEvent::Kind::kRecover: {
      for (const ChaosCrashSite& site : targets_.crash_sites) {
        if (site.name == event.target) {
          if (site.recover) {
            site.recover();
          }
          break;
        }
      }
      ++recoveries_;
      break;
    }
  }
}

void ChaosOrchestrator::Step(uint64_t steps) {
  if (finished_) {
    return;
  }
  current_step_ += steps;
  while (applied_ < plan_.size() && plan_[applied_].step <= current_step_) {
    Apply(plan_[applied_]);
    ++applied_;
  }
}

bool ChaosOrchestrator::done() const { return applied_ >= plan_.size(); }

void ChaosOrchestrator::Finish() {
  if (finished_) {
    return;
  }
  while (applied_ < plan_.size()) {
    Apply(plan_[applied_]);
    ++applied_;
  }
  if (current_step_ < options_.horizon_steps) {
    current_step_ = options_.horizon_steps;
  }
  for (const std::string& name : armed_) {
    Deactivate(name);
  }
  armed_.clear();
  finished_ = true;
}

std::string ChaosOrchestrator::TrailString() const {
  std::string out;
  for (size_t i = 0; i < applied_; ++i) {
    out += ChaosEventString(plan_[i]);
    out += '\n';
  }
  return out;
}

}  // namespace fault
