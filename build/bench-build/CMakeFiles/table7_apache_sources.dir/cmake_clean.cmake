file(REMOVE_RECURSE
  "../bench/table7_apache_sources"
  "../bench/table7_apache_sources.pdb"
  "CMakeFiles/table7_apache_sources.dir/table7_apache_sources.cc.o"
  "CMakeFiles/table7_apache_sources.dir/table7_apache_sources.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_apache_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
