// Exponentially-decayed streaming moment accumulators for the online
// profiling service's sliding-window statistics.
//
// DecayedMoments/DecayedCovariance are the weighted (West 1979) forms of the
// accumulators in welford.h plus a Scale() operation that ages the window:
// multiplying the accumulated weight and second moment by gamma in (0, 1)
// discounts every past observation by gamma without touching the mean, so
// applying Scale once per epoch yields exponentially-weighted statistics
// with an effective window of 1 / (1 - gamma) epochs.
//
// Seeded() constructs an accumulator equivalent to one that already observed
// `weight` worth of zeros (or of (mean_x, mean_y) pairs with zero co-moment).
// The online variance tree uses this when a node first appears mid-stream:
// intervals before the node existed genuinely contributed zero time to it,
// and seeding keeps its weight aligned with every other node's so the
// variance decomposition identity still holds across the whole tree.
#ifndef SRC_STATKIT_DECAY_H_
#define SRC_STATKIT_DECAY_H_

#include <cmath>

namespace statkit {

// Weighted streaming mean/variance with exponential forgetting.
class DecayedMoments {
 public:
  DecayedMoments() = default;

  // Accumulator state equivalent to having observed `weight` zeros.
  static DecayedMoments Seeded(double weight) {
    DecayedMoments m;
    m.weight_ = weight;
    return m;
  }

  void Add(double x, double w = 1.0) {
    weight_ += w;
    const double delta = x - mean_;
    mean_ += delta * w / weight_;
    m2_ += w * delta * (x - mean_);
  }

  // Discounts all past observations by `factor` (the decay step). The mean
  // is weight-invariant and stays put; weight and m2 shrink together so
  // variance() is unchanged by aging alone.
  void Scale(double factor) {
    weight_ *= factor;
    m2_ *= factor;
  }

  double weight() const { return weight_; }
  double mean() const { return weight_ > 0.0 ? mean_ : 0.0; }

  // Population-form variance (see welford.h for why the project uses it).
  double variance() const { return weight_ > 0.0 ? m2_ / weight_ : 0.0; }
  double stddev() const { return std::sqrt(variance()); }

 private:
  double weight_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

// Weighted streaming covariance with exponential forgetting.
class DecayedCovariance {
 public:
  DecayedCovariance() = default;

  // State equivalent to `weight` observations of exactly (mean_x, mean_y):
  // the means are fixed, the co-moment is zero. Used when a sibling pair
  // starts being tracked mid-stream: the later-born sibling contributed a
  // constant zero before, so the pair's past covariance is exactly zero.
  static DecayedCovariance Seeded(double weight, double mean_x, double mean_y) {
    DecayedCovariance c;
    c.weight_ = weight;
    c.mean_x_ = mean_x;
    c.mean_y_ = mean_y;
    return c;
  }

  void Add(double x, double y, double w = 1.0) {
    weight_ += w;
    const double dx = x - mean_x_;
    mean_x_ += dx * w / weight_;
    mean_y_ += (y - mean_y_) * w / weight_;
    // Co-moment form of Welford: uses the post-update mean_y_.
    comoment_ += w * dx * (y - mean_y_);
  }

  void Scale(double factor) {
    weight_ *= factor;
    comoment_ *= factor;
  }

  double weight() const { return weight_; }
  double mean_x() const { return mean_x_; }
  double mean_y() const { return mean_y_; }

  // Population-form covariance.
  double covariance() const {
    return weight_ > 0.0 ? comoment_ / weight_ : 0.0;
  }

 private:
  double weight_ = 0.0;
  double mean_x_ = 0.0;
  double mean_y_ = 0.0;
  double comoment_ = 0.0;
};

// Per-epoch decay factor for a half-life given in epochs; 0 disables decay
// (gamma = 1: the infinite cumulative window).
inline double DecayFactorForHalfLife(double half_life_epochs) {
  return half_life_epochs > 0.0 ? std::exp2(-1.0 / half_life_epochs) : 1.0;
}

}  // namespace statkit

#endif  // SRC_STATKIT_DECAY_H_
