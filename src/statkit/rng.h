// Deterministic pseudo-random number generation for workloads and simulators.
//
// All stochastic behaviour in this repository (disk latency, workload mixes,
// request sizes) flows through statkit::Rng so that experiments are replayable
// from a single seed. The generator is xoshiro256**, seeded via SplitMix64.
#ifndef SRC_STATKIT_RNG_H_
#define SRC_STATKIT_RNG_H_

#include <cstdint>
#include <limits>

namespace statkit {

// Small, fast, high-quality PRNG (xoshiro256**). Not cryptographically secure.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { Seed(seed); }

  // Re-seeds the full 256-bit state from a 64-bit seed using SplitMix64.
  void Seed(uint64_t seed) {
    for (auto& word : state_) {
      word = SplitMix64(&seed);
    }
  }

  // Returns the next 64 pseudo-random bits.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) {
    // Multiply-shift rejection-free mapping; bias is negligible for the bounds
    // used in this project (all far below 2^32).
    return static_cast<uint64_t>((static_cast<__uint128_t>(Next()) * bound) >> 64);
  }

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Returns true with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  // UniformRandomBitGenerator interface for use with <random> adaptors.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<uint64_t>::max(); }
  result_type operator()() { return Next(); }

 private:
  static uint64_t SplitMix64(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace statkit

#endif  // SRC_STATKIT_RNG_H_
