#include "src/net/protocol.h"

#include <cstring>

namespace net {

namespace {

void PutU16(std::string* out, uint16_t v) {
  for (int i = 0; i < 2; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

int64_t GetI64(const uint8_t* p) { return static_cast<int64_t>(GetU64(p)); }

bool ValidType(uint8_t t) {
  switch (static_cast<MsgType>(t)) {
    case MsgType::kTxn:
    case MsgType::kHttpGet:
    case MsgType::kPing:
    case MsgType::kClockSync:
    case MsgType::kTxnReply:
    case MsgType::kHttpReply:
    case MsgType::kPong:
    case MsgType::kRejected:
    case MsgType::kError:
    case MsgType::kClockSyncReply:
      return true;
  }
  return false;
}

// Exact payload byte counts for the fixed-size types; -1 = variable (kTxn).
int FixedPayloadBytes(MsgType type) {
  switch (type) {
    case MsgType::kTxn:
      return -1;
    case MsgType::kHttpGet:
      return 8;
    case MsgType::kPing:
    case MsgType::kPong:
    case MsgType::kRejected:
      return 0;
    case MsgType::kClockSync:
      return 8;  // t1
    case MsgType::kClockSyncReply:
      return 16;  // t1 echo + t2
    case MsgType::kTxnReply:
      return 10;  // status + error + trx id
    case MsgType::kHttpReply:
      return 9;  // status + bytes served
    case MsgType::kError:
      return 1;  // WireError
  }
  return -1;
}

// Serialized extension payload sizes.
constexpr uint8_t kTraceContextBytes = 8 + 8 + 1 + 8;
constexpr uint8_t kServerTimingBytes = 8 + 8 + 8 + 4;

}  // namespace

const char* ServiceName(ServiceId service) {
  switch (service) {
    case ServiceId::kUnknown:
      return "unknown";
    case ServiceId::kFront:
      return "front";
    case ServiceId::kMinidb:
      return "minidb";
    case ServiceId::kMinipg:
      return "minipg";
  }
  return "?";
}

const char* WireErrorName(WireError error) {
  switch (error) {
    case WireError::kOk:
      return "ok";
    case WireError::kNeedMore:
      return "need_more";
    case WireError::kOversized:
      return "oversized";
    case WireError::kBadType:
      return "bad_type";
    case WireError::kBadPayload:
      return "bad_payload";
    case WireError::kBadExtension:
      return "bad_extension";
  }
  return "?";
}

void EncodeFrame(const Frame& frame, std::string* out) {
  const size_t length_at = out->size();
  PutU32(out, 0);  // patched below
  const bool has_ext = frame.has_trace_context || frame.has_server_timing;
  out->push_back(static_cast<char>(static_cast<uint8_t>(frame.type) |
                                   (has_ext ? kExtensionFlag : 0)));
  PutU64(out, frame.request_id);
  if (has_ext) {
    const uint8_t count = static_cast<uint8_t>(
        (frame.has_trace_context ? 1 : 0) + (frame.has_server_timing ? 1 : 0));
    out->push_back(static_cast<char>(count));
    if (frame.has_trace_context) {
      out->push_back(static_cast<char>(ExtType::kTraceContext));
      out->push_back(static_cast<char>(kTraceContextBytes));
      PutU64(out, frame.trace_context.interval_id);
      PutU64(out, frame.trace_context.span_id);
      out->push_back(static_cast<char>(frame.trace_context.origin_service));
      PutI64(out, frame.trace_context.send_time_ns);
    }
    if (frame.has_server_timing) {
      out->push_back(static_cast<char>(ExtType::kServerTiming));
      out->push_back(static_cast<char>(kServerTimingBytes));
      PutU64(out, frame.server_timing.span_id);
      PutI64(out, frame.server_timing.recv_time_ns);
      PutI64(out, frame.server_timing.reply_time_ns);
      PutU32(out, static_cast<uint32_t>(frame.server_timing.worker_tid));
    }
  }
  switch (frame.type) {
    case MsgType::kTxn: {
      out->push_back(static_cast<char>(frame.txn.type));
      PutU32(out, static_cast<uint32_t>(frame.txn.warehouse));
      PutU32(out, static_cast<uint32_t>(frame.txn.district));
      PutU64(out, static_cast<uint64_t>(frame.txn.customer));
      PutU16(out, static_cast<uint16_t>(frame.txn.items.size()));
      for (int64_t item : frame.txn.items) {
        PutU64(out, static_cast<uint64_t>(item));
      }
      break;
    }
    case MsgType::kHttpGet:
      PutU64(out, frame.file_id);
      break;
    case MsgType::kPing:
    case MsgType::kPong:
    case MsgType::kRejected:
      break;
    case MsgType::kClockSync:
      PutI64(out, frame.t1_ns);
      break;
    case MsgType::kClockSyncReply:
      PutI64(out, frame.t1_ns);
      PutI64(out, frame.t2_ns);
      break;
    case MsgType::kTxnReply:
      out->push_back(static_cast<char>(frame.status));
      out->push_back(static_cast<char>(frame.error));
      PutU64(out, frame.value);
      break;
    case MsgType::kHttpReply:
      out->push_back(static_cast<char>(frame.status));
      PutU64(out, frame.value);
      break;
    case MsgType::kError:
      out->push_back(static_cast<char>(frame.error));
      break;
  }
  const uint32_t length =
      static_cast<uint32_t>(out->size() - length_at - kLengthBytes);
  for (int i = 0; i < 4; ++i) {
    (*out)[length_at + static_cast<size_t>(i)] =
        static_cast<char>((length >> (8 * i)) & 0xff);
  }
}

WireError DecodeFrame(const uint8_t* data, size_t size, Frame* out,
                      size_t* consumed) {
  *consumed = 0;
  if (size < kLengthBytes) {
    return WireError::kNeedMore;
  }
  const uint32_t length = GetU32(data);
  // A length that cannot even hold type + request_id is as malformed as an
  // oversized one; both mean the stream is not speaking this protocol.
  if (length < kFrameOverhead || length > kMaxFrameBytes) {
    return WireError::kOversized;
  }
  if (size < kLengthBytes + length) {
    return WireError::kNeedMore;
  }
  const uint8_t* p = data + kLengthBytes;
  const uint8_t wire_type = p[0];
  const uint8_t base_type = wire_type & static_cast<uint8_t>(~kExtensionFlag);
  if (!ValidType(base_type)) {
    return WireError::kBadType;
  }
  Frame frame;
  frame.type = static_cast<MsgType>(base_type);
  frame.request_id = GetU64(p + 1);

  // Optional header-extension block between the request id and the payload.
  const uint8_t* q = p + kFrameOverhead;
  const uint8_t* frame_end = p + length;
  if (wire_type & kExtensionFlag) {
    if (q >= frame_end) {
      return WireError::kBadExtension;
    }
    const uint8_t count = *q++;
    if (count == 0 || count > kMaxExtensions) {
      return WireError::kBadExtension;
    }
    for (uint8_t i = 0; i < count; ++i) {
      if (frame_end - q < 2) {
        return WireError::kBadExtension;
      }
      const uint8_t ext_type = q[0];
      const uint8_t ext_len = q[1];
      q += 2;
      if (frame_end - q < ext_len) {
        return WireError::kBadExtension;
      }
      switch (static_cast<ExtType>(ext_type)) {
        case ExtType::kTraceContext: {
          if (ext_len != kTraceContextBytes) {
            return WireError::kBadExtension;
          }
          frame.trace_context.interval_id = GetU64(q);
          frame.trace_context.span_id = GetU64(q + 8);
          const uint8_t service = q[16];
          if (service > static_cast<uint8_t>(ServiceId::kMinipg)) {
            return WireError::kBadExtension;
          }
          frame.trace_context.origin_service = static_cast<ServiceId>(service);
          frame.trace_context.send_time_ns = GetI64(q + 17);
          frame.has_trace_context = true;
          break;
        }
        case ExtType::kServerTiming: {
          if (ext_len != kServerTimingBytes) {
            return WireError::kBadExtension;
          }
          frame.server_timing.span_id = GetU64(q);
          frame.server_timing.recv_time_ns = GetI64(q + 8);
          frame.server_timing.reply_time_ns = GetI64(q + 16);
          frame.server_timing.worker_tid =
              static_cast<int32_t>(GetU32(q + 24));
          frame.has_server_timing = true;
          break;
        }
        default:
          break;  // unknown extension: skip, old peers stay compatible
      }
      q += ext_len;
    }
  }
  const uint8_t* payload = q;
  const size_t payload_len = static_cast<size_t>(frame_end - q);

  const int fixed = FixedPayloadBytes(frame.type);
  if (fixed >= 0 && payload_len != static_cast<size_t>(fixed)) {
    return WireError::kBadPayload;
  }
  switch (frame.type) {
    case MsgType::kTxn: {
      // u8 txn type | u32 warehouse | u32 district | u64 customer |
      // u16 n_items | u64 items[n]  — exact size, bounded item count.
      if (payload_len < 1 + 4 + 4 + 8 + 2) {
        return WireError::kBadPayload;
      }
      const uint8_t txn_type = payload[0];
      if (txn_type > static_cast<uint8_t>(minidb::TxnType::kStockLevel)) {
        return WireError::kBadPayload;
      }
      frame.txn.type = static_cast<minidb::TxnType>(txn_type);
      frame.txn.warehouse = static_cast<int>(GetU32(payload + 1));
      frame.txn.district = static_cast<int>(GetU32(payload + 5));
      frame.txn.customer = static_cast<int64_t>(GetU64(payload + 9));
      const uint16_t n = GetU16(payload + 17);
      if (n > kMaxTxnItems || payload_len != 1 + 4 + 4 + 8 + 2 + 8ull * n) {
        return WireError::kBadPayload;
      }
      frame.txn.items.resize(n);
      for (uint16_t i = 0; i < n; ++i) {
        frame.txn.items[i] = static_cast<int64_t>(GetU64(payload + 19 + 8 * i));
      }
      break;
    }
    case MsgType::kHttpGet:
      frame.file_id = GetU64(payload);
      break;
    case MsgType::kPing:
    case MsgType::kPong:
    case MsgType::kRejected:
      break;
    case MsgType::kClockSync:
      frame.t1_ns = GetI64(payload);
      break;
    case MsgType::kClockSyncReply:
      frame.t1_ns = GetI64(payload);
      frame.t2_ns = GetI64(payload + 8);
      break;
    case MsgType::kTxnReply:
      frame.status = payload[0];
      frame.error = payload[1];
      if (frame.error > static_cast<uint8_t>(minidb::TxnError::kShutdown)) {
        return WireError::kBadPayload;
      }
      frame.value = GetU64(payload + 2);
      break;
    case MsgType::kHttpReply:
      frame.status = payload[0];
      frame.value = GetU64(payload + 1);
      break;
    case MsgType::kError:
      frame.error = payload[0];
      if (frame.error > static_cast<uint8_t>(WireError::kBadExtension)) {
        return WireError::kBadPayload;
      }
      break;
  }
  *out = std::move(frame);
  *consumed = kLengthBytes + length;
  return WireError::kOk;
}

WireError FrameParser::Feed(const uint8_t* data, size_t size,
                            std::vector<Frame>* out) {
  if (error_ != WireError::kOk) {
    return error_;  // poisoned: nothing after a violation may dispatch
  }
  // Common case: no partial frame buffered — parse in place, buffer only the
  // trailing prefix. Otherwise append and parse out of the buffer.
  const uint8_t* cursor = data;
  size_t remaining = size;
  if (!buffer_.empty()) {
    buffer_.insert(buffer_.end(), data, data + size);
    cursor = buffer_.data();
    remaining = buffer_.size();
  }
  size_t offset = 0;
  while (true) {
    Frame frame;
    size_t consumed = 0;
    const WireError err =
        DecodeFrame(cursor + offset, remaining - offset, &frame, &consumed);
    if (err == WireError::kOk) {
      out->push_back(std::move(frame));
      offset += consumed;
      continue;
    }
    if (err == WireError::kNeedMore) {
      break;
    }
    if (err == WireError::kBadType || err == WireError::kBadExtension) {
      // Frame-local violation with a trustworthy length (DecodeFrame only
      // reports these once the whole declared frame is in the buffer): skip
      // exactly this frame and surface it so the server answers a typed
      // kError instead of killing the connection. Version skew — a newer
      // peer's frame type or extension — must not poison the stream.
      const uint8_t* f = cursor + offset;
      const uint32_t length = GetU32(f);
      Frame skipped;
      skipped.decode_error = err;
      skipped.raw_type = f[kLengthBytes];
      skipped.request_id = GetU64(f + kLengthBytes + 1);
      out->push_back(std::move(skipped));
      ++recovered_frames_;
      offset += kLengthBytes + length;
      continue;
    }
    error_ = err;
    buffer_.clear();
    return err;
  }
  if (buffer_.empty()) {
    buffer_.assign(cursor + offset, cursor + remaining);
  } else {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(offset));
  }
  return WireError::kOk;
}

}  // namespace net
