// Heap table with a B-tree clustered index, backed by the buffer pool.
//
// Row data lives in memory (we model page I/O through the buffer pool, not
// byte storage); every row access pins the containing page so that buffer
// pool behaviour — hits, LRU maintenance, miss I/O — is driven by the
// workload's true access pattern.
#ifndef SRC_MINIDB_TABLE_H_
#define SRC_MINIDB_TABLE_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/minidb/btree.h"
#include "src/minidb/buffer_pool.h"

namespace minidb {

struct Row {
  int64_t key = 0;
  uint64_t version = 0;
  // Money column for the TPC-C conservation invariant: committed
  // transactions move balance between rows in zero-sum transfers, so the
  // sum over all tables is constant under any crash/abort schedule.
  int64_t balance = 0;
  std::array<uint8_t, 96> payload{};
};

class Table {
 public:
  // `table_id` must be unique per engine; lock object ids and page ids are
  // derived from it.
  Table(std::string name, uint32_t table_id, int rows_per_page, BufferPool* pool);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  uint32_t table_id() const { return table_id_; }

  // Lock-manager object id for a row.
  uint64_t LockObjectId(int64_t key) const {
    return (static_cast<uint64_t>(table_id_) << 48) |
           (static_cast<uint64_t>(key) & 0xffffffffffffull);
  }

  // Buffer-pool page holding a row.
  PageId PageOf(int64_t key) const {
    return (static_cast<uint64_t>(table_id_) << 48) |
           (static_cast<uint64_t>(key) / static_cast<uint64_t>(rows_per_page_));
  }

  // Bulk load during initialization: no page I/O, no locks.
  void LoadRow(int64_t key);

  // Reads the row (pins its page). Returns false if absent.
  bool ReadRow(int64_t key, Row* out);

  // Mutates the row in place (pins its page for write); bumps version.
  bool UpdateRow(int64_t key);

  // Inserts a new row (pins its page for write). Returns false if the key
  // already exists.
  bool InsertRow(int64_t key);

  // Adds `delta` to the row's balance (no page pin: the caller holds the
  // row's X lock and already pinned the page in this transaction). No-op on
  // an absent row. Returns the applied delta (0 if absent).
  int64_t ApplyDelta(int64_t key, int64_t delta);

  // Sum of all row balances; O(rows), for invariant checks at quiesce.
  int64_t SumBalances() const;

  // Order-independent FNV digest over (key, version, balance) of every row;
  // the chaos determinism sweep compares post-recovery digests across
  // replays.
  uint64_t StateDigest() const;

  BTree& index() { return index_; }
  vprof::Mutex& index_latch() { return index_latch_; }
  size_t row_count() const;

 private:
  // Simulates the row-level computation (checksum over the payload); this is
  // the "inherent work" component of each access.
  static uint64_t ChecksumWork(const Row& row);

  std::string name_;
  uint32_t table_id_;
  int rows_per_page_;
  BufferPool* pool_;

  mutable std::mutex rows_mu_;
  std::unordered_map<int64_t, Row> rows_;

  vprof::Mutex index_latch_;
  BTree index_;
};

}  // namespace minidb

#endif  // SRC_MINIDB_TABLE_H_
