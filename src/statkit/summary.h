// Batch summary statistics over a latency sample.
#ifndef SRC_STATKIT_SUMMARY_H_
#define SRC_STATKIT_SUMMARY_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace statkit {

// One-shot summary of a sample: moments plus exact percentiles. The input is
// copied and sorted internally.
struct Summary {
  uint64_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  // population variance
  double stddev = 0.0;
  double cv = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;

  std::string ToString() const;
};

// Computes a Summary from the sample (empty input yields a zero Summary).
Summary Summarize(std::span<const double> sample);

// Exact percentile (nearest-rank with interpolation) of a sorted sample.
double PercentileOfSorted(std::span<const double> sorted, double p);

// Relative change (a -> b) expressed as the percentage reduction, i.e.
// 100 * (a - b) / a. Positive means b improved on a. Returns 0 when a == 0.
double ReductionPercent(double a, double b);

}  // namespace statkit

#endif  // SRC_STATKIT_SUMMARY_H_
