// Edge cases of the offline analysis: empty traces, degenerate intervals,
// single samples, and factor aggregation corner cases.
#include <gtest/gtest.h>

#include "src/vprof/analysis/factor_selection.h"
#include "src/vprof/analysis/variance_tree.h"
#include "tests/vprof/trace_builder.h"

namespace vprof {
namespace {

using vprof_test::TraceBuilder;

TEST(AnalysisEdgeTest, EmptyTraceYieldsEmptyAnalysis) {
  Trace empty;
  VarianceAnalysis analysis(empty);
  EXPECT_EQ(analysis.interval_count(), 0u);
  EXPECT_DOUBLE_EQ(analysis.overall_variance(), 0.0);
  EXPECT_EQ(analysis.TreeHeight(), 0);
}

TEST(AnalysisEdgeTest, SingleIntervalHasZeroVariance) {
  TraceBuilder tb;
  tb.Begin(0, 1, 0).End(0, 1, 1000);
  tb.Exec(0, 1, 0, 1000);
  tb.Invoke(0, "ae_only", 0, 800, -1, 1);
  VarianceAnalysis analysis(tb.Build());
  EXPECT_EQ(analysis.interval_count(), 1u);
  EXPECT_DOUBLE_EQ(analysis.overall_variance(), 0.0);
  EXPECT_DOUBLE_EQ(analysis.overall_mean(), 1000.0);
}

TEST(AnalysisEdgeTest, ZeroLengthIntervalHandled) {
  TraceBuilder tb;
  tb.Begin(0, 1, 500).End(0, 1, 500);
  tb.Exec(0, 1, 0, 1000);
  VarianceAnalysis analysis(tb.Build());
  EXPECT_EQ(analysis.interval_count(), 1u);
  EXPECT_DOUBLE_EQ(analysis.overall_mean(), 0.0);
}

TEST(AnalysisEdgeTest, IntervalWithNoSegmentsStillCounted) {
  TraceBuilder tb;
  tb.Begin(0, 1, 100).End(0, 1, 300);
  // No segments at all: the latency still lands at the root.
  VarianceAnalysis analysis(tb.Build());
  EXPECT_EQ(analysis.interval_count(), 1u);
  EXPECT_DOUBLE_EQ(analysis.overall_mean(), 200.0);
}

TEST(AnalysisEdgeTest, FactorsOnEmptyAnalysisAreEmpty) {
  Trace empty;
  VarianceAnalysis analysis(empty);
  CallGraph graph;
  graph.AddFunction("ae_root");
  const auto factors = AggregateFactors(
      analysis, graph, RegisterFunction("ae_root"), SpecificityKind::kQuadratic);
  for (const Factor& factor : factors) {
    EXPECT_DOUBLE_EQ(factor.contribution, 0.0);
  }
}

TEST(AnalysisEdgeTest, NegativeCovarianceReported) {
  // Two children that perfectly anti-correlate: their covariance factor is
  // negative and the parent's variance is zero.
  TraceBuilder tb;
  const std::vector<TimeNs> first = {100, 400, 250, 350};
  for (size_t i = 0; i < first.size(); ++i) {
    const TimeNs base = static_cast<TimeNs>(i) * 10000;
    const IntervalId sid = static_cast<IntervalId>(i + 1);
    const TimeNs mid = base + first[i];
    const TimeNs end = base + 500;  // constant total
    tb.Begin(0, sid, base).End(0, sid, end);
    tb.Exec(0, sid, base, end);
    const int root = tb.Invoke(0, "ae_parent", base, end, -1, sid);
    tb.Invoke(0, "ae_x", base, mid, root, sid);
    tb.Invoke(0, "ae_y", mid, end, root, sid);
  }
  VarianceAnalysis analysis(tb.Build());
  EXPECT_DOUBLE_EQ(analysis.overall_variance(), 0.0);
  bool found_negative = false;
  for (const SiblingCovariance& cov : analysis.covariances()) {
    if (cov.covariance < 0.0) {
      found_negative = true;
    }
  }
  EXPECT_TRUE(found_negative);
}

TEST(AnalysisEdgeTest, LabelFilterSelectsIntervalClass) {
  // Two interval classes: label 1 (fast, constant) and label 2 (slow,
  // variable). Filtering isolates each class's profile.
  TraceBuilder tb;
  for (int i = 0; i < 4; ++i) {
    const TimeNs base = i * 100000;
    const IntervalId fast_sid = static_cast<IntervalId>(i * 2 + 1);
    const IntervalId slow_sid = static_cast<IntervalId>(i * 2 + 2);
    tb.Begin(0, fast_sid, base, /*label=*/1).End(0, fast_sid, base + 100);
    tb.Exec(0, fast_sid, base, base + 100);
    const TimeNs slow_base = base + 50000;
    const TimeNs slow_end = slow_base + 1000 + i * 500;
    tb.Begin(0, slow_sid, slow_base, /*label=*/2).End(0, slow_sid, slow_end);
    tb.Exec(0, slow_sid, slow_base, slow_end);
  }
  const Trace trace = tb.Build();

  CriticalPathOptions fast_only;
  fast_only.filter_by_label = true;
  fast_only.label_filter = 1;
  VarianceAnalysis fast(trace, fast_only);
  EXPECT_EQ(fast.interval_count(), 4u);
  EXPECT_DOUBLE_EQ(fast.overall_mean(), 100.0);
  EXPECT_DOUBLE_EQ(fast.overall_variance(), 0.0);

  CriticalPathOptions slow_only;
  slow_only.filter_by_label = true;
  slow_only.label_filter = 2;
  VarianceAnalysis slow(trace, slow_only);
  EXPECT_EQ(slow.interval_count(), 4u);
  EXPECT_GT(slow.overall_variance(), 0.0);

  VarianceAnalysis all(trace);
  EXPECT_EQ(all.interval_count(), 8u);
}

TEST(AnalysisEdgeTest, BackgroundInvocationsOutsideIntervalsIgnored) {
  TraceBuilder tb;
  tb.Begin(0, 1, 1000).End(0, 1, 2000);
  tb.Exec(0, 1, 1000, 2000);
  tb.Invoke(0, "ae_in", 1000, 1500, -1, 1);
  // Background thread activity entirely outside the interval.
  tb.Exec(1, 0, 0, 5000);
  tb.Invoke(1, "ae_background", 0, 5000, -1, 0);
  VarianceAnalysis analysis(tb.Build());
  for (size_t i = 1; i < analysis.node_count(); ++i) {
    const auto id = static_cast<NodeId>(i);
    if (analysis.NodeLabel(id) == "ae_background") {
      EXPECT_DOUBLE_EQ(analysis.NodeMean(id), 0.0);
    }
    if (analysis.NodeLabel(id) == "ae_in") {
      EXPECT_DOUBLE_EQ(analysis.NodeMean(id), 500.0);
    }
  }
}

}  // namespace
}  // namespace vprof
