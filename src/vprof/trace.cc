#include "src/vprof/trace.h"

#include <cstdio>
#include <memory>

#include "src/vprof/registry.h"

namespace vprof {

uint64_t Trace::invocation_count() const {
  uint64_t n = 0;
  for (const ThreadTrace& t : threads) {
    n += t.invocations.size();
  }
  return n;
}

uint64_t Trace::segment_count() const {
  uint64_t n = 0;
  for (const ThreadTrace& t : threads) {
    n += t.segments.size();
  }
  return n;
}

uint64_t Trace::dropped_record_count() const {
  uint64_t n = 0;
  for (const ThreadTrace& t : threads) {
    n += t.dropped_records;
  }
  return n;
}

uint64_t Trace::interval_count() const {
  uint64_t n = 0;
  for (const ThreadTrace& t : threads) {
    for (const IntervalEvent& e : t.interval_events) {
      if (e.kind == IntervalEventKind::kEnd) {
        ++n;
      }
    }
  }
  return n;
}

namespace {

constexpr uint32_t kMagic = 0x56505246;  // "VPRF"
constexpr uint32_t kVersion = 2;         // v2: IntervalEvent carries a label

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteBytes(std::FILE* f, const void* data, size_t size) {
  return std::fwrite(data, 1, size, f) == size;
}

bool ReadBytes(std::FILE* f, void* data, size_t size) {
  return std::fread(data, 1, size, f) == size;
}

template <typename T>
bool WritePod(std::FILE* f, const T& value) {
  return WriteBytes(f, &value, sizeof(T));
}

template <typename T>
bool ReadPod(std::FILE* f, T* value) {
  return ReadBytes(f, value, sizeof(T));
}

bool WriteString(std::FILE* f, const std::string& s) {
  const uint64_t size = s.size();
  return WritePod(f, size) && WriteBytes(f, s.data(), s.size());
}

template <typename T>
bool WriteVector(std::FILE* f, const std::vector<T>& v) {
  const uint64_t size = v.size();
  return WritePod(f, size) && WriteBytes(f, v.data(), v.size() * sizeof(T));
}

// Bytes left between the cursor and EOF; bounds every length-prefixed read
// so a corrupt size field cannot trigger a huge allocation.
uint64_t RemainingBytes(std::FILE* f, uint64_t file_size) {
  const long pos = std::ftell(f);
  if (pos < 0 || static_cast<uint64_t>(pos) > file_size) {
    return 0;
  }
  return file_size - static_cast<uint64_t>(pos);
}

TraceLoadStatus ReadStringChecked(std::FILE* f, uint64_t file_size,
                                  std::string* s) {
  uint64_t size = 0;
  if (!ReadPod(f, &size)) {
    return TraceLoadStatus::kTruncated;
  }
  if (size > (1ull << 20)) {
    return TraceLoadStatus::kCorrupt;
  }
  if (size > RemainingBytes(f, file_size)) {
    return TraceLoadStatus::kTruncated;
  }
  s->resize(size);
  return ReadBytes(f, s->data(), size) ? TraceLoadStatus::kOk
                                       : TraceLoadStatus::kTruncated;
}

template <typename T>
TraceLoadStatus ReadVectorChecked(std::FILE* f, uint64_t file_size,
                                  std::vector<T>* v) {
  uint64_t size = 0;
  if (!ReadPod(f, &size)) {
    return TraceLoadStatus::kTruncated;
  }
  if (size > (1ull << 32)) {
    return TraceLoadStatus::kCorrupt;
  }
  if (size * sizeof(T) > RemainingBytes(f, file_size)) {
    return TraceLoadStatus::kTruncated;
  }
  v->resize(size);
  return ReadBytes(f, v->data(), v->size() * sizeof(T))
             ? TraceLoadStatus::kOk
             : TraceLoadStatus::kTruncated;
}

// Field-level validation of one thread's records. Everything checked here
// is indexed or switched on by the analysis layer without further guards.
TraceLoadStatus ValidateThread(const ThreadTrace& t, uint64_t name_count) {
  for (size_t i = 0; i < t.invocations.size(); ++i) {
    const Invocation& inv = t.invocations[i];
    if (inv.func == kInvalidFunc ||
        static_cast<uint64_t>(inv.func) >= name_count) {
      return TraceLoadStatus::kCorrupt;
    }
    // Parents are earlier records on the same thread; a forward or self
    // reference would make the analysis chase a cycle.
    if (inv.parent < -1 || inv.parent >= static_cast<int32_t>(i)) {
      return TraceLoadStatus::kCorrupt;
    }
  }
  for (const Segment& seg : t.segments) {
    if (seg.state != SegmentState::kExecuting &&
        seg.state != SegmentState::kBlocked &&
        seg.state != SegmentState::kQueueWait) {
      return TraceLoadStatus::kCorrupt;
    }
  }
  for (const IntervalEvent& e : t.interval_events) {
    if (e.kind != IntervalEventKind::kBegin &&
        e.kind != IntervalEventKind::kEnd) {
      return TraceLoadStatus::kCorrupt;
    }
  }
  return TraceLoadStatus::kOk;
}

TraceLoadStatus LoadTraceImpl(std::FILE* f, Trace* trace) {
  if (std::fseek(f, 0, SEEK_END) != 0) {
    return TraceLoadStatus::kOpenFailed;
  }
  const long end = std::ftell(f);
  if (end < 0 || std::fseek(f, 0, SEEK_SET) != 0) {
    return TraceLoadStatus::kOpenFailed;
  }
  const uint64_t file_size = static_cast<uint64_t>(end);

  uint32_t magic = 0;
  uint32_t version = 0;
  if (!ReadPod(f, &magic)) {
    return TraceLoadStatus::kTruncated;
  }
  if (magic != kMagic) {
    return TraceLoadStatus::kBadMagic;
  }
  if (!ReadPod(f, &version)) {
    return TraceLoadStatus::kTruncated;
  }
  if (version != kVersion) {
    return TraceLoadStatus::kBadVersion;
  }
  if (!ReadPod(f, &trace->duration)) {
    return TraceLoadStatus::kTruncated;
  }

  uint64_t name_count = 0;
  if (!ReadPod(f, &name_count)) {
    return TraceLoadStatus::kTruncated;
  }
  if (name_count > kMaxFunctions) {
    return TraceLoadStatus::kCorrupt;
  }
  trace->function_names.resize(name_count);
  for (std::string& name : trace->function_names) {
    const TraceLoadStatus status = ReadStringChecked(f, file_size, &name);
    if (status != TraceLoadStatus::kOk) {
      return status;
    }
  }

  uint64_t thread_count = 0;
  if (!ReadPod(f, &thread_count)) {
    return TraceLoadStatus::kTruncated;
  }
  if (thread_count > (1u << 20)) {
    return TraceLoadStatus::kCorrupt;
  }
  trace->threads.resize(thread_count);
  for (ThreadTrace& t : trace->threads) {
    if (!ReadPod(f, &t.tid)) {
      return TraceLoadStatus::kTruncated;
    }
    TraceLoadStatus status = ReadVectorChecked(f, file_size, &t.invocations);
    if (status == TraceLoadStatus::kOk) {
      status = ReadVectorChecked(f, file_size, &t.segments);
    }
    if (status == TraceLoadStatus::kOk) {
      status = ReadVectorChecked(f, file_size, &t.interval_events);
    }
    if (status == TraceLoadStatus::kOk) {
      status = ValidateThread(t, name_count);
    }
    if (status != TraceLoadStatus::kOk) {
      return status;
    }
  }
  return TraceLoadStatus::kOk;
}

}  // namespace

bool SaveTrace(const Trace& trace, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return false;
  }
  if (!WritePod(f.get(), kMagic) || !WritePod(f.get(), kVersion) ||
      !WritePod(f.get(), trace.duration)) {
    return false;
  }
  const uint64_t name_count = trace.function_names.size();
  if (!WritePod(f.get(), name_count)) {
    return false;
  }
  for (const std::string& name : trace.function_names) {
    if (!WriteString(f.get(), name)) {
      return false;
    }
  }
  const uint64_t thread_count = trace.threads.size();
  if (!WritePod(f.get(), thread_count)) {
    return false;
  }
  for (const ThreadTrace& t : trace.threads) {
    if (!WritePod(f.get(), t.tid) || !WriteVector(f.get(), t.invocations) ||
        !WriteVector(f.get(), t.segments) ||
        !WriteVector(f.get(), t.interval_events)) {
      return false;
    }
  }
  return true;
}

const char* TraceLoadStatusName(TraceLoadStatus status) {
  switch (status) {
    case TraceLoadStatus::kOk:
      return "ok";
    case TraceLoadStatus::kOpenFailed:
      return "open_failed";
    case TraceLoadStatus::kBadMagic:
      return "bad_magic";
    case TraceLoadStatus::kBadVersion:
      return "bad_version";
    case TraceLoadStatus::kTruncated:
      return "truncated";
    case TraceLoadStatus::kCorrupt:
      return "corrupt";
  }
  return "unknown";
}

TraceLoadStatus LoadTraceChecked(const std::string& path, Trace* trace) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return TraceLoadStatus::kOpenFailed;
  }
  const TraceLoadStatus status = LoadTraceImpl(f.get(), trace);
  if (status != TraceLoadStatus::kOk) {
    *trace = Trace{};
  }
  return status;
}

bool LoadTrace(const std::string& path, Trace* trace) {
  return LoadTraceChecked(path, trace) == TraceLoadStatus::kOk;
}

}  // namespace vprof
