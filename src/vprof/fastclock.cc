#include "src/vprof/fastclock.h"

#include <atomic>
#include <chrono>

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#include <x86intrin.h>
#define VPROF_HAVE_RDTSC 1
#endif

namespace vprof {
namespace fastclock {

namespace {

using Chrono = std::chrono::steady_clock;

// Ticks→ns conversion is a Q32.32 fixed-point multiply: at 1–5 GHz the
// multiplier is ~0.2–1.0 ns/tick, and the 128-bit product keeps full
// precision for deltas of many days.
constexpr int kFracBits = 32;

// ns_per_tick in Q32.32; 0 while uncalibrated (or on the chrono fallback,
// where ticks already are nanoseconds and the multiplier is exactly 1.0).
std::atomic<uint64_t> g_ns_per_tick_q32{0};
std::atomic<uint64_t> g_epoch_ticks{0};
std::atomic<bool> g_using_tsc{false};

// Chrono-fallback epoch, ns since steady_clock's own epoch.
std::atomic<int64_t> g_chrono_epoch_ns{0};

int64_t ChronoNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Chrono::now().time_since_epoch())
      .count();
}

#ifdef VPROF_HAVE_RDTSC
bool HasInvariantTsc() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(0x80000000u, &eax, &ebx, &ecx, &edx) == 0 ||
      eax < 0x80000007u) {
    return false;
  }
  __get_cpuid(0x80000007u, &eax, &ebx, &ecx, &edx);
  return (edx & (1u << 8)) != 0;  // "Invariant TSC" bit
}
#endif

// One-time calibration. Runs from a static initializer; InitOnce() also
// guards against Now() being reached from another TU's static init first.
void Calibrate() {
#ifdef VPROF_HAVE_RDTSC
  if (HasInvariantTsc()) {
    // Two (chrono, tsc) sample pairs ~10ms apart. The busy-wait keeps both
    // samples on-core and is short enough not to slow process startup.
    const int64_t c0 = ChronoNs();
    const uint64_t t0 = __rdtsc();
    const int64_t target = c0 + 10'000'000;
    int64_t c1 = c0;
    while (c1 < target) {
      c1 = ChronoNs();
    }
    const uint64_t t1 = __rdtsc();
    if (t1 > t0 && c1 > c0) {
      const double ns_per_tick =
          static_cast<double>(c1 - c0) / static_cast<double>(t1 - t0);
      g_using_tsc.store(true, std::memory_order_relaxed);
      g_epoch_ticks.store(t1, std::memory_order_relaxed);
      g_ns_per_tick_q32.store(
          static_cast<uint64_t>(ns_per_tick * (1ull << kFracBits)),
          std::memory_order_relaxed);
      return;
    }
  }
#endif
  g_chrono_epoch_ns.store(ChronoNs(), std::memory_order_relaxed);
  g_ns_per_tick_q32.store(1ull << kFracBits, std::memory_order_relaxed);
}

void InitOnce() {
  if (g_ns_per_tick_q32.load(std::memory_order_relaxed) == 0) {
    Calibrate();
  }
}

struct CalibrateAtStartup {
  CalibrateAtStartup() { InitOnce(); }
};
CalibrateAtStartup g_startup_calibration;

}  // namespace

bool UsingTsc() {
  InitOnce();
  return g_using_tsc.load(std::memory_order_relaxed);
}

double TicksPerNs() {
  InitOnce();
  if (!g_using_tsc.load(std::memory_order_relaxed)) {
    return 0.0;
  }
  const double q = static_cast<double>(
      g_ns_per_tick_q32.load(std::memory_order_relaxed));
  return (1ull << kFracBits) / q;
}

TimeNs NowNs() {
  const uint64_t mult = g_ns_per_tick_q32.load(std::memory_order_relaxed);
  if (mult == 0) [[unlikely]] {
    InitOnce();
    return NowNs();
  }
#ifdef VPROF_HAVE_RDTSC
  if (g_using_tsc.load(std::memory_order_relaxed)) {
    const uint64_t delta =
        __rdtsc() - g_epoch_ticks.load(std::memory_order_relaxed);
    return static_cast<TimeNs>(
        (static_cast<unsigned __int128>(delta) * mult) >> kFracBits);
  }
#endif
  return ChronoNs() - g_chrono_epoch_ns.load(std::memory_order_relaxed);
}

void ResetEpoch() {
  InitOnce();
#ifdef VPROF_HAVE_RDTSC
  if (g_using_tsc.load(std::memory_order_relaxed)) {
    g_epoch_ticks.store(__rdtsc(), std::memory_order_relaxed);
    return;
  }
#endif
  g_chrono_epoch_ns.store(ChronoNs(), std::memory_order_relaxed);
}

}  // namespace fastclock
}  // namespace vprof
