file(REMOVE_RECURSE
  "CMakeFiles/simio.dir/disk.cc.o"
  "CMakeFiles/simio.dir/disk.cc.o.d"
  "libsimio.a"
  "libsimio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
