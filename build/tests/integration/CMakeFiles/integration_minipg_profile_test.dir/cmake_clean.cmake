file(REMOVE_RECURSE
  "CMakeFiles/integration_minipg_profile_test.dir/minipg_profile_test.cc.o"
  "CMakeFiles/integration_minipg_profile_test.dir/minipg_profile_test.cc.o.d"
  "integration_minipg_profile_test"
  "integration_minipg_profile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_minipg_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
