file(REMOVE_RECURSE
  "CMakeFiles/vprof_critical_path_test.dir/critical_path_test.cc.o"
  "CMakeFiles/vprof_critical_path_test.dir/critical_path_test.cc.o.d"
  "vprof_critical_path_test"
  "vprof_critical_path_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vprof_critical_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
