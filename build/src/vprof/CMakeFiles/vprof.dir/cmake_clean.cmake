file(REMOVE_RECURSE
  "CMakeFiles/vprof.dir/analysis/call_graph.cc.o"
  "CMakeFiles/vprof.dir/analysis/call_graph.cc.o.d"
  "CMakeFiles/vprof.dir/analysis/chrome_trace.cc.o"
  "CMakeFiles/vprof.dir/analysis/chrome_trace.cc.o.d"
  "CMakeFiles/vprof.dir/analysis/critical_path.cc.o"
  "CMakeFiles/vprof.dir/analysis/critical_path.cc.o.d"
  "CMakeFiles/vprof.dir/analysis/factor_selection.cc.o"
  "CMakeFiles/vprof.dir/analysis/factor_selection.cc.o.d"
  "CMakeFiles/vprof.dir/analysis/flat_profile.cc.o"
  "CMakeFiles/vprof.dir/analysis/flat_profile.cc.o.d"
  "CMakeFiles/vprof.dir/analysis/profiler.cc.o"
  "CMakeFiles/vprof.dir/analysis/profiler.cc.o.d"
  "CMakeFiles/vprof.dir/analysis/report.cc.o"
  "CMakeFiles/vprof.dir/analysis/report.cc.o.d"
  "CMakeFiles/vprof.dir/analysis/variance_tree.cc.o"
  "CMakeFiles/vprof.dir/analysis/variance_tree.cc.o.d"
  "CMakeFiles/vprof.dir/full_tracer.cc.o"
  "CMakeFiles/vprof.dir/full_tracer.cc.o.d"
  "CMakeFiles/vprof.dir/registry.cc.o"
  "CMakeFiles/vprof.dir/registry.cc.o.d"
  "CMakeFiles/vprof.dir/runtime.cc.o"
  "CMakeFiles/vprof.dir/runtime.cc.o.d"
  "CMakeFiles/vprof.dir/sync.cc.o"
  "CMakeFiles/vprof.dir/sync.cc.o.d"
  "CMakeFiles/vprof.dir/trace.cc.o"
  "CMakeFiles/vprof.dir/trace.cc.o.d"
  "libvprof.a"
  "libvprof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vprof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
