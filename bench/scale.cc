// Multi-core scale-out benchmark (ISSUE: sharded buffer pool + group-commit
// logging + warehouse-partitioned TPC-C). Emits BENCH_scale.json.
//
// Two configurations of minidb sweep 1/2/4/8/16 worker threads:
//   before — one buffer-pool instance, CommitMode::kExclusive (every commit
//            performs its own serialized write+fsync), uniform warehouse
//            draws: the pre-scale-out engine, whose throughput curve is
//            near-flat because one log fsync at a time caps the system.
//   after  — 8 buffer-pool instances, leader-based group commit, and
//            home-warehouse thread affinity: the contended-resource set is
//            split, so the curve climbs with the thread count.
//
// At every point the iterative profiler reports the top-3 variance factors,
// and the harness records the factor-migration sequence — where the #1
// factor changes as threads scale (the paper's workflow: a fix or a scale
// step does not delete variance, it moves the dominant factor elsewhere).
//
// Acceptance (driver-checked): after-curve 8-thread throughput >= 2.5x its
// 1-thread throughput while the before-curve stays near-flat, and at least
// one factor migration is recorded.
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/statkit/summary.h"
#include "src/vprof/analysis/factor_selection.h"

namespace {

const int kThreadCounts[] = {1, 2, 4, 8, 16};
constexpr int kMeasureTxnsPerThread = 150;
constexpr int kProfileTxnsPerThread = 60;
constexpr int kWarmupTxnsPerThread = 60;
constexpr int kWarehouses = 16;  // one home per thread at the widest point

struct FactorShare {
  std::string name;
  double contribution = 0.0;
};

struct ScalePoint {
  int threads = 0;
  double throughput_tps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t committed = 0;
  std::vector<FactorShare> top_factors;
};

struct ScaleConfig {
  const char* name;
  int buffer_pool_instances;
  minidb::CommitMode commit_mode;
  bool partition_by_warehouse;
  std::vector<ScalePoint> points;
};

minidb::EngineConfig EngineFor(const ScaleConfig& sc) {
  minidb::EngineConfig config;
  config.warehouses = kWarehouses;
  // Memory-resident (the paper's 128-WH regime): after the warm-up pass the
  // working set fits, so the curve is shaped by the shared mutexes and the
  // log device — the resources this scale-out work splits — rather than by
  // eviction traffic through the data disk.
  config.buffer_pool_pages = 1 << 16;
  config.buffer_pool_instances = sc.buffer_pool_instances;
  config.commit_mode = sc.commit_mode;
  config.flush_policy = minidb::FlushPolicy::kEager;
  return config;
}

workload::TpccOptions OptionsFor(const ScaleConfig& sc, int threads,
                                 int txns_per_thread) {
  workload::TpccOptions options = bench::TpccQuick(threads, txns_per_thread);
  options.partition_by_warehouse = sc.partition_by_warehouse;
  return options;
}

// Top-k single-function variance factors of a profile, in rank order.
std::vector<FactorShare> TopFactors(const vprof::ProfileResult& result,
                                    size_t k) {
  std::vector<FactorShare> top;
  for (const vprof::Factor& factor : result.all_factors) {
    if (factor.func_b != vprof::kInvalidFunc) {
      continue;  // report single-function factors; covariances echo them
    }
    top.push_back({factor.Label(result.function_names), factor.contribution});
    if (top.size() == k) {
      break;
    }
  }
  return top;
}

ScalePoint MeasurePoint(const ScaleConfig& sc, int threads) {
  ScalePoint point;
  point.threads = threads;

  // Throughput/latency pass: untraced, fresh engine per point so no run
  // inherits another's buffer pool or lock state.
  {
    minidb::Engine engine(EngineFor(sc));
    workload::TpccDriver warmup(
        &engine, OptionsFor(sc, threads, kWarmupTxnsPerThread));
    warmup.Run();
    workload::TpccDriver driver(
        &engine, OptionsFor(sc, threads, kMeasureTxnsPerThread));
    const workload::TpccResult result = driver.Run();
    const statkit::Summary summary = statkit::Summarize(result.latencies_ns);
    point.throughput_tps = result.throughput_tps;
    point.p50_ms = summary.p50 / 1e6;
    point.p99_ms = summary.p99 / 1e6;
    point.committed = result.committed;
  }

  // Profiling pass: the iterative refinement loop on a fresh engine.
  {
    minidb::Engine engine(EngineFor(sc));
    vprof::CallGraph graph;
    minidb::Engine::RegisterCallGraph(&graph);
    workload::TpccDriver warmup(
        &engine, OptionsFor(sc, threads, kWarmupTxnsPerThread));
    warmup.Run();
    workload::TpccDriver driver(
        &engine, OptionsFor(sc, threads, kProfileTxnsPerThread));
    vprof::Profiler profiler("run_transaction", &graph, [&] { driver.Run(); });
    vprof::ProfileOptions profile_options;
    profile_options.top_k = 3;
    profile_options.min_contribution = 0.01;
    const vprof::ProfileResult result = profiler.Run(profile_options);
    point.top_factors = TopFactors(result, 3);
  }
  return point;
}

struct Migration {
  const char* config;
  int at_threads;
  std::string from;
  std::string to;
};

// The #1-factor changes along a config's thread sweep.
std::vector<Migration> Migrations(const ScaleConfig& sc) {
  std::vector<Migration> moves;
  for (size_t i = 1; i < sc.points.size(); ++i) {
    const auto& prev = sc.points[i - 1].top_factors;
    const auto& cur = sc.points[i].top_factors;
    if (prev.empty() || cur.empty() || prev[0].name == cur[0].name) {
      continue;
    }
    moves.push_back(
        {sc.name, sc.points[i].threads, prev[0].name, cur[0].name});
  }
  return moves;
}

void PrintConfig(const ScaleConfig& sc) {
  std::printf("\n  %s (instances=%d, %s, %s)\n", sc.name,
              sc.buffer_pool_instances,
              sc.commit_mode == minidb::CommitMode::kGroupCommit
                  ? "group-commit"
                  : "exclusive-commit",
              sc.partition_by_warehouse ? "partitioned" : "uniform");
  std::printf("  %8s %14s %10s %10s  %s\n", "threads", "tput (txn/s)",
              "p50 (ms)", "p99 (ms)", "top variance factors");
  for (const ScalePoint& p : sc.points) {
    std::string factors;
    for (const FactorShare& f : p.top_factors) {
      char buf[128];
      std::snprintf(buf, sizeof(buf), "%s%s %.1f%%", factors.empty() ? "" : ", ",
                    f.name.c_str(), f.contribution * 100.0);
      factors += buf;
    }
    std::printf("  %8d %14.0f %10.3f %10.3f  %s\n", p.threads,
                p.throughput_tps, p.p50_ms, p.p99_ms, factors.c_str());
  }
}

void EmitJson(const std::vector<ScaleConfig>& configs,
              const std::vector<Migration>& migrations) {
  FILE* json = std::fopen("BENCH_scale.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "scale: cannot write BENCH_scale.json\n");
    std::exit(1);
  }
  std::fprintf(json, "{\n  \"benchmark\": \"scale\",\n");
  std::fprintf(json, "  \"warehouses\": %d,\n", kWarehouses);
  std::fprintf(json, "  \"thread_counts\": [");
  for (size_t i = 0; i < std::size(kThreadCounts); ++i) {
    std::fprintf(json, "%s%d", i == 0 ? "" : ", ", kThreadCounts[i]);
  }
  std::fprintf(json, "],\n  \"configs\": {\n");
  for (size_t c = 0; c < configs.size(); ++c) {
    const ScaleConfig& sc = configs[c];
    std::fprintf(json, "    \"%s\": {\n", sc.name);
    std::fprintf(json, "      \"buffer_pool_instances\": %d,\n",
                 sc.buffer_pool_instances);
    std::fprintf(json, "      \"commit_mode\": \"%s\",\n",
                 sc.commit_mode == minidb::CommitMode::kGroupCommit
                     ? "group_commit"
                     : "exclusive");
    std::fprintf(json, "      \"partition_by_warehouse\": %s,\n",
                 sc.partition_by_warehouse ? "true" : "false");
    std::fprintf(json, "      \"points\": [\n");
    for (size_t i = 0; i < sc.points.size(); ++i) {
      const ScalePoint& p = sc.points[i];
      std::fprintf(json,
                   "        {\"threads\": %d, \"throughput_tps\": %.1f, "
                   "\"p50_ms\": %.4f, \"p99_ms\": %.4f, \"committed\": %llu, "
                   "\"top_factors\": [",
                   p.threads, p.throughput_tps, p.p50_ms, p.p99_ms,
                   static_cast<unsigned long long>(p.committed));
      for (size_t f = 0; f < p.top_factors.size(); ++f) {
        std::fprintf(json, "%s{\"name\": \"%s\", \"contribution\": %.4f}",
                     f == 0 ? "" : ", ", p.top_factors[f].name.c_str(),
                     p.top_factors[f].contribution);
      }
      std::fprintf(json, "]}%s\n", i + 1 < sc.points.size() ? "," : "");
    }
    const double speedup =
        sc.points.front().throughput_tps > 0.0
            ? sc.points[3].throughput_tps / sc.points.front().throughput_tps
            : 0.0;
    std::fprintf(json, "      ],\n      \"speedup_8t_over_1t\": %.3f\n",
                 speedup);
    std::fprintf(json, "    }%s\n", c + 1 < configs.size() ? "," : "");
  }
  std::fprintf(json, "  },\n  \"factor_migrations\": [\n");
  for (size_t m = 0; m < migrations.size(); ++m) {
    std::fprintf(json,
                 "    {\"config\": \"%s\", \"at_threads\": %d, "
                 "\"from\": \"%s\", \"to\": \"%s\"}%s\n",
                 migrations[m].config, migrations[m].at_threads,
                 migrations[m].from.c_str(), migrations[m].to.c_str(),
                 m + 1 < migrations.size() ? "," : "");
  }
  const double after_speedup =
      configs[1].points[3].throughput_tps /
      configs[1].points.front().throughput_tps;
  std::fprintf(json, "  ],\n  \"acceptance\": {\n");
  std::fprintf(json, "    \"after_8t_over_1t\": %.3f,\n", after_speedup);
  std::fprintf(json, "    \"required\": 2.5,\n");
  std::fprintf(json, "    \"pass\": %s\n",
               after_speedup >= 2.5 ? "true" : "false");
  std::fprintf(json, "  }\n}\n");
  std::fclose(json);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "scale — TPC-C throughput curve, before vs after scale-out");
  std::printf("Expected shape: exclusive-commit single-instance throughput is\n"
              "near-flat (one fsync at a time caps the system); sharding the\n"
              "pool + group commit + warehouse affinity lets the curve climb,\n"
              "and the dominant variance factor migrates as threads scale.\n");

  std::vector<ScaleConfig> configs;
  configs.push_back({"before", 1, minidb::CommitMode::kExclusive, false, {}});
  configs.push_back({"after", 8, minidb::CommitMode::kGroupCommit, true, {}});

  for (ScaleConfig& sc : configs) {
    for (int threads : kThreadCounts) {
      sc.points.push_back(MeasurePoint(sc, threads));
    }
    PrintConfig(sc);
  }

  std::vector<Migration> migrations;
  for (const ScaleConfig& sc : configs) {
    for (const Migration& m : Migrations(sc)) {
      migrations.push_back(m);
    }
  }
  std::printf("\n  factor migrations (top factor changed while scaling):\n");
  if (migrations.empty()) {
    std::printf("    (none)\n");
  }
  for (const Migration& m : migrations) {
    std::printf("    %-7s at %2d threads: %s -> %s\n", m.config, m.at_threads,
                m.from.c_str(), m.to.c_str());
  }

  const double after_speedup =
      configs[1].points[3].throughput_tps /
      configs[1].points.front().throughput_tps;
  const double before_speedup =
      configs[0].points[3].throughput_tps /
      configs[0].points.front().throughput_tps;
  std::printf("\n  8-thread/1-thread throughput: before %.2fx, after %.2fx "
              "(acceptance: after >= 2.5x)\n",
              before_speedup, after_speedup);

  EmitJson(configs, migrations);
  std::printf("  wrote BENCH_scale.json\n");
  return after_speedup >= 2.5 ? 0 : 1;
}
