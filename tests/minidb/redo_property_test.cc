// Property tests for the redo log: durability ordering, monotonicity, and
// group-commit batching across policies and thread counts.
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/minidb/redo_log.h"

namespace minidb {
namespace {

simio::DiskConfig QuickDisk() {
  simio::DiskConfig config;
  config.write_mu = 0.3;
  config.write_sigma = 0.05;
  config.fsync_mu = 1.0;
  config.fsync_sigma = 0.05;
  config.fsync_spike_prob = 0.0;
  config.serialize_access = false;
  return config;
}

struct PropertyCase {
  FlushPolicy policy;
  int threads;
};

class RedoLogProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(RedoLogProperty, LsnsAndDurabilityInvariants) {
  const PropertyCase param = GetParam();
  simio::Disk disk(QuickDisk());
  RedoLog log(param.policy, &disk, 300.0);

  std::atomic<uint64_t> max_seen_lsn{0};
  std::atomic<bool> violation{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < param.threads; ++t) {
    threads.emplace_back([&] {
      uint64_t previous = 0;
      for (int i = 0; i < 120; ++i) {
        const uint64_t lsn = log.Append(64);
        // Per-thread LSNs strictly increase.
        if (lsn <= previous) {
          violation.store(true);
        }
        previous = lsn;
        uint64_t seen = max_seen_lsn.load();
        while (seen < lsn && !max_seen_lsn.compare_exchange_weak(seen, lsn)) {
        }
        log.CommitUpTo(lsn);
        if (param.policy == FlushPolicy::kEager && log.flushed_lsn() < lsn) {
          violation.store(true);  // eager commit returned before durability
        }
        // flushed <= written <= next everywhere.
        if (log.flushed_lsn() > log.next_lsn() - 1) {
          violation.store(true);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_FALSE(violation.load());
  const auto stats = log.stats();
  EXPECT_EQ(stats.appends, static_cast<uint64_t>(param.threads) * 120u);
  if (param.policy == FlushPolicy::kEager && param.threads > 1) {
    // Group commit batches: strictly fewer leader flushes than commits.
    EXPECT_LT(stats.leader_flushes, stats.appends);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RedoLogProperty,
    ::testing::Values(PropertyCase{FlushPolicy::kEager, 1},
                      PropertyCase{FlushPolicy::kEager, 4},
                      PropertyCase{FlushPolicy::kLazyFlush, 1},
                      PropertyCase{FlushPolicy::kLazyFlush, 4},
                      PropertyCase{FlushPolicy::kLazyWrite, 4}));

TEST(RedoLogShutdownTest, DestructorJoinsFlusherQuickly) {
  simio::Disk disk(QuickDisk());
  const auto t0 = std::chrono::steady_clock::now();
  {
    RedoLog log(FlushPolicy::kLazyWrite, &disk, 1e7);  // 10s nominal period
    log.Append(128);
  }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  // Shutdown must not wait out the nominal period.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
            1000);
}

}  // namespace
}  // namespace minidb
