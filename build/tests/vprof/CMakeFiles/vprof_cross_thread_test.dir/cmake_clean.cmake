file(REMOVE_RECURSE
  "CMakeFiles/vprof_cross_thread_test.dir/cross_thread_test.cc.o"
  "CMakeFiles/vprof_cross_thread_test.dir/cross_thread_test.cc.o.d"
  "vprof_cross_thread_test"
  "vprof_cross_thread_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vprof_cross_thread_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
