# Empty dependencies file for table3_tree_stats.
# This may be replaced when dependencies are built.
