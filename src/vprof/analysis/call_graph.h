// Static call graph of the instrumentable functions of an application.
//
// The paper's source-to-source tool extracts caller/callee relationships from
// the source; it uses them to (a) pick which functions to instrument when
// expanding a factor and (b) assign each function a height — the maximum
// depth of the call tree beneath it — which feeds the specificity metric
// (Equation 3). Applications in this repository declare the same information
// explicitly by registering edges at startup.
#ifndef SRC_VPROF_ANALYSIS_CALL_GRAPH_H_
#define SRC_VPROF_ANALYSIS_CALL_GRAPH_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/vprof/types.h"

namespace vprof {

class CallGraph {
 public:
  // Declares that `caller` may invoke `callee`; registers both names.
  void AddEdge(std::string_view caller, std::string_view callee);

  // Declares a function with no outgoing edges (a leaf).
  void AddFunction(std::string_view name);

  // Direct callees of `func` (empty if none declared).
  std::vector<FuncId> Children(FuncId func) const;

  bool HasChildren(FuncId func) const;

  // Maximum depth of the call tree beneath `func`; 0 for a leaf. Cycles
  // (recursion) do not add height beyond the first visit.
  int Height(FuncId func) const;

  // All declared functions.
  std::vector<FuncId> Functions() const;

  // Graphviz DOT rendering of the declared edges (for documentation and
  // debugging of instrumentation coverage).
  std::string ToDot(const std::string& graph_name = "call_graph") const;

 private:
  int HeightRecursive(FuncId func,
                      std::unordered_set<FuncId>& on_stack) const;

  std::unordered_map<FuncId, std::vector<FuncId>> children_;
  std::unordered_set<FuncId> functions_;
  mutable std::unordered_map<FuncId, int> height_cache_;
};

}  // namespace vprof

#endif  // SRC_VPROF_ANALYSIS_CALL_GRAPH_H_
