# Empty dependencies file for profile_httpd.
# This may be replaced when dependencies are built.
