// Thin POSIX socket helpers for the network front-end: RAII fds, loopback
// listeners/connects, and failpoint-wrapped read/write so the chaos
// framework (src/fault) can reach the wire without a misbehaving peer.
//
// Failpoint sites (armed via fault::Activate, see failpoint.h):
//   net/accept_error — evaluated by the server's accept loop: the freshly
//                      accepted connection is closed immediately, as if
//                      accept(2) had failed after the handshake
//   net/read_eof     — ReadFd reports EOF regardless of pending data
//   net/slow_peer    — WriteFd pretends EAGAIN (a peer that never drains)
//   net/short_write  — WriteFd truncates to the trigger's value payload
//                      (default 1 byte): the classic partial-write path
#ifndef SRC_NET_SOCKET_H_
#define SRC_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <sys/types.h>

namespace net {

// Move-only RAII file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

// Sets O_NONBLOCK; returns 0 or -1 (errno set).
int SetNonBlocking(int fd);

// Opens a non-blocking loopback listener (SO_REUSEADDR). `port` 0 binds an
// ephemeral port; the bound port is reported through *bound_port. Returns an
// invalid Fd on failure.
Fd ListenLocal(uint16_t port, int backlog, uint16_t* bound_port);

// Connects to 127.0.0.1:`port`. Blocking connect (loopback completes
// immediately); the returned socket is switched to non-blocking when
// `nonblocking` is set. Returns an invalid Fd on failure.
Fd ConnectLocal(uint16_t port, bool nonblocking);

// read(2) with the net/read_eof failpoint: returns byte count, 0 on EOF
// (*injected_eof reports whether the EOF was injected), or -1 with errno
// (EAGAIN included).
ssize_t ReadFd(int fd, void* buf, size_t n, bool* injected_eof);

// write(2) with the net/slow_peer (pretend EAGAIN) and net/short_write
// (truncate to the trigger value, default 1 byte) failpoints. Returns bytes
// written or -1 with errno.
ssize_t WriteFd(int fd, const void* buf, size_t n);

// Number of open descriptors in this process (/proc/self/fd); the fd-leak
// assertion used by the socket fault-injection tests.
int CountOpenFds();

}  // namespace net

#endif  // SRC_NET_SOCKET_H_
