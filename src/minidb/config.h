// Configuration of the minidb engine (the MySQL/InnoDB stand-in).
#ifndef SRC_MINIDB_CONFIG_H_
#define SRC_MINIDB_CONFIG_H_

#include <cstdint>

#include "src/simio/disk.h"

namespace minidb {

// Record-lock scheduling strategy (paper Section 4.5, Table 5).
enum class LockScheduling {
  kFcfs,  // InnoDB default: first come, first served
  kVats,  // Variance-Aware Transaction Scheduling: grant to the oldest txn
};

// Buffer-pool LRU maintenance strategy (paper Section 4.5, Figure 4 left).
enum class BufferPolicy {
  kBlockingMutex,  // baseline: block on the global buffer-pool mutex
  kLazyLruUpdate,  // LLU: bounded try-lock; skip/defer the LRU move on miss
  kSpinLock,       // Table 1 variant: spin instead of sleeping on the mutex
};

// Redo-log durability policy (innodb_flush_log_at_trx_commit; Figure 4
// center).
enum class FlushPolicy {
  kEager,      // write + fsync on every commit (group commit)
  kLazyFlush,  // write at commit; fsync deferred to the log flusher thread
  kLazyWrite,  // write and fsync both deferred to the log flusher thread
};

// How committers share the log device (orthogonal to FlushPolicy, which
// says *when* durability happens; CommitMode says *who* does the I/O).
enum class CommitMode {
  kExclusive,    // every committer performs its own write+fsync, serialized
                 // on the log I/O mutex — the pre-scale-out baseline
  kGroupCommit,  // leader-based: one elected leader batches all pending
                 // records into a single write+fsync; followers wait on an
                 // event (distributed-logging remedy, PAPERS.md)
};

struct EngineConfig {
  // Scale: number of warehouses (TPC-C-style). Contention on warehouse and
  // district rows scales with worker_threads / warehouses.
  int warehouses = 4;

  // Buffer pool capacity in pages. Small pools force evictions and make the
  // global buffer-pool mutex the bottleneck (the paper's 2-WH regime).
  int buffer_pool_pages = 2048;

  // Number of independent buffer-pool instances (InnoDB
  // buf_pool_instances). 1 reproduces the paper's single global mutex; the
  // scale-out bench raises this to divide hit-path contention.
  int buffer_pool_instances = 1;

  int rows_per_page = 16;

  LockScheduling lock_scheduling = LockScheduling::kFcfs;
  BufferPolicy buffer_policy = BufferPolicy::kBlockingMutex;
  FlushPolicy flush_policy = FlushPolicy::kEager;
  CommitMode commit_mode = CommitMode::kGroupCommit;

  // Lock-wait timeout before a transaction aborts (ns).
  int64_t lock_wait_timeout_ns = 1000LL * 1000 * 1000;

  // Wait-for-graph deadlock detection (the timeout remains the backstop).
  bool deadlock_detection = true;

  // Lock-manager sharding: shard = (object_id >> lock_shard_range_bits) %
  // lock_shards. range_bits 0 reproduces the historical modulo striping;
  // raising it keeps whole key ranges on one shard, so a hot range's wait
  // time concentrates in one ShardStats row instead of smearing across all
  // of them (the per-shard gauges are how a scaling run localizes a hot
  // range).
  int lock_shards = 32;
  int lock_shard_range_bits = 0;

  // Background log flusher period when a lazy policy is active (us).
  double log_flusher_period_us = 2000.0;

  // Bounded spin budget for the LLU try-lock, in iterations.
  int llu_try_iterations = 64;

  simio::DiskConfig data_disk;
  simio::DiskConfig log_disk;

  uint64_t seed = 1234;

  // Paper's two evaluation regimes, scaled to this simulator (Section 4.5).
  // "128-WH": memory-resident, record-lock contention dominates.
  static EngineConfig MemoryResident() {
    EngineConfig c;
    c.warehouses = 4;
    c.buffer_pool_pages = 1 << 16;  // everything fits
    return c;
  }
  // "2-WH": tiny buffer pool, buffer-pool mutex contention dominates. Record
  // locks spread over more warehouses so that, as in the paper's 2-WH runs,
  // buffer-pool contention (not lock waits) is the dominant factor.
  static EngineConfig MemoryConstrained() {
    EngineConfig c;
    c.warehouses = 8;
    c.buffer_pool_pages = 96;
    c.data_disk.read_mu = 4.6;  // ~100us median page read
    return c;
  }
};

}  // namespace minidb

#endif  // SRC_MINIDB_CONFIG_H_
