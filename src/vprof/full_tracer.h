// A deliberately heavyweight "instrument everything" tracer, standing in for
// DTrace-style binary injection in the Figure 3 overhead comparison.
//
// Every probe — regardless of the selection flags — takes a timestamp,
// serializes on a single global lock, hashes the function *name* (binary
// tracers key events by symbol), and appends to one shared event log. This is
// the per-event cost model of a generic injection tracer; VProfiler's probes
// avoid all of it for unselected functions.
#ifndef SRC_VPROF_FULL_TRACER_H_
#define SRC_VPROF_FULL_TRACER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/vprof/types.h"

namespace vprof {

struct FullTraceStats {
  uint64_t events = 0;
  uint64_t distinct_functions = 0;
};

void FullTracerOnEntry(FuncId func);
void FullTracerOnExit(FuncId func);

FullTraceStats GetFullTracerStats();
void ResetFullTracer();

}  // namespace vprof

#endif  // SRC_VPROF_FULL_TRACER_H_
