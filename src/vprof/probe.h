// Function-entry probes.
//
// VPROF_FUNC("name") at the top of a function body registers the function
// once (thread-safe static init) and creates a scoped probe. The probe is a
// few relaxed atomic loads when the function is not selected for the current
// refinement iteration, which is what keeps VProfiler's overhead an order of
// magnitude below binary-injection tracers (paper Section 4.1).
#ifndef SRC_VPROF_PROBE_H_
#define SRC_VPROF_PROBE_H_

#include "src/vprof/full_tracer.h"
#include "src/vprof/runtime.h"

namespace vprof {

class ScopedProbe {
 public:
  explicit ScopedProbe(FuncId func) {
    if (!IsTracing()) {
      return;
    }
    if (IsFullTrace()) {
      // DTrace-like comparison mode: record every function, the slow way.
      FullTracerOnEntry(func);
      full_ = true;
      func_ = func;
      return;
    }
    if (!IsFunctionEnabled(func)) {
      return;
    }
    thread_ = CurrentThread();
    epoch_ = thread_->run_epoch();
    record_index_ = thread_->OpenInvocation(func, Now());
  }

  ~ScopedProbe() {
    if (thread_ != nullptr) {
      // Drop the close if tracing restarted underneath this probe.
      if (thread_->run_epoch() == epoch_) {
        thread_->CloseInvocation(record_index_, Now());
      }
      return;
    }
    if (full_) {
      FullTracerOnExit(func_);
    }
  }

  ScopedProbe(const ScopedProbe&) = delete;
  ScopedProbe& operator=(const ScopedProbe&) = delete;

 private:
  ThreadState* thread_ = nullptr;
  uint64_t epoch_ = 0;
  uint32_t record_index_ = 0;
  bool full_ = false;
  FuncId func_ = kInvalidFunc;
};

}  // namespace vprof

// Instruments the enclosing function under the given profile name.
#define VPROF_FUNC(name)                                                      \
  static const ::vprof::FuncId vprof_local_fid = ::vprof::RegisterFunction(name); \
  ::vprof::ScopedProbe vprof_local_probe(vprof_local_fid)

#endif  // SRC_VPROF_PROBE_H_
