# Empty compiler generated dependencies file for fig4_parlog.
# This may be replaced when dependencies are built.
