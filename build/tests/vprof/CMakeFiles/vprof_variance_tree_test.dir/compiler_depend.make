# Empty compiler generated dependencies file for vprof_variance_tree_test.
# This may be replaced when dependencies are built.
