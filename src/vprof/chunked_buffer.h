// Append-only chunked arena for per-thread trace records.
//
// std::vector doubles by reallocating and copying, so an unlucky probe pays
// for moving every record captured so far — a latency spike injected by the
// measurement layer itself, exactly the observer effect a variance profiler
// must not have. This buffer grows by linking fixed-size chunks: an append is
// a bump-pointer store, existing records never move, and the only allocation
// is one chunk per kChunkCapacity records. Chunks are retained across
// clear(), so steady-state runs after the first allocate nothing at all.
//
// Single-writer: only the owning thread appends. The runtime's quiescence
// handshake (see runtime.cc) guarantees no append is in flight when another
// thread reads via CopyTo/operator[].
#ifndef SRC_VPROF_CHUNKED_BUFFER_H_
#define SRC_VPROF_CHUNKED_BUFFER_H_

#include <cstddef>
#include <memory>
#include <vector>

namespace vprof {

template <typename T, size_t kChunkCapacity = 4096>
class ChunkedBuffer {
  static_assert((kChunkCapacity & (kChunkCapacity - 1)) == 0,
                "chunk capacity must be a power of two");

 public:
  // Appends a value and returns its stable index.
  size_t Append(const T& value) {
    if (AtCap()) [[unlikely]] {
      ++dropped_;
      scratch_ = value;
      return size_;  // scratch pseudo-index; never stored in the arena
    }
    const size_t index = size_;
    T* slot = SlotFor(index);
    *slot = value;
    ++size_;
    return index;
  }

  // Appends a default-constructed record and returns it for in-place fill.
  T* AppendSlot() {
    if (AtCap()) [[unlikely]] {
      ++dropped_;
      scratch_ = T();
      return &scratch_;
    }
    T* slot = SlotFor(size_);
    *slot = T();
    ++size_;
    return slot;
  }

  // Appends a record without initializing it: chunks are recycled across
  // runs, so the slot holds stale bytes and the caller must store every
  // field. Hot-path variant for records written in full anyway.
  T* AppendUninit() {
    if (AtCap()) [[unlikely]] {
      ++dropped_;
      return &scratch_;
    }
    T* slot = SlotFor(size_);
    ++size_;
    return slot;
  }

  T& operator[](size_t index) {
    return chunks_[index >> kShift]->items[index & kMask];
  }
  const T& operator[](size_t index) const {
    return chunks_[index >> kShift]->items[index & kMask];
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Optional memory cap: at most `cap` records are retained (0 = unbounded).
  // Appends past the cap land in a reusable scratch slot — the caller's
  // pointer stays valid to write through, but the record is dropped and
  // counted instead of growing the arena.
  void set_max_records(size_t cap) { max_records_ = cap; }
  uint64_t dropped() const { return dropped_; }

  // Drops all records but keeps the chunks for reuse by the next run.
  void clear() {
    size_ = 0;
    dropped_ = 0;
  }

  // Stitches the chunks into one contiguous vector.
  void CopyTo(std::vector<T>* out) const {
    out->clear();
    out->reserve(size_);
    size_t remaining = size_;
    for (const auto& chunk : chunks_) {
      if (remaining == 0) {
        break;
      }
      const size_t n = remaining < kChunkCapacity ? remaining : kChunkCapacity;
      out->insert(out->end(), chunk->items, chunk->items + n);
      remaining -= n;
    }
  }

 private:
  struct Chunk {
    T items[kChunkCapacity];
  };

  static constexpr size_t kShift = [] {
    size_t shift = 0;
    for (size_t c = kChunkCapacity; c > 1; c >>= 1) {
      ++shift;
    }
    return shift;
  }();
  static constexpr size_t kMask = kChunkCapacity - 1;

  T* SlotFor(size_t index) {
    const size_t chunk = index >> kShift;
    if (chunk == chunks_.size()) [[unlikely]] {
      chunks_.push_back(std::make_unique<Chunk>());
    }
    return &chunks_[chunk]->items[index & kMask];
  }

  bool AtCap() const { return max_records_ != 0 && size_ >= max_records_; }

  std::vector<std::unique_ptr<Chunk>> chunks_;
  size_t size_ = 0;
  size_t max_records_ = 0;
  uint64_t dropped_ = 0;
  T scratch_{};
};

}  // namespace vprof

#endif  // SRC_VPROF_CHUNKED_BUFFER_H_
