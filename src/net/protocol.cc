#include "src/net/protocol.h"

#include <cstring>

namespace net {

namespace {

void PutU16(std::string* out, uint16_t v) {
  for (int i = 0; i < 2; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

bool ValidType(uint8_t t) {
  switch (static_cast<MsgType>(t)) {
    case MsgType::kTxn:
    case MsgType::kHttpGet:
    case MsgType::kPing:
    case MsgType::kTxnReply:
    case MsgType::kHttpReply:
    case MsgType::kPong:
    case MsgType::kRejected:
    case MsgType::kError:
      return true;
  }
  return false;
}

// Exact payload byte counts for the fixed-size types; -1 = variable (kTxn).
int FixedPayloadBytes(MsgType type) {
  switch (type) {
    case MsgType::kTxn:
      return -1;
    case MsgType::kHttpGet:
      return 8;
    case MsgType::kPing:
    case MsgType::kPong:
    case MsgType::kRejected:
      return 0;
    case MsgType::kTxnReply:
      return 10;  // status + error + trx id
    case MsgType::kHttpReply:
      return 9;  // status + bytes served
    case MsgType::kError:
      return 1;  // WireError
  }
  return -1;
}

}  // namespace

const char* WireErrorName(WireError error) {
  switch (error) {
    case WireError::kOk:
      return "ok";
    case WireError::kNeedMore:
      return "need_more";
    case WireError::kOversized:
      return "oversized";
    case WireError::kBadType:
      return "bad_type";
    case WireError::kBadPayload:
      return "bad_payload";
  }
  return "?";
}

void EncodeFrame(const Frame& frame, std::string* out) {
  const size_t length_at = out->size();
  PutU32(out, 0);  // patched below
  out->push_back(static_cast<char>(frame.type));
  PutU64(out, frame.request_id);
  switch (frame.type) {
    case MsgType::kTxn: {
      out->push_back(static_cast<char>(frame.txn.type));
      PutU32(out, static_cast<uint32_t>(frame.txn.warehouse));
      PutU32(out, static_cast<uint32_t>(frame.txn.district));
      PutU64(out, static_cast<uint64_t>(frame.txn.customer));
      PutU16(out, static_cast<uint16_t>(frame.txn.items.size()));
      for (int64_t item : frame.txn.items) {
        PutU64(out, static_cast<uint64_t>(item));
      }
      break;
    }
    case MsgType::kHttpGet:
      PutU64(out, frame.file_id);
      break;
    case MsgType::kPing:
    case MsgType::kPong:
    case MsgType::kRejected:
      break;
    case MsgType::kTxnReply:
      out->push_back(static_cast<char>(frame.status));
      out->push_back(static_cast<char>(frame.error));
      PutU64(out, frame.value);
      break;
    case MsgType::kHttpReply:
      out->push_back(static_cast<char>(frame.status));
      PutU64(out, frame.value);
      break;
    case MsgType::kError:
      out->push_back(static_cast<char>(frame.error));
      break;
  }
  const uint32_t length =
      static_cast<uint32_t>(out->size() - length_at - kLengthBytes);
  for (int i = 0; i < 4; ++i) {
    (*out)[length_at + static_cast<size_t>(i)] =
        static_cast<char>((length >> (8 * i)) & 0xff);
  }
}

WireError DecodeFrame(const uint8_t* data, size_t size, Frame* out,
                      size_t* consumed) {
  *consumed = 0;
  if (size < kLengthBytes) {
    return WireError::kNeedMore;
  }
  const uint32_t length = GetU32(data);
  // A length that cannot even hold type + request_id is as malformed as an
  // oversized one; both mean the stream is not speaking this protocol.
  if (length < kFrameOverhead || length > kMaxFrameBytes) {
    return WireError::kOversized;
  }
  if (size < kLengthBytes + length) {
    return WireError::kNeedMore;
  }
  const uint8_t* p = data + kLengthBytes;
  const uint8_t raw_type = p[0];
  if (!ValidType(raw_type)) {
    return WireError::kBadType;
  }
  Frame frame;
  frame.type = static_cast<MsgType>(raw_type);
  frame.request_id = GetU64(p + 1);
  const uint8_t* payload = p + kFrameOverhead;
  const size_t payload_len = length - kFrameOverhead;

  const int fixed = FixedPayloadBytes(frame.type);
  if (fixed >= 0 && payload_len != static_cast<size_t>(fixed)) {
    return WireError::kBadPayload;
  }
  switch (frame.type) {
    case MsgType::kTxn: {
      // u8 txn type | u32 warehouse | u32 district | u64 customer |
      // u16 n_items | u64 items[n]  — exact size, bounded item count.
      if (payload_len < 1 + 4 + 4 + 8 + 2) {
        return WireError::kBadPayload;
      }
      const uint8_t txn_type = payload[0];
      if (txn_type > static_cast<uint8_t>(minidb::TxnType::kStockLevel)) {
        return WireError::kBadPayload;
      }
      frame.txn.type = static_cast<minidb::TxnType>(txn_type);
      frame.txn.warehouse = static_cast<int>(GetU32(payload + 1));
      frame.txn.district = static_cast<int>(GetU32(payload + 5));
      frame.txn.customer = static_cast<int64_t>(GetU64(payload + 9));
      const uint16_t n = GetU16(payload + 17);
      if (n > kMaxTxnItems || payload_len != 1 + 4 + 4 + 8 + 2 + 8ull * n) {
        return WireError::kBadPayload;
      }
      frame.txn.items.resize(n);
      for (uint16_t i = 0; i < n; ++i) {
        frame.txn.items[i] = static_cast<int64_t>(GetU64(payload + 19 + 8 * i));
      }
      break;
    }
    case MsgType::kHttpGet:
      frame.file_id = GetU64(payload);
      break;
    case MsgType::kPing:
    case MsgType::kPong:
    case MsgType::kRejected:
      break;
    case MsgType::kTxnReply:
      frame.status = payload[0];
      frame.error = payload[1];
      if (frame.error > static_cast<uint8_t>(minidb::TxnError::kShutdown)) {
        return WireError::kBadPayload;
      }
      frame.value = GetU64(payload + 2);
      break;
    case MsgType::kHttpReply:
      frame.status = payload[0];
      frame.value = GetU64(payload + 1);
      break;
    case MsgType::kError:
      frame.error = payload[0];
      if (frame.error > static_cast<uint8_t>(WireError::kBadPayload)) {
        return WireError::kBadPayload;
      }
      break;
  }
  *out = std::move(frame);
  *consumed = kLengthBytes + length;
  return WireError::kOk;
}

WireError FrameParser::Feed(const uint8_t* data, size_t size,
                            std::vector<Frame>* out) {
  if (error_ != WireError::kOk) {
    return error_;  // poisoned: nothing after a violation may dispatch
  }
  // Common case: no partial frame buffered — parse in place, buffer only the
  // trailing prefix. Otherwise append and parse out of the buffer.
  const uint8_t* cursor = data;
  size_t remaining = size;
  if (!buffer_.empty()) {
    buffer_.insert(buffer_.end(), data, data + size);
    cursor = buffer_.data();
    remaining = buffer_.size();
  }
  size_t offset = 0;
  while (true) {
    Frame frame;
    size_t consumed = 0;
    const WireError err =
        DecodeFrame(cursor + offset, remaining - offset, &frame, &consumed);
    if (err == WireError::kOk) {
      out->push_back(std::move(frame));
      offset += consumed;
      continue;
    }
    if (err == WireError::kNeedMore) {
      break;
    }
    error_ = err;
    buffer_.clear();
    return err;
  }
  if (buffer_.empty()) {
    buffer_.assign(cursor + offset, cursor + remaining);
  } else {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(offset));
  }
  return WireError::kOk;
}

}  // namespace net
