// Timed waits, annotation no-ops outside tracing, probe depth limits, and
// other edge cases of the runtime and synchronization layer.
#include <thread>

#include <gtest/gtest.h>

#include "src/simio/disk.h"
#include "src/vprof/probe.h"
#include "src/vprof/sync.h"

namespace vprof {
namespace {

class EdgeCaseTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (IsTracing()) {
      StopTracing();
    }
    DisableAllFunctions();
  }
};

TEST_F(EdgeCaseTest, EventWaitForTimesOut) {
  Event event;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(event.WaitFor(5LL * 1000 * 1000));  // 5ms
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 4);
}

TEST_F(EdgeCaseTest, EventWaitForSucceedsWhenSet) {
  Event event;
  std::thread setter([&] {
    simio::SleepUs(3000);
    event.Set();
  });
  EXPECT_TRUE(event.WaitFor(2000LL * 1000 * 1000));
  setter.join();
}

TEST_F(EdgeCaseTest, EventWaitForImmediateWhenAlreadySet) {
  Event event;
  event.Set();
  EXPECT_TRUE(event.WaitFor(1));
}

TEST_F(EdgeCaseTest, CondVarWaitForTimesOutUnderTracing) {
  StartTracing();
  Mutex mu;
  CondVar cv;
  std::lock_guard<Mutex> lock(mu);
  EXPECT_FALSE(cv.WaitFor(mu, 3LL * 1000 * 1000));
  const Trace trace = StopTracing();
  // The timed-out wait produced a blocked segment without a waker.
  bool found = false;
  for (const ThreadTrace& t : trace.threads) {
    for (const Segment& seg : t.segments) {
      if (seg.state == SegmentState::kBlocked && seg.waker_tid == kNoThread) {
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(EdgeCaseTest, AnnotationsAreNoOpsWhenNotTracing) {
  EXPECT_EQ(BeginInterval(), kNoInterval);
  EndInterval(7);     // must not crash
  WorkOnBehalf(7);    // must not crash
  EXPECT_EQ(CurrentIntervalId(), kNoInterval);
}

TEST_F(EdgeCaseTest, DeepRecursionBeyondProbeStackIsSafe) {
  const FuncId fid = RegisterFunction("edge_deep");
  SetFunctionEnabled(fid, true);
  StartTracing();
  // Recurse beyond kMaxProbeDepth: records beyond the stack limit lose their
  // parent link, but nothing crashes and times stay sane.
  std::function<void(int)> recurse = [&](int depth) {
    ScopedProbe probe(fid);
    if (depth > 0) {
      recurse(depth - 1);
    }
  };
  recurse(kMaxProbeDepth + 50);
  const Trace trace = StopTracing();
  uint64_t count = 0;
  for (const ThreadTrace& t : trace.threads) {
    for (const Invocation& inv : t.invocations) {
      EXPECT_GE(inv.end, inv.start);
      ++count;
    }
  }
  EXPECT_EQ(count, static_cast<uint64_t>(kMaxProbeDepth) + 51);
}

TEST_F(EdgeCaseTest, OwnerMapClearRemovesEntries) {
  int object = 0;
  OwnerMap::Get().Record(&object, 5, 123);
  ASSERT_TRUE(OwnerMap::Get().Lookup(&object).has_value());
  OwnerMap::Get().Clear();
  EXPECT_FALSE(OwnerMap::Get().Lookup(&object).has_value());
}

TEST_F(EdgeCaseTest, ManyThreadsManyIntervalsAllRecorded) {
  StartTracing();
  constexpr int kThreads = 6;
  constexpr int kIntervalsPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kIntervalsPerThread; ++i) {
        const IntervalId sid = BeginInterval();
        simio::SleepUs(50);
        EndInterval(sid);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  const Trace trace = StopTracing();
  EXPECT_EQ(trace.interval_count(), kThreads * kIntervalsPerThread);
  // Interval ids are globally unique.
  std::set<IntervalId> sids;
  for (const ThreadTrace& t : trace.threads) {
    for (const IntervalEvent& e : t.interval_events) {
      if (e.kind == IntervalEventKind::kBegin) {
        EXPECT_TRUE(sids.insert(e.sid).second);
      }
    }
  }
}

TEST_F(EdgeCaseTest, BackToBackTracingRunsIsolated) {
  const FuncId fid = RegisterFunction("edge_runs");
  SetFunctionEnabled(fid, true);
  StartTracing();
  {
    ScopedProbe probe(fid);
  }
  const Trace first = StopTracing();
  StartTracing();
  const Trace second = StopTracing();
  EXPECT_EQ(first.invocation_count(), 1u);
  EXPECT_EQ(second.invocation_count(), 0u);
}

}  // namespace
}  // namespace vprof
