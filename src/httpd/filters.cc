#include "src/httpd/filters.h"

#include "src/vprof/probe.h"

namespace httpd {

namespace {

// Per-byte CPU work standing in for header formatting / checksum / copy.
void ByteWork(uint64_t bytes) {
  volatile uint64_t h = 14695981039346656037ull;
  for (uint64_t i = 0; i < bytes; ++i) {
    h = (h ^ i) * 1099511628211ull;
  }
}

}  // namespace

bool PageCache::ReadFile(uint64_t file_id, uint64_t bytes) {
  bool hit;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hit = cached_.count(file_id) > 0;
    if (!hit && capacity_ > 0) {
      if (cached_.size() >= static_cast<size_t>(capacity_)) {
        cached_.erase(cached_.begin());
      }
      cached_.insert(file_id);
    }
  }
  if (hit) {
    ByteWork(bytes);  // copy out of the cache
  } else {
    disk_->Read(bytes);
  }
  return hit;
}

void ApPassBrigade(Filter* filter, Brigade* brigade) {
  VPROF_FUNC("ap_pass_brigade");
  if (filter == nullptr) {
    return;
  }
  switch (filter->kind) {
    case Filter::Kind::kContentLength: {
      // Computes the body length and annotates the brigade: one heap bucket.
      const uint64_t total = brigade->TotalBytes();
      ByteWork(64);
      brigade->Append(BucketType::kHeap, 16);
      (void)total;
      break;
    }
    case Filter::Kind::kHeader: {
      BasicHttpHeader(brigade);
      break;
    }
    case Filter::Kind::kCoreOutput: {
      VPROF_FUNC("core_output_filter");
      // Writes the brigade to the socket: CPU proportional to bytes.
      ByteWork(brigade->TotalBytes() + 128);
      return;  // end of chain
    }
  }
  ApPassBrigade(filter->next, brigade);
}

void AprFileOpen(uint64_t file_id, uint64_t bytes, Brigade* brigade,
                 PageCache* cache) {
  VPROF_FUNC("apr_file_open");
  // The file bucket and the apr_file_t both come from the bucket allocator:
  // under memory pressure this is the slow part (paper Section 4.7).
  brigade->Append(BucketType::kFile, bytes);
  brigade->allocator()->Alloc();  // apr_file_t
  brigade->allocator()->Free();
  cache->ReadFile(file_id, bytes);
}

void BasicHttpHeader(Brigade* brigade) {
  VPROF_FUNC("basic_http_header");
  // Status line + headers: two heap buckets plus formatting work.
  brigade->Append(BucketType::kHeap, 128);
  brigade->Append(BucketType::kHeap, 64);
  ByteWork(192);
}

}  // namespace httpd
