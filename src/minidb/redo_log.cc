#include "src/minidb/redo_log.h"

#include <algorithm>

#include "src/fault/failpoint.h"
#include "src/statkit/rng.h"
#include "src/vprof/probe.h"

namespace minidb {

namespace {
constexpr uint64_t kLogBlockBytes = 512;
constexpr uint32_t kTornChecksumMask = 0xA5A5A5A5u;

// Backstop for the one race where a follower misses both the set and the
// reset of its round's event; it re-checks flushed_lsn and re-waits.
constexpr int64_t kFollowerWaitNs = 10LL * 1000 * 1000;

constexpr const char kFpCrashBeforeWrite[] = "redo/crash_before_write";
constexpr const char kFpCrashAfterWrite[] = "redo/crash_after_write";
constexpr const char kFpCrashAfterFsync[] = "redo/crash_after_fsync";
// Kill mid group-commit batch: the trigger value (if set) is the byte offset
// into the batch that reached the device cache before the crash, so sweeps
// can place the kill at every record boundary and interior.
constexpr const char kFpCrashMidBatch[] = "redo/crash_mid_batch";

uint64_t RoundToBlocks(uint64_t bytes) {
  return ((bytes + kLogBlockBytes - 1) / kLogBlockBytes) * kLogBlockBytes;
}
}  // namespace

uint32_t LogRecordChecksum(uint64_t end_lsn, uint64_t bytes) {
  // FNV-1a over the two header fields.
  uint64_t h = 1469598103934665603ull;
  h = (h ^ end_lsn) * 1099511628211ull;
  h = (h ^ bytes) * 1099511628211ull;
  return static_cast<uint32_t>(h ^ (h >> 32));
}

RedoLog::RedoLog(FlushPolicy policy, simio::Disk* disk,
                 double flusher_period_us, CommitMode mode)
    : policy_(policy),
      mode_(mode),
      disk_(disk),
      flusher_period_us_(flusher_period_us) {
  if (policy_ != FlushPolicy::kEager) {
    flusher_ = std::thread([this] { FlusherLoop(); });
  }
}

RedoLog::~RedoLog() {
  stop_.store(true, std::memory_order_release);
  if (flusher_.joinable()) {
    flusher_.join();
  }
}

uint64_t RedoLog::Append(uint64_t bytes) {
  std::lock_guard<vprof::Mutex> lock(mu_);
  if (crashed_.load(std::memory_order_acquire) ||
      wedged_.load(std::memory_order_acquire) ||
      shutdown_.load(std::memory_order_acquire)) {
    return 0;
  }
  pending_bytes_ += bytes;
  const uint64_t end_lsn =
      next_lsn_.fetch_add(bytes, std::memory_order_acq_rel) + bytes - 1;
  buffer_records_.push_back(
      LogRecord{end_lsn, bytes, LogRecordChecksum(end_lsn, bytes)});
  stat_appends_.fetch_add(1, std::memory_order_relaxed);
  return end_lsn;
}

void RedoLog::AppendBatchToDevice(const std::vector<LogRecord>& batch,
                                  uint64_t intact_bytes) {
  // Records wholly within the transferred prefix land intact; the record
  // crossing the tear point lands with a bad checksum; anything beyond it
  // never reached the device.
  uint64_t offset = 0;
  for (const LogRecord& rec : batch) {
    if (offset + rec.bytes <= intact_bytes) {
      device_records_.push_back(rec);
    } else if (offset < intact_bytes) {
      LogRecord torn = rec;
      torn.checksum ^= kTornChecksumMask;
      device_records_.push_back(torn);
      break;
    } else {
      break;
    }
    offset += rec.bytes;
  }
}

LogStatus RedoLog::WriteAndMaybeFlush(bool do_fsync, bool background) {
  // fil_flush — the fsync below — is the function whose inherent I/O
  // variance the paper's Table 4 surfaces. The whole write+fsync section is
  // serialized: there is one log file, so device records stay in LSN order
  // and the durable prefix is well defined.
  std::lock_guard<std::mutex> io_lock(write_io_mu_);
  if (crashed_.load(std::memory_order_acquire)) {
    return LogStatus::kCrashed;
  }
  if (wedged_.load(std::memory_order_acquire)) {
    return LogStatus::kWedged;
  }
  std::vector<LogRecord> batch;
  uint64_t to_write = 0;
  {
    std::lock_guard<vprof::Mutex> lock(mu_);
    batch.swap(buffer_records_);
    to_write = pending_bytes_;
    pending_bytes_ = 0;
  }
  const uint64_t batch_end =
      batch.empty() ? written_lsn_.load(std::memory_order_acquire)
                    : batch.back().end_lsn;

  auto restore_batch = [&] {
    std::lock_guard<vprof::Mutex> lock(mu_);
    buffer_records_.insert(buffer_records_.begin(), batch.begin(), batch.end());
    pending_bytes_ += to_write;
  };

  if (fault::Triggered(kFpCrashBeforeWrite)) [[unlikely]] {
    restore_batch();  // dies in the buffer; Crash() accounts it as lost
    CrashLocked(crash_seed_.load(std::memory_order_relaxed));
    return LogStatus::kCrashed;
  }

  if (to_write > 0) {
    const simio::IoResult w = disk_->Write(RoundToBlocks(to_write));
    if (!w.ok()) {
      restore_batch();  // nothing reached the device; the caller may retry
      stat_io_errors_.fetch_add(1, std::memory_order_relaxed);
      return LogStatus::kIoError;
    }
    uint64_t mid = fault::Trigger::kNoValue;
    if (fault::TriggeredValue(kFpCrashMidBatch, &mid)) [[unlikely]] {
      // Killed mid-batch: only a prefix of the batch's bytes made the device
      // cache. With no trigger value the crash seed picks the survivors.
      if (mid != fault::Trigger::kNoValue) {
        AppendBatchToDevice(batch, std::min<uint64_t>(mid, to_write));
      } else {
        AppendBatchToDevice(batch, std::min<uint64_t>(w.bytes, to_write));
      }
      CrashLocked(crash_seed_.load(std::memory_order_relaxed));
      return LogStatus::kCrashed;
    }
    AppendBatchToDevice(batch, std::min<uint64_t>(w.bytes, to_write));
    stat_batched_records_.fetch_add(batch.size(), std::memory_order_relaxed);
  }
  written_lsn_.store(batch_end, std::memory_order_release);

  if (fault::Triggered(kFpCrashAfterWrite)) [[unlikely]] {
    CrashLocked(crash_seed_.load(std::memory_order_relaxed));
    return LogStatus::kCrashed;
  }

  if (!do_fsync) {
    return LogStatus::kOk;
  }
  {
    VPROF_FUNC("fil_flush");
    const simio::IoResult s = disk_->Fsync();
    if (!s.ok()) {
      // fsyncgate: the failed fsync dropped the device cache, taking the
      // whole unsynced window with it. Wedge the log — were it to stay
      // open, the next successful fsync would silently ack these records.
      const size_t dropped = device_records_.size() - durable_records_;
      device_records_.resize(durable_records_);
      crash_lost_records_ += dropped;
      wedged_.store(true, std::memory_order_release);
      stat_io_errors_.fetch_add(1, std::memory_order_relaxed);
      stat_wedges_.fetch_add(1, std::memory_order_relaxed);
      // Wake followers of rounds that will now never run (the in-flight
      // round's leader signals its own event on return).
      flush_events_[0].Set();
      flush_events_[1].Set();
      return LogStatus::kWedged;
    }
  }
  durable_records_ = device_records_.size();
  flushed_lsn_.store(batch_end, std::memory_order_release);

  if (fault::Triggered(kFpCrashAfterFsync)) [[unlikely]] {
    // The batch is already durable; the caller just never hears the ack.
    CrashLocked(crash_seed_.load(std::memory_order_relaxed));
    return LogStatus::kCrashed;
  }
  if (background) {
    stat_background_flushes_.fetch_add(1, std::memory_order_relaxed);
  } else {
    stat_leader_flushes_.fetch_add(1, std::memory_order_relaxed);
  }
  return LogStatus::kOk;
}

LogStatus RedoLog::GroupCommitUpTo(uint64_t lsn) {
  // One leader flushes per round; followers wait until their LSN is durable.
  // kOk here is the durability acknowledgment.
  while (flushed_lsn_.load(std::memory_order_acquire) < lsn) {
    if (crashed_.load(std::memory_order_acquire)) {
      return LogStatus::kCrashed;
    }
    if (wedged_.load(std::memory_order_acquire)) {
      return LogStatus::kWedged;
    }
    if (lsn >= next_lsn_.load(std::memory_order_acquire)) {
      // No such record: it was appended before a crash and lost. The caller
      // must treat the transaction as failed.
      return LogStatus::kCrashed;
    }
    bool leader = false;
    uint64_t round = 0;
    {
      std::lock_guard<vprof::Mutex> lock(mu_);
      if (flushed_lsn_.load(std::memory_order_acquire) >= lsn) {
        return LogStatus::kOk;
      }
      if (!flush_in_progress_) {
        flush_in_progress_ = true;
        leader = true;
      } else {
        round = flush_round_;
      }
    }
    if (leader) {
      const LogStatus status =
          WriteAndMaybeFlush(/*do_fsync=*/true, /*background=*/false);
      {
        // Finish the round whatever the outcome (ok, I/O error, crash):
        // reset the next round's event before signalling this one so a
        // follower that enlists in round R+1 starts with a clean event.
        std::lock_guard<vprof::Mutex> lock(mu_);
        flush_in_progress_ = false;
        const uint64_t done = flush_round_++;
        flush_events_[(done + 1) & 1].Reset();
        flush_events_[done & 1].Set();
      }
      if (status != LogStatus::kOk) {
        return status;
      }
    } else {
      stat_commit_waits_.fetch_add(1, std::memory_order_relaxed);
      // The event for this round stays set from its completion until round
      // round+1 completes, so a follower that runs late still sees it; the
      // timeout covers the follower that sleeps through two whole rounds.
      flush_events_[round & 1].WaitFor(kFollowerWaitNs);
    }
  }
  return LogStatus::kOk;
}

LogStatus RedoLog::ExclusiveCommitUpTo(uint64_t lsn) {
  // Pre-scale-out baseline: each commit performs its own write+fsync, fully
  // serialized on write_io_mu_ (the prepare_commit_mutex regime) — one fsync
  // per commit regardless of how many committers pile up.
  do {
    if (crashed_.load(std::memory_order_acquire)) {
      return LogStatus::kCrashed;
    }
    if (wedged_.load(std::memory_order_acquire)) {
      return LogStatus::kWedged;
    }
    if (lsn >= next_lsn_.load(std::memory_order_acquire)) {
      return LogStatus::kCrashed;
    }
    const LogStatus status =
        WriteAndMaybeFlush(/*do_fsync=*/true, /*background=*/false);
    if (status != LogStatus::kOk) {
      return status;
    }
  } while (flushed_lsn_.load(std::memory_order_acquire) < lsn);
  return LogStatus::kOk;
}

LogStatus RedoLog::CommitUpTo(uint64_t lsn) {
  VPROF_FUNC("log_write_up_to");
  if (crashed_.load(std::memory_order_acquire)) {
    return LogStatus::kCrashed;
  }
  if (wedged_.load(std::memory_order_acquire)) {
    return LogStatus::kWedged;
  }
  if (shutdown_.load(std::memory_order_acquire)) {
    return LogStatus::kShutdown;
  }
  switch (policy_) {
    case FlushPolicy::kLazyWrite:
      // Nothing on the commit path; the flusher writes and syncs.
      return LogStatus::kOk;
    case FlushPolicy::kLazyFlush:
      // Write (cheap) on the commit path, defer the fsync.
      return WriteAndMaybeFlush(/*do_fsync=*/false, /*background=*/false);
    case FlushPolicy::kEager:
      break;
  }
  return mode_ == CommitMode::kGroupCommit ? GroupCommitUpTo(lsn)
                                           : ExclusiveCommitUpTo(lsn);
}

void RedoLog::Crash(uint64_t seed) {
  std::lock_guard<std::mutex> io_lock(write_io_mu_);
  if (crashed_.load(std::memory_order_acquire)) {
    return;
  }
  CrashLocked(seed);
}

void RedoLog::CrashLocked(uint64_t seed) {
  uint64_t lost = 0;
  {
    std::lock_guard<vprof::Mutex> lock(mu_);
    crashed_.store(true, std::memory_order_release);
    lost = buffer_records_.size();
    buffer_records_.clear();
    pending_bytes_ = 0;
  }
  // The written-but-unsynced tail survives only partially: a seeded-random
  // count of records made it intact, the next one may be torn mid-record,
  // the rest never left the device cache.
  const size_t at_risk = device_records_.size() - durable_records_;
  if (at_risk > 0) {
    statkit::Rng rng(seed);
    const uint64_t keep = rng.NextBelow(at_risk + 1);
    if (keep < at_risk) {
      // Tear to a definitively-bad checksum (not an XOR toggle): the record
      // may already be torn by a short batch write, and toggling twice would
      // resurrect it.
      LogRecord& torn = device_records_[durable_records_ + keep];
      torn.checksum =
          LogRecordChecksum(torn.end_lsn, torn.bytes) ^ kTornChecksumMask;
      lost += at_risk - keep - 1;
      device_records_.resize(durable_records_ + keep + 1);
    }
  }
  crash_lost_records_ += lost;
  stat_crashes_.fetch_add(1, std::memory_order_relaxed);
  // Wake group-commit followers so they observe crashed_ instead of timing
  // out; both parities, since followers of the in-flight round and of a
  // round that will now never run may both be waiting.
  flush_events_[0].Set();
  flush_events_[1].Set();
}

RecoveryResult RedoLog::Recover() {
  std::lock_guard<std::mutex> io_lock(write_io_mu_);
  RecoveryResult result;
  if (!crashed_.load(std::memory_order_acquire) &&
      !wedged_.load(std::memory_order_acquire)) {
    result.recovered_lsn = flushed_lsn_.load(std::memory_order_acquire);
    result.records_recovered = device_records_.size();
    return result;
  }
  size_t good = 0;
  for (const LogRecord& rec : device_records_) {
    if (rec.checksum != LogRecordChecksum(rec.end_lsn, rec.bytes)) {
      break;  // torn tail starts here
    }
    result.recovered_lsn = rec.end_lsn;
    ++good;
  }
  result.torn_truncated = device_records_.size() - good;
  result.records_recovered = good;
  result.records_lost = crash_lost_records_ + result.torn_truncated;
  device_records_.resize(good);
  durable_records_ = good;
  crash_lost_records_ = 0;
  // No committers are in flight while crashed (CommitUpTo bails out), so
  // the events can be cleared before the log re-opens.
  flush_events_[0].Reset();
  flush_events_[1].Reset();
  {
    std::lock_guard<vprof::Mutex> lock(mu_);
    // A wedged (not crashed) log still holds never-committable appends in
    // its insert buffer; they die here.
    result.records_lost += buffer_records_.size();
    buffer_records_.clear();
    pending_bytes_ = 0;
    flush_in_progress_ = false;
    next_lsn_.store(result.recovered_lsn + 1, std::memory_order_release);
    written_lsn_.store(result.recovered_lsn, std::memory_order_release);
    flushed_lsn_.store(result.recovered_lsn, std::memory_order_release);
    wedged_.store(false, std::memory_order_release);
    crashed_.store(false, std::memory_order_release);
  }
  return result;
}

void RedoLog::Shutdown() {
  bool expected = false;
  if (!shutdown_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    return;
  }
  // Stop the background flusher before the final flush so the two don't
  // interleave.
  stop_.store(true, std::memory_order_release);
  if (flusher_.joinable()) {
    flusher_.join();
  }
  // One final write+fsync drains the pending batch: every record appended
  // before the shutdown flag went up becomes durable, so followers already
  // waiting get their kOk ack instead of a spurious loss.
  if (!crashed_.load(std::memory_order_acquire) &&
      !wedged_.load(std::memory_order_acquire)) {
    WriteAndMaybeFlush(/*do_fsync=*/true, /*background=*/true);
  }
  // Wake group-commit followers of any round so they re-check flushed_lsn
  // and observe either their ack or the shutdown.
  flush_events_[0].Set();
  flush_events_[1].Set();
}

void RedoLog::FlusherLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    // Sleep in short ticks so shutdown is prompt even with long periods.
    double slept = 0.0;
    while (slept < flusher_period_us_ && !stop_.load(std::memory_order_acquire)) {
      const double tick = std::min(1000.0, flusher_period_us_ - slept);
      simio::SleepUs(tick);
      slept += tick;
    }
    if (stop_.load(std::memory_order_acquire)) {
      return;
    }
    if (crashed_.load(std::memory_order_acquire) ||
        wedged_.load(std::memory_order_acquire)) {
      continue;  // idle until Recover()
    }
    const uint64_t target = next_lsn_.load(std::memory_order_acquire) - 1;
    if (flushed_lsn_.load(std::memory_order_acquire) < target) {
      WriteAndMaybeFlush(/*do_fsync=*/true, /*background=*/true);
    }
  }
}

size_t RedoLog::device_record_count() const {
  std::lock_guard<std::mutex> io_lock(write_io_mu_);
  return device_records_.size();
}

size_t RedoLog::durable_record_count() const {
  std::lock_guard<std::mutex> io_lock(write_io_mu_);
  return durable_records_;
}

RedoLogStats RedoLog::stats() const {
  RedoLogStats stats;
  stats.appends = stat_appends_.load(std::memory_order_relaxed);
  stats.commit_waits = stat_commit_waits_.load(std::memory_order_relaxed);
  stats.leader_flushes = stat_leader_flushes_.load(std::memory_order_relaxed);
  stats.background_flushes =
      stat_background_flushes_.load(std::memory_order_relaxed);
  stats.batched_records =
      stat_batched_records_.load(std::memory_order_relaxed);
  stats.io_errors = stat_io_errors_.load(std::memory_order_relaxed);
  stats.wedges = stat_wedges_.load(std::memory_order_relaxed);
  stats.crashes = stat_crashes_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace minidb
