#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/vprof/trace.h"
#include "tests/vprof/trace_builder.h"

namespace vprof {
namespace {

using vprof_test::TraceBuilder;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::vector<char> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  std::vector<char> bytes(static_cast<size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return bytes;
}

void WriteFile(const std::string& path, const std::vector<char>& bytes,
               size_t count) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, count, f), count);
  std::fclose(f);
}

// A small but structurally complete trace: names, two threads, all three
// record vectors populated.
Trace MakeSampleTrace() {
  TraceBuilder tb;
  tb.Begin(0, 1, 10, /*label=*/3).End(0, 1, 500);
  tb.Exec(0, 1, 10, 200).Blocked(0, 1, 200, 400, 1, 400).Exec(0, 1, 400, 500);
  const int parent = tb.Invoke(0, "io_root", 10, 490, -1, 1);
  tb.Invoke(0, "io_child", 20, 120, parent, 1);
  tb.ExecGenerated(1, 1, 0, 10, 0, 5);
  return tb.Build(9876);
}

TEST(TraceIoTest, RoundTrip) {
  TraceBuilder tb;
  tb.Begin(0, 1, 10, /*label=*/7).End(0, 1, 500);
  tb.Exec(0, 1, 10, 200).Blocked(0, 1, 200, 400, 1, 400).Exec(0, 1, 400, 500);
  const int parent = tb.Invoke(0, "io_root", 10, 490, -1, 1);
  tb.Invoke(0, "io_child", 20, 120, parent, 1);
  tb.ExecGenerated(1, 1, 0, 10, 0, 5);
  const Trace original = tb.Build(12345);

  const std::string path = TempPath("trace_roundtrip.bin");
  ASSERT_TRUE(SaveTrace(original, path));
  Trace loaded;
  ASSERT_TRUE(LoadTrace(path, &loaded));

  EXPECT_EQ(loaded.duration, original.duration);
  EXPECT_EQ(loaded.function_names, original.function_names);
  ASSERT_EQ(loaded.threads.size(), original.threads.size());
  for (size_t i = 0; i < loaded.threads.size(); ++i) {
    const ThreadTrace& a = loaded.threads[i];
    const ThreadTrace& b = original.threads[i];
    EXPECT_EQ(a.tid, b.tid);
    ASSERT_EQ(a.invocations.size(), b.invocations.size());
    for (size_t j = 0; j < a.invocations.size(); ++j) {
      EXPECT_EQ(a.invocations[j].start, b.invocations[j].start);
      EXPECT_EQ(a.invocations[j].end, b.invocations[j].end);
      EXPECT_EQ(a.invocations[j].func, b.invocations[j].func);
      EXPECT_EQ(a.invocations[j].parent, b.invocations[j].parent);
      EXPECT_EQ(a.invocations[j].sid, b.invocations[j].sid);
    }
    ASSERT_EQ(a.segments.size(), b.segments.size());
    for (size_t j = 0; j < a.segments.size(); ++j) {
      EXPECT_EQ(a.segments[j].start, b.segments[j].start);
      EXPECT_EQ(a.segments[j].state, b.segments[j].state);
      EXPECT_EQ(a.segments[j].waker_tid, b.segments[j].waker_tid);
      EXPECT_EQ(a.segments[j].generator_tid, b.segments[j].generator_tid);
    }
    ASSERT_EQ(a.interval_events.size(), b.interval_events.size());
    for (size_t j = 0; j < a.interval_events.size(); ++j) {
      EXPECT_EQ(a.interval_events[j].sid, b.interval_events[j].sid);
      EXPECT_EQ(a.interval_events[j].label, b.interval_events[j].label);
    }
  }
}

TEST(TraceIoTest, LoadRejectsMissingFile) {
  Trace trace;
  EXPECT_FALSE(LoadTrace(TempPath("does_not_exist.bin"), &trace));
}

TEST(TraceIoTest, LoadRejectsGarbage) {
  const std::string path = TempPath("garbage.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a trace", f);
  std::fclose(f);
  Trace trace;
  EXPECT_FALSE(LoadTrace(path, &trace));
}

TEST(TraceIoTest, EmptyTraceRoundTrips) {
  Trace empty;
  empty.duration = 7;
  const std::string path = TempPath("empty.bin");
  ASSERT_TRUE(SaveTrace(empty, path));
  Trace loaded;
  ASSERT_TRUE(LoadTrace(path, &loaded));
  EXPECT_EQ(loaded.duration, 7);
  EXPECT_TRUE(loaded.threads.empty());
}

TEST(TraceIoTest, CheckedLoadReportsOpenFailed) {
  Trace trace;
  EXPECT_EQ(LoadTraceChecked(TempPath("missing_checked.bin"), &trace),
            TraceLoadStatus::kOpenFailed);
}

TEST(TraceIoTest, CheckedLoadReportsBadMagicAndVersion) {
  const std::string path = TempPath("patched_header.bin");
  ASSERT_TRUE(SaveTrace(MakeSampleTrace(), path));
  std::vector<char> bytes = ReadFile(path);

  std::vector<char> bad_magic = bytes;
  bad_magic[0] ^= 0x5a;
  WriteFile(path, bad_magic, bad_magic.size());
  Trace trace;
  EXPECT_EQ(LoadTraceChecked(path, &trace), TraceLoadStatus::kBadMagic);

  std::vector<char> bad_version = bytes;
  bad_version[4] = 99;  // version field follows the 4-byte magic
  WriteFile(path, bad_version, bad_version.size());
  EXPECT_EQ(LoadTraceChecked(path, &trace), TraceLoadStatus::kBadVersion);
}

TEST(TraceIoTest, TruncationAtEveryOffsetIsTyped) {
  // Chop the file at every byte offset: each prefix must load as kTruncated
  // (never kOk, never a crash or partial result).
  const std::string full_path = TempPath("trunc_full.bin");
  ASSERT_TRUE(SaveTrace(MakeSampleTrace(), full_path));
  const std::vector<char> bytes = ReadFile(full_path);
  ASSERT_GT(bytes.size(), 16u);

  const std::string cut_path = TempPath("trunc_cut.bin");
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    WriteFile(cut_path, bytes, cut);
    Trace trace;
    trace.duration = 42;  // must be wiped on failure
    EXPECT_EQ(LoadTraceChecked(cut_path, &trace), TraceLoadStatus::kTruncated)
        << "at offset " << cut << " of " << bytes.size();
    EXPECT_EQ(trace.duration, 0) << "partial state leaked at offset " << cut;
    EXPECT_TRUE(trace.threads.empty());
  }
  // Sanity: the untruncated file still loads.
  Trace trace;
  EXPECT_EQ(LoadTraceChecked(full_path, &trace), TraceLoadStatus::kOk);
}

TEST(TraceIoTest, OversizedLengthFieldIsTruncatedNotOom) {
  // A corrupt vector-length field claiming more data than the file holds
  // must fail cleanly (bounded by file size) instead of allocating wildly.
  const std::string path = TempPath("huge_len.bin");
  ASSERT_TRUE(SaveTrace(MakeSampleTrace(), path));
  std::vector<char> bytes = ReadFile(path);
  // The function-name count sits after magic(4) + version(4) + duration(8).
  // Within the kMaxFunctions cap (which would be kCorrupt) but far more
  // entries than the file can hold.
  const uint64_t huge = 4000;
  std::memcpy(bytes.data() + 16, &huge, sizeof(huge));
  WriteFile(path, bytes, bytes.size());
  Trace trace;
  EXPECT_EQ(LoadTraceChecked(path, &trace), TraceLoadStatus::kTruncated);
}

TEST(TraceIoTest, CorruptInvocationFuncIsRejected) {
  TraceBuilder tb;
  tb.Begin(0, 1, 0).End(0, 1, 100);
  tb.Invoke(0, "corrupt_func_test", 0, 50, -1, 1);
  Trace trace = tb.Build();
  trace.threads[0].invocations[0].func =
      static_cast<FuncId>(trace.function_names.size() + 7);
  const std::string path = TempPath("bad_func.bin");
  ASSERT_TRUE(SaveTrace(trace, path));
  Trace loaded;
  EXPECT_EQ(LoadTraceChecked(path, &loaded), TraceLoadStatus::kCorrupt);
  EXPECT_FALSE(LoadTrace(path, &loaded));
}

TEST(TraceIoTest, ForwardOrSelfParentIsRejected) {
  TraceBuilder tb;
  tb.Begin(0, 1, 0).End(0, 1, 100);
  tb.Invoke(0, "corrupt_parent_test", 0, 50, -1, 1);
  Trace trace = tb.Build();
  trace.threads[0].invocations[0].parent = 0;  // self-parent: a cycle
  const std::string path = TempPath("bad_parent.bin");
  ASSERT_TRUE(SaveTrace(trace, path));
  Trace loaded;
  EXPECT_EQ(LoadTraceChecked(path, &loaded), TraceLoadStatus::kCorrupt);
}

TEST(TraceIoTest, InvalidSegmentStateIsRejected) {
  TraceBuilder tb;
  tb.Begin(0, 1, 0).End(0, 1, 100);
  tb.Exec(0, 1, 0, 100);
  Trace trace = tb.Build();
  trace.threads[0].segments[0].state = static_cast<SegmentState>(7);
  const std::string path = TempPath("bad_state.bin");
  ASSERT_TRUE(SaveTrace(trace, path));
  Trace loaded;
  EXPECT_EQ(LoadTraceChecked(path, &loaded), TraceLoadStatus::kCorrupt);
}

TEST(TraceIoTest, InvalidIntervalEventKindIsRejected) {
  TraceBuilder tb;
  tb.Begin(0, 1, 0).End(0, 1, 100);
  Trace trace = tb.Build();
  trace.threads[0].interval_events[0].kind = static_cast<IntervalEventKind>(9);
  const std::string path = TempPath("bad_kind.bin");
  ASSERT_TRUE(SaveTrace(trace, path));
  Trace loaded;
  EXPECT_EQ(LoadTraceChecked(path, &loaded), TraceLoadStatus::kCorrupt);
}

TEST(TraceIoTest, StatusNamesAreStable) {
  EXPECT_STREQ(TraceLoadStatusName(TraceLoadStatus::kOk), "ok");
  EXPECT_STREQ(TraceLoadStatusName(TraceLoadStatus::kOpenFailed),
               "open_failed");
  EXPECT_STREQ(TraceLoadStatusName(TraceLoadStatus::kBadMagic), "bad_magic");
  EXPECT_STREQ(TraceLoadStatusName(TraceLoadStatus::kBadVersion),
               "bad_version");
  EXPECT_STREQ(TraceLoadStatusName(TraceLoadStatus::kTruncated), "truncated");
  EXPECT_STREQ(TraceLoadStatusName(TraceLoadStatus::kCorrupt), "corrupt");
}

TEST(TraceCountsTest, CountsSumAcrossThreads) {
  TraceBuilder tb;
  tb.Begin(0, 1, 0).End(0, 1, 10);
  tb.Begin(1, 2, 0).End(1, 2, 10);
  tb.Exec(0, 1, 0, 10).Exec(1, 2, 0, 10);
  tb.Invoke(0, "c_f", 0, 5);
  const Trace trace = tb.Build();
  EXPECT_EQ(trace.invocation_count(), 1u);
  EXPECT_EQ(trace.segment_count(), 2u);
  EXPECT_EQ(trace.interval_count(), 2u);
}

}  // namespace
}  // namespace vprof
