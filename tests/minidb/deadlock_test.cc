// Deadlock detection: classic two-transaction cycles, upgrade cycles, and
// no-false-positive checks.
#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "src/minidb/lock_manager.h"
#include "src/minidb/transaction.h"
#include "src/simio/disk.h"

namespace minidb {
namespace {

TEST(DeadlockTest, ClassicCycleDetectedQuickly) {
  // A holds 1 and wants 2; B holds 2 and wants 1. One side must abort well
  // before the (long) timeout.
  LockManager lm(LockScheduling::kFcfs, /*wait_timeout_ns=*/30LL * 1000 * 1000 * 1000);
  std::atomic<int> aborts{0};
  std::atomic<int> grants{0};

  std::thread a([&] {
    Transaction trx(1, 100);
    ASSERT_TRUE(lm.Lock(&trx, 1, LockMode::kExclusive));
    simio::SleepUs(20000);  // let B take object 2
    if (lm.Lock(&trx, 2, LockMode::kExclusive)) {
      grants.fetch_add(1);
    } else {
      aborts.fetch_add(1);
      lm.ReleaseAll(&trx);  // abort: free object 1 so B can proceed
      return;
    }
    lm.ReleaseAll(&trx);
  });
  std::thread b([&] {
    Transaction trx(2, 200);
    simio::SleepUs(5000);
    ASSERT_TRUE(lm.Lock(&trx, 2, LockMode::kExclusive));
    simio::SleepUs(20000);  // ensure A is (about to be) waiting on 2
    if (lm.Lock(&trx, 1, LockMode::kExclusive)) {
      grants.fetch_add(1);
    } else {
      aborts.fetch_add(1);
    }
    lm.ReleaseAll(&trx);
  });

  const auto t0 = std::chrono::steady_clock::now();
  a.join();
  b.join();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  // At least one side aborted via the detector, far faster than the 30s
  // timeout, and the system made progress.
  EXPECT_GE(aborts.load(), 1);
  EXPECT_GE(lm.stats().deadlocks, 1u);
  EXPECT_EQ(lm.stats().timeouts, 0u);
  EXPECT_LT(elapsed, 5000);
  EXPECT_EQ(lm.ActiveObjects(), 0u);
}

TEST(DeadlockTest, UpgradeCycleDetected) {
  // Both transactions hold shared locks on the same object and request an
  // upgrade: neither can proceed until the other releases — a cycle.
  LockManager lm(LockScheduling::kFcfs, /*wait_timeout_ns=*/30LL * 1000 * 1000 * 1000);
  std::atomic<int> aborts{0};
  auto worker = [&](uint64_t id) {
    Transaction trx(id, static_cast<int64_t>(id));
    ASSERT_TRUE(lm.Lock(&trx, 9, LockMode::kShared));
    simio::SleepUs(20000);  // both now hold shared
    if (!lm.Lock(&trx, 9, LockMode::kExclusive)) {
      aborts.fetch_add(1);
    }
    lm.ReleaseAll(&trx);
  };
  std::thread t1(worker, 1);
  std::thread t2(worker, 2);
  t1.join();
  t2.join();
  EXPECT_GE(aborts.load(), 1);
  EXPECT_GE(lm.stats().deadlocks, 1u);
  EXPECT_EQ(lm.ActiveObjects(), 0u);
}

TEST(DeadlockTest, NoFalsePositiveOnPlainContention) {
  // A simple queue (no cycle) must never trip the detector.
  LockManager lm(LockScheduling::kFcfs);
  Transaction holder(1, 1);
  ASSERT_TRUE(lm.Lock(&holder, 5, LockMode::kExclusive));
  std::thread waiter([&] {
    Transaction trx(2, 2);
    EXPECT_TRUE(lm.Lock(&trx, 5, LockMode::kExclusive));
    lm.ReleaseAll(&trx);
  });
  simio::SleepUs(20000);
  EXPECT_EQ(lm.stats().deadlocks, 0u);
  lm.ReleaseAll(&holder);
  waiter.join();
  EXPECT_EQ(lm.stats().deadlocks, 0u);
}

TEST(DeadlockTest, DetectionCanBeDisabled) {
  // With detection off, the same classic cycle resolves by timeout instead.
  LockManager lm(LockScheduling::kFcfs, /*wait_timeout_ns=*/50LL * 1000 * 1000,
                 /*detect_deadlocks=*/false);
  std::atomic<int> timeouts{0};
  std::thread a([&] {
    Transaction trx(1, 100);
    ASSERT_TRUE(lm.Lock(&trx, 1, LockMode::kExclusive));
    simio::SleepUs(15000);
    if (!lm.Lock(&trx, 2, LockMode::kExclusive)) {
      timeouts.fetch_add(1);
    }
    lm.ReleaseAll(&trx);
  });
  std::thread b([&] {
    Transaction trx(2, 200);
    simio::SleepUs(5000);
    ASSERT_TRUE(lm.Lock(&trx, 2, LockMode::kExclusive));
    simio::SleepUs(15000);
    if (!lm.Lock(&trx, 1, LockMode::kExclusive)) {
      timeouts.fetch_add(1);
    }
    lm.ReleaseAll(&trx);
  });
  a.join();
  b.join();
  EXPECT_GE(timeouts.load(), 1);
  EXPECT_EQ(lm.stats().deadlocks, 0u);
  EXPECT_GE(lm.stats().timeouts, 1u);
}

TEST(DeadlockTest, ThreeWayCycleDetected) {
  // A->B->C->A across three objects.
  LockManager lm(LockScheduling::kFcfs, /*wait_timeout_ns=*/30LL * 1000 * 1000 * 1000);
  std::atomic<int> aborts{0};
  auto worker = [&](uint64_t id, uint64_t first, uint64_t second) {
    Transaction trx(id, static_cast<int64_t>(id));
    ASSERT_TRUE(lm.Lock(&trx, first, LockMode::kExclusive));
    simio::SleepUs(25000);  // everyone holds their first object
    if (!lm.Lock(&trx, second, LockMode::kExclusive)) {
      aborts.fetch_add(1);
    }
    lm.ReleaseAll(&trx);
  };
  std::thread t1(worker, 1, 101, 102);
  std::thread t2(worker, 2, 102, 103);
  std::thread t3(worker, 3, 103, 101);
  t1.join();
  t2.join();
  t3.join();
  EXPECT_GE(aborts.load(), 1);
  EXPECT_GE(lm.stats().deadlocks, 1u);
  EXPECT_EQ(lm.ActiveObjects(), 0u);
}

}  // namespace
}  // namespace minidb
