# Empty dependencies file for vprof_task_queue_test.
# This may be replaced when dependencies are built.
