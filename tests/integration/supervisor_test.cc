// Self-healing vprofd (ctest label `chaos`):
//
//   * The Supervisor's escalation ladder walks Normal -> Degraded ->
//     Quarantined and back with hysteresis in both directions, flipping the
//     degradation knobs at each level.
//   * A live Vprofd under induced history-store pressure reaches Degraded
//     within 3 epochs, restores to Normal once the pressure clears, records
//     the transition in the persisted "health:supervisor_state" series, and
//     exports the supervisor Prometheus families.
//   * A daemon parked in Quarantined costs the served workload within 5% of
//     the tracing-off no-daemon baseline.
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "src/fault/failpoint.h"
#include "src/minidb/engine.h"
#include "src/statkit/rng.h"
#include "src/vprof/service/supervisor.h"
#include "src/vprof/service/vprofd.h"
#include "src/workload/tpcc.h"

namespace {

class SupervisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::DeactivateAll();
    fault::ResetCounters();
  }
  void TearDown() override {
    fault::DeactivateAll();
    fault::ResetCounters();
  }
};

vprof::EpochHealth Unhealthy() {
  vprof::EpochHealth health;
  health.history_append_errors = 1;
  return health;
}

TEST_F(SupervisorTest, LadderWalksDownAndUpWithHysteresis) {
  vprof::SupervisorOptions options;
  options.escalate_after = 2;
  options.restore_after = 2;
  vprof::Supervisor supervisor(options);

  // Normal with full knobs.
  EXPECT_EQ(supervisor.state(), vprof::SupervisorState::kNormal);
  EXPECT_TRUE(supervisor.tracing_enabled());
  EXPECT_DOUBLE_EQ(supervisor.epoch_multiplier(), 1.0);
  EXPECT_FALSE(supervisor.shed_app_gauges());
  EXPECT_TRUE(supervisor.controller_enabled());

  // One unhealthy epoch is hysteresis-absorbed; the second escalates.
  EXPECT_FALSE(supervisor.Observe(Unhealthy()));
  EXPECT_EQ(supervisor.state(), vprof::SupervisorState::kNormal);
  EXPECT_TRUE(supervisor.Observe(Unhealthy()));
  EXPECT_EQ(supervisor.state(), vprof::SupervisorState::kDegraded);
  // Degraded sheds load but keeps profiling.
  EXPECT_TRUE(supervisor.tracing_enabled());
  EXPECT_DOUBLE_EQ(supervisor.epoch_multiplier(),
                   options.degraded_epoch_multiplier);
  EXPECT_TRUE(supervisor.shed_app_gauges());
  EXPECT_FALSE(supervisor.controller_enabled());

  // Two more unhealthy epochs quarantine: tracing off entirely.
  EXPECT_FALSE(supervisor.Observe(Unhealthy()));
  EXPECT_TRUE(supervisor.Observe(Unhealthy()));
  EXPECT_EQ(supervisor.state(), vprof::SupervisorState::kQuarantined);
  EXPECT_FALSE(supervisor.tracing_enabled());

  // The ladder saturates at the bottom.
  EXPECT_FALSE(supervisor.Observe(Unhealthy()));
  EXPECT_EQ(supervisor.state(), vprof::SupervisorState::kQuarantined);

  // Healthy epochs restore one level at a time, with hysteresis.
  EXPECT_FALSE(supervisor.Observe({}));
  EXPECT_TRUE(supervisor.Observe({}));
  EXPECT_EQ(supervisor.state(), vprof::SupervisorState::kDegraded);
  // A relapse resets the healthy streak...
  EXPECT_FALSE(supervisor.Observe(Unhealthy()));
  // ...so one healthy epoch is not enough to reach Normal yet.
  EXPECT_FALSE(supervisor.Observe({}));
  EXPECT_EQ(supervisor.state(), vprof::SupervisorState::kDegraded);
  EXPECT_TRUE(supervisor.Observe({}));
  EXPECT_EQ(supervisor.state(), vprof::SupervisorState::kNormal);
  EXPECT_TRUE(supervisor.tracing_enabled());

  const vprof::SupervisorStatus status = supervisor.status();
  EXPECT_EQ(status.escalations, 2u);
  EXPECT_EQ(status.restorations, 2u);
  EXPECT_EQ(status.unhealthy_epochs, 6u);
  EXPECT_EQ(status.epochs_observed, 10u);
}

TEST_F(SupervisorTest, AnyThresholdBreachIsUnhealthy) {
  vprof::SupervisorOptions options;
  options.escalate_after = 1;
  options.max_rotation_gap_ns = 1000;
  vprof::Supervisor gap_supervisor(options);
  vprof::EpochHealth gap;
  gap.rotation_gap_ns = 2000;
  EXPECT_TRUE(gap_supervisor.Observe(gap));
  EXPECT_EQ(gap_supervisor.state(), vprof::SupervisorState::kDegraded);

  vprof::Supervisor drop_supervisor(options);
  vprof::EpochHealth drops;
  drops.dropped_records = 1;
  EXPECT_TRUE(drop_supervisor.Observe(drops));
  EXPECT_EQ(drop_supervisor.state(), vprof::SupervisorState::kDegraded);

  vprof::Supervisor stuck_supervisor(options);
  vprof::EpochHealth stuck;
  stuck.stuck_threads = 1;
  EXPECT_TRUE(stuck_supervisor.Observe(stuck));
  EXPECT_EQ(stuck_supervisor.state(), vprof::SupervisorState::kDegraded);
}

// A live daemon under history-store write pressure: Degraded within 3
// epochs, automatic restoration once the pressure clears, the transition
// persisted to the history store, and the Prom families exported.
TEST_F(SupervisorTest, VprofdDegradesUnderHistoryPressureAndRestores) {
  const std::string dir =
      std::string(::testing::TempDir()) + "/supervisor_history";
  std::filesystem::remove_all(dir);

  vprof::VprofdOptions options;
  options.root_function = "supervisor_it_root";
  options.enable_controller = false;
  options.epoch_ns = 2'000'000;  // 2 ms epochs keep the test fast
  options.history.dir = dir;
  options.history.fault_scope = "sup_hist";
  options.enable_supervisor = true;
  options.supervisor.escalate_after = 2;
  options.supervisor.restore_after = 2;
  // Keep the epoch cadence while degraded so restoration is as fast as
  // escalation (the multiplier knob itself is covered by the ladder test).
  options.supervisor.degraded_epoch_multiplier = 1.0;

  // Every history append fails from the first epoch on.
  fault::Activate("sup_hist/write_error", fault::Trigger::Always());

  vprof::Vprofd daemon(std::move(options));
  daemon.Start();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (daemon.supervisor_state() == vprof::SupervisorState::kNormal &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const vprof::SupervisorStatus at_escalation = daemon.supervisor().status();
  ASSERT_NE(daemon.supervisor_state(), vprof::SupervisorState::kNormal)
      << "supervisor never escalated under append pressure";
  EXPECT_GE(at_escalation.escalations, 1u);
  // Acceptance: Degraded within 3 epochs of the pressure starting. Every
  // epoch under pressure is unhealthy, so with escalate_after=2 the first
  // escalation fires at epoch 2; the loose bound only absorbs poll lag
  // between the transition and this status read.
  EXPECT_EQ(at_escalation.unhealthy_epochs, at_escalation.epochs_observed);
  EXPECT_LE(at_escalation.epochs_observed, 5u);

  // Pressure clears; the ladder walks back to Normal on its own.
  fault::Deactivate("sup_hist/write_error");
  while (daemon.supervisor_state() != vprof::SupervisorState::kNormal &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  EXPECT_EQ(daemon.supervisor_state(), vprof::SupervisorState::kNormal)
      << "supervisor never restored after the pressure cleared";
  const vprof::SupervisorStatus restored = daemon.supervisor().status();
  EXPECT_GE(restored.restorations, restored.escalations);

  // The scrape carries the supervisor families.
  const std::string text = daemon.MetricsText();
  EXPECT_NE(text.find("vprofd_supervisor_state"), std::string::npos);
  EXPECT_NE(text.find("vprofd_supervisor_escalations_total"),
            std::string::npos);

  daemon.Stop();

  // Post-pressure epochs persisted the non-Normal state: the transition is
  // visible in the durable history.
  ASSERT_NE(daemon.history(), nullptr);
  const auto points =
      daemon.history()->Query("health:supervisor_state", 0, UINT64_MAX);
  ASSERT_FALSE(points.empty());
  bool saw_non_normal = false;
  bool saw_normal = false;
  for (const auto& point : points) {
    saw_non_normal |= point.value > 0.0;
    saw_normal |= point.value == 0.0;
  }
  EXPECT_TRUE(saw_non_normal)
      << "no degraded/quarantined epoch reached the history store";
  EXPECT_TRUE(saw_normal);
  std::filesystem::remove_all(dir);
}

// Quarantine overhead: a daemon parked in Quarantined (tracing off, empty
// rotations, history appends only) must cost the served workload within 5%
// of the no-daemon tracing-off baseline.
TEST_F(SupervisorTest, QuarantinedServingOverheadWithinFivePercent) {
  minidb::EngineConfig config = minidb::EngineConfig::MemoryResident();
  config.warehouses = 2;
  config.log_disk.read_mu = 0.1;
  config.log_disk.write_mu = 0.1;
  config.log_disk.fsync_mu = 0.1;
  config.log_disk.fsync_spike_prob = 0.0;
  config.data_disk = config.log_disk;
  minidb::Engine engine(config);

  constexpr int kTxns = 3000;
  const auto run_once = [&engine](uint64_t seed) {
    workload::TpccGenerator generator(workload::TpccOptions{}, 2);
    statkit::Rng rng(seed);
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kTxns; ++i) {
      engine.Execute(generator.Next(rng));
    }
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
  };
  const auto best_of = [&run_once](int trials, uint64_t seed_base) {
    double best = 1e18;
    for (int i = 0; i < trials; ++i) {
      best = std::min(best, run_once(seed_base + i));
    }
    return best;
  };

  run_once(1);  // warm-up
  const double baseline_s = best_of(3, 10);

  const std::string dir =
      std::string(::testing::TempDir()) + "/quarantine_history";
  std::filesystem::remove_all(dir);
  vprof::VprofdOptions options;
  options.enable_controller = false;
  options.epoch_ns = 2'000'000;
  options.history.dir = dir;
  options.history.fault_scope = "supq_hist";
  options.enable_supervisor = true;
  options.supervisor.escalate_after = 1;
  options.supervisor.restore_after = 1'000'000;  // park at the bottom
  options.supervisor.degraded_epoch_multiplier = 1.0;

  fault::Activate("supq_hist/write_error", fault::Trigger::Always());
  auto daemon = minidb::Engine::StartOnlineProfiler(std::move(options));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (daemon->supervisor_state() != vprof::SupervisorState::kQuarantined &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  ASSERT_EQ(daemon->supervisor_state(),
            vprof::SupervisorState::kQuarantined);
  // Disarm before measuring: an armed failpoint anywhere makes every disk
  // op take the registry lock, which would bill orchestration cost to the
  // quarantined daemon.
  fault::Deactivate("supq_hist/write_error");
  EXPECT_FALSE(daemon->supervisor().tracing_enabled());

  const double quarantined_s = best_of(3, 20);
  daemon->Stop();
  std::filesystem::remove_all(dir);

  // 5% relative plus a 2ms absolute allowance for scheduler noise on the
  // short runs. Sanitizer instrumentation inflates the daemon's per-epoch
  // bookkeeping far past its production cost, so those builds only guard
  // against gross regressions; the 5% acceptance bound is enforced by the
  // plain build and bench/chaos.
  double relative = 1.05, absolute_s = 0.002;
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  relative = 1.50, absolute_s = 0.050;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  relative = 1.50, absolute_s = 0.050;
#endif
#endif
  EXPECT_LE(quarantined_s, baseline_s * relative + absolute_s)
      << "baseline " << baseline_s << "s vs quarantined " << quarantined_s
      << "s";
}

}  // namespace
