file(REMOVE_RECURSE
  "CMakeFiles/statkit_p2_quantile_test.dir/p2_quantile_test.cc.o"
  "CMakeFiles/statkit_p2_quantile_test.dir/p2_quantile_test.cc.o.d"
  "statkit_p2_quantile_test"
  "statkit_p2_quantile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statkit_p2_quantile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
