// Cross-service distributed load benchmark (ISSUE: dist tier). Emits
// BENCH_dist.json.
//
// The full two-tier topology in one process: an open-loop generator drives
// kHttpGet into the front NetServer; httpd workers call minidb through
// dist::BackendPool (rpc:call over AsyncClient) behind a second NetServer.
// Three utilization points bracket the measured two-tier capacity; at each,
// a traced run is split by tier roster, stitched by dist::StitchTraces, and
// decomposed once end-to-end — front-tier factors (net:queue_wait, the
// allocator chain) and backend factors (lock waits, the WAL path) compete in
// the same Eq. 2 ranking. Per-tier shares come from the online path
// (OnlineVarianceTree per tier merged by DistMonitor) and are persisted as
// tier:* statstore series, then read back bit-exact.
//
// Cold-start mode rebuilds the stack with BackendPool spawning the backend
// on the first request; the spawn cost must rank as dist:cold_start.
//
// Acceptance (driver-checked): at the overload point the merged top-3 holds
// BOTH a backend factor and a front factor; in cold-start mode
// dist:cold_start ranks in the top-3.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/dist/backend_pool.h"
#include "src/dist/monitor.h"
#include "src/dist/stitcher.h"
#include "src/dist/tier.h"
#include "src/httpd/server.h"
#include "src/minidb/engine.h"
#include "src/net/frontend.h"
#include "src/net/server.h"
#include "src/statkit/rng.h"
#include "src/statstore/store.h"
#include "src/vprof/analysis/factor_selection.h"
#include "src/vprof/service/history.h"
#include "src/workload/openloop.h"
#include "src/workload/tpcc.h"

namespace {

constexpr size_t kConnections = 256;
constexpr size_t kDispatchDepth = 32;
constexpr int kFrontNetWorkers = 2;
constexpr int kHttpdWorkers = 3;
constexpr int kBackendWorkers = 2;
constexpr int kWarehouses = 1;
constexpr double kCalibrationRate = 4000.0;
constexpr double kCalibrationSeconds = 0.8;
constexpr double kMeasureSeconds = 1.2;
constexpr double kTraceSeconds = 0.8;
constexpr int kColdSpawnDelayMs = 60;
const double kUtilizations[] = {0.5, 0.9, 1.4};

struct FactorShare {
  std::string name;
  double contribution = 0.0;
};

struct TierShare {
  std::string name;
  double share = 0.0;
  double variance_ns2 = 0.0;
  uint64_t intervals = 0;
};

struct LoadPoint {
  double utilization = 0.0;
  double offered_per_s = 0.0;
  workload::OpenLoopResult run;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  std::vector<FactorShare> top_factors;  // merged stitched decomposition
  std::vector<TierShare> tiers;          // online DistMonitor view
};

// The two-tier stack. cold_start defers the backend (engine + NetServer +
// connect + calibrate) to the first request through the pool.
struct Stack {
  explicit Stack(bool cold_start) : cold(cold_start) {
    graph = std::make_shared<vprof::CallGraph>();
    minidb::Engine::RegisterCallGraph(graph.get());
    httpd::HttpServer::RegisterCallGraph(graph.get());
    net::NetServer::RegisterNetCallGraph(graph.get(), "process_request");
    net::NetServer::RegisterNetCallGraph(graph.get(), "run_transaction");
    dist::RegisterDistCallGraph(graph.get(), "run_transaction");
    net_root = vprof::RegisterFunction(net::kNetRootFunc);

    dist::BackendPoolOptions popt;
    popt.service = net::ServiceId::kMinidb;
    popt.connections = 2;
    popt.calibrate_rounds = 8;
    popt.span_sink = spans.ClientSink();
    if (cold_start) {
      popt.cold_start = true;
      popt.spawn = [this]() { return SpawnBackend(); };
      pool = std::make_unique<dist::BackendPool>(popt);
    } else {
      popt.port = SpawnBackend();
      pool = std::make_unique<dist::BackendPool>(popt);
      if (!pool->Warm()) {
        std::fprintf(stderr, "distload: pool warm-up failed\n");
        std::exit(1);
      }
    }

    httpd::HttpdConfig hconf;
    hconf.workers = kHttpdWorkers;
    hconf.backend_call = [this](uint64_t) {
      net::Frame req;
      req.type = net::MsgType::kTxn;
      {
        std::lock_guard<std::mutex> lock(gen_mu);
        req.txn = gen.Next(rng);
      }
      net::Frame reply;
      (void)pool->Call(std::move(req), &reply);
    };
    http = std::make_unique<httpd::HttpServer>(hconf);

    net::NetServerOptions fopt;
    fopt.workers = kFrontNetWorkers;
    fopt.max_dispatch_depth = kDispatchDepth;
    fopt.max_connections = 2 * kConnections;
    front = std::make_unique<net::NetServer>(fopt,
                                             net::MakeHttpdHandler(http.get()));
    if (!front->Start()) {
      std::fprintf(stderr, "distload: front server failed to start\n");
      std::exit(1);
    }
  }

  ~Stack() {
    front->Shutdown();
    http->Shutdown();
    pool->Shutdown();
    if (backend != nullptr) {
      backend->Shutdown();
    }
  }

  uint16_t SpawnBackend() {
    if (cold) {
      // Stand-in for the spawned process's exec + init cost.
      std::this_thread::sleep_for(
          std::chrono::milliseconds(kColdSpawnDelayMs));
    }
    minidb::EngineConfig config = bench::MysqlMemoryResidentConfig();
    config.warehouses = kWarehouses;
    engine = std::make_unique<minidb::Engine>(config);
    net::NetServerOptions bopt;
    bopt.workers = kBackendWorkers;
    bopt.span_sink = spans.ServerSink();
    backend = std::make_unique<net::NetServer>(
        bopt, net::MakeMinidbHandler(engine.get()));
    if (!backend->Start()) {
      return 0;
    }
    return backend->port();
  }

  dist::StitchResult Stitch(const vprof::Trace& trace,
                            std::vector<vprof::Trace>* tiers_out) {
    const std::vector<vprof::Trace> tiers = dist::SplitByTids(
        trace, {{}, backend->ProfiledTids()}, /*default_index=*/0);
    dist::TierTrace front_tier;
    front_tier.name = "front";
    front_tier.service = net::ServiceId::kFront;
    front_tier.trace = tiers[0];
    front_tier.client_spans = spans.ClientSpans();
    dist::TierTrace backend_tier;
    backend_tier.name = "minidb";
    backend_tier.service = net::ServiceId::kMinidb;
    backend_tier.trace = tiers[1];
    backend_tier.server_spans = spans.ServerSpans();
    backend_tier.clock_offset_ns = pool->calibration().offset_ns;
    spans.Clear();
    if (tiers_out != nullptr) {
      *tiers_out = tiers;
    }
    return dist::StitchTraces(front_tier, {backend_tier});
  }

  bool cold = false;
  std::shared_ptr<vprof::CallGraph> graph;
  vprof::FuncId net_root = vprof::kInvalidFunc;
  dist::SpanLog spans;
  std::unique_ptr<minidb::Engine> engine;
  std::unique_ptr<net::NetServer> backend;
  std::unique_ptr<dist::BackendPool> pool;
  std::unique_ptr<httpd::HttpServer> http;
  std::unique_ptr<net::NetServer> front;

  std::mutex gen_mu;
  statkit::Rng rng{0xd157};
  workload::TpccGenerator gen{workload::TpccOptions{}, kWarehouses};
};

workload::OpenLoopOptions LoadOptions(uint16_t port, double rate_per_s,
                                      double seconds, uint64_t seed) {
  workload::OpenLoopOptions options;
  options.port = port;
  options.connections = kConnections;
  options.duration_s = seconds;
  options.arrivals.process = workload::ArrivalProcess::kPoisson;
  options.arrivals.rate_per_sec = rate_per_s;
  options.seed = seed;
  options.make_request = [](uint64_t i) {
    net::Frame frame;
    frame.type = net::MsgType::kHttpGet;
    frame.file_id = i % 4;
    return frame;
  };
  return options;
}

void EnableAllProbes() {
  const size_t registered = vprof::RegisteredFunctionCount();
  for (vprof::FuncId id = 0; id < registered; ++id) {
    vprof::SetFunctionEnabled(id, true);
  }
}

std::vector<FactorShare> TopFactors(const vprof::VarianceAnalysis& analysis,
                                    const vprof::CallGraph& graph,
                                    vprof::FuncId root,
                                    const std::vector<std::string>& names) {
  const std::vector<vprof::Factor> factors = vprof::AggregateFactors(
      analysis, graph, root, vprof::SpecificityKind::kQuadratic);
  std::vector<FactorShare> top;
  for (const vprof::Factor& factor : factors) {
    if (factor.func_b != vprof::kInvalidFunc) {
      continue;
    }
    top.push_back({factor.Label(names), factor.contribution});
    if (top.size() == 3) {
      break;
    }
  }
  return top;
}

bool IsBackendFactor(const std::string& name) {
  return name == "lock_rec_lock" || name == "os_event_wait" ||
         name == "log_write_up_to" || name == "fil_flush" ||
         name == "trx_commit" || name == "run_transaction";
}

bool IsFrontFactor(const std::string& name) {
  return name.rfind("net:", 0) == 0 || name.rfind("apr_", 0) == 0 ||
         name.rfind("ap_", 0) == 0 || name.rfind("rpc:", 0) == 0 ||
         name == "process_request" || name == "default_handler";
}

// One traced run: stitched offline top-3 plus the online per-tier view
// (folded trees merged by DistMonitor), persisted as one statstore epoch.
void TracePoint(Stack* stack, const workload::OpenLoopOptions& options,
                uint64_t epoch, statstore::StatStore* store,
                LoadPoint* point) {
  EnableAllProbes();
  vprof::StartTracing();
  workload::RunOpenLoop(options);
  const vprof::Trace trace = vprof::StopTracing();
  vprof::DisableAllFunctions();

  std::vector<vprof::Trace> tiers;
  const dist::StitchResult stitched = stack->Stitch(trace, &tiers);

  vprof::CriticalPathOptions path_options;
  path_options.queue_wait_factor = net::kQueueWaitFactor;
  const vprof::VarianceAnalysis analysis(stitched.trace, path_options);
  point->top_factors = TopFactors(analysis, *stack->graph, stack->net_root,
                                  stitched.trace.function_names);

  vprof::OnlineTreeOptions tree_options;
  tree_options.path_options.queue_wait_factor = net::kQueueWaitFactor;
  vprof::OnlineVarianceTree front_tree(tree_options);
  vprof::OnlineVarianceTree backend_tree(tree_options);
  front_tree.Fold(tiers[0]);
  backend_tree.Fold(tiers[1]);

  dist::DistMonitor monitor;
  dist::TierConfig front_cfg;
  front_cfg.name = "front";
  front_cfg.is_front = true;
  front_cfg.root = stack->net_root;
  monitor.RegisterTier(front_cfg);
  dist::TierConfig backend_cfg;
  backend_cfg.name = "minidb";
  backend_cfg.root = vprof::RegisterFunction("run_transaction");
  monitor.RegisterTier(backend_cfg);
  monitor.UpdateTier("front", front_tree.Snapshot());
  monitor.UpdateTier("minidb", backend_tree.Snapshot());

  const dist::DistSnapshot snap = monitor.Snapshot();
  for (const dist::TierStats& tier : snap.tiers) {
    point->tiers.push_back(
        {tier.name, tier.share, tier.variance_ns2, tier.intervals});
  }
  if (store != nullptr) {
    (void)store->Append(monitor.Sample(epoch));
  }
}

void FillPercentiles(LoadPoint* point) {
  point->p50_ms = workload::PercentileNs(point->run.latencies_ns, 50.0) / 1e6;
  point->p99_ms = workload::PercentileNs(point->run.latencies_ns, 99.0) / 1e6;
  point->p999_ms =
      workload::PercentileNs(point->run.latencies_ns, 99.9) / 1e6;
}

void PrintPoints(const std::vector<LoadPoint>& points) {
  std::printf("\n  %5s %10s %10s %8s %8s %9s %9s %9s  %s\n", "util",
              "offered/s", "acked/s", "acked", "rejected", "p50 (ms)",
              "p99 (ms)", "p999(ms)", "merged top factors (tier shares)");
  for (const LoadPoint& p : points) {
    std::string desc;
    for (const FactorShare& f : p.top_factors) {
      char buf[128];
      std::snprintf(buf, sizeof(buf), "%s%s %.1f%%", desc.empty() ? "" : ", ",
                    f.name.c_str(), f.contribution * 100.0);
      desc += buf;
    }
    for (const TierShare& t : p.tiers) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), " [%s %.2f]", t.name.c_str(), t.share);
      desc += buf;
    }
    std::printf("  %5.2f %10.0f %10.0f %8llu %8llu %9.3f %9.3f %9.3f  %s\n",
                p.utilization, p.offered_per_s, p.run.achieved_per_s,
                static_cast<unsigned long long>(p.run.acked),
                static_cast<unsigned long long>(p.run.rejected), p.p50_ms,
                p.p99_ms, p.p999_ms, desc.c_str());
  }
}

void EmitFactors(FILE* json, const std::vector<FactorShare>& factors) {
  std::fprintf(json, "[");
  for (size_t f = 0; f < factors.size(); ++f) {
    std::fprintf(json, "%s{\"name\": \"%s\", \"contribution\": %.4f}",
                 f == 0 ? "" : ", ", factors[f].name.c_str(),
                 factors[f].contribution);
  }
  std::fprintf(json, "]");
}

}  // namespace

int main() {
  bench::PrintHeader(
      "distload — end-to-end variance decomposed across httpd -> minidb over "
      "the wire");
  std::printf("Expected shape: below saturation backend factors (locks, WAL)\n"
              "dominate; past it the front queue joins them. Cold-start mode\n"
              "must rank dist:cold_start.\n");

  Stack stack(/*cold_start=*/false);

  const workload::OpenLoopResult calibration = workload::RunOpenLoop(
      LoadOptions(stack.front->port(), kCalibrationRate, kCalibrationSeconds,
                  /*seed=*/7));
  if (calibration.connect_failed || calibration.acked == 0) {
    std::fprintf(stderr, "distload: calibration run failed\n");
    return 1;
  }
  const double capacity = calibration.achieved_per_s;
  std::printf("\n  calibration: two-tier capacity ~%.0f req/s\n", capacity);

  statstore::StoreOptions store_options;
  store_options.dir = "bench_dist_store";
  statstore::StatStore store(store_options);
  if (!store.Open()) {
    std::fprintf(stderr, "distload: statstore open failed\n");
    return 1;
  }

  std::vector<LoadPoint> points;
  uint64_t seed = 2000;
  uint64_t epoch = 1;
  for (const double utilization : kUtilizations) {
    LoadPoint point;
    point.utilization = utilization;
    point.offered_per_s = capacity * utilization;
    point.run = workload::RunOpenLoop(LoadOptions(
        stack.front->port(), point.offered_per_s, kMeasureSeconds, seed));
    FillPercentiles(&point);
    TracePoint(&stack, LoadOptions(stack.front->port(), point.offered_per_s,
                                   kTraceSeconds, seed + 1),
               epoch, &store, &point);
    points.push_back(std::move(point));
    seed += 10;
    ++epoch;
  }
  store.Seal();
  PrintPoints(points);

  // Prove the persisted tier series round-trips.
  const std::vector<statstore::SeriesPoint> persisted =
      store.Query(vprof::TierSeriesName("minidb", "share"), 0, epoch);
  std::printf("\n  statstore: %zu tier:minidb:share points persisted\n",
              persisted.size());

  // Cold-start mode: a fresh stack whose backend does not exist until the
  // first request; trace covers the spawn.
  LoadPoint cold_point;
  uint64_t cold_starts = 0;
  {
    Stack cold_stack(/*cold_start=*/true);
    cold_point.utilization = 0.0;
    cold_point.offered_per_s = capacity * 0.4;
    TracePoint(&cold_stack,
               LoadOptions(cold_stack.front->port(), cold_point.offered_per_s,
                           0.5, /*seed=*/4242),
               epoch, nullptr, &cold_point);
    cold_starts = cold_stack.pool->cold_starts();
  }

  bool backend_at_overload = false;
  bool front_at_overload = false;
  for (const FactorShare& f : points.back().top_factors) {
    backend_at_overload = backend_at_overload || IsBackendFactor(f.name);
    front_at_overload = front_at_overload || IsFrontFactor(f.name);
  }
  bool cold_in_top3 = false;
  std::string cold_desc;
  for (const FactorShare& f : cold_point.top_factors) {
    cold_in_top3 = cold_in_top3 || f.name == dist::kColdStartFunc;
    cold_desc += f.name + " ";
  }
  std::printf("\n  cold start: %llu spawn(s); top-3: %s\n",
              static_cast<unsigned long long>(cold_starts),
              cold_desc.c_str());
  std::printf("  acceptance: backend factor at overload: %s; front factor at "
              "overload: %s; dist:cold_start ranked: %s\n",
              backend_at_overload ? "yes" : "NO",
              front_at_overload ? "yes" : "NO", cold_in_top3 ? "yes" : "NO");

  FILE* json = std::fopen("BENCH_dist.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "distload: cannot write BENCH_dist.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"benchmark\": \"distload\",\n");
  std::fprintf(json, "  \"connections\": %d,\n",
               static_cast<int>(kConnections));
  std::fprintf(json,
               "  \"front_net_workers\": %d,\n  \"httpd_workers\": %d,\n"
               "  \"backend_workers\": %d,\n",
               kFrontNetWorkers, kHttpdWorkers, kBackendWorkers);
  std::fprintf(json, "  \"capacity_per_s\": %.1f,\n", capacity);
  std::fprintf(json, "  \"points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const LoadPoint& p = points[i];
    std::fprintf(
        json,
        "    {\"utilization\": %.2f, \"offered_per_s\": %.1f, "
        "\"achieved_per_s\": %.1f, \"acked\": %llu, \"rejected\": %llu, "
        "\"failed\": %llu, \"p50_ms\": %.4f, \"p99_ms\": %.4f, "
        "\"p999_ms\": %.4f, \"top_factors\": ",
        p.utilization, p.offered_per_s, p.run.achieved_per_s,
        static_cast<unsigned long long>(p.run.acked),
        static_cast<unsigned long long>(p.run.rejected),
        static_cast<unsigned long long>(p.run.failed), p.p50_ms, p.p99_ms,
        p.p999_ms);
    EmitFactors(json, p.top_factors);
    std::fprintf(json, ", \"tier_shares\": {");
    for (size_t t = 0; t < p.tiers.size(); ++t) {
      std::fprintf(json, "%s\"%s\": %.4f", t == 0 ? "" : ", ",
                   p.tiers[t].name.c_str(), p.tiers[t].share);
    }
    std::fprintf(json, "}}%s\n", i + 1 < points.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"cold_start\": {\n");
  std::fprintf(json, "    \"spawns\": %llu,\n",
               static_cast<unsigned long long>(cold_starts));
  std::fprintf(json, "    \"spawn_delay_ms\": %d,\n", kColdSpawnDelayMs);
  std::fprintf(json, "    \"top_factors\": ");
  EmitFactors(json, cold_point.top_factors);
  std::fprintf(json, "\n  },\n  \"acceptance\": {\n");
  std::fprintf(json,
               "    \"backend_factor_in_top3_at_overload\": %s,\n"
               "    \"front_factor_in_top3_at_overload\": %s,\n"
               "    \"cold_start_in_top3\": %s\n",
               backend_at_overload ? "true" : "false",
               front_at_overload ? "true" : "false",
               cold_in_top3 ? "true" : "false");
  std::fprintf(json, "  }\n}\n");
  std::fclose(json);
  std::printf("  wrote BENCH_dist.json\n");
  return (backend_at_overload && front_at_overload && cold_in_top3) ? 0 : 1;
}
