// ChaosOrchestrator unit tests: plan determinism, arm/disarm application
// against the live failpoint registry, crash-cycle ordering, valued triggers
// for payload-consuming failpoints, and Finish() cleanup.
#include "src/fault/chaos.h"

#include <string>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "src/fault/failpoint.h"

namespace fault {
namespace {

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DeactivateAll();
    ResetCounters();
  }
  void TearDown() override {
    DeactivateAll();
    ResetCounters();
  }
};

ChaosTargets FaultOnlyTargets() {
  ChaosTargets targets;
  targets.faults = {"chaos_ut/write_error", "chaos_ut/fsync_error",
                    "chaos_ut/stall"};
  return targets;
}

std::string PlanString(const ChaosOrchestrator& chaos) {
  std::string out;
  for (const ChaosEvent& event : chaos.plan()) {
    out += ChaosEventString(event);
    out += '\n';
  }
  return out;
}

TEST_F(ChaosTest, SameSeedGeneratesBitIdenticalPlan) {
  ChaosOptions options;
  options.horizon_steps = 200;
  ChaosOrchestrator a(42, FaultOnlyTargets(), options);
  ChaosOrchestrator b(42, FaultOnlyTargets(), options);
  ASSERT_FALSE(a.plan().empty());
  EXPECT_EQ(PlanString(a), PlanString(b));
  // And a different seed perturbs the schedule.
  ChaosOrchestrator c(43, FaultOnlyTargets(), options);
  EXPECT_NE(PlanString(a), PlanString(c));
}

TEST_F(ChaosTest, PlanEventsAreSortedAndWithinHorizon) {
  ChaosOptions options;
  options.horizon_steps = 150;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    ChaosOrchestrator chaos(seed, FaultOnlyTargets(), options);
    uint64_t prev = 0;
    for (const ChaosEvent& event : chaos.plan()) {
      EXPECT_GE(event.step, prev) << "plan out of order, seed " << seed;
      EXPECT_LT(event.step, options.horizon_steps);
      prev = event.step;
    }
  }
}

TEST_F(ChaosTest, StepArmsAndDisarmsTheLiveRegistry) {
  ChaosOptions options;
  options.horizon_steps = 120;
  options.bursts = 4;
  ChaosOrchestrator chaos(7, FaultOnlyTargets(), options);

  // Replay the plan by hand alongside Step() and require the registry to
  // track the expected armed set exactly.
  std::unordered_set<std::string> expected;
  size_t next = 0;
  const auto& plan = chaos.plan();
  for (uint64_t step = 0; step < options.horizon_steps; ++step) {
    chaos.Step();
    while (next < plan.size() && plan[next].step <= chaos.current_step()) {
      const ChaosEvent& event = plan[next++];
      if (event.kind == ChaosEvent::Kind::kArm) {
        expected.insert(event.target);
      } else if (event.kind == ChaosEvent::Kind::kDisarm) {
        expected.erase(event.target);
      }
    }
    for (const std::string& name : FaultOnlyTargets().faults) {
      EXPECT_EQ(IsActive(name), expected.count(name) > 0)
          << name << " at step " << chaos.current_step();
    }
  }
  EXPECT_TRUE(chaos.done());
  EXPECT_EQ(chaos.applied(), plan.size());
}

TEST_F(ChaosTest, CrashDisarmsEverythingAndRecoverFollows) {
  // The crash callback observes the registry with no orchestrator-armed
  // failpoint active: a dead process takes its injectors with it.
  std::vector<std::string> calls;
  bool armed_during_crash = false;
  ChaosTargets targets = FaultOnlyTargets();
  targets.crash_sites.push_back(
      {"unit-under-test",
       [&] {
         calls.push_back("crash");
         for (const std::string& name : FaultOnlyTargets().faults) {
           armed_during_crash |= IsActive(name);
         }
       },
       [&] { calls.push_back("recover"); }});

  ChaosOptions options;
  options.horizon_steps = 400;
  options.crash_cycles = 3;
  ChaosOrchestrator chaos(11, targets, options);
  chaos.Finish();

  EXPECT_EQ(chaos.crashes_injected(), 3u);
  EXPECT_EQ(chaos.recoveries(), 3u);
  EXPECT_FALSE(armed_during_crash);
  ASSERT_EQ(calls.size(), 6u);
  for (size_t i = 0; i < calls.size(); ++i) {
    EXPECT_EQ(calls[i], i % 2 == 0 ? "crash" : "recover")
        << "crash/recover interleaving broken at event " << i;
  }
}

TEST_F(ChaosTest, FinishLeavesRegistryCleanAndIsIdempotent) {
  ChaosOptions options;
  options.horizon_steps = 300;
  ChaosOrchestrator chaos(99, FaultOnlyTargets(), options);
  chaos.Step(17);  // partially into the storm
  chaos.Finish();
  EXPECT_TRUE(chaos.done());
  EXPECT_EQ(chaos.applied(), chaos.plan().size());
  for (const std::string& name : FaultOnlyTargets().faults) {
    EXPECT_FALSE(IsActive(name)) << name << " left armed after Finish";
  }
  chaos.Finish();  // no-op
  EXPECT_EQ(chaos.applied(), chaos.plan().size());
}

TEST_F(ChaosTest, TrailStringIsTheAppliedPrefix) {
  ChaosOptions options;
  options.horizon_steps = 200;
  ChaosOrchestrator chaos(5, FaultOnlyTargets(), options);
  chaos.Step(options.horizon_steps / 2);
  size_t lines = 0;
  for (char c : chaos.TrailString()) {
    lines += c == '\n';
  }
  EXPECT_EQ(lines, chaos.applied());
  chaos.Finish();
  lines = 0;
  for (char c : chaos.TrailString()) {
    lines += c == '\n';
  }
  EXPECT_EQ(lines, chaos.plan().size());
}

TEST_F(ChaosTest, MidBatchFailpointsGetValuedTriggers) {
  ChaosTargets targets;
  targets.faults = {"redo/crash_mid_batch"};
  ChaosOptions options;
  options.horizon_steps = 500;
  options.bursts = 8;
  options.value_bound = 4096;
  ChaosOrchestrator chaos(3, targets, options);
  size_t arms = 0;
  for (const ChaosEvent& event : chaos.plan()) {
    if (event.kind != ChaosEvent::Kind::kArm) {
      continue;
    }
    ++arms;
    // A payload-consuming failpoint must always be armed with a value.
    EXPECT_NE(ChaosEventString(event).find("value="), std::string::npos)
        << ChaosEventString(event);
  }
  EXPECT_GT(arms, 0u);
  chaos.Finish();
}

TEST_F(ChaosTest, ZeroValueBoundDisablesValuedTriggers) {
  ChaosTargets targets;
  targets.faults = {"redo/crash_mid_batch"};
  ChaosOptions options;
  options.horizon_steps = 300;
  options.value_bound = 0;
  ChaosOrchestrator chaos(4, targets, options);
  for (const ChaosEvent& event : chaos.plan()) {
    EXPECT_EQ(ChaosEventString(event).find("value="), std::string::npos)
        << ChaosEventString(event);
  }
  chaos.Finish();
}

}  // namespace
}  // namespace fault
