file(REMOVE_RECURSE
  "CMakeFiles/vprof_task_queue_test.dir/task_queue_test.cc.o"
  "CMakeFiles/vprof_task_queue_test.dir/task_queue_test.cc.o.d"
  "vprof_task_queue_test"
  "vprof_task_queue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vprof_task_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
