// Instrumented task queue for task-based/event-based concurrency.
//
// Push records the producer thread and enqueue time; Pop attaches the
// "created-by" edge <producer_tid, t_enqueue, consumer_tid, t_dequeue> to the
// consumer's next interval-labeled segment, letting the analysis distinguish
// queueing delay from execution (paper Sections 3.1 and 3.3.2). A worker that
// dequeues a task for a semantic interval must follow Pop with
// WorkOnBehalf(sid): the edge is held pending until the relabeled segment so
// the unlabeled sliver between Pop and WorkOnBehalf cannot swallow it.
#ifndef SRC_VPROF_TASK_QUEUE_H_
#define SRC_VPROF_TASK_QUEUE_H_

#include <deque>
#include <optional>
#include <utility>

#include "src/vprof/runtime.h"
#include "src/vprof/sync.h"

namespace vprof {

template <typename T>
class TaskQueue {
 public:
  TaskQueue() = default;
  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  // Enqueues a task; wakes one waiting consumer.
  void Push(T item) {
    const ThreadId producer =
        IsTracing() ? CurrentThread()->tid() : kNoThread;
    const TimeNs enqueue_time = IsTracing() ? Now() : -1;
    {
      std::lock_guard<Mutex> lock(mu_);
      entries_.push_back(Entry{std::move(item), producer, enqueue_time});
    }
    cv_.NotifyOne();
  }

  // Enqueues only while the queue holds fewer than `limit` entries; returns
  // false (dropping the task) otherwise. The bounded variant producers use
  // to shed load instead of building an unbounded backlog.
  bool PushIfBelow(T item, size_t limit) {
    const ThreadId producer =
        IsTracing() ? CurrentThread()->tid() : kNoThread;
    const TimeNs enqueue_time = IsTracing() ? Now() : -1;
    {
      std::lock_guard<Mutex> lock(mu_);
      if (entries_.size() >= limit) {
        return false;
      }
      entries_.push_back(Entry{std::move(item), producer, enqueue_time});
    }
    cv_.NotifyOne();
    return true;
  }

  // Blocks until a task is available or the queue is closed. Returns
  // std::nullopt only after Close() with an empty queue.
  std::optional<T> Pop() {
    Entry entry;
    {
      std::lock_guard<Mutex> lock(mu_);
      if (entries_.empty() && !closed_) {
        WaitForWork();
      }
      if (entries_.empty()) {
        return std::nullopt;  // closed
      }
      entry = std::move(entries_.front());
      entries_.pop_front();
    }
    if (IsTracing() && entry.producer_tid != kNoThread) {
      CurrentThread()->AttachGeneratorEdge(entry.producer_tid,
                                           entry.enqueue_time, Now());
    }
    return std::move(entry.item);
  }

  // Non-blocking pop; returns std::nullopt when empty.
  std::optional<T> TryPop() {
    Entry entry;
    {
      std::lock_guard<Mutex> lock(mu_);
      if (entries_.empty()) {
        return std::nullopt;
      }
      entry = std::move(entries_.front());
      entries_.pop_front();
    }
    if (IsTracing() && entry.producer_tid != kNoThread) {
      CurrentThread()->AttachGeneratorEdge(entry.producer_tid,
                                           entry.enqueue_time, Now());
    }
    return std::move(entry.item);
  }

  // Wakes all waiters; subsequent Pops drain the queue then return nullopt.
  void Close() {
    {
      std::lock_guard<Mutex> lock(mu_);
      closed_ = true;
    }
    cv_.NotifyAll();
  }

  size_t Size() {
    std::lock_guard<Mutex> lock(mu_);
    return entries_.size();
  }

 private:
  struct Entry {
    T item{};
    ThreadId producer_tid = kNoThread;
    TimeNs enqueue_time = -1;
  };

  // Precondition: mu_ held, queue empty, not closed. Waits with the blocked
  // state kQueueWait so the analysis can classify the delay as queueing.
  void WaitForWork() {
    if (!IsTracing()) {
      cv_.Wait(mu_, [this] { return !entries_.empty() || closed_; });
      return;
    }
    ThreadState* thread = CurrentThread();
    thread->BeginBlocked(SegmentState::kQueueWait, Now());
    cv_.Wait(mu_, [this] { return !entries_.empty() || closed_; });
    thread->EndBlocked(Now(), kNoThread, -1);
  }

  Mutex mu_;
  CondVar cv_;
  std::deque<Entry> entries_;
  bool closed_ = false;
};

}  // namespace vprof

#endif  // SRC_VPROF_TASK_QUEUE_H_
