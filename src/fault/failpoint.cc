#include "src/fault/failpoint.h"

#include <mutex>
#include <unordered_map>

#include "src/statkit/rng.h"

namespace fault {

namespace detail {
std::atomic<uint32_t> g_active_count{0};
}  // namespace detail

namespace {

struct Failpoint {
  bool armed = false;
  Trigger trigger;
  uint64_t activation_hits = 0;  // evaluations since the last Activate
  bool fired = false;            // kOneShot latch
  statkit::Rng rng{1};
  // Lifetime counters; survive Deactivate so tests can assert afterwards.
  uint64_t hits = 0;
  uint64_t triggers = 0;
};

struct Registry {
  std::mutex mu;
  // Keyed by name. Entries persist after Deactivate to keep counters.
  std::unordered_map<std::string, Failpoint> points;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

}  // namespace

namespace detail {

bool Evaluate(std::string_view name, uint64_t* value) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(std::string(name));
  if (it == registry.points.end() || !it->second.armed) {
    return false;
  }
  Failpoint& fp = it->second;
  const uint64_t hit = fp.activation_hits++;
  ++fp.hits;
  bool fire = false;
  switch (fp.trigger.kind) {
    case Trigger::Kind::kAlways:
      fire = true;
      break;
    case Trigger::Kind::kOneShot:
      if (!fp.fired && hit >= fp.trigger.skip) {
        fp.fired = true;
        fire = true;
      }
      break;
    case Trigger::Kind::kEveryNth:
      fire = (hit + 1) % fp.trigger.n == 0;
      break;
    case Trigger::Kind::kProbability:
      fire = fp.rng.NextBool(fp.trigger.p);
      break;
  }
  if (fire) {
    ++fp.triggers;
    if (value != nullptr) {
      *value = fp.trigger.value;
    }
  }
  return fire;
}

}  // namespace detail

void Activate(std::string_view name, Trigger trigger) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  Failpoint& fp = registry.points[std::string(name)];
  if (!fp.armed) {
    detail::g_active_count.fetch_add(1, std::memory_order_relaxed);
  }
  fp.armed = true;
  fp.trigger = trigger;
  fp.activation_hits = 0;
  fp.fired = false;
  fp.rng.Seed(trigger.seed);
}

void Deactivate(std::string_view name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(std::string(name));
  if (it == registry.points.end() || !it->second.armed) {
    return;
  }
  it->second.armed = false;
  detail::g_active_count.fetch_sub(1, std::memory_order_relaxed);
}

void DeactivateAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (auto& [name, fp] : registry.points) {
    if (fp.armed) {
      fp.armed = false;
      detail::g_active_count.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

bool IsActive(std::string_view name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(std::string(name));
  return it != registry.points.end() && it->second.armed;
}

uint64_t HitCount(std::string_view name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(std::string(name));
  return it == registry.points.end() ? 0 : it->second.hits;
}

uint64_t TriggerCount(std::string_view name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(std::string(name));
  return it == registry.points.end() ? 0 : it->second.triggers;
}

void ResetCounters() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (auto& [name, fp] : registry.points) {
    fp.hits = 0;
    fp.triggers = 0;
  }
}

}  // namespace fault
