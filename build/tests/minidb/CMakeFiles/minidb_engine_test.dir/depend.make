# Empty dependencies file for minidb_engine_test.
# This may be replaced when dependencies are built.
