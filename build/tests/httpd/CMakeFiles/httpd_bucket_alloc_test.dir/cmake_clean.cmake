file(REMOVE_RECURSE
  "CMakeFiles/httpd_bucket_alloc_test.dir/bucket_alloc_test.cc.o"
  "CMakeFiles/httpd_bucket_alloc_test.dir/bucket_alloc_test.cc.o.d"
  "httpd_bucket_alloc_test"
  "httpd_bucket_alloc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/httpd_bucket_alloc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
