// minipg: a worker-per-connection transactional engine, the Postgres 9.6
// stand-in for the paper's Section 4.6 case study.
//
// Each transaction (semantic interval) parses into a small plan tree executed
// through ExecProcNode; writes insert WAL records, and commit flushes the WAL
// through the single exclusive write lock (LWLockAcquireOrWait) and releases
// SIREAD predicate locks — the three variance sources of paper Table 6.
//
//   exec_simple_query
//    |- ExecProcNode (recursive) -- ExecSeqScan / ExecIndexScan /
//    |                              ExecModifyTable / ExecNestLoop / ExecAgg
//    `- CommitTransaction
//        |- XLogFlush -- LWLockAcquireOrWait
//        |            `- issue_xlog_fsync
//        `- ReleasePredicateLocks
#ifndef SRC_MINIPG_ENGINE_H_
#define SRC_MINIPG_ENGINE_H_

#include <atomic>
#include <memory>

#include "src/minidb/engine.h"  // reuses TxnRequest/TxnType shapes
#include "src/minipg/executor.h"
#include "src/minipg/predicate_locks.h"
#include "src/minipg/wal.h"
#include "src/vprof/analysis/call_graph.h"
#include "src/vprof/service/vprofd.h"

namespace minipg {

struct PgConfig {
  // Number of independent WAL units (1 = stock Postgres; 2 = the paper's
  // distributed-logging fix, Figure 4 right).
  int wal_units = 1;

  // Who performs the WAL I/O at commit: leader-based group commit (default)
  // or the per-commit exclusive write+fsync baseline.
  CommitMode commit_mode = CommitMode::kGroupCommit;

  // Serializable isolation (predicate locking) on/off.
  bool serializable = true;

  simio::DiskConfig wal_disk;
  uint64_t seed = 4321;
};

class PgEngine {
 public:
  explicit PgEngine(const PgConfig& config);

  PgEngine(const PgEngine&) = delete;
  PgEngine& operator=(const PgEngine&) = delete;

  // Executes one transaction as a semantic interval; returns true on commit.
  bool Execute(const minidb::TxnRequest& request);

  // Graceful shutdown: refuses new transactions, then drains every WAL
  // unit — backends already inside XLogFlush collect their acks, and each
  // unit lands its pending batch with one final write+fsync. No acked
  // commit is lost and no backend is left on a flush-round event.
  void Stop();

  bool stopped() const { return stopped_.load(std::memory_order_acquire); }

  static void RegisterCallGraph(vprof::CallGraph* graph);

  // Starts the always-on profiling service (vprofd) rooted at
  // "exec_simple_query"; see minidb::Engine::StartOnlineProfiler.
  static std::unique_ptr<vprof::Vprofd> StartOnlineProfiler(
      vprof::VprofdOptions options = {});

  // Scale-out gauges for vprofd (VprofdOptions.app_gauges): per-unit WAL
  // write-lock waits and group-commit batch sizes.
  std::vector<vprof::AppGauge> ScaleGauges();

  // Robustness gauges: per-engine totals of WAL I/O errors, wedges, crashes,
  // and the commit/abort counters — the counters a chaos storm moves.
  std::vector<vprof::AppGauge> RobustnessGauges();

  Wal& wal() { return wal_; }
  PredicateLockManager& predicate_locks() { return predicate_locks_; }
  const PgConfig& config() const { return config_; }
  uint64_t committed_count() const {
    return committed_.load(std::memory_order_relaxed);
  }
  uint64_t aborted_count() const {
    return aborted_.load(std::memory_order_relaxed);
  }

 private:
  std::unique_ptr<PlanNode> BuildPlan(const minidb::TxnRequest& request,
                                      statkit::Rng& rng) const;
  // Returns false when the WAL refuses the commit (crash or I/O error).
  bool CommitTransaction(ExecContext* context);

  PgConfig config_;
  Wal wal_;
  PredicateLockManager predicate_locks_;
  Executor executor_;
  std::atomic<uint64_t> next_txn_id_{1};
  std::atomic<uint64_t> committed_{0};
  std::atomic<uint64_t> aborted_{0};
  std::atomic<bool> stopped_{false};
};

}  // namespace minipg

#endif  // SRC_MINIPG_ENGINE_H_
