#include "src/vprof/registry.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace vprof {
namespace {

TEST(RegistryTest, RegisterIsIdempotent) {
  const FuncId a = RegisterFunction("reg_alpha");
  const FuncId b = RegisterFunction("reg_alpha");
  EXPECT_EQ(a, b);
}

TEST(RegistryTest, DistinctNamesDistinctIds) {
  const FuncId a = RegisterFunction("reg_one");
  const FuncId b = RegisterFunction("reg_two");
  EXPECT_NE(a, b);
}

TEST(RegistryTest, LookupFindsRegistered) {
  const FuncId a = RegisterFunction("reg_lookup");
  EXPECT_EQ(LookupFunction("reg_lookup"), a);
  EXPECT_EQ(LookupFunction("reg_never_registered_xyz"), kInvalidFunc);
}

TEST(RegistryTest, NameRoundTrip) {
  const FuncId a = RegisterFunction("reg_name_rt");
  EXPECT_EQ(FunctionName(a), "reg_name_rt");
  EXPECT_EQ(FunctionName(kInvalidFunc), "");
}

TEST(RegistryTest, EnableDisable) {
  const FuncId a = RegisterFunction("reg_toggle");
  SetFunctionEnabled(a, true);
  EXPECT_TRUE(IsFunctionEnabled(a));
  SetFunctionEnabled(a, false);
  EXPECT_FALSE(IsFunctionEnabled(a));
}

TEST(RegistryTest, DisableAllClearsEverything) {
  const FuncId a = RegisterFunction("reg_d1");
  const FuncId b = RegisterFunction("reg_d2");
  SetFunctionEnabled(a, true);
  SetFunctionEnabled(b, true);
  DisableAllFunctions();
  EXPECT_FALSE(IsFunctionEnabled(a));
  EXPECT_FALSE(IsFunctionEnabled(b));
  EXPECT_TRUE(EnabledFunctions().empty());
}

TEST(RegistryTest, EnabledFunctionsLists) {
  DisableAllFunctions();
  const FuncId a = RegisterFunction("reg_e1");
  SetFunctionEnabled(a, true);
  const auto enabled = EnabledFunctions();
  ASSERT_EQ(enabled.size(), 1u);
  EXPECT_EQ(enabled[0], a);
  DisableAllFunctions();
}

TEST(RegistryTest, ConcurrentRegistrationSameName) {
  std::vector<std::thread> threads;
  std::vector<FuncId> ids(8, kInvalidFunc);
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back(
        [&ids, i] { ids[static_cast<size_t>(i)] = RegisterFunction("reg_race"); });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (FuncId id : ids) {
    EXPECT_EQ(id, ids[0]);
  }
}

TEST(RegistryTest, AllFunctionNamesIndexable) {
  const FuncId a = RegisterFunction("reg_index_check");
  const auto names = AllFunctionNames();
  ASSERT_GT(names.size(), a);
  EXPECT_EQ(names[a], "reg_index_check");
}

}  // namespace
}  // namespace vprof
