#include "src/workload/tpcc.h"

#include <algorithm>
#include <atomic>
#include <map>

#include <gtest/gtest.h>

#include "src/fault/failpoint.h"

namespace workload {
namespace {

TEST(TpccGeneratorTest, MixMatchesConfiguredPercentages) {
  TpccOptions options;
  TpccGenerator generator(options, 4);
  statkit::Rng rng(1);
  std::map<minidb::TxnType, int> counts;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    ++counts[generator.Next(rng).type];
  }
  EXPECT_NEAR(counts[minidb::TxnType::kNewOrder] * 100.0 / n, 45.0, 2.0);
  EXPECT_NEAR(counts[minidb::TxnType::kPayment] * 100.0 / n, 43.0, 2.0);
  EXPECT_NEAR(counts[minidb::TxnType::kOrderStatus] * 100.0 / n, 4.0, 1.0);
  EXPECT_NEAR(counts[minidb::TxnType::kDelivery] * 100.0 / n, 4.0, 1.0);
  EXPECT_NEAR(counts[minidb::TxnType::kStockLevel] * 100.0 / n, 4.0, 1.0);
}

TEST(TpccGeneratorTest, RequestsWithinScale) {
  TpccOptions options;
  TpccGenerator generator(options, 3);
  statkit::Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    const minidb::TxnRequest request = generator.Next(rng);
    EXPECT_GE(request.warehouse, 0);
    EXPECT_LT(request.warehouse, 3);
    EXPECT_GE(request.district, 0);
    EXPECT_LT(request.district, minidb::Engine::kDistrictsPerWarehouse);
    EXPECT_GE(request.customer, 0);
    EXPECT_LT(request.customer, minidb::Engine::kCustomersPerDistrict);
    for (int64_t item : request.items) {
      EXPECT_GE(item, 0);
      EXPECT_LT(item, minidb::Engine::kItemsPerWarehouse);
    }
    if (request.type == minidb::TxnType::kNewOrder) {
      EXPECT_GE(static_cast<int>(request.items.size()), options.min_items);
      EXPECT_LE(static_cast<int>(request.items.size()), options.max_items);
    }
  }
}

TEST(TpccGeneratorTest, DeterministicForSeed) {
  TpccOptions options;
  TpccGenerator generator(options, 2);
  statkit::Rng a(7);
  statkit::Rng b(7);
  for (int i = 0; i < 100; ++i) {
    const auto ra = generator.Next(a);
    const auto rb = generator.Next(b);
    EXPECT_EQ(ra.type, rb.type);
    EXPECT_EQ(ra.warehouse, rb.warehouse);
    EXPECT_EQ(ra.items, rb.items);
  }
}

TEST(TpccGeneratorTest, ZipfSkewConcentratesCustomers) {
  TpccOptions skewed;
  skewed.customer_zipf_theta = 0.99;
  skewed.item_zipf_theta = 0.99;
  TpccGenerator generator(skewed, 2);
  statkit::Rng rng(3);
  std::map<int64_t, int> customer_counts;
  std::map<int64_t, int> item_counts;
  for (int i = 0; i < 20000; ++i) {
    const auto request = generator.Next(rng);
    ++customer_counts[request.customer];
    for (int64_t item : request.items) {
      ++item_counts[item];
    }
  }
  // Customer 0 (hottest rank) dominates a mid-rank customer heavily.
  EXPECT_GT(customer_counts[0], customer_counts[150] * 10);
  EXPECT_GT(item_counts[0], item_counts[1000] * 10);
}

TEST(TpccGeneratorTest, ZeroThetaStaysUniform) {
  TpccOptions uniform;  // thetas default to 0
  TpccGenerator generator(uniform, 2);
  statkit::Rng rng(4);
  std::map<int64_t, int> counts;
  for (int i = 0; i < 30000; ++i) {
    ++counts[generator.Next(rng).customer];
  }
  // No single customer should dominate under the uniform default.
  int max_count = 0;
  for (const auto& [customer, count] : counts) {
    max_count = std::max(max_count, count);
  }
  EXPECT_LT(max_count, 300);  // ~100 expected per customer
}

TEST(TpccDriverTest, RunWithCustomExecutorCountsResults) {
  TpccOptions options;
  options.threads = 2;
  options.transactions_per_thread = 25;
  TpccDriver driver(nullptr, options);
  std::atomic<int> calls{0};
  const TpccResult result = driver.RunWith(
      [&](const minidb::TxnRequest&) {
        const int n = calls.fetch_add(1);
        return n % 5 != 0;  // every 5th "aborts"
      },
      2);
  EXPECT_EQ(calls.load(), 50);
  EXPECT_EQ(result.committed, 40u);
  EXPECT_EQ(result.aborted, 10u);
  EXPECT_EQ(result.latencies_ns.size(), 40u);
  EXPECT_GT(result.throughput_tps, 0.0);
  // Bool executors carry no error type: failures are final, never retried.
  EXPECT_EQ(result.retries, 0u);
  EXPECT_EQ(result.non_retryable_aborts, 10u);
  EXPECT_EQ(result.retries_exhausted, 0u);
}

TEST(TpccDriverTest, RetryableAbortsAreRetriedWithBackoff) {
  TpccOptions options;
  options.threads = 1;
  options.transactions_per_thread = 10;
  options.max_retries = 3;
  options.backoff_base_us = 10.0;
  options.backoff_cap_us = 100.0;
  TpccDriver driver(nullptr, options);
  // Every request fails once with a retryable error, then commits.
  std::atomic<int> attempts{0};
  int attempts_this_request = 0;
  const TpccResult result = driver.RunTyped(
      [&](const minidb::TxnRequest&) {
        attempts.fetch_add(1);
        minidb::TxnOutcome outcome;
        if (attempts_this_request == 0) {
          ++attempts_this_request;
          outcome.committed = false;
          outcome.error = minidb::TxnError::kLockTimeout;
        } else {
          attempts_this_request = 0;
          outcome.committed = true;
        }
        return outcome;
      },
      2);
  EXPECT_EQ(attempts.load(), 20);  // each request: 1 failure + 1 retry
  EXPECT_EQ(result.committed, 10u);
  EXPECT_EQ(result.aborted, 0u);
  EXPECT_EQ(result.retries, 10u);
  EXPECT_EQ(result.retries_exhausted, 0u);
  EXPECT_GT(result.backoff_time_us, 0.0);
}

TEST(TpccDriverTest, RetriesExhaustedAfterMaxAttempts) {
  TpccOptions options;
  options.threads = 1;
  options.transactions_per_thread = 4;
  options.max_retries = 2;
  options.backoff_base_us = 5.0;
  options.backoff_cap_us = 20.0;
  TpccDriver driver(nullptr, options);
  std::atomic<int> attempts{0};
  const TpccResult result = driver.RunTyped(
      [&](const minidb::TxnRequest&) {
        attempts.fetch_add(1);
        minidb::TxnOutcome outcome;
        outcome.committed = false;
        outcome.error = minidb::TxnError::kDeadlock;  // always retryable
        return outcome;
      },
      2);
  EXPECT_EQ(attempts.load(), 4 * 3);  // initial attempt + 2 retries each
  EXPECT_EQ(result.committed, 0u);
  EXPECT_EQ(result.aborted, 4u);
  EXPECT_EQ(result.retries, 8u);
  EXPECT_EQ(result.retries_exhausted, 4u);
  EXPECT_EQ(result.non_retryable_aborts, 0u);
}

TEST(TpccDriverTest, LogCrashIsNotRetried) {
  TpccOptions options;
  options.threads = 1;
  options.transactions_per_thread = 3;
  TpccDriver driver(nullptr, options);
  std::atomic<int> attempts{0};
  const TpccResult result = driver.RunTyped(
      [&](const minidb::TxnRequest&) {
        attempts.fetch_add(1);
        minidb::TxnOutcome outcome;
        outcome.committed = false;
        outcome.error = minidb::TxnError::kLogCrashed;
        return outcome;
      },
      2);
  EXPECT_EQ(attempts.load(), 3);  // a crashed log needs recovery, not retries
  EXPECT_EQ(result.retries, 0u);
  EXPECT_EQ(result.non_retryable_aborts, 3u);
}

// End to end: injected log-device write errors abort commits with a
// retryable kIoError; the driver retries them into eventual commits, and the
// engine's aborted_count() delta is surfaced in the stats. (Fsync errors are
// deliberately not used here: a failed fsync wedges the log — fsyncgate —
// and is not retryable.)
TEST(TpccDriverTest, DriverRetriesInjectedLogIoErrors) {
  fault::DeactivateAll();
  fault::ResetCounters();
  minidb::EngineConfig config = minidb::EngineConfig::MemoryResident();
  config.warehouses = 2;
  config.data_disk.read_mu = 0.5;
  config.data_disk.write_mu = 0.5;
  config.data_disk.serialize_access = false;
  config.log_disk.write_mu = 0.5;
  config.log_disk.fsync_mu = 1.0;
  config.log_disk.fsync_sigma = 0.05;
  config.log_disk.fsync_spike_prob = 0.0;
  config.log_disk.serialize_access = false;
  config.log_disk.error_latency_us = 5.0;
  config.log_disk.fault_scope = "tpcc_retry_log";
  minidb::Engine engine(config);

  TpccOptions options;
  options.threads = 1;
  options.transactions_per_thread = 40;
  options.max_retries = 4;
  options.backoff_base_us = 10.0;
  options.backoff_cap_us = 50.0;
  options.seed = 42;
  TpccDriver driver(&engine, options);
  TpccResult result;
  {
    fault::ScopedFailpoint fp("tpcc_retry_log/write_error",
                              fault::Trigger::EveryNth(5));
    result = driver.Run();
  }
  EXPECT_EQ(result.committed + result.aborted, 40u);
  EXPECT_GT(result.retries, 0u);  // some commits hit the failing write
  // Every driver-level retry corresponds to an engine-level abort, as do
  // exhausted and non-retryable failures.
  EXPECT_EQ(result.engine_aborts, engine.aborted_count());
  EXPECT_GE(result.engine_aborts, result.retries);
  // Retried transactions eventually committed: the error storm cost
  // throughput, not correctness.
  EXPECT_GT(result.committed, 30u);
  fault::DeactivateAll();
  fault::ResetCounters();
}

}  // namespace
}  // namespace workload
