#include "src/vprof/full_tracer.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <vector>

#include "src/vprof/fastclock.h"
#include "src/vprof/registry.h"

namespace vprof {

namespace {

// Per-thread event ring. 2^15 events * 24B ≈ 0.75 MiB per recording thread.
constexpr size_t kRingCapacity = 1u << 15;

struct alignas(kCacheLineSize) Ring {
  // Monotonic count of events ever pushed; slot = head % capacity. Only the
  // owner thread writes slots; collectors read `head` (and the seen-bitmap)
  // through atomics, and read slots only under external quiescence.
  std::atomic<uint64_t> head{0};
  // Bitmap of FuncIds recorded by this thread, for lock-free distinct-symbol
  // stats even while recording continues.
  std::atomic<uint64_t> seen[kMaxFunctions / 64]{};
  FullTraceEvent events[kRingCapacity];

  void Push(FuncId func, bool entry) {
    const uint64_t n = head.load(std::memory_order_relaxed);
    FullTraceEvent& slot = events[n % kRingCapacity];
    slot.name_hash = FunctionNameHash(func);
    slot.time = fastclock::NowNs();
    slot.func = func;
    slot.entry = entry;
    head.store(n + 1, std::memory_order_release);
    if (func < kMaxFunctions) {
      const uint64_t bit = 1ull << (func & 63);
      // Avoid the RMW when the bit is already set (the common case).
      if ((seen[func >> 6].load(std::memory_order_relaxed) & bit) == 0) {
        seen[func >> 6].fetch_or(bit, std::memory_order_relaxed);
      }
    }
  }
};

struct TracerState {
  std::mutex mu;  // guards `rings` growth only; never taken on the hot path
  std::vector<std::unique_ptr<Ring>> rings;
};

TracerState& State() {
  static TracerState* state = new TracerState();
  return *state;
}

thread_local Ring* tls_ring = nullptr;

Ring* CurrentRing() {
  if (tls_ring == nullptr) {
    TracerState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    state.rings.push_back(std::make_unique<Ring>());
    tls_ring = state.rings.back().get();
  }
  return tls_ring;
}

}  // namespace

void FullTracerOnEntry(FuncId func) { CurrentRing()->Push(func, true); }
void FullTracerOnExit(FuncId func) { CurrentRing()->Push(func, false); }

FullTraceStats GetFullTracerStats() {
  TracerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  FullTraceStats stats;
  uint64_t distinct[kMaxFunctions / 64] = {};
  for (const auto& ring : state.rings) {
    const uint64_t head = ring->head.load(std::memory_order_acquire);
    if (head == 0) {
      continue;
    }
    ++stats.threads;
    stats.events += head;
    stats.dropped += head > kRingCapacity ? head - kRingCapacity : 0;
    for (size_t w = 0; w < kMaxFunctions / 64; ++w) {
      distinct[w] |= ring->seen[w].load(std::memory_order_relaxed);
    }
  }
  for (const uint64_t word : distinct) {
    stats.distinct_functions += static_cast<uint64_t>(__builtin_popcountll(word));
  }
  return stats;
}

std::vector<FullTraceEvent> CollectFullTraceEvents() {
  TracerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  std::vector<FullTraceEvent> out;
  for (const auto& ring : state.rings) {
    const uint64_t head = ring->head.load(std::memory_order_acquire);
    const uint64_t n = std::min<uint64_t>(head, kRingCapacity);
    const uint64_t first = head - n;
    for (uint64_t i = 0; i < n; ++i) {
      out.push_back(ring->events[(first + i) % kRingCapacity]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FullTraceEvent& a, const FullTraceEvent& b) {
              return a.time < b.time;
            });
  return out;
}

void ResetFullTracer() {
  TracerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  for (auto& ring : state.rings) {
    ring->head.store(0, std::memory_order_relaxed);
    for (auto& word : ring->seen) {
      word.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace vprof
