# Empty compiler generated dependencies file for httpd_filters_test.
# This may be replaced when dependencies are built.
