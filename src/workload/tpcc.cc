#include "src/workload/tpcc.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>

#include "src/simio/disk.h"

namespace workload {

using minidb::TxnRequest;
using minidb::TxnType;

TpccGenerator::TpccGenerator(const TpccOptions& options, int warehouses)
    : options_(options), warehouses_(warehouses) {
  if (options.customer_zipf_theta > 0.0) {
    customer_zipf_ = std::make_unique<statkit::ZipfGenerator>(
        static_cast<uint64_t>(minidb::Engine::kCustomersPerDistrict),
        options.customer_zipf_theta);
  }
  if (options.item_zipf_theta > 0.0) {
    item_zipf_ = std::make_unique<statkit::ZipfGenerator>(
        static_cast<uint64_t>(minidb::Engine::kItemsPerWarehouse),
        options.item_zipf_theta);
  }
}

TxnRequest TpccGenerator::Next(statkit::Rng& rng) const {
  return Next(rng, /*home_warehouse=*/-1);
}

TxnRequest TpccGenerator::Next(statkit::Rng& rng, int home_warehouse) const {
  TxnRequest request;
  const int roll = static_cast<int>(rng.NextBelow(100));
  if (roll < options_.pct_new_order) {
    request.type = TxnType::kNewOrder;
  } else if (roll < options_.pct_new_order + options_.pct_payment) {
    request.type = TxnType::kPayment;
  } else if (roll < options_.pct_new_order + options_.pct_payment +
                        options_.pct_order_status) {
    request.type = TxnType::kOrderStatus;
  } else if (roll < options_.pct_new_order + options_.pct_payment +
                        options_.pct_order_status + options_.pct_delivery) {
    request.type = TxnType::kDelivery;
  } else {
    request.type = TxnType::kStockLevel;
  }

  if (options_.partition_by_warehouse && home_warehouse >= 0) {
    request.warehouse = home_warehouse % warehouses_;
    if (request.type == TxnType::kPayment && warehouses_ > 1 &&
        rng.NextDouble() < options_.remote_payment_fraction) {
      // Remote payment: a uniformly-chosen warehouse other than home.
      int remote = static_cast<int>(
          rng.NextBelow(static_cast<uint64_t>(warehouses_ - 1)));
      if (remote >= request.warehouse) {
        ++remote;
      }
      request.warehouse = remote;
    }
  } else {
    request.warehouse =
        static_cast<int>(rng.NextBelow(static_cast<uint64_t>(warehouses_)));
  }
  request.district = static_cast<int>(
      rng.NextBelow(minidb::Engine::kDistrictsPerWarehouse));
  request.customer =
      customer_zipf_ != nullptr
          ? static_cast<int64_t>(customer_zipf_->Sample(rng))
          : static_cast<int64_t>(rng.NextBelow(
                static_cast<uint64_t>(minidb::Engine::kCustomersPerDistrict)));

  if (request.type == TxnType::kNewOrder ||
      request.type == TxnType::kStockLevel) {
    const int count = static_cast<int>(rng.NextInRange(options_.min_items,
                                                       options_.max_items));
    request.items.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
      request.items.push_back(
          item_zipf_ != nullptr
              ? static_cast<int64_t>(item_zipf_->Sample(rng))
              : static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(
                    minidb::Engine::kItemsPerWarehouse))));
    }
  }
  return request;
}

TpccDriver::TpccDriver(minidb::Engine* engine, const TpccOptions& options)
    : engine_(engine), options_(options) {}

TpccResult TpccDriver::Run() {
  const uint64_t engine_aborts_before = engine_->aborted_count();
  TpccResult result = RunTyped(
      [this](const TxnRequest& request) { return engine_->Execute(request); },
      engine_->config().warehouses);
  result.engine_aborts = engine_->aborted_count() - engine_aborts_before;
  return result;
}

TpccResult TpccDriver::RunWith(const Executor& executor, int warehouses) {
  // A bool executor carries no error type, so every failure is final.
  return RunTyped(
      [&executor](const TxnRequest& request) {
        minidb::TxnOutcome outcome;
        outcome.committed = executor(request);
        return outcome;
      },
      warehouses);
}

TpccResult TpccDriver::RunUntil(const std::atomic<bool>& stop) {
  const uint64_t engine_aborts_before = engine_->aborted_count();
  TpccResult result = RunTypedUntil(
      [this](const TxnRequest& request) { return engine_->Execute(request); },
      engine_->config().warehouses, stop);
  result.engine_aborts = engine_->aborted_count() - engine_aborts_before;
  return result;
}

TpccResult TpccDriver::RunTyped(const TypedExecutor& executor, int warehouses) {
  return RunLoop(executor, warehouses, nullptr);
}

TpccResult TpccDriver::RunTypedUntil(const TypedExecutor& executor,
                                     int warehouses,
                                     const std::atomic<bool>& stop) {
  return RunLoop(executor, warehouses, &stop);
}

TpccResult TpccDriver::RunLoop(const TypedExecutor& executor, int warehouses,
                               const std::atomic<bool>* stop) {
  TpccResult result;
  std::mutex result_mu;
  const TpccGenerator generator(options_, warehouses);

  const auto run_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(options_.threads));
  for (int t = 0; t < options_.threads; ++t) {
    threads.emplace_back([&, t] {
      statkit::Rng rng(options_.seed * 1000003 + static_cast<uint64_t>(t));
      // Home-warehouse affinity for partitioned runs; -1 = uniform draws.
      const int home = options_.partition_by_warehouse && warehouses > 0
                           ? t % warehouses
                           : -1;
      std::vector<double> local_latencies;
      local_latencies.reserve(static_cast<size_t>(options_.transactions_per_thread));
      uint64_t local_committed = 0;
      uint64_t local_aborted = 0;
      uint64_t local_retries = 0;
      uint64_t local_exhausted = 0;
      uint64_t local_non_retryable = 0;
      double local_backoff_us = 0.0;
      // Bounded run by default; open-ended (until `stop`) for long-running
      // server modes.
      for (int i = 0; stop != nullptr
                          ? !stop->load(std::memory_order_acquire)
                          : i < options_.transactions_per_thread;
           ++i) {
        const TxnRequest request = generator.Next(rng, home);
        const auto t0 = std::chrono::steady_clock::now();
        minidb::TxnOutcome outcome;
        int attempt = 0;
        for (;;) {
          outcome = executor(request);
          if (outcome.committed || !outcome.retryable() ||
              attempt >= options_.max_retries) {
            break;
          }
          // Capped exponential backoff with deterministic jitter in
          // [0.5, 1.0) of the nominal delay.
          const double nominal =
              std::min(options_.backoff_cap_us,
                       options_.backoff_base_us *
                           static_cast<double>(1ull << std::min(attempt, 20)));
          const double backoff = nominal * (0.5 + 0.5 * rng.NextDouble());
          local_backoff_us += backoff;
          simio::SleepUs(backoff);
          ++attempt;
          ++local_retries;
        }
        const auto t1 = std::chrono::steady_clock::now();
        if (outcome.committed) {
          ++local_committed;
          local_latencies.push_back(
              std::chrono::duration<double, std::nano>(t1 - t0).count());
        } else {
          ++local_aborted;
          if (outcome.retryable()) {
            ++local_exhausted;  // retryable, but attempts ran out
          } else {
            ++local_non_retryable;
          }
        }
        if (options_.think_time_us > 0.0) {
          simio::SleepUs(options_.think_time_us);
        }
      }
      std::lock_guard<std::mutex> lock(result_mu);
      result.latencies_ns.insert(result.latencies_ns.end(),
                                 local_latencies.begin(), local_latencies.end());
      result.committed += local_committed;
      result.aborted += local_aborted;
      result.retries += local_retries;
      result.retries_exhausted += local_exhausted;
      result.non_retryable_aborts += local_non_retryable;
      result.backoff_time_us += local_backoff_us;
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  const auto run_end = std::chrono::steady_clock::now();
  result.duration_s = std::chrono::duration<double>(run_end - run_start).count();
  result.throughput_tps =
      result.duration_s > 0.0
          ? static_cast<double>(result.committed) / result.duration_s
          : 0.0;
  return result;
}

}  // namespace workload
