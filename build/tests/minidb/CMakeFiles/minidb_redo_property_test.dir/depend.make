# Empty dependencies file for minidb_redo_property_test.
# This may be replaced when dependencies are built.
