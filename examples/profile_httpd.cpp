// Profile httpd (the Apache stand-in): request latency variance traces back
// to bucket-allocator memory pressure, visible both as apr_bucket_alloc
// variance and as *covariances* between filter-chain functions that share
// the allocator — the paper's Section 4.7 case study. Then apply the bulk
// pre-allocation fix and compare.
//
// This example also demonstrates cross-thread semantic intervals: the
// interval begins on the submitting (client) thread and ends after a pool
// worker processes the request; VProfiler stitches the critical path across
// the queue hop via the created-by edge.
//
// Build & run:  ./build/examples/profile_httpd
#include <cstdio>

#include "src/httpd/server.h"
#include "src/statkit/summary.h"
#include "src/vprof/analysis/profiler.h"
#include "src/workload/ab.h"

namespace {

httpd::HttpdConfig ServerConfig(bool bulk) {
  httpd::HttpdConfig config;
  config.workers = 4;
  config.bulk_allocation = bulk;
  config.global_free_blocks = 8;
  return config;
}

statkit::Summary RunOnce(bool bulk) {
  httpd::HttpServer server(ServerConfig(bulk));
  workload::AbOptions options;
  options.clients = 4;
  options.requests_per_client = 2000;
  workload::AbDriver driver(&server, options);
  const workload::AbResult result = driver.Run();
  server.Shutdown();
  return statkit::Summarize(result.latencies_ns);
}

}  // namespace

int main() {
  std::printf("Step 1: profile request latency variance (stock allocator).\n\n");

  httpd::HttpServer server(ServerConfig(/*bulk=*/false));
  vprof::CallGraph graph;
  httpd::HttpServer::RegisterCallGraph(&graph);

  workload::AbOptions options;
  options.clients = 4;
  options.requests_per_client = 800;
  workload::AbDriver driver(&server, options);
  driver.Run();  // warm-up

  vprof::Profiler profiler("process_request", &graph, [&] { driver.Run(); });
  vprof::ProfileOptions profile_options;
  profile_options.top_k = 6;
  const vprof::ProfileResult result = profiler.Run(profile_options);
  std::printf("%s\n", result.Report().c_str());
  server.Shutdown();

  std::printf("Step 2: allocation-related factors (apr_bucket_alloc and the\n"
              "covariances among functions that allocate) dominate. Apply the\n"
              "bulk pre-allocation fix:\n\n");

  const statkit::Summary lean = RunOnce(false);
  const statkit::Summary bulk = RunOnce(true);
  std::printf("  stock: mean=%.1f us  var=%.5f ms^2  p99=%.1f us\n",
              lean.mean / 1e3, lean.variance / 1e12, lean.p99 / 1e3);
  std::printf("  bulk:  mean=%.1f us  var=%.5f ms^2  p99=%.1f us\n",
              bulk.mean / 1e3, bulk.variance / 1e12, bulk.p99 / 1e3);
  std::printf("  variance reduction: %.1f%%\n",
              statkit::ReductionPercent(lean.variance, bulk.variance));
  return 0;
}
