// Automated refinement for the always-on profiling service.
//
// The offline workflow (paper Algorithm 3) is a human loop: profile, select
// the top factors, instrument their callees, repeat. RefinementController
// automates that loop against the live probe-enable bitmap. After each epoch
// it runs factor selection (Algorithm 1) on the streaming tree's snapshot
// and:
//   - expands selected factors that have call-graph children, enabling the
//     children's probes to descend into the high-variance subtree;
//   - retires an expanded function whose factors' contribution has stayed
//     below a floor for several consecutive steps, disabling its callees'
//     probes again (low specificity is not worth the probe cost).
//
// Step() is intended to run in the harvester sink, with tracing off, so
// every epoch is recorded under one consistent instrumentation set. The
// controller has converged when the instrumented set stops changing.
#ifndef SRC_VPROF_SERVICE_CONTROLLER_H_
#define SRC_VPROF_SERVICE_CONTROLLER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "src/vprof/analysis/call_graph.h"
#include "src/vprof/analysis/factor_selection.h"
#include "src/vprof/service/online_tree.h"

namespace vprof {

struct ControllerOptions {
  // Factor selection (Algorithm 1) parameters per step.
  int top_k = 3;
  double min_contribution = 0.01;
  SpecificityKind specificity = SpecificityKind::kQuadratic;

  // An expanded function is retired when no factor involving it reaches
  // this contribution for `retire_patience` consecutive effective steps.
  double retire_contribution = 0.005;
  int retire_patience = 3;

  // Steps are skipped (no bitmap changes) until the snapshot carries at
  // least this much interval weight, so selection is not run on noise.
  double min_weight = 30.0;
};

struct ControllerStatus {
  uint64_t steps = 0;         // Step() calls, including skipped ones
  uint64_t skipped = 0;       // steps below min_weight
  uint64_t expansions = 0;    // functions whose children were enabled
  uint64_t retirements = 0;   // functions whose children were disabled again
  int last_changes = 0;       // probe bits flipped by the latest step
  int stable_steps = 0;       // consecutive effective steps with 0 flips
  std::vector<Factor> selection;      // latest top-k selection
  std::vector<FuncId> instrumented;   // currently enabled probes, sorted
};

class RefinementController {
 public:
  // `graph` must outlive the controller. The initial instrumented set is
  // the root plus its direct callees ("top-level probes only").
  RefinementController(FuncId root, const CallGraph* graph,
                       ControllerOptions options = {});

  // Writes the controller's desired set into the global probe-enable
  // bitmap; returns the number of bits flipped. Start() paths call this
  // once before the first epoch.
  int ApplyInstrumentation();

  // One refinement iteration against an epoch snapshot. Returns the number
  // of probe bits flipped (0 for a skipped or stable step).
  int Step(const OnlineTreeSnapshot& snapshot);

  // True once `stable_needed` consecutive effective steps changed nothing.
  bool Converged(int stable_needed = 3) const;

  ControllerStatus status() const;

 private:
  // Desired probe set under the current expansion state; sorted.
  std::vector<FuncId> DesiredSet() const;
  int ApplyLocked();

  const FuncId root_;
  const CallGraph* graph_;
  const ControllerOptions options_;

  mutable std::mutex mu_;
  std::set<FuncId> expanded_;            // functions whose callees are enabled
  std::map<FuncId, int> low_streak_;     // consecutive low-contribution steps
  ControllerStatus status_;
};

}  // namespace vprof

#endif  // SRC_VPROF_SERVICE_CONTROLLER_H_
