file(REMOVE_RECURSE
  "CMakeFiles/vprof_profiler_edge_test.dir/profiler_edge_test.cc.o"
  "CMakeFiles/vprof_profiler_edge_test.dir/profiler_edge_test.cc.o.d"
  "vprof_profiler_edge_test"
  "vprof_profiler_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vprof_profiler_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
