#include "src/vprof/full_tracer.h"

#include <chrono>
#include <mutex>
#include <unordered_map>

#include "src/vprof/registry.h"

namespace vprof {

namespace {

struct FullEvent {
  uint64_t name_hash;
  int64_t time_ns;
  bool entry;
};

struct FullTracerState {
  std::mutex mu;
  std::vector<FullEvent> events;
  std::unordered_map<std::string, uint64_t> per_function_counts;
};

FullTracerState& State() {
  static FullTracerState* state = new FullTracerState();
  return *state;
}

void Record(FuncId func, bool entry) {
  // Symbol lookup by name, as a binary tracer would key its aggregation.
  const std::string name = FunctionName(func);
  const int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now().time_since_epoch())
                          .count();
  FullTracerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.events.push_back(
      FullEvent{std::hash<std::string>{}(name), now, entry});
  ++state.per_function_counts[name];
  // Bound memory: generic tracers stream to a consumer; we emulate by
  // discarding the oldest half when the buffer grows large.
  if (state.events.size() > (1u << 20)) {
    state.events.erase(state.events.begin(),
                       state.events.begin() + state.events.size() / 2);
  }
}

}  // namespace

void FullTracerOnEntry(FuncId func) { Record(func, true); }
void FullTracerOnExit(FuncId func) { Record(func, false); }

FullTraceStats GetFullTracerStats() {
  FullTracerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  FullTraceStats stats;
  stats.events = state.events.size();
  stats.distinct_functions = state.per_function_counts.size();
  return stats;
}

void ResetFullTracer() {
  FullTracerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.events.clear();
  state.per_function_counts.clear();
}

}  // namespace vprof
