#include "src/vprof/analysis/flat_profile.h"

#include <gtest/gtest.h>

#include "tests/vprof/trace_builder.h"

namespace vprof {
namespace {

using vprof_test::TraceBuilder;

Trace FlatSample() {
  TraceBuilder tb;
  // Two intervals, parent fp_a with child fp_b.
  for (int i = 0; i < 2; ++i) {
    const TimeNs base = i * 10000;
    const int a = tb.Invoke(0, "fp_a", base, base + 1000, -1, 0);
    tb.Invoke(0, "fp_b", base + 100, base + 400, a, 0);
  }
  tb.Invoke(1, "fp_b", 50, 250, -1, 0);  // another thread, top-level
  return tb.Build();
}

const FunctionStats* Find(const std::vector<FunctionStats>& profile,
                          const std::string& name) {
  for (const auto& f : profile) {
    if (f.name == name) {
      return &f;
    }
  }
  return nullptr;
}

TEST(FlatProfileTest, CountsAndTotals) {
  const auto profile = ComputeFlatProfile(FlatSample());
  const FunctionStats* a = Find(profile, "fp_a");
  const FunctionStats* b = Find(profile, "fp_b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->calls, 2u);
  EXPECT_EQ(b->calls, 3u);
  EXPECT_DOUBLE_EQ(a->total_ns, 2000.0);
  EXPECT_DOUBLE_EQ(b->total_ns, 300.0 + 300.0 + 200.0);
}

TEST(FlatProfileTest, SelfTimeExcludesChildren) {
  const auto profile = ComputeFlatProfile(FlatSample());
  const FunctionStats* a = Find(profile, "fp_a");
  ASSERT_NE(a, nullptr);
  // Each fp_a invocation spends 300ns in fp_b.
  EXPECT_DOUBLE_EQ(a->self_ns, 2000.0 - 600.0);
}

TEST(FlatProfileTest, SortedByTotalDescending) {
  const auto profile = ComputeFlatProfile(FlatSample());
  ASSERT_GE(profile.size(), 2u);
  for (size_t i = 1; i < profile.size(); ++i) {
    EXPECT_GE(profile[i - 1].total_ns, profile[i].total_ns);
  }
}

TEST(FlatProfileTest, MomentsPerFunction) {
  const auto profile = ComputeFlatProfile(FlatSample());
  const FunctionStats* b = Find(profile, "fp_b");
  ASSERT_NE(b, nullptr);
  EXPECT_NEAR(b->mean_ns, 800.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(b->min_ns, 200.0);
  EXPECT_DOUBLE_EQ(b->max_ns, 300.0);
  EXPECT_GT(b->stddev_ns, 0.0);
}

TEST(FlatProfileTest, FormatListsFunctions) {
  const auto profile = ComputeFlatProfile(FlatSample());
  const std::string text = FormatFlatProfile(profile);
  EXPECT_NE(text.find("fp_a"), std::string::npos);
  EXPECT_NE(text.find("fp_b"), std::string::npos);
  EXPECT_NE(text.find("calls"), std::string::npos);
}

TEST(FlatProfileTest, MaxRowsTruncates) {
  const auto profile = ComputeFlatProfile(FlatSample());
  const std::string text = FormatFlatProfile(profile, 1);
  // Header + exactly one data row.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

TEST(FlatProfileTest, EmptyTrace) {
  Trace empty;
  const auto profile = ComputeFlatProfile(empty);
  EXPECT_TRUE(profile.empty());
  EXPECT_FALSE(FormatFlatProfile(profile).empty());  // header only
}

}  // namespace
}  // namespace vprof
