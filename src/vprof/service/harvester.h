// Epoch harvesting for the always-on profiling service.
//
// A background thread rotates the global tracing runtime in fixed epochs:
// StartTracing -> sleep(epoch) -> StopTracing, then hands the harvested
// Trace to a sink callback and immediately begins the next epoch. The
// workload threads are never paused — rotation rides the runtime's
// membarrier quiesce, and the per-thread chunked arenas are recycled by
// StartTracing (chunks are retained across clear()), so steady-state epochs
// allocate nothing on the probe path.
//
// The sink runs on the harvester thread while tracing is OFF: flipping the
// probe-enable bitmap there (the refinement controller does) takes effect
// atomically at the next epoch boundary, so every epoch is recorded under
// one consistent instrumentation set. The tracing-off gap per rotation is
// the sink's latency plus the quiesce; it is measured and exported so
// operators can see the coverage duty cycle.
//
// The tracing runtime is process-global: run at most one harvester at a
// time, and do not run the batch Profiler concurrently with it.
#ifndef SRC_VPROF_SERVICE_HARVESTER_H_
#define SRC_VPROF_SERVICE_HARVESTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "src/vprof/trace.h"
#include "src/vprof/types.h"

namespace vprof {

struct HarvesterOptions {
  // Epoch length. Shorter epochs converge the controller faster but pay the
  // rotation quiesce (a membarrier syscall per registered thread) more often.
  TimeNs epoch_ns = 100'000'000;  // 100 ms

  // Receives each completed epoch's trace on the harvester thread, with
  // tracing off. May mutate the probe-enable bitmap; changes apply from the
  // next epoch.
  std::function<void(Trace&&)> sink;
};

class EpochHarvester {
 public:
  explicit EpochHarvester(HarvesterOptions options);
  ~EpochHarvester();

  EpochHarvester(const EpochHarvester&) = delete;
  EpochHarvester& operator=(const EpochHarvester&) = delete;

  // Begins rotating epochs. No-op if already running.
  void Start();

  // Stops after harvesting the current (partial) epoch; the final trace is
  // delivered to the sink before this returns. Tracing is left off.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  // Effective epoch length; adjustable while running (the supervisor
  // lengthens epochs in Degraded). Read once per rotation, so a change
  // applies from the next epoch.
  TimeNs epoch_ns() const { return epoch_ns_.load(std::memory_order_relaxed); }
  void set_epoch_ns(TimeNs epoch_ns) {
    epoch_ns_.store(epoch_ns, std::memory_order_relaxed);
  }

  // When disabled (the supervisor's Quarantined state), rotations continue
  // — the sink still receives one (empty) trace per epoch so health keeps
  // being observed — but tracing itself stays off: probes see a disabled
  // runtime and the workload runs untouched. Applies from the next epoch.
  bool tracing_enabled() const {
    return tracing_enabled_.load(std::memory_order_relaxed);
  }
  void set_tracing_enabled(bool enabled) {
    tracing_enabled_.store(enabled, std::memory_order_relaxed);
  }

  // Completed epochs handed to the sink.
  uint64_t epochs() const { return epochs_.load(std::memory_order_relaxed); }

  // Tracing-off time of the most recent / worst rotation (sink + quiesce),
  // 0 until the second epoch starts.
  TimeNs last_gap_ns() const {
    return last_gap_ns_.load(std::memory_order_relaxed);
  }
  TimeNs max_gap_ns() const {
    return max_gap_ns_.load(std::memory_order_relaxed);
  }

  // Cumulative tracing-off time across all rotations; together with
  // epochs() * epoch_ns this gives the coverage duty cycle.
  TimeNs total_gap_ns() const {
    return total_gap_ns_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();

  HarvesterOptions options_;
  std::atomic<TimeNs> epoch_ns_{0};  // initialized from options_
  std::atomic<bool> tracing_enabled_{true};
  TimeNs last_stop_cost_ = 0;  // harvester thread only
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;  // guarded by mu_
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> epochs_{0};
  std::atomic<TimeNs> last_gap_ns_{0};
  std::atomic<TimeNs> max_gap_ns_{0};
  std::atomic<TimeNs> total_gap_ns_{0};
};

}  // namespace vprof

#endif  // SRC_VPROF_SERVICE_HARVESTER_H_
