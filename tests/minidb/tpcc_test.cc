#include "src/workload/tpcc.h"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

namespace workload {
namespace {

TEST(TpccGeneratorTest, MixMatchesConfiguredPercentages) {
  TpccOptions options;
  TpccGenerator generator(options, 4);
  statkit::Rng rng(1);
  std::map<minidb::TxnType, int> counts;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    ++counts[generator.Next(rng).type];
  }
  EXPECT_NEAR(counts[minidb::TxnType::kNewOrder] * 100.0 / n, 45.0, 2.0);
  EXPECT_NEAR(counts[minidb::TxnType::kPayment] * 100.0 / n, 43.0, 2.0);
  EXPECT_NEAR(counts[minidb::TxnType::kOrderStatus] * 100.0 / n, 4.0, 1.0);
  EXPECT_NEAR(counts[minidb::TxnType::kDelivery] * 100.0 / n, 4.0, 1.0);
  EXPECT_NEAR(counts[minidb::TxnType::kStockLevel] * 100.0 / n, 4.0, 1.0);
}

TEST(TpccGeneratorTest, RequestsWithinScale) {
  TpccOptions options;
  TpccGenerator generator(options, 3);
  statkit::Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    const minidb::TxnRequest request = generator.Next(rng);
    EXPECT_GE(request.warehouse, 0);
    EXPECT_LT(request.warehouse, 3);
    EXPECT_GE(request.district, 0);
    EXPECT_LT(request.district, minidb::Engine::kDistrictsPerWarehouse);
    EXPECT_GE(request.customer, 0);
    EXPECT_LT(request.customer, minidb::Engine::kCustomersPerDistrict);
    for (int64_t item : request.items) {
      EXPECT_GE(item, 0);
      EXPECT_LT(item, minidb::Engine::kItemsPerWarehouse);
    }
    if (request.type == minidb::TxnType::kNewOrder) {
      EXPECT_GE(static_cast<int>(request.items.size()), options.min_items);
      EXPECT_LE(static_cast<int>(request.items.size()), options.max_items);
    }
  }
}

TEST(TpccGeneratorTest, DeterministicForSeed) {
  TpccOptions options;
  TpccGenerator generator(options, 2);
  statkit::Rng a(7);
  statkit::Rng b(7);
  for (int i = 0; i < 100; ++i) {
    const auto ra = generator.Next(a);
    const auto rb = generator.Next(b);
    EXPECT_EQ(ra.type, rb.type);
    EXPECT_EQ(ra.warehouse, rb.warehouse);
    EXPECT_EQ(ra.items, rb.items);
  }
}

TEST(TpccGeneratorTest, ZipfSkewConcentratesCustomers) {
  TpccOptions skewed;
  skewed.customer_zipf_theta = 0.99;
  skewed.item_zipf_theta = 0.99;
  TpccGenerator generator(skewed, 2);
  statkit::Rng rng(3);
  std::map<int64_t, int> customer_counts;
  std::map<int64_t, int> item_counts;
  for (int i = 0; i < 20000; ++i) {
    const auto request = generator.Next(rng);
    ++customer_counts[request.customer];
    for (int64_t item : request.items) {
      ++item_counts[item];
    }
  }
  // Customer 0 (hottest rank) dominates a mid-rank customer heavily.
  EXPECT_GT(customer_counts[0], customer_counts[150] * 10);
  EXPECT_GT(item_counts[0], item_counts[1000] * 10);
}

TEST(TpccGeneratorTest, ZeroThetaStaysUniform) {
  TpccOptions uniform;  // thetas default to 0
  TpccGenerator generator(uniform, 2);
  statkit::Rng rng(4);
  std::map<int64_t, int> counts;
  for (int i = 0; i < 30000; ++i) {
    ++counts[generator.Next(rng).customer];
  }
  // No single customer should dominate under the uniform default.
  int max_count = 0;
  for (const auto& [customer, count] : counts) {
    max_count = std::max(max_count, count);
  }
  EXPECT_LT(max_count, 300);  // ~100 expected per customer
}

TEST(TpccDriverTest, RunWithCustomExecutorCountsResults) {
  TpccOptions options;
  options.threads = 2;
  options.transactions_per_thread = 25;
  TpccDriver driver(nullptr, options);
  std::atomic<int> calls{0};
  const TpccResult result = driver.RunWith(
      [&](const minidb::TxnRequest&) {
        const int n = calls.fetch_add(1);
        return n % 5 != 0;  // every 5th "aborts"
      },
      2);
  EXPECT_EQ(calls.load(), 50);
  EXPECT_EQ(result.committed, 40u);
  EXPECT_EQ(result.aborted, 10u);
  EXPECT_EQ(result.latencies_ns.size(), 40u);
  EXPECT_GT(result.throughput_tps, 0.0);
}

}  // namespace
}  // namespace workload
