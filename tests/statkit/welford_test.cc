#include "src/statkit/welford.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/statkit/rng.h"

namespace statkit {
namespace {

double NaiveMean(const std::vector<double>& v) {
  double sum = 0.0;
  for (double x : v) {
    sum += x;
  }
  return sum / static_cast<double>(v.size());
}

double NaiveVariance(const std::vector<double>& v) {
  const double mean = NaiveMean(v);
  double sum = 0.0;
  for (double x : v) {
    sum += (x - mean) * (x - mean);
  }
  return sum / static_cast<double>(v.size());
}

TEST(StreamingMomentsTest, EmptyIsZero) {
  StreamingMoments m;
  EXPECT_EQ(m.count(), 0u);
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);
  EXPECT_DOUBLE_EQ(m.cv(), 0.0);
}

TEST(StreamingMomentsTest, SingleValue) {
  StreamingMoments m;
  m.Add(5.0);
  EXPECT_EQ(m.count(), 1u);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);
  EXPECT_DOUBLE_EQ(m.min(), 5.0);
  EXPECT_DOUBLE_EQ(m.max(), 5.0);
}

TEST(StreamingMomentsTest, MatchesNaiveComputation) {
  Rng rng(7);
  std::vector<double> values;
  StreamingMoments m;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble() * 100.0 - 20.0;
    values.push_back(x);
    m.Add(x);
  }
  EXPECT_NEAR(m.mean(), NaiveMean(values), 1e-9);
  EXPECT_NEAR(m.variance(), NaiveVariance(values), 1e-7);
}

TEST(StreamingMomentsTest, SampleVarianceUsesNMinusOne) {
  StreamingMoments m;
  m.Add(1.0);
  m.Add(3.0);
  EXPECT_DOUBLE_EQ(m.variance(), 1.0);         // ((1-2)^2 + (3-2)^2) / 2
  EXPECT_DOUBLE_EQ(m.sample_variance(), 2.0);  // / 1
}

TEST(StreamingMomentsTest, MinMaxTracksExtremes) {
  StreamingMoments m;
  for (double x : {3.0, -1.0, 7.0, 2.0}) {
    m.Add(x);
  }
  EXPECT_DOUBLE_EQ(m.min(), -1.0);
  EXPECT_DOUBLE_EQ(m.max(), 7.0);
}

TEST(StreamingMomentsTest, MergeEqualsSinglePass) {
  Rng rng(11);
  StreamingMoments all;
  StreamingMoments a;
  StreamingMoments b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.NextDouble() * 10.0;
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StreamingMomentsTest, MergeWithEmptySides) {
  StreamingMoments a;
  StreamingMoments b;
  b.Add(4.0);
  a.Merge(b);  // empty <- non-empty
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  StreamingMoments c;
  a.Merge(c);  // non-empty <- empty
  EXPECT_EQ(a.count(), 1u);
}

TEST(StreamingMomentsTest, CvIsStddevOverMean) {
  StreamingMoments m;
  m.Add(10.0);
  m.Add(20.0);
  EXPECT_NEAR(m.cv(), m.stddev() / m.mean(), 1e-12);
}

TEST(StreamingCovarianceTest, IndependentSeriesNearZero) {
  Rng rng(3);
  StreamingCovariance cov;
  for (int i = 0; i < 20000; ++i) {
    cov.Add(rng.NextDouble(), rng.NextDouble());
  }
  EXPECT_NEAR(cov.covariance(), 0.0, 0.005);
}

TEST(StreamingCovarianceTest, PerfectlyCorrelated) {
  StreamingCovariance cov;
  StreamingMoments var;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble() * 4.0;
    cov.Add(x, 2.0 * x + 1.0);
    var.Add(x);
  }
  // Cov(X, 2X+1) = 2 Var(X).
  EXPECT_NEAR(cov.covariance(), 2.0 * var.variance(), 1e-9);
}

TEST(StreamingCovarianceTest, VarianceSumIdentity) {
  // Var(X+Y) = Var(X) + Var(Y) + 2 Cov(X,Y): the identity underlying the
  // paper's Equation (2).
  Rng rng(9);
  StreamingMoments vx;
  StreamingMoments vy;
  StreamingMoments vsum;
  StreamingCovariance cov;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.NextDouble() * 3.0;
    const double y = x * 0.5 + rng.NextDouble();
    vx.Add(x);
    vy.Add(y);
    vsum.Add(x + y);
    cov.Add(x, y);
  }
  EXPECT_NEAR(vsum.variance(),
              vx.variance() + vy.variance() + 2.0 * cov.covariance(), 1e-7);
}

// Mixes small and large magnitudes to stress numerical stability.
double SampleForIndex(Rng& rng, int i) {
  const double scale = (i % 3 == 0) ? 1e6 : 1.0;
  return (rng.NextDouble() - 0.5) * scale;
}

// Property sweep: the merge operation is associative-enough across chunk
// sizes and value scales.
class WelfordMergeProperty : public ::testing::TestWithParam<int> {};

TEST_P(WelfordMergeProperty, ChunkedMergeMatchesSinglePass) {
  const int chunk = GetParam();
  Rng rng(static_cast<uint64_t>(chunk) * 977 + 13);
  StreamingMoments all;
  StreamingMoments merged;
  StreamingMoments current;
  for (int i = 0; i < 1200; ++i) {
    const double x = SampleForIndex(rng, i);
    all.Add(x);
    current.Add(x);
    if ((i + 1) % chunk == 0) {
      merged.Merge(current);
      current = StreamingMoments();
    }
  }
  merged.Merge(current);
  EXPECT_EQ(merged.count(), all.count());
  EXPECT_NEAR(merged.mean(), all.mean(), 1e-7 * (1.0 + std::abs(all.mean())));
  EXPECT_NEAR(merged.variance(), all.variance(),
              1e-7 * (1.0 + all.variance()));
}

INSTANTIATE_TEST_SUITE_P(Chunks, WelfordMergeProperty,
                         ::testing::Values(1, 2, 7, 50, 300, 1200));

}  // namespace
}  // namespace statkit
