// Streaming first/second-moment accumulators (Welford's algorithm) and the
// pairwise covariance accumulator used by the variance tree.
#ifndef SRC_STATKIT_WELFORD_H_
#define SRC_STATKIT_WELFORD_H_

#include <cmath>
#include <cstdint>

namespace statkit {

// Numerically stable streaming mean/variance.
class StreamingMoments {
 public:
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_ || count_ == 1) {
      min_ = x;
    }
    if (x > max_ || count_ == 1) {
      max_ = x;
    }
  }

  // Merges another accumulator into this one (parallel Welford / Chan et al.).
  void Merge(const StreamingMoments& other) {
    if (other.count_ == 0) {
      return;
    }
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    count_ += other.count_;
    if (other.min_ < min_) {
      min_ = other.min_;
    }
    if (other.max_ > max_) {
      max_ = other.max_;
    }
  }

  uint64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

  // Population variance (divide by n). The paper's variance decomposition
  // identity Var(sum) = sum Var + 2 sum Cov holds exactly for the population
  // forms, so the whole project standardizes on them.
  double variance() const {
    return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
  }

  // Unbiased sample variance (divide by n-1).
  double sample_variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }

  double stddev() const { return std::sqrt(variance()); }

  // Coefficient of variation (stddev / mean); 0 when the mean is 0.
  double cv() const { return mean() != 0.0 ? stddev() / mean() : 0.0; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Streaming covariance of a pair of co-observed series.
class StreamingCovariance {
 public:
  void Add(double x, double y) {
    ++count_;
    const double n = static_cast<double>(count_);
    const double dx = x - mean_x_;
    mean_x_ += dx / n;
    mean_y_ += (y - mean_y_) / n;
    // Uses the updated mean_y_ (co-moment form of Welford).
    comoment_ += dx * (y - mean_y_);
  }

  uint64_t count() const { return count_; }
  double mean_x() const { return mean_x_; }
  double mean_y() const { return mean_y_; }

  // Population covariance.
  double covariance() const {
    return count_ > 0 ? comoment_ / static_cast<double>(count_) : 0.0;
  }

 private:
  uint64_t count_ = 0;
  double mean_x_ = 0.0;
  double mean_y_ = 0.0;
  double comoment_ = 0.0;
};

}  // namespace statkit

#endif  // SRC_STATKIT_WELFORD_H_
