# Empty dependencies file for minidb_btree_test.
# This may be replaced when dependencies are built.
