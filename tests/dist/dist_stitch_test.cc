// TraceStitcher unit tests on hand-built tier traces: span joining, sid
// rewriting, tid/interval collision remapping across backend reconnects,
// clock rebasing, cross-tier edge injection with the walker's
// generator_time < segment.start precondition, and bit-exact replay.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/dist/stitcher.h"
#include "src/dist/tier.h"
#include "src/vprof/trace.h"

namespace dist {
namespace {

using vprof::IntervalEvent;
using vprof::IntervalEventKind;
using vprof::Invocation;
using vprof::Segment;
using vprof::SegmentState;
using vprof::ThreadTrace;
using vprof::Trace;

Segment Exec(vprof::TimeNs start, vprof::TimeNs end, vprof::IntervalId sid) {
  Segment s;
  s.start = start;
  s.end = end;
  s.sid = sid;
  s.state = SegmentState::kExecuting;
  return s;
}

Segment Blocked(vprof::TimeNs start, vprof::TimeNs end, vprof::IntervalId sid,
                vprof::ThreadId waker, vprof::TimeNs waker_time) {
  Segment s;
  s.start = start;
  s.end = end;
  s.sid = sid;
  s.state = SegmentState::kBlocked;
  s.waker_tid = waker;
  s.waker_time = waker_time;
  return s;
}

// The canonical two-tier shape: front caller (tid 1) opens interval 100,
// sends an RPC at t=1000, blocks until t=5000; backend loop (tid 1 in ITS
// process — colliding) picks the frame up at its local t=1500 under local
// interval 100 (also colliding), worker (tid 2) runs it and replies at its
// local t=3800. Backend clock offset +50.
struct TwoTier {
  TierTrace front;
  std::vector<TierTrace> backends;
};

TwoTier MakeTwoTier() {
  TwoTier t;
  t.front.name = "front";
  t.front.service = net::ServiceId::kFront;
  t.front.trace.duration = 10000;
  t.front.trace.function_names = {"process_request", "rpc:call"};

  ThreadTrace caller;
  caller.tid = 1;
  caller.interval_events.push_back(
      IntervalEvent{100, 500, IntervalEventKind::kBegin, 0});
  caller.interval_events.push_back(
      IntervalEvent{100, 6000, IntervalEventKind::kEnd, 0});
  Invocation pr;
  pr.start = 500;
  pr.end = 6000;
  pr.func = 0;
  pr.sid = 100;
  caller.invocations.push_back(pr);
  Invocation rpc;
  rpc.start = 900;
  rpc.end = 5200;
  rpc.func = 1;
  rpc.parent = 0;
  rpc.sid = 100;
  caller.invocations.push_back(rpc);
  caller.segments.push_back(Exec(500, 1000, 100));
  caller.segments.push_back(Blocked(1000, 5000, 100, /*waker=*/-1, -1));
  caller.segments.push_back(Exec(5000, 6000, 100));
  t.front.trace.threads.push_back(caller);

  net::ClientSpanRecord cs;
  cs.service = net::ServiceId::kMinidb;
  cs.span_id = 7;
  cs.interval_id = 100;
  cs.send_time_ns = 1000;
  cs.recv_time_ns = 5000;
  cs.caller_tid = 1;
  t.front.client_spans.push_back(cs);

  TierTrace backend;
  backend.name = "minidb";
  backend.service = net::ServiceId::kMinidb;
  backend.clock_offset_ns = 50;
  backend.trace.duration = 9000;
  backend.trace.function_names = {"run_transaction", "net:readable"};

  ThreadTrace loop;
  loop.tid = 1;  // collides with the front caller
  loop.interval_events.push_back(
      IntervalEvent{100, 1500, IntervalEventKind::kBegin, 0});
  Invocation readable;
  readable.start = 1500;
  readable.end = 1700;
  readable.func = 1;
  readable.sid = 100;
  loop.invocations.push_back(readable);
  loop.segments.push_back(Exec(1500, 1700, 100));
  backend.trace.threads.push_back(loop);

  ThreadTrace worker;
  worker.tid = 2;
  worker.interval_events.push_back(
      IntervalEvent{100, 3800, IntervalEventKind::kEnd, 0});
  Invocation rt;
  rt.start = 1800;
  rt.end = 3800;
  rt.func = 0;
  rt.sid = 100;
  worker.invocations.push_back(rt);
  Segment work = Exec(1800, 3800, 100);
  work.generator_tid = 1;  // dispatched by the backend loop
  work.generator_time = 1600;
  worker.segments.push_back(work);
  backend.trace.threads.push_back(worker);

  net::ServerSpanRecord ss;
  ss.origin_service = net::ServiceId::kFront;
  ss.origin_interval_id = 100;
  ss.span_id = 7;
  ss.local_sid = 100;  // collides with the front interval id
  ss.recv_time_ns = 1550;
  ss.reply_time_ns = 3800;
  ss.loop_tid = 1;
  ss.worker_tid = 2;
  backend.server_spans.push_back(ss);

  t.backends.push_back(backend);
  return t;
}

TEST(DistStitchTest, JoinsSpansAcrossTheWire) {
  const TwoTier t = MakeTwoTier();
  const StitchResult result = StitchTraces(t.front, t.backends);

  EXPECT_EQ(result.stats.matched_spans, 1u);
  EXPECT_EQ(result.stats.unmatched_client_spans, 0u);
  EXPECT_EQ(result.stats.unmatched_server_spans, 0u);
  EXPECT_EQ(result.stats.remapped_threads, 1u);  // backend loop tid 1 -> 3
  EXPECT_EQ(result.stats.injected_edges, 2u);
  EXPECT_EQ(result.stats.dropped_interval_events, 2u);

  ASSERT_EQ(result.trace.threads.size(), 3u);
  const ThreadTrace& caller = result.trace.threads[0];
  const ThreadTrace& loop = result.trace.threads[1];
  const ThreadTrace& worker = result.trace.threads[2];

  // Tid collision: the backend loop was renamed past the global max.
  EXPECT_EQ(caller.tid, 1);
  EXPECT_EQ(loop.tid, 3);
  EXPECT_EQ(worker.tid, 2);

  // The matched backend records carry the ORIGIN interval id, rebased times.
  ASSERT_EQ(loop.segments.size(), 1u);
  EXPECT_EQ(loop.segments[0].sid, 100u);
  EXPECT_EQ(loop.segments[0].start, 1550);  // 1500 + 50
  // Backend-local begin/end events for the matched interval were dropped.
  EXPECT_TRUE(loop.interval_events.empty());
  EXPECT_TRUE(worker.interval_events.empty());

  // Request edge: the backend readable segment is created-by the front
  // caller at send time.
  EXPECT_EQ(loop.segments[0].generator_tid, 1);
  EXPECT_EQ(loop.segments[0].generator_time, 1000);

  // The worker's dispatch edge was remapped to the loop's new tid.
  ASSERT_EQ(worker.segments.size(), 1u);
  EXPECT_EQ(worker.segments[0].generator_tid, 3);
  EXPECT_EQ(worker.segments[0].generator_time, 1650);  // 1600 + 50

  // Reply edge: the front caller's post-wait segment is created-by the
  // backend worker at (rebased) reply time.
  ASSERT_EQ(caller.segments.size(), 3u);
  EXPECT_EQ(caller.segments[2].generator_tid, 2);
  EXPECT_EQ(caller.segments[2].generator_time, 3850);  // 3800 + 50

  // The walker precondition holds for every injected edge.
  for (const ThreadTrace& thread : result.trace.threads) {
    for (const Segment& seg : thread.segments) {
      if (seg.generator_tid != vprof::kNoThread && seg.generator_time >= 0) {
        EXPECT_LT(seg.generator_time, seg.start);
      }
    }
  }

  // Duration covers the rebased backend tail.
  EXPECT_EQ(result.trace.duration, 10000);
}

// Clamping: a badly calibrated clock can put the reply stamp after the
// caller's resume; the injected edge must back off to start-1, not violate
// the walker precondition.
TEST(DistStitchTest, ClampsEdgesWhenClocksDisagree) {
  TwoTier t = MakeTwoTier();
  t.backends[0].clock_offset_ns = 2000;  // reply lands at 5800 > resume 5000
  const StitchResult result = StitchTraces(t.front, t.backends);
  const ThreadTrace& caller = result.trace.threads[0];
  ASSERT_EQ(caller.segments.size(), 3u);
  EXPECT_EQ(caller.segments[2].generator_tid, 2);
  EXPECT_EQ(caller.segments[2].generator_time, 4999);  // start - 1
}

// Backend restart: a second server span reuses span id and local sid. The
// first consumes the client span; the duplicate is counted, not spliced.
TEST(DistStitchTest, ReconnectIdCollisionMatchesOnce) {
  TwoTier t = MakeTwoTier();
  net::ServerSpanRecord dup = t.backends[0].server_spans[0];
  dup.recv_time_ns = 7000;
  dup.reply_time_ns = 7100;
  t.backends[0].server_spans.push_back(dup);
  const StitchResult result = StitchTraces(t.front, t.backends);
  EXPECT_EQ(result.stats.matched_spans, 1u);
  EXPECT_EQ(result.stats.unmatched_server_spans, 1u);
}

// An unmatched backend interval whose id collides with a front interval is
// renamed, never merged into the foreign interval.
TEST(DistStitchTest, UnmatchedCollidingIntervalIsRenamed) {
  TwoTier t = MakeTwoTier();
  // Give the front a second interval id 200 and the backend an unmatched
  // local interval that happens to reuse the same id.
  ThreadTrace& worker = t.backends[0].trace.threads[1];
  t.front.trace.threads[0].interval_events.push_back(
      IntervalEvent{200, 7000, IntervalEventKind::kBegin, 0});
  t.front.trace.threads[0].interval_events.push_back(
      IntervalEvent{200, 7500, IntervalEventKind::kEnd, 0});
  t.front.trace.threads[0].segments.push_back(Exec(7000, 7500, 200));
  Segment foreign = Exec(5000, 5500, 200);
  worker.segments.push_back(foreign);
  worker.interval_events.push_back(
      IntervalEvent{200, 5000, IntervalEventKind::kBegin, 0});
  worker.interval_events.push_back(
      IntervalEvent{200, 5500, IntervalEventKind::kEnd, 0});

  const StitchResult result = StitchTraces(t.front, t.backends);
  EXPECT_EQ(result.stats.remapped_intervals, 1u);
  const ThreadTrace& merged_worker = result.trace.threads[2];
  ASSERT_EQ(merged_worker.segments.size(), 2u);
  // The stray backend interval got a fresh id, distinct from both fronts'.
  EXPECT_NE(merged_worker.segments[1].sid, 200u);
  EXPECT_NE(merged_worker.segments[1].sid, 100u);
  EXPECT_NE(merged_worker.segments[1].sid, vprof::kNoInterval);
  // And its begin/end events survived (it is a real, local interval).
  EXPECT_EQ(merged_worker.interval_events.size(), 2u);
}

// Unmatched client span (backend died before serving): counted, trace sane.
TEST(DistStitchTest, UnmatchedClientSpanCounted) {
  TwoTier t = MakeTwoTier();
  t.backends[0].server_spans.clear();
  const StitchResult result = StitchTraces(t.front, t.backends);
  EXPECT_EQ(result.stats.matched_spans, 0u);
  EXPECT_EQ(result.stats.unmatched_client_spans, 1u);
  EXPECT_EQ(result.stats.injected_edges, 0u);
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// Identical inputs must produce byte-identical stitched traces (replay).
TEST(DistStitchTest, ReplayIsBitExact) {
  const TwoTier t = MakeTwoTier();
  const StitchResult a = StitchTraces(t.front, t.backends);
  const StitchResult b = StitchTraces(t.front, t.backends);
  const std::string path_a = ::testing::TempDir() + "/stitch_a.vprf";
  const std::string path_b = ::testing::TempDir() + "/stitch_b.vprf";
  ASSERT_TRUE(vprof::SaveTrace(a.trace, path_a));
  ASSERT_TRUE(vprof::SaveTrace(b.trace, path_b));
  const std::string bytes_a = FileBytes(path_a);
  const std::string bytes_b = FileBytes(path_b);
  ASSERT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, bytes_b);

  // And the stitched trace round-trips through the serializer.
  vprof::Trace loaded;
  EXPECT_TRUE(vprof::LoadTrace(path_b, &loaded));
  EXPECT_EQ(loaded.threads.size(), a.trace.threads.size());

  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

// SplitByTids partitions a shared-process trace into per-tier traces.
TEST(DistStitchTest, SplitByTidsPartitions) {
  Trace trace;
  trace.duration = 100;
  trace.function_names = {"f"};
  for (vprof::ThreadId tid : {1, 2, 3, 4}) {
    ThreadTrace thread;
    thread.tid = tid;
    trace.threads.push_back(thread);
  }
  trace.stuck_threads.push_back(4);
  const std::vector<std::vector<vprof::ThreadId>> rosters = {{1}, {2, 5}};
  const std::vector<Trace> tiers = SplitByTids(trace, rosters,
                                               /*default_index=*/0);
  ASSERT_EQ(tiers.size(), 2u);
  // Tier 0: tid 1 plus unclaimed 3 and 4.
  ASSERT_EQ(tiers[0].threads.size(), 3u);
  EXPECT_EQ(tiers[0].threads[0].tid, 1);
  EXPECT_EQ(tiers[0].threads[1].tid, 3);
  EXPECT_EQ(tiers[0].threads[2].tid, 4);
  ASSERT_EQ(tiers[1].threads.size(), 1u);
  EXPECT_EQ(tiers[1].threads[0].tid, 2);
  EXPECT_EQ(tiers[0].duration, 100);
  EXPECT_EQ(tiers[1].function_names.size(), 1u);
  ASSERT_EQ(tiers[0].stuck_threads.size(), 1u);
  EXPECT_EQ(tiers[0].stuck_threads[0], 4);
}

}  // namespace
}  // namespace dist
