# Empty compiler generated dependencies file for integration_minipg_profile_test.
# This may be replaced when dependencies are built.
