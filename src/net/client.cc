#include "src/net/client.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

namespace net {

bool BlockingClient::Connect(uint16_t port) {
  fd_ = ConnectLocal(port, /*nonblocking=*/false);
  parser_ = FrameParser();
  pending_.clear();
  return fd_.valid();
}

bool BlockingClient::Send(const Frame& frame) {
  std::string bytes;
  EncodeFrame(frame, &bytes);
  return SendRaw(bytes.data(), bytes.size());
}

bool BlockingClient::SendRaw(const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  size_t off = 0;
  while (off < size) {
    const ssize_t n = ::send(fd_.get(), p + off, size - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

bool BlockingClient::Recv(Frame* out, int timeout_ms) {
  while (true) {
    if (!pending_.empty()) {
      *out = pending_.front();
      pending_.erase(pending_.begin());
      return true;
    }
    pollfd pfd{};
    pfd.fd = fd_.get();
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready <= 0) {
      return false;  // timeout or poll error
    }
    uint8_t buf[4096];
    const ssize_t n = ::read(fd_.get(), buf, sizeof(buf));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;  // EOF or read error
    }
    if (parser_.Feed(buf, static_cast<size_t>(n), &pending_) !=
        WireError::kOk) {
      return false;
    }
  }
}

bool BlockingClient::Call(const Frame& request, Frame* reply, int timeout_ms) {
  return Send(request) && Recv(reply, timeout_ms);
}

}  // namespace net
