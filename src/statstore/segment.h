// Compressed per-epoch record codec for statstore segment files.
//
// A segment is an append-only sequence of framed records, one record per
// epoch. Records are *streaming*: the codec carries per-series XOR state and
// the delta-of-delta epoch state across records, so record N is decodable
// only after records 0..N-1 of the same segment — that is where the
// compression comes from, and it is why segments are self-contained (each
// one restarts the codec with a key frame naming its series). The store
// frames each payload with a length + checksum so a torn tail truncates at
// a record boundary; within the payload the codec rejects malformed input
// (caps, unconsumed bits) instead of fabricating values.
//
// Payload layout per record (bit-packed, see gorilla.h for the codecs):
//   epoch        delta-of-delta (first record of the segment: raw 64 bits)
//   new_series   16-bit count, then per series: 12-bit name length + bytes
//   presence     1 bit per known series, in series-id order
//   values       XOR-encoded double per present series, in id order
//
// Series ids are per-segment, assigned in order of first appearance. A
// series absent from an epoch contributes no bits and keeps its XOR state,
// so reappearing series still compress against their last value.
#ifndef SRC_STATSTORE_SEGMENT_H_
#define SRC_STATSTORE_SEGMENT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/statstore/gorilla.h"

namespace statstore {

// One series' value at one epoch, as handed to Append / returned by decode.
struct SeriesValue {
  std::string series;
  double value = 0.0;
};

// One epoch's worth of metric values.
struct EpochSample {
  uint64_t epoch = 0;
  std::vector<SeriesValue> values;
};

// Codec caps; payloads exceeding them are rejected as corrupt.
inline constexpr size_t kMaxSeriesPerSegment = 1u << 20;
inline constexpr size_t kMaxSeriesNameBytes = (1u << 12) - 1;  // 12-bit field

class SegmentEncoder {
 public:
  // Encodes `sample` as the segment's next record payload. Values are
  // processed in series-id order (existing series first, new ones appended),
  // so the input order does not matter.
  std::vector<uint8_t> EncodeRecord(const EpochSample& sample);

  size_t series_count() const { return series_names_.size(); }

 private:
  DeltaOfDeltaEncoder epoch_enc_;
  std::unordered_map<std::string, uint32_t> series_ids_;
  std::vector<std::string> series_names_;
  std::vector<XorEncoder> series_enc_;
};

class SegmentDecoder {
 public:
  // Decodes the segment's next record payload into *out (cleared first).
  // Returns false on any malformed payload; the decoder must then be
  // discarded (its stream state is unspecified).
  bool DecodeRecord(const uint8_t* data, size_t size, EpochSample* out);

  const std::vector<std::string>& series_names() const { return names_; }

 private:
  DeltaOfDeltaDecoder epoch_dec_;
  std::vector<std::string> names_;
  std::vector<XorDecoder> values_;
};

// Checksum over a record payload (FNV-1a folded to 32 bits), verified by
// the store to detect torn tails.
uint32_t RecordChecksum(const uint8_t* data, size_t size);

}  // namespace statstore

#endif  // SRC_STATSTORE_SEGMENT_H_
