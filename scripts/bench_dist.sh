#!/usr/bin/env bash
# Sweep runner for the cross-service benchmark (bench/distload.cc).
# Builds the `distload` target, runs it --runs times, and merges the runs
# into one BENCH_dist.json at the repo root. The merge is deterministic: for
# every utilization point the run with the median p99 is selected (ties
# broken by run index), the cold-start section comes from the run whose
# dist:cold_start contribution is the median, and the acceptance verdict is
# recomputed from the merged points — so repeated invocations over the same
# run set always produce byte-identical output.
# Usage: scripts/bench_dist.sh [--runs N] [--out FILE]
set -euo pipefail
cd "$(dirname "$0")/.."

RUNS=1
OUT="BENCH_dist.json"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --runs) RUNS="$2"; shift 2 ;;
    --out) OUT="$2"; shift 2 ;;
    *) echo "usage: $0 [--runs N] [--out FILE]" >&2; exit 2 ;;
  esac
done

echo "== build: bench/distload =="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)" --target distload

WORK="$(mktemp -d)"
trap 'rm -rf "${WORK}"' EXIT

STATUS=0
for ((i = 1; i <= RUNS; i++)); do
  echo "== run ${i}/${RUNS} =="
  RUN_DIR="${WORK}/run${i}"
  mkdir -p "${RUN_DIR}"
  # The binary exits non-zero when an acceptance gate is missed; record the
  # worst status but still merge, so a flaky point doesn't hide data.
  (cd "${RUN_DIR}" && "${OLDPWD}/build/bench/distload") || STATUS=$?
done

if [[ "${RUNS}" == "1" ]]; then
  cp "${WORK}/run1/BENCH_dist.json" "${OUT}"
else
  python3 - "${OUT}" "${WORK}"/run*/BENCH_dist.json <<'PY'
import json, statistics, sys

out_path, *paths = sys.argv[1:]
runs = [json.load(open(p)) for p in sorted(paths)]
merged = {k: runs[0][k] for k in
          ("benchmark", "connections", "front_net_workers", "httpd_workers",
           "backend_workers")}
merged["runs_merged"] = len(runs)
merged["capacity_per_s"] = statistics.median_low(
    sorted(r["capacity_per_s"] for r in runs))

points = []
for idx in range(len(runs[0]["points"])):
    candidates = [r["points"][idx] for r in runs]
    med = statistics.median_low(sorted(p["p99_ms"] for p in candidates))
    # First run whose point carries the median p99 (deterministic).
    points.append(next(p for p in candidates if p["p99_ms"] == med))
merged["points"] = points


def cold_share(run):
    for f in run["cold_start"]["top_factors"]:
        if f["name"] == "dist:cold_start":
            return f["contribution"]
    return 0.0


colds = [r["cold_start"] for r in runs]
med_cold = statistics.median_low(sorted(cold_share(r) for r in runs))
merged["cold_start"] = next(
    r["cold_start"] for r in runs if cold_share(r) == med_cold)

BACKEND = {"lock_rec_lock", "os_event_wait", "log_write_up_to", "fil_flush",
           "trx_commit", "run_transaction"}


def is_front(name):
    return (name.startswith(("net:", "apr_", "ap_", "rpc:")) or
            name in ("process_request", "default_handler"))


overload = [f["name"] for f in points[-1]["top_factors"]]
merged["acceptance"] = {
    "backend_factor_in_top3_at_overload": any(n in BACKEND for n in overload),
    "front_factor_in_top3_at_overload": any(is_front(n) for n in overload),
    "cold_start_in_top3": any(
        f["name"] == "dist:cold_start"
        for f in merged["cold_start"]["top_factors"]),
}
json.dump(merged, open(out_path, "w"), indent=2)
open(out_path, "a").write("\n")
PY
fi

echo "== wrote ${OUT} =="
python3 -c "
import json
a = json.load(open('${OUT}'))['acceptance']
print('backend@overload: %s  front@overload: %s  cold_start ranked: %s' % (
    a['backend_factor_in_top3_at_overload'],
    a['front_factor_in_top3_at_overload'], a['cold_start_in_top3']))
" 2>/dev/null || true
exit "${STATUS}"
