// The VProfiler online runtime: tracing control, per-thread record buffers,
// semantic-interval annotations, and the hooks used by probes and the
// instrumented synchronization primitives.
#ifndef SRC_VPROF_RUNTIME_H_
#define SRC_VPROF_RUNTIME_H_

#include <atomic>
#include <cstdint>

#include "src/vprof/registry.h"
#include "src/vprof/trace.h"
#include "src/vprof/types.h"

namespace vprof {

// Maximum nesting depth of simultaneously-open recorded probes on one thread.
inline constexpr int kMaxProbeDepth = 128;

// Fast global flags, read on every probe. Mutate only via Start/StopTracing
// and EnableFullTrace.
extern std::atomic<bool> g_tracing;
extern std::atomic<bool> g_full_trace;

inline bool IsTracing() { return g_tracing.load(std::memory_order_relaxed); }
inline bool IsFullTrace() { return g_full_trace.load(std::memory_order_relaxed); }

// Nanoseconds since the current run's epoch (monotonic clock).
TimeNs Now();

// All per-thread recording state. One instance per OS thread that touches the
// runtime while tracing; owned by the global runtime, reset between runs.
class ThreadState {
 public:
  explicit ThreadState(ThreadId tid) : tid_(tid) {}

  ThreadId tid() const { return tid_; }
  IntervalId current_sid() const { return current_sid_; }

  // --- probe hooks -----------------------------------------------------
  // Opens an invocation record; returns its index for CloseInvocation.
  uint32_t OpenInvocation(FuncId func, TimeNs now);
  void CloseInvocation(uint32_t index, TimeNs now);
  uint64_t run_epoch() const { return run_epoch_; }

  // --- segment / interval transitions ----------------------------------
  // Switches the interval this thread works on behalf of (segment split).
  void SwitchInterval(IntervalId sid, TimeNs now);

  // Marks the thread blocked (lock/condvar/queue). EndBlocked closes the
  // blocked segment, records the wake-up edge, and resumes execution.
  // Nested Begin/End pairs (a condvar wait inside a queue wait, the lock
  // reacquisition after a wait) are counted and only the outermost pair is
  // recorded, keeping segments flat.
  void BeginBlocked(SegmentState state, TimeNs now);
  void EndBlocked(TimeNs now, ThreadId waker_tid, TimeNs waker_time);

  // Splits the current executing segment to attach a created-by edge for a
  // freshly dequeued task (paper's 4-tuple).
  void AttachGeneratorEdge(ThreadId producer_tid, TimeNs enqueue_time, TimeNs now);

  // Records a semantic-interval begin/end annotation on this thread.
  void RecordIntervalEvent(IntervalId sid, IntervalEventKind kind, TimeNs now,
                           IntervalLabel label = kNoLabel);

  // --- run lifecycle ----------------------------------------------------
  void ResetForRun(uint64_t run_epoch);
  // Closes any open segment and copies buffers out.
  ThreadTrace Collect(TimeNs end_time);

 private:
  void EnsureSegmentOpen(TimeNs now);
  void CloseSegment(TimeNs now);

  ThreadId tid_;
  uint64_t run_epoch_ = 0;
  IntervalId current_sid_ = kNoInterval;

  std::vector<Invocation> invocations_;
  std::vector<Segment> segments_;
  std::vector<IntervalEvent> interval_events_;

  struct Frame {
    FuncId func;
    uint32_t record_index;
  };
  Frame stack_[kMaxProbeDepth];
  int depth_ = 0;
  int block_depth_ = 0;

  // Open segment (start < 0 when none).
  TimeNs seg_start_ = -1;
  SegmentState seg_state_ = SegmentState::kExecuting;
  IntervalId seg_sid_ = kNoInterval;
  // Pending created-by edge for the segment being opened.
  ThreadId pending_gen_tid_ = kNoThread;
  TimeNs pending_gen_time_ = -1;
  // Waker reported by an inner nested wait, consumed by the outermost
  // EndBlocked.
  ThreadId pending_waker_tid_ = kNoThread;
  TimeNs pending_waker_time_ = -1;
};

// Returns this thread's state, creating and registering it on first use.
ThreadState* CurrentThread();

// --- run control ----------------------------------------------------------

// Clears all buffers, re-arms the clock epoch, and begins recording.
void StartTracing();

// Stops recording and returns everything captured since StartTracing.
Trace StopTracing();

// Enables the DTrace-like always-on heavyweight tracer (see full_tracer.h).
// Used only by the overhead-comparison experiment.
void EnableFullTrace(bool enabled);

// --- semantic interval annotations (paper Section 3.1) ---------------------

// Annotation (1): a new semantic interval is created; the calling thread
// starts working on its behalf. Returns the new interval's id. The optional
// label classifies the interval (e.g. transaction type) so the analysis can
// compute per-type profiles.
IntervalId BeginInterval(IntervalLabel label = kNoLabel);

// Annotation (2): the semantic interval is complete. The calling thread
// reverts to background (no-interval) execution.
void EndInterval(IntervalId sid);

// Annotation (3): the calling thread starts executing on behalf of `sid`
// (task-based models; worker dequeues an event for the interval). Passing
// kNoInterval marks the thread as background again.
void WorkOnBehalf(IntervalId sid);

// The interval the calling thread currently works on behalf of.
IntervalId CurrentIntervalId();

// RAII wrapper: begins a semantic interval on construction and ends it on
// destruction. If the thread is already inside an interval, the scope joins
// it (no nested interval is created).
class IntervalScope {
 public:
  explicit IntervalScope(IntervalLabel label = kNoLabel) {
    if (CurrentIntervalId() == kNoInterval) {
      sid_ = BeginInterval(label);
    }
  }
  ~IntervalScope() {
    if (sid_ != kNoInterval) {
      EndInterval(sid_);
    }
  }
  IntervalScope(const IntervalScope&) = delete;
  IntervalScope& operator=(const IntervalScope&) = delete;

  IntervalId id() const { return sid_; }

 private:
  IntervalId sid_ = kNoInterval;
};

}  // namespace vprof

#endif  // SRC_VPROF_RUNTIME_H_
