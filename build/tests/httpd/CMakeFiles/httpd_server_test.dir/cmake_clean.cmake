file(REMOVE_RECURSE
  "CMakeFiles/httpd_server_test.dir/server_test.cc.o"
  "CMakeFiles/httpd_server_test.dir/server_test.cc.o.d"
  "httpd_server_test"
  "httpd_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/httpd_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
