# Empty dependencies file for vprof.
# This may be replaced when dependencies are built.
