// Samplers for the latency/workload distributions used across the simulators.
#ifndef SRC_STATKIT_DISTRIBUTIONS_H_
#define SRC_STATKIT_DISTRIBUTIONS_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/statkit/rng.h"

namespace statkit {

// Standard normal via Box-Muller (single value; the discarded pair keeps the
// sampler stateless).
inline double SampleStandardNormal(Rng& rng) {
  double u1 = rng.NextDouble();
  if (u1 <= 0.0) {
    u1 = 1e-300;
  }
  const double u2 = rng.NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

// Lognormal with the given log-space mean and log-space sigma. Heavy right
// tail; used to model storage service times.
inline double SampleLognormal(Rng& rng, double mu, double sigma) {
  return std::exp(mu + sigma * SampleStandardNormal(rng));
}

// Exponential with the given mean (mean = 1/lambda).
inline double SampleExponential(Rng& rng, double mean) {
  double u = rng.NextDouble();
  if (u <= 0.0) {
    u = 1e-300;
  }
  return -mean * std::log(u);
}

// Pareto (Lomax form shifted to start at `scale`); alpha > 1 for finite mean.
inline double SamplePareto(Rng& rng, double scale, double alpha) {
  double u = rng.NextDouble();
  if (u <= 0.0) {
    u = 1e-300;
  }
  return scale / std::pow(u, 1.0 / alpha);
}

// Zipf-distributed integers in [0, n). Uses the classic precomputed-CDF
// approach: O(n) setup, O(log n) sampling. Suitable for the table-key skews in
// the database workloads (n up to a few hundred thousand).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta) : cdf_(n) {
    double sum = 0.0;
    for (uint64_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
      cdf_[i] = sum;
    }
    for (uint64_t i = 0; i < n; ++i) {
      cdf_[i] /= sum;
    }
  }

  uint64_t Sample(Rng& rng) const {
    const double u = rng.NextDouble();
    // Binary search for the first CDF entry >= u.
    uint64_t lo = 0;
    uint64_t hi = cdf_.size() - 1;
    while (lo < hi) {
      const uint64_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  uint64_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace statkit

#endif  // SRC_STATKIT_DISTRIBUTIONS_H_
