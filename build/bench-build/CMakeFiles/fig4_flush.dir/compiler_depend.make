# Empty compiler generated dependencies file for fig4_flush.
# This may be replaced when dependencies are built.
