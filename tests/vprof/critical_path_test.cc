#include "src/vprof/analysis/critical_path.h"

#include <gtest/gtest.h>

#include "tests/vprof/trace_builder.h"

namespace vprof {
namespace {

using vprof_test::TraceBuilder;

double TotalWindowNs(const IntervalBreakdown& b) {
  double total = 0.0;
  for (const PathWindow& w : b.windows) {
    total += static_cast<double>(w.hi - w.lo);
  }
  return total;
}

TEST(TraceIndexTest, MatchesBeginEndPairs) {
  TraceBuilder tb;
  tb.Begin(0, 1, 100).End(0, 1, 500);
  tb.Begin(0, 2, 600);  // never ends: excluded
  const Trace trace = tb.Build();
  TraceIndex index(trace);
  ASSERT_EQ(index.Intervals().size(), 1u);
  EXPECT_EQ(index.Intervals()[0].sid, 1u);
  EXPECT_EQ(index.Intervals()[0].begin_time, 100);
  EXPECT_EQ(index.Intervals()[0].end_time, 500);
}

TEST(TraceIndexTest, EndWithoutBeginIsExcluded) {
  // Regression: a truncated trace (arena cap, quarantined thread) can hold
  // an end annotation whose begin was lost. The orphan's zero-initialized
  // begin_time used to pass the end_time > 0 filter and misattribute the
  // whole run prefix to the interval.
  TraceBuilder tb;
  tb.Begin(0, 1, 100).End(0, 1, 500);  // complete
  tb.End(0, 2, 900);                   // begin lost to truncation
  const Trace trace = tb.Build();
  TraceIndex index(trace);
  ASSERT_EQ(index.Intervals().size(), 1u);
  EXPECT_EQ(index.Intervals()[0].sid, 1u);
  EXPECT_TRUE(index.Intervals()[0].has_begin);
  EXPECT_TRUE(index.Intervals()[0].has_end);
}

TEST(TraceIndexTest, CrossThreadBeginEnd) {
  TraceBuilder tb;
  tb.Begin(0, 7, 10).End(3, 7, 90);
  const Trace trace = tb.Build();
  TraceIndex index(trace);
  ASSERT_EQ(index.Intervals().size(), 1u);
  EXPECT_EQ(index.Intervals()[0].begin_tid, 0);
  EXPECT_EQ(index.Intervals()[0].end_tid, 3);
}

TEST(TraceIndexTest, LastSegmentBefore) {
  TraceBuilder tb;
  tb.Exec(0, 1, 0, 100).Exec(0, 1, 100, 200).Exec(0, 1, 200, 300);
  const Trace trace = tb.Build();
  TraceIndex index(trace);
  EXPECT_EQ(index.LastSegmentBefore(0, 150), 1);
  EXPECT_EQ(index.LastSegmentBefore(0, 100), 0);
  EXPECT_EQ(index.LastSegmentBefore(0, 0), -1);
  EXPECT_EQ(index.LastSegmentBefore(0, 5000), 2);
  EXPECT_EQ(index.LastSegmentBefore(9, 5000), -1);  // unknown thread
}

TEST(CriticalPathTest, SingleThreadSingleSegment) {
  TraceBuilder tb;
  tb.Begin(0, 1, 100).End(0, 1, 500);
  tb.Exec(0, 1, 100, 500);
  const Trace trace = tb.Build();
  TraceIndex index(trace);
  const auto breakdowns = BuildBreakdowns(index);
  ASSERT_EQ(breakdowns.size(), 1u);
  const IntervalBreakdown& b = breakdowns[0];
  EXPECT_DOUBLE_EQ(b.latency_ns(), 400.0);
  EXPECT_DOUBLE_EQ(TotalWindowNs(b), 400.0);
  EXPECT_DOUBLE_EQ(b.blocked_wait_ns, 0.0);
}

TEST(CriticalPathTest, WindowsClippedToIntervalBounds) {
  // The segment extends beyond the interval on both sides; only the interval
  // span counts.
  TraceBuilder tb;
  tb.Begin(0, 1, 100).End(0, 1, 300);
  tb.Exec(0, 1, 0, 1000);
  const Trace trace = tb.Build();
  TraceIndex index(trace);
  const auto b = BuildBreakdowns(index);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_DOUBLE_EQ(TotalWindowNs(b[0]), 200.0);
}

TEST(CriticalPathTest, BlockedWithoutWakerCountsAsBlockedWait) {
  TraceBuilder tb;
  tb.Begin(0, 1, 0).End(0, 1, 300);
  tb.Exec(0, 1, 0, 100).Blocked(0, 1, 100, 250).Exec(0, 1, 250, 300);
  const Trace trace = tb.Build();
  TraceIndex index(trace);
  const auto b = BuildBreakdowns(index);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_DOUBLE_EQ(TotalWindowNs(b[0]), 150.0);
  EXPECT_DOUBLE_EQ(b[0].blocked_wait_ns, 150.0);
}

TEST(CriticalPathTest, BlockedFollowsWakerThread) {
  // Thread 0 blocks [100, 250] on a lock released by thread 1 at t=250.
  // Thread 1 executes [50, 250] on behalf of another interval; the span
  // [100, 250] of that execution is on interval 1's critical path.
  TraceBuilder tb;
  tb.Begin(0, 1, 0).End(0, 1, 300);
  tb.Exec(0, 1, 0, 100)
      .Blocked(0, 1, 100, 250, /*waker=*/1, /*waker_time=*/250)
      .Exec(0, 1, 250, 300);
  tb.Exec(1, 2, 50, 250);
  const Trace trace = tb.Build();
  TraceIndex index(trace);
  const auto b = BuildBreakdowns(index);
  ASSERT_EQ(b.size(), 1u);
  // Own execution: 100 + 50; waker execution: 150.
  EXPECT_DOUBLE_EQ(TotalWindowNs(b[0]), 300.0);
  bool saw_waker_window = false;
  for (const PathWindow& w : b[0].windows) {
    if (w.tid == 1) {
      saw_waker_window = true;
      EXPECT_EQ(w.lo, 100);
      EXPECT_EQ(w.hi, 250);
    }
  }
  EXPECT_TRUE(saw_waker_window);
}

TEST(CriticalPathTest, WakerChainRecursesAcrossThreads) {
  // 0 waits for 1; within that span 1 itself waited for 2.
  TraceBuilder tb;
  tb.Begin(0, 1, 0).End(0, 1, 400);
  tb.Exec(0, 1, 0, 100)
      .Blocked(0, 1, 100, 300, /*waker=*/1, /*waker_time=*/300)
      .Exec(0, 1, 300, 400);
  tb.Blocked(1, 2, 100, 200, /*waker=*/2, /*waker_time=*/200).Exec(1, 2, 200, 300);
  tb.Exec(2, 3, 0, 200);
  const Trace trace = tb.Build();
  TraceIndex index(trace);
  const auto b = BuildBreakdowns(index);
  ASSERT_EQ(b.size(), 1u);
  bool saw_t2 = false;
  for (const PathWindow& w : b[0].windows) {
    if (w.tid == 2) {
      saw_t2 = true;
      EXPECT_EQ(w.lo, 100);
      EXPECT_EQ(w.hi, 200);
    }
  }
  EXPECT_TRUE(saw_t2);
  // Full path: 0:[0,100] + 2:[100,200] + 1:[200,300] + 0:[300,400] = 400.
  EXPECT_DOUBLE_EQ(TotalWindowNs(b[0]), 400.0);
}

TEST(CriticalPathTest, DeschedulingGapCountsAsDescheduled) {
  // The thread runs another interval's work in the middle of the target's.
  TraceBuilder tb;
  tb.Begin(0, 1, 0).End(0, 1, 300);
  tb.Exec(0, 1, 0, 100).Exec(0, 2, 100, 200).Exec(0, 1, 200, 300);
  const Trace trace = tb.Build();
  TraceIndex index(trace);
  const auto b = BuildBreakdowns(index);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_DOUBLE_EQ(TotalWindowNs(b[0]), 200.0);
  EXPECT_DOUBLE_EQ(b[0].descheduled_ns, 100.0);
}

TEST(CriticalPathTest, CreatedByEdgeCrossesToProducer) {
  // Producer (thread 0) begins the interval and enqueues at t=150. Worker
  // (thread 1) dequeues at t=200, finishes at t=300 and ends the interval.
  TraceBuilder tb;
  tb.Begin(0, 1, 100).End(1, 1, 300);
  tb.Exec(0, 1, 100, 150);
  tb.ExecGenerated(1, 1, 200, 300, /*producer=*/0, /*enqueue_time=*/150);
  const Trace trace = tb.Build();
  TraceIndex index(trace);
  const auto b = BuildBreakdowns(index);
  ASSERT_EQ(b.size(), 1u);
  // Worker execution 100ns + producer execution 50ns.
  EXPECT_DOUBLE_EQ(TotalWindowNs(b[0]), 150.0);
  // Queue wait: enqueue 150 -> dequeue 200.
  EXPECT_DOUBLE_EQ(b[0].queue_wait_ns, 50.0);
  bool saw_producer = false;
  for (const PathWindow& w : b[0].windows) {
    if (w.tid == 0) {
      saw_producer = true;
      EXPECT_EQ(w.lo, 100);
      EXPECT_EQ(w.hi, 150);
    }
  }
  EXPECT_TRUE(saw_producer);
}

TEST(CriticalPathTest, CreatedByEdgeTakenOnWakerChain) {
  // The interval ends on the submitting thread (client), which blocks until
  // the worker signals completion: the walk reaches the worker through the
  // wake-up edge. The span between enqueue (t=100) and the task's first
  // worker segment (t=800) is queueing delay behind the worker's other work,
  // not execution on the interval's behalf.
  TraceBuilder tb;
  tb.Begin(0, 1, 0).End(0, 1, 1000);
  tb.Exec(0, 1, 0, 100)  // submit path; enqueues at t=100
      .Blocked(0, 1, 100, 950, /*waker=*/1, /*waker_time=*/900)
      .Exec(0, 1, 950, 1000);
  tb.Exec(1, 2, 100, 800);  // worker busy with a queued-ahead task
  tb.ExecGenerated(1, 1, 800, 900, /*producer=*/0, /*enqueue_time=*/100);
  const Trace trace = tb.Build();
  TraceIndex index(trace);
  const auto b = BuildBreakdowns(index);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_DOUBLE_EQ(b[0].queue_wait_ns, 700.0);
  // Path: client [0,100] + worker task [800,900] + client [950,1000]; the
  // other task's window [100,800] must NOT be on the path.
  EXPECT_DOUBLE_EQ(TotalWindowNs(b[0]), 250.0);
  for (const PathWindow& w : b[0].windows) {
    if (w.tid == 1) {
      EXPECT_GE(w.lo, 800);
    }
  }
}

TEST(CriticalPathTest, QueueWaitSegmentsCount) {
  TraceBuilder tb;
  tb.Begin(0, 1, 0).End(0, 1, 200);
  tb.Exec(0, 1, 0, 50).QueueWait(0, 1, 50, 150).Exec(0, 1, 150, 200);
  const Trace trace = tb.Build();
  TraceIndex index(trace);
  const auto b = BuildBreakdowns(index);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_DOUBLE_EQ(b[0].queue_wait_ns, 100.0);
  EXPECT_DOUBLE_EQ(TotalWindowNs(b[0]), 100.0);
}

TEST(CriticalPathTest, WakerDepthLimitTerminates) {
  // Two threads that block on each other in alternating windows would
  // recurse; the depth limit must stop the walk.
  TraceBuilder tb;
  tb.Begin(0, 1, 0).End(0, 1, 1000);
  for (int i = 0; i < 10; ++i) {
    const TimeNs t0 = i * 100;
    tb.Blocked(0, 1, t0, t0 + 100, /*waker=*/1, /*waker_time=*/t0 + 100);
    tb.Blocked(1, 2, t0, t0 + 100, /*waker=*/0, /*waker_time=*/t0 + 100);
  }
  const Trace trace = tb.Build();
  TraceIndex index(trace);
  CriticalPathOptions options;
  options.max_waker_depth = 3;
  const auto b = BuildBreakdowns(index, options);
  ASSERT_EQ(b.size(), 1u);  // must terminate
}

TEST(CriticalPathTest, MultipleIntervalsIndependent) {
  TraceBuilder tb;
  tb.Begin(0, 1, 0).End(0, 1, 100);
  tb.Begin(0, 2, 100).End(0, 2, 400);
  tb.Exec(0, 1, 0, 100).Exec(0, 2, 100, 400);
  const Trace trace = tb.Build();
  TraceIndex index(trace);
  const auto b = BuildBreakdowns(index);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_DOUBLE_EQ(b[0].latency_ns(), 100.0);
  EXPECT_DOUBLE_EQ(b[1].latency_ns(), 300.0);
  EXPECT_DOUBLE_EQ(TotalWindowNs(b[0]), 100.0);
  EXPECT_DOUBLE_EQ(TotalWindowNs(b[1]), 300.0);
}

}  // namespace
}  // namespace vprof
