file(REMOVE_RECURSE
  "CMakeFiles/minipg_wal_test.dir/wal_test.cc.o"
  "CMakeFiles/minipg_wal_test.dir/wal_test.cc.o.d"
  "minipg_wal_test"
  "minipg_wal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minipg_wal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
