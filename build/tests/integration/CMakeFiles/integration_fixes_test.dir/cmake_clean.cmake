file(REMOVE_RECURSE
  "CMakeFiles/integration_fixes_test.dir/fixes_test.cc.o"
  "CMakeFiles/integration_fixes_test.dir/fixes_test.cc.o.d"
  "integration_fixes_test"
  "integration_fixes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_fixes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
