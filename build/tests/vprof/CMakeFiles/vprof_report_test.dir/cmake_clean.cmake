file(REMOVE_RECURSE
  "CMakeFiles/vprof_report_test.dir/report_test.cc.o"
  "CMakeFiles/vprof_report_test.dir/report_test.cc.o.d"
  "vprof_report_test"
  "vprof_report_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vprof_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
