# Empty dependencies file for vprof_edge_cases_test.
# This may be replaced when dependencies are built.
