#include "src/minipg/wal.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/simio/disk.h"

namespace minipg {
namespace {

simio::DiskConfig FastWalDisk() {
  simio::DiskConfig config;
  config.write_mu = 0.5;
  config.write_sigma = 0.05;
  config.fsync_mu = 1.5;
  config.fsync_sigma = 0.05;
  config.fsync_spike_prob = 0.0;
  config.serialize_access = false;
  return config;
}

TEST(WalUnitTest, InsertAdvancesLsn) {
  WalUnit wal(FastWalDisk());
  const uint64_t a = wal.Insert(100);
  const uint64_t b = wal.Insert(50);
  EXPECT_LT(a, b);
  EXPECT_EQ(wal.insert_lsn(), 151u);
}

TEST(WalUnitTest, FlushMakesDurable) {
  WalUnit wal(FastWalDisk());
  const uint64_t lsn = wal.Insert(512);
  EXPECT_LT(wal.flushed_lsn(), lsn);
  wal.Flush(lsn);
  EXPECT_GE(wal.flushed_lsn(), lsn);
  EXPECT_GE(wal.disk().fsyncs(), 1u);
}

TEST(WalUnitTest, FlushIdempotent) {
  WalUnit wal(FastWalDisk());
  const uint64_t lsn = wal.Insert(512);
  wal.Flush(lsn);
  const uint64_t syncs = wal.disk().fsyncs();
  wal.Flush(lsn);
  EXPECT_EQ(wal.disk().fsyncs(), syncs);
}

TEST(WalUnitTest, GroupCommitBatchesConcurrentFlushes) {
  WalUnit wal(FastWalDisk());
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        const uint64_t lsn = wal.Insert(128);
        wal.Flush(lsn);
        ASSERT_GE(wal.flushed_lsn(), lsn);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  const WalStats stats = wal.stats();
  EXPECT_EQ(stats.inserts, 200u);
  EXPECT_EQ(stats.flush_calls, 200u);
  // Group commit: strictly fewer actual flushes than flush calls.
  EXPECT_LT(stats.flushes_performed, 200u);
  EXPECT_GE(stats.flushes_performed, 1u);
}

TEST(WalTest, SingleUnitDefault) {
  Wal wal(1, FastWalDisk());
  EXPECT_EQ(wal.unit_count(), 1);
  const auto pos = wal.Insert(100);
  EXPECT_EQ(pos.unit, 0);
  wal.Flush(pos);
  EXPECT_GE(wal.unit(0).flushed_lsn(), pos.lsn);
}

TEST(WalTest, DistributedUnitsBothUsed) {
  Wal wal(2, FastWalDisk());
  ASSERT_EQ(wal.unit_count(), 2);
  // With no waiters the placement is deterministic (unit 0); both units are
  // still addressable via InsertAt.
  const auto p0 = wal.InsertAt(0, 100);
  const auto p1 = wal.InsertAt(1, 100);
  wal.Flush(p0);
  wal.Flush(p1);
  EXPECT_GE(wal.unit(0).flushed_lsn(), p0.lsn);
  EXPECT_GE(wal.unit(1).flushed_lsn(), p1.lsn);
}

TEST(WalTest, PlacementAvoidsBusyUnit) {
  // Concurrency smoke test: with two units and many committers, both units
  // end up performing flushes.
  Wal wal(2, FastWalDisk());
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        const auto pos = wal.Insert(256);
        wal.Flush(pos);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_GT(wal.unit(0).stats().flushes_performed, 0u);
  // Unit 1 is used once unit 0 accumulates waiters; on a single core this
  // can be rare, so only require that all inserts were durably flushed.
  const uint64_t total_inserts =
      wal.unit(0).stats().inserts + wal.unit(1).stats().inserts;
  EXPECT_EQ(total_inserts, 200u);
}

}  // namespace
}  // namespace minipg
