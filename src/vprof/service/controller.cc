#include "src/vprof/service/controller.h"

#include <algorithm>

#include "src/vprof/registry.h"

namespace vprof {

RefinementController::RefinementController(FuncId root, const CallGraph* graph,
                                           ControllerOptions options)
    : root_(root), graph_(graph), options_(options) {
  expanded_.insert(root_);
}

std::vector<FuncId> RefinementController::DesiredSet() const {
  std::set<FuncId> desired;
  desired.insert(root_);
  for (FuncId func : expanded_) {
    desired.insert(func);
    for (FuncId child : graph_->Children(func)) desired.insert(child);
  }
  return std::vector<FuncId>(desired.begin(), desired.end());
}

int RefinementController::ApplyLocked() {
  const std::vector<FuncId> desired = DesiredSet();
  int flips = 0;
  // Only touch bits the controller owns: functions declared in its graph.
  // Probes registered by other subsystems keep whatever state they had.
  for (FuncId func : graph_->Functions()) {
    const bool want =
        std::binary_search(desired.begin(), desired.end(), func);
    if (IsFunctionEnabled(func) != want) {
      SetFunctionEnabled(func, want);
      ++flips;
    }
  }
  status_.instrumented = desired;
  return flips;
}

int RefinementController::ApplyInstrumentation() {
  std::lock_guard<std::mutex> lock(mu_);
  return ApplyLocked();
}

int RefinementController::Step(const OnlineTreeSnapshot& snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  ++status_.steps;
  if (snapshot.weight < options_.min_weight) {
    ++status_.skipped;
    status_.last_changes = 0;
    return 0;
  }

  const std::vector<Factor> ranked = AggregateFactors(
      snapshot.View(), *graph_, root_, options_.specificity);

  FactorSelectionOptions select;
  select.top_k = options_.top_k;
  select.min_contribution = options_.min_contribution;
  select.specificity = options_.specificity;
  status_.selection =
      SelectFactors(snapshot.View(), *graph_, root_, select);

  // Expand: descend into every selected function that still has unexplored
  // callees. Body factors are terminal — the function is already expanded
  // and its own body dominates — so they never trigger descent.
  for (const Factor& factor : status_.selection) {
    const FuncId candidates[2] = {factor.body_a ? kInvalidFunc : factor.func_a,
                                  factor.body_b ? kInvalidFunc : factor.func_b};
    for (FuncId func : candidates) {
      if (func == kInvalidFunc || !graph_->HasChildren(func)) continue;
      if (expanded_.insert(func).second) {
        ++status_.expansions;
        low_streak_.erase(func);
      }
    }
  }

  // Retire: an expanded function (never the root) whose best factor has sat
  // below the retire floor for `retire_patience` consecutive steps gets its
  // callees' probes turned off again.
  std::map<FuncId, double> best_contribution;
  for (const Factor& factor : ranked) {
    for (FuncId func : {factor.func_a, factor.func_b}) {
      if (func == kInvalidFunc) continue;
      auto [it, inserted] = best_contribution.emplace(func, factor.contribution);
      if (!inserted) it->second = std::max(it->second, factor.contribution);
    }
  }
  std::vector<FuncId> to_retire;
  for (FuncId func : expanded_) {
    if (func == root_) continue;
    auto it = best_contribution.find(func);
    const double contribution = it == best_contribution.end() ? 0.0 : it->second;
    if (contribution < options_.retire_contribution) {
      if (++low_streak_[func] >= options_.retire_patience) {
        to_retire.push_back(func);
      }
    } else {
      low_streak_.erase(func);
    }
  }
  for (FuncId func : to_retire) {
    expanded_.erase(func);
    low_streak_.erase(func);
    ++status_.retirements;
  }

  const int flips = ApplyLocked();
  status_.last_changes = flips;
  status_.stable_steps = flips == 0 ? status_.stable_steps + 1 : 0;
  return flips;
}

bool RefinementController::Converged(int stable_needed) const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_.stable_steps >= stable_needed;
}

ControllerStatus RefinementController::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

}  // namespace vprof
