#include "src/vprof/trace.h"

#include <cstdio>
#include <memory>

#include "src/vprof/registry.h"

namespace vprof {

uint64_t Trace::invocation_count() const {
  uint64_t n = 0;
  for (const ThreadTrace& t : threads) {
    n += t.invocations.size();
  }
  return n;
}

uint64_t Trace::segment_count() const {
  uint64_t n = 0;
  for (const ThreadTrace& t : threads) {
    n += t.segments.size();
  }
  return n;
}

uint64_t Trace::dropped_record_count() const {
  uint64_t n = 0;
  for (const ThreadTrace& t : threads) {
    n += t.dropped_records;
  }
  return n;
}

uint64_t Trace::interval_count() const {
  uint64_t n = 0;
  for (const ThreadTrace& t : threads) {
    for (const IntervalEvent& e : t.interval_events) {
      if (e.kind == IntervalEventKind::kEnd) {
        ++n;
      }
    }
  }
  return n;
}

namespace {

constexpr uint32_t kMagic = 0x56505246;  // "VPRF"
constexpr uint32_t kVersion = 2;         // v2: IntervalEvent carries a label

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteBytes(std::FILE* f, const void* data, size_t size) {
  return std::fwrite(data, 1, size, f) == size;
}

bool ReadBytes(std::FILE* f, void* data, size_t size) {
  return std::fread(data, 1, size, f) == size;
}

template <typename T>
bool WritePod(std::FILE* f, const T& value) {
  return WriteBytes(f, &value, sizeof(T));
}

template <typename T>
bool ReadPod(std::FILE* f, T* value) {
  return ReadBytes(f, value, sizeof(T));
}

bool WriteString(std::FILE* f, const std::string& s) {
  const uint64_t size = s.size();
  return WritePod(f, size) && WriteBytes(f, s.data(), s.size());
}

bool ReadString(std::FILE* f, std::string* s) {
  uint64_t size = 0;
  if (!ReadPod(f, &size) || size > (1ull << 20)) {
    return false;
  }
  s->resize(size);
  return ReadBytes(f, s->data(), size);
}

template <typename T>
bool WriteVector(std::FILE* f, const std::vector<T>& v) {
  const uint64_t size = v.size();
  return WritePod(f, size) && WriteBytes(f, v.data(), v.size() * sizeof(T));
}

template <typename T>
bool ReadVector(std::FILE* f, std::vector<T>* v) {
  uint64_t size = 0;
  if (!ReadPod(f, &size) || size > (1ull << 32)) {
    return false;
  }
  v->resize(size);
  return ReadBytes(f, v->data(), v->size() * sizeof(T));
}

}  // namespace

bool SaveTrace(const Trace& trace, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return false;
  }
  if (!WritePod(f.get(), kMagic) || !WritePod(f.get(), kVersion) ||
      !WritePod(f.get(), trace.duration)) {
    return false;
  }
  const uint64_t name_count = trace.function_names.size();
  if (!WritePod(f.get(), name_count)) {
    return false;
  }
  for (const std::string& name : trace.function_names) {
    if (!WriteString(f.get(), name)) {
      return false;
    }
  }
  const uint64_t thread_count = trace.threads.size();
  if (!WritePod(f.get(), thread_count)) {
    return false;
  }
  for (const ThreadTrace& t : trace.threads) {
    if (!WritePod(f.get(), t.tid) || !WriteVector(f.get(), t.invocations) ||
        !WriteVector(f.get(), t.segments) ||
        !WriteVector(f.get(), t.interval_events)) {
      return false;
    }
  }
  return true;
}

bool LoadTrace(const std::string& path, Trace* trace) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return false;
  }
  uint32_t magic = 0;
  uint32_t version = 0;
  if (!ReadPod(f.get(), &magic) || magic != kMagic ||
      !ReadPod(f.get(), &version) || version != kVersion ||
      !ReadPod(f.get(), &trace->duration)) {
    return false;
  }
  uint64_t name_count = 0;
  if (!ReadPod(f.get(), &name_count) || name_count > kMaxFunctions) {
    return false;
  }
  trace->function_names.resize(name_count);
  for (std::string& name : trace->function_names) {
    if (!ReadString(f.get(), &name)) {
      return false;
    }
  }
  uint64_t thread_count = 0;
  if (!ReadPod(f.get(), &thread_count) || thread_count > (1u << 20)) {
    return false;
  }
  trace->threads.resize(thread_count);
  for (ThreadTrace& t : trace->threads) {
    if (!ReadPod(f.get(), &t.tid) || !ReadVector(f.get(), &t.invocations) ||
        !ReadVector(f.get(), &t.segments) ||
        !ReadVector(f.get(), &t.interval_events)) {
      return false;
    }
  }
  return true;
}

}  // namespace vprof
