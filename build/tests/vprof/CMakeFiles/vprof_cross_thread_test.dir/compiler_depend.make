# Empty compiler generated dependencies file for vprof_cross_thread_test.
# This may be replaced when dependencies are built.
