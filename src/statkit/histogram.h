// Log-scaled latency histogram with quantile queries.
#ifndef SRC_STATKIT_HISTOGRAM_H_
#define SRC_STATKIT_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace statkit {

// Histogram over positive values with geometrically growing bucket bounds.
// Designed for latencies spanning ~6 orders of magnitude (ns to ms) while
// keeping relative quantile error bounded by the per-bucket growth factor.
class LogHistogram {
 public:
  // Buckets cover [min_value, max_value] with `buckets_per_decade` buckets per
  // factor-of-10; values outside the range clamp to the end buckets.
  LogHistogram(double min_value = 1.0, double max_value = 1e9,
               int buckets_per_decade = 20);

  void Add(double value);
  void Merge(const LogHistogram& other);

  uint64_t count() const { return count_; }

  // Quantile q in [0,1] via linear interpolation inside the selected bucket.
  // Returns 0 for an empty histogram.
  double Quantile(double q) const;

  double Percentile(double p) const { return Quantile(p / 100.0); }

  // Multi-line human-readable rendering of the non-empty buckets.
  std::string ToString() const;

  size_t bucket_count() const { return counts_.size(); }
  uint64_t bucket_value(size_t i) const { return counts_[i]; }
  double bucket_lower_bound(size_t i) const;

 private:
  size_t BucketFor(double value) const;

  double min_value_;
  double log_min_;
  double inv_log_step_;
  double log_step_;
  uint64_t count_ = 0;
  std::vector<uint64_t> counts_;
};

}  // namespace statkit

#endif  // SRC_STATKIT_HISTOGRAM_H_
