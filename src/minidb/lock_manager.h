// Record-level two-phase locking with pluggable wait scheduling.
//
// InnoDB grants waiting record locks First-Come-First-Served; the paper's
// headline MySQL finding (Table 5) is that switching to Variance-Aware
// Transaction Scheduling — grant the lock to the *oldest* waiting
// transaction — removes most of the latency variance that surfaced through
// `os_event_wait`. Both policies are implemented here. Waiters sleep on a
// per-request OsEvent, so every lock wait is visible to the profiler as an
// os_event_wait invocation with a wake-up edge to the releasing thread.
#ifndef SRC_MINIDB_LOCK_MANAGER_H_
#define SRC_MINIDB_LOCK_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/minidb/config.h"
#include "src/minidb/os_event.h"

namespace minidb {

enum class LockMode : uint8_t {
  kShared,
  kExclusive,
};

// Typed outcome of a lock request, so callers can distinguish the two
// abort causes (both retryable, but with different client-visible meaning).
enum class LockResult : uint8_t {
  kGranted,
  kTimeout,   // waited wait_timeout_ns without a grant
  kDeadlock,  // aborted by the deadlock detector
};

struct LockStats {
  uint64_t immediate_grants = 0;
  uint64_t waits = 0;
  uint64_t timeouts = 0;
  uint64_t upgrades = 0;
  uint64_t deadlocks = 0;   // waits aborted by the deadlock detector
  uint64_t wait_ns = 0;     // total time spent blocked on lock waits

  LockStats& operator+=(const LockStats& other) {
    immediate_grants += other.immediate_grants;
    waits += other.waits;
    timeouts += other.timeouts;
    upgrades += other.upgrades;
    deadlocks += other.deadlocks;
    wait_ns += other.wait_ns;
    return *this;
  }
};

class Transaction;

class LockManager {
 public:
  // `detect_deadlocks` runs a best-effort wait-for-graph cycle check before
  // each blocking wait (InnoDB-style): the requester that would close a
  // cycle aborts immediately instead of stalling until the timeout. The
  // check is advisory — concurrent graph changes can race it — so the
  // timeout remains the backstop.
  // Sharding: shard = (object_id >> range_bits) % shard_count. range_bits 0
  // stripes by object id; larger values keep key ranges together so hot
  // ranges concentrate in one shard's stats (EngineConfig::lock_shards /
  // lock_shard_range_bits).
  explicit LockManager(LockScheduling scheduling,
                       int64_t wait_timeout_ns = 5LL * 1000 * 1000 * 1000,
                       bool detect_deadlocks = true, int shard_count = 32,
                       int range_bits = 0);

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  // Acquires (or upgrades) a lock on `object_id` for `trx`. Blocks until
  // granted; returns false on timeout or deadlock (caller must abort the
  // transaction). Convenience wrapper over LockEx.
  bool Lock(Transaction* trx, uint64_t object_id, LockMode mode) {
    return LockEx(trx, object_id, mode) == LockResult::kGranted;
  }

  // As Lock, but reports which failure occurred.
  LockResult LockEx(Transaction* trx, uint64_t object_id, LockMode mode);

  // Releases every lock held by `trx`, waking newly-grantable waiters.
  void ReleaseAll(Transaction* trx);

  // Aggregate over all shards.
  LockStats stats() const;

  // Per-shard wait statistics, for the engine's scale gauges: a hot key
  // range shows up as one shard carrying most of the wait_ns.
  LockStats ShardStats(int shard) const;
  int shard_count() const { return static_cast<int>(shards_.size()); }

  // True if `trx` holds a lock on the object at least as strong as `mode`.
  bool Holds(const Transaction* trx, uint64_t object_id, LockMode mode) const;

  // Number of objects with a non-empty queue (for tests).
  size_t ActiveObjects() const;

 private:
  struct Request {
    uint64_t trx_id = 0;
    int64_t trx_start_ts = 0;
    LockMode mode = LockMode::kShared;
    bool granted = false;
    std::unique_ptr<OsEvent> event;  // waiters only
  };

  struct Queue {
    std::vector<Request> granted;
    std::deque<Request> waiting;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, Queue> queues;
    LockStats stats;  // guarded by mu, except wait_ns
    // Accumulated outside the shard mutex (the granted-wait path never
    // retakes it), folded into stats by the accessors.
    std::atomic<uint64_t> wait_ns{0};
  };

  size_t ShardIndex(uint64_t object_id) const {
    return static_cast<size_t>((object_id >> range_bits_) % shards_.size());
  }
  Shard& ShardFor(uint64_t object_id) {
    return shards_[ShardIndex(object_id)];
  }
  const Shard& ShardFor(uint64_t object_id) const {
    return shards_[ShardIndex(object_id)];
  }

  // Grants every waiter that the policy allows; must hold the shard mutex.
  void GrantWaiters(Queue& queue);

  // True if blocking `waiter_trx` on `object_id` would close a wait-for
  // cycle. Takes shard mutexes one at a time; must be called with no shard
  // mutex held.
  bool WouldDeadlock(uint64_t waiter_trx, uint64_t object_id);

  // Granted holders of an object (excluding `self`).
  std::vector<uint64_t> HoldersOf(uint64_t object_id, uint64_t self);

  static bool Compatible(LockMode a, LockMode b) {
    return a == LockMode::kShared && b == LockMode::kShared;
  }

  LockScheduling scheduling_;
  int64_t wait_timeout_ns_;
  bool detect_deadlocks_;
  int range_bits_;
  std::vector<Shard> shards_;  // sized once at construction, never resized

  // Wait-for graph: which object each blocked transaction is waiting on.
  std::mutex waiting_for_mu_;
  std::unordered_map<uint64_t, uint64_t> waiting_for_;
};

}  // namespace minidb

#endif  // SRC_MINIDB_LOCK_MANAGER_H_
