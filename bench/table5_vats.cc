// Reproduces paper Table 5: VATS (grant contended record locks to the oldest
// transaction) vs. MySQL's original FCFS lock scheduling, TPC-C.
//
// Paper: mean latency -84.0%, latency variance -82.1%, 99th percentile -50.0%.
#include "bench/common.h"

int main() {
  bench::PrintHeader("Table 5 — VATS vs FCFS lock scheduling (minidb, TPC-C)");

  // High-concurrency regime: deep queues on the hot warehouse/district rows
  // are where oldest-first grant order pays off.
  const workload::TpccOptions options = bench::TpccQuick(24, 150);

  minidb::EngineConfig fcfs = bench::MysqlMemoryResidentConfig();
  fcfs.warehouses = 2;
  fcfs.lock_scheduling = minidb::LockScheduling::kFcfs;
  const bench::LatencyStats base = bench::RunMinidb(fcfs, options);

  minidb::EngineConfig vats = fcfs;
  vats.lock_scheduling = minidb::LockScheduling::kVats;
  const bench::LatencyStats treated = bench::RunMinidb(vats, options);

  bench::PrintStatsRow("FCFS (baseline)", base);
  bench::PrintStatsRow("VATS", treated);
  std::printf("\n");
  bench::PrintReductionRow("mean latency", base.mean_ms, treated.mean_ms, 84.0);
  bench::PrintReductionRow("latency variance", base.variance_ms2,
                           treated.variance_ms2, 82.1);
  bench::PrintReductionRow("99th percentile", base.p99_ms, treated.p99_ms, 50.0);
  std::printf("\n  throughput: FCFS %.0f tps, VATS %.0f tps (fix must not "
              "reduce throughput)\n",
              base.throughput, treated.throughput);
  return 0;
}
