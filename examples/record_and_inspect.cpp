// Record a trace of minidb running TPC-C, save it to disk, reload it, and
// inspect it offline: latency summary, annotated variance call tree, wait
// breakdown, and a Chrome-trace JSON export for chrome://tracing / Perfetto.
//
// This demonstrates the offline half of VProfiler: the trace file is
// self-describing, so collection and analysis can run on different machines.
//
// Build & run:  ./build/examples/record_and_inspect [output_dir]
#include <cstdio>
#include <string>

#include "src/minidb/engine.h"
#include "src/vprof/analysis/chrome_trace.h"
#include "src/vprof/analysis/flat_profile.h"
#include "src/vprof/analysis/report.h"
#include "src/vprof/runtime.h"
#include "src/workload/tpcc.h"

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "/tmp";
  const std::string trace_path = out_dir + "/minidb.vprof";
  const std::string chrome_path = out_dir + "/minidb_chrome.json";

  // --- online: run the engine with a hand-picked instrumentation set ------
  minidb::EngineConfig config = minidb::EngineConfig::MemoryResident();
  config.warehouses = 2;
  minidb::Engine engine(config);
  vprof::CallGraph graph;
  minidb::Engine::RegisterCallGraph(&graph);

  workload::TpccOptions options;
  options.threads = 4;
  options.transactions_per_thread = 150;
  workload::TpccDriver driver(&engine, options);
  driver.Run();  // warm-up

  for (vprof::FuncId func : graph.Functions()) {
    vprof::SetFunctionEnabled(func, true);
  }
  vprof::StartTracing();
  driver.Run();
  const vprof::Trace recorded = vprof::StopTracing();
  vprof::DisableAllFunctions();

  if (!vprof::SaveTrace(recorded, trace_path)) {
    std::fprintf(stderr, "failed to write %s\n", trace_path.c_str());
    return 1;
  }
  std::printf("recorded %llu invocations over %llu intervals -> %s\n",
              static_cast<unsigned long long>(recorded.invocation_count()),
              static_cast<unsigned long long>(recorded.interval_count()),
              trace_path.c_str());

  // --- offline: reload and analyze ----------------------------------------
  vprof::Trace loaded;
  if (!vprof::LoadTrace(trace_path, &loaded)) {
    std::fprintf(stderr, "failed to reload %s\n", trace_path.c_str());
    return 1;
  }
  vprof::VarianceAnalysis analysis(loaded);

  std::printf("\n--- flat profile (conventional view) ---\n%s",
              vprof::FormatFlatProfile(vprof::ComputeFlatProfile(loaded), 12)
                  .c_str());
  std::printf("\n--- latency summary ---\n%s",
              vprof::FormatLatencySummary(analysis).c_str());
  std::printf("\n--- wait breakdown ---\n%s",
              vprof::FormatWaitBreakdown(analysis).c_str());
  std::printf("\n--- variance call tree (pruned) ---\n%s",
              vprof::FormatCallTree(analysis, 0.01, 50000.0).c_str());

  const auto factors = vprof::AggregateFactors(
      analysis, graph, vprof::RegisterFunction("run_transaction"),
      vprof::SpecificityKind::kQuadratic);
  std::printf("\n--- ranked factors ---\n%s",
              vprof::FormatFactorTable(factors, loaded.function_names).c_str());

  if (vprof::WriteChromeTrace(loaded, chrome_path)) {
    std::printf("\nChrome trace written to %s (open in chrome://tracing)\n",
                chrome_path.c_str());
  }
  return 0;
}
