// Crash-recovery contract: over a multi-segment store, truncating or
// corrupting the unsealed tail at ANY byte offset loses at most that
// segment's torn suffix — sealed segments stay fully readable, recovered
// values stay bit-exact, and no partial sample ever surfaces.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/fault/failpoint.h"
#include "src/statstore/gorilla.h"
#include "src/statstore/store.h"

namespace statstore {
namespace {

std::vector<char> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  std::vector<char> bytes(static_cast<size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return bytes;
}

void WriteFile(const std::string& path, const std::vector<char>& bytes,
               size_t count) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, count, f), count);
  std::fclose(f);
}

class StoreRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::string(::testing::TempDir()) + "/statstore_recovery_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    fault::DeactivateAll();
    std::filesystem::remove_all(dir_);
  }

  StoreOptions Options() {
    StoreOptions o;
    o.dir = dir_;
    o.max_segment_bytes = 500;  // several sealed segments from ~100 epochs
    return o;
  }

  // Value appended at `epoch` — two series so every record carries real
  // codec state (a key frame on the first record of each segment, XOR
  // deltas after).
  static double ValueA(uint64_t e) { return 100.0 + 0.25 * double(e); }
  static double ValueB(uint64_t e) { return 1.0 / double(e); }

  // Builds a multi-segment store with epochs [1, n] and returns the
  // segment file paths in index order.
  std::vector<std::string> BuildStore(uint64_t n) {
    StatStore store(Options());
    EXPECT_TRUE(store.Open());
    for (uint64_t e = 1; e <= n; ++e) {
      EpochSample s;
      s.epoch = e;
      s.values.push_back({"a", ValueA(e)});
      s.values.push_back({"b", ValueB(e)});
      EXPECT_EQ(store.Append(s), AppendStatus::kOk);
    }
    // No explicit Seal(): the destructor closes (and thereby flushes) the
    // open tail segment, so the full file is on disk for the tests to cut.
    EXPECT_GT(store.segment_count(), 3u);
    std::vector<std::string> paths;
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
      paths.push_back(entry.path().string());
    }
    std::sort(paths.begin(), paths.end());
    return paths;
  }

  // Asserts the reopened store holds exactly epochs [1, want_epochs] with
  // bit-exact values, and nothing else.
  void ExpectIntactPrefix(StatStore* store, uint64_t want_epochs,
                          const std::string& context) {
    const std::vector<SeriesPoint> a = store->Query("a", 0, UINT64_MAX);
    ASSERT_EQ(a.size(), want_epochs) << context;
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].epoch, i + 1) << context;
      ASSERT_EQ(DoubleBits(a[i].value), DoubleBits(ValueA(i + 1)))
          << context << " epoch " << i + 1;
    }
    const std::vector<SeriesPoint> b = store->Query("b", 0, UINT64_MAX);
    ASSERT_EQ(b.size(), want_epochs) << context;
    for (size_t i = 0; i < b.size(); ++i) {
      ASSERT_EQ(DoubleBits(b[i].value), DoubleBits(ValueB(i + 1)))
          << context << " epoch " << i + 1;
    }
  }

  std::string dir_;
};

TEST_F(StoreRecoveryTest, TruncationAtEveryOffsetLosesOnlyTheTail) {
  const uint64_t kEpochs = 100;
  const std::vector<std::string> paths = BuildStore(kEpochs);
  ASSERT_GT(paths.size(), 3u);
  const std::string last = paths.back();
  const std::vector<char> bytes = ReadFile(last);
  ASSERT_GT(bytes.size(), 16u);

  // Sanity: the untruncated store is complete.
  {
    StatStore probe(Options());
    ASSERT_TRUE(probe.Open());
    ASSERT_EQ(probe.last_epoch(), kEpochs);
  }

  // Cut=0 wipes the tail file entirely, so its recovery floor is exactly
  // the epochs held by sealed segments; every other cut must do no worse.
  uint64_t sealed_epochs = 0;
  uint64_t min_recovered = UINT64_MAX;
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    WriteFile(last, bytes, cut);
    StatStore store(Options());
    ASSERT_TRUE(store.Open()) << "cut=" << cut;
    const uint64_t recovered = store.last_epoch();
    // Whole-record prefix: never more than the full store, and sealed
    // segments are never touched by damage to the tail file.
    ASSERT_LE(recovered, kEpochs) << "cut=" << cut;
    if (cut == 0) sealed_epochs = recovered;
    min_recovered = std::min(min_recovered, recovered);
    ExpectIntactPrefix(&store, recovered, "cut=" + std::to_string(cut));
    // Recovery truncated the torn tail on disk; a second open over the
    // repaired file must see exactly the same prefix.
    StatStore again(Options());
    ASSERT_TRUE(again.Open()) << "cut=" << cut;
    ASSERT_EQ(again.last_epoch(), recovered) << "cut=" << cut;
    // Put the full file back for the next iteration (recovery may have
    // deleted a zero-record file).
    WriteFile(last, bytes, bytes.size());
  }
  // At most the unsealed tail segment is ever lost.
  EXPECT_GT(sealed_epochs, 0u);
  EXPECT_EQ(min_recovered, sealed_epochs);
  // And the restored full file still reads back complete.
  StatStore store(Options());
  ASSERT_TRUE(store.Open());
  EXPECT_EQ(store.last_epoch(), kEpochs);
}

TEST_F(StoreRecoveryTest, CutSealedSegmentLosesOnlyThatSuffix) {
  // Damage to a sealed (non-tail) segment must still recover cleanly: the
  // damaged segment keeps its intact prefix, earlier segments are whole.
  // (Later segments' epochs survive too — Query just skips the hole.)
  const uint64_t kEpochs = 100;
  const std::vector<std::string> paths = BuildStore(kEpochs);
  ASSERT_GT(paths.size(), 3u);
  const std::string victim = paths[1];  // second segment: sealed, mid-store
  const std::vector<char> bytes = ReadFile(victim);

  // Cut mid-file (inside some record) rather than sweeping every offset —
  // the every-offset sweep runs against the tail above.
  WriteFile(victim, bytes, bytes.size() / 2);
  StatStore store(Options());
  ASSERT_TRUE(store.Open());
  const std::vector<SeriesPoint> a = store.Query("a", 0, UINT64_MAX);
  ASSERT_FALSE(a.empty());
  // Epochs are still strictly increasing and bit-exact — a hole, never a
  // corrupt value.
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(DoubleBits(a[i].value), DoubleBits(ValueA(a[i].epoch)));
    if (i > 0) ASSERT_GT(a[i].epoch, a[i - 1].epoch);
  }
  ASSERT_LT(a.size(), kEpochs);       // something was lost...
  ASSERT_EQ(a.back().epoch, kEpochs);  // ...but not the later segments
}

TEST_F(StoreRecoveryTest, FlippedBitIsCaughtByChecksum) {
  const uint64_t kEpochs = 100;
  const std::vector<std::string> paths = BuildStore(kEpochs);
  const std::string last = paths.back();
  const std::vector<char> bytes = ReadFile(last);

  // Flip one bit in every byte position in turn; recovery must never
  // surface a value that differs from what was appended.
  for (size_t pos = 8; pos < bytes.size(); pos += 7) {
    std::vector<char> mutated = bytes;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x10);
    WriteFile(last, mutated, mutated.size());
    StatStore store(Options());
    ASSERT_TRUE(store.Open()) << "pos=" << pos;
    for (const SeriesPoint& p : store.Query("a", 0, UINT64_MAX)) {
      ASSERT_EQ(DoubleBits(p.value), DoubleBits(ValueA(p.epoch)))
          << "pos=" << pos << " epoch=" << p.epoch;
    }
    WriteFile(last, bytes, bytes.size());
  }
}

TEST_F(StoreRecoveryTest, GarbageHeaderFileIsDroppedNotFatal) {
  const uint64_t kEpochs = 100;
  BuildStore(kEpochs);
  // A stray file that matches the segment name pattern but holds garbage.
  const std::string stray = dir_ + "/seg-00990099.sst";
  {
    std::FILE* f = std::fopen(stray.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a segment at all", f);
    std::fclose(f);
  }
  StatStore store(Options());
  ASSERT_TRUE(store.Open());
  EXPECT_GE(store.stats().dropped_segments, 1u);
  EXPECT_FALSE(std::filesystem::exists(stray));
  EXPECT_EQ(store.Query("a", 0, UINT64_MAX).size(), kEpochs);
  // The store keeps working past the dropped index.
  EpochSample s;
  s.epoch = kEpochs + 1;
  s.values.push_back({"a", 1.0});
  EXPECT_EQ(store.Append(s), AppendStatus::kOk);
}

TEST_F(StoreRecoveryTest, TornWriteRecoversAtEverySeedOffset) {
  // Drive the torn_write failpoint with different seeds so the torn prefix
  // length varies, and check the recovery contract each time.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    std::filesystem::remove_all(dir_);
    StoreOptions opts = Options();
    opts.torn_seed = seed * 7919;
    uint64_t persisted = 0;
    {
      StatStore store(opts);
      ASSERT_TRUE(store.Open());
      for (uint64_t e = 1; e <= 30; ++e) {
        EpochSample s;
        s.epoch = e;
        s.values.push_back({"a", ValueA(e)});
        s.values.push_back({"b", ValueB(e)});
        ASSERT_EQ(store.Append(s), AppendStatus::kOk);
      }
      persisted = 30;
      fault::ScopedFailpoint fp("statstore/torn_write",
                                fault::Trigger::OneShot());
      EpochSample s;
      s.epoch = 31;
      s.values.push_back({"a", ValueA(31)});
      EXPECT_EQ(store.Append(s), AppendStatus::kIoError);
      EXPECT_TRUE(store.wedged());
    }
    StatStore store(opts);
    ASSERT_TRUE(store.Open()) << "seed=" << seed;
    // Epoch 31's frame was torn; at most it is lost, never corrupted, and
    // nothing before it is touched.
    const std::vector<SeriesPoint> a = store.Query("a", 0, UINT64_MAX);
    ASSERT_GE(a.size(), persisted) << "seed=" << seed;
    ASSERT_LE(a.size(), persisted + 1) << "seed=" << seed;
    for (const SeriesPoint& p : a) {
      ASSERT_EQ(DoubleBits(p.value), DoubleBits(ValueA(p.epoch)))
          << "seed=" << seed;
    }
  }
}

}  // namespace
}  // namespace statstore
