// Chaos storms against the two engines and the history store (ctest label
// `chaos`):
//
//   * Seed-determinism sweeps: 32 seeds x both engines, each seed run twice
//     single-threaded. The orchestrator trail AND the post-storm engine
//     state (digest, balances, counters, recovered LSNs) must be
//     bit-identical between runs — any failure a storm uncovers is
//     replayable by its seed.
//   * Kill-and-recover cycles under multi-threaded TPC-C load via the
//     mid-group-commit-batch crash points, checked with the reusable
//     invariant library (balance conservation, acked-prefix durability,
//     bounded thread join).
//   * StatStore killed at a segment roll recovers bit-exactly.
//   * An aborted buffer-pool resize leaves the pool serviceable.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/fault/chaos.h"
#include "src/fault/failpoint.h"
#include "src/minidb/engine.h"
#include "src/minipg/engine.h"
#include "src/statkit/rng.h"
#include "src/statstore/store.h"
#include "src/workload/invariants.h"
#include "src/workload/tpcc.h"

namespace {

class ChaosStormTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::DeactivateAll();
    fault::ResetCounters();
  }
  void TearDown() override {
    fault::DeactivateAll();
    fault::ResetCounters();
  }
};

simio::DiskConfig FastDisk(const std::string& scope) {
  simio::DiskConfig config;
  config.read_mu = 0.1;
  config.write_mu = 0.1;
  config.fsync_mu = 0.1;
  config.fsync_spike_prob = 0.0;
  config.error_latency_us = 1.0;
  config.stall_us = 100.0;  // keep armed stall bursts cheap across 32 seeds
  config.serialize_access = false;
  config.fault_scope = scope;
  config.seed = 17;
  return config;
}

// Storm shape shared by both determinism sweeps: small logical horizon,
// overlapping error bursts, two kill/recover cycles.
fault::ChaosOptions SweepOptions() {
  fault::ChaosOptions options;
  options.horizon_steps = 80;
  options.bursts = 4;
  options.max_overlap = 2;
  options.min_burst_steps = 5;
  options.max_burst_steps = 25;
  options.crash_cycles = 2;
  options.min_downtime_steps = 4;
  options.max_downtime_steps = 10;
  options.value_bound = 0;  // no payload-consuming failpoints in the sweep
  return options;
}

constexpr int kSweepSeeds = 32;
constexpr int kSweepTxns = 400;

// ---------------------------------------------------------------------------
// minidb determinism sweep.

struct MinidbStormResult {
  std::string trail;
  uint64_t digest = 0;
  int64_t balance = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t crashes = 0;
  uint64_t flushed_lsn = 0;

  bool operator==(const MinidbStormResult& o) const {
    return trail == o.trail && digest == o.digest && balance == o.balance &&
           committed == o.committed && aborted == o.aborted &&
           crashes == o.crashes && flushed_lsn == o.flushed_lsn;
  }
};

MinidbStormResult RunMinidbStorm(uint64_t seed) {
  fault::DeactivateAll();
  fault::ResetCounters();
  minidb::EngineConfig config = minidb::EngineConfig::MemoryResident();
  config.warehouses = 1;
  config.log_disk = FastDisk("chaos_md_log");
  config.data_disk = FastDisk("chaos_md_data");
  minidb::Engine engine(config);
  engine.redo_log().set_crash_seed(seed ^ 0x9E3779B97F4A7C15ull);

  fault::ChaosTargets targets;
  targets.faults = {"chaos_md_log/write_error", "chaos_md_log/stall",
                    "chaos_md_data/read_error"};
  targets.crash_sites.push_back(
      {"minidb-redo", [&] { engine.redo_log().Crash(seed + 17); },
       [&] { engine.redo_log().Recover(); }});

  fault::ChaosOrchestrator chaos(seed, targets, SweepOptions());
  workload::TpccGenerator generator(workload::TpccOptions{},
                                    config.warehouses);
  statkit::Rng rng(seed * 2654435761ull + 1);
  for (int txn = 0; txn < kSweepTxns; ++txn) {
    engine.Execute(generator.Next(rng));
    if (txn % 5 == 4) {
      chaos.Step();
    }
  }
  chaos.Finish();

  MinidbStormResult result;
  result.trail = chaos.TrailString();
  result.digest = engine.StateDigest();
  result.balance = engine.BalanceTotal();
  result.committed = engine.committed_count();
  result.aborted = engine.aborted_count();
  result.crashes = chaos.crashes_injected();
  result.flushed_lsn = engine.redo_log().flushed_lsn();
  EXPECT_TRUE(workload::CheckBalanceConservation(engine).ok)
      << workload::CheckBalanceConservation(engine).detail;
  fault::DeactivateAll();
  fault::ResetCounters();
  return result;
}

TEST_F(ChaosStormTest, MinidbStormIsSeedDeterministic) {
  for (uint64_t seed = 1; seed <= kSweepSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const MinidbStormResult first = RunMinidbStorm(seed);
    const MinidbStormResult second = RunMinidbStorm(seed);
    EXPECT_TRUE(first == second) << "storm not replayable for seed " << seed
                                 << "\n-- first trail --\n"
                                 << first.trail << "\n-- second trail --\n"
                                 << second.trail;
    EXPECT_EQ(first.balance, 0);
    EXPECT_GT(first.committed, 0u);
    EXPECT_EQ(first.crashes, 2u);  // both scheduled cycles ran
    EXPECT_FALSE(first.trail.empty());
  }
}

// ---------------------------------------------------------------------------
// minipg determinism sweep.

struct MinipgStormResult {
  std::string trail;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t crashes = 0;
  uint64_t flushed_lsn = 0;

  bool operator==(const MinipgStormResult& o) const {
    return trail == o.trail && committed == o.committed &&
           aborted == o.aborted && crashes == o.crashes &&
           flushed_lsn == o.flushed_lsn;
  }
};

MinipgStormResult RunMinipgStorm(uint64_t seed) {
  fault::DeactivateAll();
  fault::ResetCounters();
  minipg::PgConfig config;
  config.wal_units = 1;
  config.wal_disk = FastDisk("chaos_pg_wal");
  minipg::PgEngine engine(config);
  engine.wal().unit(0).set_crash_seed(seed + 3);

  fault::ChaosTargets targets;
  // Wal unit disks live in the "<scope>.<unit>" namespace.
  targets.faults = {"chaos_pg_wal.0/write_error", "chaos_pg_wal.0/stall"};
  targets.crash_sites.push_back(
      {"minipg-wal", [&] { engine.wal().unit(0).Crash(seed + 29); },
       [&] { engine.wal().unit(0).Recover(); }});

  fault::ChaosOrchestrator chaos(seed, targets, SweepOptions());
  workload::TpccGenerator generator(workload::TpccOptions{}, 4);
  statkit::Rng rng(seed * 6364136223846793005ull + 9);
  for (int txn = 0; txn < kSweepTxns; ++txn) {
    engine.Execute(generator.Next(rng));
    if (txn % 5 == 4) {
      chaos.Step();
    }
  }
  chaos.Finish();

  MinipgStormResult result;
  result.trail = chaos.TrailString();
  result.committed = engine.committed_count();
  result.aborted = engine.aborted_count();
  result.crashes = chaos.crashes_injected();
  result.flushed_lsn = engine.wal().unit(0).flushed_lsn();
  fault::DeactivateAll();
  fault::ResetCounters();
  return result;
}

TEST_F(ChaosStormTest, MinipgStormIsSeedDeterministic) {
  for (uint64_t seed = 1; seed <= kSweepSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const MinipgStormResult first = RunMinipgStorm(seed);
    const MinipgStormResult second = RunMinipgStorm(seed);
    EXPECT_TRUE(first == second) << "storm not replayable for seed " << seed
                                 << "\n-- first trail --\n"
                                 << first.trail << "\n-- second trail --\n"
                                 << second.trail;
    EXPECT_GT(first.committed, 0u);
    EXPECT_EQ(first.crashes, 2u);
  }
}

// ---------------------------------------------------------------------------
// Kill-and-recover under concurrent load via the mid-batch crash points.

TEST_F(ChaosStormTest, MinidbMidBatchCrashCyclesUnderConcurrentLoad) {
  minidb::EngineConfig config = minidb::EngineConfig::MemoryResident();
  config.warehouses = 4;
  config.log_disk = FastDisk("chaos_md_live_log");
  config.data_disk = FastDisk("chaos_md_live_data");
  minidb::Engine engine(config);
  engine.redo_log().set_crash_seed(99);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> acked{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&engine, &stop, &acked, t] {
      workload::TpccGenerator generator(workload::TpccOptions{}, 4);
      statkit::Rng rng(1000 + static_cast<uint64_t>(t));
      while (!stop.load(std::memory_order_relaxed)) {
        if (engine.Execute(generator.Next(rng)).committed) {
          acked.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (int cycle = 0; cycle < 3; ++cycle) {
    SCOPED_TRACE("cycle " + std::to_string(cycle));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const uint64_t acked_lsn = engine.redo_log().flushed_lsn();
    // Kill the log mid group-commit batch: a seeded prefix of the batch
    // (137*(cycle+1) bytes here) reaches the device cache before the crash.
    fault::Activate("redo/crash_mid_batch", fault::Trigger::OneShotWithValue(
                                                137u * (cycle + 1u)));
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!engine.redo_log().crashed() &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_TRUE(engine.redo_log().crashed()) << "crash point never hit";
    fault::Deactivate("redo/crash_mid_batch");
    const minidb::RecoveryResult recovered = engine.redo_log().Recover();
    const workload::InvariantResult durable =
        workload::CheckAckedPrefixDurable(acked_lsn, recovered.recovered_lsn);
    EXPECT_TRUE(durable.ok) << durable.detail;
  }

  stop.store(true);
  const workload::InvariantResult joined =
      workload::CheckThreadsJoin(&workers, 10000);
  ASSERT_TRUE(joined.ok) << joined.detail;
  engine.Stop();
  EXPECT_EQ(acked.load(), engine.committed_count());
  const workload::InvariantResult balance =
      workload::CheckBalanceConservation(engine);
  EXPECT_TRUE(balance.ok) << balance.detail;
  // The stopped engine refuses further work cleanly.
  const minidb::TxnOutcome post = engine.Execute(minidb::TxnRequest{});
  EXPECT_FALSE(post.committed);
  EXPECT_EQ(post.error, minidb::TxnError::kShutdown);
}

TEST_F(ChaosStormTest, MinipgMidBatchCrashCyclesUnderConcurrentLoad) {
  minipg::PgConfig config;
  config.wal_units = 2;
  config.wal_disk = FastDisk("chaos_pg_live");
  minipg::PgEngine engine(config);
  for (int i = 0; i < config.wal_units; ++i) {
    engine.wal().unit(i).set_crash_seed(100 + static_cast<uint64_t>(i));
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> acked{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&engine, &stop, &acked, t] {
      workload::TpccGenerator generator(workload::TpccOptions{}, 4);
      statkit::Rng rng(2000 + static_cast<uint64_t>(t));
      while (!stop.load(std::memory_order_relaxed)) {
        if (engine.Execute(generator.Next(rng))) {
          acked.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (int cycle = 0; cycle < 3; ++cycle) {
    SCOPED_TRACE("cycle " + std::to_string(cycle));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    std::vector<uint64_t> acked_lsn(static_cast<size_t>(config.wal_units));
    for (int i = 0; i < config.wal_units; ++i) {
      acked_lsn[static_cast<size_t>(i)] = engine.wal().unit(i).flushed_lsn();
    }
    fault::Activate("wal/crash_mid_batch",
                    fault::Trigger::OneShotWithValue(211u * (cycle + 1u)));
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    auto any_crashed = [&] {
      for (int i = 0; i < config.wal_units; ++i) {
        if (engine.wal().unit(i).crashed()) {
          return true;
        }
      }
      return false;
    };
    while (!any_crashed() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_TRUE(any_crashed()) << "crash point never hit";
    fault::Deactivate("wal/crash_mid_batch");
    for (int i = 0; i < config.wal_units; ++i) {
      if (!engine.wal().unit(i).crashed()) {
        continue;
      }
      const minipg::WalRecoveryResult recovered =
          engine.wal().unit(i).Recover();
      const workload::InvariantResult durable =
          workload::CheckAckedPrefixDurable(acked_lsn[static_cast<size_t>(i)],
                                            recovered.recovered_lsn);
      EXPECT_TRUE(durable.ok) << "unit " << i << ": " << durable.detail;
    }
  }

  stop.store(true);
  const workload::InvariantResult joined =
      workload::CheckThreadsJoin(&workers, 10000);
  ASSERT_TRUE(joined.ok) << joined.detail;
  engine.Stop();
  EXPECT_EQ(acked.load(), engine.committed_count());
  EXPECT_FALSE(engine.Execute(minidb::TxnRequest{}));
}

// ---------------------------------------------------------------------------
// StatStore killed at a segment roll.

TEST_F(ChaosStormTest, StatStoreCrashOnRollRecoversBitExact) {
  const std::string dir =
      std::string(::testing::TempDir()) + "/chaos_store_roll";
  std::filesystem::remove_all(dir);
  statstore::StoreOptions options;
  options.dir = dir;
  options.max_segment_bytes = 512;  // roll every few appends
  options.fault_scope = "chaos_store";

  uint64_t appended = 0;
  {
    statstore::StatStore store(options);
    ASSERT_TRUE(store.Open());
    fault::Activate("chaos_store/crash_on_roll", fault::Trigger::OneShot());
    statkit::Rng rng(5);
    statstore::AppendStatus status = statstore::AppendStatus::kOk;
    for (uint64_t epoch = 1; epoch <= 10000; ++epoch) {
      statstore::EpochSample sample;
      sample.epoch = epoch;
      sample.values.push_back({"chaos:a", rng.NextDouble()});
      sample.values.push_back({"chaos:b", rng.NextDouble() * 1e6});
      status = store.Append(sample);
      if (status != statstore::AppendStatus::kOk) {
        break;
      }
      ++appended;
    }
    // The append that hit the roll fails and wedges the store.
    ASSERT_EQ(status, statstore::AppendStatus::kIoError)
        << "crash_on_roll never fired";
    // Wedged stays wedged: the dead store takes no more samples.
    statstore::EpochSample again;
    again.epoch = appended + 2;
    again.values.push_back({"chaos:a", 1.0});
    EXPECT_EQ(store.Append(again), statstore::AppendStatus::kWedged);
    fault::Deactivate("chaos_store/crash_on_roll");
  }

  // A fresh store over the same directory recovers everything that was
  // durably framed, and the recovered history replays bit-exactly.
  statstore::StatStore reopened(options);
  ASSERT_TRUE(reopened.Open());
  EXPECT_EQ(reopened.record_count(), appended);
  const workload::InvariantResult replay =
      workload::CheckStatStoreBitExactReplay(&reopened);
  EXPECT_TRUE(replay.ok) << replay.detail;
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Aborted buffer-pool resize under load.

TEST_F(ChaosStormTest, BufferPoolResizeAbortLeavesPoolServiceable) {
  minidb::EngineConfig config = minidb::EngineConfig::MemoryResident();
  config.warehouses = 2;
  config.log_disk = FastDisk("chaos_resize_log");
  config.data_disk = FastDisk("chaos_resize_data");
  minidb::Engine engine(config);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> acked{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([&engine, &stop, &acked, t] {
      workload::TpccGenerator generator(workload::TpccOptions{}, 2);
      statkit::Rng rng(3000 + static_cast<uint64_t>(t));
      while (!stop.load(std::memory_order_relaxed)) {
        if (engine.Execute(generator.Next(rng)).committed) {
          acked.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // The abort leaves a prefix of shards at the new capacity and the rest at
  // the old one; either way every shard stays independently consistent.
  {
    fault::ScopedFailpoint fp("pool/resize_abort", fault::Trigger::OneShot());
    engine.buffer_pool().Resize(config.buffer_pool_pages / 2);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // A clean resize afterwards completes normally.
  engine.buffer_pool().Resize(config.buffer_pool_pages);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  stop.store(true);
  const workload::InvariantResult joined =
      workload::CheckThreadsJoin(&workers, 10000);
  ASSERT_TRUE(joined.ok) << joined.detail;
  engine.Stop();
  EXPECT_GT(acked.load(), 0u);
  const workload::InvariantResult balance =
      workload::CheckBalanceConservation(engine);
  EXPECT_TRUE(balance.ok) << balance.detail;
}

}  // namespace
