file(REMOVE_RECURSE
  "CMakeFiles/httpd.dir/bucket_alloc.cc.o"
  "CMakeFiles/httpd.dir/bucket_alloc.cc.o.d"
  "CMakeFiles/httpd.dir/filters.cc.o"
  "CMakeFiles/httpd.dir/filters.cc.o.d"
  "CMakeFiles/httpd.dir/server.cc.o"
  "CMakeFiles/httpd.dir/server.cc.o.d"
  "libhttpd.a"
  "libhttpd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/httpd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
