// Bridge between the streaming variance tree and the statstore history.
//
// Flattens an OnlineTreeSnapshot into one statstore::EpochSample — per-node
// mean/variance/contribution-share streams plus the tree's aggregate and
// tracer-health counters — under a stable series-naming scheme, and feeds
// the per-node contribution shares to a RegressionDetector. Keeping the
// naming in one place means the persisted history, the regression flags,
// and the inspection CLI all agree on what a stream is called.
//
// Series names:
//   node:<root-to-node path>:mean_ns | :variance_ns2 | :share
//   stats:intervals | stats:weight | stats:latency_mean_ns |
//     stats:latency_variance_ns2
//   health:dropped_records | health:stuck_threads |
//     health:stuck_thread_epochs | health:rotation_gap_last_ns |
//     health:rotation_gap_max_ns | health:rotation_gap_total_ns
//   app:<gauge name> — application gauges (VprofdOptions.app_gauges),
//     e.g. app:minidb.buf_pool.shard0.mutex_wait_ns
//   tier:<tier name>:latency_mean_ns | :latency_variance_ns2 | :share |
//     :intervals — per-tier rows of the distributed dist:request view
//     (dist::DistMonitor), persisted next to the front daemon's streams
//
// The sample's epoch id is the snapshot's folded-epoch count, which is
// strictly increasing across a daemon's life and resumes past the persisted
// history when a store is reopened by a fresh process (see Vprofd).
#ifndef SRC_VPROF_SERVICE_HISTORY_H_
#define SRC_VPROF_SERVICE_HISTORY_H_

#include <cstdint>
#include <string>

#include "src/statstore/regression.h"
#include "src/statstore/segment.h"
#include "src/vprof/service/online_tree.h"

namespace vprof {

// Harvester-side health folded into each persisted sample.
struct HarvestHealth {
  uint64_t rotation_gap_last_ns = 0;
  uint64_t rotation_gap_max_ns = 0;
  uint64_t rotation_gap_total_ns = 0;
};

// Series name of one node stream, e.g.
// NodeSeriesName("run_transaction/fil_flush", "share").
std::string NodeSeriesName(const std::string& path, const char* field);

// Series name of an application-published gauge (VprofdOptions.app_gauges),
// e.g. AppSeriesName("minidb.buf_pool.shard0.mutex_wait_ns") ->
// "app:minidb.buf_pool.shard0.mutex_wait_ns".
std::string AppSeriesName(const std::string& name);

// Series name of one distributed-tier stream (dist::DistMonitor), e.g.
// TierSeriesName("minidb", "share") -> "tier:minidb:share".
std::string TierSeriesName(const std::string& tier, const char* field);

// Flattens `snapshot` (at epoch id `epoch`) into a statstore sample.
statstore::EpochSample SampleFromSnapshot(const OnlineTreeSnapshot& snapshot,
                                          uint64_t epoch,
                                          const HarvestHealth& health);

// Feeds every node's contribution share at epoch `epoch` to `detector`;
// returns the number of flags raised.
int ObserveSnapshot(statstore::RegressionDetector* detector,
                    const OnlineTreeSnapshot& snapshot, uint64_t epoch);

}  // namespace vprof

#endif  // SRC_VPROF_SERVICE_HISTORY_H_
