file(REMOVE_RECURSE
  "../bench/table5_vats"
  "../bench/table5_vats.pdb"
  "CMakeFiles/table5_vats.dir/table5_vats.cc.o"
  "CMakeFiles/table5_vats.dir/table5_vats.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_vats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
