// Satellite: backward/forward compatibility of the extended wire header.
// Byte-by-byte truncation and corruption of frames carrying trace-context /
// server-timing extensions, plus the FrameParser's recoverable-error tier:
// unknown frame types and malformed extension blocks must yield a typed,
// per-frame error and leave the stream parsable — only framing-level
// violations may poison the connection.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "src/net/protocol.h"

namespace net {
namespace {

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

Frame StampedTxn(uint64_t request_id) {
  Frame frame;
  frame.type = MsgType::kTxn;
  frame.request_id = request_id;
  frame.txn.type = minidb::TxnType::kPayment;
  frame.txn.warehouse = 3;
  frame.has_trace_context = true;
  frame.trace_context.interval_id = 0xabcdef01;
  frame.trace_context.span_id = 42;
  frame.trace_context.origin_service = ServiceId::kFront;
  frame.trace_context.send_time_ns = 123456789;
  return frame;
}

Frame TimedReply(uint64_t request_id) {
  Frame frame;
  frame.type = MsgType::kTxnReply;
  frame.request_id = request_id;
  frame.status = 0;
  frame.value = 77;
  frame.has_server_timing = true;
  frame.server_timing.span_id = 42;
  frame.server_timing.recv_time_ns = 1000;
  frame.server_timing.reply_time_ns = 2000;
  frame.server_timing.worker_tid = 5;
  return frame;
}

TEST(DistProtocolTest, ExtensionRoundTrip) {
  for (const Frame& original : {StampedTxn(9), TimedReply(9)}) {
    std::string bytes;
    EncodeFrame(original, &bytes);
    Frame decoded;
    size_t consumed = 0;
    ASSERT_EQ(DecodeFrame(reinterpret_cast<const uint8_t*>(bytes.data()),
                          bytes.size(), &decoded, &consumed),
              WireError::kOk);
    EXPECT_EQ(consumed, bytes.size());
    EXPECT_EQ(decoded.type, original.type);
    EXPECT_EQ(decoded.request_id, original.request_id);
    EXPECT_EQ(decoded.has_trace_context, original.has_trace_context);
    EXPECT_EQ(decoded.has_server_timing, original.has_server_timing);
    if (original.has_trace_context) {
      EXPECT_EQ(decoded.trace_context.interval_id,
                original.trace_context.interval_id);
      EXPECT_EQ(decoded.trace_context.span_id, original.trace_context.span_id);
      EXPECT_EQ(decoded.trace_context.origin_service,
                original.trace_context.origin_service);
      EXPECT_EQ(decoded.trace_context.send_time_ns,
                original.trace_context.send_time_ns);
    }
    if (original.has_server_timing) {
      EXPECT_EQ(decoded.server_timing.span_id, original.server_timing.span_id);
      EXPECT_EQ(decoded.server_timing.recv_time_ns,
                original.server_timing.recv_time_ns);
      EXPECT_EQ(decoded.server_timing.reply_time_ns,
                original.server_timing.reply_time_ns);
      EXPECT_EQ(decoded.server_timing.worker_tid,
                original.server_timing.worker_tid);
    }
  }
}

TEST(DistProtocolTest, ClockSyncRoundTrip) {
  Frame sync;
  sync.type = MsgType::kClockSync;
  sync.request_id = 1;
  sync.t1_ns = 111;
  Frame reply;
  reply.type = MsgType::kClockSyncReply;
  reply.request_id = 1;
  reply.t1_ns = 111;
  reply.t2_ns = 222;
  for (const Frame& original : {sync, reply}) {
    std::string bytes;
    EncodeFrame(original, &bytes);
    Frame decoded;
    size_t consumed = 0;
    ASSERT_EQ(DecodeFrame(reinterpret_cast<const uint8_t*>(bytes.data()),
                          bytes.size(), &decoded, &consumed),
              WireError::kOk);
    EXPECT_EQ(decoded.t1_ns, original.t1_ns);
    EXPECT_EQ(decoded.t2_ns, original.t2_ns);
  }
}

// Every strict prefix of an extended frame is "not complete yet", never an
// error: truncation mid-extension must not be mistaken for malformation.
TEST(DistProtocolTest, ByteByByteTruncationNeedsMore) {
  for (const Frame& original : {StampedTxn(7), TimedReply(7)}) {
    std::string bytes;
    EncodeFrame(original, &bytes);
    for (size_t len = 0; len < bytes.size(); ++len) {
      Frame decoded;
      size_t consumed = 1;
      EXPECT_EQ(DecodeFrame(reinterpret_cast<const uint8_t*>(bytes.data()),
                            len, &decoded, &consumed),
                WireError::kNeedMore)
          << "prefix length " << len;
      EXPECT_EQ(consumed, 0u);
    }
  }
}

// Seeded corruption of every byte of an extended frame: decode must accept
// or return a typed error with nothing consumed — and when fed through a
// parser, the stream must remain usable afterwards unless the error is one
// of the sticky framing violations.
TEST(DistProtocolTest, ExtendedHeaderCorruptionSweep) {
  std::mt19937_64 rng(20260809);
  for (const Frame& original : {StampedTxn(5), TimedReply(5)}) {
    std::string bytes;
    EncodeFrame(original, &bytes);
    for (size_t pos = 0; pos < bytes.size(); ++pos) {
      for (int round = 0; round < 4; ++round) {
        std::string corrupt = bytes;
        const uint8_t new_byte = static_cast<uint8_t>(rng());
        if (static_cast<uint8_t>(corrupt[pos]) == new_byte) {
          continue;
        }
        corrupt[pos] = static_cast<char>(new_byte);

        Frame decoded;
        size_t consumed = 0;
        const WireError err =
            DecodeFrame(reinterpret_cast<const uint8_t*>(corrupt.data()),
                        corrupt.size(), &decoded, &consumed);
        if (err == WireError::kOk) {
          EXPECT_GE(consumed, kHeaderBytes);
          EXPECT_LE(consumed, corrupt.size());
        } else {
          EXPECT_EQ(consumed, 0u);
        }

        // Stream-level: the corrupted frame followed by a clean one. The
        // clean frame must come out unless the corruption poisoned the
        // framing (sticky kOversized/kBadPayload) or swallowed it into the
        // corrupted frame's declared length (kNeedMore).
        std::string clean;
        EncodeFrame(StampedTxn(6), &clean);
        FrameParser parser;
        std::vector<Frame> out;
        const std::string stream = corrupt + clean;
        const WireError stream_err =
            parser.Feed(reinterpret_cast<const uint8_t*>(stream.data()),
                        stream.size(), &out);
        EXPECT_LE(parser.buffered_bytes(),
                  static_cast<size_t>(kMaxFrameBytes) + kLengthBytes);
        if (pos < kLengthBytes) {
          // The length field itself is corrupt: the skip distance is a lie,
          // so resync is best-effort. Bounded buffering (above) is all that
          // can be promised.
          continue;
        }
        if (err == WireError::kBadType || err == WireError::kBadExtension) {
          ASSERT_EQ(stream_err, WireError::kOk)
              << "recoverable error poisoned the stream at byte " << pos;
          bool saw_clean = false;
          for (const Frame& f : out) {
            if (f.decode_error == WireError::kOk && f.request_id == 6) {
              saw_clean = true;
            }
          }
          EXPECT_TRUE(saw_clean)
              << "clean frame lost after recoverable error at byte " << pos;
          EXPECT_GE(parser.recovered_frames(), 1u);
        } else if (err != WireError::kOk && err != WireError::kNeedMore) {
          EXPECT_EQ(stream_err, err);
          EXPECT_EQ(parser.error(), err);
        }
      }
    }
  }
}

// An extension type this build has never heard of is skipped, and the known
// extensions around it still decode (forward compatibility).
TEST(DistProtocolTest, UnknownExtensionTypeSkipped) {
  std::string ext_payload;
  PutU64(&ext_payload, 0xabcdef01);           // interval_id
  PutU64(&ext_payload, 42);                   // span_id
  ext_payload.push_back(static_cast<char>(ServiceId::kFront));
  PutU64(&ext_payload, 123456789);            // send_time_ns (i64, positive)

  std::string body;
  body.push_back(static_cast<char>(
      static_cast<uint8_t>(MsgType::kPing) | kExtensionFlag));
  PutU64(&body, 77);  // request_id
  body.push_back(2);  // extension count
  body.push_back(9);  // unknown ext type
  body.push_back(3);  // its length
  body.append("xyz");
  body.push_back(static_cast<char>(ExtType::kTraceContext));
  body.push_back(static_cast<char>(ext_payload.size()));
  body.append(ext_payload);

  std::string bytes;
  PutU32(&bytes, static_cast<uint32_t>(body.size()));
  bytes.append(body);

  Frame decoded;
  size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(reinterpret_cast<const uint8_t*>(bytes.data()),
                        bytes.size(), &decoded, &consumed),
            WireError::kOk);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(decoded.type, MsgType::kPing);
  EXPECT_EQ(decoded.request_id, 77u);
  ASSERT_TRUE(decoded.has_trace_context);
  EXPECT_EQ(decoded.trace_context.span_id, 42u);
}

// An unknown *frame type* with sound framing is skipped whole: the parser
// reports it (decode_error, salvaged request id) and keeps going.
TEST(DistProtocolTest, UnknownFrameTypeIsRecoverable) {
  Frame ping;
  ping.type = MsgType::kPing;
  ping.request_id = 31;
  std::string bad;
  EncodeFrame(ping, &bad);
  bad[kLengthBytes] = 0x33;  // future frame type, extension flag clear

  std::string clean;
  Frame next = ping;
  next.request_id = 32;
  EncodeFrame(next, &clean);

  FrameParser parser;
  std::vector<Frame> out;
  const std::string stream = bad + clean;
  ASSERT_EQ(parser.Feed(reinterpret_cast<const uint8_t*>(stream.data()),
                        stream.size(), &out),
            WireError::kOk);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].decode_error, WireError::kBadType);
  EXPECT_EQ(out[0].raw_type, 0x33);
  EXPECT_EQ(out[0].request_id, 31u);  // salvaged for the typed error reply
  EXPECT_EQ(out[1].decode_error, WireError::kOk);
  EXPECT_EQ(out[1].request_id, 32u);
  EXPECT_EQ(parser.recovered_frames(), 1u);
  EXPECT_EQ(parser.error(), WireError::kOk);
}

// A malformed extension block (count of zero with the flag set) is the same
// recoverable tier.
TEST(DistProtocolTest, MalformedExtensionBlockIsRecoverable) {
  std::string body;
  body.push_back(static_cast<char>(
      static_cast<uint8_t>(MsgType::kPing) | kExtensionFlag));
  PutU64(&body, 51);
  body.push_back(0);  // count 0 with the flag set: malformed
  std::string bad;
  PutU32(&bad, static_cast<uint32_t>(body.size()));
  bad.append(body);

  Frame ping;
  ping.type = MsgType::kPing;
  ping.request_id = 52;
  std::string clean;
  EncodeFrame(ping, &clean);

  FrameParser parser;
  std::vector<Frame> out;
  const std::string stream = bad + clean;
  ASSERT_EQ(parser.Feed(reinterpret_cast<const uint8_t*>(stream.data()),
                        stream.size(), &out),
            WireError::kOk);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].decode_error, WireError::kBadExtension);
  EXPECT_EQ(out[0].request_id, 51u);
  EXPECT_EQ(out[1].request_id, 52u);
}

// Framing-level violations stay sticky: nothing after them may dispatch.
TEST(DistProtocolTest, OversizedLengthStaysSticky) {
  std::string bad;
  PutU32(&bad, 0xffffffffu);
  bad.append("garbage");
  Frame ping;
  ping.type = MsgType::kPing;
  ping.request_id = 61;
  std::string clean;
  EncodeFrame(ping, &clean);

  FrameParser parser;
  std::vector<Frame> out;
  const std::string stream = bad + clean;
  EXPECT_EQ(parser.Feed(reinterpret_cast<const uint8_t*>(stream.data()),
                        stream.size(), &out),
            WireError::kOversized);
  EXPECT_TRUE(out.empty());
  out.clear();
  EXPECT_EQ(parser.Feed(reinterpret_cast<const uint8_t*>(clean.data()),
                        clean.size(), &out),
            WireError::kOversized);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace net
