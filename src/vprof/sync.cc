#include "src/vprof/sync.h"

#include <chrono>
#include <unordered_map>

namespace vprof {

uint64_t PackOwnerStamp(ThreadId tid, TimeNs time) {
  // 16 bits of tid, 48 bits of time (enough for ~78 hours of ns).
  return (static_cast<uint64_t>(static_cast<uint16_t>(tid)) << 48) |
         (static_cast<uint64_t>(time) & 0xffffffffffffull);
}

OwnerStamp UnpackOwnerStamp(uint64_t packed) {
  OwnerStamp stamp;
  stamp.tid = static_cast<ThreadId>(static_cast<int16_t>(packed >> 48));
  stamp.time = static_cast<TimeNs>(packed & 0xffffffffffffull);
  return stamp;
}

// --- OwnerMap ---------------------------------------------------------------

struct OwnerMap::Shard {
  mutable std::mutex mu;
  std::unordered_map<const void*, OwnerStamp> map;
};

namespace {
OwnerMap::Shard g_shards[64];
}  // namespace

OwnerMap& OwnerMap::Get() {
  static OwnerMap* map = new OwnerMap();
  return *map;
}

OwnerMap::Shard* OwnerMap::ShardFor(const void* object) const {
  const auto h = reinterpret_cast<uintptr_t>(object);
  return &g_shards[(h >> 4) % kShardCount];
}

void OwnerMap::Record(const void* object, ThreadId tid, TimeNs time) {
  Shard* shard = ShardFor(object);
  std::lock_guard<std::mutex> lock(shard->mu);
  shard->map[object] = OwnerStamp{tid, time};
}

std::optional<OwnerStamp> OwnerMap::Lookup(const void* object) const {
  Shard* shard = ShardFor(object);
  std::lock_guard<std::mutex> lock(shard->mu);
  auto it = shard->map.find(object);
  if (it == shard->map.end()) {
    return std::nullopt;
  }
  return it->second;
}

void OwnerMap::Clear() {
  for (auto& shard : g_shards) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
  }
}

// --- Mutex ------------------------------------------------------------------

void Mutex::lock() {
  if (mu_.try_lock()) {
    return;  // uncontended fast path: no recording needed
  }
  if (!IsTracing()) {
    mu_.lock();
    return;
  }
  ThreadState* thread = CurrentThread();
  thread->BeginBlocked(SegmentState::kBlocked, Now());
  mu_.lock();
  const TimeNs now = Now();
  const auto owner = OwnerMap::Get().Lookup(this);
  thread->EndBlocked(now, owner ? owner->tid : kNoThread,
                     owner ? owner->time : -1);
}

bool Mutex::try_lock() { return mu_.try_lock(); }

void Mutex::unlock() {
  if (IsTracing()) {
    OwnerMap::Get().Record(this, CurrentThread()->tid(), Now());
  }
  mu_.unlock();
}

// --- CondVar ----------------------------------------------------------------

void CondVar::Wait(Mutex& mu) {
  if (!IsTracing()) {
    cv_.wait(mu);
    return;
  }
  ThreadState* thread = CurrentThread();
  thread->BeginBlocked(SegmentState::kBlocked, Now());
  cv_.wait(mu);
  const TimeNs now = Now();
  const uint64_t packed = last_notify_.load(std::memory_order_relaxed);
  if (packed != 0) {
    const OwnerStamp stamp = UnpackOwnerStamp(packed);
    thread->EndBlocked(now, stamp.tid, stamp.time);
  } else {
    thread->EndBlocked(now, kNoThread, -1);
  }
}

bool CondVar::WaitFor(Mutex& mu, int64_t timeout_ns) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(timeout_ns);
  if (!IsTracing()) {
    return cv_.wait_until(mu, deadline) == std::cv_status::no_timeout;
  }
  ThreadState* thread = CurrentThread();
  thread->BeginBlocked(SegmentState::kBlocked, Now());
  const bool signaled = cv_.wait_until(mu, deadline) == std::cv_status::no_timeout;
  const TimeNs now = Now();
  const uint64_t packed =
      signaled ? last_notify_.load(std::memory_order_relaxed) : 0;
  if (packed != 0) {
    const OwnerStamp stamp = UnpackOwnerStamp(packed);
    thread->EndBlocked(now, stamp.tid, stamp.time);
  } else {
    thread->EndBlocked(now, kNoThread, -1);
  }
  return signaled;
}

void CondVar::NotifyOne() {
  if (IsTracing()) {
    last_notify_.store(PackOwnerStamp(CurrentThread()->tid(), Now()),
                       std::memory_order_relaxed);
  }
  cv_.notify_one();
}

void CondVar::NotifyAll() {
  if (IsTracing()) {
    last_notify_.store(PackOwnerStamp(CurrentThread()->tid(), Now()),
                       std::memory_order_relaxed);
  }
  cv_.notify_all();
}

// --- Event ------------------------------------------------------------------

void Event::Wait() {
  std::lock_guard<Mutex> lock(mu_);
  cv_.Wait(mu_, [this] { return set_; });
}

bool Event::WaitFor(int64_t timeout_ns) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(timeout_ns);
  std::lock_guard<Mutex> lock(mu_);
  while (!set_) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return false;
    }
    const int64_t remaining =
        std::chrono::duration_cast<std::chrono::nanoseconds>(deadline - now)
            .count();
    cv_.WaitFor(mu_, remaining);
  }
  return true;
}

void Event::Set() {
  {
    std::lock_guard<Mutex> lock(mu_);
    set_ = true;
  }
  cv_.NotifyAll();
}

void Event::Reset() {
  std::lock_guard<Mutex> lock(mu_);
  set_ = false;
}

bool Event::IsSet() const {
  std::lock_guard<Mutex> lock(mu_);
  return set_;
}

}  // namespace vprof
