#include <cstdio>

#include <gtest/gtest.h>

#include "src/vprof/trace.h"
#include "tests/vprof/trace_builder.h"

namespace vprof {
namespace {

using vprof_test::TraceBuilder;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(TraceIoTest, RoundTrip) {
  TraceBuilder tb;
  tb.Begin(0, 1, 10, /*label=*/7).End(0, 1, 500);
  tb.Exec(0, 1, 10, 200).Blocked(0, 1, 200, 400, 1, 400).Exec(0, 1, 400, 500);
  const int parent = tb.Invoke(0, "io_root", 10, 490, -1, 1);
  tb.Invoke(0, "io_child", 20, 120, parent, 1);
  tb.ExecGenerated(1, 1, 0, 10, 0, 5);
  const Trace original = tb.Build(12345);

  const std::string path = TempPath("trace_roundtrip.bin");
  ASSERT_TRUE(SaveTrace(original, path));
  Trace loaded;
  ASSERT_TRUE(LoadTrace(path, &loaded));

  EXPECT_EQ(loaded.duration, original.duration);
  EXPECT_EQ(loaded.function_names, original.function_names);
  ASSERT_EQ(loaded.threads.size(), original.threads.size());
  for (size_t i = 0; i < loaded.threads.size(); ++i) {
    const ThreadTrace& a = loaded.threads[i];
    const ThreadTrace& b = original.threads[i];
    EXPECT_EQ(a.tid, b.tid);
    ASSERT_EQ(a.invocations.size(), b.invocations.size());
    for (size_t j = 0; j < a.invocations.size(); ++j) {
      EXPECT_EQ(a.invocations[j].start, b.invocations[j].start);
      EXPECT_EQ(a.invocations[j].end, b.invocations[j].end);
      EXPECT_EQ(a.invocations[j].func, b.invocations[j].func);
      EXPECT_EQ(a.invocations[j].parent, b.invocations[j].parent);
      EXPECT_EQ(a.invocations[j].sid, b.invocations[j].sid);
    }
    ASSERT_EQ(a.segments.size(), b.segments.size());
    for (size_t j = 0; j < a.segments.size(); ++j) {
      EXPECT_EQ(a.segments[j].start, b.segments[j].start);
      EXPECT_EQ(a.segments[j].state, b.segments[j].state);
      EXPECT_EQ(a.segments[j].waker_tid, b.segments[j].waker_tid);
      EXPECT_EQ(a.segments[j].generator_tid, b.segments[j].generator_tid);
    }
    ASSERT_EQ(a.interval_events.size(), b.interval_events.size());
    for (size_t j = 0; j < a.interval_events.size(); ++j) {
      EXPECT_EQ(a.interval_events[j].sid, b.interval_events[j].sid);
      EXPECT_EQ(a.interval_events[j].label, b.interval_events[j].label);
    }
  }
}

TEST(TraceIoTest, LoadRejectsMissingFile) {
  Trace trace;
  EXPECT_FALSE(LoadTrace(TempPath("does_not_exist.bin"), &trace));
}

TEST(TraceIoTest, LoadRejectsGarbage) {
  const std::string path = TempPath("garbage.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a trace", f);
  std::fclose(f);
  Trace trace;
  EXPECT_FALSE(LoadTrace(path, &trace));
}

TEST(TraceIoTest, EmptyTraceRoundTrips) {
  Trace empty;
  empty.duration = 7;
  const std::string path = TempPath("empty.bin");
  ASSERT_TRUE(SaveTrace(empty, path));
  Trace loaded;
  ASSERT_TRUE(LoadTrace(path, &loaded));
  EXPECT_EQ(loaded.duration, 7);
  EXPECT_TRUE(loaded.threads.empty());
}

TEST(TraceCountsTest, CountsSumAcrossThreads) {
  TraceBuilder tb;
  tb.Begin(0, 1, 0).End(0, 1, 10);
  tb.Begin(1, 2, 0).End(1, 2, 10);
  tb.Exec(0, 1, 0, 10).Exec(1, 2, 0, 10);
  tb.Invoke(0, "c_f", 0, 5);
  const Trace trace = tb.Build();
  EXPECT_EQ(trace.invocation_count(), 1u);
  EXPECT_EQ(trace.segment_count(), 2u);
  EXPECT_EQ(trace.interval_count(), 2u);
}

}  // namespace
}  // namespace vprof
