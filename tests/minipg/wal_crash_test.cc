// Crash-recovery property tests for the Postgres-style WAL (ISSUE: fault
// model), covering both the single-lock (1 unit) and distributed two-log
// (2 unit) configurations.
//
// XLogFlush is synchronous, so the invariant matches the redo log's kEager
// contract: an LSN acknowledged by Flush() == kOk is never lost across a
// crash injected at any commit-path failpoint, and torn tails are detected
// by checksum and truncated.
#include "src/minipg/wal.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/fault/failpoint.h"
#include "src/simio/disk.h"

namespace minipg {
namespace {

simio::DiskConfig FastDisk(const std::string& scope) {
  simio::DiskConfig config;
  config.read_mu = 0.1;
  config.write_mu = 0.1;
  config.fsync_mu = 0.1;
  config.fsync_spike_prob = 0.0;
  config.error_latency_us = 1.0;
  config.fault_scope = scope;
  config.seed = 17;
  return config;
}

class WalCrashTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    fault::DeactivateAll();
    fault::ResetCounters();
  }
  void TearDown() override {
    fault::DeactivateAll();
    fault::ResetCounters();
  }
};

TEST(WalChecksumTest, DetectsHeaderCorruption) {
  const uint32_t good = WalRecordChecksum(8192, 256);
  EXPECT_NE(good, WalRecordChecksum(8193, 256));
  EXPECT_NE(good, WalRecordChecksum(8192, 257));
}

// An acked Flush survives a crash injected at every commit-path failpoint,
// in both the 1-unit and 2-unit configurations.
TEST_P(WalCrashTest, AckedFlushSurvivesCrashAtAnyCrashPoint) {
  const int units = GetParam();
  const char* kCrashPoints[] = {"wal/crash_before_write",
                                "wal/crash_after_write",
                                "wal/crash_mid_batch",
                                "wal/crash_after_fsync"};
  for (const char* point : kCrashPoints) {
    SCOPED_TRACE(point);
    Wal wal(units, FastDisk("wal_crash"));
    for (int i = 0; i < units; ++i) {
      wal.unit(i).set_crash_seed(7);
    }

    // Ack a few flushes per unit while healthy.
    std::vector<uint64_t> last_acked(static_cast<size_t>(units), 0);
    for (int i = 0; i < 4 * units; ++i) {
      const Wal::Position pos = wal.Insert(128);
      ASSERT_NE(pos.lsn, 0u);
      if (wal.Flush(pos) == WalStatus::kOk) {
        last_acked[static_cast<size_t>(pos.unit)] =
            std::max(last_acked[static_cast<size_t>(pos.unit)], pos.lsn);
      }
    }

    // The next flush crashes whichever unit it lands on.
    fault::Activate(point, fault::Trigger::OneShot());
    const Wal::Position doomed = wal.Insert(128);
    ASSERT_NE(doomed.lsn, 0u);
    EXPECT_EQ(wal.Flush(doomed), WalStatus::kCrashed);
    WalUnit& crashed_unit = wal.unit(doomed.unit);
    EXPECT_TRUE(crashed_unit.crashed());
    if (std::string(point) == "wal/crash_after_fsync") {
      // Durable before the crash; ack just never reached the caller.
      last_acked[static_cast<size_t>(doomed.unit)] = doomed.lsn;
    }
    fault::Deactivate(point);

    // The crashed unit refuses work; others (if any) keep going.
    EXPECT_EQ(crashed_unit.Insert(64), 0u);
    for (int i = 0; i < units; ++i) {
      if (i == doomed.unit) {
        continue;
      }
      const uint64_t lsn = wal.unit(i).Insert(64);
      ASSERT_NE(lsn, 0u);
      EXPECT_EQ(wal.unit(i).Flush(lsn), WalStatus::kOk);
    }

    const WalRecoveryResult recovered = crashed_unit.Recover();
    EXPECT_FALSE(crashed_unit.crashed());
    EXPECT_GE(recovered.recovered_lsn,
              last_acked[static_cast<size_t>(doomed.unit)])
        << "acked LSN lost across crash at " << point;
    EXPECT_EQ(crashed_unit.flushed_lsn(), recovered.recovered_lsn);

    // Usable again after recovery.
    const uint64_t fresh = crashed_unit.Insert(64);
    ASSERT_NE(fresh, 0u);
    EXPECT_EQ(crashed_unit.Flush(fresh), WalStatus::kOk);
  }
}

// Torn tails truncate deterministically for the same crash seed.
TEST_P(WalCrashTest, TornTailTruncationIsSeedDeterministic) {
  const int units = GetParam();
  auto run = [&](uint64_t crash_seed) {
    Wal wal(units, FastDisk("wal_torn"));
    WalUnit& unit = wal.unit(0);
    unit.set_crash_seed(crash_seed);
    // Build up written-but-unsynced state, then kill the unit between the
    // write and the fsync: the whole batch reached the device cache, and
    // the crash keeps only a seeded prefix of it, possibly torn. (A failed
    // fsync can no longer stage this — it wedges the unit and drops the
    // unsynced window entirely; see the fsyncgate test below.)
    for (int i = 0; i < 10; ++i) {
      unit.Insert(200);
    }
    fault::ScopedFailpoint fp("wal/crash_after_write",
                              fault::Trigger::OneShot());
    EXPECT_EQ(unit.Flush(unit.insert_lsn() - 1), WalStatus::kCrashed);
    return unit.Recover();
  };

  const WalRecoveryResult a = run(41);
  const WalRecoveryResult b = run(41);
  EXPECT_EQ(a.recovered_lsn, b.recovered_lsn);
  EXPECT_EQ(a.records_recovered, b.records_recovered);
  EXPECT_EQ(a.torn_truncated, b.torn_truncated);
  EXPECT_EQ(a.records_recovered + a.records_lost, 10u);
}

// I/O errors are retryable without loss (distinct from crashes).
TEST_P(WalCrashTest, IoErrorIsRetryableWithoutLoss) {
  const int units = GetParam();
  Wal wal(units, FastDisk("wal_ioerr"));
  WalUnit& unit = wal.unit(0);
  const uint64_t lsn = unit.Insert(128);
  {
    fault::ScopedFailpoint fp("wal_ioerr.0/write_error",
                              fault::Trigger::OneShot());
    EXPECT_EQ(unit.Flush(lsn), WalStatus::kIoError);
  }
  EXPECT_FALSE(unit.crashed());
  EXPECT_EQ(unit.Flush(lsn), WalStatus::kOk);
  EXPECT_EQ(unit.flushed_lsn(), lsn);
  EXPECT_EQ(unit.stats().io_errors, 1u);
}

// fsyncgate regression: a failed fsync is NOT retryable. The kernel dropped
// the unsynced window, so the unit must wedge — a later successful fsync
// must never silently acknowledge the dropped records.
TEST_P(WalCrashTest, FailedFsyncWedgesUnitInsteadOfSilentlyAcking) {
  const int units = GetParam();
  Wal wal(units, FastDisk("wal_wedge"));
  WalUnit& unit = wal.unit(0);
  const uint64_t lsn = unit.Insert(128);
  ASSERT_EQ(unit.Flush(lsn), WalStatus::kOk);  // durable baseline

  const uint64_t lsn2 = unit.Insert(128);
  {
    fault::ScopedFailpoint fp("wal_wedge.0/fsync_error",
                              fault::Trigger::OneShot());
    EXPECT_EQ(unit.Flush(lsn2), WalStatus::kWedged);
  }
  EXPECT_TRUE(unit.wedged());
  // The failpoint is disarmed, so a bare retry would find a working fsync;
  // the wedge must keep refusing anyway — lsn2's record is gone.
  EXPECT_EQ(unit.Flush(lsn2), WalStatus::kWedged);
  EXPECT_EQ(unit.Insert(64), 0u);  // inserts refused while wedged
  EXPECT_EQ(unit.stats().wedges, 1u);

  // Recovery truncates to the durable prefix; the wedged window was never
  // acked and does not survive.
  const WalRecoveryResult recovered = unit.Recover();
  EXPECT_FALSE(unit.wedged());
  EXPECT_EQ(recovered.recovered_lsn, lsn);
  EXPECT_LT(recovered.recovered_lsn, lsn2);

  const uint64_t fresh = unit.Insert(64);
  ASSERT_NE(fresh, 0u);
  EXPECT_EQ(unit.Flush(fresh), WalStatus::kOk);
}

// Backends sleeping in LWLockAcquireOrWait observe a crash instead of
// hanging, and no backend receives a false durability ack.
TEST_P(WalCrashTest, WaitersWakeOnCrash) {
  const int units = GetParam();
  Wal wal(units, FastDisk("wal_waiters"));
  wal.unit(0).set_crash_seed(13);
  fault::Activate("wal/crash_before_write", fault::Trigger::OneShot());
  std::atomic<int> failed{0};
  std::vector<std::thread> backends;
  for (int t = 0; t < 4; ++t) {
    backends.emplace_back([&] {
      const uint64_t lsn = wal.unit(0).Insert(128);
      if (lsn == 0 || wal.unit(0).Flush(lsn) == WalStatus::kCrashed) {
        failed.fetch_add(1);
      }
    });
  }
  for (auto& t : backends) {
    t.join();
  }
  fault::Deactivate("wal/crash_before_write");
  EXPECT_TRUE(wal.unit(0).crashed());
  EXPECT_EQ(failed.load(), 4);
  const WalRecoveryResult recovered = wal.unit(0).Recover();
  EXPECT_EQ(recovered.recovered_lsn, 0u);  // nothing was ever durable
}

// Wal-wide crash/recover helpers cover every unit.
TEST_P(WalCrashTest, CrashAllRecoverAllCoversEveryUnit) {
  const int units = GetParam();
  Wal wal(units, FastDisk("wal_all"));
  for (int i = 0; i < units; ++i) {
    const uint64_t lsn = wal.unit(i).Insert(100);
    EXPECT_EQ(wal.unit(i).Flush(lsn), WalStatus::kOk);
  }
  wal.CrashAll(/*seed=*/50);
  for (int i = 0; i < units; ++i) {
    EXPECT_TRUE(wal.unit(i).crashed());
  }
  const std::vector<WalRecoveryResult> results = wal.RecoverAll();
  ASSERT_EQ(results.size(), static_cast<size_t>(units));
  for (int i = 0; i < units; ++i) {
    EXPECT_FALSE(wal.unit(i).crashed());
    EXPECT_EQ(results[static_cast<size_t>(i)].recovered_lsn, 100u);
  }
}

INSTANTIATE_TEST_SUITE_P(SingleAndTwoLog, WalCrashTest,
                         ::testing::Values(1, 2));

}  // namespace
}  // namespace minipg
