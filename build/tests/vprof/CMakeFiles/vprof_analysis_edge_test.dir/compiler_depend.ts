# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for vprof_analysis_edge_test.
