// Per-request-type profiles via interval labels: the same trace, analyzed
// per transaction type, must show type-specific structure (read-only types
// have no commit-flush component; write types do).
#include <gtest/gtest.h>

#include "src/minidb/engine.h"
#include "src/vprof/analysis/variance_tree.h"
#include "src/workload/tpcc.h"

namespace {

double NodeMeanByLabel(const vprof::VarianceAnalysis& analysis,
                       const std::string& label) {
  double total = 0.0;
  for (size_t i = 1; i < analysis.node_count(); ++i) {
    const auto id = static_cast<vprof::NodeId>(i);
    if (analysis.NodeLabel(id) == label) {
      total += analysis.NodeMean(id);
    }
  }
  return total;
}

TEST(PerTypeProfileIntegration, ReadOnlyTypesSkipTheLogPath) {
  minidb::EngineConfig config = minidb::EngineConfig::MemoryResident();
  config.warehouses = 2;
  minidb::Engine engine(config);
  vprof::CallGraph graph;
  minidb::Engine::RegisterCallGraph(&graph);

  workload::TpccOptions options;
  options.threads = 4;
  options.transactions_per_thread = 150;
  workload::TpccDriver driver(&engine, options);
  driver.Run();  // warm-up

  for (vprof::FuncId func : graph.Functions()) {
    vprof::SetFunctionEnabled(func, true);
  }
  vprof::StartTracing();
  driver.Run();
  const vprof::Trace trace = vprof::StopTracing();
  vprof::DisableAllFunctions();

  // Labels: TxnType + 1 (see Engine::Execute).
  vprof::CriticalPathOptions new_order_only;
  new_order_only.filter_by_label = true;
  new_order_only.label_filter =
      static_cast<vprof::IntervalLabel>(minidb::TxnType::kNewOrder) + 1;
  vprof::VarianceAnalysis new_order(trace, new_order_only);

  vprof::CriticalPathOptions status_only;
  status_only.filter_by_label = true;
  status_only.label_filter =
      static_cast<vprof::IntervalLabel>(minidb::TxnType::kOrderStatus) + 1;
  vprof::VarianceAnalysis order_status(trace, status_only);

  ASSERT_GT(new_order.interval_count(), 50u);
  ASSERT_GT(order_status.interval_count(), 5u);

  // NewOrder commits flush the log; OrderStatus is read-only.
  EXPECT_GT(NodeMeanByLabel(new_order, "fil_flush") +
                NodeMeanByLabel(new_order, "log_write_up_to"),
            0.0);
  EXPECT_DOUBLE_EQ(NodeMeanByLabel(order_status, "fil_flush"), 0.0);

  // The per-type interval counts sum to the full trace's count.
  vprof::VarianceAnalysis all(trace);
  uint64_t sum = 0;
  for (int type = 0; type < 5; ++type) {
    vprof::CriticalPathOptions only;
    only.filter_by_label = true;
    only.label_filter = static_cast<vprof::IntervalLabel>(type) + 1;
    sum += vprof::VarianceAnalysis(trace, only).interval_count();
  }
  EXPECT_EQ(sum, all.interval_count());
}

}  // namespace
