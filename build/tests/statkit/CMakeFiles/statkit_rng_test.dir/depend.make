# Empty dependencies file for statkit_rng_test.
# This may be replaced when dependencies are built.
