#include "src/statstore/segment.h"

#include <algorithm>

namespace statstore {

uint32_t RecordChecksum(const uint8_t* data, size_t size) {
  // FNV-1a over the payload bytes, folded to 32 bits (same construction as
  // minidb::LogRecordChecksum).
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < size; ++i) {
    h = (h ^ data[i]) * 1099511628211ull;
  }
  return static_cast<uint32_t>(h ^ (h >> 32));
}

std::vector<uint8_t> SegmentEncoder::EncodeRecord(const EpochSample& sample) {
  BitWriter w;
  epoch_enc_.Append(&w, sample.epoch);

  // Assign ids to series new to this segment, in input order. Duplicate
  // series within one sample keep the first occurrence's value (one value
  // per series per epoch is the contract; dropping duplicates keeps the
  // encoder and decoder agreeing on the value count).
  std::vector<const SeriesValue*> new_series;
  std::vector<std::pair<uint32_t, double>> present;  // (id, value)
  present.reserve(sample.values.size());
  for (const SeriesValue& sv : sample.values) {
    auto it = series_ids_.find(sv.series);
    if (it == series_ids_.end()) {
      if (sv.series.size() > kMaxSeriesNameBytes ||
          series_names_.size() >= kMaxSeriesPerSegment) {
        continue;  // unencodable name; the value is dropped, not mangled
      }
      it = series_ids_
               .emplace(sv.series, static_cast<uint32_t>(series_names_.size()))
               .first;
      series_names_.push_back(sv.series);
      series_enc_.emplace_back();
      new_series.push_back(&sv);
    }
    present.emplace_back(it->second, sv.value);
  }
  w.Write(new_series.size(), 16);
  for (const SeriesValue* sv : new_series) {
    w.Write(sv->series.size(), 12);
    for (const char c : sv->series) {
      w.Write(static_cast<uint8_t>(c), 8);
    }
  }

  std::stable_sort(present.begin(), present.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  present.erase(std::unique(present.begin(), present.end(),
                            [](const auto& a, const auto& b) {
                              return a.first == b.first;
                            }),
                present.end());
  std::vector<bool> bitmap(series_names_.size(), false);
  for (const auto& [id, value] : present) {
    bitmap[id] = true;
  }
  for (const bool b : bitmap) {
    w.WriteBit(b);
  }
  for (const auto& [id, value] : present) {
    series_enc_[id].Append(&w, value);
  }
  return w.Take();
}

bool SegmentDecoder::DecodeRecord(const uint8_t* data, size_t size,
                                  EpochSample* out) {
  out->values.clear();
  BitReader r(data, size);
  if (!epoch_dec_.Next(&r, &out->epoch)) return false;

  uint64_t new_count = 0;
  if (!r.Read(&new_count, 16)) return false;
  if (names_.size() + new_count > kMaxSeriesPerSegment) return false;
  for (uint64_t i = 0; i < new_count; ++i) {
    uint64_t len = 0;
    if (!r.Read(&len, 12)) return false;
    std::string name(len, '\0');
    for (uint64_t j = 0; j < len; ++j) {
      uint64_t c = 0;
      if (!r.Read(&c, 8)) return false;
      name[j] = static_cast<char>(c);
    }
    names_.push_back(std::move(name));
    values_.emplace_back();
  }

  std::vector<uint32_t> present;
  for (size_t id = 0; id < names_.size(); ++id) {
    bool b = false;
    if (!r.ReadBit(&b)) return false;
    if (b) present.push_back(static_cast<uint32_t>(id));
  }
  out->values.reserve(present.size());
  for (const uint32_t id : present) {
    double v = 0.0;
    if (!values_[id].Next(&r, &v)) return false;
    out->values.push_back(SeriesValue{names_[id], v});
  }
  // A valid payload is consumed to within the final byte's padding bits.
  return size * 8 - r.bits_consumed() < 8;
}

}  // namespace statstore
