#include "src/dist/monitor.h"

#include <algorithm>
#include <sstream>

#include "src/vprof/service/history.h"

namespace dist {

using vprof::TierSeriesName;

void DistMonitor::RegisterTier(const TierConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Tier& tier : tiers_) {
    if (tier.config.name == config.name) {
      return;
    }
  }
  Tier tier;
  tier.config = config;
  tiers_.push_back(std::move(tier));
}

void DistMonitor::UpdateTier(const std::string& name,
                             const vprof::OnlineTreeSnapshot& snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Tier& tier : tiers_) {
    if (tier.config.name == name) {
      tier.snapshot = snapshot;
      tier.has_snapshot = true;
      return;
    }
  }
}

DistSnapshot DistMonitor::SnapshotLocked() const {
  DistSnapshot out;
  const Tier* front = nullptr;
  for (const Tier& tier : tiers_) {
    if (tier.config.is_front) {
      front = &tier;
      break;
    }
  }
  if (front != nullptr && front->has_snapshot) {
    out.end_to_end_mean_ns = front->snapshot.overall_mean();
    out.end_to_end_variance_ns2 = front->snapshot.overall_variance();
  }
  auto add = [&out](const Tier& tier) {
    if (!tier.has_snapshot) {
      return;
    }
    TierStats stats;
    stats.name = tier.config.name;
    stats.is_front = tier.config.is_front;
    stats.mean_ns = tier.snapshot.overall_mean();
    stats.variance_ns2 = tier.snapshot.overall_variance();
    stats.intervals = tier.snapshot.intervals;
    stats.share = tier.config.is_front
                      ? 1.0
                      : (out.end_to_end_variance_ns2 > 0.0
                             ? stats.variance_ns2 / out.end_to_end_variance_ns2
                             : 0.0);
    out.tiers.push_back(std::move(stats));
  };
  if (front != nullptr) {
    add(*front);
  }
  for (const Tier& tier : tiers_) {
    if (!tier.config.is_front) {
      add(tier);
    }
  }
  return out;
}

DistSnapshot DistMonitor::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return SnapshotLocked();
}

std::vector<DistFactor> DistMonitor::TopFactors(const vprof::CallGraph& graph,
                                                size_t top_k) const {
  std::lock_guard<std::mutex> lock(mu_);
  const DistSnapshot merged = SnapshotLocked();
  std::vector<DistFactor> out;
  for (const Tier& tier : tiers_) {
    if (!tier.has_snapshot || tier.config.root == vprof::kInvalidFunc) {
      continue;
    }
    double share = 0.0;
    for (const TierStats& stats : merged.tiers) {
      if (stats.name == tier.config.name) {
        share = stats.share;
        break;
      }
    }
    if (share <= 0.0) {
      continue;
    }
    const std::vector<vprof::Factor> factors = vprof::AggregateFactors(
        tier.snapshot.View(), graph, tier.config.root,
        vprof::SpecificityKind::kQuadratic);
    for (const vprof::Factor& factor : factors) {
      DistFactor df;
      df.tier = tier.config.name;
      df.factor = factor;
      df.tier_share = share;
      df.global_contribution = factor.contribution * share;
      df.global_score = factor.specificity * df.global_contribution;
      out.push_back(std::move(df));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const DistFactor& a, const DistFactor& b) {
              if (a.global_score != b.global_score) {
                return a.global_score > b.global_score;
              }
              if (a.tier != b.tier) {
                return a.tier < b.tier;
              }
              return a.factor.func_a < b.factor.func_a;
            });
  if (out.size() > top_k) {
    out.resize(top_k);
  }
  return out;
}

statstore::EpochSample DistMonitor::Sample(uint64_t epoch) const {
  const DistSnapshot merged = Snapshot();
  statstore::EpochSample sample;
  sample.epoch = epoch;
  sample.values.reserve(4 * merged.tiers.size());
  for (const TierStats& tier : merged.tiers) {
    sample.values.push_back(
        {TierSeriesName(tier.name, "latency_mean_ns"), tier.mean_ns});
    sample.values.push_back(
        {TierSeriesName(tier.name, "latency_variance_ns2"),
         tier.variance_ns2});
    sample.values.push_back({TierSeriesName(tier.name, "share"), tier.share});
    sample.values.push_back({TierSeriesName(tier.name, "intervals"),
                             static_cast<double>(tier.intervals)});
  }
  return sample;
}

std::string DistMonitor::ToText(const vprof::CallGraph& graph,
                                size_t top_k) const {
  const DistSnapshot merged = Snapshot();
  const std::vector<DistFactor> factors = TopFactors(graph, top_k);
  std::ostringstream os;
  os << "dist:request  mean=" << merged.end_to_end_mean_ns / 1e3
     << "us  var=" << merged.end_to_end_variance_ns2 / 1e6 << "us2\n";
  for (const TierStats& tier : merged.tiers) {
    os << "  tier " << tier.name << (tier.is_front ? " (front)" : "")
       << "  mean=" << tier.mean_ns / 1e3
       << "us  var=" << tier.variance_ns2 / 1e6
       << "us2  share=" << tier.share << "  intervals=" << tier.intervals
       << "\n";
  }
  os << "  top factors (tier-share weighted):\n";
  std::lock_guard<std::mutex> lock(mu_);
  for (const DistFactor& df : factors) {
    const Tier* tier = nullptr;
    for (const Tier& t : tiers_) {
      if (t.config.name == df.tier) {
        tier = &t;
        break;
      }
    }
    if (tier == nullptr) {
      continue;
    }
    os << "    [" << df.tier << "] "
       << df.factor.Label(tier->snapshot.function_names)
       << "  contribution=" << df.global_contribution
       << "  score=" << df.global_score << "\n";
  }
  return os.str();
}

}  // namespace dist
