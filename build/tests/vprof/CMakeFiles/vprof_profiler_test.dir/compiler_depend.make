# Empty compiler generated dependencies file for vprof_profiler_test.
# This may be replaced when dependencies are built.
