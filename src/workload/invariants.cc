#include "src/workload/invariants.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>

namespace workload {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvMix(uint64_t hash, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (i * 8)) & 0xFF;
    hash *= kFnvPrime;
  }
  return hash;
}

uint64_t FnvString(uint64_t hash, const std::string& s) {
  for (const char c : s) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace

InvariantResult CheckAckedPrefixDurable(uint64_t max_acked_lsn,
                                        uint64_t recovered_lsn) {
  InvariantResult result;
  if (recovered_lsn < max_acked_lsn) {
    result.ok = false;
    result.detail = "acked-prefix durability violated: recovered_lsn " +
                    std::to_string(recovered_lsn) + " < max acked lsn " +
                    std::to_string(max_acked_lsn);
  }
  return result;
}

InvariantResult CheckBalanceConservation(const minidb::Engine& engine) {
  InvariantResult result;
  const int64_t total = engine.BalanceTotal();
  if (total != 0) {
    result.ok = false;
    result.detail =
        "balance conservation violated: total " + std::to_string(total) +
        " != 0 (a transaction applied a partial transfer)";
  }
  return result;
}

uint64_t StatStoreDigest(const statstore::StatStore& store) {
  uint64_t digest = kFnvOffset;
  const uint64_t lo = store.first_epoch();
  const uint64_t hi = store.last_epoch();
  for (const std::string& series : store.ListSeries()) {
    uint64_t series_hash = FnvString(kFnvOffset, series);
    for (const statstore::SeriesPoint& point : store.Query(series, lo, hi)) {
      series_hash = FnvMix(series_hash, point.epoch);
      uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(point.value), "bit-exact digest");
      std::memcpy(&bits, &point.value, sizeof(bits));
      series_hash = FnvMix(series_hash, bits);
    }
    // XOR-combining per-series hashes keeps the digest independent of the
    // series enumeration order (ListSeries sorts, but don't depend on it).
    digest ^= series_hash;
  }
  digest = FnvMix(digest, store.record_count());
  return digest;
}

InvariantResult CheckStatStoreBitExactReplay(statstore::StatStore* store) {
  InvariantResult result;
  store->Seal();
  const uint64_t live_digest = StatStoreDigest(*store);

  statstore::StatStore reopened(store->options());
  if (!reopened.Open()) {
    result.ok = false;
    result.detail = "statstore replay: reopen failed for " +
                    store->options().dir;
    return result;
  }
  const uint64_t replay_digest = StatStoreDigest(reopened);
  if (replay_digest != live_digest) {
    result.ok = false;
    result.detail = "statstore replay not bit-exact: live digest " +
                    std::to_string(live_digest) + " != reopened digest " +
                    std::to_string(replay_digest);
  }
  return result;
}

InvariantResult CheckThreadsJoin(std::vector<std::thread>* threads,
                                 int timeout_ms) {
  InvariantResult result;
  const size_t total = threads->size();
  // std::thread has no timed join, so a joiner thread performs the blocking
  // joins and publishes progress; this thread polls with a deadline.
  auto owned = std::make_shared<std::vector<std::thread>>(std::move(*threads));
  auto joined = std::make_shared<std::atomic<size_t>>(0);
  std::thread joiner([owned, joined] {
    for (std::thread& t : *owned) {
      if (t.joinable()) {
        t.join();
      }
      joined->fetch_add(1, std::memory_order_release);
    }
  });

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (joined->load(std::memory_order_acquire) < total &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  const size_t done = joined->load(std::memory_order_acquire);
  if (done < total) {
    result.ok = false;
    result.detail = "stuck threads after quiesce: " +
                    std::to_string(total - done) + " of " +
                    std::to_string(total) + " workers did not join within " +
                    std::to_string(timeout_ms) + "ms";
    // The stuck workers (and the joiner blocked on them) cannot be
    // reclaimed; leak them so the test can report the failure.
    joiner.detach();
    return result;
  }
  joiner.join();
  return result;
}

}  // namespace workload
