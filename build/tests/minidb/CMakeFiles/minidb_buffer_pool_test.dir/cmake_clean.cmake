file(REMOVE_RECURSE
  "CMakeFiles/minidb_buffer_pool_test.dir/buffer_pool_test.cc.o"
  "CMakeFiles/minidb_buffer_pool_test.dir/buffer_pool_test.cc.o.d"
  "minidb_buffer_pool_test"
  "minidb_buffer_pool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minidb_buffer_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
