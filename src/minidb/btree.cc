#include "src/minidb/btree.h"

#include <algorithm>

#include "src/vprof/probe.h"

namespace minidb {

struct BTree::Node {
  bool leaf = true;
  std::vector<int64_t> keys;
  std::vector<uint64_t> values;                // leaf only, parallel to keys
  std::vector<std::unique_ptr<Node>> children;  // internal only, keys.size()+1
};

BTree::BTree(int fanout) : fanout_(std::max(4, fanout)) {
  root_ = std::make_unique<Node>();
}

BTree::~BTree() = default;

int BTree::Height() const {
  int height = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->children[0].get();
    ++height;
  }
  return height;
}

BTree::Node* BTree::FindLeaf(int64_t key) const {
  Node* node = root_.get();
  while (!node->leaf) {
    const auto it = std::upper_bound(node->keys.begin(), node->keys.end(), key);
    node = node->children[static_cast<size_t>(it - node->keys.begin())].get();
    // Per-level page work (latch + header checks + binary-search cache
    // misses): the depth-dependent cost that makes
    // btr_cur_search_to_nth_level's variance *inherent* (paper Section 4.5).
    volatile uint64_t h = 1469598103934665603ull;
    for (int i = 0; i < 40; ++i) {
      h = (h ^ static_cast<uint64_t>(i)) * 1099511628211ull;
    }
  }
  return node;
}

std::optional<uint64_t> BTree::Search(int64_t key) const {
  VPROF_FUNC("btr_cur_search_to_nth_level");
  const Node* leaf = FindLeaf(key);
  const auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it != leaf->keys.end() && *it == key) {
    return leaf->values[static_cast<size_t>(it - leaf->keys.begin())];
  }
  return std::nullopt;
}

void BTree::SplitChild(Node* parent, int index) {
  Node* child = parent->children[static_cast<size_t>(index)].get();
  auto right = std::make_unique<Node>();
  right->leaf = child->leaf;
  const size_t mid = child->keys.size() / 2;

  int64_t separator;
  if (child->leaf) {
    // Leaf split: right keeps [mid, end); separator is right's first key.
    right->keys.assign(child->keys.begin() + static_cast<long>(mid),
                       child->keys.end());
    right->values.assign(child->values.begin() + static_cast<long>(mid),
                         child->values.end());
    child->keys.resize(mid);
    child->values.resize(mid);
    separator = right->keys.front();
  } else {
    // Internal split: middle key moves up.
    separator = child->keys[mid];
    right->keys.assign(child->keys.begin() + static_cast<long>(mid) + 1,
                       child->keys.end());
    for (size_t i = mid + 1; i < child->children.size(); ++i) {
      right->children.push_back(std::move(child->children[i]));
    }
    child->keys.resize(mid);
    child->children.resize(mid + 1);
  }

  parent->keys.insert(parent->keys.begin() + index, separator);
  parent->children.insert(parent->children.begin() + index + 1, std::move(right));
}

bool BTree::InsertNonFull(Node* node, int64_t key, uint64_t value) {
  if (node->leaf) {
    const auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
    const size_t pos = static_cast<size_t>(it - node->keys.begin());
    if (it != node->keys.end() && *it == key) {
      node->values[pos] = value;  // update in place
      return false;
    }
    node->keys.insert(it, key);
    node->values.insert(node->values.begin() + static_cast<long>(pos), value);
    return true;
  }
  auto it = std::upper_bound(node->keys.begin(), node->keys.end(), key);
  int index = static_cast<int>(it - node->keys.begin());
  if (node->children[static_cast<size_t>(index)]->keys.size() >=
      static_cast<size_t>(fanout_ - 1)) {
    SplitChild(node, index);
    if (key >= node->keys[static_cast<size_t>(index)]) {
      ++index;
    }
  }
  return InsertNonFull(node->children[static_cast<size_t>(index)].get(), key, value);
}

bool BTree::Insert(int64_t key, uint64_t value) {
  if (root_->keys.size() >= static_cast<size_t>(fanout_ - 1)) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->children.push_back(std::move(root_));
    root_ = std::move(new_root);
    SplitChild(root_.get(), 0);
  }
  const bool inserted = InsertNonFull(root_.get(), key, value);
  if (inserted) {
    ++size_;
  }
  return inserted;
}

bool BTree::Erase(int64_t key) {
  Node* leaf = FindLeaf(key);
  const auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it == leaf->keys.end() || *it != key) {
    return false;
  }
  const size_t pos = static_cast<size_t>(it - leaf->keys.begin());
  leaf->keys.erase(it);
  leaf->values.erase(leaf->values.begin() + static_cast<long>(pos));
  --size_;
  return true;
}

std::vector<std::pair<int64_t, uint64_t>> BTree::Range(int64_t lo,
                                                       int64_t hi) const {
  std::vector<std::pair<int64_t, uint64_t>> out;
  // Iterative DFS collecting keys in [lo, hi].
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (node->leaf) {
      const auto first = std::lower_bound(node->keys.begin(), node->keys.end(), lo);
      for (auto it = first; it != node->keys.end() && *it <= hi; ++it) {
        out.emplace_back(*it,
                         node->values[static_cast<size_t>(it - node->keys.begin())]);
      }
      continue;
    }
    // Children overlapping [lo, hi], pushed in reverse for in-order output.
    const auto first =
        std::upper_bound(node->keys.begin(), node->keys.end(), lo) -
        node->keys.begin();
    auto last = static_cast<long>(
        std::upper_bound(node->keys.begin(), node->keys.end(), hi) -
        node->keys.begin());
    long begin_idx = std::max<long>(0, first - 1);
    // Ensure keys equal to lo in the left sibling subtree are included.
    for (long i = last; i >= begin_idx; --i) {
      stack.push_back(node->children[static_cast<size_t>(i)].get());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool BTree::CheckNode(const Node* node, int64_t lo, int64_t hi, int depth,
                      int* leaf_depth) const {
  if (!std::is_sorted(node->keys.begin(), node->keys.end())) {
    return false;
  }
  for (int64_t k : node->keys) {
    if (k < lo || k > hi) {
      return false;
    }
  }
  if (node->leaf) {
    if (node->values.size() != node->keys.size()) {
      return false;
    }
    if (*leaf_depth < 0) {
      *leaf_depth = depth;
    }
    return *leaf_depth == depth;
  }
  if (node->children.size() != node->keys.size() + 1) {
    return false;
  }
  for (size_t i = 0; i < node->children.size(); ++i) {
    const int64_t child_lo = i == 0 ? lo : node->keys[i - 1];
    const int64_t child_hi = i == node->keys.size() ? hi : node->keys[i];
    if (!CheckNode(node->children[i].get(), child_lo, child_hi, depth + 1,
                   leaf_depth)) {
      return false;
    }
  }
  return true;
}

bool BTree::CheckInvariants() const {
  int leaf_depth = -1;
  return CheckNode(root_.get(), INT64_MIN, INT64_MAX, 0, &leaf_depth);
}

}  // namespace minidb
