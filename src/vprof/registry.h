// Global function registry and per-function instrumentation flags.
//
// The paper's tool rewrites source to instrument only the currently selected
// functions, recompiling between refinement iterations (Section 3.3.4). We
// get the same selectivity without recompiling: every instrumentable function
// carries a compiled-in probe that checks one bit of a packed enable bitmap;
// the refinement driver flips bits between runs.
//
// The bitmap is words of 64 flags rather than one atomic byte per function:
// a probe's flag check touches 1/64th the memory, 512 adjacent flags share a
// cache line read-only (flag writes happen only between runs, so there is no
// flag-to-flag false sharing while measuring), and a whole-registry snapshot
// is 64 word loads instead of 4096 byte loads.
#ifndef SRC_VPROF_REGISTRY_H_
#define SRC_VPROF_REGISTRY_H_

#include <atomic>
#include <string>
#include <string_view>
#include <vector>

#include "src/vprof/types.h"

namespace vprof {

inline constexpr size_t kMaxFunctions = 4096;
inline constexpr size_t kFuncBitmapWords = kMaxFunctions / 64;

// Packed per-function enable bits, indexed by FuncId / 64. Exposed for the
// inline probe fast path only; use SetFunctionEnabled to mutate.
extern std::atomic<uint64_t> g_func_enabled_bits[kFuncBitmapWords];

// Hash of each registered function's name, written once at registration.
// Lets the full tracer key events by symbol (as a binary tracer does)
// without taking the registry lock on its hot path.
extern std::atomic<uint64_t> g_func_name_hash[kMaxFunctions];

// Registers (or finds) a function by name and returns its dense id.
// Thread-safe; idempotent per name. Aborts if kMaxFunctions is exceeded.
FuncId RegisterFunction(std::string_view name);

// Returns the id for `name`, or kInvalidFunc if it was never registered.
FuncId LookupFunction(std::string_view name);

// Returns the registered name for `id` (empty string if out of range).
std::string FunctionName(FuncId id);

// Number of registered functions.
size_t RegisteredFunctionCount();

// Snapshot of all registered names, indexed by FuncId.
std::vector<std::string> AllFunctionNames();

// Enables or disables recording for one function.
void SetFunctionEnabled(FuncId id, bool enabled);

// Disables recording for every function.
void DisableAllFunctions();

// Currently enabled function ids.
std::vector<FuncId> EnabledFunctions();

inline bool IsFunctionEnabled(FuncId id) {
  return (g_func_enabled_bits[id >> 6].load(std::memory_order_relaxed) >>
          (id & 63)) &
         1;
}

// Lock-free symbol-hash lookup for the full tracer's hot path.
inline uint64_t FunctionNameHash(FuncId id) {
  return id < kMaxFunctions
             ? g_func_name_hash[id].load(std::memory_order_relaxed)
             : 0;
}

// Lazily-registered probe site. A constexpr constructor makes function-local
// statics constant-initialized, so VPROF_FUNC pays no init guard on entry;
// the id is resolved through the registry the first time the site is hit
// with tracing active.
class ProbeSite {
 public:
  constexpr explicit ProbeSite(const char* name) : name_(name) {}

  FuncId id() {
    const FuncId cached = id_.load(std::memory_order_relaxed);
    if (cached != kInvalidFunc) [[likely]] {
      return cached;
    }
    return Resolve();
  }

 private:
  FuncId Resolve() {
    const FuncId id = RegisterFunction(name_);
    id_.store(id, std::memory_order_relaxed);
    return id;
  }

  const char* name_;
  std::atomic<FuncId> id_{kInvalidFunc};
};

}  // namespace vprof

#endif  // SRC_VPROF_REGISTRY_H_
