
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/statkit/histogram.cc" "src/statkit/CMakeFiles/statkit.dir/histogram.cc.o" "gcc" "src/statkit/CMakeFiles/statkit.dir/histogram.cc.o.d"
  "/root/repo/src/statkit/p2_quantile.cc" "src/statkit/CMakeFiles/statkit.dir/p2_quantile.cc.o" "gcc" "src/statkit/CMakeFiles/statkit.dir/p2_quantile.cc.o.d"
  "/root/repo/src/statkit/summary.cc" "src/statkit/CMakeFiles/statkit.dir/summary.cc.o" "gcc" "src/statkit/CMakeFiles/statkit.dir/summary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
