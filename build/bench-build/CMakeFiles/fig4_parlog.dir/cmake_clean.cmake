file(REMOVE_RECURSE
  "../bench/fig4_parlog"
  "../bench/fig4_parlog.pdb"
  "CMakeFiles/fig4_parlog.dir/fig4_parlog.cc.o"
  "CMakeFiles/fig4_parlog.dir/fig4_parlog.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_parlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
