// Reproduces paper Figure 4 (right): distributed logging for Postgres
// (minipg) — two redo logs on two disks; a committing transaction uses the
// one with fewer waiters.
//
// Paper: mean -58.5%, variance -44.8%, p99 -23.7%.
#include "bench/common.h"

int main() {
  bench::PrintHeader(
      "Figure 4 (right) — distributed logging vs single WAL (minipg, TPC-C)");

  const workload::TpccOptions options = bench::TpccQuick(8, 700);

  const bench::LatencyStats base =
      bench::RunMinipg(bench::PostgresConfig(/*wal_units=*/1), options);
  const bench::LatencyStats treated =
      bench::RunMinipg(bench::PostgresConfig(/*wal_units=*/2), options);

  bench::PrintStatsRow("single WAL (baseline)", base);
  bench::PrintStatsRow("distributed (2 logs)", treated);
  std::printf("\n");
  bench::PrintReductionRow("mean latency", base.mean_ms, treated.mean_ms, 58.5);
  bench::PrintReductionRow("latency variance", base.variance_ms2,
                           treated.variance_ms2, 44.8);
  bench::PrintReductionRow("99th percentile", base.p99_ms, treated.p99_ms, 23.7);
  return 0;
}
