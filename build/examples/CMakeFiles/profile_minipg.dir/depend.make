# Empty dependencies file for profile_minipg.
# This may be replaced when dependencies are built.
