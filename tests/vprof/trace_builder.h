// Test utility: builds vprof::Trace objects by hand so the offline analysis
// can be verified against exactly known inputs, independent of timing.
#ifndef TESTS_VPROF_TRACE_BUILDER_H_
#define TESTS_VPROF_TRACE_BUILDER_H_

#include <string>
#include <vector>

#include "src/vprof/registry.h"
#include "src/vprof/trace.h"

namespace vprof_test {

class TraceBuilder {
 public:
  TraceBuilder() = default;

  // Registers a function in the global registry (so ids are consistent with
  // CallGraph lookups) and returns its FuncId.
  vprof::FuncId Func(const std::string& name) {
    return vprof::RegisterFunction(name);
  }

  vprof::ThreadTrace& Thread(vprof::ThreadId tid) {
    for (auto& t : trace_.threads) {
      if (t.tid == tid) {
        return t;
      }
    }
    trace_.threads.push_back(vprof::ThreadTrace{});
    trace_.threads.back().tid = tid;
    return trace_.threads.back();
  }

  TraceBuilder& Begin(vprof::ThreadId tid, vprof::IntervalId sid, vprof::TimeNs t,
                      vprof::IntervalLabel label = vprof::kNoLabel) {
    Thread(tid).interval_events.push_back(
        {sid, t, vprof::IntervalEventKind::kBegin, label});
    return *this;
  }

  TraceBuilder& End(vprof::ThreadId tid, vprof::IntervalId sid, vprof::TimeNs t) {
    Thread(tid).interval_events.push_back(
        {sid, t, vprof::IntervalEventKind::kEnd});
    return *this;
  }

  TraceBuilder& Exec(vprof::ThreadId tid, vprof::IntervalId sid, vprof::TimeNs ts,
                     vprof::TimeNs te) {
    vprof::Segment seg;
    seg.start = ts;
    seg.end = te;
    seg.sid = sid;
    seg.state = vprof::SegmentState::kExecuting;
    Thread(tid).segments.push_back(seg);
    return *this;
  }

  TraceBuilder& Blocked(vprof::ThreadId tid, vprof::IntervalId sid,
                        vprof::TimeNs ts, vprof::TimeNs te,
                        vprof::ThreadId waker = vprof::kNoThread,
                        vprof::TimeNs waker_time = -1) {
    vprof::Segment seg;
    seg.start = ts;
    seg.end = te;
    seg.sid = sid;
    seg.state = vprof::SegmentState::kBlocked;
    seg.waker_tid = waker;
    seg.waker_time = waker_time;
    Thread(tid).segments.push_back(seg);
    return *this;
  }

  TraceBuilder& QueueWait(vprof::ThreadId tid, vprof::IntervalId sid,
                          vprof::TimeNs ts, vprof::TimeNs te) {
    vprof::Segment seg;
    seg.start = ts;
    seg.end = te;
    seg.sid = sid;
    seg.state = vprof::SegmentState::kQueueWait;
    Thread(tid).segments.push_back(seg);
    return *this;
  }

  // Executing segment carrying a created-by edge (first segment of a task).
  TraceBuilder& ExecGenerated(vprof::ThreadId tid, vprof::IntervalId sid,
                              vprof::TimeNs ts, vprof::TimeNs te,
                              vprof::ThreadId producer, vprof::TimeNs enqueue_time) {
    vprof::Segment seg;
    seg.start = ts;
    seg.end = te;
    seg.sid = sid;
    seg.state = vprof::SegmentState::kExecuting;
    seg.generator_tid = producer;
    seg.generator_time = enqueue_time;
    Thread(tid).segments.push_back(seg);
    return *this;
  }

  // Adds an invocation; returns its index on the thread (for parent links).
  int Invoke(vprof::ThreadId tid, const std::string& func, vprof::TimeNs fs,
             vprof::TimeNs fe, int parent = -1,
             vprof::IntervalId sid = vprof::kNoInterval) {
    vprof::Invocation inv;
    inv.start = fs;
    inv.end = fe;
    inv.func = Func(func);
    inv.parent = parent;
    inv.sid = sid;
    auto& t = Thread(tid);
    t.invocations.push_back(inv);
    return static_cast<int>(t.invocations.size()) - 1;
  }

  vprof::Trace Build(vprof::TimeNs duration = 1000000) {
    trace_.duration = duration;
    trace_.function_names = vprof::AllFunctionNames();
    return trace_;
  }

 private:
  vprof::Trace trace_;
};

}  // namespace vprof_test

#endif  // TESTS_VPROF_TRACE_BUILDER_H_
