// google-benchmark micro-benchmarks for the building blocks whose costs the
// system-level experiments rest on: probe fast/slow paths, synchronization
// wrappers, statistics accumulators, and index operations. Run directly:
//   build/bench/micro_ops [--benchmark_filter=...]
#include <benchmark/benchmark.h>

#include "src/minidb/btree.h"
#include "src/statkit/covariance.h"
#include "src/statkit/distributions.h"
#include "src/statkit/p2_quantile.h"
#include "src/statkit/welford.h"
#include "src/vprof/probe.h"
#include "src/vprof/sync.h"
#include "src/vprof/task_queue.h"

namespace {

// --- probes -----------------------------------------------------------------

void BM_ProbeTracingOff(benchmark::State& state) {
  const vprof::FuncId fid = vprof::RegisterFunction("micro_probe_off");
  for (auto _ : state) {
    vprof::ScopedProbe probe(fid);
    benchmark::DoNotOptimize(&probe);
  }
}
BENCHMARK(BM_ProbeTracingOff);

void BM_ProbeDisabledFunction(benchmark::State& state) {
  const vprof::FuncId fid = vprof::RegisterFunction("micro_probe_disabled");
  vprof::DisableAllFunctions();
  vprof::StartTracing();
  for (auto _ : state) {
    vprof::ScopedProbe probe(fid);
    benchmark::DoNotOptimize(&probe);
  }
  vprof::StopTracing();
}
BENCHMARK(BM_ProbeDisabledFunction);

void BM_ProbeEnabledRecording(benchmark::State& state) {
  const vprof::FuncId fid = vprof::RegisterFunction("micro_probe_enabled");
  vprof::DisableAllFunctions();
  vprof::SetFunctionEnabled(fid, true);
  vprof::StartTracing();
  for (auto _ : state) {
    vprof::ScopedProbe probe(fid);
    benchmark::DoNotOptimize(&probe);
  }
  vprof::StopTracing();
  vprof::DisableAllFunctions();
}
BENCHMARK(BM_ProbeEnabledRecording);

void BM_ProbeFullTracerPath(benchmark::State& state) {
  const vprof::FuncId fid = vprof::RegisterFunction("micro_probe_dtrace");
  vprof::EnableFullTrace(true);
  vprof::StartTracing();
  for (auto _ : state) {
    vprof::ScopedProbe probe(fid);
    benchmark::DoNotOptimize(&probe);
  }
  vprof::StopTracing();
  vprof::EnableFullTrace(false);
}
BENCHMARK(BM_ProbeFullTracerPath);

// --- synchronization wrappers -------------------------------------------------

void BM_MutexUncontended(benchmark::State& state) {
  vprof::Mutex mu;
  for (auto _ : state) {
    std::lock_guard<vprof::Mutex> lock(mu);
    benchmark::DoNotOptimize(&mu);
  }
}
BENCHMARK(BM_MutexUncontended);

void BM_TaskQueuePushPop(benchmark::State& state) {
  vprof::TaskQueue<int> queue;
  for (auto _ : state) {
    queue.Push(1);
    benchmark::DoNotOptimize(queue.TryPop());
  }
}
BENCHMARK(BM_TaskQueuePushPop);

// --- statistics ---------------------------------------------------------------

void BM_WelfordAdd(benchmark::State& state) {
  statkit::StreamingMoments moments;
  double x = 0.0;
  for (auto _ : state) {
    moments.Add(x += 1.0);
  }
  benchmark::DoNotOptimize(moments.variance());
}
BENCHMARK(BM_WelfordAdd);

void BM_CovarianceMatrixAdd(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  statkit::CovarianceMatrix matrix(n);
  std::vector<double> row(n, 1.0);
  for (auto _ : state) {
    row[0] += 1.0;
    matrix.Add(row);
  }
  benchmark::DoNotOptimize(matrix.VarianceOfSum());
}
BENCHMARK(BM_CovarianceMatrixAdd)->Arg(4)->Arg(16)->Arg(64);

void BM_P2QuantileAdd(benchmark::State& state) {
  statkit::P2Quantile q(0.99);
  statkit::Rng rng(1);
  for (auto _ : state) {
    q.Add(rng.NextDouble());
  }
  benchmark::DoNotOptimize(q.Value());
}
BENCHMARK(BM_P2QuantileAdd);

void BM_ZipfSample(benchmark::State& state) {
  statkit::ZipfGenerator zipf(static_cast<uint64_t>(state.range(0)), 0.99);
  statkit::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(100000);

// --- index --------------------------------------------------------------------

void BM_BTreeSearch(benchmark::State& state) {
  minidb::BTree tree(64);
  const int64_t n = state.range(0);
  for (int64_t i = 0; i < n; ++i) {
    tree.Insert(i, static_cast<uint64_t>(i));
  }
  statkit::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Search(rng.NextInRange(0, n - 1)));
  }
}
BENCHMARK(BM_BTreeSearch)->Arg(1000)->Arg(100000);

void BM_BTreeInsert(benchmark::State& state) {
  minidb::BTree tree(64);
  int64_t key = 0;
  for (auto _ : state) {
    tree.Insert(key++, 1);
  }
  benchmark::DoNotOptimize(tree.Size());
}
BENCHMARK(BM_BTreeInsert);

}  // namespace

BENCHMARK_MAIN();
