// Reproduces the paper's Section 4.4 specificity ablation: compare the
// linear, quadratic (default), and cubic specificity functions in factor
// selection. The paper found that the linear weight under-ranks deep
// functions (missing a factor contributing 18.2% in an early iteration)
// while cubic selects exactly what quadratic selects.
#include "bench/common.h"

namespace {

int RankOf(const std::vector<vprof::Factor>& factors,
           const std::vector<std::string>& names, const std::string& label) {
  int rank = 1;
  for (const auto& factor : factors) {
    if (factor.Label(names) == label) {
      return rank;
    }
    ++rank;
  }
  return -1;
}

void PrintTop(const char* title, const std::vector<vprof::Factor>& factors,
              const std::vector<std::string>& names, size_t k) {
  std::printf("  %s\n", title);
  for (size_t i = 0; i < std::min(k, factors.size()); ++i) {
    std::printf("    %zu. %-46s contri=%5.1f%% score=%g\n", i + 1,
                factors[i].Label(names).c_str(),
                factors[i].contribution * 100.0, factors[i].score);
  }
}

}  // namespace

int main() {
  bench::PrintHeader("Section 4.4 ablation — specificity exponent");

  minidb::Engine engine(bench::MysqlMemoryResidentConfig());
  vprof::CallGraph graph;
  minidb::Engine::RegisterCallGraph(&graph);
  workload::TpccDriver driver(&engine, bench::TpccQuick(4, 400));
  driver.Run();

  // Profile once with the quadratic default to obtain the deep tree, then
  // re-rank the same variance tree under each specificity exponent.
  vprof::Profiler profiler("run_transaction", &graph, [&] { driver.Run(); });
  vprof::ProfileOptions options;
  options.top_k = 5;
  const vprof::ProfileResult result = profiler.Run(options);
  const vprof::VarianceAnalysis& analysis = *result.analysis;
  const vprof::FuncId root = vprof::RegisterFunction("run_transaction");

  const auto linear = vprof::AggregateFactors(analysis, graph, root,
                                              vprof::SpecificityKind::kLinear);
  const auto quadratic = vprof::AggregateFactors(
      analysis, graph, root, vprof::SpecificityKind::kQuadratic);
  const auto cubic = vprof::AggregateFactors(analysis, graph, root,
                                             vprof::SpecificityKind::kCubic);

  PrintTop("linear specificity:", linear, result.function_names, 5);
  PrintTop("quadratic specificity (default):", quadratic, result.function_names, 5);
  PrintTop("cubic specificity:", cubic, result.function_names, 5);

  const int deep_linear = RankOf(linear, result.function_names, "os_event_wait");
  const int deep_quad = RankOf(quadratic, result.function_names, "os_event_wait");
  const int deep_cubic = RankOf(cubic, result.function_names, "os_event_wait");
  std::printf("\n  rank of the deep culprit os_event_wait: linear=%d, "
              "quadratic=%d, cubic=%d\n",
              deep_linear, deep_quad, deep_cubic);
  // The linear pathology: the shallow, uninformative root function crowds
  // into the top-k (k=3 by default), displacing a deep factor — exactly how
  // the paper's linear run missed an 18.2% contributor.
  const int root_linear =
      RankOf(linear, result.function_names, "run_transaction");
  const int root_quad =
      RankOf(quadratic, result.function_names, "run_transaction");
  std::printf("  rank of the uninformative root run_transaction: linear=%d, "
              "quadratic=%d (higher is better)\n",
              root_linear, root_quad);
  std::printf("  paper: linear under-weights deep factors (missed an 18.2%% "
              "factor); cubic == quadratic selections.\n");

  // Verify the paper's "cubic yields exactly the same factors" claim on the
  // top-k selection.
  bool same = true;
  for (size_t i = 0; i < 3 && i < quadratic.size() && i < cubic.size(); ++i) {
    same &= quadratic[i].Label(result.function_names) ==
            cubic[i].Label(result.function_names);
  }
  std::printf("  top-3 under cubic identical to quadratic: %s\n",
              same ? "yes" : "no");
  return 0;
}
