# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for statkit_p2_quantile_test.
