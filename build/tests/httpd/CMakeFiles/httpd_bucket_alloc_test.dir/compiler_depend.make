# Empty compiler generated dependencies file for httpd_bucket_alloc_test.
# This may be replaced when dependencies are built.
