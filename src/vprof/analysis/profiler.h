// The iterative-refinement profiling driver (paper Section 3.3.4 and
// Algorithm 3) and the top-level VProfiler facade.
//
// Starting from the semantic-interval root function, each iteration:
//   1. instruments the current skeleton (all expanded functions plus their
//      static-call-graph children),
//   2. runs the caller-supplied workload under tracing,
//   3. extends the variance tree one level and selects the top-k factors,
//   4. expands the selected variance factors that the break-down policy
//      approves, and repeats until the selection is stable.
//
// The paper regenerates instrumented sources and recompiles between
// iterations; here the same selectivity is achieved by flipping per-function
// probe flags (see registry.h), so an iteration is just another run.
#ifndef SRC_VPROF_ANALYSIS_PROFILER_H_
#define SRC_VPROF_ANALYSIS_PROFILER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/vprof/analysis/call_graph.h"
#include "src/vprof/analysis/factor_selection.h"
#include "src/vprof/analysis/variance_tree.h"

namespace vprof {

struct ProfileOptions {
  int top_k = 3;                   // k in Algorithm 1
  double min_contribution = 0.01;  // d in Algorithm 1
  int max_iterations = 16;
  SpecificityKind specificity = SpecificityKind::kQuadratic;
  CriticalPathOptions path_options;

  // Stands in for the developer's "investigate further?" answer. Called for
  // each selected variance factor that could be expanded; return true to
  // instrument its children next iteration. Defaults to always-yes.
  std::function<bool(const Factor&)> should_expand;
};

struct ProfileResult {
  std::vector<Factor> factors;    // final top-k selection
  std::vector<Factor> all_factors;  // full ranking from the final iteration
  int runs = 0;                   // tracing runs performed (Table 3)
  int tree_height = 0;            // final variance tree height (Table 3)
  uint64_t tree_breadth = 0;      // final variance tree breadth (Table 3)
  double overall_mean_ns = 0.0;
  double overall_variance = 0.0;  // ns^2
  std::vector<double> latencies_ns;  // per-interval latencies, final run
  std::vector<std::string> instrumented;  // final instrumented set
  std::vector<std::string> function_names;
  std::shared_ptr<const VarianceAnalysis> analysis;  // final tree
  Trace trace;  // the final iteration's raw trace (for re-analysis, e.g.
                // per-label profiles or Chrome export)

  // Formatted factor table in the style of the paper's Tables 4/6/7.
  std::string Report() const;
};

class Profiler {
 public:
  // `root` is the function whose invocations span the semantic interval.
  // `workload` runs the system under test once; tracing is already active
  // when it is called.
  Profiler(std::string root_function, const CallGraph* graph,
           std::function<void()> workload);

  ProfileResult Run(const ProfileOptions& options = {});

 private:
  std::string root_name_;
  const CallGraph* graph_;
  std::function<void()> workload_;
};

}  // namespace vprof

#endif  // SRC_VPROF_ANALYSIS_PROFILER_H_
