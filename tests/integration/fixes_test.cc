// End-to-end regression: the fixes the paper derives from VProfiler's
// findings must improve (or at minimum not regress) the targeted latency
// statistics. Margins are generous because these are statistical runs on a
// shared machine.
#include <functional>

#include <gtest/gtest.h>

#include "src/httpd/server.h"
#include "src/minidb/engine.h"
#include "src/minipg/engine.h"
#include "src/statkit/summary.h"
#include "src/workload/ab.h"
#include "src/workload/tpcc.h"

namespace {

// These are statistical comparisons on a shared single-core machine: a rare
// unlucky run is expected. Each test's comparison is retried once; it fails
// only if both attempts fail.
bool CheckWithRetry(const std::function<bool()>& attempt) {
  return attempt() || attempt();
}

statkit::Summary RunMinidb(const minidb::EngineConfig& config, int threads,
                           int txns) {
  minidb::Engine engine(config);
  workload::TpccOptions options;
  options.threads = threads;
  options.transactions_per_thread = txns;
  workload::TpccDriver driver(&engine, options);
  workload::TpccOptions warm = options;
  warm.transactions_per_thread = 40;
  workload::TpccDriver(&engine, warm).Run();
  return statkit::Summarize(driver.Run().latencies_ns);
}

TEST(FixIntegration, VatsImprovesTailUnderHighContention) {
  minidb::EngineConfig fcfs = minidb::EngineConfig::MemoryResident();
  fcfs.warehouses = 2;
  minidb::EngineConfig vats = fcfs;
  vats.lock_scheduling = minidb::LockScheduling::kVats;
  EXPECT_TRUE(CheckWithRetry([&] {
    const statkit::Summary base = RunMinidb(fcfs, 16, 120);
    const statkit::Summary treated = RunMinidb(vats, 16, 120);
    // p99 must improve (small noise allowance); the mean must not blow up
    // (the paper requires fixes that do not trade mean for variance).
    return treated.p99 < base.p99 * 1.02 && treated.mean < base.mean * 1.30;
  }));
}

TEST(FixIntegration, LazyFlushImprovesMeanAndVariance) {
  minidb::EngineConfig eager = minidb::EngineConfig::MemoryResident();
  eager.warehouses = 2;
  minidb::EngineConfig lazy = eager;
  lazy.flush_policy = minidb::FlushPolicy::kLazyFlush;
  EXPECT_TRUE(CheckWithRetry([&] {
    const statkit::Summary base = RunMinidb(eager, 4, 250);
    const statkit::Summary treated = RunMinidb(lazy, 4, 250);
    return treated.mean < base.mean && treated.variance < base.variance;
  }));
}

TEST(FixIntegration, DistributedLoggingImprovesPostgres) {
  auto run = [](int units) {
    minipg::PgConfig config;
    config.wal_units = units;
    minipg::PgEngine engine(config);
    workload::TpccOptions options;
    options.threads = 4;
    options.transactions_per_thread = 400;
    workload::TpccDriver driver(nullptr, options);
    const auto result = driver.RunWith(
        [&engine](const minidb::TxnRequest& request) {
          return engine.Execute(request);
        },
        8);
    return statkit::Summarize(result.latencies_ns);
  };
  EXPECT_TRUE(CheckWithRetry([&] {
    const statkit::Summary base = run(1);
    const statkit::Summary treated = run(2);
    return treated.mean < base.mean * 1.02 &&
           treated.variance < base.variance * 1.05;
  }));
}

TEST(FixIntegration, BulkAllocationShrinksApacheVariance) {
  auto run = [](bool bulk) {
    httpd::HttpdConfig config;
    config.workers = 4;
    config.bulk_allocation = bulk;
    config.global_free_blocks = 8;
    httpd::HttpServer server(config);
    workload::AbOptions options;
    options.clients = 4;
    options.requests_per_client = 2500;
    workload::AbDriver driver(&server, options);
    const auto result = driver.Run();
    server.Shutdown();
    return statkit::Summarize(result.latencies_ns);
  };
  EXPECT_TRUE(CheckWithRetry([&] {
    const statkit::Summary base = run(false);
    const statkit::Summary treated = run(true);
    return treated.variance < base.variance * 0.8 && treated.mean < base.mean;
  }));
}

}  // namespace
