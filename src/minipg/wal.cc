#include "src/minipg/wal.h"

#include <algorithm>
#include <string>

#include "src/fault/failpoint.h"
#include "src/statkit/rng.h"
#include "src/vprof/probe.h"

namespace minipg {

namespace {
constexpr uint64_t kWalBlockBytes = 8192;
constexpr uint32_t kTornChecksumMask = 0xA5A5A5A5u;

// Backstop for the rare follower that sleeps through a whole round and its
// event reset; it wakes, re-checks flushed_lsn, and re-enlists.
constexpr int64_t kFollowerWaitNs = 50LL * 1000 * 1000;

constexpr const char kFpCrashBeforeWrite[] = "wal/crash_before_write";
constexpr const char kFpCrashAfterWrite[] = "wal/crash_after_write";
constexpr const char kFpCrashAfterFsync[] = "wal/crash_after_fsync";
// Kill mid group-commit batch: the trigger value (if set) is the byte offset
// into the batch that reached the device cache before the crash.
constexpr const char kFpCrashMidBatch[] = "wal/crash_mid_batch";

uint64_t RoundToBlocks(uint64_t bytes) {
  return ((bytes + kWalBlockBytes - 1) / kWalBlockBytes) * kWalBlockBytes;
}
}  // namespace

uint32_t WalRecordChecksum(uint64_t end_lsn, uint64_t bytes) {
  // FNV-1a over the two header fields.
  uint64_t h = 1469598103934665603ull;
  h = (h ^ end_lsn) * 1099511628211ull;
  h = (h ^ bytes) * 1099511628211ull;
  return static_cast<uint32_t>(h ^ (h >> 32));
}

WalUnit::WalUnit(const simio::DiskConfig& disk_config, CommitMode mode)
    : mode_(mode), disk_(disk_config) {}

uint64_t WalUnit::Insert(uint64_t bytes) {
  VPROF_FUNC("XLogInsert");
  std::lock_guard<std::mutex> lock(records_mu_);
  if (crashed_.load(std::memory_order_acquire) ||
      wedged_.load(std::memory_order_acquire) ||
      shutdown_.load(std::memory_order_acquire)) {
    return 0;
  }
  pending_bytes_ += bytes;
  const uint64_t end_lsn =
      next_lsn_.fetch_add(bytes, std::memory_order_acq_rel) + bytes - 1;
  buffer_records_.push_back(
      WalRecord{end_lsn, bytes, WalRecordChecksum(end_lsn, bytes)});
  stat_inserts_.fetch_add(1, std::memory_order_relaxed);
  return end_lsn;
}

bool WalUnit::AcquireOrWait(uint64_t lsn) {
  VPROF_FUNC("LWLockAcquireOrWait");
  uint64_t round;
  {
    std::lock_guard<vprof::Mutex> lock(mu_);
    if (crashed_.load(std::memory_order_acquire) ||
        wedged_.load(std::memory_order_acquire)) {
      return false;  // caller re-checks and observes the crash/wedge
    }
    if (flushed_lsn_.load(std::memory_order_acquire) >= lsn) {
      return false;  // became durable while we queued for the lock
    }
    if (!write_lock_held_) {
      write_lock_held_ = true;
      return true;
    }
    round = flush_round_;
  }
  // Someone is flushing: enlist as a follower of the in-flight round and
  // sleep until the leader finishes it (Postgres semantics — wake, then
  // re-check whether our LSN already became durable). The round-R event
  // stays set from round R's completion until round R+1 completes, so a
  // late-running follower still sees it.
  waiters_.fetch_add(1, std::memory_order_relaxed);
  stat_flush_waits_.fetch_add(1, std::memory_order_relaxed);
  flush_events_[round & 1].WaitFor(kFollowerWaitNs);
  waiters_.fetch_sub(1, std::memory_order_relaxed);
  return false;
}

bool WalUnit::AcquireExclusive() {
  VPROF_FUNC("LWLockAcquireOrWait");
  for (;;) {
    uint64_t round;
    {
      std::lock_guard<vprof::Mutex> lock(mu_);
      if (crashed_.load(std::memory_order_acquire) ||
          wedged_.load(std::memory_order_acquire)) {
        return false;
      }
      if (!write_lock_held_) {
        write_lock_held_ = true;
        return true;
      }
      round = flush_round_;
    }
    waiters_.fetch_add(1, std::memory_order_relaxed);
    stat_flush_waits_.fetch_add(1, std::memory_order_relaxed);
    flush_events_[round & 1].WaitFor(kFollowerWaitNs);
    waiters_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void WalUnit::ReleaseAndWake() {
  std::lock_guard<vprof::Mutex> lock(mu_);
  write_lock_held_ = false;
  // Finish the round: clean the next round's event before signalling this
  // one, so a follower enlisting in round R+1 starts with a clear event.
  const uint64_t done = flush_round_++;
  flush_events_[(done + 1) & 1].Reset();
  flush_events_[done & 1].Set();
}

void WalUnit::AppendBatchToDevice(const std::vector<WalRecord>& batch,
                                  uint64_t intact_bytes) {
  // Records wholly within the transferred prefix land intact; the record
  // crossing the tear point lands with a bad checksum; anything beyond it
  // never reached the device.
  uint64_t offset = 0;
  for (const WalRecord& rec : batch) {
    if (offset + rec.bytes <= intact_bytes) {
      device_records_.push_back(rec);
    } else if (offset < intact_bytes) {
      WalRecord torn = rec;
      torn.checksum ^= kTornChecksumMask;
      device_records_.push_back(torn);
      break;
    } else {
      break;
    }
    offset += rec.bytes;
  }
}

WalStatus WalUnit::WriteAndSync() {
  // Called with the write lock held: flushers are serialized, so device
  // records land in LSN order and the durable prefix is well defined.
  if (wedged_.load(std::memory_order_acquire)) {
    return WalStatus::kWedged;
  }
  std::vector<WalRecord> batch;
  uint64_t bytes = 0;
  {
    std::lock_guard<std::mutex> lock(records_mu_);
    batch.swap(buffer_records_);
    bytes = pending_bytes_;
    pending_bytes_ = 0;
  }
  const uint64_t target = batch.empty()
                              ? flushed_lsn_.load(std::memory_order_acquire)
                              : batch.back().end_lsn;

  auto restore_batch = [&] {
    std::lock_guard<std::mutex> lock(records_mu_);
    buffer_records_.insert(buffer_records_.begin(), batch.begin(), batch.end());
    pending_bytes_ += bytes;
  };

  if (fault::Triggered(kFpCrashBeforeWrite)) [[unlikely]] {
    restore_batch();  // dies in the buffer; Crash() accounts it as lost
    CrashInternal(crash_seed_.load(std::memory_order_relaxed));
    return WalStatus::kCrashed;
  }

  {
    VPROF_FUNC("issue_xlog_fsync");
    if (bytes > 0) {
      const simio::IoResult w = disk_.Write(RoundToBlocks(bytes));
      if (!w.ok()) {
        restore_batch();
        stat_io_errors_.fetch_add(1, std::memory_order_relaxed);
        return WalStatus::kIoError;
      }
      uint64_t mid = fault::Trigger::kNoValue;
      const bool mid_crash = fault::TriggeredValue(kFpCrashMidBatch, &mid);
      {
        std::lock_guard<std::mutex> lock(device_mu_);
        if (crashed_.load(std::memory_order_acquire)) {
          // Crashed mid-write: the batch vanished with the device cache.
          crash_lost_records_ += batch.size();
          return WalStatus::kCrashed;
        }
        if (mid_crash && mid != fault::Trigger::kNoValue) [[unlikely]] {
          // Killed mid-batch at a chosen byte offset; only that prefix of
          // the batch reached the device cache.
          AppendBatchToDevice(batch, std::min<uint64_t>(mid, bytes));
        } else {
          AppendBatchToDevice(batch, std::min<uint64_t>(w.bytes, bytes));
        }
      }
      if (mid_crash) [[unlikely]] {
        CrashInternal(crash_seed_.load(std::memory_order_relaxed));
        return WalStatus::kCrashed;
      }
      stat_batched_records_.fetch_add(batch.size(),
                                      std::memory_order_relaxed);
    }
    if (fault::Triggered(kFpCrashAfterWrite)) [[unlikely]] {
      CrashInternal(crash_seed_.load(std::memory_order_relaxed));
      return WalStatus::kCrashed;
    }
    const simio::IoResult s = disk_.Fsync();
    if (!s.ok()) {
      // fsyncgate: the failed fsync dropped the device cache, taking the
      // whole unsynced window with it. Wedge the unit — were it to stay
      // open, the next successful fsync would silently ack these records.
      {
        std::lock_guard<std::mutex> lock(device_mu_);
        if (crashed_.load(std::memory_order_acquire)) {
          return WalStatus::kCrashed;
        }
        const size_t dropped = device_records_.size() - durable_records_;
        device_records_.resize(durable_records_);
        crash_lost_records_ += dropped;
      }
      wedged_.store(true, std::memory_order_release);
      stat_io_errors_.fetch_add(1, std::memory_order_relaxed);
      stat_wedges_.fetch_add(1, std::memory_order_relaxed);
      // Wake sleeping backends so they observe the wedge (the leader's own
      // ReleaseAndWake covers the in-flight round).
      flush_events_[0].Set();
      flush_events_[1].Set();
      return WalStatus::kWedged;
    }
  }
  {
    std::lock_guard<std::mutex> lock(device_mu_);
    if (crashed_.load(std::memory_order_acquire)) {
      return WalStatus::kCrashed;
    }
    durable_records_ = device_records_.size();
  }
  flushed_lsn_.store(target, std::memory_order_release);

  if (fault::Triggered(kFpCrashAfterFsync)) [[unlikely]] {
    // The batch is already durable; the caller just never hears the ack.
    CrashInternal(crash_seed_.load(std::memory_order_relaxed));
    return WalStatus::kCrashed;
  }
  stat_flushes_performed_.fetch_add(1, std::memory_order_relaxed);
  return WalStatus::kOk;
}

WalStatus WalUnit::GroupFlush(uint64_t lsn) {
  while (flushed_lsn_.load(std::memory_order_acquire) < lsn) {
    if (crashed_.load(std::memory_order_acquire)) {
      return WalStatus::kCrashed;
    }
    if (wedged_.load(std::memory_order_acquire)) {
      return WalStatus::kWedged;
    }
    if (lsn >= next_lsn_.load(std::memory_order_acquire)) {
      // No such record: it was reserved before a crash and lost. The caller
      // must treat the transaction as failed.
      return WalStatus::kCrashed;
    }
    if (!AcquireOrWait(lsn)) {
      continue;  // re-check the flushed position
    }
    // We are the leader: write out everything inserted so far.
    const WalStatus status = WriteAndSync();
    ReleaseAndWake();
    if (status != WalStatus::kOk) {
      return status;
    }
  }
  return WalStatus::kOk;
}

WalStatus WalUnit::ExclusiveFlush(uint64_t lsn) {
  // Pre-scale-out baseline: one write+fsync per commit, fully serialized on
  // the write lock — no follower fast-path even when another backend's
  // flush already covered our LSN.
  do {
    if (crashed_.load(std::memory_order_acquire)) {
      return WalStatus::kCrashed;
    }
    if (wedged_.load(std::memory_order_acquire)) {
      return WalStatus::kWedged;
    }
    if (lsn >= next_lsn_.load(std::memory_order_acquire)) {
      return WalStatus::kCrashed;
    }
    if (!AcquireExclusive()) {
      return wedged_.load(std::memory_order_acquire) ? WalStatus::kWedged
                                                     : WalStatus::kCrashed;
    }
    const WalStatus status = WriteAndSync();
    ReleaseAndWake();
    if (status != WalStatus::kOk) {
      return status;
    }
  } while (flushed_lsn_.load(std::memory_order_acquire) < lsn);
  return WalStatus::kOk;
}

WalStatus WalUnit::Flush(uint64_t lsn) {
  VPROF_FUNC("XLogFlush");
  stat_flush_calls_.fetch_add(1, std::memory_order_relaxed);
  if (shutdown_.load(std::memory_order_acquire)) {
    // New flushes are refused; backends already inside drain normally.
    return WalStatus::kShutdown;
  }
  return mode_ == CommitMode::kGroupCommit ? GroupFlush(lsn)
                                           : ExclusiveFlush(lsn);
}

void WalUnit::Crash(uint64_t seed) {
  if (crashed_.load(std::memory_order_acquire)) {
    return;
  }
  CrashInternal(seed);
}

void WalUnit::CrashInternal(uint64_t seed) {
  uint64_t lost = 0;
  {
    std::lock_guard<std::mutex> lock(records_mu_);
    crashed_.store(true, std::memory_order_release);
    lost = buffer_records_.size();
    buffer_records_.clear();
    pending_bytes_ = 0;
  }
  {
    std::lock_guard<std::mutex> lock(device_mu_);
    const size_t at_risk = device_records_.size() - durable_records_;
    if (at_risk > 0) {
      statkit::Rng rng(seed);
      const uint64_t keep = rng.NextBelow(at_risk + 1);
      if (keep < at_risk) {
        // Tear to a definitively-bad checksum (not an XOR toggle): the
        // record may already be torn by a short batch write, and toggling
        // twice would resurrect it.
        WalRecord& torn = device_records_[durable_records_ + keep];
        torn.checksum =
            WalRecordChecksum(torn.end_lsn, torn.bytes) ^ kTornChecksumMask;
        lost += at_risk - keep - 1;
        device_records_.resize(durable_records_ + keep + 1);
      }
    }
    crash_lost_records_ += lost;
  }
  stat_crashes_.fetch_add(1, std::memory_order_relaxed);
  // Wake backends sleeping in AcquireOrWait/AcquireExclusive — both round
  // parities — so they observe the crash instead of timing out.
  flush_events_[0].Set();
  flush_events_[1].Set();
}

WalRecoveryResult WalUnit::Recover() {
  WalRecoveryResult result;
  if (!crashed_.load(std::memory_order_acquire) &&
      !wedged_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(device_mu_);
    result.recovered_lsn = flushed_lsn_.load(std::memory_order_acquire);
    result.records_recovered = device_records_.size();
    return result;
  }
  {
    std::lock_guard<std::mutex> lock(device_mu_);
    size_t good = 0;
    for (const WalRecord& rec : device_records_) {
      if (rec.checksum != WalRecordChecksum(rec.end_lsn, rec.bytes)) {
        break;  // torn tail starts here
      }
      result.recovered_lsn = rec.end_lsn;
      ++good;
    }
    result.torn_truncated = device_records_.size() - good;
    result.records_recovered = good;
    result.records_lost = crash_lost_records_ + result.torn_truncated;
    device_records_.resize(good);
    durable_records_ = good;
    crash_lost_records_ = 0;
  }
  {
    std::lock_guard<std::mutex> lock(records_mu_);
    // A wedged (not crashed) unit still holds never-committable inserts in
    // its buffer; they die here.
    result.records_lost += buffer_records_.size();
    buffer_records_.clear();
    pending_bytes_ = 0;
    next_lsn_.store(result.recovered_lsn + 1, std::memory_order_release);
    flushed_lsn_.store(result.recovered_lsn, std::memory_order_release);
  }
  {
    std::lock_guard<vprof::Mutex> lock(mu_);
    write_lock_held_ = false;
  }
  // No backends are in flight while crashed/wedged (Flush bails out), so
  // the events can be cleared before the unit re-opens.
  flush_events_[0].Reset();
  flush_events_[1].Reset();
  wedged_.store(false, std::memory_order_release);
  crashed_.store(false, std::memory_order_release);
  return result;
}

void WalUnit::Shutdown() {
  bool expected = false;
  if (!shutdown_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    return;
  }
  // One final write+fsync drains the pending batch so every record inserted
  // before the gate went up becomes durable.
  if (!crashed_.load(std::memory_order_acquire) &&
      !wedged_.load(std::memory_order_acquire)) {
    if (AcquireExclusive()) {
      WriteAndSync();
      ReleaseAndWake();
    }
  }
  // Wake any remaining sleepers so they re-check and observe their ack or
  // the shutdown.
  flush_events_[0].Set();
  flush_events_[1].Set();
}

size_t WalUnit::device_record_count() const {
  std::lock_guard<std::mutex> lock(device_mu_);
  return device_records_.size();
}

size_t WalUnit::durable_record_count() const {
  std::lock_guard<std::mutex> lock(device_mu_);
  return durable_records_;
}

WalStats WalUnit::stats() const {
  WalStats stats;
  stats.inserts = stat_inserts_.load(std::memory_order_relaxed);
  stats.flush_calls = stat_flush_calls_.load(std::memory_order_relaxed);
  stats.flushes_performed =
      stat_flushes_performed_.load(std::memory_order_relaxed);
  stats.flush_waits = stat_flush_waits_.load(std::memory_order_relaxed);
  stats.batched_records =
      stat_batched_records_.load(std::memory_order_relaxed);
  stats.io_errors = stat_io_errors_.load(std::memory_order_relaxed);
  stats.wedges = stat_wedges_.load(std::memory_order_relaxed);
  stats.crashes = stat_crashes_.load(std::memory_order_relaxed);
  return stats;
}

Wal::Wal(int units, const simio::DiskConfig& disk_config, CommitMode mode) {
  for (int i = 0; i < std::max(1, units); ++i) {
    simio::DiskConfig config = disk_config;
    config.seed = disk_config.seed + static_cast<uint64_t>(i) * 7919;
    config.fault_scope = disk_config.fault_scope + "." + std::to_string(i);
    units_.push_back(std::make_unique<WalUnit>(config, mode));
  }
}

Wal::Position Wal::Insert(uint64_t bytes) {
  int best = 0;
  int best_waiters = units_[0]->waiters();
  for (int i = 1; i < unit_count(); ++i) {
    const int w = units_[static_cast<size_t>(i)]->waiters();
    if (w < best_waiters) {
      best = i;
      best_waiters = w;
    }
  }
  return InsertAt(best, bytes);
}

Wal::Position Wal::InsertAt(int unit, uint64_t bytes) {
  Position position;
  position.unit = unit;
  position.lsn = units_[static_cast<size_t>(unit)]->Insert(bytes);
  return position;
}

WalStatus Wal::Flush(const Position& position) {
  return units_[static_cast<size_t>(position.unit)]->Flush(position.lsn);
}

void Wal::CrashAll(uint64_t seed) {
  for (int i = 0; i < unit_count(); ++i) {
    units_[static_cast<size_t>(i)]->Crash(seed + static_cast<uint64_t>(i));
  }
}

std::vector<WalRecoveryResult> Wal::RecoverAll() {
  std::vector<WalRecoveryResult> results;
  results.reserve(units_.size());
  for (auto& unit : units_) {
    results.push_back(unit->Recover());
  }
  return results;
}

void Wal::Shutdown() {
  for (auto& unit : units_) {
    unit->Shutdown();
  }
}

}  // namespace minipg
