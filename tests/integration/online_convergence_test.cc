// End-to-end for the online profiling service: run TPC-C on minidb under the
// epoch harvester for a bounded number of epochs and require the refinement
// controller — starting from top-level probes only — to converge to the same
// top variance factors, with comparable variance shares, as the offline
// iterative profiler (the paper's Table 4 workflow).
#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/minidb/engine.h"
#include "src/vprof/analysis/factor_selection.h"
#include "src/vprof/analysis/profiler.h"
#include "src/vprof/service/vprofd.h"
#include "src/workload/tpcc.h"

namespace {

#if defined(__SANITIZE_THREAD__)
constexpr int kWorkloadThreads = 2;
constexpr int kOfflineTxns = 80;
constexpr uint64_t kMaxEpochs = 14;
constexpr vprof::TimeNs kEpochNs = 60'000'000;  // 60 ms
#else
constexpr int kWorkloadThreads = 4;
constexpr int kOfflineTxns = 150;
constexpr uint64_t kMaxEpochs = 30;
constexpr vprof::TimeNs kEpochNs = 80'000'000;  // 80 ms
#endif

// Labels of the top-k non-covariance factors, in ranking order.
std::vector<std::string> TopVarianceLabels(
    const std::vector<vprof::Factor>& factors,
    const std::vector<std::string>& names, size_t k) {
  std::vector<std::string> top;
  for (const vprof::Factor& factor : factors) {
    if (factor.func_b != vprof::kInvalidFunc) {
      continue;  // compare single-function factors across the two modes
    }
    top.push_back(factor.Label(names));
    if (top.size() == k) {
      break;
    }
  }
  return top;
}

double ContributionOf(const std::vector<vprof::Factor>& factors,
                      const std::vector<std::string>& names,
                      const std::string& label) {
  for (const vprof::Factor& factor : factors) {
    if (factor.func_b == vprof::kInvalidFunc &&
        factor.Label(names) == label) {
      return factor.contribution;
    }
  }
  return 0.0;
}

TEST(OnlineConvergenceIntegration, ControllerMatchesOfflineTopFactors) {
  minidb::EngineConfig config = minidb::EngineConfig::MemoryResident();
  config.warehouses = 2;
  minidb::Engine engine(config);
  auto graph = std::make_shared<vprof::CallGraph>();
  minidb::Engine::RegisterCallGraph(graph.get());

  workload::TpccOptions workload_options;
  workload_options.threads = kWorkloadThreads;
  workload_options.transactions_per_thread = kOfflineTxns;
  workload::TpccDriver driver(&engine, workload_options);
  driver.Run();  // warm-up

  // Offline reference: the iterative profiler with human-free refinement.
  vprof::Profiler profiler("run_transaction", graph.get(),
                           [&] { driver.Run(); });
  vprof::ProfileOptions profile_options;
  profile_options.top_k = 3;
  const vprof::ProfileResult offline = profiler.Run(profile_options);
  ASSERT_GT(offline.overall_variance, 0.0);

  // Online: same engine and workload running continuously under vprofd.
  std::atomic<bool> stop_workload{false};
  std::thread workload_thread([&] { driver.RunUntil(stop_workload); });

  vprof::VprofdOptions options;
  options.root_function = "run_transaction";
  options.graph = graph;
  options.epoch_ns = kEpochNs;
  options.controller.top_k = 3;
  vprof::Vprofd daemon(std::move(options));
  daemon.Start();
  while (daemon.epochs() < kMaxEpochs && !daemon.Converged(3)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  daemon.Stop();
  stop_workload.store(true, std::memory_order_release);
  workload_thread.join();

  const vprof::OnlineTreeSnapshot snapshot = daemon.Snapshot();
  const vprof::ControllerStatus status = daemon.controller_status();
  ASSERT_GT(snapshot.weight, 0.0);
  ASSERT_FALSE(status.selection.empty());
  // The controller must actually have descended below the top level.
  EXPECT_GE(status.expansions, 1u);

  const std::vector<std::string> online_top =
      TopVarianceLabels(status.selection, snapshot.function_names, 3);
  const std::vector<std::string> offline_top =
      TopVarianceLabels(offline.all_factors, offline.function_names, 3);
  ASSERT_FALSE(online_top.empty());
  ASSERT_FALSE(offline_top.empty());

  // Top-3 factor sets must overlap in at least two entries.
  int overlap = 0;
  const std::set<std::string> offline_set(offline_top.begin(),
                                          offline_top.end());
  for (const std::string& label : online_top) {
    overlap += offline_set.count(label) ? 1 : 0;
  }
  EXPECT_GE(overlap, 2) << "online top-3 diverged from offline";

  // Shared factors must agree on variance share within a loose tolerance
  // (the online window decays and the workload keeps mutating state).
  for (const std::string& label : online_top) {
    if (!offline_set.count(label)) {
      continue;
    }
    const double online_share =
        ContributionOf(status.selection, snapshot.function_names, label);
    const double offline_share =
        ContributionOf(offline.all_factors, offline.function_names, label);
    EXPECT_NEAR(online_share, offline_share, 0.35)
        << "share mismatch for " << label;
  }
}

}  // namespace
