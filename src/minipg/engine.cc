#include "src/minipg/engine.h"

#include "src/vprof/probe.h"
#include "src/vprof/runtime.h"

namespace minipg {

namespace {

// Object-id namespaces for predicate locks, per logical table.
constexpr uint64_t kDistrictBase = 1ull << 40;
constexpr uint64_t kCustomerBase = 2ull << 40;
constexpr uint64_t kStockBase = 3ull << 40;
constexpr uint64_t kOrdersBase = 4ull << 40;

}  // namespace

PgEngine::PgEngine(const PgConfig& config)
    : config_(config),
      wal_(config.wal_units, config.wal_disk, config.commit_mode),
      executor_(&predicate_locks_, config.serializable) {}

std::unique_ptr<PlanNode> PgEngine::BuildPlan(const minidb::TxnRequest& request,
                                              statkit::Rng& rng) const {
  using minidb::TxnType;
  switch (request.type) {
    case TxnType::kNewOrder: {
      // ModifyTable over the order lines, fed by an index scan per item,
      // plus the district update.
      auto modify = PlanNode::Make(PlanNodeType::kModifyTable,
                                   static_cast<int64_t>(request.items.size()) + 1,
                                   kOrdersBase);
      modify->children.push_back(
          PlanNode::Make(PlanNodeType::kIndexScan, 1, kDistrictBase));
      for (size_t i = 0; i < request.items.size(); ++i) {
        modify->children.push_back(
            PlanNode::Make(PlanNodeType::kIndexScan, 1, kStockBase));
      }
      return modify;
    }
    case TxnType::kPayment: {
      auto modify =
          PlanNode::Make(PlanNodeType::kModifyTable, 3, kCustomerBase);
      modify->children.push_back(
          PlanNode::Make(PlanNodeType::kIndexScan, 1, kDistrictBase));
      modify->children.push_back(
          PlanNode::Make(PlanNodeType::kIndexScan, 1, kCustomerBase));
      return modify;
    }
    case TxnType::kOrderStatus: {
      auto agg = PlanNode::Make(PlanNodeType::kAgg, 1, kOrdersBase);
      auto join = PlanNode::Make(PlanNodeType::kNestLoop, 0, kOrdersBase);
      join->children.push_back(
          PlanNode::Make(PlanNodeType::kIndexScan, 1, kCustomerBase));
      join->children.push_back(PlanNode::Make(
          PlanNodeType::kSeqScan, rng.NextInRange(20, 120), kOrdersBase));
      agg->children.push_back(std::move(join));
      return agg;
    }
    case TxnType::kDelivery: {
      auto modify = PlanNode::Make(PlanNodeType::kModifyTable, 2, kOrdersBase);
      modify->children.push_back(
          PlanNode::Make(PlanNodeType::kIndexScan, 2, kOrdersBase));
      return modify;
    }
    case TxnType::kStockLevel: {
      auto agg = PlanNode::Make(PlanNodeType::kAgg, 1, kStockBase);
      agg->children.push_back(PlanNode::Make(
          PlanNodeType::kSeqScan, rng.NextInRange(60, 300), kStockBase));
      return agg;
    }
  }
  return PlanNode::Make(PlanNodeType::kSeqScan, 1, kStockBase);
}

bool PgEngine::CommitTransaction(ExecContext* context) {
  VPROF_FUNC("CommitTransaction");
  if (context->wal_bytes > 0) {
    // Insert a commit record and flush up to it. A transaction logs to one
    // unit, chosen by current waiter counts (distributed logging).
    const Wal::Position position = wal_.Insert(context->wal_bytes + 32);
    if (position.lsn == 0 || wal_.Flush(position) != WalStatus::kOk) {
      // Crashed or erroring WAL: the transaction is not durable.
      aborted_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  if (config_.serializable) {
    predicate_locks_.ReleaseAll(context->txn_id, context->read_objects);
  }
  committed_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool PgEngine::Execute(const minidb::TxnRequest& request) {
  VPROF_FUNC("exec_simple_query");
  if (stopped_.load(std::memory_order_acquire)) {
    return false;
  }
  // Join an enclosing semantic interval (multi-tier caller) if one exists.
  const bool enclosed = vprof::CurrentIntervalId() != vprof::kNoInterval;
  const vprof::IntervalId sid =
      enclosed ? vprof::kNoInterval : vprof::BeginInterval();

  ExecContext context;
  context.txn_id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  statkit::Rng rng(config_.seed * 2654435761ull + context.txn_id);
  context.rng = &rng;

  const std::unique_ptr<PlanNode> plan = BuildPlan(request, rng);
  executor_.ExecProcNode(*plan, &context);
  const bool committed = CommitTransaction(&context);

  if (!enclosed) {
    vprof::EndInterval(sid);
  }
  return committed;
}

void PgEngine::Stop() {
  // Gate first so no new backend enters commit, then drain the WAL units;
  // backends already inside XLogFlush finish normally.
  stopped_.store(true, std::memory_order_release);
  wal_.Shutdown();
}

void PgEngine::RegisterCallGraph(vprof::CallGraph* graph) {
  graph->AddEdge("exec_simple_query", "ExecProcNode");
  graph->AddEdge("exec_simple_query", "CommitTransaction");
  graph->AddEdge("ExecProcNode", "ExecSeqScan");
  graph->AddEdge("ExecProcNode", "ExecIndexScan");
  graph->AddEdge("ExecProcNode", "ExecModifyTable");
  graph->AddEdge("ExecProcNode", "ExecNestLoop");
  graph->AddEdge("ExecProcNode", "ExecAgg");
  graph->AddEdge("ExecModifyTable", "ExecProcNode");
  graph->AddEdge("ExecNestLoop", "ExecProcNode");
  graph->AddEdge("ExecAgg", "ExecProcNode");
  graph->AddEdge("CommitTransaction", "XLogFlush");
  graph->AddEdge("CommitTransaction", "ReleasePredicateLocks");
  graph->AddEdge("XLogFlush", "LWLockAcquireOrWait");
  graph->AddEdge("XLogFlush", "issue_xlog_fsync");
}

std::unique_ptr<vprof::Vprofd> PgEngine::StartOnlineProfiler(
    vprof::VprofdOptions options) {
  if (options.root_function.empty()) {
    options.root_function = "exec_simple_query";
  }
  if (options.graph == nullptr) {
    auto graph = std::make_shared<vprof::CallGraph>();
    RegisterCallGraph(graph.get());
    options.graph = std::move(graph);
  }
  auto daemon = std::make_unique<vprof::Vprofd>(std::move(options));
  daemon->Start();
  return daemon;
}

std::vector<vprof::AppGauge> PgEngine::ScaleGauges() {
  std::vector<vprof::AppGauge> gauges;
  for (int i = 0; i < wal_.unit_count(); ++i) {
    const WalStats s = wal_.unit(i).stats();
    const std::string prefix = "minipg.wal.unit" + std::to_string(i);
    gauges.push_back(
        {prefix + ".flush_waits", static_cast<double>(s.flush_waits)});
    gauges.push_back(
        {prefix + ".batch_records_avg",
         s.flushes_performed > 0
             ? static_cast<double>(s.batched_records) /
                   static_cast<double>(s.flushes_performed)
             : 0.0});
  }
  return gauges;
}

std::vector<vprof::AppGauge> PgEngine::RobustnessGauges() {
  uint64_t io_errors = 0;
  uint64_t wedges = 0;
  uint64_t crashes = 0;
  for (int i = 0; i < wal_.unit_count(); ++i) {
    const WalStats s = wal_.unit(i).stats();
    io_errors += s.io_errors;
    wedges += s.wedges;
    crashes += s.crashes;
  }
  std::vector<vprof::AppGauge> gauges;
  gauges.push_back({"minipg.wal.io_errors", static_cast<double>(io_errors)});
  gauges.push_back({"minipg.wal.wedges", static_cast<double>(wedges)});
  gauges.push_back({"minipg.wal.crashes", static_cast<double>(crashes)});
  gauges.push_back(
      {"minipg.txn.committed", static_cast<double>(committed_count())});
  gauges.push_back(
      {"minipg.txn.aborted", static_cast<double>(aborted_count())});
  return gauges;
}

}  // namespace minipg
