// Reproduces paper Table 4: key sources of transaction latency variance in
// MySQL (minidb) under the memory-resident ("128-WH") and memory-constrained
// ("2-WH") TPC-C regimes, found via VProfiler's iterative refinement.
//
// Paper rows:
//   128-WH  os_event_wait [A]             37.5%
//   128-WH  os_event_wait [B]             21.7%
//   128-WH  row_ins_clust_index_entry_low  9.3%
//   2-WH    buf_pool_mutex_enter          32.92%
//   2-WH    btr_cur_search_to_nth_level    8.3%
//   2-WH    fil_flush                      5%
#include "bench/common.h"

namespace {

void ProfileConfig(const char* label, const minidb::EngineConfig& config,
                   int threads, int txns_per_thread) {
  bench::PrintHeader(std::string("Table 4 — minidb variance sources, ") + label);

  minidb::Engine engine(config);
  vprof::CallGraph graph;
  minidb::Engine::RegisterCallGraph(&graph);

  workload::TpccOptions options = bench::TpccQuick(threads, txns_per_thread);
  workload::TpccDriver driver(&engine, options);
  driver.Run();  // warm-up: populate the buffer pool, stabilize contention

  vprof::Profiler profiler("run_transaction", &graph,
                           [&] { driver.Run(); });
  vprof::ProfileOptions profile_options;
  profile_options.top_k = 5;
  profile_options.min_contribution = 0.01;
  const vprof::ProfileResult result = profiler.Run(profile_options);

  bench::PrintTopFactors(result, 8);
  std::printf("  os_event_wait by call site (paper's [A]/[B] split):\n");
  bench::PrintFunctionCallSites(result, "os_event_wait");
  std::printf("  buf_pool_mutex_enter by call site:\n");
  bench::PrintFunctionCallSites(result, "buf_pool_mutex_enter");

  // Per-transaction-type view (interval labels): re-analyze the final
  // trace once per type. Read-only types show no commit-flush component.
  std::printf("  per transaction type (interval labels):\n");
  static const char* kTypeNames[] = {"NewOrder", "Payment", "OrderStatus",
                                     "Delivery", "StockLevel"};
  for (int type = 0; type < 5; ++type) {
    vprof::CriticalPathOptions only;
    only.filter_by_label = true;
    only.label_filter = static_cast<vprof::IntervalLabel>(type) + 1;
    const vprof::VarianceAnalysis per_type(result.trace, only);
    if (per_type.interval_count() == 0) {
      continue;
    }
    std::printf("    %-12s n=%5zu  mean=%7.3f ms  var=%9.4f ms^2\n",
                kTypeNames[type], per_type.interval_count(),
                per_type.overall_mean() / 1e6,
                per_type.overall_variance() / 1e12);
  }
}

}  // namespace

int main() {
  std::printf("Table 4 reproduction: dominant variance sources in minidb.\n"
              "Expected shape: lock waits (os_event_wait) dominate when memory-\n"
              "resident; buf_pool_mutex_enter rises under memory pressure.\n");

  ProfileConfig("memory-resident (paper 128-WH)",
                bench::MysqlMemoryResidentConfig(), 4, 400);
  std::printf("\n  paper: os_event_wait[A] 37.5%%, os_event_wait[B] 21.7%%, "
              "row_ins_clust_index_entry_low 9.3%%\n");

  ProfileConfig("memory-constrained (paper 2-WH)",
                bench::MysqlMemoryConstrainedConfig(), 4, 250);
  std::printf("\n  paper: buf_pool_mutex_enter 32.9%%, "
              "btr_cur_search_to_nth_level 8.3%%, fil_flush 5%%\n");
  return 0;
}
