#include "src/minidb/btree.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/statkit/rng.h"

namespace minidb {
namespace {

TEST(BTreeTest, EmptySearch) {
  BTree tree;
  EXPECT_FALSE(tree.Search(1).has_value());
  EXPECT_EQ(tree.Size(), 0u);
  EXPECT_EQ(tree.Height(), 1);
}

TEST(BTreeTest, InsertAndSearch) {
  BTree tree;
  EXPECT_TRUE(tree.Insert(5, 50));
  EXPECT_TRUE(tree.Insert(3, 30));
  EXPECT_TRUE(tree.Insert(8, 80));
  EXPECT_EQ(tree.Search(5), 50u);
  EXPECT_EQ(tree.Search(3), 30u);
  EXPECT_EQ(tree.Search(8), 80u);
  EXPECT_FALSE(tree.Search(4).has_value());
  EXPECT_EQ(tree.Size(), 3u);
}

TEST(BTreeTest, DuplicateInsertUpdatesValue) {
  BTree tree;
  EXPECT_TRUE(tree.Insert(1, 10));
  EXPECT_FALSE(tree.Insert(1, 11));  // update, not insert
  EXPECT_EQ(tree.Search(1), 11u);
  EXPECT_EQ(tree.Size(), 1u);
}

TEST(BTreeTest, EraseRemovesKey) {
  BTree tree;
  tree.Insert(1, 10);
  tree.Insert(2, 20);
  EXPECT_TRUE(tree.Erase(1));
  EXPECT_FALSE(tree.Search(1).has_value());
  EXPECT_EQ(tree.Search(2), 20u);
  EXPECT_FALSE(tree.Erase(1));
  EXPECT_EQ(tree.Size(), 1u);
}

TEST(BTreeTest, HeightGrowsLogarithmically) {
  BTree tree(8);
  for (int64_t i = 0; i < 10000; ++i) {
    tree.Insert(i, static_cast<uint64_t>(i));
  }
  EXPECT_GE(tree.Height(), 3);
  EXPECT_LE(tree.Height(), 10);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BTreeTest, RangeQuery) {
  BTree tree(8);
  for (int64_t i = 0; i < 100; i += 2) {  // even keys
    tree.Insert(i, static_cast<uint64_t>(i * 10));
  }
  const auto range = tree.Range(10, 20);
  ASSERT_EQ(range.size(), 6u);  // 10,12,14,16,18,20
  EXPECT_EQ(range.front().first, 10);
  EXPECT_EQ(range.back().first, 20);
  for (size_t i = 1; i < range.size(); ++i) {
    EXPECT_LT(range[i - 1].first, range[i].first);
  }
}

TEST(BTreeTest, RangeEmptyAndFull) {
  BTree tree(8);
  for (int64_t i = 0; i < 50; ++i) {
    tree.Insert(i, 0);
  }
  EXPECT_TRUE(tree.Range(100, 200).empty());
  EXPECT_EQ(tree.Range(0, 49).size(), 50u);
  EXPECT_EQ(tree.Range(-10, 1000).size(), 50u);
}

// Property sweep: random workloads across fanouts keep invariants and agree
// with a reference map.
class BTreeProperty : public ::testing::TestWithParam<int> {};

TEST_P(BTreeProperty, MatchesReferenceUnderRandomOps) {
  const int fanout = GetParam();
  BTree tree(fanout);
  std::vector<std::pair<int64_t, uint64_t>> reference;
  statkit::Rng rng(static_cast<uint64_t>(fanout) * 101 + 7);
  for (int op = 0; op < 5000; ++op) {
    const int64_t key = rng.NextInRange(0, 800);
    const auto it = std::find_if(reference.begin(), reference.end(),
                                 [&](const auto& kv) { return kv.first == key; });
    if (rng.NextBool(0.7)) {
      const uint64_t value = rng.Next();
      tree.Insert(key, value);
      if (it == reference.end()) {
        reference.emplace_back(key, value);
      } else {
        it->second = value;
      }
    } else {
      const bool erased = tree.Erase(key);
      EXPECT_EQ(erased, it != reference.end());
      if (it != reference.end()) {
        reference.erase(it);
      }
    }
  }
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.Size(), reference.size());
  for (const auto& [key, value] : reference) {
    const auto found = tree.Search(key);
    ASSERT_TRUE(found.has_value()) << "key " << key;
    EXPECT_EQ(*found, value);
  }
  // Range over everything matches the sorted reference.
  std::sort(reference.begin(), reference.end());
  const auto all = tree.Range(INT64_MIN + 1, INT64_MAX - 1);
  ASSERT_EQ(all.size(), reference.size());
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].first, reference[i].first);
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, BTreeProperty,
                         ::testing::Values(4, 5, 8, 16, 64, 128));

TEST(BTreeTest, SequentialAndReverseInsertionKeepInvariants) {
  BTree ascending(16);
  BTree descending(16);
  for (int64_t i = 0; i < 2000; ++i) {
    ascending.Insert(i, 1);
    descending.Insert(2000 - i, 1);
  }
  EXPECT_TRUE(ascending.CheckInvariants());
  EXPECT_TRUE(descending.CheckInvariants());
  EXPECT_EQ(ascending.Size(), 2000u);
  EXPECT_EQ(descending.Size(), 2000u);
}

}  // namespace
}  // namespace minidb
