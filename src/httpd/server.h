// Event-based static-file web server, the Apache HTTPD stand-in for the
// paper's Section 4.7 case study.
//
// A listener-side submission enqueues the request on a shared task queue
// (the semantic interval begins at submission); a pool worker dequeues it,
// executes the request path, and signals completion. Instrumented hierarchy:
//
//   process_request
//    |- ap_process_request_internal ----- apr_bucket_alloc
//    `- default_handler
//        |- apr_file_open -------------- apr_bucket_alloc
//        |- basic_http_header ---------- apr_bucket_alloc
//        `- ap_pass_brigade (recursive)
//            |- apr_bucket_alloc
//            `- core_output_filter
//   apr_bucket_alloc ------------------- apr_allocator_alloc
#ifndef SRC_HTTPD_SERVER_H_
#define SRC_HTTPD_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/httpd/bucket_alloc.h"
#include "src/httpd/filters.h"
#include "src/simio/disk.h"
#include "src/vprof/analysis/call_graph.h"
#include "src/vprof/service/vprofd.h"
#include "src/vprof/sync.h"
#include "src/vprof/task_queue.h"

namespace httpd {

struct HttpdConfig {
  int workers = 4;

  // The paper's fix: pre-allocate memory in large chunks (Section 4.7).
  bool bulk_allocation = false;

  // Initial global free-list size, in blocks. Small values create the
  // memory-pressure regime the paper observed.
  int global_free_blocks = 48;

  uint64_t file_count = 4;     // distinct static files served
  uint64_t page_bytes = 169;   // the paper's 169-byte static page
  int page_cache_files = 1024; // effectively everything stays cached

  // When > 0, a submission finding this many requests already queued is
  // rejected with 503 instead of deepening the backlog (load shedding).
  // 0 keeps the historical unbounded queue.
  int max_queue_depth = 0;

  simio::DiskConfig file_disk;

  // Distributed tier hook: invoked on the worker, inside process_request,
  // between request parsing and the handler — where stock httpd would call
  // out to its data tier. dist::BackendPool::Call goes here; the RPC's
  // rpc:call probe then nests under process_request in the variance tree.
  std::function<void(uint64_t file_id)> backend_call;
};

struct HttpdStats {
  uint64_t requests_served = 0;
  uint64_t requests_rejected = 0;  // shed with 503 at submission
  uint64_t system_allocs = 0;
};

// Submission outcome, named after the HTTP status the client would see.
enum class RequestStatus : uint8_t {
  kOk,                  // 200: executed by a worker
  kServiceUnavailable,  // 503: shed because the worker queue was full
};

class HttpServer {
 public:
  explicit HttpServer(const HttpdConfig& config);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Client-side entry point: begins a semantic interval, enqueues the
  // request, and blocks until a worker completes it — or sheds it with 503
  // when the queue is at max_queue_depth. Thread-safe.
  RequestStatus HandleRequestBlocking(uint64_t file_id);

  void Shutdown();

  static void RegisterCallGraph(vprof::CallGraph* graph);

  // Starts the always-on profiling service (vprofd) rooted at
  // "process_request"; see minidb::Engine::StartOnlineProfiler.
  static std::unique_ptr<vprof::Vprofd> StartOnlineProfiler(
      vprof::VprofdOptions options = {});

  HttpdStats stats() const;
  const HttpdConfig& config() const { return config_; }
  GlobalFreeList& global_free_list() { return global_list_; }

  // Profiled tids of the worker pool, for tier rosters (dist::SplitByTids).
  std::vector<vprof::ThreadId> WorkerTids() const;

 private:
  struct PendingRequest {
    vprof::IntervalId sid = vprof::kNoInterval;
    uint64_t file_id = 0;
    vprof::Event* done = nullptr;
  };

  void WorkerLoop();
  void ProcessRequest(const PendingRequest& request, BucketAllocator* allocator,
                      Filter* chain);

  HttpdConfig config_;
  simio::Disk file_disk_;
  GlobalFreeList global_list_;
  PageCache page_cache_;
  vprof::TaskQueue<PendingRequest> queue_;
  std::vector<std::thread> workers_;
  mutable std::mutex tids_mu_;
  std::vector<vprof::ThreadId> worker_tids_;
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> requests_rejected_{0};
  std::atomic<bool> shut_down_{false};
};

}  // namespace httpd

#endif  // SRC_HTTPD_SERVER_H_
