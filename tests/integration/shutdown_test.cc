// Graceful shutdown under load (ctest label `chaos`): Stop()/Shutdown()
// while committers are in flight loses no acknowledged commit and leaves no
// thread stuck on a flush-round event — the two failure modes the shutdown
// drain protects against.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/fault/failpoint.h"
#include "src/minidb/engine.h"
#include "src/minidb/redo_log.h"
#include "src/minipg/engine.h"
#include "src/minipg/wal.h"
#include "src/simio/disk.h"
#include "src/statkit/rng.h"
#include "src/workload/invariants.h"
#include "src/workload/tpcc.h"

namespace {

simio::DiskConfig FastDisk(const std::string& scope) {
  simio::DiskConfig config;
  config.read_mu = 0.1;
  config.write_mu = 0.1;
  config.fsync_mu = 0.1;
  config.fsync_spike_prob = 0.0;
  config.serialize_access = false;
  config.fault_scope = scope;
  config.seed = 23;
  return config;
}

TEST(ShutdownTest, RedoLogShutdownUnderConcurrentCommittersLosesNoAck) {
  simio::Disk disk(FastDisk("shutdown_redo"));
  minidb::RedoLog log(minidb::FlushPolicy::kEager, &disk,
                      /*flusher_period_us=*/2000.0);

  constexpr int kThreads = 4;
  std::vector<std::atomic<uint64_t>> max_acked(kThreads);
  for (auto& a : max_acked) {
    a.store(0);
  }
  std::vector<std::thread> committers;
  for (int t = 0; t < kThreads; ++t) {
    committers.emplace_back([&log, &max_acked, t] {
      for (int i = 0; i < 5000; ++i) {
        const uint64_t lsn = log.Append(96);
        if (lsn == 0) {
          break;  // shutdown gate reached
        }
        const minidb::LogStatus status = log.CommitUpTo(lsn);
        if (status == minidb::LogStatus::kOk) {
          max_acked[static_cast<size_t>(t)].store(
              lsn, std::memory_order_relaxed);
        } else {
          break;
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  log.Shutdown();
  const workload::InvariantResult joined =
      workload::CheckThreadsJoin(&committers, 5000);
  ASSERT_TRUE(joined.ok) << joined.detail;

  // Every acknowledged commit is durable past the shutdown.
  EXPECT_TRUE(log.shutdown());
  for (int t = 0; t < kThreads; ++t) {
    const workload::InvariantResult durable = workload::CheckAckedPrefixDurable(
        max_acked[static_cast<size_t>(t)].load(), log.flushed_lsn());
    EXPECT_TRUE(durable.ok) << "thread " << t << ": " << durable.detail;
  }

  // The gate holds: no new work, and Shutdown is idempotent.
  EXPECT_EQ(log.Append(64), 0u);
  EXPECT_EQ(log.CommitUpTo(log.flushed_lsn()), minidb::LogStatus::kShutdown);
  log.Shutdown();
  EXPECT_TRUE(log.shutdown());
}

TEST(ShutdownTest, WalShutdownUnderConcurrentBackendsLosesNoAck) {
  minipg::Wal wal(2, FastDisk("shutdown_wal"));

  constexpr int kThreads = 4;
  std::vector<std::atomic<uint64_t>> max_acked(2);
  for (auto& a : max_acked) {
    a.store(0);
  }
  std::vector<std::thread> backends;
  for (int t = 0; t < kThreads; ++t) {
    backends.emplace_back([&wal, &max_acked] {
      for (int i = 0; i < 5000; ++i) {
        const minipg::Wal::Position pos = wal.Insert(96);
        if (pos.lsn == 0) {
          break;
        }
        if (wal.Flush(pos) != minipg::WalStatus::kOk) {
          break;
        }
        // Monotone max per unit.
        auto& slot = max_acked[static_cast<size_t>(pos.unit)];
        uint64_t prev = slot.load(std::memory_order_relaxed);
        while (prev < pos.lsn &&
               !slot.compare_exchange_weak(prev, pos.lsn,
                                           std::memory_order_relaxed)) {
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  wal.Shutdown();
  const workload::InvariantResult joined =
      workload::CheckThreadsJoin(&backends, 5000);
  ASSERT_TRUE(joined.ok) << joined.detail;

  for (int i = 0; i < wal.unit_count(); ++i) {
    const workload::InvariantResult durable = workload::CheckAckedPrefixDurable(
        max_acked[static_cast<size_t>(i)].load(), wal.unit(i).flushed_lsn());
    EXPECT_TRUE(durable.ok) << "unit " << i << ": " << durable.detail;
    EXPECT_EQ(wal.unit(i).Insert(64), 0u);
  }
  wal.Shutdown();  // idempotent
}

TEST(ShutdownTest, MinidbEngineStopUnderLoadIsCleanAndConserving) {
  minidb::EngineConfig config = minidb::EngineConfig::MemoryResident();
  config.warehouses = 4;
  config.log_disk = FastDisk("shutdown_md_log");
  config.data_disk = FastDisk("shutdown_md_data");
  minidb::Engine engine(config);

  std::atomic<uint64_t> acked{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&engine, &acked, t] {
      workload::TpccGenerator generator(workload::TpccOptions{}, 4);
      statkit::Rng rng(500 + static_cast<uint64_t>(t));
      while (true) {
        const minidb::TxnOutcome outcome =
            engine.Execute(generator.Next(rng));
        if (outcome.committed) {
          acked.fetch_add(1, std::memory_order_relaxed);
        } else if (outcome.error == minidb::TxnError::kShutdown) {
          break;
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  engine.Stop();
  const workload::InvariantResult joined =
      workload::CheckThreadsJoin(&workers, 10000);
  ASSERT_TRUE(joined.ok) << joined.detail;

  // No acked commit went missing from the engine's own accounting, the
  // zero-sum transfers balance, and the engine stays refused-but-sane.
  EXPECT_EQ(acked.load(), engine.committed_count());
  EXPECT_GT(engine.committed_count(), 0u);
  const workload::InvariantResult balance =
      workload::CheckBalanceConservation(engine);
  EXPECT_TRUE(balance.ok) << balance.detail;
  const minidb::TxnOutcome post = engine.Execute(minidb::TxnRequest{});
  EXPECT_FALSE(post.committed);
  EXPECT_EQ(post.error, minidb::TxnError::kShutdown);
  engine.Stop();  // idempotent
  EXPECT_TRUE(engine.stopped());
}

TEST(ShutdownTest, MinipgEngineStopUnderLoadIsClean) {
  minipg::PgConfig config;
  config.wal_units = 2;
  config.wal_disk = FastDisk("shutdown_pg_wal");
  minipg::PgEngine engine(config);

  std::atomic<uint64_t> acked{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&engine, &acked, t] {
      workload::TpccGenerator generator(workload::TpccOptions{}, 4);
      statkit::Rng rng(700 + static_cast<uint64_t>(t));
      while (!engine.stopped()) {
        if (engine.Execute(generator.Next(rng))) {
          acked.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  engine.Stop();
  const workload::InvariantResult joined =
      workload::CheckThreadsJoin(&workers, 10000);
  ASSERT_TRUE(joined.ok) << joined.detail;

  EXPECT_EQ(acked.load(), engine.committed_count());
  EXPECT_GT(engine.committed_count(), 0u);
  EXPECT_FALSE(engine.Execute(minidb::TxnRequest{}));
  engine.Stop();  // idempotent
}

}  // namespace
