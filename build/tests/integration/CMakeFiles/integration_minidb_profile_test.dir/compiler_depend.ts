# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for integration_minidb_profile_test.
