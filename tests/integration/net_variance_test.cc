// Satellite: TPC-C over a real socket at overload. The semantic interval is
// anchored at socket readability, so the variance tree sees the whole
// network-side story: parse, dispatch-queue wait, engine execution, reply.
// Past saturation the queue is where latency variance lives — a net-side
// factor (net:queue_wait or net:readable) must rank in the offline top-3 —
// and the online service (vprofd folding epoch traces through the same
// queue-wait materialization) must agree with the offline analysis on the
// top factors.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/minidb/engine.h"
#include "src/net/frontend.h"
#include "src/net/server.h"
#include "src/statkit/rng.h"
#include "src/vprof/analysis/factor_selection.h"
#include "src/vprof/service/vprofd.h"
#include "src/workload/openloop.h"
#include "src/workload/tpcc.h"

namespace {

#if defined(__SANITIZE_THREAD__)
// minidb's btree is only TSan-clean single-writer, and everything is ~20x
// slower: one worker, gentler rates, fewer connections.
constexpr int kWorkers = 1;
constexpr size_t kConnections = 32;
constexpr double kCalibrationRate = 800.0;
constexpr vprof::TimeNs kEpochNs = 100'000'000;  // 100 ms
#else
constexpr int kWorkers = 2;
constexpr size_t kConnections = 128;
constexpr double kCalibrationRate = 6000.0;
constexpr vprof::TimeNs kEpochNs = 80'000'000;  // 80 ms
#endif
constexpr size_t kDispatchDepth = 16;
constexpr int kWarehouses = 2;
constexpr double kOverloadFactor = 1.5;

workload::OpenLoopOptions LoadOptions(uint16_t port, double rate_per_s,
                                      double seconds, uint64_t seed) {
  workload::OpenLoopOptions options;
  options.port = port;
  options.connections = kConnections;
  options.duration_s = seconds;
  options.arrivals.process = workload::ArrivalProcess::kPoisson;
  options.arrivals.rate_per_sec = rate_per_s;
  options.seed = seed;
  auto rng = std::make_shared<statkit::Rng>(seed ^ 0x5eed);
  auto gen = std::make_shared<workload::TpccGenerator>(workload::TpccOptions{},
                                                       kWarehouses);
  options.make_request = [rng, gen](uint64_t) {
    net::Frame frame;
    frame.type = net::MsgType::kTxn;
    frame.txn = gen->Next(*rng);
    return frame;
  };
  return options;
}

std::vector<std::string> TopLabels(const std::vector<vprof::Factor>& factors,
                                   const std::vector<std::string>& names,
                                   size_t k) {
  std::vector<std::string> top;
  for (const vprof::Factor& factor : factors) {
    if (factor.func_b != vprof::kInvalidFunc) {
      continue;  // single-function factors; covariances echo them
    }
    top.push_back(factor.Label(names));
    if (top.size() == k) {
      break;
    }
  }
  return top;
}

bool HasNetFactor(const std::vector<std::string>& labels) {
  for (const std::string& label : labels) {
    if (label.rfind("net:", 0) == 0) {
      return true;
    }
  }
  return false;
}

TEST(NetVarianceIntegration, QueueFactorAtOverloadAndOnlineMatchesOffline) {
  minidb::EngineConfig config = minidb::EngineConfig::MemoryResident();
  config.warehouses = kWarehouses;
  minidb::Engine engine(config);
  auto graph = std::make_shared<vprof::CallGraph>();
  minidb::Engine::RegisterCallGraph(graph.get());
  net::NetServer::RegisterNetCallGraph(graph.get(), "run_transaction");
  const vprof::FuncId net_root = vprof::RegisterFunction(net::kNetRootFunc);

  net::NetServerOptions server_options;
  server_options.workers = kWorkers;
  server_options.max_dispatch_depth = kDispatchDepth;
  net::NetServer server(server_options, net::MakeMinidbHandler(&engine));
  ASSERT_TRUE(server.Start());

  // Calibrate capacity with an untraced saturating run, then overload it.
  const workload::OpenLoopResult calibration = workload::RunOpenLoop(
      LoadOptions(server.port(), kCalibrationRate, 0.6, /*seed=*/7));
  ASSERT_FALSE(calibration.connect_failed);
  ASSERT_GT(calibration.acked, 0u);
  const double overload = calibration.achieved_per_s * kOverloadFactor;

  // Offline: one fully-instrumented traced run, analyzed in batch with the
  // queue-wait factor materialized so net-side time competes for ranking.
  const size_t registered = vprof::RegisteredFunctionCount();
  for (vprof::FuncId id = 0; id < registered; ++id) {
    vprof::SetFunctionEnabled(id, true);
  }
  vprof::StartTracing();
  const workload::OpenLoopResult offline_run = workload::RunOpenLoop(
      LoadOptions(server.port(), overload, 0.9, /*seed=*/21));
  const vprof::Trace trace = vprof::StopTracing();
  ASSERT_GT(offline_run.acked, 0u);

  vprof::CriticalPathOptions path_options;
  path_options.queue_wait_factor = net::kQueueWaitFactor;
  const vprof::VarianceAnalysis analysis(trace, path_options);
  const std::vector<vprof::Factor> offline_factors = vprof::AggregateFactors(
      analysis, *graph, net_root, vprof::SpecificityKind::kQuadratic);
  const std::vector<std::string> offline_top =
      TopLabels(offline_factors, trace.function_names, 3);
  ASSERT_FALSE(offline_top.empty());
  EXPECT_TRUE(HasNetFactor(offline_top))
      << "no net-side factor in the offline top-3 at overload";

  // Online: vprofd folds epoch traces from the same socket workload through
  // the same queue-wait materialization. The controller is off — the probe
  // set is already fully enabled — so this isolates the aggregation path.
  vprof::VprofdOptions daemon_options;
  daemon_options.root_function = net::kNetRootFunc;
  daemon_options.graph = graph;
  daemon_options.epoch_ns = kEpochNs;
  daemon_options.enable_controller = false;
  daemon_options.tree.path_options.queue_wait_factor = net::kQueueWaitFactor;
  vprof::Vprofd daemon(std::move(daemon_options));
  daemon.Start();
  const workload::OpenLoopResult online_run = workload::RunOpenLoop(
      LoadOptions(server.port(), overload, 1.2, /*seed=*/35));
  daemon.Stop();
  vprof::DisableAllFunctions();
  server.Shutdown();
  ASSERT_GT(online_run.acked, 0u);
  EXPECT_GT(online_run.rejected, 0u) << "overload point never shed";

  const vprof::OnlineTreeSnapshot snapshot = daemon.Snapshot();
  ASSERT_GT(snapshot.weight, 0.0);
  ASSERT_GE(daemon.epochs(), 3u);
  const std::vector<vprof::Factor> online_factors = vprof::AggregateFactors(
      snapshot.View(), *graph, net_root, vprof::SpecificityKind::kQuadratic);
  const std::vector<std::string> online_top =
      TopLabels(online_factors, snapshot.function_names, 3);
  ASSERT_FALSE(online_top.empty());
  EXPECT_TRUE(HasNetFactor(online_top))
      << "no net-side factor in the online top-3 at overload";

  // Online and offline top-3 must substantially agree (the runs are separate
  // schedules over live state, so demand overlap, not identity).
  const std::set<std::string> offline_set(offline_top.begin(),
                                          offline_top.end());
  int overlap = 0;
  for (const std::string& label : online_top) {
    overlap += offline_set.count(label) ? 1 : 0;
  }
  EXPECT_GE(overlap, 2) << "online top-3 diverged from offline";
}

}  // namespace
