#include "src/vprof/analysis/factor_selection.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>

namespace vprof {

std::string Factor::Label(const std::vector<std::string>& function_names) const {
  auto name = [&](FuncId f, bool body) {
    std::string n = f < function_names.size() ? function_names[f] : "?";
    return body ? n + "(body)" : n;
  };
  if (!is_covariance()) {
    return name(func_a, body_a);
  }
  return "(" + name(func_a, body_a) + ", " + name(func_b, body_b) + ")";
}

namespace {

// Key for aggregating factor instances across call sites.
struct FactorKey {
  FuncId a;
  FuncId b;
  bool body_a;
  bool body_b;
  bool operator<(const FactorKey& o) const {
    return std::tie(a, b, body_a, body_b) < std::tie(o.a, o.b, o.body_a, o.body_b);
  }
};

double SpecificityOf(int root_height, int height, SpecificityKind kind) {
  const double base = std::max(0, root_height - height);
  return std::pow(base, static_cast<double>(static_cast<int>(kind)));
}

}  // namespace

std::vector<Factor> AggregateFactors(const VarianceTreeView& view,
                                     const CallGraph& graph, FuncId root,
                                     SpecificityKind specificity) {
  const int root_height = graph.Height(root) + 1;  // +1: synthetic tree root
  std::map<FactorKey, Factor> by_key;

  // Variance factors: every real node in the tree (skip the synthetic root;
  // its variance is the overall variance being decomposed).
  for (size_t id = 1; id < view.nodes.size(); ++id) {
    const TreeNode& n = view.nodes[id];
    if (n.func == kInvalidFunc) {
      continue;  // synthetic root's body ("(other)") is reported separately
    }
    FactorKey key{n.func, kInvalidFunc, n.is_body, false};
    Factor& f = by_key[key];
    f.func_a = n.func;
    f.body_a = n.is_body;
    f.total += view.node_variance[id];
    f.height = n.is_body ? 0 : graph.Height(n.func);
  }

  // Covariance factors: sibling pairs under each expanded parent, counted
  // with the factor 2 from Equation (2).
  for (const SiblingCovariance& cov : view.covariances) {
    const TreeNode& na = view.nodes[static_cast<size_t>(cov.a)];
    const TreeNode& nb = view.nodes[static_cast<size_t>(cov.b)];
    if (na.func == kInvalidFunc || nb.func == kInvalidFunc) {
      continue;
    }
    FuncId fa = na.func;
    FuncId fb = nb.func;
    bool ba = na.is_body;
    bool bb = nb.is_body;
    if (fb < fa || (fa == fb && bb && !ba)) {
      std::swap(fa, fb);
      std::swap(ba, bb);
    }
    FactorKey key{fa, fb, ba, bb};
    Factor& f = by_key[key];
    f.func_a = fa;
    f.func_b = fb;
    f.body_a = ba;
    f.body_b = bb;
    f.total += 2.0 * cov.covariance;
    f.height = std::max(ba ? 0 : graph.Height(fa), bb ? 0 : graph.Height(fb));
  }

  const double overall = view.overall_variance;
  std::vector<Factor> out;
  out.reserve(by_key.size());
  for (auto& [key, f] : by_key) {
    f.contribution = overall > 0.0 ? f.total / overall : 0.0;
    f.specificity = SpecificityOf(root_height, f.height, specificity);
    f.score = f.specificity * f.total;
    out.push_back(f);
  }
  std::sort(out.begin(), out.end(),
            [](const Factor& x, const Factor& y) { return x.score > y.score; });
  return out;
}

std::vector<Factor> AggregateFactors(const VarianceAnalysis& analysis,
                                     const CallGraph& graph, FuncId root,
                                     SpecificityKind specificity) {
  return AggregateFactors(analysis.View(), graph, root, specificity);
}

std::vector<Factor> SelectFactors(const VarianceTreeView& view,
                                  const CallGraph& graph, FuncId root,
                                  const FactorSelectionOptions& options) {
  std::vector<Factor> all =
      AggregateFactors(view, graph, root, options.specificity);
  std::vector<Factor> selected;
  for (const Factor& f : all) {
    if (static_cast<int>(selected.size()) >= options.top_k) {
      break;
    }
    if (f.contribution >= options.min_contribution) {
      selected.push_back(f);
    }
  }
  return selected;
}

std::vector<Factor> SelectFactors(const VarianceAnalysis& analysis,
                                  const CallGraph& graph, FuncId root,
                                  const FactorSelectionOptions& options) {
  return SelectFactors(analysis.View(), graph, root, options);
}

}  // namespace vprof
