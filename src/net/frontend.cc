#include "src/net/frontend.h"

#include "src/httpd/server.h"
#include "src/minidb/engine.h"
#include "src/minipg/engine.h"

namespace net {

namespace {

Frame BadType(const Frame& request) {
  Frame reply;
  reply.type = MsgType::kError;
  reply.request_id = request.request_id;
  reply.error = static_cast<uint8_t>(WireError::kBadType);
  return reply;
}

}  // namespace

NetServer::Handler MakeMinidbHandler(minidb::Engine* engine) {
  return [engine](const Frame& request) {
    if (request.type != MsgType::kTxn) {
      return BadType(request);
    }
    const minidb::TxnOutcome outcome = engine->Execute(request.txn);
    Frame reply;
    reply.type = MsgType::kTxnReply;
    reply.status = outcome.committed ? 0 : 1;
    reply.error = static_cast<uint8_t>(outcome.error);
    reply.value = outcome.trx_id;
    return reply;
  };
}

NetServer::Handler MakeMinipgHandler(minipg::PgEngine* engine) {
  return [engine](const Frame& request) {
    if (request.type != MsgType::kTxn) {
      return BadType(request);
    }
    const bool committed = engine->Execute(request.txn);
    Frame reply;
    reply.type = MsgType::kTxnReply;
    reply.status = committed ? 0 : 1;
    reply.error = static_cast<uint8_t>(minidb::TxnError::kNone);
    reply.value = 0;
    return reply;
  };
}

NetServer::Handler MakeHttpdHandler(httpd::HttpServer* server) {
  return [server](const Frame& request) {
    if (request.type != MsgType::kHttpGet) {
      return BadType(request);
    }
    const httpd::RequestStatus status =
        server->HandleRequestBlocking(request.file_id);
    Frame reply;
    if (status == httpd::RequestStatus::kServiceUnavailable) {
      reply.type = MsgType::kRejected;
    } else {
      reply.type = MsgType::kHttpReply;
      reply.status = 0;
    }
    return reply;
  };
}

}  // namespace net
