#include "src/minidb/lock_manager.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/minidb/transaction.h"
#include "src/simio/disk.h"

namespace minidb {
namespace {

TEST(LockManagerTest, SharedLocksCompatible) {
  LockManager lm(LockScheduling::kFcfs);
  Transaction t1(1, 100);
  Transaction t2(2, 200);
  EXPECT_TRUE(lm.Lock(&t1, 7, LockMode::kShared));
  EXPECT_TRUE(lm.Lock(&t2, 7, LockMode::kShared));
  EXPECT_TRUE(lm.Holds(&t1, 7, LockMode::kShared));
  EXPECT_TRUE(lm.Holds(&t2, 7, LockMode::kShared));
  lm.ReleaseAll(&t1);
  lm.ReleaseAll(&t2);
  EXPECT_EQ(lm.ActiveObjects(), 0u);
}

TEST(LockManagerTest, ReentrantAcquisition) {
  LockManager lm(LockScheduling::kFcfs);
  Transaction t1(1, 100);
  EXPECT_TRUE(lm.Lock(&t1, 7, LockMode::kExclusive));
  EXPECT_TRUE(lm.Lock(&t1, 7, LockMode::kExclusive));
  EXPECT_TRUE(lm.Lock(&t1, 7, LockMode::kShared));  // weaker: no-op
  lm.ReleaseAll(&t1);
  EXPECT_EQ(lm.ActiveObjects(), 0u);
}

TEST(LockManagerTest, SoleHolderUpgrades) {
  LockManager lm(LockScheduling::kFcfs);
  Transaction t1(1, 100);
  EXPECT_TRUE(lm.Lock(&t1, 7, LockMode::kShared));
  EXPECT_TRUE(lm.Lock(&t1, 7, LockMode::kExclusive));
  EXPECT_TRUE(lm.Holds(&t1, 7, LockMode::kExclusive));
  EXPECT_EQ(lm.stats().upgrades, 1u);
  lm.ReleaseAll(&t1);
}

TEST(LockManagerTest, ExclusiveBlocksUntilRelease) {
  LockManager lm(LockScheduling::kFcfs);
  Transaction holder(1, 100);
  ASSERT_TRUE(lm.Lock(&holder, 9, LockMode::kExclusive));
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    Transaction t2(2, 200);
    EXPECT_TRUE(lm.Lock(&t2, 9, LockMode::kExclusive));
    acquired.store(true);
    lm.ReleaseAll(&t2);
  });
  simio::SleepUs(10000);
  EXPECT_FALSE(acquired.load());
  lm.ReleaseAll(&holder);
  waiter.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_GE(lm.stats().waits, 1u);
}

TEST(LockManagerTest, TimeoutReturnsFalse) {
  LockManager lm(LockScheduling::kFcfs, /*wait_timeout_ns=*/20LL * 1000 * 1000);
  Transaction holder(1, 100);
  ASSERT_TRUE(lm.Lock(&holder, 9, LockMode::kExclusive));
  Transaction t2(2, 200);
  EXPECT_FALSE(lm.Lock(&t2, 9, LockMode::kExclusive));
  EXPECT_EQ(lm.stats().timeouts, 1u);
  lm.ReleaseAll(&holder);
  lm.ReleaseAll(&t2);
}

// Grant-order tests: a holder plus several sleeping waiters; on release the
// policy decides who gets the lock.
std::vector<uint64_t> GrantOrder(LockScheduling scheduling,
                                 const std::vector<int64_t>& waiter_ages) {
  LockManager lm(scheduling);
  Transaction holder(100, 1);
  EXPECT_TRUE(lm.Lock(&holder, 5, LockMode::kExclusive));

  std::vector<uint64_t> order;
  std::mutex order_mu;
  std::vector<std::thread> waiters;
  for (size_t i = 0; i < waiter_ages.size(); ++i) {
    waiters.emplace_back([&, i] {
      Transaction trx(static_cast<uint64_t>(i + 1), waiter_ages[i]);
      EXPECT_TRUE(lm.Lock(&trx, 5, LockMode::kExclusive));
      {
        std::lock_guard<std::mutex> lock(order_mu);
        order.push_back(trx.id());
      }
      simio::SleepUs(2000);  // hold briefly so grants stay ordered
      lm.ReleaseAll(&trx);
    });
    simio::SleepUs(5000);  // enforce arrival order
  }
  simio::SleepUs(5000);
  lm.ReleaseAll(&holder);
  for (auto& w : waiters) {
    w.join();
  }
  return order;
}

TEST(LockManagerTest, FcfsGrantsInArrivalOrder) {
  // Arrival order 1,2,3 with ages 300,200,100: FCFS ignores age.
  const auto order = GrantOrder(LockScheduling::kFcfs, {300, 200, 100});
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 3u);
}

TEST(LockManagerTest, VatsGrantsOldestFirst) {
  // Same arrival order, but VATS grants the oldest (smallest start ts).
  const auto order = GrantOrder(LockScheduling::kVats, {300, 200, 100});
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 3u);  // age 100: oldest
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 1u);
}

TEST(LockManagerTest, SharedWaitersGrantedTogether) {
  LockManager lm(LockScheduling::kFcfs);
  Transaction holder(1, 1);
  ASSERT_TRUE(lm.Lock(&holder, 5, LockMode::kExclusive));
  std::atomic<int> granted{0};
  std::vector<std::thread> readers;
  for (int i = 0; i < 3; ++i) {
    readers.emplace_back([&, i] {
      Transaction trx(static_cast<uint64_t>(i + 2), 100 + i);
      EXPECT_TRUE(lm.Lock(&trx, 5, LockMode::kShared));
      granted.fetch_add(1);
      simio::SleepUs(20000);
      lm.ReleaseAll(&trx);
    });
  }
  simio::SleepUs(10000);
  EXPECT_EQ(granted.load(), 0);
  lm.ReleaseAll(&holder);
  // All three shared waiters must be granted concurrently (well before the
  // first one releases).
  simio::SleepUs(10000);
  EXPECT_EQ(granted.load(), 3);
  for (auto& r : readers) {
    r.join();
  }
}

TEST(LockManagerTest, StressManyObjectsNoLostWakeups) {
  LockManager lm(LockScheduling::kVats);
  std::atomic<uint64_t> acquisitions{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 300; ++i) {
        Transaction trx(static_cast<uint64_t>(t * 1000 + i),
                        static_cast<int64_t>(t * 1000 + i));
        const uint64_t object = static_cast<uint64_t>(i % 7);
        ASSERT_TRUE(lm.Lock(&trx, object, LockMode::kExclusive));
        acquisitions.fetch_add(1);
        lm.ReleaseAll(&trx);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(acquisitions.load(), 1200u);
  EXPECT_EQ(lm.ActiveObjects(), 0u);
}

}  // namespace
}  // namespace minidb
