// SIREAD (predicate) lock table for serializable isolation, modeled on
// Postgres SSI. Reads register predicate locks; at commit,
// ReleasePredicateLocks walks the transaction's lock list, checks each
// entry's bucket for rw-conflicts, and removes it — work proportional to the
// number and collision profile of held locks, which is the variance source
// the paper's Table 6 reports (6% of overall variance).
#ifndef SRC_MINIPG_PREDICATE_LOCKS_H_
#define SRC_MINIPG_PREDICATE_LOCKS_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace minipg {

struct PredicateLockStats {
  uint64_t acquired = 0;
  uint64_t released = 0;
  uint64_t conflicts_detected = 0;
};

class PredicateLockManager {
 public:
  PredicateLockManager() = default;

  PredicateLockManager(const PredicateLockManager&) = delete;
  PredicateLockManager& operator=(const PredicateLockManager&) = delete;

  // Registers a SIREAD lock of `txn_id` on `object_id`.
  void Acquire(uint64_t txn_id, uint64_t object_id);

  // Records a write by `txn_id` on `object_id`; returns the number of other
  // transactions holding SIREAD locks there (rw-antidependencies).
  int CheckWriteConflicts(uint64_t txn_id, uint64_t object_id);

  // Releases every SIREAD lock of `txn_id` (instrumented as
  // ReleasePredicateLocks). Returns the number released.
  int ReleaseAll(uint64_t txn_id, const std::vector<uint64_t>& objects);

  PredicateLockStats stats() const;

  size_t ActiveLocks() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    // object -> txn ids holding SIREAD locks there
    std::unordered_map<uint64_t, std::vector<uint64_t>> holders;
  };
  static constexpr int kShardCount = 16;

  Shard& ShardFor(uint64_t object_id) {
    return shards_[object_id % kShardCount];
  }

  Shard shards_[kShardCount];
  mutable std::mutex stats_mu_;
  PredicateLockStats stats_;
};

}  // namespace minipg

#endif  // SRC_MINIPG_PREDICATE_LOCKS_H_
