// Multi-threaded stress for the sharded buffer pool (ISSUE: multi-core
// scale-out): worker threads hammer GetPage across all shards and policies
// while one thread resizes the pool up and down and a control loop flips
// the vprof run epoch with StartTracing/StopTracing — the epoch handshake
// races the per-shard pool-mutex probes exactly as vprofd would in
// production. Run under -fsanitize=thread (scripts/check.sh --scale,
// VPROF_TSAN=ON) to turn any missing happens-before edge in the shard
// stats, the LRU lists, or the probe runtime into a hard failure.
//
// The pool is exercised directly (not through the engine) so the test
// isolates the sharding layer; invariants are checked from a quiesced
// state after every epoch flip.
#include "src/minidb/buffer_pool.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/minidb/config.h"
#include "src/simio/disk.h"
#include "src/vprof/runtime.h"

namespace minidb {
namespace {

simio::DiskConfig FastDisk() {
  simio::DiskConfig config;
  config.read_mu = 0.1;
  config.write_mu = 0.1;
  config.fsync_mu = 0.1;
  config.fsync_spike_prob = 0.0;
  return config;
}

#if defined(__SANITIZE_THREAD__)
constexpr int kWorkers = 3;
constexpr int kEpochFlips = 8;
constexpr int kPagesPerSpin = 32;
#else
constexpr int kWorkers = 4;
constexpr int kEpochFlips = 16;
constexpr int kPagesPerSpin = 64;
#endif
constexpr PageId kPageSpace = 512;

void Stress(BufferPolicy policy, int instances) {
  simio::Disk disk(FastDisk());
  BufferPool pool(/*capacity_pages=*/128, policy,
                  /*llu_try_iterations=*/3, &disk, instances);
  ASSERT_EQ(pool.instances(), instances);

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  workers.reserve(kWorkers + 1);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      // Deterministic per-thread stride so every worker sweeps all shards.
      PageId next = static_cast<PageId>(w * 131);
      while (!stop.load(std::memory_order_relaxed)) {
        for (int i = 0; i < kPagesPerSpin; ++i) {
          next = (next * 1103515245 + 12345) % kPageSpace;
          pool.GetPage(next, /*for_write=*/(next & 3) == 0);
        }
        // Aggregated stats read racing the hot-path relaxed increments.
        (void)pool.stats();
      }
    });
  }
  // Resizer: grow and shrink across the point where per-shard capacity
  // changes, racing the workers' miss/eviction paths.
  workers.emplace_back([&] {
    int size = 128;
    while (!stop.load(std::memory_order_relaxed)) {
      size = size == 128 ? 48 : 128;
      pool.Resize(size);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (int flip = 0; flip < kEpochFlips; ++flip) {
    vprof::StartTracing();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    (void)vprof::StopTracing();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& worker : workers) {
    worker.join();
  }

  EXPECT_TRUE(pool.CheckInvariants());
  const BufferPoolStats stats = pool.stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
  // Per-shard stats must add up to the aggregate (quiesced state).
  uint64_t hits = 0;
  uint64_t misses = 0;
  for (int s = 0; s < pool.instances(); ++s) {
    hits += pool.shard_stats(s).hits;
    misses += pool.shard_stats(s).misses;
  }
  EXPECT_EQ(hits, stats.hits);
  EXPECT_EQ(misses, stats.misses);
}

TEST(ScaleStressTest, ShardedBlockingMutexRacesResizeAndEpochFlips) {
  Stress(BufferPolicy::kBlockingMutex, /*instances=*/8);
}

TEST(ScaleStressTest, ShardedLazyLruUpdateRacesResizeAndEpochFlips) {
  Stress(BufferPolicy::kLazyLruUpdate, /*instances=*/8);
}

TEST(ScaleStressTest, SingleInstanceStillSafe) {
  Stress(BufferPolicy::kBlockingMutex, /*instances=*/1);
}

}  // namespace
}  // namespace minidb
