# Empty dependencies file for integration_per_type_profile_test.
# This may be replaced when dependencies are built.
