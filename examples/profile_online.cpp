// Profile minidb with the always-on service (vprofd) instead of the batch
// profiler: the workload never stops while the epoch harvester rotates
// tracing, the streaming tree folds each epoch, and the refinement
// controller descends into high-variance factors on its own — starting from
// top-level probes only — until the instrumentation is stable.
//
// The final step re-runs the classic offline Profiler on the same engine
// and checks that the online service converged to the same top factors
// (the paper's Table 4 picture).
//
// Build & run:  ./build/examples/profile_online
#include <atomic>
#include <chrono>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/minidb/engine.h"
#include "src/vprof/analysis/profiler.h"
#include "src/vprof/service/vprofd.h"
#include "src/workload/tpcc.h"

namespace {

std::set<std::string> TopVarianceFactors(const std::vector<vprof::Factor>& factors,
                                         const std::vector<std::string>& names,
                                         size_t k) {
  std::set<std::string> top;
  for (const vprof::Factor& factor : factors) {
    if (factor.is_covariance()) {
      continue;
    }
    top.insert(factor.Label(names));
    if (top.size() == k) {
      break;
    }
  }
  return top;
}

}  // namespace

int main() {
  minidb::EngineConfig config = minidb::EngineConfig::MemoryResident();
  config.warehouses = 2;
  minidb::Engine engine(config);

  workload::TpccOptions options;
  options.threads = 8;
  options.transactions_per_thread = 200;
  workload::TpccDriver driver(&engine, options);
  driver.Run();  // warm-up

  std::printf("Step 1: start the workload, then attach vprofd.\n\n");
  std::atomic<bool> stop{false};
  std::thread load([&] { driver.RunUntil(stop); });

  vprof::VprofdOptions daemon_options;
  daemon_options.epoch_ns = 120'000'000;  // 120 ms epochs
  daemon_options.controller.min_weight = 50.0;
  auto daemon = minidb::Engine::StartOnlineProfiler(std::move(daemon_options));

  // Let the controller refine until it has been stable for 3 epochs (or
  // give up after 40).
  uint64_t last_logged = 0;
  while (daemon->epochs() < 40 && !daemon->Converged(3)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    const uint64_t epoch = daemon->epochs();
    if (epoch != last_logged) {
      last_logged = epoch;
      const vprof::ControllerStatus status = daemon->controller_status();
      std::printf("  epoch %2llu: %2zu probes enabled, %d flips, %d stable\n",
                  static_cast<unsigned long long>(epoch),
                  status.instrumented.size(), status.last_changes,
                  status.stable_steps);
    }
  }
  daemon->Stop();
  stop.store(true);
  load.join();

  const vprof::OnlineTreeSnapshot snapshot = daemon->Snapshot();
  const vprof::ControllerStatus status = daemon->controller_status();
  std::printf("\nconverged=%s after %llu epochs (%llu expansions, "
              "%llu retirements); rotation gap max=%.2f ms\n\n",
              daemon->Converged(3) ? "yes" : "no",
              static_cast<unsigned long long>(daemon->epochs()),
              static_cast<unsigned long long>(status.expansions),
              static_cast<unsigned long long>(status.retirements),
              static_cast<double>(daemon->max_gap_ns()) / 1e6);

  std::printf("online factor selection:\n");
  int rank = 1;
  for (const vprof::Factor& factor : status.selection) {
    std::printf("  %d | %s | %.1f%%\n", rank++,
                factor.Label(snapshot.function_names).c_str(),
                factor.contribution * 100.0);
  }

  std::printf("\nPrometheus exposition excerpt:\n");
  const std::string metrics = daemon->MetricsText();
  std::printf("%.*s...\n\n", 600, metrics.c_str());

  std::printf("Step 2: offline Profiler on the same engine for comparison.\n\n");
  vprof::CallGraph graph;
  minidb::Engine::RegisterCallGraph(&graph);
  vprof::Profiler profiler("run_transaction", &graph, [&] { driver.Run(); });
  const vprof::ProfileResult offline = profiler.Run();
  std::printf("%s\n", offline.Report().c_str());

  const std::set<std::string> online_top =
      TopVarianceFactors(status.selection, snapshot.function_names, 3);
  const std::set<std::string> offline_top =
      TopVarianceFactors(offline.factors, offline.function_names, 3);
  size_t overlap = 0;
  for (const std::string& label : online_top) {
    overlap += offline_top.count(label);
  }
  std::printf("top-factor agreement (online vs offline): %zu of %zu\n",
              overlap, offline_top.size());
  return overlap >= 2 ? 0 : 1;
}
