#include "src/minipg/predicate_locks.h"

#include <algorithm>

#include "src/vprof/probe.h"

namespace minipg {

void PredicateLockManager::Acquire(uint64_t txn_id, uint64_t object_id) {
  Shard& shard = ShardFor(object_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  std::vector<uint64_t>& holders = shard.holders[object_id];
  if (std::find(holders.begin(), holders.end(), txn_id) == holders.end()) {
    holders.push_back(txn_id);
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.acquired;
  }
}

int PredicateLockManager::CheckWriteConflicts(uint64_t txn_id,
                                              uint64_t object_id) {
  Shard& shard = ShardFor(object_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.holders.find(object_id);
  if (it == shard.holders.end()) {
    return 0;
  }
  int conflicts = 0;
  for (uint64_t holder : it->second) {
    if (holder != txn_id) {
      ++conflicts;
    }
  }
  if (conflicts > 0) {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    stats_.conflicts_detected += static_cast<uint64_t>(conflicts);
  }
  return conflicts;
}

int PredicateLockManager::ReleaseAll(uint64_t txn_id,
                                     const std::vector<uint64_t>& objects) {
  VPROF_FUNC("ReleasePredicateLocks");
  int released = 0;
  volatile uint64_t conflict_scan = 0;
  for (uint64_t object_id : objects) {
    Shard& shard = ShardFor(object_id);
    std::lock_guard<std::mutex> lock(shard.mu);
    // rw-antidependency bookkeeping per released lock (Postgres walks the
    // conflict lists here); cost scales with the lock count, which is this
    // function's variance source (paper Table 6).
    for (int i = 0; i < 220; ++i) {
      conflict_scan = (conflict_scan ^ object_id ^ static_cast<uint64_t>(i)) *
                      1099511628211ull;
    }
    auto it = shard.holders.find(object_id);
    if (it == shard.holders.end()) {
      continue;
    }
    std::vector<uint64_t>& holders = it->second;
    auto pos = std::find(holders.begin(), holders.end(), txn_id);
    if (pos != holders.end()) {
      holders.erase(pos);
      ++released;
    }
    if (holders.empty()) {
      shard.holders.erase(it);
    }
  }
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    stats_.released += static_cast<uint64_t>(released);
  }
  return released;
}

PredicateLockStats PredicateLockManager::stats() const {
  std::lock_guard<std::mutex> stats_lock(stats_mu_);
  return stats_;
}

size_t PredicateLockManager::ActiveLocks() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [object, holders] : shard.holders) {
      n += holders.size();
    }
  }
  return n;
}

}  // namespace minipg
