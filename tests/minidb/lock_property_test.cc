// Property tests for the lock manager: mutual exclusion, no lost wakeups,
// and liveness across scheduling policies, thread counts, and lock modes.
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/minidb/lock_manager.h"
#include "src/minidb/transaction.h"
#include "src/statkit/rng.h"

namespace minidb {
namespace {

struct PropertyCase {
  LockScheduling scheduling;
  int threads;
  int objects;
};

class LockManagerProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(LockManagerProperty, ExclusionAndLiveness) {
  const PropertyCase param = GetParam();
  LockManager lm(param.scheduling);
  std::vector<std::atomic<int>> exclusive_holders(
      static_cast<size_t>(param.objects));
  std::vector<std::atomic<int>> any_holders(static_cast<size_t>(param.objects));
  for (auto& h : exclusive_holders) {
    h.store(0);
  }
  for (auto& h : any_holders) {
    h.store(0);
  }
  std::atomic<bool> violation{false};
  std::atomic<uint64_t> completed{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < param.threads; ++t) {
    threads.emplace_back([&, t] {
      statkit::Rng rng(static_cast<uint64_t>(t) * 7919 + 3);
      for (int i = 0; i < 150; ++i) {
        Transaction trx(static_cast<uint64_t>(t * 1000 + i),
                        static_cast<int64_t>(rng.Next() % 100000));
        // Acquire 1-3 locks in ascending object order (deadlock freedom).
        const int count = static_cast<int>(rng.NextInRange(1, 3));
        int64_t previous = -1;
        std::vector<std::pair<uint64_t, LockMode>> held;
        bool ok = true;
        for (int k = 0; k < count && ok; ++k) {
          const int64_t object = rng.NextInRange(
              previous + 1, previous + 1 + param.objects / 3);
          if (object >= param.objects) {
            break;
          }
          previous = object;
          const LockMode mode =
              rng.NextBool(0.5) ? LockMode::kExclusive : LockMode::kShared;
          ok = lm.Lock(&trx, static_cast<uint64_t>(object), mode);
          if (ok) {
            held.emplace_back(static_cast<uint64_t>(object), mode);
          }
        }
        // Validate exclusion invariants on everything we hold.
        for (const auto& [object, mode] : held) {
          const size_t idx = static_cast<size_t>(object);
          any_holders[idx].fetch_add(1);
          if (mode == LockMode::kExclusive) {
            if (exclusive_holders[idx].fetch_add(1) != 0) {
              violation.store(true);  // two exclusive holders
            }
            if (any_holders[idx].load() > exclusive_holders[idx].load()) {
              // Someone else (shared) holds it alongside our exclusive.
              violation.store(true);
            }
          } else if (exclusive_holders[idx].load() != 0) {
            violation.store(true);  // shared alongside exclusive
          }
        }
        for (auto it = held.rbegin(); it != held.rend(); ++it) {
          const size_t idx = static_cast<size_t>(it->first);
          if (it->second == LockMode::kExclusive) {
            exclusive_holders[idx].fetch_sub(1);
          }
          any_holders[idx].fetch_sub(1);
        }
        lm.ReleaseAll(&trx);
        completed.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(completed.load(),
            static_cast<uint64_t>(param.threads) * 150u);  // liveness
  EXPECT_EQ(lm.ActiveObjects(), 0u);
  EXPECT_EQ(lm.stats().timeouts, 0u);
  EXPECT_EQ(lm.stats().deadlocks, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LockManagerProperty,
    ::testing::Values(PropertyCase{LockScheduling::kFcfs, 2, 5},
                      PropertyCase{LockScheduling::kFcfs, 4, 3},
                      PropertyCase{LockScheduling::kFcfs, 6, 10},
                      PropertyCase{LockScheduling::kVats, 2, 5},
                      PropertyCase{LockScheduling::kVats, 4, 3},
                      PropertyCase{LockScheduling::kVats, 6, 10}));

}  // namespace
}  // namespace minidb
