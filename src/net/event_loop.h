// Single-threaded epoll reactor: edge-triggered fd callbacks, a wakeup
// eventfd for cross-thread Post(), and a periodic tick for timeout sweeps.
//
// Ownership model: one thread calls Run(); every callback executes on that
// thread, so connection state above needs no locking. Other threads interact
// only through Post() (run-on-loop closures, e.g. a worker handing a reply
// buffer back to its connection) and Stop().
#ifndef SRC_NET_EVENT_LOOP_H_
#define SRC_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/net/socket.h"

namespace net {

class EventLoop {
 public:
  // Receives the epoll event mask (EPOLLIN/EPOLLOUT/EPOLLHUP/...).
  using FdCallback = std::function<void(uint32_t events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // True when the epoll and wakeup descriptors came up; a loop that failed
  // to construct must not Run.
  bool valid() const { return epoll_fd_.valid() && wake_fd_.valid(); }

  // Registers `fd` with `events` (caller includes EPOLLET if desired).
  // Loop-thread only, as are Mod/Del.
  bool Add(int fd, uint32_t events, FdCallback callback);
  bool Mod(int fd, uint32_t events);
  void Del(int fd);

  // Enqueues a closure for the loop thread and wakes it. Thread-safe.
  void Post(std::function<void()> task);

  // Runs until Stop(). `tick_ms` bounds epoll_wait so `on_tick` (may be
  // empty) fires roughly that often — the idle/slow-peer sweep hook.
  void Run(int tick_ms, const std::function<void()>& on_tick);

  // Thread-safe; wakes the loop. Run returns after finishing the current
  // dispatch batch and any posted tasks.
  void Stop();

 private:
  void DrainWakeups();
  void RunPosted();

  Fd epoll_fd_;
  Fd wake_fd_;  // eventfd
  std::atomic<bool> stop_{false};

  // fd -> callback. shared_ptr so a callback erased mid-batch (a connection
  // closed by an earlier event in the same epoll_wait return) stays alive
  // for the in-flight lookup but is never invoked again.
  std::unordered_map<int, std::shared_ptr<FdCallback>> callbacks_;

  std::mutex posted_mu_;  // plain mutex: the reply handoff is not profiled
  std::vector<std::function<void()>> posted_;
};

}  // namespace net

#endif  // SRC_NET_EVENT_LOOP_H_
