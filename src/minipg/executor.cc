#include "src/minipg/executor.h"

#include "src/vprof/probe.h"

namespace minipg {

void Executor::TupleWork(int tuples) {
  // ~600ns per tuple of pure CPU (tuple deforming + predicate evaluation).
  volatile uint64_t h = 1469598103934665603ull;
  for (int t = 0; t < tuples; ++t) {
    for (int i = 0; i < 96; ++i) {
      h = (h ^ static_cast<uint64_t>(i)) * 1099511628211ull;
    }
  }
}

int64_t Executor::ExecProcNode(const PlanNode& node, ExecContext* context) {
  VPROF_FUNC("ExecProcNode");
  switch (node.type) {
    case PlanNodeType::kSeqScan:
      return ExecSeqScan(node, context);
    case PlanNodeType::kIndexScan:
      return ExecIndexScan(node, context);
    case PlanNodeType::kModifyTable:
      return ExecModifyTable(node, context);
    case PlanNodeType::kNestLoop:
      return ExecNestLoop(node, context);
    case PlanNodeType::kAgg:
      return ExecAgg(node, context);
  }
  return 0;
}

int64_t Executor::ExecSeqScan(const PlanNode& node, ExecContext* context) {
  VPROF_FUNC("ExecSeqScan");
  TupleWork(static_cast<int>(node.rows));
  if (serializable_) {
    // A sequential scan takes a relation-granularity SIREAD lock.
    const uint64_t object = node.table_base;
    predicate_locks_->Acquire(context->txn_id, object);
    context->read_objects.push_back(object);
  }
  return node.rows;
}

int64_t Executor::ExecIndexScan(const PlanNode& node, ExecContext* context) {
  VPROF_FUNC("ExecIndexScan");
  TupleWork(static_cast<int>(node.rows) * 2);  // descent + fetch
  if (serializable_) {
    for (int64_t i = 0; i < node.rows; ++i) {
      const uint64_t object =
          node.table_base + context->rng->NextBelow(10000) + 1;
      predicate_locks_->Acquire(context->txn_id, object);
      context->read_objects.push_back(object);
    }
  }
  return node.rows;
}

int64_t Executor::ExecModifyTable(const PlanNode& node, ExecContext* context) {
  VPROF_FUNC("ExecModifyTable");
  int64_t produced = 0;
  for (const auto& child : node.children) {
    produced += ExecProcNode(*child, context);
  }
  TupleWork(static_cast<int>(node.rows) * 3);  // heap update + index maint
  for (int64_t i = 0; i < node.rows; ++i) {
    const uint64_t object = node.table_base + context->rng->NextBelow(10000) + 1;
    context->conflicts +=
        predicate_locks_->CheckWriteConflicts(context->txn_id, object);
    context->wal_bytes += 180;  // per-row redo
  }
  return produced + node.rows;
}

int64_t Executor::ExecNestLoop(const PlanNode& node, ExecContext* context) {
  VPROF_FUNC("ExecNestLoop");
  int64_t produced = 0;
  for (const auto& child : node.children) {
    produced += ExecProcNode(*child, context);
  }
  TupleWork(static_cast<int>(produced));
  return produced;
}

int64_t Executor::ExecAgg(const PlanNode& node, ExecContext* context) {
  VPROF_FUNC("ExecAgg");
  int64_t produced = 0;
  for (const auto& child : node.children) {
    produced += ExecProcNode(*child, context);
  }
  TupleWork(static_cast<int>(produced / 2));
  return 1;
}

}  // namespace minipg
