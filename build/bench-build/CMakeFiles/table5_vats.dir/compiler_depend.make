# Empty compiler generated dependencies file for table5_vats.
# This may be replaced when dependencies are built.
