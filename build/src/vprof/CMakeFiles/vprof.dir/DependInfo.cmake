
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vprof/analysis/call_graph.cc" "src/vprof/CMakeFiles/vprof.dir/analysis/call_graph.cc.o" "gcc" "src/vprof/CMakeFiles/vprof.dir/analysis/call_graph.cc.o.d"
  "/root/repo/src/vprof/analysis/chrome_trace.cc" "src/vprof/CMakeFiles/vprof.dir/analysis/chrome_trace.cc.o" "gcc" "src/vprof/CMakeFiles/vprof.dir/analysis/chrome_trace.cc.o.d"
  "/root/repo/src/vprof/analysis/critical_path.cc" "src/vprof/CMakeFiles/vprof.dir/analysis/critical_path.cc.o" "gcc" "src/vprof/CMakeFiles/vprof.dir/analysis/critical_path.cc.o.d"
  "/root/repo/src/vprof/analysis/factor_selection.cc" "src/vprof/CMakeFiles/vprof.dir/analysis/factor_selection.cc.o" "gcc" "src/vprof/CMakeFiles/vprof.dir/analysis/factor_selection.cc.o.d"
  "/root/repo/src/vprof/analysis/flat_profile.cc" "src/vprof/CMakeFiles/vprof.dir/analysis/flat_profile.cc.o" "gcc" "src/vprof/CMakeFiles/vprof.dir/analysis/flat_profile.cc.o.d"
  "/root/repo/src/vprof/analysis/profiler.cc" "src/vprof/CMakeFiles/vprof.dir/analysis/profiler.cc.o" "gcc" "src/vprof/CMakeFiles/vprof.dir/analysis/profiler.cc.o.d"
  "/root/repo/src/vprof/analysis/report.cc" "src/vprof/CMakeFiles/vprof.dir/analysis/report.cc.o" "gcc" "src/vprof/CMakeFiles/vprof.dir/analysis/report.cc.o.d"
  "/root/repo/src/vprof/analysis/variance_tree.cc" "src/vprof/CMakeFiles/vprof.dir/analysis/variance_tree.cc.o" "gcc" "src/vprof/CMakeFiles/vprof.dir/analysis/variance_tree.cc.o.d"
  "/root/repo/src/vprof/full_tracer.cc" "src/vprof/CMakeFiles/vprof.dir/full_tracer.cc.o" "gcc" "src/vprof/CMakeFiles/vprof.dir/full_tracer.cc.o.d"
  "/root/repo/src/vprof/registry.cc" "src/vprof/CMakeFiles/vprof.dir/registry.cc.o" "gcc" "src/vprof/CMakeFiles/vprof.dir/registry.cc.o.d"
  "/root/repo/src/vprof/runtime.cc" "src/vprof/CMakeFiles/vprof.dir/runtime.cc.o" "gcc" "src/vprof/CMakeFiles/vprof.dir/runtime.cc.o.d"
  "/root/repo/src/vprof/sync.cc" "src/vprof/CMakeFiles/vprof.dir/sync.cc.o" "gcc" "src/vprof/CMakeFiles/vprof.dir/sync.cc.o.d"
  "/root/repo/src/vprof/trace.cc" "src/vprof/CMakeFiles/vprof.dir/trace.cc.o" "gcc" "src/vprof/CMakeFiles/vprof.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/statkit/CMakeFiles/statkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
