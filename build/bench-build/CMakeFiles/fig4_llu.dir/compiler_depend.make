# Empty compiler generated dependencies file for fig4_llu.
# This may be replaced when dependencies are built.
