// NetServer: the epoll front-end that puts a real wire boundary in front of
// the engines (ROADMAP item 1).
//
// One event-loop thread owns the listener and every connection: non-blocking
// accept, edge-triggered reads into a bounded FrameParser, edge-triggered
// writes out of a bounded per-connection outbox. Parsed requests are
// dispatched to a worker pool through an instrumented vprof::TaskQueue; the
// same bounded-queue shedding httpd uses generalizes to the accept path —
// when the dispatch queue is at max_dispatch_depth the loop answers
// kRejected (a 503) immediately instead of deepening the backlog.
//
// Semantic-interval anchoring (the reason this layer exists, paper
// Section 3.1): the interval begins on the event-loop thread the moment a
// complete request frame becomes readable — the "net:readable" probe wraps
// parse + dispatch — and ends on the worker after the reply buffer is handed
// back to the connection. The TaskQueue's created-by edge lets the
// critical-path walker jump from the worker back through the dispatch queue
// into the epoll wakeup, and the enqueue-to-dequeue gap surfaces as the
// "net:queue_wait" variance factor (CriticalPathOptions::queue_wait_factor).
//
// Robustness: per-connection state machines are bounded in every dimension —
// frame size (protocol.h), outbox bytes (slow-peer eviction), connection
// count, idle time — and the socket layer evaluates the net/* failpoints so
// chaos storms reach the accept/read/write paths deterministically.
#ifndef SRC_NET_SERVER_H_
#define SRC_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/net/event_loop.h"
#include "src/net/protocol.h"
#include "src/net/socket.h"
#include "src/vprof/runtime.h"
#include "src/vprof/task_queue.h"

namespace net {

// Probe-site / factor names the analysis layers key on.
inline constexpr char kNetRootFunc[] = "net:request";
inline constexpr char kReadableFunc[] = "net:readable";
inline constexpr char kQueueWaitFactor[] = "net:queue_wait";

// One backend-side span: everything dist::TraceStitcher needs to splice this
// server's work for one RPC into the originating tier's interval. Recorded
// on the worker thread right before the reply is posted.
struct ServerSpanRecord {
  ServiceId origin_service = ServiceId::kUnknown;
  uint64_t origin_interval_id = 0;  // the front tier's vprof sid
  uint64_t span_id = 0;             // unique per RPC within the origin
  vprof::IntervalId local_sid = vprof::kNoInterval;  // this process's interval
  vprof::TimeNs recv_time_ns = 0;   // local fastclock at frame dispatch
  vprof::TimeNs reply_time_ns = 0;  // local fastclock when the reply was built
  vprof::ThreadId loop_tid = vprof::kNoThread;
  vprof::ThreadId worker_tid = vprof::kNoThread;
};

struct NetServerOptions {
  uint16_t port = 0;  // 0 = ephemeral; NetServer::port() reports the bound one
  int backlog = 512;
  int workers = 2;

  // Dispatch-queue depth at which requests are shed with kRejected
  // (httpd-style 503). 0 = unbounded.
  size_t max_dispatch_depth = 0;

  // Connections beyond this are accepted and immediately closed.
  size_t max_connections = 8192;

  // A connection whose pending outbox exceeds this many bytes is evicted
  // (slow peer): its responses are dropped and the socket closed, so one
  // non-draining client cannot pin server memory or stall the loop.
  size_t write_buffer_cap = 256 * 1024;

  // Idle eviction: connections with no readable activity for this long are
  // closed on the sweep tick. 0 disables.
  int64_t idle_timeout_ms = 0;
  int sweep_interval_ms = 50;

  // Bytes per read(2) call on the drain loop.
  size_t read_chunk_bytes = 16 * 1024;

  // Distributed-profiling hook: when set, every request carrying a
  // trace-context extension gets (a) a server-timing extension on its reply
  // and (b) a ServerSpanRecord delivered here from the worker thread after
  // the handler ran. Must be thread-safe; keep it cheap (it sits between the
  // handler and the reply post).
  std::function<void(const ServerSpanRecord&)> span_sink;
};

// Relaxed counters; Snapshot() gives a consistent-enough copy for tests.
struct NetServerStats {
  uint64_t accepted = 0;          // connections admitted to the loop
  uint64_t accept_errors = 0;     // net/accept_error firings
  uint64_t accept_overflow = 0;   // closed at max_connections
  uint64_t closed = 0;            // connections torn down (any reason)
  uint64_t read_eofs = 0;         // peer (or injected) EOF
  uint64_t protocol_errors = 0;   // FrameParser violations
  uint64_t recovered_frames = 0;  // skipped frames answered with typed kError
  uint64_t clock_syncs = 0;       // calibration probes answered inline
  uint64_t requests = 0;          // complete request frames parsed
  uint64_t dispatched = 0;        // handed to the worker pool
  uint64_t rejected = 0;          // shed at the dispatch queue
  uint64_t replies_sent = 0;      // reply frames fully written to a socket
  uint64_t replies_dropped = 0;   // reply's connection was already gone
  uint64_t slow_peer_evictions = 0;
  uint64_t idle_evictions = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t current_connections = 0;
  uint64_t peak_connections = 0;
  uint64_t peak_dispatch_depth = 0;
};

class NetServer {
 public:
  // Executed on a worker thread; returns the reply frame (request_id is
  // overwritten with the request's id by the server).
  using Handler = std::function<Frame(const Frame& request)>;

  NetServer(const NetServerOptions& options, Handler handler);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  // Binds, spawns the loop and worker threads. False when the listener or
  // epoll could not be created (port in use, fd exhaustion).
  bool Start();

  // Stops accepting, drains the dispatch queue through the workers,
  // best-effort flushes pending replies, closes every connection and joins
  // all threads. Idempotent.
  void Shutdown();

  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  NetServerStats stats() const;

  // vprof tids of the loop thread and every worker, in registration order
  // (loop first). dist::SplitByTier uses this roster to assign this server's
  // threads to its tier when the two tiers share a process; each tid is
  // stable for the life of the OS thread. Valid after Start() returns and
  // the threads have spun up (they register before their first poll/pop).
  std::vector<vprof::ThreadId> ProfiledTids() const;

  // Registers the front-end's probe/factor names plus the virtual
  // "net:request" super-root whose children are the engine's own interval
  // root and the net-side factors — the shape both the offline Profiler and
  // vprofd instrument first. Call after the engine's RegisterCallGraph.
  static void RegisterNetCallGraph(vprof::CallGraph* graph,
                                   std::string_view engine_root);

 private:
  struct Conn {
    Fd fd;
    uint64_t id = 0;
    FrameParser parser;
    std::string outbox;     // bytes not yet written
    size_t out_offset = 0;  // written prefix of outbox
    bool wants_write = false;
    bool closing = false;  // flush outbox, then close (protocol error path)
    int64_t last_activity_ms = 0;
  };

  struct Task {
    vprof::IntervalId sid = vprof::kNoInterval;
    uint64_t conn_id = 0;
    Frame request;
    // Distributed request bookkeeping (request carried a trace context).
    vprof::TimeNs recv_time_ns = 0;
    vprof::ThreadId loop_tid = vprof::kNoThread;
  };

  // --- loop-thread only ---------------------------------------------------
  void OnListenerReadable();
  void OnConnEvent(uint64_t conn_id, uint32_t events);
  void HandleFrame(Conn* conn, Frame frame);
  void QueueBytes(Conn* conn, const std::string& bytes);
  void FlushConn(Conn* conn);
  void CloseConn(uint64_t conn_id);
  void SweepConnections();
  int64_t NowMs() const;

  // --- worker threads -----------------------------------------------------
  void WorkerLoop();

  NetServerOptions options_;
  Handler handler_;

  EventLoop loop_;
  Fd listener_;
  uint16_t port_ = 0;

  std::thread loop_thread_;
  std::vector<std::thread> workers_;
  vprof::TaskQueue<Task> dispatch_;

  uint64_t next_conn_id_ = 1;  // loop-thread only
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;

  void RegisterTid(vprof::ThreadId tid);
  mutable std::mutex tids_mu_;
  std::vector<vprof::ThreadId> profiled_tids_;

  std::atomic<bool> running_{false};
  std::atomic<bool> shut_down_{false};

  struct AtomicStats;
  std::unique_ptr<AtomicStats> stats_;
};

}  // namespace net

#endif  // SRC_NET_SERVER_H_
