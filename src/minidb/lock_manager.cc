#include "src/minidb/lock_manager.h"

#include <algorithm>

#include "src/minidb/transaction.h"
#include "src/vprof/fastclock.h"
#include "src/vprof/probe.h"

namespace minidb {

LockManager::LockManager(LockScheduling scheduling, int64_t wait_timeout_ns,
                         bool detect_deadlocks, int shard_count,
                         int range_bits)
    : scheduling_(scheduling),
      wait_timeout_ns_(wait_timeout_ns),
      detect_deadlocks_(detect_deadlocks),
      range_bits_(range_bits < 0 ? 0 : (range_bits > 63 ? 63 : range_bits)),
      shards_(shard_count < 1 ? 1 : static_cast<size_t>(shard_count)) {}

std::vector<uint64_t> LockManager::HoldersOf(uint64_t object_id, uint64_t self) {
  Shard& shard = ShardFor(object_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.queues.find(object_id);
  std::vector<uint64_t> holders;
  if (it == shard.queues.end()) {
    return holders;
  }
  for (const Request& r : it->second.granted) {
    if (r.trx_id != self) {
      holders.push_back(r.trx_id);
    }
  }
  return holders;
}

bool LockManager::WouldDeadlock(uint64_t waiter_trx, uint64_t object_id) {
  // BFS over the wait-for graph: waiter -> holders of the wanted object ->
  // objects those transactions wait on -> their holders -> ... A path back
  // to `waiter_trx` is a cycle. Shard and waiting_for_ mutexes are taken one
  // at a time, so the walk sees a possibly inconsistent snapshot; that makes
  // the check advisory (see header), never blocking.
  std::vector<uint64_t> frontier = HoldersOf(object_id, waiter_trx);
  std::unordered_map<uint64_t, bool> visited;
  while (!frontier.empty()) {
    const uint64_t trx = frontier.back();
    frontier.pop_back();
    if (trx == waiter_trx) {
      return true;
    }
    if (visited[trx]) {
      continue;
    }
    visited[trx] = true;
    uint64_t waits_on = 0;
    bool is_waiting = false;
    {
      std::lock_guard<std::mutex> lock(waiting_for_mu_);
      auto it = waiting_for_.find(trx);
      if (it != waiting_for_.end()) {
        waits_on = it->second;
        is_waiting = true;
      }
    }
    if (!is_waiting) {
      continue;
    }
    for (uint64_t holder : HoldersOf(waits_on, trx)) {
      frontier.push_back(holder);
    }
  }
  return false;
}

bool LockManager::Holds(const Transaction* trx, uint64_t object_id,
                        LockMode mode) const {
  const Shard& shard = ShardFor(object_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.queues.find(object_id);
  if (it == shard.queues.end()) {
    return false;
  }
  for (const Request& r : it->second.granted) {
    if (r.trx_id == trx->id() &&
        (r.mode == LockMode::kExclusive || mode == LockMode::kShared)) {
      return true;
    }
  }
  return false;
}

LockResult LockManager::LockEx(Transaction* trx, uint64_t object_id,
                               LockMode mode) {
  VPROF_FUNC("lock_rec_lock");
  Shard& shard = ShardFor(object_id);
  OsEvent* wait_event = nullptr;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    Queue& queue = shard.queues[object_id];

    // Re-entrant / upgrade handling against our own granted entries.
    for (Request& r : queue.granted) {
      if (r.trx_id != trx->id()) {
        continue;
      }
      if (r.mode == LockMode::kExclusive || mode == LockMode::kShared) {
        return LockResult::kGranted;  // already strong enough
      }
      // Shared held, exclusive requested: upgrade in place if we are alone.
      if (queue.granted.size() == 1) {
        r.mode = LockMode::kExclusive;
        ++shard.stats.upgrades;
        return LockResult::kGranted;
      }
      break;  // must wait for the other holders
    }

    const bool others_compatible = std::all_of(
        queue.granted.begin(), queue.granted.end(), [&](const Request& r) {
          return r.trx_id == trx->id() || Compatible(r.mode, mode);
        });
    if (queue.waiting.empty() && others_compatible) {
      Request granted;
      granted.trx_id = trx->id();
      granted.trx_start_ts = trx->start_ts();
      granted.mode = mode;
      granted.granted = true;
      queue.granted.push_back(std::move(granted));
      trx->AddLock(object_id);
      ++shard.stats.immediate_grants;
      return LockResult::kGranted;
    }

    Request waiter;
    waiter.trx_id = trx->id();
    waiter.trx_start_ts = trx->start_ts();
    waiter.mode = mode;
    waiter.event = std::make_unique<OsEvent>();
    wait_event = waiter.event.get();
    queue.waiting.push_back(std::move(waiter));
    ++shard.stats.waits;
  }

  // Publish the wait-for edge, then check whether blocking here would close
  // a cycle; the requester that would deadlock aborts instead of waiting.
  {
    std::lock_guard<std::mutex> lock(waiting_for_mu_);
    waiting_for_[trx->id()] = object_id;
  }
  bool granted = false;
  bool deadlocked = false;
  if (detect_deadlocks_ && WouldDeadlock(trx->id(), object_id)) {
    deadlocked = true;
  } else {
    // Sleep on the per-request event; the releasing thread Sets it,
    // producing the os_event_wait invocation + wake-up edge the profiler
    // analyzes.
    const int64_t wait_start = vprof::fastclock::NowNs();
    granted = wait_event->WaitFor(wait_timeout_ns_);
    shard.wait_ns.fetch_add(
        static_cast<uint64_t>(vprof::fastclock::NowNs() - wait_start),
        std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(waiting_for_mu_);
    waiting_for_.erase(trx->id());
  }
  if (granted) {
    trx->AddLock(object_id);
    return LockResult::kGranted;
  }

  // Deadlock or timeout: withdraw the waiting request (it may have been
  // granted during the race window, in which case we keep it).
  std::lock_guard<std::mutex> lock(shard.mu);
  Queue& queue = shard.queues[object_id];
  for (auto it = queue.waiting.begin(); it != queue.waiting.end(); ++it) {
    if (it->trx_id == trx->id() && it->mode == mode) {
      queue.waiting.erase(it);
      if (deadlocked) {
        ++shard.stats.deadlocks;
      } else {
        ++shard.stats.timeouts;
      }
      return deadlocked ? LockResult::kDeadlock : LockResult::kTimeout;
    }
  }
  // Already granted between the failure and here.
  trx->AddLock(object_id);
  return LockResult::kGranted;
}

void LockManager::GrantWaiters(Queue& queue) {
  while (!queue.waiting.empty()) {
    // Pick the next candidate per policy.
    auto candidate = queue.waiting.begin();
    if (scheduling_ == LockScheduling::kVats) {
      candidate = std::min_element(
          queue.waiting.begin(), queue.waiting.end(),
          [](const Request& a, const Request& b) {
            return a.trx_start_ts < b.trx_start_ts;
          });
    }
    const bool grantable = std::all_of(
        queue.granted.begin(), queue.granted.end(), [&](const Request& r) {
          return r.trx_id == candidate->trx_id ||
                 Compatible(r.mode, candidate->mode);
        });
    if (!grantable) {
      return;
    }
    Request req = std::move(*candidate);
    queue.waiting.erase(candidate);
    // Upgrade: replace our own shared entry instead of duplicating. The
    // event is moved into the granted entry so it outlives the waiter's
    // wake-up (it is destroyed only when the lock is released).
    OsEvent* event = nullptr;
    for (Request& r : queue.granted) {
      if (r.trx_id == req.trx_id) {
        r.mode = LockMode::kExclusive;
        r.event = std::move(req.event);
        event = r.event.get();
        break;
      }
    }
    if (event == nullptr) {
      req.granted = true;
      queue.granted.push_back(std::move(req));
      event = queue.granted.back().event.get();
    }
    event->Set();
  }
}

void LockManager::ReleaseAll(Transaction* trx) {
  VPROF_FUNC("lock_release");
  for (uint64_t object_id : trx->lock_set()) {
    Shard& shard = ShardFor(object_id);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.queues.find(object_id);
    if (it == shard.queues.end()) {
      continue;
    }
    Queue& queue = it->second;
    queue.granted.erase(
        std::remove_if(queue.granted.begin(), queue.granted.end(),
                       [&](const Request& r) { return r.trx_id == trx->id(); }),
        queue.granted.end());
    GrantWaiters(queue);
    if (queue.granted.empty() && queue.waiting.empty()) {
      shard.queues.erase(it);
    }
  }
  trx->ClearLocks();
}

LockStats LockManager::stats() const {
  LockStats total;
  for (size_t i = 0; i < shards_.size(); ++i) {
    total += ShardStats(static_cast<int>(i));
  }
  return total;
}

LockStats LockManager::ShardStats(int shard) const {
  if (shard < 0 || static_cast<size_t>(shard) >= shards_.size()) {
    return LockStats{};
  }
  const Shard& s = shards_[static_cast<size_t>(shard)];
  LockStats out;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    out = s.stats;
  }
  out.wait_ns = s.wait_ns.load(std::memory_order_relaxed);
  return out;
}

size_t LockManager::ActiveObjects() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.queues.size();
  }
  return n;
}

}  // namespace minidb
