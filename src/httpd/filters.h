// The request-processing path: default handler, apr_file_open, HTTP header
// construction, and the recursive output filter chain (ap_pass_brigade).
// Instrumented function names match the paper's Table 7 factors.
#ifndef SRC_HTTPD_FILTERS_H_
#define SRC_HTTPD_FILTERS_H_

#include <cstdint>
#include <mutex>
#include <unordered_set>

#include "src/httpd/brigade.h"
#include "src/simio/disk.h"

namespace httpd {

// OS page cache for static files: hits cost a memcpy, misses a disk read.
class PageCache {
 public:
  PageCache(int capacity_files, simio::Disk* disk)
      : capacity_(capacity_files), disk_(disk) {}

  // Returns true on a cache hit. Misses read from disk and populate.
  bool ReadFile(uint64_t file_id, uint64_t bytes);

 private:
  const int capacity_;
  simio::Disk* disk_;
  std::mutex mu_;
  std::unordered_set<uint64_t> cached_;
};

// An output filter in the chain; filters run via ap_pass_brigade recursion.
struct Filter {
  enum class Kind { kContentLength, kHeader, kCoreOutput };
  Kind kind = Kind::kCoreOutput;
  Filter* next = nullptr;
};

// Recursive dispatch down the filter chain (instrumented ap_pass_brigade).
void ApPassBrigade(Filter* filter, Brigade* brigade);

// Opens a static file: allocates the file bucket and consults the page cache
// (instrumented apr_file_open).
void AprFileOpen(uint64_t file_id, uint64_t bytes, Brigade* brigade,
                 PageCache* cache);

// Builds the HTTP response header into the brigade (instrumented
// basic_http_header).
void BasicHttpHeader(Brigade* brigade);

}  // namespace httpd

#endif  // SRC_HTTPD_FILTERS_H_
