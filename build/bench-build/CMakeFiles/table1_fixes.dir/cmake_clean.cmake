file(REMOVE_RECURSE
  "../bench/table1_fixes"
  "../bench/table1_fixes.pdb"
  "CMakeFiles/table1_fixes.dir/table1_fixes.cc.o"
  "CMakeFiles/table1_fixes.dir/table1_fixes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_fixes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
