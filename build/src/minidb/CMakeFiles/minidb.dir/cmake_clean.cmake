file(REMOVE_RECURSE
  "CMakeFiles/minidb.dir/btree.cc.o"
  "CMakeFiles/minidb.dir/btree.cc.o.d"
  "CMakeFiles/minidb.dir/buffer_pool.cc.o"
  "CMakeFiles/minidb.dir/buffer_pool.cc.o.d"
  "CMakeFiles/minidb.dir/engine.cc.o"
  "CMakeFiles/minidb.dir/engine.cc.o.d"
  "CMakeFiles/minidb.dir/lock_manager.cc.o"
  "CMakeFiles/minidb.dir/lock_manager.cc.o.d"
  "CMakeFiles/minidb.dir/redo_log.cc.o"
  "CMakeFiles/minidb.dir/redo_log.cc.o.d"
  "CMakeFiles/minidb.dir/table.cc.o"
  "CMakeFiles/minidb.dir/table.cc.o.d"
  "libminidb.a"
  "libminidb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minidb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
