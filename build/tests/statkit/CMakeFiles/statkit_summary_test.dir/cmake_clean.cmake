file(REMOVE_RECURSE
  "CMakeFiles/statkit_summary_test.dir/summary_test.cc.o"
  "CMakeFiles/statkit_summary_test.dir/summary_test.cc.o.d"
  "statkit_summary_test"
  "statkit_summary_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statkit_summary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
