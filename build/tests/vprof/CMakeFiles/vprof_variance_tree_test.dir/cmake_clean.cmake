file(REMOVE_RECURSE
  "CMakeFiles/vprof_variance_tree_test.dir/variance_tree_test.cc.o"
  "CMakeFiles/vprof_variance_tree_test.dir/variance_tree_test.cc.o.d"
  "vprof_variance_tree_test"
  "vprof_variance_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vprof_variance_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
