# Empty compiler generated dependencies file for minidb_table_test.
# This may be replaced when dependencies are built.
