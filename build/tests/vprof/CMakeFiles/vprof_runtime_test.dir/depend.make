# Empty dependencies file for vprof_runtime_test.
# This may be replaced when dependencies are built.
