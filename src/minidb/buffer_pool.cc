#include "src/minidb/buffer_pool.h"

#include <thread>

#include "src/vprof/probe.h"

namespace minidb {

namespace {
constexpr uint64_t kPageBytes = 8192;
}  // namespace

BufferPool::BufferPool(int capacity_pages, BufferPolicy policy,
                       int llu_try_iterations, simio::Disk* disk)
    : capacity_(capacity_pages),
      policy_(policy),
      llu_try_iterations_(llu_try_iterations),
      disk_(disk) {}

void BufferPool::PoolMutexEnter() {
  VPROF_FUNC("buf_pool_mutex_enter");
  pool_mu_.lock();
}

void BufferPool::PoolMutexSpinEnter() {
  VPROF_FUNC("buf_pool_mutex_enter");
  while (!pool_mu_.try_lock()) {
    // Spin with a yield so the single-core holder can make progress; the
    // elapsed time lands in this function's profile rather than a blocked
    // segment, exactly as a userspace spin lock behaves.
    std::this_thread::yield();
  }
}

bool BufferPool::PoolMutexTryEnterBounded() {
  VPROF_FUNC("buf_pool_mutex_enter");
  for (int i = 0; i < llu_try_iterations_; ++i) {
    if (pool_mu_.try_lock()) {
      return true;
    }
    std::this_thread::yield();
  }
  return false;
}

void BufferPool::TouchLru(Frame& frame) {
  lru_.splice(lru_.begin(), lru_, frame.lru_pos);
  frame.deferred_move = false;
  // Young/old sublist bookkeeping performed under the pool mutex (InnoDB
  // maintains midpoint-insertion state on every move): ~1.5us of work that
  // makes the hit-path mutex hold non-trivial — the contention the LLU fix
  // targets.
  volatile uint64_t h = 1469598103934665603ull;
  for (int i = 0; i < 220; ++i) {
    h = (h ^ static_cast<uint64_t>(i)) * 1099511628211ull;
  }
  std::lock_guard<std::mutex> stats_lock(stats_mu_);
  ++stats_.lru_moves;
}

void BufferPool::GetPage(PageId page_id, bool for_write) {
  VPROF_FUNC("buf_page_get");
  // Page-hash probe (InnoDB's page hash latch).
  bool present;
  {
    std::lock_guard<std::mutex> hash_lock(hash_mu_);
    auto it = frames_.find(page_id);
    present = it != frames_.end();
    if (present && for_write) {
      it->second.dirty = true;
    }
  }

  if (present) {
    {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.hits;
    }
    // LRU maintenance under the global pool mutex — the call site the paper
    // blames for buf_pool_mutex_enter variance.
    bool acquired;
    switch (policy_) {
      case BufferPolicy::kBlockingMutex:
        PoolMutexEnter();
        acquired = true;
        break;
      case BufferPolicy::kSpinLock:
        PoolMutexSpinEnter();
        acquired = true;
        break;
      case BufferPolicy::kLazyLruUpdate:
        acquired = PoolMutexTryEnterBounded();
        break;
    }
    if (!acquired) {
      // LLU: skip the move, mark it deferred; the next access that does get
      // the mutex performs it.
      std::lock_guard<std::mutex> hash_lock(hash_mu_);
      auto it = frames_.find(page_id);
      if (it != frames_.end()) {
        it->second.deferred_move = true;
      }
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.lru_moves_skipped;
      return;
    }
    {
      std::lock_guard<std::mutex> hash_lock(hash_mu_);
      auto it = frames_.find(page_id);
      if (it != frames_.end()) {
        TouchLru(it->second);
        pool_mu_.unlock();
        return;
      }
    }
    // Evicted between the probe and the move: fall through to the miss path
    // while already holding the pool mutex.
    HandleMiss(page_id, for_write);
    pool_mu_.unlock();
    return;
  }

  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.misses;
  }
  PoolMutexEnter();
  HandleMiss(page_id, for_write);
  pool_mu_.unlock();
}

// Precondition: pool_mu_ held throughout.
void BufferPool::HandleMiss(PageId page_id, bool for_write) {
  {
    // Another thread may have loaded the page while we waited for the mutex.
    std::lock_guard<std::mutex> hash_lock(hash_mu_);
    auto it = frames_.find(page_id);
    if (it != frames_.end()) {
      if (for_write) {
        it->second.dirty = true;
      }
      TouchLru(it->second);
      return;
    }
  }

  // Evict while full. Pages whose LRU move was deferred by LLU get a second
  // chance (their move is "retried" now, as the LLU proposal specifies)
  // instead of being evicted while still hot. The victim write-back happens
  // while holding the pool mutex (InnoDB's legacy single-page-flush path).
  while (frames_.size() >= static_cast<size_t>(capacity_) && !lru_.empty()) {
    for (int scan = 0; scan < capacity_ && !lru_.empty(); ++scan) {
      const PageId tail = lru_.back();
      std::lock_guard<std::mutex> hash_lock(hash_mu_);
      auto it = frames_.find(tail);
      if (it == frames_.end() || !it->second.deferred_move) {
        break;
      }
      TouchLru(it->second);  // apply the deferred move
    }
    const PageId victim = lru_.back();
    bool victim_dirty = false;
    {
      std::lock_guard<std::mutex> hash_lock(hash_mu_);
      auto it = frames_.find(victim);
      if (it != frames_.end()) {
        victim_dirty = it->second.dirty;
        frames_.erase(it);
      }
    }
    lru_.pop_back();
    if (victim_dirty) {
      disk_->Write(kPageBytes);
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.dirty_evictions;
    } else {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.clean_evictions;
    }
  }

  // Read the page in (still under the pool mutex — together with the dirty
  // write-back above, this is what makes miss handling the long-hold path
  // the 2-WH case study observes).
  disk_->Read(kPageBytes);
  std::lock_guard<std::mutex> hash_lock(hash_mu_);
  lru_.push_front(page_id);
  Frame frame;
  frame.page_id = page_id;
  frame.dirty = for_write;
  frame.lru_pos = lru_.begin();
  frames_.emplace(page_id, frame);
}

BufferPoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> stats_lock(stats_mu_);
  return stats_;
}

size_t BufferPool::resident_pages() const {
  std::lock_guard<std::mutex> hash_lock(hash_mu_);
  return frames_.size();
}

bool BufferPool::CheckInvariants() const {
  std::lock_guard<std::mutex> hash_lock(hash_mu_);
  if (frames_.size() > static_cast<size_t>(capacity_)) {
    return false;
  }
  if (frames_.size() != lru_.size()) {
    return false;
  }
  for (PageId pid : lru_) {
    if (frames_.find(pid) == frames_.end()) {
      return false;
    }
  }
  return true;
}

}  // namespace minidb
