// Reproduces paper Table 2: the manual effort of applying VProfiler to each
// system — semantic-interval annotations, synchronization wrappers, and the
// size of the eventual fixes. Our counts are measured from this repository's
// sources (the engines are deliberately small; the paper's absolute numbers
// for 1.5M-line codebases are shown alongside).
#include <cstdio>

#include "bench/common.h"
#include "src/vprof/registry.h"

namespace {

struct EffortRow {
  const char* system;
  int annotation_lines;        // BeginInterval/EndInterval/WorkOnBehalf sites
  const char* paper_annotations;
  int instrumentable_functions;  // functions carrying VPROF_FUNC probes
  int fix_lines;               // lines changed by the fix in this repo
  const char* paper_fix_lines;
};

}  // namespace

int main() {
  bench::PrintHeader("Table 2 — manual effort of applying VProfiler");

  // Register each engine's instrumentable functions so the registry count
  // below reflects the real instrumentation surface.
  vprof::CallGraph minidb_graph;
  minidb::Engine::RegisterCallGraph(&minidb_graph);
  vprof::CallGraph minipg_graph;
  minipg::PgEngine::RegisterCallGraph(&minipg_graph);
  vprof::CallGraph httpd_graph;
  httpd::HttpServer::RegisterCallGraph(&httpd_graph);

  // Annotation sites measured from src/: minidb (BeginInterval+EndInterval in
  // Engine::Execute), minipg (PgEngine::Execute), httpd (submission-side
  // Begin/End plus the two WorkOnBehalf calls in the worker loop).
  const EffortRow rows[] = {
      {"minidb (MySQL)", 2, "9 lines", 13, 46, "235 (VATS 189 + LLU 46)"},
      {"minipg (Postgres)", 2, "7 lines", 12, 60, "355"},
      {"httpd (Apache)", 4, "4 lines", 9, 35, "45"},
  };

  std::printf("  %-20s %-24s %-22s %-12s\n", "system",
              "interval annotations", "instrumented funcs", "fix size");
  for (const EffortRow& row : rows) {
    std::printf("  %-20s %2d lines (paper: %-8s) %3d functions          "
                "%3d lines (paper: %s)\n",
                row.system, row.annotation_lines, row.paper_annotations,
                row.instrumentable_functions, row.fix_lines,
                row.paper_fix_lines);
  }

  std::printf("\n  registered instrumentable functions at startup: %zu\n",
              vprof::RegisteredFunctionCount());
  std::printf("  (the paper's systems expose 30K functions; VProfiler's value\n"
              "   is that only a handful ever need inspection)\n");
  return 0;
}
