#include "src/httpd/bucket_alloc.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace httpd {
namespace {

// Pin the pressure phase so tests are independent of wall-clock windows.
class CalmEnvironment : public ::testing::Environment {
 public:
  void SetUp() override { GlobalFreeList::SetPressureOverrideForTesting(0); }
  void TearDown() override {
    GlobalFreeList::SetPressureOverrideForTesting(-1);
  }
};
const auto* const kCalm =
    ::testing::AddGlobalTestEnvironment(new CalmEnvironment());

TEST(GlobalFreeListTest, PressuredWindowForcesSystemAlloc) {
  GlobalFreeList::SetPressureOverrideForTesting(1);
  GlobalFreeList list(100, /*bulk=*/false);
  list.Take(1);  // plenty of blocks, but pressure reclaims the list
  EXPECT_EQ(list.system_allocs(), 1u);
  GlobalFreeList::SetPressureOverrideForTesting(0);
  list.Take(1);
  EXPECT_EQ(list.system_allocs(), 1u);  // calm again: free blocks suffice
}

TEST(GlobalFreeListTest, TakeAndGive) {
  GlobalFreeList list(10, /*bulk=*/false);
  EXPECT_EQ(list.free_blocks(), 10);
  EXPECT_EQ(list.Take(4), 4);
  EXPECT_EQ(list.free_blocks(), 6);
  list.Give(2);
  EXPECT_EQ(list.free_blocks(), 8);
  EXPECT_EQ(list.system_allocs(), 0u);
}

TEST(GlobalFreeListTest, EmptyTriggersSystemAlloc) {
  GlobalFreeList list(2, /*bulk=*/false);
  EXPECT_EQ(list.Take(2), 2);
  EXPECT_GT(list.Take(1), 0);  // forced system allocation
  EXPECT_EQ(list.system_allocs(), 1u);
}

TEST(GlobalFreeListTest, GiveRespectsRetentionCap) {
  GlobalFreeList list(8, /*bulk=*/false);  // cap = 8 in non-bulk mode
  list.Give(100);
  EXPECT_EQ(list.free_blocks(), 8);
}

TEST(GlobalFreeListTest, BulkModeAllocatesLargerChunks) {
  GlobalFreeList lean(1, /*bulk=*/false);
  GlobalFreeList bulk(1, /*bulk=*/true);
  lean.Take(1);
  bulk.Take(1);
  lean.Take(1);  // sysalloc: +4 blocks
  bulk.Take(1);  // sysalloc: +64 blocks
  EXPECT_GT(bulk.free_blocks(), lean.free_blocks());
}

TEST(BucketAllocatorTest, LocalCacheHitsAfterRefill) {
  GlobalFreeList list(64, /*bulk=*/true);
  BucketAllocator alloc(&list, /*bulk=*/true);
  alloc.Alloc();  // refill (16 blocks), consume 1
  alloc.Alloc();  // local hit
  alloc.Alloc();  // local hit
  const AllocatorStats stats = alloc.stats();
  EXPECT_EQ(stats.global_refills, 1u);
  EXPECT_EQ(stats.local_hits, 2u);
}

TEST(BucketAllocatorTest, NonBulkRefillsEveryAlloc) {
  GlobalFreeList list(64, /*bulk=*/false);
  BucketAllocator alloc(&list, /*bulk=*/false);
  alloc.Alloc();
  alloc.Alloc();
  EXPECT_EQ(alloc.stats().global_refills, 2u);  // refill_count == 1
}

TEST(BucketAllocatorTest, FreeReturnsSurplusGlobally) {
  GlobalFreeList list(64, /*bulk=*/false);
  BucketAllocator alloc(&list, /*bulk=*/false);
  const int before = list.free_blocks();
  for (int i = 0; i < 10; ++i) {
    alloc.Alloc();
  }
  for (int i = 0; i < 10; ++i) {
    alloc.Free();
  }
  // Surplus beyond the local limit went back to the global list.
  EXPECT_GE(list.free_blocks(), before - 5);
  EXPECT_LE(alloc.local_free(), 4);
}

TEST(BucketAllocatorTest, DestructorReturnsLocalCache) {
  GlobalFreeList list(64, /*bulk=*/false);
  {
    BucketAllocator alloc(&list, /*bulk=*/false);
    alloc.Alloc();
    alloc.Free();
  }
  EXPECT_EQ(list.free_blocks(), 64);
}

TEST(BucketAllocatorTest, ConcurrentChurnConsistent) {
  // Each thread keeps 12 buckets outstanding against an 8-block pool, so
  // pressure occurs even if the scheduler serializes the threads entirely.
  GlobalFreeList list(8, /*bulk=*/false);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&list] {
      BucketAllocator alloc(&list, /*bulk=*/false);
      for (int i = 0; i < 200; ++i) {
        for (int k = 0; k < 12; ++k) {
          alloc.Alloc();
        }
        for (int k = 0; k < 12; ++k) {
          alloc.Free();
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_GE(list.free_blocks(), 0);
  // Pressure occurred at least once with so small a pool.
  EXPECT_GT(list.system_allocs(), 0u);
}

}  // namespace
}  // namespace httpd
