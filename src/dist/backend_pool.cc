#include "src/dist/backend_pool.h"

#include <mutex>
#include <utility>

#include "src/vprof/probe.h"
#include "src/vprof/registry.h"

namespace dist {

void RegisterDistCallGraph(vprof::CallGraph* graph,
                           std::string_view backend_root) {
  vprof::RegisterFunction(net::kRpcCallFunc);
  vprof::RegisterFunction(kColdStartFunc);
  graph->AddEdge("process_request", net::kRpcCallFunc);
  graph->AddEdge(net::kRpcCallFunc, kColdStartFunc);
  graph->AddEdge(net::kRpcCallFunc, backend_root);
}

BackendPool::BackendPool(const BackendPoolOptions& options)
    : options_(options) {
  vprof::RegisterFunction(kColdStartFunc);
}

BackendPool::~BackendPool() { Shutdown(); }

bool BackendPool::Warm() { return EnsureReady(); }

bool BackendPool::Call(net::Frame request, net::Frame* reply) {
  if (!ready_.load(std::memory_order_acquire)) {
    // The probe opens before the mutex: every caller that piles up behind
    // the spawn blocks *inside* its own dist:cold_start invocation, so the
    // walker's coverage rule charges the wait to the cold start, not to an
    // anonymous blocked residual.
    VPROF_FUNC(kColdStartFunc);
    if (!EnsureReady()) {
      return false;
    }
  }
  return client_->Call(std::move(request), reply);
}

bool BackendPool::EnsureReady() {
  std::lock_guard<vprof::Mutex> lock(spawn_mu_);
  if (ready_.load(std::memory_order_acquire)) {
    return true;
  }
  uint16_t port = options_.port;
  if (port == 0 || options_.cold_start) {
    if (!options_.spawn) {
      return false;
    }
    port = options_.spawn();
    if (port == 0) {
      return false;
    }
    cold_starts_.fetch_add(1, std::memory_order_relaxed);
  }
  net::AsyncClientOptions client_options;
  client_options.port = port;
  client_options.connections = options_.connections;
  client_options.service = options_.service;
  client_options.call_timeout_ns = options_.call_timeout_ns;
  client_options.span_sink = options_.span_sink;
  auto client = std::make_unique<net::AsyncClient>(client_options);
  if (!client->Connect()) {
    return false;
  }
  calibration_ = client->CalibrateClock(options_.calibrate_rounds);
  client_ = std::move(client);
  ready_.store(true, std::memory_order_release);
  return true;
}

void BackendPool::Shutdown() {
  std::lock_guard<vprof::Mutex> lock(spawn_mu_);
  ready_.store(false, std::memory_order_release);
  if (client_) {
    client_->Shutdown();
    client_.reset();
  }
}

net::ClockCalibration BackendPool::calibration() const {
  if (!ready_.load(std::memory_order_acquire)) {
    return net::ClockCalibration{};
  }
  return calibration_;
}

vprof::ThreadId BackendPool::loop_tid() const {
  if (!ready_.load(std::memory_order_acquire)) {
    return vprof::kNoThread;
  }
  return client_->loop_tid();
}

net::AsyncClientStats BackendPool::client_stats() const {
  if (!ready_.load(std::memory_order_acquire)) {
    return net::AsyncClientStats{};
  }
  return client_->stats();
}

}  // namespace dist
