# Empty compiler generated dependencies file for integration_minidb_profile_test.
# This may be replaced when dependencies are built.
