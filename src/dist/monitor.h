// DistMonitor: the cross-tier view of the always-on service.
//
// Each tier (the httpd front, each minidb/minipg backend) runs its own
// Vprofd whose OnlineVarianceTree decomposes that tier's root interval. The
// monitor takes the per-tier snapshots and merges them under a synthetic
// "dist:request" root: the front tier's root *is* the end-to-end latency
// (its intervals span the RPCs), so the front snapshot provides the overall
// mean/variance, and each backend tier hangs off the root with
//
//   tier_share = Var(backend root) / Var(front root)
//
// — an approximation (the backend's variance as observed at the backend,
// not the portion surviving to the caller's critical path; the exact
// decomposition is the offline TraceStitcher's job). It is the right online
// quantity: cheap, monotone in the backend's misbehavior, and comparable
// across tiers because all clocks are calibrated to nanoseconds.
//
// TopFactors re-ranks every tier's Eq. 4 factors in one list by scaling
// each factor's contribution by its tier's share, so "minidb lock waits"
// and "front allocator" compete directly. Sample() flattens the merged view
// into statstore series:
//
//   tier:<name>:latency_mean_ns | :latency_variance_ns2 | :share
//   tier:<name>:intervals
//
// persisted next to the front daemon's node:* streams.
#ifndef SRC_DIST_MONITOR_H_
#define SRC_DIST_MONITOR_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/statstore/segment.h"
#include "src/vprof/analysis/call_graph.h"
#include "src/vprof/analysis/factor_selection.h"
#include "src/vprof/service/online_tree.h"

namespace dist {

struct TierConfig {
  std::string name;                         // "front", "minidb", ...
  bool is_front = false;                    // exactly one tier
  vprof::FuncId root = vprof::kInvalidFunc; // tier's interval root function
};

// One tier's row in the merged dist:request view.
struct TierStats {
  std::string name;
  bool is_front = false;
  double mean_ns = 0.0;
  double variance_ns2 = 0.0;
  double share = 0.0;  // Var(tier)/Var(front); 1.0 for the front itself
  uint64_t intervals = 0;
};

struct DistSnapshot {
  double end_to_end_mean_ns = 0.0;       // front root mean
  double end_to_end_variance_ns2 = 0.0;  // front root variance
  std::vector<TierStats> tiers;          // front first, then backends
};

// One tier's factor, re-ranked into the global list.
struct DistFactor {
  std::string tier;
  vprof::Factor factor;            // as aggregated within the tier
  double tier_share = 0.0;
  double global_contribution = 0.0;  // factor.contribution * tier_share
  double global_score = 0.0;         // specificity * global_contribution
};

class DistMonitor {
 public:
  // Tiers must be registered before their first Update; the first tier with
  // is_front set anchors the end-to-end axis.
  void RegisterTier(const TierConfig& config);

  // Replaces the tier's current snapshot (typically each vprofd epoch).
  void UpdateTier(const std::string& name,
                  const vprof::OnlineTreeSnapshot& snapshot);

  DistSnapshot Snapshot() const;

  // All tiers' factors in one list, sorted by global_score descending.
  // `graph` must contain every tier's functions (RegisterDistCallGraph plus
  // the engines' and httpd's graphs).
  std::vector<DistFactor> TopFactors(const vprof::CallGraph& graph,
                                     size_t top_k) const;

  // tier:* series for the current merged view, stamped with `epoch`.
  statstore::EpochSample Sample(uint64_t epoch) const;

  // Human-readable merged tree: the dist:request root, per-tier rows, and
  // each tier's top factors (used by examples/profile_dist).
  std::string ToText(const vprof::CallGraph& graph, size_t top_k) const;

 private:
  struct Tier {
    TierConfig config;
    vprof::OnlineTreeSnapshot snapshot;
    bool has_snapshot = false;
  };

  DistSnapshot SnapshotLocked() const;

  mutable std::mutex mu_;
  std::vector<Tier> tiers_;
};

}  // namespace dist

#endif  // SRC_DIST_MONITOR_H_
