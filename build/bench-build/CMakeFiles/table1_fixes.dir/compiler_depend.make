# Empty compiler generated dependencies file for table1_fixes.
# This may be replaced when dependencies are built.
