// vprofd: the always-on profiling service facade.
//
// Composes the three service pieces — epoch harvesting, the streaming
// variance tree, and the refinement controller — behind one object a server
// embeds next to its request loop:
//
//   vprof::VprofdOptions opts;
//   opts.root_function = "run_transaction";
//   opts.graph = graph;                       // static call graph
//   vprof::Vprofd daemon(opts);
//   daemon.Start();                           // workload keeps running
//   ... daemon.Snapshot(), daemon.MetricsText() from any thread ...
//   daemon.Stop();
//
// Each epoch the harvester hands the trace to the tree's Fold and then (if
// enabled) the controller's Step, which reshapes the probe bitmap before
// the next epoch starts — Algorithm 3 running unattended against live
// traffic, starting from top-level probes only.
#ifndef SRC_VPROF_SERVICE_VPROFD_H_
#define SRC_VPROF_SERVICE_VPROFD_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/statstore/regression.h"
#include "src/statstore/store.h"
#include "src/vprof/analysis/call_graph.h"
#include "src/vprof/service/controller.h"
#include "src/vprof/service/harvester.h"
#include "src/vprof/service/history.h"
#include "src/vprof/service/online_tree.h"
#include "src/vprof/service/supervisor.h"
#include "src/vprof/types.h"

namespace vprof {

// One application-published gauge sampled at each epoch boundary, e.g. a
// per-shard lock-wait counter or a group-commit batch size. Names should be
// scrape-clean dotted paths ("minidb.buf_pool.shard0.mutex_wait_ns"); they
// become statstore series "app:<name>" and the `series` label of
// vprofd_app_gauge.
struct AppGauge {
  std::string name;
  double value = 0.0;
};

struct VprofdOptions {
  // Function whose invocations delimit the semantic interval (the root of
  // every variance tree). Registered with the probe registry if needed.
  std::string root_function;

  // Static call graph used for specificity heights and controller descent.
  // Shared so the embedding server and the service can hold it jointly.
  std::shared_ptr<const CallGraph> graph;

  TimeNs epoch_ns = 100'000'000;  // 100 ms
  OnlineTreeOptions tree;
  ControllerOptions controller;

  // When false the probe bitmap is left alone and vprofd only aggregates
  // whatever the current instrumentation produces (used by the overhead
  // bench and by operators who want a fixed probe set).
  bool enable_controller = true;

  // Application gauges, sampled once per epoch on the harvester thread and
  // once per MetricsText() scrape. Persisted as "app:<name>" series next to
  // the epoch's node streams (when history is enabled) and exposed as
  // vprofd_app_gauge{series="<name>"}. Engines publish per-shard lock-wait
  // and group-commit batch-size gauges here so a scaling run's factor
  // migration is visible in the persisted history.
  std::function<std::vector<AppGauge>()> app_gauges;

  // Durable history: when history.dir is non-empty, every epoch's snapshot
  // is flattened (see history.h) and appended to a compressed statstore
  // there on the harvester thread, with the append latency tracked in the
  // store's stats. An existing store is recovered and extended; epoch ids
  // continue past the persisted tail.
  statstore::StoreOptions history;

  // Regression detection over per-node contribution shares. Defaults tuned
  // for share streams in [0, 1]: a factor must move by more than 5 points
  // AND 6 sigma of its decayed history (sigma floored at 1 point) to flag,
  // which rides out steady-workload wobble but catches a migrating factor
  // within an epoch or two.
  // Self-healing supervision: after each epoch the supervisor observes the
  // service's own health deltas (rotation gap, tracer drops, stuck threads,
  // history append errors) and walks the Normal -> Degraded -> Quarantined
  // escalation ladder, lengthening epochs, shedding app gauges, freezing
  // the controller, and ultimately turning tracing off while the served
  // workload runs untouched. See supervisor.h. Restoration is automatic.
  bool enable_supervisor = false;
  SupervisorOptions supervisor;

  statstore::RegressionOptions regression{
      .k_sigma = 6.0,
      .sigma_floor = 0.01,
      .min_abs_shift = 0.05,
      .half_life_epochs = 64.0,
      .warmup_epochs = 8,
      .cooldown_epochs = 8,
      .max_flags = 256,
  };
  bool enable_regression = true;
};

class Vprofd {
 public:
  explicit Vprofd(VprofdOptions options);
  ~Vprofd();

  Vprofd(const Vprofd&) = delete;
  Vprofd& operator=(const Vprofd&) = delete;

  // Applies the initial instrumentation (root + direct callees) and begins
  // harvesting. No-op if already running.
  void Start();

  // Harvests the final partial epoch and stops. Tracing is left off; the
  // aggregated tree remains queryable.
  void Stop();

  bool running() const { return harvester_.running(); }
  uint64_t epochs() const { return harvester_.epochs(); }
  TimeNs last_gap_ns() const { return harvester_.last_gap_ns(); }
  TimeNs max_gap_ns() const { return harvester_.max_gap_ns(); }
  TimeNs total_gap_ns() const { return harvester_.total_gap_ns(); }

  OnlineTreeSnapshot Snapshot() const { return tree_.Snapshot(); }
  ControllerStatus controller_status() const { return controller_.status(); }
  bool Converged(int stable_needed = 3) const {
    return controller_.Converged(stable_needed);
  }

  // The persisted history store; null when options.history.dir is empty.
  statstore::StatStore* history() { return store_.get(); }
  const statstore::StatStore* history() const { return store_.get(); }

  // The escalation-ladder supervisor (meaningful when
  // options.enable_supervisor is set; stays in Normal otherwise).
  const Supervisor& supervisor() const { return supervisor_; }
  SupervisorState supervisor_state() const { return supervisor_.state(); }

  const statstore::RegressionDetector& regression() const {
    return detector_;
  }
  std::vector<statstore::RegressionFlag> regression_flags() const {
    return detector_.flags();
  }

  // Prometheus text exposition: the tree's node metrics plus vprofd_*
  // service gauges (epochs, rotation gap, controller progress, history
  // persistence, regression flags). Sorted families with HELP/TYPE lines.
  std::string MetricsText() const;

 private:
  void HandleEpoch(Trace&& trace);

  VprofdOptions options_;
  FuncId root_ = kInvalidFunc;
  OnlineVarianceTree tree_;
  RefinementController controller_;
  statstore::RegressionDetector detector_;
  std::unique_ptr<statstore::StatStore> store_;
  bool store_opened_ = false;
  uint64_t epoch_base_ = 0;  // persisted epochs from before this process
  Supervisor supervisor_;
  // Previous cumulative counters, for per-epoch health deltas (harvester
  // thread only).
  uint64_t prev_dropped_records_ = 0;
  uint64_t prev_stuck_threads_ = 0;
  uint64_t prev_append_errors_ = 0;
  EpochHarvester harvester_;
};

}  // namespace vprof

#endif  // SRC_VPROF_SERVICE_VPROFD_H_
