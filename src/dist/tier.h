// Tier plumbing for cross-service profiling (ROADMAP item 5).
//
// A "tier" is one service's share of a distributed request: the httpd front
// tier that owns the semantic interval, and the minidb/minipg backend tiers
// it calls into over net::AsyncClient. Each tier contributes a vprof::Trace
// plus the span records its net layer logged (client spans for RPCs it
// issued, server spans for RPCs it served); dist::StitchTraces joins them
// into one trace whose critical paths cross the wire.
//
// Tiers may be separate processes (each SaveTrace'ing its own run) or share
// one process for tests and benchmarks — in the shared case one global
// StopTracing yields a single trace, and SplitByTids partitions it by thread
// roster into the same per-tier shape the cross-process path produces, so
// the stitcher is exercised identically either way.
#ifndef SRC_DIST_TIER_H_
#define SRC_DIST_TIER_H_

#include <mutex>
#include <string>
#include <vector>

#include "src/net/async_client.h"
#include "src/net/server.h"
#include "src/vprof/trace.h"

namespace dist {

// Thread-safe accumulator for the span records produced during one traced
// run. The net layer's sinks append from worker/caller threads; the
// harvester snapshots after StopTracing.
class SpanLog {
 public:
  void AddClient(const net::ClientSpanRecord& span);
  void AddServer(const net::ServerSpanRecord& span);

  std::vector<net::ClientSpanRecord> ClientSpans() const;
  std::vector<net::ServerSpanRecord> ServerSpans() const;
  void Clear();

  // Adapters for NetServerOptions::span_sink / AsyncClientOptions::span_sink.
  std::function<void(const net::ServerSpanRecord&)> ServerSink();
  std::function<void(const net::ClientSpanRecord&)> ClientSink();

 private:
  mutable std::mutex mu_;
  std::vector<net::ClientSpanRecord> client_;
  std::vector<net::ServerSpanRecord> server_;
};

// One tier's complete view of a run: its trace, the spans it logged, and the
// clock calibration mapping its fastclock onto the front tier's axis.
struct TierTrace {
  std::string name;
  net::ServiceId service = net::ServiceId::kUnknown;
  vprof::Trace trace;
  std::vector<net::ClientSpanRecord> client_spans;  // RPCs this tier issued
  std::vector<net::ServerSpanRecord> server_spans;  // RPCs this tier served
  // Add to this tier's timestamps to express them on the front tier's clock
  // (AsyncClient::CalibrateClock().offset_ns). 0 for the front itself, and
  // for backends sharing the front's process (one fastclock epoch).
  int64_t clock_offset_ns = 0;
};

// Partitions a single-process trace into per-roster traces by thread id.
// rosters[i] lists the tids belonging to output trace i; threads claimed by
// no roster fall to `default_index` (the front tier: load generators, main,
// and any helper thread count against the tier that owns the interval).
// Duration and function names are copied to every output.
std::vector<vprof::Trace> SplitByTids(
    const vprof::Trace& trace,
    const std::vector<std::vector<vprof::ThreadId>>& rosters,
    size_t default_index);

}  // namespace dist

#endif  // SRC_DIST_TIER_H_
