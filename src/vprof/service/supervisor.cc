#include "src/vprof/service/supervisor.h"

namespace vprof {

const char* SupervisorStateName(SupervisorState state) {
  switch (state) {
    case SupervisorState::kNormal:
      return "normal";
    case SupervisorState::kDegraded:
      return "degraded";
    case SupervisorState::kQuarantined:
      return "quarantined";
  }
  return "?";
}

Supervisor::Supervisor(SupervisorOptions options) : options_(options) {}

bool Supervisor::Unhealthy(const EpochHealth& health) const {
  return health.rotation_gap_ns > options_.max_rotation_gap_ns ||
         health.dropped_records > options_.max_dropped_records ||
         health.stuck_threads > options_.max_stuck_threads ||
         health.history_append_errors > options_.max_history_append_errors;
}

bool Supervisor::Observe(const EpochHealth& health) {
  std::lock_guard<std::mutex> lock(mu_);
  ++status_.epochs_observed;
  const bool unhealthy = Unhealthy(health);
  if (unhealthy) {
    ++status_.unhealthy_epochs;
    ++status_.unhealthy_streak;
    status_.healthy_streak = 0;
  } else {
    ++status_.healthy_streak;
    status_.unhealthy_streak = 0;
  }

  SupervisorState next = status_.state;
  if (unhealthy && status_.unhealthy_streak >= options_.escalate_after &&
      status_.state != SupervisorState::kQuarantined) {
    next = status_.state == SupervisorState::kNormal
               ? SupervisorState::kDegraded
               : SupervisorState::kQuarantined;
    ++status_.escalations;
  } else if (!unhealthy && status_.healthy_streak >= options_.restore_after &&
             status_.state != SupervisorState::kNormal) {
    next = status_.state == SupervisorState::kQuarantined
               ? SupervisorState::kDegraded
               : SupervisorState::kNormal;
    ++status_.restorations;
  }

  if (next == status_.state) {
    return false;
  }
  // One level per trip of the hysteresis window: reset both streaks so the
  // next transition needs fresh evidence at the new level.
  status_.unhealthy_streak = 0;
  status_.healthy_streak = 0;
  status_.state = next;
  state_.store(next, std::memory_order_release);
  return true;
}

SupervisorStatus Supervisor::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

}  // namespace vprof
