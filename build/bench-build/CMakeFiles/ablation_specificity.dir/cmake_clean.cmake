file(REMOVE_RECURSE
  "../bench/ablation_specificity"
  "../bench/ablation_specificity.pdb"
  "CMakeFiles/ablation_specificity.dir/ablation_specificity.cc.o"
  "CMakeFiles/ablation_specificity.dir/ablation_specificity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_specificity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
