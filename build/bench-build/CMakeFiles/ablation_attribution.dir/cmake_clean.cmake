file(REMOVE_RECURSE
  "../bench/ablation_attribution"
  "../bench/ablation_attribution.pdb"
  "CMakeFiles/ablation_attribution.dir/ablation_attribution.cc.o"
  "CMakeFiles/ablation_attribution.dir/ablation_attribution.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_attribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
