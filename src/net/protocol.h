// Wire protocol of the network front-end: length-prefixed binary frames.
//
// The paper's semantic intervals begin when a request becomes readable on a
// socket; this protocol is the minimal framing that lets the three servers
// (minidb, minipg, httpd) sit behind a real wire boundary. Every frame is
//
//   u32  length      — bytes following this field (type + request id +
//                      payload); bounded by kMaxFrameBytes
//   u8   type        — MsgType
//   u64  request_id  — echoed verbatim in the reply, so clients may pipeline
//                      many requests per connection and match replies out of
//                      order (the server's worker pool does not preserve
//                      per-connection ordering)
//   ...  payload     — per-type body, exact size enforced
//
// All integers are little-endian. Decoding is strict: unknown types, short
// or long payloads, out-of-range enum values and oversized lengths are typed
// errors (WireError), never partial frames — the connection state machine
// closes the peer instead of guessing.
#ifndef SRC_NET_PROTOCOL_H_
#define SRC_NET_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/minidb/engine.h"  // TxnRequest/TxnType/TxnError shapes

namespace net {

// Frame geometry.
inline constexpr size_t kLengthBytes = 4;
inline constexpr size_t kFrameOverhead = 1 + 8;  // type + request_id
inline constexpr size_t kHeaderBytes = kLengthBytes + kFrameOverhead;
inline constexpr uint32_t kMaxPayloadBytes = 16 * 1024;
inline constexpr uint32_t kMaxFrameBytes =
    static_cast<uint32_t>(kFrameOverhead) + kMaxPayloadBytes;
// NewOrder carries at most a handful of items; anything larger is garbage.
inline constexpr size_t kMaxTxnItems = 64;

enum class MsgType : uint8_t {
  // Requests (client -> server).
  kTxn = 1,       // a TPC-C-shaped transaction for minidb/minipg
  kHttpGet = 2,   // a static-file fetch for httpd
  kPing = 3,      // liveness / drain probe

  // Replies (server -> client).
  kTxnReply = 16,   // status 0 = committed, 1 = aborted; error = TxnError
  kHttpReply = 17,  // status 0 = 200 OK, 1 = failed; value = bytes served
  kPong = 18,
  kRejected = 19,   // 503: shed at the accept path or the dispatch queue
  kError = 20,      // protocol violation; error = WireError; conn closes
};

// Typed decode failure. kNeedMore is not a failure: the frame is simply not
// complete yet.
enum class WireError : uint8_t {
  kOk = 0,
  kNeedMore = 1,
  kOversized = 2,   // declared length exceeds kMaxFrameBytes (or < overhead)
  kBadType = 3,     // unknown MsgType, or a reply type sent to a server
  kBadPayload = 4,  // payload size/enum/count does not match the type
};
const char* WireErrorName(WireError error);

// One parsed frame. A plain value type: the union-of-fields layout keeps
// encode/decode trivially exhaustive over MsgType.
struct Frame {
  MsgType type = MsgType::kPing;
  uint64_t request_id = 0;

  minidb::TxnRequest txn;  // kTxn
  uint64_t file_id = 0;    // kHttpGet

  uint8_t status = 0;     // kTxnReply / kHttpReply
  uint8_t error = 0;      // kTxnReply: minidb::TxnError; kError: WireError
  uint64_t value = 0;     // kTxnReply: trx id; kHttpReply: bytes served
};

// Serializes `frame` onto `out` (appends; does not clear).
void EncodeFrame(const Frame& frame, std::string* out);

// Decodes one frame from [data, data+size). Returns kOk and sets *consumed
// on success; kNeedMore when the buffer holds only a frame prefix (consumed
// is 0); any other value is a protocol violation (consumed is 0 and the
// connection must close).
WireError DecodeFrame(const uint8_t* data, size_t size, Frame* out,
                      size_t* consumed);

// Incremental per-connection parser: feed whatever the socket produced,
// collect every completed frame. The internal buffer is bounded by the
// declared frame length (itself bounded by kMaxFrameBytes), so a peer cannot
// grow server memory by dribbling an unterminated frame. A protocol error is
// sticky: once poisoned, every further Feed reports the same error and no
// further frame is produced — the state machine above closes the connection,
// so nothing may be dispatched from bytes after the violation.
class FrameParser {
 public:
  // Appends completed frames to *out. Returns kOk while the stream is
  // healthy (possibly mid-frame); otherwise the first violation hit.
  WireError Feed(const uint8_t* data, size_t size, std::vector<Frame>* out);

  size_t buffered_bytes() const { return buffer_.size(); }
  WireError error() const { return error_; }

 private:
  std::vector<uint8_t> buffer_;
  WireError error_ = WireError::kOk;
};

}  // namespace net

#endif  // SRC_NET_PROTOCOL_H_
