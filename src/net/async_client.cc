#include "src/net/async_client.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>

#include <cerrno>
#include <utility>

#include "src/vprof/probe.h"
#include "src/vprof/registry.h"

namespace net {

namespace {
std::atomic<uint64_t> g_next_span_id{1};
constexpr size_t kReadChunkBytes = 16 * 1024;
}  // namespace

uint64_t NextSpanId() {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

AsyncClient::AsyncClient(const AsyncClientOptions& options)
    : options_(options) {
  vprof::RegisterFunction(kRpcCallFunc);
}

AsyncClient::~AsyncClient() { Shutdown(); }

bool AsyncClient::Connect() {
  if (connected_.load(std::memory_order_acquire)) {
    return true;
  }
  if (!loop_.valid() || options_.connections == 0) {
    return false;
  }
  conns_.clear();
  for (size_t i = 0; i < options_.connections; ++i) {
    Fd fd = ConnectLocal(options_.port, /*nonblocking=*/true);
    if (!fd.valid()) {
      conns_.clear();
      return false;
    }
    const int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<ClientConn>();
    conn->fd = std::move(fd);
    conns_.push_back(std::move(conn));
  }
  shut_down_.store(false, std::memory_order_release);
  connected_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mu_);
    loop_tid_ = vprof::kNoThread;  // re-armed for a reconnect's fresh loop
  }
  loop_thread_ = std::thread([this] {
    {
      std::lock_guard<std::mutex> lock(mu_);
      loop_tid_ = vprof::CurrentThread()->tid();
    }
    loop_tid_ready_.notify_all();
    for (size_t i = 0; i < conns_.size(); ++i) {
      loop_.Add(conns_[i]->fd.get(), EPOLLIN | EPOLLET,
                [this, i](uint32_t events) { OnConnEvent(i, events); });
    }
    loop_.Run(/*tick_ms=*/50, {});
  });
  {
    // Tier rosters are built from loop_tid() right after Connect returns, so
    // wait for the loop thread's vprof registration.
    std::unique_lock<std::mutex> lock(mu_);
    loop_tid_ready_.wait(lock,
                         [this] { return loop_tid_ != vprof::kNoThread; });
  }
  return true;
}

void AsyncClient::Shutdown() {
  if (shut_down_.exchange(true)) {
    return;
  }
  connected_.store(false, std::memory_order_release);
  loop_.Stop();
  if (loop_thread_.joinable()) {
    loop_thread_.join();
  }
  conns_.clear();
  FailAllPending();
}

vprof::ThreadId AsyncClient::loop_tid() const {
  std::lock_guard<std::mutex> lock(mu_);
  return loop_tid_;
}

AsyncClientStats AsyncClient::stats() const {
  AsyncClientStats out;
  out.calls = calls_.load(std::memory_order_relaxed);
  out.failures = failures_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  return out;
}

bool AsyncClient::Call(Frame request, Frame* reply) {
  // The probe makes the send-side of every RPC an attributable invocation on
  // the caller: the stitched walk lands here for serialize/post time, and
  // dist:cold_start (BackendPool) nests under it.
  VPROF_FUNC(kRpcCallFunc);
  ClientSpanRecord span;
  span.service = options_.service;
  span.span_id = NextSpanId();
  span.interval_id = static_cast<uint64_t>(vprof::CurrentIntervalId());
  span.caller_tid = vprof::CurrentThread()->tid();

  request.has_trace_context = true;
  request.trace_context.interval_id = span.interval_id;
  request.trace_context.span_id = span.span_id;
  request.trace_context.origin_service = options_.origin;
  span.send_time_ns = vprof::Now();
  request.trace_context.send_time_ns = span.send_time_ns;

  if (!CallInternal(std::move(request), reply)) {
    return false;
  }
  span.recv_time_ns = vprof::Now();
  if (reply->has_server_timing) {
    span.has_server_timing = true;
    span.server = reply->server_timing;
  }
  if (reply->type == MsgType::kRejected) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
  }
  if (options_.span_sink) {
    options_.span_sink(span);
  }
  return true;
}

bool AsyncClient::CallInternal(Frame request, Frame* reply) {
  calls_.fetch_add(1, std::memory_order_relaxed);
  if (!connected_.load(std::memory_order_acquire)) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const uint64_t rid =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  request.request_id = rid;
  auto pending = std::make_shared<PendingCall>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_[rid] = pending;
  }
  std::string bytes;
  EncodeFrame(request, &bytes);
  const size_t conn_index =
      next_conn_.fetch_add(1, std::memory_order_relaxed) % conns_.size();
  loop_.Post([this, conn_index, rid, bytes = std::move(bytes)] {
    if (conn_index >= conns_.size() || conns_[conn_index]->dead) {
      // The socket died (or shutdown raced the post): fail fast instead of
      // letting the caller ride out the timeout.
      std::shared_ptr<PendingCall> p;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = pending_.find(rid);
        if (it != pending_.end()) {
          p = std::move(it->second);
          pending_.erase(it);
        }
      }
      if (p) {
        p->ok = false;
        p->done.Set();
      }
      return;
    }
    QueueOnConn(conn_index, bytes);
  });

  // Instrumented wait: the blocked segment records a wake-up edge to the
  // loop thread; the stitcher upgrades the hop to the backend worker.
  if (!pending->done.WaitFor(options_.call_timeout_ns)) {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.erase(rid);
    if (!pending->done.IsSet()) {
      failures_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    // Completion raced the timeout: the reply is whole (fields are filled
    // before Set, and we hold the map lock the completer released).
  }
  if (!pending->ok) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  *reply = std::move(pending->reply);
  return true;
}

ClockCalibration AsyncClient::CalibrateClock(int rounds) {
  ClockCalibration out;
  for (int i = 0; i < rounds; ++i) {
    Frame probe;
    probe.type = MsgType::kClockSync;
    const vprof::TimeNs t1 = vprof::Now();
    probe.t1_ns = t1;
    Frame reply;
    if (!CallInternal(std::move(probe), &reply) ||
        reply.type != MsgType::kClockSyncReply) {
      continue;
    }
    const vprof::TimeNs t3 = vprof::Now();
    const int64_t rtt = t3 - t1;
    if (rtt < 0) {
      continue;
    }
    if (!out.valid || rtt < out.min_rtt_ns) {
      out.valid = true;
      out.min_rtt_ns = rtt;
      // t2 sits (assumed) mid-flight between t1 and t3 on the backend's
      // clock; the offset maps backend stamps onto this process's axis.
      out.offset_ns = (t1 + rtt / 2) - reply.t2_ns;
    }
    ++out.rounds;
  }
  return out;
}

void AsyncClient::OnConnEvent(size_t conn_index, uint32_t events) {
  ClientConn* conn = conns_[conn_index].get();
  if (conn->dead) {
    return;
  }
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    KillConn(conn_index);
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    FlushConn(conn_index);
    if (conn->dead) {
      return;
    }
  }
  if ((events & EPOLLIN) == 0) {
    return;
  }
  std::vector<uint8_t> chunk(kReadChunkBytes);
  std::vector<Frame> frames;
  while (true) {
    bool injected_eof = false;
    const ssize_t n =
        ReadFd(conn->fd.get(), chunk.data(), chunk.size(), &injected_eof);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        return;
      }
      KillConn(conn_index);
      return;
    }
    if (n == 0) {
      KillConn(conn_index);
      return;
    }
    frames.clear();
    const WireError err =
        conn->parser.Feed(chunk.data(), static_cast<size_t>(n), &frames);
    for (Frame& frame : frames) {
      if (frame.decode_error != WireError::kOk) {
        continue;  // skew from a newer server: that call times out
      }
      CompletePending(std::move(frame));
    }
    if (err != WireError::kOk) {
      KillConn(conn_index);
      return;
    }
    if (static_cast<size_t>(n) < chunk.size()) {
      return;
    }
  }
}

void AsyncClient::CompletePending(Frame reply) {
  std::shared_ptr<PendingCall> pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(reply.request_id);
    if (it == pending_.end()) {
      return;  // late reply after a timeout; drop
    }
    pending = std::move(it->second);
    pending_.erase(it);
  }
  pending->ok = reply.type != MsgType::kError;
  pending->reply = std::move(reply);
  pending->done.Set();
}

void AsyncClient::FailAllPending() {
  std::unordered_map<uint64_t, std::shared_ptr<PendingCall>> drained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    drained.swap(pending_);
  }
  for (auto& [rid, pending] : drained) {
    pending->ok = false;
    pending->done.Set();
  }
}

void AsyncClient::QueueOnConn(size_t conn_index, const std::string& bytes) {
  ClientConn* conn = conns_[conn_index].get();
  conn->outbox.append(bytes);
  FlushConn(conn_index);
}

void AsyncClient::FlushConn(size_t conn_index) {
  ClientConn* conn = conns_[conn_index].get();
  while (conn->out_offset < conn->outbox.size()) {
    const ssize_t n =
        WriteFd(conn->fd.get(), conn->outbox.data() + conn->out_offset,
                conn->outbox.size() - conn->out_offset);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        if (!conn->wants_write) {
          conn->wants_write = true;
          loop_.Mod(conn->fd.get(), EPOLLIN | EPOLLOUT | EPOLLET);
        }
        return;
      }
      KillConn(conn_index);
      return;
    }
    if (n == 0) {
      return;
    }
    conn->out_offset += static_cast<size_t>(n);
  }
  conn->outbox.clear();
  conn->out_offset = 0;
  if (conn->wants_write) {
    conn->wants_write = false;
    loop_.Mod(conn->fd.get(), EPOLLIN | EPOLLET);
  }
}

void AsyncClient::KillConn(size_t conn_index) {
  ClientConn* conn = conns_[conn_index].get();
  if (conn->dead) {
    return;
  }
  conn->dead = true;
  loop_.Del(conn->fd.get());
  conn->fd.reset();
  // In-flight calls routed to this socket will fail fast on their post (new
  // sends) or time out (already written). If every socket is gone the pool
  // is useless — flip connected_ so new calls fail immediately.
  bool any_alive = false;
  for (const auto& c : conns_) {
    any_alive = any_alive || !c->dead;
  }
  if (!any_alive) {
    connected_.store(false, std::memory_order_release);
    FailAllPending();
  }
}

}  // namespace net
