#include "src/vprof/analysis/report.h"

#include <gtest/gtest.h>

#include "tests/vprof/trace_builder.h"

namespace vprof {
namespace {

using vprof_test::TraceBuilder;

Trace ReportSampleTrace() {
  TraceBuilder tb;
  const std::vector<TimeNs> slow = {10000, 50000, 30000, 90000};
  for (size_t i = 0; i < slow.size(); ++i) {
    const TimeNs base = static_cast<TimeNs>(i) * 1000000;
    const IntervalId sid = static_cast<IntervalId>(i + 1);
    const TimeNs end = base + 20000 + slow[i];
    tb.Begin(0, sid, base).End(0, sid, end);
    tb.Exec(0, sid, base, end);
    const int root = tb.Invoke(0, "rp_txn", base, end, -1, sid);
    tb.Invoke(0, "rp_fast", base, base + 20000, root, sid);
    tb.Invoke(0, "rp_slow", base + 20000, end, root, sid);
  }
  return tb.Build();
}

TEST(ReportTest, FactorTableListsRankedFactors) {
  const Trace trace = ReportSampleTrace();
  VarianceAnalysis analysis(trace);
  CallGraph graph;
  graph.AddEdge("rp_txn", "rp_fast");
  graph.AddEdge("rp_txn", "rp_slow");
  const auto factors =
      AggregateFactors(analysis, graph, RegisterFunction("rp_txn"),
                       SpecificityKind::kQuadratic);
  const std::string table =
      FormatFactorTable(factors, trace.function_names, 5, 0.001);
  EXPECT_NE(table.find("rp_slow"), std::string::npos);
  EXPECT_NE(table.find("rank"), std::string::npos);
  // rp_fast has zero variance: excluded by the contribution floor.
  EXPECT_EQ(table.find("rp_fast\n"), std::string::npos);
}

TEST(ReportTest, CallTreeShowsHierarchy) {
  const Trace trace = ReportSampleTrace();
  VarianceAnalysis analysis(trace);
  const std::string tree = FormatCallTree(analysis, 0.0, 0.0);
  EXPECT_NE(tree.find("(interval)"), std::string::npos);
  EXPECT_NE(tree.find("rp_txn"), std::string::npos);
  EXPECT_NE(tree.find("rp_slow"), std::string::npos);
  // Child lines are indented under the parent.
  const size_t txn_pos = tree.find("rp_txn");
  const size_t slow_pos = tree.find("rp_slow");
  EXPECT_LT(txn_pos, slow_pos);
}

TEST(ReportTest, CallTreePrunesNegligibleNodes) {
  const Trace trace = ReportSampleTrace();
  VarianceAnalysis analysis(trace);
  const std::string tree = FormatCallTree(analysis, /*min_contribution=*/0.5,
                                          /*min_mean_ns=*/1e12);
  EXPECT_EQ(tree.find("rp_fast"), std::string::npos);
  EXPECT_NE(tree.find("rp_slow"), std::string::npos);
}

TEST(ReportTest, WaitBreakdownMentionsCategories) {
  const Trace trace = ReportSampleTrace();
  VarianceAnalysis analysis(trace);
  const std::string report = FormatWaitBreakdown(analysis);
  EXPECT_NE(report.find("queue wait"), std::string::npos);
  EXPECT_NE(report.find("blocked"), std::string::npos);
  EXPECT_NE(report.find("descheduled"), std::string::npos);
}

TEST(ReportTest, LatencySummaryHasMoments) {
  const Trace trace = ReportSampleTrace();
  VarianceAnalysis analysis(trace);
  const std::string report = FormatLatencySummary(analysis);
  EXPECT_NE(report.find("intervals: 4"), std::string::npos);
  EXPECT_NE(report.find("p99="), std::string::npos);
  EXPECT_NE(report.find("cv="), std::string::npos);
}

TEST(ReportTest, TraceHealthIsEmptyForCleanTrace) {
  EXPECT_EQ(FormatTraceHealth(ReportSampleTrace()), "");
}

TEST(ReportTest, TraceHealthListsStuckThreadsAndDrops) {
  Trace trace = ReportSampleTrace();
  trace.stuck_threads.push_back(7);
  trace.stuck_threads.push_back(9);
  trace.threads[0].dropped_records = 12;
  const std::string health = FormatTraceHealth(trace);
  EXPECT_NE(health.find("trace health:"), std::string::npos);
  EXPECT_NE(health.find("stuck threads (records quarantined): 2 [tid 7 9]"),
            std::string::npos);
  EXPECT_NE(health.find("dropped records (arena cap): 12 across 1 thread"),
            std::string::npos);
}

}  // namespace
}  // namespace vprof
