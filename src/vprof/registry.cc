#include "src/vprof/registry.h"

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <unordered_map>

namespace vprof {

std::atomic<uint64_t> g_func_enabled_bits[kFuncBitmapWords];
std::atomic<uint64_t> g_func_name_hash[kMaxFunctions];

namespace {

struct RegistryState {
  std::mutex mu;
  std::vector<std::string> names;
  std::unordered_map<std::string, FuncId> by_name;
};

RegistryState& State() {
  static RegistryState* state = new RegistryState();
  return *state;
}

}  // namespace

FuncId RegisterFunction(std::string_view name) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.by_name.find(std::string(name));
  if (it != state.by_name.end()) {
    return it->second;
  }
  if (state.names.size() >= kMaxFunctions) {
    std::fprintf(stderr, "vprof: function registry overflow (%zu)\n",
                 state.names.size());
    std::abort();
  }
  const FuncId id = static_cast<FuncId>(state.names.size());
  state.names.emplace_back(name);
  state.by_name.emplace(std::string(name), id);
  // Published before the id escapes this call, so any probe holding a valid
  // id can read the hash without the lock.
  g_func_name_hash[id].store(std::hash<std::string_view>{}(name),
                             std::memory_order_relaxed);
  return id;
}

FuncId LookupFunction(std::string_view name) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.by_name.find(std::string(name));
  return it == state.by_name.end() ? kInvalidFunc : it->second;
}

std::string FunctionName(FuncId id) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (id >= state.names.size()) {
    return std::string();
  }
  return state.names[id];
}

size_t RegisteredFunctionCount() {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.names.size();
}

std::vector<std::string> AllFunctionNames() {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.names;
}

void SetFunctionEnabled(FuncId id, bool enabled) {
  if (id >= kMaxFunctions) {
    return;
  }
  const uint64_t bit = 1ull << (id & 63);
  if (enabled) {
    g_func_enabled_bits[id >> 6].fetch_or(bit, std::memory_order_relaxed);
  } else {
    g_func_enabled_bits[id >> 6].fetch_and(~bit, std::memory_order_relaxed);
  }
}

void DisableAllFunctions() {
  for (size_t w = 0; w < kFuncBitmapWords; ++w) {
    g_func_enabled_bits[w].store(0, std::memory_order_relaxed);
  }
}

std::vector<FuncId> EnabledFunctions() {
  std::vector<FuncId> out;
  const size_t n = RegisteredFunctionCount();
  for (size_t w = 0; w * 64 < n; ++w) {
    uint64_t bits = g_func_enabled_bits[w].load(std::memory_order_relaxed);
    while (bits != 0) {
      const int b = __builtin_ctzll(bits);
      bits &= bits - 1;
      const size_t id = w * 64 + static_cast<size_t>(b);
      if (id < n) {
        out.push_back(static_cast<FuncId>(id));
      }
    }
  }
  return out;
}

}  // namespace vprof
